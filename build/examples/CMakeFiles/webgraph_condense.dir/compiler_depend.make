# Empty compiler generated dependencies file for webgraph_condense.
# This may be replaced when dependencies are built.
