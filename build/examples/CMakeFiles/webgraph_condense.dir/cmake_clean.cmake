file(REMOVE_RECURSE
  "CMakeFiles/webgraph_condense.dir/webgraph_condense.cpp.o"
  "CMakeFiles/webgraph_condense.dir/webgraph_condense.cpp.o.d"
  "webgraph_condense"
  "webgraph_condense.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/webgraph_condense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
