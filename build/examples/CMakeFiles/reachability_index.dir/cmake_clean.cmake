file(REMOVE_RECURSE
  "CMakeFiles/reachability_index.dir/reachability_index.cpp.o"
  "CMakeFiles/reachability_index.dir/reachability_index.cpp.o.d"
  "reachability_index"
  "reachability_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reachability_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
