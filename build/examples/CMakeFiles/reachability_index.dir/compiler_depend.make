# Empty compiler generated dependencies file for reachability_index.
# This may be replaced when dependencies are built.
