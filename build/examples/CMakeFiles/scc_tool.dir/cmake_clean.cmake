file(REMOVE_RECURSE
  "CMakeFiles/scc_tool.dir/scc_tool.cpp.o"
  "CMakeFiles/scc_tool.dir/scc_tool.cpp.o.d"
  "scc_tool"
  "scc_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scc_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
