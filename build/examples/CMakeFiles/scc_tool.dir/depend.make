# Empty dependencies file for scc_tool.
# This may be replaced when dependencies are built.
