# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/io_test[1]_include.cmake")
include("/root/repo/build/tests/text_import_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/gen_test[1]_include.cmake")
include("/root/repo/build/tests/scc_result_test[1]_include.cmake")
include("/root/repo/build/tests/spanning_tree_test[1]_include.cmake")
include("/root/repo/build/tests/drank_test[1]_include.cmake")
include("/root/repo/build/tests/scc_oracle_test[1]_include.cmake")
include("/root/repo/build/tests/one_phase_test[1]_include.cmake")
include("/root/repo/build/tests/two_phase_test[1]_include.cmake")
include("/root/repo/build/tests/brplus_invariant_test[1]_include.cmake")
include("/root/repo/build/tests/algorithms_test[1]_include.cmake")
include("/root/repo/build/tests/condense_test[1]_include.cmake")
include("/root/repo/build/tests/reachability_test[1]_include.cmake")
include("/root/repo/build/tests/io_profile_test[1]_include.cmake")
include("/root/repo/build/tests/semi_external_dfs_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/stress_test[1]_include.cmake")
include("/root/repo/build/tests/verify_stats_test[1]_include.cmake")
include("/root/repo/build/tests/harness_test[1]_include.cmake")
