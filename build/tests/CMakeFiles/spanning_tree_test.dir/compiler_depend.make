# Empty compiler generated dependencies file for spanning_tree_test.
# This may be replaced when dependencies are built.
