# Empty compiler generated dependencies file for text_import_test.
# This may be replaced when dependencies are built.
