file(REMOVE_RECURSE
  "CMakeFiles/text_import_test.dir/text_import_test.cc.o"
  "CMakeFiles/text_import_test.dir/text_import_test.cc.o.d"
  "text_import_test"
  "text_import_test.pdb"
  "text_import_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/text_import_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
