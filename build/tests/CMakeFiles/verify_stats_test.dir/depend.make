# Empty dependencies file for verify_stats_test.
# This may be replaced when dependencies are built.
