file(REMOVE_RECURSE
  "CMakeFiles/verify_stats_test.dir/verify_stats_test.cc.o"
  "CMakeFiles/verify_stats_test.dir/verify_stats_test.cc.o.d"
  "verify_stats_test"
  "verify_stats_test.pdb"
  "verify_stats_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verify_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
