# Empty dependencies file for io_profile_test.
# This may be replaced when dependencies are built.
