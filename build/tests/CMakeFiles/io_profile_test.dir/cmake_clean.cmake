file(REMOVE_RECURSE
  "CMakeFiles/io_profile_test.dir/io_profile_test.cc.o"
  "CMakeFiles/io_profile_test.dir/io_profile_test.cc.o.d"
  "io_profile_test"
  "io_profile_test.pdb"
  "io_profile_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/io_profile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
