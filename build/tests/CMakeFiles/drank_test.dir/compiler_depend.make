# Empty compiler generated dependencies file for drank_test.
# This may be replaced when dependencies are built.
