file(REMOVE_RECURSE
  "CMakeFiles/drank_test.dir/drank_test.cc.o"
  "CMakeFiles/drank_test.dir/drank_test.cc.o.d"
  "drank_test"
  "drank_test.pdb"
  "drank_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drank_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
