file(REMOVE_RECURSE
  "CMakeFiles/scc_oracle_test.dir/scc_oracle_test.cc.o"
  "CMakeFiles/scc_oracle_test.dir/scc_oracle_test.cc.o.d"
  "scc_oracle_test"
  "scc_oracle_test.pdb"
  "scc_oracle_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scc_oracle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
