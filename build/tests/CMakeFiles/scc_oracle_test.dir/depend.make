# Empty dependencies file for scc_oracle_test.
# This may be replaced when dependencies are built.
