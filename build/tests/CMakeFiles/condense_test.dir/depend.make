# Empty dependencies file for condense_test.
# This may be replaced when dependencies are built.
