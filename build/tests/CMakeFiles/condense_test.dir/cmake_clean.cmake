file(REMOVE_RECURSE
  "CMakeFiles/condense_test.dir/condense_test.cc.o"
  "CMakeFiles/condense_test.dir/condense_test.cc.o.d"
  "condense_test"
  "condense_test.pdb"
  "condense_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/condense_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
