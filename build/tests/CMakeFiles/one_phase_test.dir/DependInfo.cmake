
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/one_phase_test.cc" "tests/CMakeFiles/one_phase_test.dir/one_phase_test.cc.o" "gcc" "tests/CMakeFiles/one_phase_test.dir/one_phase_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/ioscc_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/scc/CMakeFiles/ioscc_scc.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/ioscc_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/ioscc_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/ioscc_io.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ioscc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
