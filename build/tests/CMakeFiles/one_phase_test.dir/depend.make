# Empty dependencies file for one_phase_test.
# This may be replaced when dependencies are built.
