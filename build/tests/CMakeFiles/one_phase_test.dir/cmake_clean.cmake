file(REMOVE_RECURSE
  "CMakeFiles/one_phase_test.dir/one_phase_test.cc.o"
  "CMakeFiles/one_phase_test.dir/one_phase_test.cc.o.d"
  "one_phase_test"
  "one_phase_test.pdb"
  "one_phase_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/one_phase_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
