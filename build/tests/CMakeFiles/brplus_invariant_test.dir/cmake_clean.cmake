file(REMOVE_RECURSE
  "CMakeFiles/brplus_invariant_test.dir/brplus_invariant_test.cc.o"
  "CMakeFiles/brplus_invariant_test.dir/brplus_invariant_test.cc.o.d"
  "brplus_invariant_test"
  "brplus_invariant_test.pdb"
  "brplus_invariant_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/brplus_invariant_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
