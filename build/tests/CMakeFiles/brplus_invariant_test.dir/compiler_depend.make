# Empty compiler generated dependencies file for brplus_invariant_test.
# This may be replaced when dependencies are built.
