# Empty compiler generated dependencies file for scc_result_test.
# This may be replaced when dependencies are built.
