file(REMOVE_RECURSE
  "CMakeFiles/scc_result_test.dir/scc_result_test.cc.o"
  "CMakeFiles/scc_result_test.dir/scc_result_test.cc.o.d"
  "scc_result_test"
  "scc_result_test.pdb"
  "scc_result_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scc_result_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
