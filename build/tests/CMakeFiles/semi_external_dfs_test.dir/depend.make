# Empty dependencies file for semi_external_dfs_test.
# This may be replaced when dependencies are built.
