file(REMOVE_RECURSE
  "CMakeFiles/semi_external_dfs_test.dir/semi_external_dfs_test.cc.o"
  "CMakeFiles/semi_external_dfs_test.dir/semi_external_dfs_test.cc.o.d"
  "semi_external_dfs_test"
  "semi_external_dfs_test.pdb"
  "semi_external_dfs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semi_external_dfs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
