# Empty dependencies file for bench_fig14_vary_nodes.
# This may be replaced when dependencies are built.
