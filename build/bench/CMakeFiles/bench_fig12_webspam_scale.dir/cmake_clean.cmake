file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_webspam_scale.dir/bench_fig12_webspam_scale.cpp.o"
  "CMakeFiles/bench_fig12_webspam_scale.dir/bench_fig12_webspam_scale.cpp.o.d"
  "bench_fig12_webspam_scale"
  "bench_fig12_webspam_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_webspam_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
