# Empty compiler generated dependencies file for bench_fig12_webspam_scale.
# This may be replaced when dependencies are built.
