# Empty dependencies file for bench_fig15_vary_degree.
# This may be replaced when dependencies are built.
