file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_vary_degree.dir/bench_fig15_vary_degree.cpp.o"
  "CMakeFiles/bench_fig15_vary_degree.dir/bench_fig15_vary_degree.cpp.o.d"
  "bench_fig15_vary_degree"
  "bench_fig15_vary_degree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_vary_degree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
