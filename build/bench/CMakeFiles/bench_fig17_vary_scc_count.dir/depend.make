# Empty dependencies file for bench_fig17_vary_scc_count.
# This may be replaced when dependencies are built.
