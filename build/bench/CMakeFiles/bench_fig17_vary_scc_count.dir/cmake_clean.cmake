file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_vary_scc_count.dir/bench_fig17_vary_scc_count.cpp.o"
  "CMakeFiles/bench_fig17_vary_scc_count.dir/bench_fig17_vary_scc_count.cpp.o.d"
  "bench_fig17_vary_scc_count"
  "bench_fig17_vary_scc_count.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_vary_scc_count.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
