# Empty dependencies file for bench_table3_real.
# This may be replaced when dependencies are built.
