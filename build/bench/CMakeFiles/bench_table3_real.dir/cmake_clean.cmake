file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_real.dir/bench_table3_real.cpp.o"
  "CMakeFiles/bench_table3_real.dir/bench_table3_real.cpp.o.d"
  "bench_table3_real"
  "bench_table3_real.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_real.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
