# Empty dependencies file for bench_fig16_vary_scc_size.
# This may be replaced when dependencies are built.
