file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_vary_scc_size.dir/bench_fig16_vary_scc_size.cpp.o"
  "CMakeFiles/bench_fig16_vary_scc_size.dir/bench_fig16_vary_scc_size.cpp.o.d"
  "bench_fig16_vary_scc_size"
  "bench_fig16_vary_scc_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_vary_scc_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
