# Empty dependencies file for bench_table1_reduction.
# This may be replaced when dependencies are built.
