file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_reduction.dir/bench_table1_reduction.cpp.o"
  "CMakeFiles/bench_table1_reduction.dir/bench_table1_reduction.cpp.o.d"
  "bench_table1_reduction"
  "bench_table1_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
