file(REMOVE_RECURSE
  "libioscc_util.a"
)
