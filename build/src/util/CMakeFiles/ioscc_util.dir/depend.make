# Empty dependencies file for ioscc_util.
# This may be replaced when dependencies are built.
