file(REMOVE_RECURSE
  "CMakeFiles/ioscc_util.dir/flags.cc.o"
  "CMakeFiles/ioscc_util.dir/flags.cc.o.d"
  "CMakeFiles/ioscc_util.dir/logging.cc.o"
  "CMakeFiles/ioscc_util.dir/logging.cc.o.d"
  "CMakeFiles/ioscc_util.dir/status.cc.o"
  "CMakeFiles/ioscc_util.dir/status.cc.o.d"
  "libioscc_util.a"
  "libioscc_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ioscc_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
