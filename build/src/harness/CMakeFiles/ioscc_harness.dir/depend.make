# Empty dependencies file for ioscc_harness.
# This may be replaced when dependencies are built.
