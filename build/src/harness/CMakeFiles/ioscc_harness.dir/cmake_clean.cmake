file(REMOVE_RECURSE
  "CMakeFiles/ioscc_harness.dir/datasets.cc.o"
  "CMakeFiles/ioscc_harness.dir/datasets.cc.o.d"
  "CMakeFiles/ioscc_harness.dir/runner.cc.o"
  "CMakeFiles/ioscc_harness.dir/runner.cc.o.d"
  "CMakeFiles/ioscc_harness.dir/table.cc.o"
  "CMakeFiles/ioscc_harness.dir/table.cc.o.d"
  "libioscc_harness.a"
  "libioscc_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ioscc_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
