file(REMOVE_RECURSE
  "libioscc_harness.a"
)
