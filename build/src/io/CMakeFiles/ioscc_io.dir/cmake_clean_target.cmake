file(REMOVE_RECURSE
  "libioscc_io.a"
)
