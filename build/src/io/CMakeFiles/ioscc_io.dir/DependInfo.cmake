
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/block_file.cc" "src/io/CMakeFiles/ioscc_io.dir/block_file.cc.o" "gcc" "src/io/CMakeFiles/ioscc_io.dir/block_file.cc.o.d"
  "/root/repo/src/io/edge_file.cc" "src/io/CMakeFiles/ioscc_io.dir/edge_file.cc.o" "gcc" "src/io/CMakeFiles/ioscc_io.dir/edge_file.cc.o.d"
  "/root/repo/src/io/external_sort.cc" "src/io/CMakeFiles/ioscc_io.dir/external_sort.cc.o" "gcc" "src/io/CMakeFiles/ioscc_io.dir/external_sort.cc.o.d"
  "/root/repo/src/io/temp_dir.cc" "src/io/CMakeFiles/ioscc_io.dir/temp_dir.cc.o" "gcc" "src/io/CMakeFiles/ioscc_io.dir/temp_dir.cc.o.d"
  "/root/repo/src/io/text_import.cc" "src/io/CMakeFiles/ioscc_io.dir/text_import.cc.o" "gcc" "src/io/CMakeFiles/ioscc_io.dir/text_import.cc.o.d"
  "/root/repo/src/io/verify_file.cc" "src/io/CMakeFiles/ioscc_io.dir/verify_file.cc.o" "gcc" "src/io/CMakeFiles/ioscc_io.dir/verify_file.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ioscc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
