# Empty dependencies file for ioscc_io.
# This may be replaced when dependencies are built.
