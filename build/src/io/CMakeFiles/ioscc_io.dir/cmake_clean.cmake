file(REMOVE_RECURSE
  "CMakeFiles/ioscc_io.dir/block_file.cc.o"
  "CMakeFiles/ioscc_io.dir/block_file.cc.o.d"
  "CMakeFiles/ioscc_io.dir/edge_file.cc.o"
  "CMakeFiles/ioscc_io.dir/edge_file.cc.o.d"
  "CMakeFiles/ioscc_io.dir/external_sort.cc.o"
  "CMakeFiles/ioscc_io.dir/external_sort.cc.o.d"
  "CMakeFiles/ioscc_io.dir/temp_dir.cc.o"
  "CMakeFiles/ioscc_io.dir/temp_dir.cc.o.d"
  "CMakeFiles/ioscc_io.dir/text_import.cc.o"
  "CMakeFiles/ioscc_io.dir/text_import.cc.o.d"
  "CMakeFiles/ioscc_io.dir/verify_file.cc.o"
  "CMakeFiles/ioscc_io.dir/verify_file.cc.o.d"
  "libioscc_io.a"
  "libioscc_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ioscc_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
