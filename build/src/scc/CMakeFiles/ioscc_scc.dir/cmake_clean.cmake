file(REMOVE_RECURSE
  "CMakeFiles/ioscc_scc.dir/algorithms.cc.o"
  "CMakeFiles/ioscc_scc.dir/algorithms.cc.o.d"
  "CMakeFiles/ioscc_scc.dir/condense.cc.o"
  "CMakeFiles/ioscc_scc.dir/condense.cc.o.d"
  "CMakeFiles/ioscc_scc.dir/dfs_scc.cc.o"
  "CMakeFiles/ioscc_scc.dir/dfs_scc.cc.o.d"
  "CMakeFiles/ioscc_scc.dir/drank.cc.o"
  "CMakeFiles/ioscc_scc.dir/drank.cc.o.d"
  "CMakeFiles/ioscc_scc.dir/em_scc.cc.o"
  "CMakeFiles/ioscc_scc.dir/em_scc.cc.o.d"
  "CMakeFiles/ioscc_scc.dir/kosaraju.cc.o"
  "CMakeFiles/ioscc_scc.dir/kosaraju.cc.o.d"
  "CMakeFiles/ioscc_scc.dir/one_phase.cc.o"
  "CMakeFiles/ioscc_scc.dir/one_phase.cc.o.d"
  "CMakeFiles/ioscc_scc.dir/one_phase_batch.cc.o"
  "CMakeFiles/ioscc_scc.dir/one_phase_batch.cc.o.d"
  "CMakeFiles/ioscc_scc.dir/reachability.cc.o"
  "CMakeFiles/ioscc_scc.dir/reachability.cc.o.d"
  "CMakeFiles/ioscc_scc.dir/scc_result.cc.o"
  "CMakeFiles/ioscc_scc.dir/scc_result.cc.o.d"
  "CMakeFiles/ioscc_scc.dir/semi_external_dfs.cc.o"
  "CMakeFiles/ioscc_scc.dir/semi_external_dfs.cc.o.d"
  "CMakeFiles/ioscc_scc.dir/spanning_tree.cc.o"
  "CMakeFiles/ioscc_scc.dir/spanning_tree.cc.o.d"
  "CMakeFiles/ioscc_scc.dir/tarjan.cc.o"
  "CMakeFiles/ioscc_scc.dir/tarjan.cc.o.d"
  "CMakeFiles/ioscc_scc.dir/two_phase.cc.o"
  "CMakeFiles/ioscc_scc.dir/two_phase.cc.o.d"
  "libioscc_scc.a"
  "libioscc_scc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ioscc_scc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
