file(REMOVE_RECURSE
  "libioscc_scc.a"
)
