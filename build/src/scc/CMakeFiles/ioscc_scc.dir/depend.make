# Empty dependencies file for ioscc_scc.
# This may be replaced when dependencies are built.
