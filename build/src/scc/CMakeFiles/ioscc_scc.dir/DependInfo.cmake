
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/scc/algorithms.cc" "src/scc/CMakeFiles/ioscc_scc.dir/algorithms.cc.o" "gcc" "src/scc/CMakeFiles/ioscc_scc.dir/algorithms.cc.o.d"
  "/root/repo/src/scc/condense.cc" "src/scc/CMakeFiles/ioscc_scc.dir/condense.cc.o" "gcc" "src/scc/CMakeFiles/ioscc_scc.dir/condense.cc.o.d"
  "/root/repo/src/scc/dfs_scc.cc" "src/scc/CMakeFiles/ioscc_scc.dir/dfs_scc.cc.o" "gcc" "src/scc/CMakeFiles/ioscc_scc.dir/dfs_scc.cc.o.d"
  "/root/repo/src/scc/drank.cc" "src/scc/CMakeFiles/ioscc_scc.dir/drank.cc.o" "gcc" "src/scc/CMakeFiles/ioscc_scc.dir/drank.cc.o.d"
  "/root/repo/src/scc/em_scc.cc" "src/scc/CMakeFiles/ioscc_scc.dir/em_scc.cc.o" "gcc" "src/scc/CMakeFiles/ioscc_scc.dir/em_scc.cc.o.d"
  "/root/repo/src/scc/kosaraju.cc" "src/scc/CMakeFiles/ioscc_scc.dir/kosaraju.cc.o" "gcc" "src/scc/CMakeFiles/ioscc_scc.dir/kosaraju.cc.o.d"
  "/root/repo/src/scc/one_phase.cc" "src/scc/CMakeFiles/ioscc_scc.dir/one_phase.cc.o" "gcc" "src/scc/CMakeFiles/ioscc_scc.dir/one_phase.cc.o.d"
  "/root/repo/src/scc/one_phase_batch.cc" "src/scc/CMakeFiles/ioscc_scc.dir/one_phase_batch.cc.o" "gcc" "src/scc/CMakeFiles/ioscc_scc.dir/one_phase_batch.cc.o.d"
  "/root/repo/src/scc/reachability.cc" "src/scc/CMakeFiles/ioscc_scc.dir/reachability.cc.o" "gcc" "src/scc/CMakeFiles/ioscc_scc.dir/reachability.cc.o.d"
  "/root/repo/src/scc/scc_result.cc" "src/scc/CMakeFiles/ioscc_scc.dir/scc_result.cc.o" "gcc" "src/scc/CMakeFiles/ioscc_scc.dir/scc_result.cc.o.d"
  "/root/repo/src/scc/semi_external_dfs.cc" "src/scc/CMakeFiles/ioscc_scc.dir/semi_external_dfs.cc.o" "gcc" "src/scc/CMakeFiles/ioscc_scc.dir/semi_external_dfs.cc.o.d"
  "/root/repo/src/scc/spanning_tree.cc" "src/scc/CMakeFiles/ioscc_scc.dir/spanning_tree.cc.o" "gcc" "src/scc/CMakeFiles/ioscc_scc.dir/spanning_tree.cc.o.d"
  "/root/repo/src/scc/tarjan.cc" "src/scc/CMakeFiles/ioscc_scc.dir/tarjan.cc.o" "gcc" "src/scc/CMakeFiles/ioscc_scc.dir/tarjan.cc.o.d"
  "/root/repo/src/scc/two_phase.cc" "src/scc/CMakeFiles/ioscc_scc.dir/two_phase.cc.o" "gcc" "src/scc/CMakeFiles/ioscc_scc.dir/two_phase.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/ioscc_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/ioscc_io.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ioscc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
