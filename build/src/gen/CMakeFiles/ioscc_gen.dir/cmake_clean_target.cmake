file(REMOVE_RECURSE
  "libioscc_gen.a"
)
