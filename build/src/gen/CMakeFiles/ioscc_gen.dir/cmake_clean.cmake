file(REMOVE_RECURSE
  "CMakeFiles/ioscc_gen.dir/generators.cc.o"
  "CMakeFiles/ioscc_gen.dir/generators.cc.o.d"
  "libioscc_gen.a"
  "libioscc_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ioscc_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
