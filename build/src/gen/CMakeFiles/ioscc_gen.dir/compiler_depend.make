# Empty compiler generated dependencies file for ioscc_gen.
# This may be replaced when dependencies are built.
