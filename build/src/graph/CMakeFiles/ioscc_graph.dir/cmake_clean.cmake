file(REMOVE_RECURSE
  "CMakeFiles/ioscc_graph.dir/digraph.cc.o"
  "CMakeFiles/ioscc_graph.dir/digraph.cc.o.d"
  "CMakeFiles/ioscc_graph.dir/graph_io.cc.o"
  "CMakeFiles/ioscc_graph.dir/graph_io.cc.o.d"
  "CMakeFiles/ioscc_graph.dir/graph_stats.cc.o"
  "CMakeFiles/ioscc_graph.dir/graph_stats.cc.o.d"
  "libioscc_graph.a"
  "libioscc_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ioscc_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
