# Empty dependencies file for ioscc_graph.
# This may be replaced when dependencies are built.
