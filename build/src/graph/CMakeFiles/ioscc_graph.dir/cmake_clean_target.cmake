file(REMOVE_RECURSE
  "libioscc_graph.a"
)
