// bench_compare: gates a fresh BENCH_*.json against a committed baseline.
//
//   bench_compare [--time-tolerance=0.5] [--stall-tolerance=2.0]
//                 baseline.json fresh.json
//
// Hard failures (non-zero exit) on any deterministic drift the baseline
// covers: logical block/byte counts, SCC results, iteration counts,
// budget verdicts — and, when the two environment blocks match, the
// physical-I/O ledger too. Wall-clock and read-stall numbers are checked
// softly: only a regression beyond the tolerance prints a warning, and
// warnings never change the exit code (shared CI runners are noisy).
// A deterministic-only baseline simply has no timing fields, so those
// checks are skipped.
//
// Exit code: 0 = pass (warnings allowed), 1 = hard failure, 2 = usage /
// unreadable or malformed input.

#include <cstdio>
#include <string>

#include "obs/bench_report.h"
#include "util/flags.h"

using namespace ioscc;  // example binaries only

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  BenchCompareOptions options;
  options.time_tolerance = flags.GetDouble("time-tolerance", 0.5);
  options.stall_tolerance = flags.GetDouble("stall-tolerance", 2.0);
  if (flags.positional().size() != 2) {
    std::fprintf(stderr,
                 "usage: bench_compare [--time-tolerance=F] "
                 "[--stall-tolerance=F] baseline.json fresh.json\n");
    return 2;
  }
  for (const std::string& unused : flags.UnusedFlags()) {
    std::fprintf(stderr, "unknown flag --%s\n", unused.c_str());
    return 2;
  }

  std::string baseline, fresh;
  Status st = ReadFileToString(flags.positional()[0], &baseline);
  if (st.ok()) st = ReadFileToString(flags.positional()[1], &fresh);
  BenchCompareResult result;
  if (st.ok()) {
    st = CompareBenchReports(baseline, fresh, options, &result);
  }
  if (!st.ok()) {
    std::fprintf(stderr, "bench_compare: %s\n", st.ToString().c_str());
    return 2;
  }
  std::fputs(result.Format().c_str(), stdout);
  return result.pass() ? 0 : 1;
}
