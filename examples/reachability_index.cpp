// Reachability queries over a general directed graph — the paper's second
// motivating application. Every practical reachability index (e.g. GRAIL)
// requires the input contracted to a DAG first, which is exactly the SCC
// computation this library provides.
//
// Pipeline: generate a citation-style graph -> semi-external SCCs ->
// ReachabilityOracle (condensation + GRAIL-style interval labelings with
// pruned-DFS fallback) -> answer queries, cross-checked against BFS.
//
//   $ ./examples/reachability_index [--nodes=50000] [--queries=2000]

#include <cstdio>
#include <memory>
#include <vector>

#include "gen/generators.h"
#include "graph/digraph.h"
#include "graph/graph_io.h"
#include "io/temp_dir.h"
#include "scc/algorithms.h"
#include "scc/reachability.h"
#include "util/flags.h"
#include "util/random.h"

using namespace ioscc;  // examples only

namespace {

bool BfsReaches(const Digraph& graph, NodeId from, NodeId to) {
  if (from == to) return true;
  std::vector<bool> seen(graph.node_count(), false);
  std::vector<NodeId> stack = {from};
  seen[from] = true;
  while (!stack.empty()) {
    NodeId u = stack.back();
    stack.pop_back();
    for (NodeId v : graph.OutNeighbors(u)) {
      if (v == to) return true;
      if (!seen[v]) {
        seen[v] = true;
        stack.push_back(v);
      }
    }
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  const uint64_t nodes = flags.GetInt("nodes", 50'000);
  const int queries = static_cast<int>(flags.GetInt("queries", 2000));
  const uint64_t seed = flags.GetInt("seed", 11);
  const int labelings = static_cast<int>(flags.GetInt("labelings", 2));

  std::unique_ptr<TempDir> dir;
  if (!TempDir::Create("ioscc-reach", &dir).ok()) return 1;

  CitationSpec spec;
  spec.node_count = nodes;
  spec.avg_degree = 4.0;
  spec.seed = seed;
  const std::string path = dir->FilePath("cites.edges");
  Status st = GenerateCitationFile(spec, path, kDefaultBlockSize, nullptr);
  if (!st.ok()) return 1;

  // 1. SCCs, semi-externally (the index prerequisite).
  SccResult scc;
  RunStats stats;
  st = RunScc(SccAlgorithm::kOnePhaseBatch, path, SemiExternalOptions(),
              &scc, &stats);
  if (!st.ok()) {
    std::fprintf(stderr, "scc: %s\n", st.ToString().c_str());
    return 1;
  }

  // 2. GRAIL-style oracle over the condensation (the DAG is far smaller
  //    than the graph, so it is indexed in memory).
  Digraph graph;
  if (!LoadDigraph(path, &graph, nullptr).ok()) return 1;
  ReachabilityOracle oracle(graph, scc, labelings, seed * 17);
  std::printf("graph: %u nodes, %llu edges; %llu SCCs; DAG edges: %llu; "
              "%d GRAIL labelings\n",
              graph.node_count(),
              static_cast<unsigned long long>(graph.edge_count()),
              static_cast<unsigned long long>(scc.ComponentCount()),
              static_cast<unsigned long long>(oracle.dag().edge_count()),
              labelings);

  // 3. Queries, validated against BFS in the raw graph.
  Rng rng(seed * 31);
  int reachable = 0, mismatches = 0;
  for (int q = 0; q < queries; ++q) {
    NodeId u = static_cast<NodeId>(rng.Uniform(graph.node_count()));
    NodeId v = static_cast<NodeId>(rng.Uniform(graph.node_count()));
    bool answer = oracle.Reaches(u, v);
    if (answer) ++reachable;
    if (answer != BfsReaches(graph, u, v)) ++mismatches;
  }
  std::printf("%d queries: %d reachable, %d mismatches vs BFS ground "
              "truth\n",
              queries, reachable, mismatches);
  return mismatches == 0 ? 0 : 1;
}
