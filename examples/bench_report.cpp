// bench_report: folds JSONL run reports into one canonical BENCH_*.json.
//
//   bench_report [--tag=NAME] [--out=FILE] [--deterministic-only]
//                [--build-type=STR] [--threads=N] [--prefetch-depth=N]
//                [--cache-blocks=N] report1.jsonl [report2.jsonl ...]
//
// Each positional argument is one bench's JSONL run report
// (docs/OBSERVABILITY.md); its basename minus ".jsonl" becomes the bench
// name in the output. A file named bench_io.jsonl additionally feeds the
// threads x depth sweep / speedup section. The --build-type/--threads/
// --prefetch-depth/--cache-blocks values are recorded verbatim in the
// environment block (they describe how the benches were run; the
// comparator gates physical-I/O fields only between matching
// environments). --deterministic-only drops every timing-dependent field
// so the output is byte-reproducible — the mode committed baselines use.
//
// Output goes to --out=FILE, default BENCH_<tag>.json. Schema:
// docs/PERFORMANCE.md, "Perf trajectory".

#include <cstdio>
#include <string>
#include <vector>

#include "obs/bench_report.h"
#include "util/flags.h"

using namespace ioscc;  // example binaries only

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  BenchReportOptions options;
  options.tag = flags.GetString("tag", "local");
  options.deterministic_only = flags.GetBool("deterministic-only", false);
  options.build_type = flags.GetString("build-type", "");
  options.threads = flags.GetInt("threads", 0);
  options.prefetch_depth = flags.GetInt("prefetch-depth", 1);
  options.cache_blocks =
      static_cast<uint64_t>(flags.GetInt("cache-blocks", 0));
  const std::string out_path =
      flags.GetString("out", "BENCH_" + options.tag + ".json");

  if (flags.positional().empty()) {
    std::fprintf(stderr,
                 "usage: bench_report [--tag=NAME] [--out=FILE] "
                 "[--deterministic-only] [--build-type=STR] [--threads=N] "
                 "[--prefetch-depth=N] [--cache-blocks=N] "
                 "report1.jsonl [report2.jsonl ...]\n");
    return 2;
  }
  for (const std::string& unused : flags.UnusedFlags()) {
    std::fprintf(stderr, "unknown flag --%s\n", unused.c_str());
    return 2;
  }

  std::string json;
  Status st =
      AggregateBenchReportFiles(flags.positional(), options, &json);
  if (!st.ok()) {
    std::fprintf(stderr, "bench_report: %s\n", st.ToString().c_str());
    return 1;
  }

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "bench_report: cannot open %s\n", out_path.c_str());
    return 1;
  }
  const bool ok =
      std::fwrite(json.data(), 1, json.size(), out) == json.size();
  std::fclose(out);
  if (!ok) {
    std::fprintf(stderr, "bench_report: short write to %s\n",
                 out_path.c_str());
    return 1;
  }
  std::printf("bench_report: %zu file(s) -> %s (%zu bytes%s)\n",
              flags.positional().size(), out_path.c_str(), json.size(),
              options.deterministic_only ? ", deterministic fields only"
                                         : "");
  return 0;
}
