// A guided walkthrough of the paper's running example (Fig. 1, a 12-node
// graph with SCCs {b,c,d,e} and {g,h,i,j}) using the library's building
// blocks directly — mirroring Examples 6.1/6.2 (BR+-Tree construction and
// tree search) and printing each reshaping step.
//
//   $ ./examples/paper_walkthrough

#include <cstdio>
#include <memory>
#include <vector>

#include "io/edge_file.h"
#include "io/temp_dir.h"
#include "scc/algorithms.h"
#include "scc/drank.h"
#include "scc/spanning_tree.h"
#include "scc/union_find.h"

using namespace ioscc;  // examples only

namespace {

char Name(NodeId v) { return static_cast<char>('a' + v); }

void PrintTree(const SpanningTree& tree, const std::vector<NodeId>& backedge,
               const DrankResult& dr) {
  std::printf("    node: parent depth drank dlink backedge\n");
  for (NodeId v = 0; v < tree.real_node_count(); ++v) {
    std::printf("       %c:      %c %5u %5u     %c        %c\n", Name(v),
                tree.parent(v) == tree.root() ? '*' : Name(tree.parent(v)),
                tree.depth(v), dr.drank[v],
                dr.dlink[v] == tree.root() ? '*' : Name(dr.dlink[v]),
                backedge[v] == kInvalidNode ? '-' : Name(backedge[v]));
  }
}

}  // namespace

int main() {
  // Fig. 1: a..l = 0..11.
  const NodeId n = 12;
  const std::vector<Edge> edges = {
      {0, 1}, {0, 6}, {0, 7}, {1, 2}, {1, 3},  {2, 4},  {3, 4},
      {4, 1}, {5, 6}, {2, 5}, {6, 9}, {9, 8},  {8, 7},  {7, 6},
      {6, 8}, {8, 10}, {9, 11}, {11, 10},
  };

  std::printf("== The paper's running example (Fig. 1) ==\n");
  std::printf("12 nodes a..l, 18 edges; SCCs {b,c,d,e} and {g,h,i,j}.\n\n");

  // ---- Phase 1: Tree-Construction (Algorithm 4), step by step ----
  std::printf("-- Tree-Construction (Algorithm 4) --\n");
  SpanningTree tree(n);
  std::vector<NodeId> backedge(n, kInvalidNode);
  DrankResult dr = ComputeDrank(tree, backedge);
  std::printf("initial spanning tree: the star below the virtual root\n");

  for (int iteration = 1;; ++iteration) {
    bool updated = false;
    std::printf("iteration %d:\n", iteration);
    for (const Edge& e : edges) {
      const NodeId u = e.from, v = e.to;
      if (u == v) continue;
      if (tree.IsAncestor(v, u)) {
        if (backedge[u] == kInvalidNode ||
            tree.depth(v) < tree.depth(backedge[u])) {
          backedge[u] = v;
          updated = true;
          std::printf("  (%c,%c) is a backward edge: record it for %c "
                      "(update-drank)\n",
                      Name(u), Name(v), Name(u));
        }
        continue;
      }
      if (tree.IsAncestor(u, v)) continue;
      if (dr.drank[u] < dr.drank[v]) continue;  // down-edge
      const NodeId target = dr.dlink[v];
      if (target != u && target < n && tree.IsAncestor(target, u)) {
        if (backedge[u] == kInvalidNode ||
            tree.depth(target) < tree.depth(backedge[u])) {
          backedge[u] = target;
          updated = true;
          std::printf("  (%c,%c) is an up-edge and dlink(%c)=%c is an "
                      "ancestor of %c: replace by backward edge (%c,%c)\n",
                      Name(u), Name(v), Name(v), Name(target), Name(u),
                      Name(u), Name(target));
        }
      } else {
        tree.Reparent(v, u);
        updated = true;
        std::printf("  (%c,%c) is an up-edge: pushdown T ⇓ (%c,%c)\n",
                    Name(u), Name(v), Name(u), Name(v));
      }
    }
    for (NodeId v = 0; v < n; ++v) {
      if (backedge[v] != kInvalidNode &&
          !tree.IsAncestor(backedge[v], v)) {
        backedge[v] = kInvalidNode;
      }
    }
    dr = ComputeDrank(tree, backedge);
    if (!updated) {
      std::printf("  no change: construction converged (no up-edges)\n");
      break;
    }
  }
  std::printf("final BR+-Tree ('*' = virtual root):\n");
  PrintTree(tree, backedge, dr);

  // ---- Phase 2: Tree-Search (Algorithm 5) ----
  std::printf("\n-- Tree-Search (Algorithm 5) --\n");
  UnionFind uf(n + 1);
  std::vector<NodeId> scratch;
  auto contract = [&](NodeId desc, NodeId anc) {
    NodeId d = uf.Find(desc), a = uf.Find(anc);
    if (d == a || !tree.IsAncestor(a, d)) return;
    scratch.clear();
    tree.ContractPathInto(d, a, &scratch);
    std::printf("  contract the tree path %c..%c (%zu nodes join %c's "
                "partial SCC)\n",
                Name(a), Name(d), scratch.size(), Name(a));
    for (NodeId w : scratch) uf.UnionInto(a, w, a);
  };
  for (NodeId v = 0; v < n; ++v) {
    if (backedge[v] != kInvalidNode) contract(v, backedge[v]);
  }
  for (bool changed = true; changed;) {
    changed = false;
    for (const Edge& e : edges) {
      NodeId a = uf.Find(e.from), b = uf.Find(e.to);
      if (a != b && tree.IsAncestor(b, a)) {
        contract(a, b);
        changed = true;
      }
    }
  }

  std::printf("\nresulting SCCs:\n");
  std::vector<bool> printed(n, false);
  for (NodeId v = 0; v < n; ++v) {
    NodeId rep = uf.Find(v);
    if (printed[rep]) continue;
    printed[rep] = true;
    std::printf("  { ");
    for (NodeId w = 0; w < n; ++w) {
      if (uf.Find(w) == rep) std::printf("%c ", Name(w));
    }
    std::printf("}\n");
  }

  // Cross-check with the public API.
  std::unique_ptr<TempDir> dir;
  if (!TempDir::Create("ioscc-walkthrough", &dir).ok()) return 1;
  const std::string path = dir->FilePath("fig1.edges");
  if (!WriteEdgeFile(path, n, edges, kDefaultBlockSize, nullptr).ok()) {
    return 1;
  }
  SccResult via_api;
  RunStats stats;
  Status st = RunScc(SccAlgorithm::kTwoPhase, path, SemiExternalOptions(),
                     &via_api, &stats);
  if (!st.ok()) {
    std::fprintf(stderr, "2P-SCC: %s\n", st.ToString().c_str());
    return 1;
  }
  SccResult walkthrough;
  walkthrough.component.resize(n);
  for (NodeId v = 0; v < n; ++v) walkthrough.component[v] = uf.Find(v);
  walkthrough.Normalize();
  std::printf("\nmatches the library's 2P-SCC (%llu construction scans, "
              "%llu search scans): %s\n",
              static_cast<unsigned long long>(stats.iterations),
              static_cast<unsigned long long>(stats.search_scans),
              walkthrough == via_api ? "yes" : "NO (bug!)");
  return walkthrough == via_api ? 0 : 1;
}
