// io_audit_tool: explains a run's block I/O from a recorded access log.
//
//   $ scc_tool run g.edges --algorithm=1PB --audit=run.audit
//   $ io_audit_tool run.audit [--budgets=16,64,256,1024] [--policy=lru|clock]
//
// (Benches write the same format via --audit=FILE; see
// docs/OBSERVABILITY.md.) Prints three views:
//   1. per-file access patterns — sequential runs vs random jumps,
//      distinct blocks vs total accesses, re-read ratio;
//   2. a cache-savings curve — how many reads a block cache of c blocks
//      would have absorbed under the chosen eviction policy (LRU by
//      default, clock with --policy=clock), replayed at each --budgets
//      point. The replay is the conformance spec for the real buffer
//      manager: an actual run at budget c reports exactly these counts;
//   3. the I/O-budget verdicts recorded by the harness — measured I/O
//      vs the analytic theory.h bound, PASS/FAIL per run.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "harness/table.h"
#include "obs/io_audit.h"
#include "util/flags.h"

using namespace ioscc;  // examples only

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: io_audit_tool AUDITFILE [--budgets=N,N,...] "
               "[--policy=lru|clock]\n"
               "  AUDITFILE comes from --audit=FILE on scc_tool run or "
               "any bench binary\n");
  return 2;
}

std::vector<uint64_t> ParseBudgets(const std::string& spec) {
  std::vector<uint64_t> budgets;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string token = spec.substr(pos, comma - pos);
    if (!token.empty()) {
      budgets.push_back(std::strtoull(token.c_str(), nullptr, 10));
    }
    pos = comma + 1;
  }
  return budgets;
}

std::string Percent(double fraction) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f%%", fraction * 100.0);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  if (flags.positional().size() != 1) return Usage();
  const std::string path = flags.positional()[0];
  const std::vector<uint64_t> budgets =
      ParseBudgets(flags.GetString("budgets", "16,64,256,1024"));
  const std::string policy_name = flags.GetString("policy", "lru");
  if (policy_name != "lru" && policy_name != "clock") {
    std::fprintf(stderr, "--policy must be lru or clock (got %s)\n",
                 policy_name.c_str());
    return 2;
  }
  const CacheSimPolicy policy = policy_name == "clock"
                                    ? CacheSimPolicy::kClock
                                    : CacheSimPolicy::kLru;

  AuditLogData log;
  Status st = LoadAuditLog(path, &log);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  uint64_t reads = 0, writes = 0;
  for (const BlockAccessRecord& a : log.accesses) {
    (a.is_write ? writes : reads) += 1;
  }
  std::printf("%s: %s files, %s accesses (%s reads, %s writes)\n",
              path.c_str(), FormatCount(log.files.size()).c_str(),
              FormatCount(log.accesses.size()).c_str(),
              FormatCount(reads).c_str(), FormatCount(writes).c_str());

  std::printf("\n== per-file access patterns ==\n");
  Table patterns({"file", "reads", "writes", "distinct", "seq runs",
                  "jumps", "longest run", "re-reads", "re-read %"});
  for (const FileAccessPattern& p : AnalyzeAccessPatterns(log)) {
    std::string label = p.path.empty() ? "#" + std::to_string(p.file_id)
                                       : p.path;
    // Keep the table narrow: basename only (paths live in the header).
    const size_t slash = label.find_last_of('/');
    if (slash != std::string::npos) label = label.substr(slash + 1);
    patterns.AddRow({label, FormatCount(p.reads), FormatCount(p.writes),
                     FormatCount(p.distinct_blocks),
                     FormatCount(p.sequential_runs),
                     FormatCount(p.random_jumps),
                     FormatCount(p.longest_run), FormatCount(p.re_reads),
                     Percent(p.ReReadRatio())});
  }
  patterns.Print();

  std::printf("\n== %s cache savings (would-be read hits) ==\n",
              policy_name == "clock" ? "clock" : "LRU");
  Table curve({"cache blocks", "hits", "misses", "hit %"});
  for (const CacheSimPoint& point : CacheSavingsCurve(log, budgets, policy)) {
    curve.AddRow({FormatCount(point.budget_blocks),
                  FormatCount(point.hits), FormatCount(point.misses),
                  Percent(point.HitRatio())});
  }
  curve.Print();

  if (!log.budgets.empty()) {
    std::printf("\n== I/O budget verdicts ==\n");
    Table verdicts({"algorithm", "model", "measured I/Os", "bound I/Os",
                    "ratio", "verdict"});
    bool all_pass = true;
    for (const AuditBudgetRecord& b : log.budgets) {
      char ratio_buf[32];
      std::snprintf(ratio_buf, sizeof ratio_buf, "%.2f", b.ratio);
      verdicts.AddRow({b.algorithm, b.model, FormatCount(b.measured_ios),
                       FormatCount(b.bound_ios), ratio_buf,
                       b.pass ? "PASS" : "FAIL"});
      all_pass = all_pass && b.pass;
    }
    verdicts.Print();
    if (!all_pass) {
      std::fprintf(stderr,
                   "io_audit_tool: at least one run exceeded its analytic "
                   "I/O bound\n");
      return 1;
    }
  }
  return 0;
}
