// scc_tool: command-line driver over the whole library.
//
//   Generate a dataset:
//     $ scc_tool generate --kind=webspam --nodes=100000 --degree=8
//         --out=/tmp/web.edges
//     (kinds: webspam, citation, uniform, massive, large, small)
//
//   Compute SCCs (any algorithm) and print a component-size histogram:
//     $ scc_tool run /tmp/web.edges --algorithm=1PB [--verify]
//
//   Import/export SNAP-style text edge lists:
//     $ scc_tool import graph.txt /tmp/graph.edges [--densify=false]
//     $ scc_tool export /tmp/graph.edges graph.txt
//
//   Condense to the DAG representation + topological levels:
//     $ scc_tool condense /tmp/web.edges /tmp/dag.edges
//
//   Integrity + structural statistics:
//     $ scc_tool verify-file /tmp/web.edges
//     $ scc_tool fsck /tmp/web.edges      (exits non-zero on corruption,
//                                          names the first bad block)
//     $ scc_tool fsck /tmp/ckpts          (checkpoint dir or .snap file:
//                                          validates CRC/version/payload)
//     $ scc_tool stats /tmp/web.edges
//
//   Crash-consistent checkpoint/resume (docs/ROBUSTNESS.md):
//     $ scc_tool run /tmp/web.edges --checkpoint-dir=/tmp/ckpts
//     $ scc_tool run /tmp/web.edges --checkpoint-dir=/tmp/ckpts --resume
//
//   Reap scratch left behind by killed runs:
//     $ scc_tool clean-scratch [ROOT] [--age-seconds=86400] [--dry-run]
//
//   Show file metadata:
//     $ scc_tool info /tmp/web.edges

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "gen/generators.h"
#include "graph/digraph.h"
#include "graph/graph_io.h"
#include "harness/checkpoint.h"
#include "harness/io_budget.h"
#include "harness/runner.h"
#include "harness/theory.h"
#include "io/block_cache.h"
#include "io/block_file.h"
#include "io/temp_dir.h"
#include "util/signals.h"
#include "util/timer.h"
#include "harness/table.h"
#include "obs/metrics.h"
#include "obs/phase_profiler.h"
#include "obs/run_report.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "util/build_info.h"
#include "io/edge_file.h"
#include "io/text_import.h"
#include "io/verify_file.h"
#include "graph/graph_stats.h"
#include "scc/condense.h"
#include "scc/algorithms.h"
#include "scc/tarjan.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/thread_pool.h"

using namespace ioscc;  // examples only

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: scc_tool generate --kind=... --out=FILE [options]\n"
               "       scc_tool run FILE [--algorithm=1PB|1P|2P|DFS|EM] "
               "[--verify] [--time-limit=SECONDS] [--report] "
               "[--trace=FILE] [--audit=FILE] [--cache-blocks=N] "
               "[--cache-policy=lru|clock] [--io-backend=pread|direct] "
               "[--kernel=tarjan|kosaraju|parallel_fb] "
               "[--kernel-threads=N] [--kernel-granularity=N] "
               "[--threads=N] [--prefetch-depth=N] [--progress] "
               "[--telemetry-interval-ms=N] [--watchdog-ms=N] "
               "[--full-iterations] [--checkpoint-dir=DIR] "
               "[--checkpoint-every=N] [--checkpoint-keep=N] "
               "[--keep-checkpoints] [--resume]\n"
               "       scc_tool info FILE\n"
               "       scc_tool import TEXT FILE [--densify=false]\n"
               "       scc_tool export FILE TEXT\n"
               "       scc_tool condense FILE DAGFILE "
               "[--algorithm=...]\n"
               "       scc_tool verify-file FILE\n"
               "       scc_tool fsck FILE|CKPTDIR|SNAPSHOT\n"
               "       scc_tool stats FILE\n"
               "       scc_tool clean-scratch [ROOT] [--age-seconds=N] "
               "[--dry-run]\n"
               "generate also takes --format=1|2 (2 = per-block CRC32C "
               "checksums)\n");
  return 2;
}

int Generate(const Flags& flags) {
  const std::string kind = flags.GetString("kind", "uniform");
  const std::string out = flags.GetString("out", "");
  const uint64_t nodes = flags.GetInt("nodes", 100'000);
  const double degree = flags.GetDouble("degree", 5.0);
  const uint64_t seed = flags.GetInt("seed", 1);
  if (out.empty()) return Usage();
  // Generators write through WriteEdgeFile/EdgeWriter, which consult the
  // process default version — so one knob covers every kind.
  const uint64_t format = flags.GetInt("format", kEdgeFormatV1);
  if (format != kEdgeFormatV1 && format != kEdgeFormatV2) {
    std::fprintf(stderr, "unknown --format=%llu (expected 1 or 2)\n",
                 static_cast<unsigned long long>(format));
    return 2;
  }
  SetDefaultEdgeFileVersion(static_cast<uint32_t>(format));

  Status st;
  if (kind == "webspam") {
    st = GeneratePlantedSccFile(WebspamSpec(nodes, degree, seed), out,
                                kDefaultBlockSize, nullptr);
  } else if (kind == "citation") {
    CitationSpec spec;
    spec.node_count = nodes;
    spec.avg_degree = degree;
    spec.noise_fraction = flags.GetDouble("noise", 0.10);
    spec.seed = seed;
    st = GenerateCitationFile(spec, out, kDefaultBlockSize, nullptr);
  } else if (kind == "uniform") {
    std::vector<Edge> edges;
    st = GenerateUniformEdges(nodes,
                              static_cast<uint64_t>(nodes * degree), seed,
                              &edges);
    if (st.ok()) {
      st = WriteEdgeFile(out, nodes, edges, kDefaultBlockSize, nullptr);
    }
  } else if (kind == "massive" || kind == "large" || kind == "small") {
    PlantedSccSpec spec;
    if (kind == "massive") {
      spec = MassiveSccSpec(nodes, degree, flags.GetInt("scc-size", 4000),
                            seed);
    } else if (kind == "large") {
      spec = LargeSccSpec(nodes, degree, flags.GetInt("scc-size", 80),
                          flags.GetInt("scc-count", 50), seed);
    } else {
      spec = SmallSccSpec(nodes, degree, flags.GetInt("scc-size", 40),
                          flags.GetInt("scc-count", 100), seed);
    }
    st = GeneratePlantedSccFile(spec, out, kDefaultBlockSize, nullptr);
  } else {
    std::fprintf(stderr, "unknown kind: %s\n", kind.c_str());
    return 2;
  }
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  EdgeFileInfo info;
  (void)ReadEdgeFileInfo(out, &info);
  std::printf("wrote %s: %s nodes, %s edges\n", out.c_str(),
              FormatCount(info.node_count).c_str(),
              FormatCount(info.edge_count).c_str());
  return 0;
}

int Info(const std::string& path) {
  EdgeFileInfo info;
  Status st = ReadEdgeFileInfo(path, &info);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("%s: %s nodes, %s edges, block size %zu, %s blocks, "
              "format v%u%s\n",
              path.c_str(), FormatCount(info.node_count).c_str(),
              FormatCount(info.edge_count).c_str(), info.block_size,
              FormatCount(info.TotalBlocks()).c_str(), info.version,
              info.version >= kEdgeFormatV2 ? " (checksummed)" : "");
  return 0;
}

int RunOn(const std::string& path, const Flags& flags) {
  SccAlgorithm algorithm;
  Status st = ParseAlgorithm(flags.GetString("algorithm", "1PB"),
                             &algorithm);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 2;
  }
  SemiExternalOptions options;
  options.time_limit_seconds = flags.GetDouble("time-limit", 0);
  // In-memory batch kernel for 1PB-SCC (scc/parallel_scc.h). RAM-only:
  // results and the logical I/O ledger are byte-identical whichever
  // kernel (and thread count) is selected.
  const std::string kernel_name = flags.GetString("kernel", "");
  if (!kernel_name.empty()) {
    st = ParseBatchKernel(kernel_name, &options.batch_kernel);
    if (!st.ok()) {
      std::fprintf(stderr, "--kernel: %s\n", st.ToString().c_str());
      return 2;
    }
  }
  const int64_t kernel_threads = flags.GetInt("kernel-threads", 0);
  const int64_t kernel_granularity = flags.GetInt("kernel-granularity", 0);
  if (kernel_threads < 0 || kernel_granularity < 0) {
    std::fprintf(stderr,
                 "--kernel-threads and --kernel-granularity must be >= 0\n");
    return 2;
  }
  options.kernel_threads = static_cast<uint32_t>(kernel_threads);
  options.kernel_granularity = static_cast<uint32_t>(kernel_granularity);
  if (flags.GetBool("verbose", false)) SetLogLevel(LogLevel::kDebug);
  const bool report = flags.GetBool("report", false);
  const std::string trace_path = flags.GetString("trace", "");
  std::unique_ptr<Tracer> tracer;
  if (!trace_path.empty()) {
    tracer = std::make_unique<Tracer>();
    SetTracer(tracer.get());
  }
  if (report || tracer != nullptr) SetMetricsEnabled(true);
  // Like the benches: a report or trace sink brings the phase profiler,
  // so run records carry per-phase wall/CPU/RSS and trace args carry
  // the resource samples.
  std::unique_ptr<PhaseProfiler> profiler;
  if (report || tracer != nullptr) {
    profiler = std::make_unique<PhaseProfiler>();
    SetPhaseProfiler(profiler.get());
  }
  const std::string audit_path = flags.GetString("audit", "");
  std::unique_ptr<BlockAccessLog> audit;
  if (!audit_path.empty()) {
    audit = std::make_unique<BlockAccessLog>();
    SetBlockAccessLog(audit.get());
  }
  const int64_t cache_blocks = flags.GetInt("cache-blocks", 0);
  if (cache_blocks < 0) {
    std::fprintf(stderr, "--cache-blocks must be >= 0\n");
    return 2;
  }
  const std::string cache_policy = flags.GetString("cache-policy", "lru");
  if (cache_policy != "lru" && cache_policy != "clock") {
    std::fprintf(stderr, "--cache-policy must be lru or clock (got %s)\n",
                 cache_policy.c_str());
    return 2;
  }
  const std::string io_backend = flags.GetString("io-backend", "pread");
  if (io_backend != "pread" && io_backend != "direct") {
    std::fprintf(stderr, "--io-backend must be pread or direct (got %s)\n",
                 io_backend.c_str());
    return 2;
  }
  // Page provider for every BlockFile the run opens: buffered stdio
  // (default) or O_DIRECT with a silent buffered fallback where the
  // filesystem or block size rules it out. Never changes results or
  // logical I/O.
  SetDefaultIoBackend(io_backend == "direct" ? IoBackend::kDirect
                                             : IoBackend::kBuffered);
  const int64_t threads = flags.GetInt("threads", 0);
  const int64_t prefetch_depth = flags.GetInt("prefetch-depth", 1);
  if (threads < 0 || prefetch_depth < 0) {
    std::fprintf(stderr, "--threads and --prefetch-depth must be >= 0\n");
    return 2;
  }
  std::unique_ptr<ThreadPool> pool;
  if (threads > 0) {
    pool = std::make_unique<ThreadPool>(static_cast<size_t>(threads));
    SetIoThreadPool(pool.get());
  } else if (prefetch_depth >= 2) {
    std::fprintf(stderr,
                 "--prefetch-depth without --threads: falling back to the "
                 "synchronous double buffer\n");
  }
  std::unique_ptr<BufferManager> cache;
  if (cache_blocks > 0) {
    // Real buffer manager + read-ahead (io/buffer_manager.h), with the
    // chosen eviction policy. Logical I/O counts and the SCC result are
    // identical at every budget and policy; only the physical reads drop.
    cache = std::make_unique<BufferManager>(
        static_cast<uint64_t>(cache_blocks),
        cache_policy == "clock" ? EvictionPolicy::kClock
                                : EvictionPolicy::kLru);
    SetBufferManager(cache.get());
  } else if (prefetch_depth >= 2 && pool != nullptr) {
    // The read-ahead setting rides on the cache seam; a budget-0 cache
    // caches nothing and just carries the pipeline depth.
    cache = std::make_unique<BufferManager>(0);
    SetBufferManager(cache.get());
  }
  if (cache != nullptr) {
    cache->set_prefetch_depth(static_cast<int>(prefetch_depth));
  }
  // Live telemetry engine (obs/telemetry.h): the sampler thread replaces
  // the old per-iteration \r-rewriting progress lambda. --progress turns
  // on the status renderer (TTY: one updating line; non-TTY: throttled
  // newline records); --watchdog-ms arms the stall watchdog; --report
  // rides along so the JSONL output carries the timeseries record.
  // Declared after the pool/cache so its destructor joins the sampler
  // before the pool it observes is torn down.
  const bool progress = flags.GetBool("progress", false);
  const int64_t watchdog_ms = flags.GetInt("watchdog-ms", 0);
  const int64_t telemetry_interval =
      flags.GetInt("telemetry-interval-ms", 200);
  std::unique_ptr<Telemetry> telemetry;
  if (progress || watchdog_ms > 0 || report) {
    TelemetryOptions topts;
    topts.sample_interval_ms =
        telemetry_interval > 0 ? static_cast<uint64_t>(telemetry_interval)
                               : 200;
    if (watchdog_ms > 0) {
      topts.watchdog_window_ms = static_cast<uint64_t>(watchdog_ms);
    }
    topts.render_status = progress;
    telemetry = std::make_unique<Telemetry>(topts);
    SetTelemetry(telemetry.get());
  }
  // Crash-consistent checkpoint/resume (harness/checkpoint.h). Without
  // --checkpoint-dir the hook stays null and the run is byte-identical
  // to a build of this tool that has never heard of checkpoints.
  CheckpointOptions ckpt_options;
  ckpt_options.dir = flags.GetString("checkpoint-dir", "");
  const int64_t ckpt_every = flags.GetInt("checkpoint-every", 1);
  const int64_t ckpt_keep = flags.GetInt("checkpoint-keep", 2);
  if (ckpt_every < 1 || ckpt_keep < 1) {
    std::fprintf(stderr,
                 "--checkpoint-every and --checkpoint-keep must be >= 1\n");
    return 2;
  }
  ckpt_options.every = static_cast<uint64_t>(ckpt_every);
  ckpt_options.keep = static_cast<uint64_t>(ckpt_keep);
  ckpt_options.remove_on_success = !flags.GetBool("keep-checkpoints", false);
  const bool resume = flags.GetBool("resume", false);
  if (resume && ckpt_options.dir.empty()) {
    std::fprintf(stderr, "--resume requires --checkpoint-dir\n");
    return 2;
  }
  Checkpointer checkpointer(ckpt_options);
  if (checkpointer.enabled()) {
    st = checkpointer.OpenForRun(AlgorithmName(algorithm), path, resume);
    if (!st.ok()) {
      std::fprintf(stderr, "checkpoint: %s\n", st.ToString().c_str());
      return 1;
    }
    options.checkpoint = &checkpointer;
  }

  RunOutcome outcome = RunAlgorithmOnFile(algorithm, path, options);
  if (checkpointer.enabled()) {
    checkpointer.OnRunFinished(outcome.status.ok());
    std::fprintf(
        stderr,
        "checkpoint: %llu written, %llu write failures%s%s; resume: "
        "%s (%llu fallbacks)\n",
        static_cast<unsigned long long>(checkpointer.written()),
        static_cast<unsigned long long>(checkpointer.write_failures()),
        checkpointer.degraded() ? " (degraded: checkpointing disabled)" : "",
        outcome.status.ok() && ckpt_options.remove_on_success
            ? ", removed after success"
            : "",
        checkpointer.resumed() ? "yes" : "no",
        static_cast<unsigned long long>(checkpointer.resume_fallbacks()));
  }
  if (telemetry != nullptr) SetTelemetry(nullptr);
  if (pool != nullptr) SetIoThreadPool(nullptr);
  if (cache != nullptr) {
    SetBlockCache(nullptr);
    const BufferManager::Stats cs = cache->stats();
    std::fprintf(stderr,
                 "cache(%s): %lld blocks (%.1f MiB charged to the "
                 "semi-external model), %llu hits, %llu misses, "
                 "%llu prefetch hits\n",
                 cache_policy.c_str(), static_cast<long long>(cache_blocks),
                 static_cast<double>(TheoryCacheMemoryBytes(
                     cache->budget_blocks(), kDefaultBlockSize)) /
                     (1024.0 * 1024.0),
                 static_cast<unsigned long long>(cs.hits),
                 static_cast<unsigned long long>(cs.misses),
                 static_cast<unsigned long long>(cs.prefetch_hits));
  }
  if (audit != nullptr) {
    SetBlockAccessLog(nullptr);
    if (outcome.io_budget.has_value()) {
      audit->AddBudget(
          ToAuditBudgetRecord(*outcome.io_budget, algorithm, path));
    }
    Status audit_st = audit->WriteTo(audit_path);
    if (!audit_st.ok()) {
      std::fprintf(stderr, "audit: %s\n", audit_st.ToString().c_str());
    }
  }
  if (profiler != nullptr) SetPhaseProfiler(nullptr);
  if (tracer != nullptr) {
    SetTracer(nullptr);
    Status trace_st = tracer->WriteChromeTrace(trace_path);
    if (!trace_st.ok()) {
      std::fprintf(stderr, "trace: %s\n", trace_st.ToString().c_str());
    }
  }
  if (report) {
    // Machine-readable run report on stdout (JSONL: run + metrics line).
    RunReportEntry entry = MakeReportEntry("scc_tool", algorithm, path,
                                           outcome);
    entry.full_iterations = flags.GetBool("full-iterations", false);
    if (telemetry != nullptr) {
      entry.watchdog_fires = telemetry->watchdog_fires();
    }
    if (cache_blocks > 0) {
      entry.cache_blocks = static_cast<uint64_t>(cache_blocks);
      entry.cache_memory_bytes = TheoryCacheMemoryBytes(
          entry.cache_blocks, kDefaultBlockSize);
    }
    if (cache != nullptr) {
      entry.prefetch_depth = static_cast<uint64_t>(cache->prefetch_depth());
      entry.cache_policy = cache_policy;
    }
    if (cache != nullptr || io_backend != "pread") {
      entry.io_backend = io_backend;
    }
    if (pool != nullptr) {
      entry.io_threads = static_cast<uint64_t>(pool->num_threads());
    }
    if (!kernel_name.empty()) {
      entry.kernel_name = BatchKernelName(options.batch_kernel);
      entry.kernel_threads = options.kernel_threads;
      entry.kernel_granularity = options.kernel_granularity;
    }
    AttachCheckpointInfo(&entry, checkpointer);
    std::printf("%s\n", RunReportEntryToJson(entry).c_str());
    std::printf(
        "%s\n",
        MetricsSnapshotToJson(MetricsRegistry::Global().Snapshot()).c_str());
    if (telemetry != nullptr) {
      std::printf("%s\n", telemetry->TimeseriesToJson().c_str());
      const std::string watchdog_record = telemetry->WatchdogReportJson();
      if (!watchdog_record.empty()) {
        std::printf("%s\n", watchdog_record.c_str());
      }
    }
  }
  if (SignalRequested() != 0) {
    // Graceful SIGINT/SIGTERM: the run wound down at a pass boundary
    // (final checkpoint written when enabled), the report/trace/audit
    // sinks above are flushed — exit 128+sig so scripts can tell a
    // cancelled run from a failed one.
    std::fprintf(stderr, "%s: stopped by signal after a clean boundary\n",
                 AlgorithmName(algorithm));
    return GracefulExitCode();
  }
  if (!outcome.status.ok()) {
    std::fprintf(stderr, "%s: %s\n", AlgorithmName(algorithm),
                 outcome.status.ToString().c_str());
    return 1;
  }
  const SccResult& result = outcome.result;
  const RunStats& stats = outcome.stats;
  if (!report) {
    std::printf("%s: %s SCCs, largest %s nodes, %s nodes in non-trivial "
                "SCCs\n",
                AlgorithmName(algorithm),
                FormatCount(result.ComponentCount()).c_str(),
                FormatCount(result.LargestComponentSize()).c_str(),
                FormatCount(result.NodesInNontrivialSccs()).c_str());
    std::printf("%s, %llu iterations, %s\n", stats.io.Format().c_str(),
                static_cast<unsigned long long>(stats.iterations),
                FormatSeconds(stats.seconds).c_str());
    if (outcome.io_budget.has_value()) {
      std::printf("io budget: %s\n", outcome.io_budget->Format().c_str());
    }
  }

  if (!report) {
    // Component-size histogram (log2 buckets).
    std::map<int, uint64_t> histogram;
    for (uint32_t size : result.ComponentSizes()) {
      if (size == 0) continue;
      int bucket = 0;
      while ((1u << (bucket + 1)) <= size) ++bucket;
      ++histogram[bucket];
    }
    Table table({"SCC size", "# SCCs"});
    for (const auto& [bucket, count] : histogram) {
      std::string label = FormatCount(1ull << bucket) + ".." +
                          FormatCount((2ull << bucket) - 1);
      table.AddRow({label, FormatCount(count)});
    }
    table.Print();
  }

  if (flags.GetBool("verify", false)) {
    Digraph graph;
    st = LoadDigraph(path, &graph, nullptr);
    if (!st.ok()) {
      std::fprintf(stderr, "verify load: %s\n", st.ToString().c_str());
      return 1;
    }
    SccResult oracle = TarjanScc(graph);
    // With --report, stdout carries only JSON; route the verdict around it.
    std::FILE* out = report ? stderr : stdout;
    if (result == oracle) {
      std::fprintf(out, "verify: OK (matches in-memory Tarjan)\n");
    } else {
      std::fprintf(out, "verify: MISMATCH against in-memory Tarjan!\n");
      return 1;
    }
  }
  return 0;
}

int VerifyFile(const std::string& path) {
  EdgeFileFingerprint fp;
  Status st = VerifyEdgeFile(path, &fp, nullptr);
  if (!st.ok()) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(), st.ToString().c_str());
    return 1;
  }
  std::printf("%s: OK — %s nodes, %s edges, stream digest %016llx, "
              "multiset digest %016llx\n",
              path.c_str(), FormatCount(fp.node_count).c_str(),
              FormatCount(fp.edge_count).c_str(),
              static_cast<unsigned long long>(fp.stream_digest),
              static_cast<unsigned long long>(fp.multiset_digest));
  return 0;
}

int Fsck(const std::string& path) {
  // Checkpoint targets: a directory of ckpt-*.snap files, or one
  // snapshot. Both validate magic/version/CRC and that the payload
  // parses; the first bad record is named and the exit is non-zero.
  std::error_code ec;
  if (std::filesystem::is_directory(path, ec) && !ec) {
    CheckpointFsckReport ckpt;
    Status st = FsckCheckpointDir(path, &ckpt);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      std::fprintf(stderr,
                   "fsck: first bad snapshot %s (%llu of %llu bad)\n",
                   ckpt.first_bad_path.c_str(),
                   static_cast<unsigned long long>(ckpt.snapshots_bad),
                   static_cast<unsigned long long>(ckpt.snapshots_checked));
      return 1;
    }
    std::printf("%s: clean — %llu checkpoint snapshots validated\n",
                path.c_str(),
                static_cast<unsigned long long>(ckpt.snapshots_checked));
    return 0;
  }
  if (path.size() > 5 && path.compare(path.size() - 5, 5, ".snap") == 0) {
    std::string summary;
    Status st = FsckSnapshotFile(path, &summary);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("%s: clean — %s\n", path.c_str(), summary.c_str());
    return 0;
  }
  FsckReport report;
  Status st = FsckEdgeFile(path, &report, nullptr);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    if (report.first_bad_block >= 0) {
      std::fprintf(stderr,
                   "fsck: first corrupt block %lld of %s (%s of %s blocks "
                   "clean)\n",
                   static_cast<long long>(report.first_bad_block),
                   path.c_str(), FormatCount(report.blocks_checked).c_str(),
                   FormatCount(report.block_count).c_str());
    }
    return 1;
  }
  std::printf("%s: clean — format v%u, %s blocks checked, %s nodes, "
              "%s edges\n",
              path.c_str(), report.version,
              FormatCount(report.blocks_checked).c_str(),
              FormatCount(report.fingerprint.node_count).c_str(),
              FormatCount(report.fingerprint.edge_count).c_str());
  if (report.version < kEdgeFormatV2) {
    std::printf("note: format v1 has no per-block checksums; only "
                "structural damage is detectable\n");
  }
  return 0;
}

int Stats(const std::string& path) {
  GraphStats stats;
  Status st = ComputeGraphStats(path, &stats, nullptr);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("%s: %s nodes, %s edges (avg degree %.2f, %s self-loops)\n",
              path.c_str(), FormatCount(stats.node_count).c_str(),
              FormatCount(stats.edge_count).c_str(), stats.avg_degree,
              FormatCount(stats.self_loops).c_str());
  std::printf("max out-degree %s, max in-degree %s; %s sources, %s sinks, "
              "%s isolated\n",
              FormatCount(stats.max_out_degree).c_str(),
              FormatCount(stats.max_in_degree).c_str(),
              FormatCount(stats.sources).c_str(),
              FormatCount(stats.sinks).c_str(),
              FormatCount(stats.isolated).c_str());
  Table table({"out-degree", "# nodes"});
  for (size_t b = 0; b < stats.out_degree_histogram.size(); ++b) {
    if (stats.out_degree_histogram[b] == 0) continue;
    std::string label =
        b == 0 ? "0"
               : FormatCount(1ull << (b - 1)) + ".." +
                     FormatCount((1ull << b) - 1);
    table.AddRow({label, FormatCount(stats.out_degree_histogram[b])});
  }
  table.Print();
  return 0;
}

int CleanScratch(const Flags& flags) {
  const auto& positional = flags.positional();
  std::string root;
  if (positional.size() >= 2) {
    root = positional[1];
  } else if (const char* env = std::getenv("IOSCC_TMPDIR")) {
    root = env;
  } else {
    std::error_code ec;
    auto tmp = std::filesystem::temp_directory_path(ec);
    if (ec) {
      std::fprintf(stderr, "clean-scratch: no scratch root (give one, or "
                           "set IOSCC_TMPDIR)\n");
      return 2;
    }
    root = tmp.string();
  }
  const int64_t age = flags.GetInt("age-seconds", 86'400);
  if (age < 0) {
    std::fprintf(stderr, "--age-seconds must be >= 0\n");
    return 2;
  }
  const bool dry_run = flags.GetBool("dry-run", false);
  ScratchSweepStats stats;
  Status st = SweepStaleScratch(root, static_cast<uint64_t>(age), dry_run,
                                &stats);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("%s%s: %llu stale scratch dirs, %llu stray .tmp files%s; "
              "kept %llu live, %llu young\n",
              dry_run ? "[dry-run] " : "", root.c_str(),
              static_cast<unsigned long long>(stats.dirs_removed),
              static_cast<unsigned long long>(stats.files_removed),
              dry_run ? " would be removed" : " removed",
              static_cast<unsigned long long>(stats.skipped_live),
              static_cast<unsigned long long>(stats.skipped_young));
  return 0;
}

int Import(const std::string& text, const std::string& edges,
           const Flags& flags) {
  TextImportOptions options;
  options.densify = flags.GetBool("densify", true);
  options.drop_self_loops = flags.GetBool("drop-self-loops", false);
  TextImportResult result;
  Status st = ImportTextEdges(text, edges, options, &result, nullptr);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("imported %s -> %s: %s nodes, %s edges (%s comment lines, "
              "%s self-loops dropped)\n",
              text.c_str(), edges.c_str(),
              FormatCount(result.node_count).c_str(),
              FormatCount(result.edge_count).c_str(),
              FormatCount(result.comment_lines).c_str(),
              FormatCount(result.dropped_self_loops).c_str());
  return 0;
}

int Export(const std::string& edges, const std::string& text) {
  Status st = ExportTextEdges(edges, text, nullptr);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("exported %s -> %s\n", edges.c_str(), text.c_str());
  return 0;
}

int Condense(const std::string& graph, const std::string& dag,
             const Flags& flags) {
  SccAlgorithm algorithm;
  Status st = ParseAlgorithm(flags.GetString("algorithm", "1PB"),
                             &algorithm);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 2;
  }
  SemiExternalOptions options;
  options.time_limit_seconds = flags.GetDouble("time-limit", 0);
  SccResult scc;
  RunStats stats;
  st = RunScc(algorithm, graph, options, &scc, &stats);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  CondensationStats cstats;
  IoStats io;
  st = WriteCondensation(graph, scc, dag, &cstats, &io);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::vector<uint32_t> levels;
  uint64_t scans = 0;
  st = TopologicalLevels(dag, &levels, &scans, &io);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  uint32_t depth = 0;
  for (NodeId v = 0; v < scc.node_count(); ++v) {
    if (scc.component[v] == v) depth = std::max(depth, levels[v]);
  }
  std::printf("condensed %s -> %s: %s components, %s DAG edges, depth %u "
              "(toposort in %s scans)\n",
              graph.c_str(), dag.c_str(),
              FormatCount(cstats.component_count).c_str(),
              FormatCount(cstats.edge_count).c_str(), depth,
              FormatCount(scans).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  if (flags.GetBool("version", false)) {
    std::printf("%s\n", BuildVersionLine("scc_tool").c_str());
    return 0;
  }
  InstallGracefulSignalHandlers();
  const auto& positional = flags.positional();
  if (positional.empty()) return Usage();
  const std::string& command = positional[0];
  // Opportunistic reaper: when the user pinned a private scratch root,
  // quietly sweep scratch that a SIGKILLed previous run stranded there.
  // The 24h age gate keeps concurrent runs' fresh scratch safe; the
  // explicit clean-scratch command exists for anything more aggressive.
  if (command != "clean-scratch") {
    if (const char* env = std::getenv("IOSCC_TMPDIR")) {
      ScratchSweepStats sweep;
      (void)SweepStaleScratch(env, 86'400, /*dry_run=*/false, &sweep);
      if (sweep.dirs_removed > 0 || sweep.files_removed > 0) {
        std::fprintf(stderr,
                     "scratch: reaped %llu stale dirs, %llu stray .tmp "
                     "files under %s\n",
                     static_cast<unsigned long long>(sweep.dirs_removed),
                     static_cast<unsigned long long>(sweep.files_removed),
                     env);
      }
    }
  }
  if (command == "clean-scratch") return CleanScratch(flags);
  if (command == "generate") return Generate(flags);
  if (command == "info" && positional.size() == 2) {
    return Info(positional[1]);
  }
  if (command == "run" && positional.size() == 2) {
    return RunOn(positional[1], flags);
  }
  if (command == "import" && positional.size() == 3) {
    return Import(positional[1], positional[2], flags);
  }
  if (command == "export" && positional.size() == 3) {
    return Export(positional[1], positional[2]);
  }
  if (command == "condense" && positional.size() == 3) {
    return Condense(positional[1], positional[2], flags);
  }
  if (command == "verify-file" && positional.size() == 2) {
    return VerifyFile(positional[1]);
  }
  if (command == "fsck" && positional.size() == 2) {
    return Fsck(positional[1]);
  }
  if (command == "stats" && positional.size() == 2) {
    return Stats(positional[1]);
  }
  return Usage();
}
