// Quickstart: build a small graph, store it as an on-disk edge file, and
// compute its SCCs with the paper's best algorithm (1PB-SCC).
//
//   $ ./examples/quickstart
//
// This walks through the whole public API surface a user needs:
// EdgeWriter -> edge file -> RunScc -> SccResult.

#include <cstdio>
#include <map>
#include <memory>
#include <vector>

#include "io/edge_file.h"
#include "io/temp_dir.h"
#include "scc/algorithms.h"

using namespace ioscc;  // examples only; library code never does this

int main() {
  // The running example of the paper (Fig. 1): nodes a..l as 0..11 with
  // two non-trivial SCCs, {b,c,d,e} and {g,h,i,j}.
  const NodeId n = 12;
  const std::vector<Edge> edges = {
      {0, 1}, {0, 6}, {0, 7}, {1, 2}, {1, 3},  {2, 4},  {3, 4},
      {4, 1}, {5, 6}, {2, 5}, {6, 9}, {9, 8},  {8, 7},  {7, 6},
      {6, 8}, {8, 10}, {9, 11}, {11, 10},
  };

  // 1. Write the graph to disk. Semi-external algorithms never hold the
  //    edge set in memory; they stream this file.
  std::unique_ptr<TempDir> dir;
  Status st = TempDir::Create("ioscc-quickstart", &dir);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  const std::string path = dir->FilePath("figure1.edges");
  st = WriteEdgeFile(path, n, edges, kDefaultBlockSize, nullptr);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  // 2. Run 1PB-SCC (Algorithm 8 of the paper) on the file.
  SemiExternalOptions options;  // paper defaults: tau = 0.5%, reject every 5
  SccResult result;
  RunStats stats;
  st = RunScc(SccAlgorithm::kOnePhaseBatch, path, options, &result, &stats);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  // 3. Inspect the partition: result.component[v] is the smallest node id
  //    in v's SCC.
  std::map<NodeId, std::vector<NodeId>> components;
  for (NodeId v = 0; v < n; ++v) components[result.component[v]].push_back(v);

  std::printf("%llu SCCs found with %llu block I/Os in %llu iterations:\n",
              static_cast<unsigned long long>(result.ComponentCount()),
              static_cast<unsigned long long>(stats.io.TotalBlockIos()),
              static_cast<unsigned long long>(stats.iterations));
  for (const auto& [label, members] : components) {
    std::printf("  { ");
    for (NodeId v : members) std::printf("%c ", 'a' + static_cast<char>(v));
    std::printf("}\n");
  }
  return 0;
}
