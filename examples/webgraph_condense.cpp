// Web-graph condensation: the paper's motivating pipeline. Generate a
// web-scale-shaped graph (one giant SCC plus a long tail, like
// WEBSPAM-UK2007), find all SCCs semi-externally, contract each SCC to a
// node, and emit the DAG with a topological order — the preprocessing
// step reachability indexes (GRAIL), external bisimulation and graph
// pattern matching all require.
//
//   $ ./examples/webgraph_condense [--nodes=200000] [--degree=8] [--seed=7]

#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "gen/generators.h"
#include "io/edge_file.h"
#include "io/temp_dir.h"
#include "scc/algorithms.h"
#include "scc/condense.h"
#include "util/flags.h"

using namespace ioscc;  // examples only

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  const uint64_t nodes = flags.GetInt("nodes", 200'000);
  const double degree = flags.GetDouble("degree", 8.0);
  const uint64_t seed = flags.GetInt("seed", 7);

  std::unique_ptr<TempDir> dir;
  Status st = TempDir::Create("ioscc-condense", &dir);
  if (!st.ok()) return 1;

  // 1. A web-shaped graph on disk.
  const std::string graph_path = dir->FilePath("web.edges");
  st = GeneratePlantedSccFile(WebspamSpec(nodes, degree, seed), graph_path,
                              kDefaultBlockSize, nullptr);
  if (!st.ok()) {
    std::fprintf(stderr, "generate: %s\n", st.ToString().c_str());
    return 1;
  }
  EdgeFileInfo info;
  (void)ReadEdgeFileInfo(graph_path, &info);
  std::printf("web graph: %llu nodes, %llu edges on disk\n",
              static_cast<unsigned long long>(info.node_count),
              static_cast<unsigned long long>(info.edge_count));

  // 2. All SCCs, semi-externally.
  SemiExternalOptions options;
  SccResult scc;
  RunStats stats;
  st = RunScc(SccAlgorithm::kOnePhaseBatch, graph_path, options, &scc,
              &stats);
  if (!st.ok()) {
    std::fprintf(stderr, "scc: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("SCCs: %llu (largest %u nodes; %llu nodes in non-trivial "
              "SCCs) using %llu block I/Os\n",
              static_cast<unsigned long long>(scc.ComponentCount()),
              scc.LargestComponentSize(),
              static_cast<unsigned long long>(scc.NodesInNontrivialSccs()),
              static_cast<unsigned long long>(stats.io.TotalBlockIos()));

  // 3. Contract to the DAG: one streaming pass (duplicate DAG edges are
  //    kept; consumers that need uniqueness can external-sort with dedup).
  const std::string dag_path = dir->FilePath("dag.edges");
  IoStats io;
  CondensationStats cstats;
  st = WriteCondensation(graph_path, scc, dag_path, &cstats, &io);
  if (!st.ok()) {
    std::fprintf(stderr, "condense: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("condensation DAG: %llu component nodes, %llu edges "
              "(%llu intra-SCC edges dropped)\n",
              static_cast<unsigned long long>(cstats.component_count),
              static_cast<unsigned long long>(cstats.edge_count),
              static_cast<unsigned long long>(cstats.dropped_intra));

  // 4. Topological order of the components by repeated longest-path
  //    relaxation over the DAG stream (sequential scans only).
  std::vector<uint32_t> level;
  uint64_t scans = 0;
  st = TopologicalLevels(dag_path, &level, &scans, &io);
  if (!st.ok()) {
    std::fprintf(stderr, "toposort: %s\n", st.ToString().c_str());
    return 1;
  }
  uint32_t max_level = 0;
  for (NodeId v = 0; v < info.node_count; ++v) {
    if (scc.component[v] == v) max_level = std::max(max_level, level[v]);
  }
  std::printf("topological levels: %u (DAG depth), computed in %llu "
              "sequential scans, %llu block I/Os total\n",
              max_level + 1, static_cast<unsigned long long>(scans),
              static_cast<unsigned long long>(io.TotalBlockIos()));
  return 0;
}
