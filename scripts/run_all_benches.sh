#!/usr/bin/env bash
# Runs every table/figure bench sequentially and tees the output.
#
#   scripts/run_all_benches.sh [build-dir] [output-file]
#
# Pass-through flags for individual binaries (scale, seeds, time limits)
# are documented in bench/bench_common.h; this script uses the defaults,
# which regenerate every paper artifact at ~1/100-1/200 scale in well
# under an hour.

set -u
BUILD_DIR="${1:-build}"
OUT="${2:-bench_output.txt}"

: > "$OUT"
for b in \
  bench_table1_reduction \
  bench_table3_real \
  bench_fig12_webspam_scale \
  bench_fig13_memory \
  bench_fig14_vary_nodes \
  bench_fig15_vary_degree \
  bench_fig16_vary_scc_size \
  bench_fig17_vary_scc_count \
  bench_ablation \
  bench_micro; do
  echo "===== $b =====" | tee -a "$OUT"
  "$BUILD_DIR/bench/$b" 2>/dev/null | tee -a "$OUT"
  echo | tee -a "$OUT"
done
echo "full output in $OUT"
