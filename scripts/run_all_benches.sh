#!/usr/bin/env bash
# Runs every table/figure bench sequentially, tees the output, and folds
# the JSONL run reports into one canonical BENCH_<tag>.json.
#
#   scripts/run_all_benches.sh [build-dir] [output-file] [report-dir] \
#       [--threads=N] [--prefetch-depth=N] [--cache-blocks=N] [--tag=NAME] \
#       [--cache-policy=lru|clock] [--io-backend=pread|direct] \
#       [--kernel=tarjan|kosaraju|parallel_fb] [--kernel-threads=N] \
#       [--telemetry-interval-ms=N] [--watchdog-ms=N]
#
# Pass-through flags for individual binaries (scale, seeds, time limits)
# are documented in bench/bench_common.h; this script uses the defaults,
# which regenerate every paper artifact at ~1/100-1/200 scale in well
# under an hour. --threads/--prefetch-depth/--cache-blocks configure the
# threaded I/O pipeline on every bench (bench_io sweeps 0 and the given
# thread count across its depth list) and are recorded in the BENCH json
# environment block so bench_compare knows which fields to gate.
#
# Each bench additionally writes its machine-readable artifacts into
# report-dir (default: bench_reports/): <bench>.jsonl (run report, schema
# in docs/OBSERVABILITY.md), <bench>.trace.json (Chrome trace_event —
# open in chrome://tracing or https://ui.perfetto.dev), and
# <bench>.audit (block-access log — inspect with
# build/examples/io_audit_tool). bench_micro is a google-benchmark binary
# and uses its own --benchmark_* flags instead. Finally,
# build/examples/bench_report aggregates every .jsonl into
# BENCH_<tag>.json (schema: docs/PERFORMANCE.md, "Perf trajectory");
# gate it with build/examples/bench_compare against a committed baseline.

set -euo pipefail

BUILD_DIR="build"
OUT="bench_output.txt"
REPORT_DIR="bench_reports"
THREADS=0
PREFETCH_DEPTH=1
CACHE_BLOCKS=0
CACHE_POLICY=""
IO_BACKEND=""
KERNEL=""
KERNEL_THREADS=""
TAG="local"
TELEMETRY_INTERVAL_MS=200
WATCHDOG_MS=0

positional=0
for arg in "$@"; do
  case "$arg" in
    --threads=*) THREADS="${arg#*=}" ;;
    --prefetch-depth=*) PREFETCH_DEPTH="${arg#*=}" ;;
    --cache-blocks=*) CACHE_BLOCKS="${arg#*=}" ;;
    --cache-policy=*) CACHE_POLICY="${arg#*=}" ;;
    --io-backend=*) IO_BACKEND="${arg#*=}" ;;
    --kernel=*) KERNEL="${arg#*=}" ;;
    --kernel-threads=*) KERNEL_THREADS="${arg#*=}" ;;
    --tag=*) TAG="${arg#*=}" ;;
    --telemetry-interval-ms=*) TELEMETRY_INTERVAL_MS="${arg#*=}" ;;
    --watchdog-ms=*) WATCHDOG_MS="${arg#*=}" ;;
    --*)
      echo "error: unknown flag '$arg'" >&2
      exit 2
      ;;
    *)
      case $positional in
        0) BUILD_DIR="$arg" ;;
        1) OUT="$arg" ;;
        2) REPORT_DIR="$arg" ;;
        *)
          echo "error: too many positional arguments ('$arg')" >&2
          exit 2
          ;;
      esac
      positional=$((positional + 1))
      ;;
  esac
done

if [[ ! -d "$BUILD_DIR/bench" ]]; then
  echo "error: '$BUILD_DIR/bench' does not exist — build first:" >&2
  echo "  cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j" >&2
  exit 1
fi

# Pipeline flags forwarded to every standard bench (bench_common.h).
# The telemetry sampler cadence and stall-watchdog window ride along so a
# long bench session gets timeseries records and stall diagnostics in its
# JSONL reports (obs/telemetry.h).
PIPELINE_FLAGS=("--threads=$THREADS" "--prefetch-depth=$PREFETCH_DEPTH"
                "--cache-blocks=$CACHE_BLOCKS"
                "--telemetry-interval-ms=$TELEMETRY_INTERVAL_MS")
if [[ "$WATCHDOG_MS" -gt 0 ]]; then
  PIPELINE_FLAGS+=("--watchdog-ms=$WATCHDOG_MS")
fi
# Buffer-manager / page-provider selection and the 1PB-SCC in-memory
# kernel, forwarded only when explicitly requested so the default run
# (and its JSONL reports) stay byte-identical to older scripts.
if [[ -n "$CACHE_POLICY" ]]; then
  PIPELINE_FLAGS+=("--cache-policy=$CACHE_POLICY")
fi
if [[ -n "$IO_BACKEND" ]]; then
  PIPELINE_FLAGS+=("--io-backend=$IO_BACKEND")
fi
if [[ -n "$KERNEL" ]]; then
  PIPELINE_FLAGS+=("--kernel=$KERNEL")
fi
if [[ -n "$KERNEL_THREADS" ]]; then
  PIPELINE_FLAGS+=("--kernel-threads=$KERNEL_THREADS")
fi
# bench_kernel sweeps its own thread list; seed it with the requested
# kernel thread count so the sweep covers the configured point.
if [[ -n "$KERNEL_THREADS" && "$KERNEL_THREADS" -gt 1 ]]; then
  KERNEL_THREAD_LIST="1,$KERNEL_THREADS"
else
  KERNEL_THREAD_LIST="1,2,4,8"
fi
# bench_io sweeps threads itself: always include the serial baseline
# point so the speedup curve has a denominator.
if [[ "$THREADS" -gt 0 ]]; then
  IO_THREAD_LIST="0,$THREADS"
else
  IO_THREAD_LIST="0,2"
fi

mkdir -p "$REPORT_DIR"
: > "$OUT"
REPORT_FILES=()
for b in \
  bench_table1_reduction \
  bench_table3_real \
  bench_fig12_webspam_scale \
  bench_fig13_memory \
  bench_fig14_vary_nodes \
  bench_fig15_vary_degree \
  bench_fig16_vary_scc_size \
  bench_fig17_vary_scc_count \
  bench_ablation \
  bench_io \
  bench_kernel \
  bench_micro; do
  if [[ ! -x "$BUILD_DIR/bench/$b" ]]; then
    echo "error: missing bench binary '$BUILD_DIR/bench/$b'" >&2
    exit 1
  fi
  echo "===== $b =====" | tee -a "$OUT"
  case "$b" in
    bench_io)
      # Threaded-I/O pipeline sweep (scan + sort over threads x depth);
      # takes --report and its own sweep lists of the standard sinks.
      "$BUILD_DIR/bench/$b" \
        "--threads=$IO_THREAD_LIST" \
        "--report=$REPORT_DIR/$b.jsonl" 2>/dev/null | tee -a "$OUT"
      REPORT_FILES+=("$REPORT_DIR/$b.jsonl")
      ;;
    bench_kernel)
      # In-memory kernel sweep (tarjan vs parallel_fb over threads);
      # takes --report plus its own sweep flags.
      "$BUILD_DIR/bench/$b" \
        "--threads=$KERNEL_THREAD_LIST" \
        "--report=$REPORT_DIR/$b.jsonl" 2>/dev/null | tee -a "$OUT"
      REPORT_FILES+=("$REPORT_DIR/$b.jsonl")
      ;;
    bench_micro)
      "$BUILD_DIR/bench/$b" \
        "--benchmark_out=$REPORT_DIR/$b.json" \
        --benchmark_out_format=json 2>/dev/null | tee -a "$OUT"
      ;;
    *)
      "$BUILD_DIR/bench/$b" \
        "${PIPELINE_FLAGS[@]}" \
        "--report=$REPORT_DIR/$b.jsonl" \
        "--trace=$REPORT_DIR/$b.trace.json" \
        "--audit=$REPORT_DIR/$b.audit" 2>/dev/null | tee -a "$OUT"
      REPORT_FILES+=("$REPORT_DIR/$b.jsonl")
      ;;
  esac
  echo | tee -a "$OUT"
done

# Fold the run reports into the canonical perf-trajectory record.
BUILD_TYPE="$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' \
  "$BUILD_DIR/CMakeCache.txt" 2>/dev/null | head -n1)"
if [[ -x "$BUILD_DIR/examples/bench_report" ]]; then
  "$BUILD_DIR/examples/bench_report" \
    "--tag=$TAG" \
    "--out=BENCH_$TAG.json" \
    "--build-type=${BUILD_TYPE:-unknown}" \
    "--threads=$THREADS" \
    "--prefetch-depth=$PREFETCH_DEPTH" \
    "--cache-blocks=$CACHE_BLOCKS" \
    "${REPORT_FILES[@]}" | tee -a "$OUT"
else
  echo "warning: $BUILD_DIR/examples/bench_report not built;" \
       "skipping BENCH_$TAG.json" >&2
fi
echo "full output in $OUT; per-bench reports, traces and audit logs in $REPORT_DIR/"
