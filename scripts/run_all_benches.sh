#!/usr/bin/env bash
# Runs every table/figure bench sequentially and tees the output.
#
#   scripts/run_all_benches.sh [build-dir] [output-file] [report-dir]
#
# Pass-through flags for individual binaries (scale, seeds, time limits)
# are documented in bench/bench_common.h; this script uses the defaults,
# which regenerate every paper artifact at ~1/100-1/200 scale in well
# under an hour.
#
# Each bench additionally writes its machine-readable artifacts into
# report-dir (default: bench_reports/): <bench>.jsonl (run report, schema
# in docs/OBSERVABILITY.md), <bench>.trace.json (Chrome trace_event —
# open in chrome://tracing or https://ui.perfetto.dev), and
# <bench>.audit (block-access log — inspect with
# build/examples/io_audit_tool). bench_micro is a google-benchmark binary
# and uses its own --benchmark_* flags instead.

set -euo pipefail

BUILD_DIR="${1:-build}"
OUT="${2:-bench_output.txt}"
REPORT_DIR="${3:-bench_reports}"

if [[ ! -d "$BUILD_DIR/bench" ]]; then
  echo "error: '$BUILD_DIR/bench' does not exist — build first:" >&2
  echo "  cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j" >&2
  exit 1
fi

mkdir -p "$REPORT_DIR"
: > "$OUT"
for b in \
  bench_table1_reduction \
  bench_table3_real \
  bench_fig12_webspam_scale \
  bench_fig13_memory \
  bench_fig14_vary_nodes \
  bench_fig15_vary_degree \
  bench_fig16_vary_scc_size \
  bench_fig17_vary_scc_count \
  bench_ablation \
  bench_io \
  bench_micro; do
  if [[ ! -x "$BUILD_DIR/bench/$b" ]]; then
    echo "error: missing bench binary '$BUILD_DIR/bench/$b'" >&2
    exit 1
  fi
  echo "===== $b =====" | tee -a "$OUT"
  case "$b" in
    bench_io)
      # Threaded-I/O pipeline sweep (scan + sort over threads x depth);
      # takes only --report of the standard sinks.
      "$BUILD_DIR/bench/$b" \
        "--report=$REPORT_DIR/$b.jsonl" 2>/dev/null | tee -a "$OUT"
      ;;
    bench_micro)
      "$BUILD_DIR/bench/$b" \
        "--benchmark_out=$REPORT_DIR/$b.json" \
        --benchmark_out_format=json 2>/dev/null | tee -a "$OUT"
      ;;
    *)
      "$BUILD_DIR/bench/$b" \
        "--report=$REPORT_DIR/$b.jsonl" \
        "--trace=$REPORT_DIR/$b.trace.json" \
        "--audit=$REPORT_DIR/$b.audit" 2>/dev/null | tee -a "$OUT"
      ;;
  esac
  echo | tee -a "$OUT"
done
echo "full output in $OUT; per-bench reports, traces and audit logs in $REPORT_DIR/"
