// Direct tests of the semi-external DFS-tree primitive: the fixpoint
// invariant (no forward-cross edges), DFS-order validity of the derived
// postorder, priority handling, and batch-size independence.

#include <memory>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "gen/generators.h"
#include "scc/semi_external_dfs.h"
#include "tests/test_util.h"
#include "util/random.h"

namespace ioscc {
namespace {

using testing_util::kPaperFigure1Nodes;
using testing_util::PaperFigure1Edges;
using testing_util::TempDirTest;

class SemiExternalDfsTest : public TempDirTest {
 protected:
  std::unique_ptr<DfsForest> Build(const std::string& path, NodeId n,
                                   uint64_t batch_bytes = 1 << 14) {
    std::vector<NodeId> priority(n);
    std::iota(priority.begin(), priority.end(), NodeId{0});
    SemiExternalOptions options;
    options.memory_budget_bytes = batch_bytes;
    RunStats stats;
    std::unique_ptr<DfsForest> tree;
    Status st = BuildSemiExternalDfsTree(path, priority, options,
                                         Deadline(), &stats, &tree);
    EXPECT_TRUE(st.ok()) << st.ToString();
    return tree;
  }

  // The classical DFS-tree characterization: no forward-cross edges.
  // For every edge (u, v): ancestor-related or pre(u) > pre(v).
  void ExpectNoForwardCross(const DfsForest& tree,
                            const std::vector<Edge>& edges) {
    std::vector<uint32_t> pre = tree.Preorder();
    // pre_end via traversal: subtree interval end.
    std::vector<uint32_t> pre_end(tree.n + 1, 0);
    uint32_t counter = 0;
    tree.Traverse([&](NodeId v, bool entering) {
      if (entering) {
        ++counter;
      } else {
        pre_end[v] = counter;
      }
    });
    auto is_ancestor = [&](NodeId a, NodeId d) {
      return pre[a] <= pre[d] && pre[d] < pre_end[a];
    };
    for (const Edge& e : edges) {
      if (e.from == e.to) continue;
      bool related = is_ancestor(e.from, e.to) || is_ancestor(e.to, e.from);
      EXPECT_TRUE(related || pre[e.from] > pre[e.to])
          << "forward-cross edge (" << e.from << "," << e.to << ")";
    }
  }
};

TEST_F(SemiExternalDfsTest, SpanningAndWellFormed) {
  const std::vector<Edge> edges = PaperFigure1Edges();
  const std::string path = WriteGraph(kPaperFigure1Nodes, edges);
  std::unique_ptr<DfsForest> tree = Build(path, kPaperFigure1Nodes);
  ASSERT_NE(tree, nullptr);
  // Every real node has a parent and is reachable from the root.
  uint64_t visited = 0;
  tree->Traverse([&](NodeId, bool entering) {
    if (entering) ++visited;
  });
  EXPECT_EQ(visited, kPaperFigure1Nodes + 1u);
  for (NodeId v = 0; v < kPaperFigure1Nodes; ++v) {
    EXPECT_NE(tree->parent[v], kInvalidNode);
  }
}

TEST_F(SemiExternalDfsTest, FixpointHasNoForwardCrossEdges) {
  const std::vector<Edge> edges = PaperFigure1Edges();
  const std::string path = WriteGraph(kPaperFigure1Nodes, edges);
  std::unique_ptr<DfsForest> tree = Build(path, kPaperFigure1Nodes);
  ASSERT_NE(tree, nullptr);
  ExpectNoForwardCross(*tree, edges);
}

TEST_F(SemiExternalDfsTest, PostorderIsAValidDfsFinishOrder) {
  // DFS property used by Kosaraju: for any edge (u, v), post(u) < post(v)
  // implies v is an ancestor of u (a back edge). Equivalently: v's
  // position in DECREASING postorder before u's, unless back edge.
  const std::vector<Edge> edges = PaperFigure1Edges();
  const std::string path = WriteGraph(kPaperFigure1Nodes, edges);
  std::unique_ptr<DfsForest> tree = Build(path, kPaperFigure1Nodes);
  ASSERT_NE(tree, nullptr);
  std::vector<NodeId> dec_post = tree->DecreasingPostorder();
  std::vector<uint32_t> post_rank(kPaperFigure1Nodes, 0);
  for (size_t i = 0; i < dec_post.size(); ++i) {
    post_rank[dec_post[i]] = static_cast<uint32_t>(i);  // smaller = later
  }
  std::vector<uint32_t> pre = tree->Preorder();
  for (const Edge& e : edges) {
    if (e.from == e.to) continue;
    if (post_rank[e.from] > post_rank[e.to]) {
      // post(u) < post(v): must be a back edge (v ancestor of u), which
      // in preorder terms means pre(v) < pre(u).
      EXPECT_LT(pre[e.to], pre[e.from])
          << "(" << e.from << "," << e.to << ")";
    }
  }
}

TEST_F(SemiExternalDfsTest, RootChildrenRespectPriority) {
  // Disconnected graph: 3 isolated cycles; with priority (reversed ids),
  // root children must appear in that order.
  std::vector<Edge> edges = {{0, 1}, {1, 0}, {2, 3}, {3, 2}, {4, 5},
                             {5, 4}};
  const NodeId n = 6;
  const std::string path = WriteGraph(n, edges);
  std::vector<NodeId> priority = {5, 3, 1, 0, 2, 4};
  SemiExternalOptions options;
  RunStats stats;
  std::unique_ptr<DfsForest> tree;
  ASSERT_OK(BuildSemiExternalDfsTree(path, priority, options, Deadline(),
                                     &stats, &tree));
  // First root child must be 5 (highest priority); 4 was reachable from 5
  // so the remaining root children keep relative priority order.
  ASSERT_FALSE(tree->children[n].empty());
  EXPECT_EQ(tree->children[n][0], 5u);
  std::vector<uint32_t> rank(n, 0);
  for (size_t i = 0; i < priority.size(); ++i) rank[priority[i]] = i;
  for (size_t i = 1; i < tree->children[n].size(); ++i) {
    EXPECT_LT(rank[tree->children[n][i - 1]], rank[tree->children[n][i]]);
  }
}

TEST_F(SemiExternalDfsTest, ProgressCallbackSeesPopulatedIterationStats) {
  // Regression: DFS scans used to hand the progress callback a
  // default-constructed IterationStats (all zeros), leaving progress
  // consumers — and the telemetry gauges built on them — blind. Every
  // invocation must carry real live counts and that scan's I/O delta.
  const std::vector<Edge> edges = PaperFigure1Edges();
  const std::string path = WriteGraph(kPaperFigure1Nodes, edges);
  std::vector<NodeId> priority(kPaperFigure1Nodes);
  std::iota(priority.begin(), priority.end(), NodeId{0});
  SemiExternalOptions options;
  uint64_t calls = 0;
  uint64_t blocks_read_sum = 0;
  options.progress = [&](uint64_t iteration, const IterationStats& stats) {
    ++calls;
    EXPECT_EQ(iteration, calls);  // 1-based, one per stream scan
    EXPECT_EQ(stats.live_nodes, kPaperFigure1Nodes);
    EXPECT_EQ(stats.live_edges, edges.size());
    blocks_read_sum += stats.io.blocks_read;
    return true;
  };
  RunStats stats;
  std::unique_ptr<DfsForest> tree;
  ASSERT_OK(BuildSemiExternalDfsTree(path, priority, options, Deadline(),
                                     &stats, &tree));
  EXPECT_EQ(calls, stats.iterations);
  EXPECT_EQ(stats.per_iteration.size(), stats.iterations);
  // The per-scan deltas partition the scan loop's ledger (the header
  // read at Open precedes the first mark, so the sum stays below the
  // run total).
  EXPECT_GT(blocks_read_sum, 0u);
  EXPECT_LE(blocks_read_sum, stats.io.blocks_read);
}

TEST_F(SemiExternalDfsTest, RejectsBadPriority) {
  const std::string path = WriteGraph(4, {{0, 1}});
  std::vector<NodeId> priority = {0, 1};  // too short
  SemiExternalOptions options;
  RunStats stats;
  std::unique_ptr<DfsForest> tree;
  EXPECT_TRUE(BuildSemiExternalDfsTree(path, priority, options, Deadline(),
                                       &stats, &tree)
                  .IsInvalidArgument());
}

class DfsFixpointFuzzTest
    : public TempDirTest,
      public ::testing::WithParamInterface<std::tuple<int, int>> {};

TEST_P(DfsFixpointFuzzTest, NoForwardCrossAtFixpointAnyBatchSize) {
  const int seed = std::get<0>(GetParam());
  const int batch_kb = std::get<1>(GetParam());
  Rng rng(seed * 65537);
  const NodeId n = static_cast<NodeId>(20 + rng.Uniform(200));
  std::vector<Edge> edges;
  ASSERT_OK(GenerateUniformEdges(n, 4ull * n, seed * 13 + 1, &edges));
  const std::string path = WriteGraph(n, edges);

  std::vector<NodeId> priority(n);
  std::iota(priority.begin(), priority.end(), NodeId{0});
  SemiExternalOptions options;
  options.memory_budget_bytes = static_cast<uint64_t>(batch_kb) * 1024;
  RunStats stats;
  std::unique_ptr<DfsForest> tree;
  ASSERT_OK(BuildSemiExternalDfsTree(path, priority, options, Deadline(),
                                     &stats, &tree));

  std::vector<uint32_t> pre = tree->Preorder();
  std::vector<uint32_t> pre_end(static_cast<size_t>(n) + 1, 0);
  uint32_t counter = 0;
  tree->Traverse([&](NodeId v, bool entering) {
    if (entering) {
      ++counter;
    } else {
      pre_end[v] = counter;
    }
  });
  auto is_ancestor = [&](NodeId a, NodeId d) {
    return pre[a] <= pre[d] && pre[d] < pre_end[a];
  };
  for (const Edge& e : edges) {
    if (e.from == e.to) continue;
    bool related = is_ancestor(e.from, e.to) || is_ancestor(e.to, e.from);
    EXPECT_TRUE(related || pre[e.from] > pre[e.to])
        << "forward-cross (" << e.from << "," << e.to << ") seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, DfsFixpointFuzzTest,
                         ::testing::Combine(::testing::Range(1, 9),
                                            ::testing::Values(8, 64)));

}  // namespace
}  // namespace ioscc
