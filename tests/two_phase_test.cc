// Behavioural tests for 2P-SCC and DFS-SCC: phase statistics, known
// convergent/non-convergent inputs, and the I/O profile (bounded number
// of sequential scans).

#include <vector>

#include <gtest/gtest.h>

#include "io/edge_file.h"
#include "scc/dfs_scc.h"
#include "scc/two_phase.h"
#include "tests/test_util.h"

namespace ioscc {
namespace {

using testing_util::kPaperFigure1Nodes;
using testing_util::OracleFor;
using testing_util::PaperFigure1Edges;
using testing_util::TempDirTest;

class TwoPhaseTest : public TempDirTest {};

TEST_F(TwoPhaseTest, PaperFigure1ConvergesWithPhaseStats) {
  const std::vector<Edge> edges = PaperFigure1Edges();
  const std::string path = WriteGraph(kPaperFigure1Nodes, edges);
  SccResult result;
  RunStats stats;
  SemiExternalOptions options;
  options.scratch_block_size = 4096;
  ASSERT_OK(TwoPhaseScc(path, options, &result, &stats));
  EXPECT_EQ(result, OracleFor(kPaperFigure1Nodes, edges));
  EXPECT_GE(stats.iterations, 2u);       // at least one fixpoint check
  EXPECT_GE(stats.search_scans, 1u);     // tree search ran
  EXPECT_GT(stats.contractions, 0u);     // the two SCCs contracted
}

TEST_F(TwoPhaseTest, IoIsBoundedScansOfTheStream) {
  // 2P-SCC never rewrites the input: total reads must be exactly
  // (construction iterations + search scans) * data blocks + header.
  const std::vector<Edge> edges = PaperFigure1Edges();
  const std::string path = WriteGraph(kPaperFigure1Nodes, edges);
  EdgeFileInfo info;
  ASSERT_OK(ReadEdgeFileInfo(path, &info));
  SccResult result;
  RunStats stats;
  ASSERT_OK(TwoPhaseScc(path, SemiExternalOptions(), &result, &stats));
  const uint64_t data_blocks = info.TotalBlocks() - 1;
  EXPECT_EQ(stats.io.blocks_read,
            1 + (stats.iterations + stats.search_scans) * data_blocks);
  EXPECT_EQ(stats.io.blocks_written, 0u);
}

TEST_F(TwoPhaseTest, KnownOscillatorReportsIncomplete) {
  // Two sibling SCCs tied on drank pull node 3 back and forth forever:
  // a Definition 5.1 fixpoint does not exist (see two_phase.cc). The
  // algorithm must detect this and return Incomplete, not a wrong split.
  const std::vector<Edge> edges = {{2, 0}, {0, 3}, {5, 3}, {5, 3},
                                   {3, 1}, {0, 2}, {1, 5}, {2, 3},
                                   {2, 4}, {4, 2}, {1, 3}, {5, 3}};
  const std::string path = WriteGraph(6, edges);
  SccResult result;
  RunStats stats;
  SemiExternalOptions options;
  options.max_iterations = 100;
  Status st = TwoPhaseScc(path, options, &result, &stats);
  EXPECT_TRUE(st.IsIncomplete()) << st.ToString();
}

TEST_F(TwoPhaseTest, DagNeedsNoSecondConstructionPass) {
  // On a DAG in topological id order every edge goes "down" from the
  // star tree's perspective after one round of pushdowns; construction
  // converges and search finds only singletons.
  std::vector<Edge> edges;
  for (NodeId v = 0; v + 1 < 50; ++v) edges.push_back({v, v + 1});
  const std::string path = WriteGraph(50, edges);
  SccResult result;
  RunStats stats;
  ASSERT_OK(TwoPhaseScc(path, SemiExternalOptions(), &result, &stats));
  EXPECT_EQ(result.ComponentCount(), 50u);
  EXPECT_EQ(stats.contractions, 0u);
}

TEST_F(TwoPhaseTest, TimeLimitReturnsIncomplete) {
  std::vector<Edge> edges;
  for (NodeId v = 0; v < 2000; ++v) edges.push_back({v, (v + 1) % 2000});
  const std::string path = WriteGraph(2000, edges);
  SemiExternalOptions options;
  options.time_limit_seconds = 1e-9;
  SccResult result;
  RunStats stats;
  EXPECT_TRUE(
      TwoPhaseScc(path, options, &result, &stats).IsIncomplete());
}

class DfsSccTest : public TempDirTest {};

TEST_F(DfsSccTest, PaperFigure1) {
  const std::vector<Edge> edges = PaperFigure1Edges();
  const std::string path = WriteGraph(kPaperFigure1Nodes, edges);
  SccResult result;
  RunStats stats;
  ASSERT_OK(DfsScc(path, SemiExternalOptions(), &result, &stats));
  EXPECT_EQ(result, OracleFor(kPaperFigure1Nodes, edges));
  // Two DFS fixpoints ran: iterations counts scans of both.
  EXPECT_GE(stats.iterations, 2u);
}

TEST_F(DfsSccTest, WritesTheReversedGraphOnce) {
  const std::vector<Edge> edges = PaperFigure1Edges();
  const std::string path = WriteGraph(kPaperFigure1Nodes, edges);
  SccResult result;
  RunStats stats;
  ASSERT_OK(DfsScc(path, SemiExternalOptions(), &result, &stats));
  // DFS-SCC's only writes are the reversed edge file (Algorithm 2 line 3).
  EXPECT_GT(stats.io.blocks_written, 0u);
}

TEST_F(DfsSccTest, DisconnectedComponentsViaVirtualRoot) {
  // Two disjoint cycles and an isolated node.
  std::vector<Edge> edges = {{0, 1}, {1, 0}, {2, 3}, {3, 4}, {4, 2}};
  const std::string path = WriteGraph(6, edges);
  SccResult result;
  RunStats stats;
  ASSERT_OK(DfsScc(path, SemiExternalOptions(), &result, &stats));
  EXPECT_EQ(result, OracleFor(6, edges));
  EXPECT_EQ(result.ComponentCount(), 3u);
}

TEST_F(DfsSccTest, TimeLimitReturnsIncomplete) {
  std::vector<Edge> edges;
  for (NodeId v = 0; v < 5000; ++v) edges.push_back({v, (v + 1) % 5000});
  const std::string path = WriteGraph(5000, edges);
  SemiExternalOptions options;
  options.time_limit_seconds = 1e-9;
  SccResult result;
  RunStats stats;
  EXPECT_TRUE(DfsScc(path, options, &result, &stats).IsIncomplete());
}

}  // namespace
}  // namespace ioscc
