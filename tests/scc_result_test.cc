// Tests for the SccResult partition helpers.

#include <gtest/gtest.h>

#include "scc/scc_result.h"

namespace ioscc {
namespace {

TEST(SccResultTest, NormalizeRewritesToMinMember) {
  SccResult result;
  result.component = {3, 3, 2, 3, 2};  // {0,1,3} labeled 3, {2,4} labeled 2
  result.Normalize();
  EXPECT_EQ(result.component, (std::vector<NodeId>{0, 0, 2, 0, 2}));
}

TEST(SccResultTest, NormalizeIsIdempotent) {
  SccResult result;
  result.component = {1, 1, 1, 3, 3};
  result.Normalize();
  SccResult again = result;
  again.Normalize();
  EXPECT_EQ(result, again);
}

TEST(SccResultTest, CountsAndSizes) {
  SccResult result;
  result.component = {0, 0, 2, 0, 2, 5};
  result.Normalize();
  EXPECT_EQ(result.ComponentCount(), 3u);
  std::vector<uint32_t> sizes = result.ComponentSizes();
  EXPECT_EQ(sizes[0], 3u);
  EXPECT_EQ(sizes[2], 2u);
  EXPECT_EQ(sizes[5], 1u);
  EXPECT_EQ(result.LargestComponentSize(), 3u);
  EXPECT_EQ(result.NodesInNontrivialSccs(), 5u);
}

TEST(SccResultTest, EmptyPartition) {
  SccResult result;
  EXPECT_EQ(result.ComponentCount(), 0u);
  EXPECT_EQ(result.LargestComponentSize(), 0u);
  EXPECT_EQ(result.NodesInNontrivialSccs(), 0u);
}

TEST(SccResultTest, AllSingletons) {
  SccResult result;
  result.component = {0, 1, 2, 3};
  EXPECT_EQ(result.ComponentCount(), 4u);
  EXPECT_EQ(result.NodesInNontrivialSccs(), 0u);
  EXPECT_EQ(result.LargestComponentSize(), 1u);
}

TEST(SccResultTest, EqualityIsContentBased) {
  SccResult a, b;
  a.component = {0, 0, 2};
  b.component = {0, 0, 2};
  EXPECT_TRUE(a == b);
  b.component = {0, 1, 2};
  EXPECT_FALSE(a == b);
}

}  // namespace
}  // namespace ioscc
