// Shared helpers for the test suite.

#ifndef IOSCC_TESTS_TEST_UTIL_H_
#define IOSCC_TESTS_TEST_UTIL_H_

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "graph/digraph.h"
#include "graph/types.h"
#include "io/edge_file.h"
#include "io/temp_dir.h"
#include "scc/scc_result.h"
#include "scc/tarjan.h"
#include "util/status.h"

namespace ioscc {
namespace testing_util {

#define ASSERT_OK(expr)                                       \
  do {                                                        \
    ::ioscc::Status _st = (expr);                             \
    ASSERT_TRUE(_st.ok()) << _st.ToString();                  \
  } while (0)

#define EXPECT_OK(expr)                                       \
  do {                                                        \
    ::ioscc::Status _st = (expr);                             \
    EXPECT_TRUE(_st.ok()) << _st.ToString();                  \
  } while (0)

// A gtest fixture owning a scratch directory.
class TempDirTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Status st = TempDir::Create("ioscc-test", &dir_);
    ASSERT_TRUE(st.ok()) << st.ToString();
  }

  std::string NewPath(const std::string& suffix) {
    return dir_->NewFilePath(suffix);
  }

  // Writes `edges` over `n` nodes into a fresh edge file and returns its
  // path. Small block size keeps multi-block paths exercised.
  std::string WriteGraph(NodeId n, const std::vector<Edge>& edges,
                         size_t block_size = 4096) {
    std::string path = NewPath(".edges");
    Status st = WriteEdgeFile(path, n, edges, block_size, nullptr);
    EXPECT_TRUE(st.ok()) << st.ToString();
    return path;
  }

  std::unique_ptr<TempDir> dir_;
};

// The running example of the paper (Fig. 1): 12 nodes a..l = 0..11,
// 18 edges, two non-trivial SCCs {b,c,d,e} and {g,h,i,j}.
inline std::vector<Edge> PaperFigure1Edges() {
  constexpr NodeId a = 0, b = 1, c = 2, d = 3, e = 4, f = 5, g = 6, h = 7,
                   i = 8, j = 9, k = 10, l = 11;
  return {
      {a, b}, {a, g}, {a, h}, {b, c}, {b, d}, {c, e}, {d, e},
      {e, b}, {f, g}, {c, f}, {g, j}, {j, i}, {i, h}, {h, g},
      {g, i}, {i, k}, {j, l}, {l, k},
  };
}
constexpr NodeId kPaperFigure1Nodes = 12;

// Oracle partition via Tarjan on an in-memory copy.
inline SccResult OracleFor(NodeId n, const std::vector<Edge>& edges) {
  return TarjanScc(Digraph(n, edges));
}

}  // namespace testing_util
}  // namespace ioscc

#endif  // IOSCC_TESTS_TEST_UTIL_H_
