// End-to-end correctness of every semi-external algorithm against the
// in-memory oracle, across fixed cases and randomized property sweeps.

#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "gen/generators.h"
#include "scc/algorithms.h"
#include "tests/test_util.h"
#include "util/random.h"

namespace ioscc {
namespace {

using testing_util::kPaperFigure1Nodes;
using testing_util::OracleFor;
using testing_util::PaperFigure1Edges;
using testing_util::TempDirTest;

// Algorithms that must terminate with the exact partition on every input.
const SccAlgorithm kAlwaysTerminating[] = {
    SccAlgorithm::kOnePhaseBatch,
    SccAlgorithm::kOnePhase,
    SccAlgorithm::kDfs,
};

// Runs `algorithm` and checks the outcome. 2P-SCC and EM-SCC are allowed
// to return Incomplete (the paper reports both as INF on many inputs:
// a Def. 5.1 fixpoint need not exist for 2P, and contraction can stall
// for EM) — but when they do terminate the partition must be exact.
void CheckAlgorithm(SccAlgorithm algorithm, const std::string& path,
                    const SemiExternalOptions& options,
                    const SccResult& oracle, const std::string& context) {
  SccResult result;
  RunStats stats;
  Status st = RunScc(algorithm, path, options, &result, &stats);
  const bool may_not_converge = algorithm == SccAlgorithm::kTwoPhase ||
                                algorithm == SccAlgorithm::kEm;
  if (may_not_converge && st.IsIncomplete()) return;
  ASSERT_TRUE(st.ok()) << AlgorithmName(algorithm) << " " << context << ": "
                       << st.ToString();
  EXPECT_EQ(result, oracle) << AlgorithmName(algorithm) << " " << context;
}

SemiExternalOptions SmallOptions() {
  SemiExternalOptions options;
  options.scratch_block_size = 4096;
  options.memory_budget_bytes = 1 << 16;  // force multiple 1PB batches
  return options;
}

class AlgorithmsFixedGraphTest : public TempDirTest {};

TEST_F(AlgorithmsFixedGraphTest, PaperFigure1AllAlgorithms) {
  const std::vector<Edge> edges = PaperFigure1Edges();
  const SccResult oracle = OracleFor(kPaperFigure1Nodes, edges);
  const std::string path = WriteGraph(kPaperFigure1Nodes, edges);
  for (SccAlgorithm algorithm : AllAlgorithms()) {
    SccResult result;
    RunStats stats;
    Status st = RunScc(algorithm, path, SmallOptions(), &result, &stats);
    ASSERT_TRUE(st.ok()) << AlgorithmName(algorithm) << ": "
                         << st.ToString();
    EXPECT_EQ(result, oracle) << AlgorithmName(algorithm);
  }
}

TEST_F(AlgorithmsFixedGraphTest, EmptyEdgeSet) {
  const std::string path = WriteGraph(17, {});
  const SccResult oracle = OracleFor(17, {});
  for (SccAlgorithm algorithm : kAlwaysTerminating) {
    SccResult result;
    RunStats stats;
    ASSERT_OK(RunScc(algorithm, path, SmallOptions(), &result, &stats));
    EXPECT_EQ(result, oracle) << AlgorithmName(algorithm);
    EXPECT_EQ(result.ComponentCount(), 17u) << AlgorithmName(algorithm);
  }
  CheckAlgorithm(SccAlgorithm::kTwoPhase, path, SmallOptions(), oracle,
                 "empty");
}

TEST_F(AlgorithmsFixedGraphTest, SelfLoopsAndParallelEdges) {
  std::vector<Edge> edges = {{0, 0}, {0, 1}, {0, 1}, {1, 2},
                             {2, 0}, {2, 0}, {3, 3}};
  const SccResult oracle = OracleFor(4, edges);
  const std::string path = WriteGraph(4, edges);
  for (SccAlgorithm algorithm : kAlwaysTerminating) {
    SccResult result;
    RunStats stats;
    ASSERT_OK(RunScc(algorithm, path, SmallOptions(), &result, &stats));
    EXPECT_EQ(result, oracle) << AlgorithmName(algorithm);
  }
  CheckAlgorithm(SccAlgorithm::kTwoPhase, path, SmallOptions(), oracle,
                 "selfloops");
}

TEST_F(AlgorithmsFixedGraphTest, SingleGiantCycle) {
  std::vector<Edge> edges;
  const NodeId n = 1000;
  for (NodeId v = 0; v < n; ++v) edges.push_back({v, (v + 1) % n});
  const SccResult oracle = OracleFor(n, edges);
  const std::string path = WriteGraph(n, edges);
  for (SccAlgorithm algorithm : kAlwaysTerminating) {
    SccResult result;
    RunStats stats;
    ASSERT_OK(RunScc(algorithm, path, SmallOptions(), &result, &stats));
    EXPECT_EQ(result, oracle) << AlgorithmName(algorithm);
    EXPECT_EQ(result.ComponentCount(), 1u) << AlgorithmName(algorithm);
  }
  CheckAlgorithm(SccAlgorithm::kTwoPhase, path, SmallOptions(), oracle,
                 "cycle");
}

TEST_F(AlgorithmsFixedGraphTest, PureDagHasOnlySingletons) {
  std::vector<Edge> edges;
  const NodeId n = 200;
  Rng rng(7);
  for (int i = 0; i < 800; ++i) {
    NodeId a = static_cast<NodeId>(rng.Uniform(n));
    NodeId b = static_cast<NodeId>(rng.Uniform(n));
    if (a == b) continue;
    edges.push_back({std::min(a, b), std::max(a, b)});
  }
  const SccResult oracle = OracleFor(n, edges);
  const std::string path = WriteGraph(n, edges);
  for (SccAlgorithm algorithm : kAlwaysTerminating) {
    SccResult result;
    RunStats stats;
    ASSERT_OK(RunScc(algorithm, path, SmallOptions(), &result, &stats));
    EXPECT_EQ(result, oracle) << AlgorithmName(algorithm);
    EXPECT_EQ(result.ComponentCount(), n) << AlgorithmName(algorithm);
  }
  CheckAlgorithm(SccAlgorithm::kTwoPhase, path, SmallOptions(), oracle,
                 "dag");
}

// ---------------------------------------------------------------------------
// Property sweep: uniform random graphs across seeds and densities.

class AlgorithmsRandomTest
    : public TempDirTest,
      public ::testing::WithParamInterface<std::tuple<int, double>> {};

TEST_P(AlgorithmsRandomTest, MatchesOracle) {
  const int seed = std::get<0>(GetParam());
  const double degree = std::get<1>(GetParam());
  Rng rng(seed * 1000003ULL);
  const NodeId n = static_cast<NodeId>(30 + rng.Uniform(400));
  std::vector<Edge> edges;
  ASSERT_OK(GenerateUniformEdges(n, static_cast<uint64_t>(n * degree),
                                 seed * 31 + 7, &edges));
  const SccResult oracle = OracleFor(n, edges);
  const std::string path = WriteGraph(n, edges);
  for (SccAlgorithm algorithm : kAlwaysTerminating) {
    SccResult result;
    RunStats stats;
    Status st = RunScc(algorithm, path, SmallOptions(), &result, &stats);
    ASSERT_TRUE(st.ok()) << AlgorithmName(algorithm) << " n=" << n
                         << " degree=" << degree << " seed=" << seed << ": "
                         << st.ToString();
    EXPECT_EQ(result, oracle)
        << AlgorithmName(algorithm) << " n=" << n << " degree=" << degree
        << " seed=" << seed;
  }
  const std::string context =
      "n=" + std::to_string(n) + " seed=" + std::to_string(seed);
  CheckAlgorithm(SccAlgorithm::kTwoPhase, path, SmallOptions(), oracle,
                 context);
  CheckAlgorithm(SccAlgorithm::kEm, path, SmallOptions(), oracle, context);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AlgorithmsRandomTest,
    ::testing::Combine(::testing::Range(1, 21),
                       ::testing::Values(0.5, 1.0, 1.5, 3.0, 6.0)));

// Planted-SCC graphs: the generator plants components that must be
// recovered exactly.
class AlgorithmsPlantedTest : public TempDirTest,
                              public ::testing::WithParamInterface<int> {};

TEST_P(AlgorithmsPlantedTest, RecoversPlantedComponents) {
  const int seed = GetParam();
  PlantedSccSpec spec;
  spec.node_count = 600;
  spec.avg_degree = 4.0;
  spec.components = {{40, 2}, {9, 10}, {2, 20}};
  spec.seed = static_cast<uint64_t>(seed) * 99991;
  std::vector<Edge> edges;
  ASSERT_OK(GeneratePlantedSccEdges(spec, &edges));
  const SccResult oracle =
      OracleFor(static_cast<NodeId>(spec.node_count), edges);
  const std::string path =
      WriteGraph(static_cast<NodeId>(spec.node_count), edges);
  for (SccAlgorithm algorithm : kAlwaysTerminating) {
    SccResult result;
    RunStats stats;
    ASSERT_OK(RunScc(algorithm, path, SmallOptions(), &result, &stats));
    EXPECT_EQ(result, oracle) << AlgorithmName(algorithm)
                              << " seed=" << seed;
  }
  CheckAlgorithm(SccAlgorithm::kTwoPhase, path, SmallOptions(), oracle,
                 "seed=" + std::to_string(seed));
}

INSTANTIATE_TEST_SUITE_P(Sweep, AlgorithmsPlantedTest,
                         ::testing::Range(1, 16));

// EM-SCC terminates when memory is ample and reports Incomplete (not a
// wrong answer, not an endless loop) when contraction cannot shrink a
// too-large DAG (Case-2 of Section 4).
class EmSccTest : public TempDirTest {};

TEST_F(EmSccTest, CorrectWithAmpleMemory) {
  const std::vector<Edge> edges = PaperFigure1Edges();
  const SccResult oracle = OracleFor(kPaperFigure1Nodes, edges);
  const std::string path = WriteGraph(kPaperFigure1Nodes, edges);
  SemiExternalOptions options = SmallOptions();
  options.memory_budget_bytes = 1 << 20;
  SccResult result;
  RunStats stats;
  ASSERT_OK(RunScc(SccAlgorithm::kEm, path, options, &result, &stats));
  EXPECT_EQ(result, oracle);
}

TEST_F(EmSccTest, ReportsIncompleteOnOversizedDag) {
  // A long path (pure DAG) with a memory budget far below the edge count:
  // contraction never fires, the graph never shrinks.
  std::vector<Edge> edges;
  const NodeId n = 20000;
  for (NodeId v = 0; v + 1 < n; ++v) edges.push_back({v, v + 1});
  const std::string path = WriteGraph(n, edges);
  SemiExternalOptions options = SmallOptions();
  options.memory_budget_bytes = 1;  // floor of 1024 edges per chunk
  SccResult result;
  RunStats stats;
  Status st = RunScc(SccAlgorithm::kEm, path, options, &result, &stats);
  EXPECT_TRUE(st.IsIncomplete()) << st.ToString();
}

}  // namespace
}  // namespace ioscc
