// The threaded I/O pipeline (util/thread_pool.h + the async prefetcher
// in io/block_file.cc + pipelined external sort): the headline invariant
// is that threading changes *when* physical work happens, never *what*
// the ledger says happened — logical IoStats, the audit-log access
// stream, cache/simulator conformance, and every algorithm result are
// byte-identical at any thread count and prefetch depth
// (docs/PERFORMANCE.md).

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "io/block_cache.h"
#include "io/block_file.h"
#include "io/edge_file.h"
#include "io/external_sort.h"
#include "obs/io_audit.h"
#include "scc/algorithms.h"
#include "tests/test_util.h"
#include "util/thread_pool.h"

namespace ioscc {
namespace {

using testing_util::TempDirTest;

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::atomic<int> ran{0};
  TaskGroup group(&pool);
  for (int i = 0; i < 100; ++i) {
    group.Run([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  }
  group.Wait();
  EXPECT_EQ(ran.load(), 100);
  EXPECT_GE(pool.tasks_submitted(), 100u);
  EXPECT_EQ(pool.queue_depth(), 0u);
}

TEST(ThreadPoolTest, TaskGroupRunsInlineWithoutPool) {
  // The null-pool contract the pipelined sort depends on: tasks execute
  // immediately on the calling thread, Wait is a no-op.
  TaskGroup group(nullptr);
  int ran = 0;
  group.Run([&ran] { ++ran; });
  EXPECT_EQ(ran, 1);  // already ran, before Wait
  group.Wait();
  EXPECT_EQ(ran, 1);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 32; ++i) {
      EXPECT_TRUE(
          pool.Submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); }));
    }
  }
  // A queued task may be one a TaskGroup::Wait blocks on, so shutdown
  // runs the backlog instead of dropping it.
  EXPECT_EQ(ran.load(), 32);
}

class IoPipelineTest : public TempDirTest {
 protected:
  // Installs pool + a depth-carrying cache, scans `path`, tears down.
  struct ScanRun {
    Status status;
    IoStats stats;
    std::vector<Edge> edges;
  };

  ScanRun Scan(const std::string& path, int threads, int depth,
               uint64_t cache_budget = 0) {
    ScanRun run;
    std::unique_ptr<ThreadPool> pool;
    std::unique_ptr<BlockCache> cache;
    if (threads > 0) {
      pool = std::make_unique<ThreadPool>(static_cast<size_t>(threads));
      SetIoThreadPool(pool.get());
    }
    if (threads > 0 || cache_budget > 0) {
      cache = std::make_unique<BlockCache>(cache_budget);
      cache->set_prefetch_depth(depth);
      SetBlockCache(cache.get());
    }
    run.status = ReadAllEdges(path, &run.edges, nullptr, &run.stats);
    SetBlockCache(nullptr);
    SetIoThreadPool(nullptr);
    return run;
  }

  static void ExpectLogicalEq(const IoStats& a, const IoStats& b) {
    EXPECT_EQ(a.blocks_read, b.blocks_read);
    EXPECT_EQ(a.blocks_written, b.blocks_written);
    EXPECT_EQ(a.bytes_read, b.bytes_read);
    EXPECT_EQ(a.bytes_written, b.bytes_written);
    EXPECT_EQ(a.read_retries, b.read_retries);
    EXPECT_EQ(a.write_retries, b.write_retries);
  }

  std::vector<Edge> ManyEdges(NodeId n, size_t count) {
    // Deterministic pseudo-random multigraph (duplicates included, so
    // dedup filters have work to do).
    std::vector<Edge> edges;
    uint64_t x = 0x9e3779b97f4a7c15ULL;
    for (size_t i = 0; i < count; ++i) {
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
      edges.push_back({static_cast<NodeId>(x % n),
                       static_cast<NodeId>((x >> 32) % n)});
    }
    return edges;
  }
};

TEST_F(IoPipelineTest, AsyncScanLedgerMatchesBareScan) {
  // 16 KiB of edges at 512-byte blocks: a 33-block sequential scan.
  const std::vector<Edge> edges = ManyEdges(1000, 2048);
  const std::string path = WriteGraph(1000, edges, 512);

  ScanRun bare = Scan(path, /*threads=*/0, /*depth=*/0);
  ASSERT_OK(bare.status);
  ASSERT_EQ(bare.edges.size(), edges.size());
  EXPECT_EQ(bare.stats.physical_blocks_read, bare.stats.blocks_read);

  struct Config {
    int threads;
    int depth;
  };
  for (const Config& c : {Config{2, 4}, Config{4, 16}, Config{2, 0},
                          Config{1, 2}, Config{2, 1}}) {
    SCOPED_TRACE("threads=" + std::to_string(c.threads) +
                 " depth=" + std::to_string(c.depth));
    ScanRun run = Scan(path, c.threads, c.depth);
    ASSERT_OK(run.status);
    EXPECT_EQ(run.edges, bare.edges);
    ExpectLogicalEq(run.stats, bare.stats);
    // Every block still crossed the disk exactly once, whoever read it.
    EXPECT_EQ(run.stats.physical_blocks_read, bare.stats.physical_blocks_read);
    if (c.depth >= 2) {
      // The async window really served the scan.
      EXPECT_GT(run.stats.prefetched_blocks, 0u);
      EXPECT_EQ(run.stats.prefetch_hits, run.stats.prefetched_blocks);
      EXPECT_EQ(run.stats.prefetch_depth_used, static_cast<uint64_t>(c.depth));
    }
  }
}

TEST_F(IoPipelineTest, AsyncPrefetchStaysInLockstepWithSimulator) {
  const std::vector<Edge> edges = ManyEdges(500, 1024);
  const std::string path = WriteGraph(500, edges, 512);

  const uint64_t kBudget = 64;  // whole file fits
  BlockAccessLog log;
  ThreadPool pool(2);
  BlockCache cache(kBudget);
  cache.set_prefetch_depth(8);
  SetBlockAccessLog(&log);
  SetIoThreadPool(&pool);
  SetBlockCache(&cache);
  IoStats stats;
  std::vector<Edge> out;
  Status st = ReadAllEdges(path, &out, nullptr, &stats);  // cold: misses
  if (st.ok()) st = ReadAllEdges(path, &out, nullptr, &stats);  // warm: hits
  SetBlockCache(nullptr);
  SetIoThreadPool(nullptr);
  SetBlockAccessLog(nullptr);
  ASSERT_OK(st);

  // The simulator is the spec, threaded or not: prefetch-served reads
  // are LRU misses that install, so replaying this run's own audit log
  // reproduces the cache's hit/miss counts exactly.
  CacheSimPoint sim = SimulateLruCache(log.Snapshot(), kBudget);
  EXPECT_EQ(cache.stats().hits, sim.hits);
  EXPECT_EQ(cache.stats().misses, sim.misses);
  EXPECT_EQ(stats.cache_hits, sim.hits);
  EXPECT_GT(stats.cache_hits, 0u);      // warm pass was served by the LRU
  EXPECT_GT(stats.prefetched_blocks, 0u);  // cold pass used the window
}

TEST_F(IoPipelineTest, SccRunIdenticalAcrossThreadsAndDepths) {
  // 20 disjoint copies of the paper's Fig. 1 graph, 512-byte blocks —
  // a full 2P-SCC run with scratch files, reversals and re-scans.
  const std::vector<Edge> tile = testing_util::PaperFigure1Edges();
  std::vector<Edge> edges;
  const NodeId n = 20 * testing_util::kPaperFigure1Nodes;
  for (NodeId copy = 0; copy < 20; ++copy) {
    const NodeId base = copy * testing_util::kPaperFigure1Nodes;
    for (const Edge& e : tile) edges.push_back({e.from + base, e.to + base});
  }
  const std::string path = WriteGraph(n, edges, 512);

  struct Outcome {
    SccResult result;
    RunStats stats;
    AuditLogData log;
  };
  auto run_at = [&](int threads, int depth, Outcome* out) {
    SemiExternalOptions options;
    options.scratch_block_size = 512;
    BlockAccessLog log;
    std::unique_ptr<ThreadPool> pool;
    std::unique_ptr<BlockCache> cache;
    SetBlockAccessLog(&log);
    if (threads > 0) {
      pool = std::make_unique<ThreadPool>(static_cast<size_t>(threads));
      SetIoThreadPool(pool.get());
      cache = std::make_unique<BlockCache>(0);
      cache->set_prefetch_depth(depth);
      SetBlockCache(cache.get());
    }
    Status st = RunScc(SccAlgorithm::kTwoPhase, path, options, &out->result,
                       &out->stats);
    SetBlockCache(nullptr);
    SetIoThreadPool(nullptr);
    SetBlockAccessLog(nullptr);
    ASSERT_OK(st);
    out->log = log.Snapshot();
  };

  Outcome baseline;
  run_at(0, 0, &baseline);
  ASSERT_GT(baseline.log.accesses.size(), 0u);

  struct Config {
    int threads;
    int depth;
  };
  for (const Config& c : {Config{2, 4}, Config{4, 16}, Config{2, 0}}) {
    SCOPED_TRACE("threads=" + std::to_string(c.threads) +
                 " depth=" + std::to_string(c.depth));
    Outcome run;
    run_at(c.threads, c.depth, &run);
    EXPECT_TRUE(run.result == baseline.result);
    ExpectLogicalEq(run.stats.io, baseline.stats.io);
    EXPECT_EQ(run.stats.iterations, baseline.stats.iterations);

    // The audit log records the *logical* access stream; background
    // fills never touch it, so the sequence — not just the totals — is
    // identical record for record. (File ids intern in first-access
    // order, so they agree too even though scratch paths differ.)
    ASSERT_EQ(run.log.accesses.size(), baseline.log.accesses.size());
    for (size_t i = 0; i < run.log.accesses.size(); ++i) {
      const BlockAccessRecord& a = run.log.accesses[i];
      const BlockAccessRecord& b = baseline.log.accesses[i];
      ASSERT_TRUE(a.file_id == b.file_id && a.block == b.block &&
                  a.is_write == b.is_write && a.seq == b.seq)
          << "access " << i << " diverged: file " << a.file_id << " block "
          << a.block << (a.is_write ? " W" : " R") << " vs file "
          << b.file_id << " block " << b.block << (b.is_write ? " W" : " R");
    }
  }
}

class SortPipelineTest : public IoPipelineTest {
 protected:
  static std::string Slurp(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
  }
};

TEST_F(SortPipelineTest, ParallelSortByteIdenticalToSerial) {
  // Enough edges that the pool actually carves chunks (>= 2 * 4096 per
  // run) and several runs spill.
  const std::vector<Edge> edges = ManyEdges(5000, 60'000);
  const std::string input = WriteGraph(5000, edges, 4096);

  auto sort_with = [&](ThreadPool* pool, IoStats* stats, std::string* out) {
    ExternalSortOptions options;
    options.memory_budget_bytes = 256 * 1024;  // ~16K edges per buffer
    options.pool = pool;
    *out = NewPath(".sorted");
    ASSERT_OK(SortEdgeFile(input, *out, options, dir_.get(), stats));
  };

  IoStats serial_stats;
  std::string serial_out;
  sort_with(nullptr, &serial_stats, &serial_out);

  for (size_t threads : {1u, 4u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ThreadPool pool(threads);
    IoStats stats;
    std::string out;
    sort_with(&pool, &stats, &out);
    // Byte-identical output file: equal elements are bitwise identical,
    // so chunked sort + merge cascade reproduces the serial permutation.
    EXPECT_EQ(Slurp(out), Slurp(serial_out));
    // And the identical logical + physical ledger: the schedule (read
    // chunk k+1, sort k, spill k) is the same with or without workers.
    EXPECT_TRUE(stats == serial_stats)
        << "parallel: " << stats.Format()
        << " serial: " << serial_stats.Format();
  }
}

TEST_F(SortPipelineTest, FaninCapForcesMultipassMergeSameOutput) {
  // 2 KiB budget at 512-byte blocks: 64-edge runs, so 2000 edges form
  // ~32 runs; max_fanin=2 then needs 5 intermediate merge passes where
  // the uncapped sort needs none.
  const NodeId n = 64;  // small id space => plenty of duplicate edges
  const std::vector<Edge> edges = ManyEdges(n, 2000);
  const std::string input = WriteGraph(n, edges, 512);

  auto sort_with = [&](size_t budget, size_t max_fanin, IoStats* stats,
                       std::string* out) {
    ExternalSortOptions options;
    options.memory_budget_bytes = budget;
    options.max_fanin = max_fanin;
    options.dedup = true;
    *out = NewPath(".sorted");
    ASSERT_OK(SortEdgeFile(input, *out, options, dir_.get(), stats));
  };

  IoStats onepass_stats;
  std::string onepass_out;
  sort_with(1 << 20, 0, &onepass_stats, &onepass_out);

  IoStats multipass_stats;
  std::string multipass_out;
  sort_with(2048, 2, &multipass_stats, &multipass_out);

  // Same sorted, deduplicated output, pass count notwithstanding.
  EXPECT_EQ(Slurp(multipass_out), Slurp(onepass_out));
  std::vector<Edge> sorted;
  ASSERT_OK(ReadAllEdges(multipass_out, &sorted, nullptr, nullptr));
  std::vector<Edge> expected = edges;
  std::sort(expected.begin(), expected.end());
  expected.erase(std::unique(expected.begin(), expected.end()),
                 expected.end());
  EXPECT_EQ(sorted, expected);

  // The extra passes cost real I/O: every intermediate pass re-reads and
  // re-writes the surviving data, so the capped sort moves well over
  // twice the blocks of the single-pass sort.
  EXPECT_GT(multipass_stats.blocks_written, 2 * onepass_stats.blocks_written);
  EXPECT_GT(multipass_stats.blocks_read, 2 * onepass_stats.blocks_read);
}

TEST_F(SortPipelineTest, MaxFaninIgnoredWhenRunsFit) {
  // A cap above the run count changes nothing: single merge pass, same
  // I/O as the uncapped sort.
  const std::vector<Edge> edges = ManyEdges(200, 500);
  const std::string input = WriteGraph(200, edges, 512);
  auto sort_with = [&](size_t max_fanin, IoStats* stats, std::string* out) {
    ExternalSortOptions options;
    options.memory_budget_bytes = 1 << 20;
    options.max_fanin = max_fanin;
    *out = NewPath(".sorted");
    ASSERT_OK(SortEdgeFile(input, *out, options, dir_.get(), stats));
  };
  IoStats uncapped, capped;
  std::string out_a, out_b;
  sort_with(0, &uncapped, &out_a);
  sort_with(64, &capped, &out_b);
  EXPECT_EQ(Slurp(out_a), Slurp(out_b));
  EXPECT_TRUE(uncapped == capped);
}

}  // namespace
}  // namespace ioscc
