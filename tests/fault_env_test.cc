// Unit tests for the fault-injection seam, the retry policy, checksummed
// (v2) edge files, and the temp-then-rename durability contract.

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "io/block_cache.h"
#include "io/block_file.h"
#include "io/edge_file.h"
#include "io/external_sort.h"
#include "io/fault_env.h"
#include "io/verify_file.h"
#include "tests/test_util.h"
#include "util/crc32c.h"
#include "util/thread_pool.h"

namespace ioscc {
namespace {

using testing_util::TempDirTest;

// RAII: installs a fault injector and a fast retry policy for one test,
// restoring the clean defaults on exit so tests cannot leak faults into
// each other through the process-wide seams.
class FaultScope {
 public:
  explicit FaultScope(FaultInjector* injector) {
    SetFaultInjector(injector);
    IoRetryPolicy fast;
    fast.max_attempts = 3;
    fast.backoff_initial_us = 0;  // no sleeping in unit tests
    SetIoRetryPolicy(fast);
  }
  ~FaultScope() {
    SetFaultInjector(nullptr);
    SetIoRetryPolicy(IoRetryPolicy());
  }
};

std::vector<Edge> ChainEdges(NodeId n) {
  std::vector<Edge> edges;
  for (NodeId v = 0; v + 1 < n; ++v) edges.push_back({v, v + 1});
  return edges;
}

class FaultEnvTest : public TempDirTest {};

TEST(Crc32cTest, KnownVectors) {
  // RFC 3720 test vectors for CRC32C (Castagnoli).
  const char check[] = "123456789";
  EXPECT_EQ(crc32c::Value(check, 9), 0xE3069283u);
  std::vector<char> zeros(32, 0);
  EXPECT_EQ(crc32c::Value(zeros.data(), zeros.size()), 0x8A9136AAu);
  // Extend over a split buffer equals the one-shot value.
  uint32_t split = crc32c::Extend(crc32c::Value(check, 4), check + 4, 5);
  EXPECT_EQ(split, 0xE3069283u);
  // Mask/Unmask round-trips and actually changes the value.
  EXPECT_EQ(crc32c::Unmask(crc32c::Mask(0xE3069283u)), 0xE3069283u);
  EXPECT_NE(crc32c::Mask(0xE3069283u), 0xE3069283u);
}

TEST(FaultInjectorTest, RulesMatchAndBurnOut) {
  FaultInjector injector(/*seed=*/7);
  injector.AddRule(FaultInjector::TransientAt("target", 2, FaultOp::kRead,
                                              FaultKind::kTransientEio));
  // Wrong file, wrong block, wrong op: no fault.
  EXPECT_EQ(injector.OnAccess("other", 2, FaultOp::kRead, 512).kind,
            FaultKind::kNone);
  EXPECT_EQ(injector.OnAccess("a/target", 1, FaultOp::kRead, 512).kind,
            FaultKind::kNone);
  EXPECT_EQ(injector.OnAccess("a/target", 2, FaultOp::kWrite, 512).kind,
            FaultKind::kNone);
  // Exact match fires once, then the transient rule burns out.
  EXPECT_EQ(injector.OnAccess("a/target", 2, FaultOp::kRead, 512).kind,
            FaultKind::kTransientEio);
  EXPECT_EQ(injector.OnAccess("a/target", 2, FaultOp::kRead, 512).kind,
            FaultKind::kNone);
  EXPECT_EQ(injector.attempts(), 5u);
  EXPECT_EQ(injector.injected_total(), 1u);
  EXPECT_EQ(injector.injected_count(FaultKind::kTransientEio), 1u);
  EXPECT_NE(injector.Summary().find("1 transient-eio"), std::string::npos);
}

TEST(FaultInjectorTest, AtSeqAndEveryKth) {
  FaultInjector injector;
  injector.AddRule(FaultInjector::AtSeq(3, FaultKind::kEintr));
  injector.AddRule(FaultInjector::EveryKth(4, FaultOp::kWrite,
                                           FaultKind::kShortWrite));
  std::vector<FaultKind> fired;
  for (int i = 0; i < 12; ++i) {
    fired.push_back(
        injector.OnAccess("f", 0, FaultOp::kWrite, 256).kind);
  }
  // Seq 3 is the EINTR. First matching rule wins and claims the attempt,
  // so the every-4th counter only sees the other 11 attempts and the
  // short write fires on its 4th and 8th match.
  EXPECT_EQ(fired[3], FaultKind::kEintr);
  int short_writes = 0;
  for (FaultKind kind : fired) {
    if (kind == FaultKind::kShortWrite) ++short_writes;
  }
  EXPECT_EQ(short_writes, 2);
}

TEST(FaultInjectorTest, SameSeedSameParameters) {
  // The RNG draws fault parameters; the same seed must reproduce the
  // exact same draw sequence.
  std::vector<uint64_t> draws[2];
  for (int round = 0; round < 2; ++round) {
    FaultInjector injector(/*seed=*/0xfeedULL);
    injector.AddRule(
        FaultInjector::EveryKth(1, FaultOp::kRead, FaultKind::kBitFlip));
    for (int i = 0; i < 16; ++i) {
      draws[round].push_back(
          injector.OnAccess("f", i, FaultOp::kRead, 4096).param);
    }
  }
  EXPECT_EQ(draws[0], draws[1]);
}

TEST_F(FaultEnvTest, TransientEioIsRetriedAndCounted) {
  const std::string path = WriteGraph(16, ChainEdges(16), 512);
  FaultInjector injector;
  injector.AddRule(FaultInjector::TransientAt("", 1, FaultOp::kRead,
                                              FaultKind::kTransientEio));
  FaultScope scope(&injector);
  IoStats stats;
  std::vector<Edge> edges;
  uint64_t n = 0;
  ASSERT_OK(ReadAllEdges(path, &edges, &n, &stats));
  EXPECT_EQ(edges.size(), 15u);
  EXPECT_EQ(stats.read_retries, 1u);
  // The block still counts once: retries are attempts, not extra I/Os.
  EXPECT_EQ(stats.blocks_read, 2u);  // header + one data block
}

TEST_F(FaultEnvTest, PermanentEioExhaustsRetriesIntoIoError) {
  const std::string path = WriteGraph(16, ChainEdges(16), 512);
  FaultInjector injector;
  injector.AddRule(FaultInjector::PermanentAt("", 1, FaultOp::kRead,
                                              FaultKind::kPermanentEio));
  FaultScope scope(&injector);
  IoStats stats;
  std::vector<Edge> edges;
  Status st = ReadAllEdges(path, &edges, nullptr, &stats);
  ASSERT_TRUE(st.IsIoError()) << st.ToString();
  EXPECT_NE(st.ToString().find("gave up after 3 attempts"),
            std::string::npos)
      << st.ToString();
  EXPECT_EQ(stats.read_retries, 2u);  // max_attempts=3: 1 first + 2 retries
}

TEST_F(FaultEnvTest, SameSeedSameFailurePoint) {
  // Determinism end to end: the same schedule against the same workload
  // fails at the same point with the same message, run after run.
  std::vector<std::string> messages;
  std::vector<IoStats> stats_log;
  for (int round = 0; round < 2; ++round) {
    const std::string path =
        WriteGraph(300, ChainEdges(300), 512);
    FaultInjector injector(/*seed=*/42);
    injector.AddRule(FaultInjector::EveryKth(3, FaultOp::kRead,
                                             FaultKind::kTransientEio));
    injector.AddRule(FaultInjector::PermanentAt("", 3, FaultOp::kRead,
                                                FaultKind::kPermanentEio));
    FaultScope scope(&injector);
    IoStats stats;
    std::vector<Edge> edges;
    Status st = ReadAllEdges(path, &edges, nullptr, &stats);
    ASSERT_TRUE(st.IsIoError());
    // Strip the path (differs per temp dir); keep the failure shape.
    std::string msg = st.ToString();
    messages.push_back(msg.substr(msg.rfind(':')));
    stats_log.push_back(stats);
  }
  EXPECT_EQ(messages[0], messages[1]);
  EXPECT_TRUE(stats_log[0] == stats_log[1]);
}

TEST_F(FaultEnvTest, EnospcFailsWritesWithoutRetry) {
  FaultInjector injector;
  injector.AddRule(FaultInjector::PermanentAt("", kAnyBlock, FaultOp::kWrite,
                                              FaultKind::kEnospc));
  FaultScope scope(&injector);
  IoStats stats;
  const std::string path = NewPath(".edges");
  Status st = WriteEdgeFile(path, 16, ChainEdges(16), 512, &stats);
  ASSERT_TRUE(st.IsIoError()) << st.ToString();
  EXPECT_NE(st.ToString().find("No space left"), std::string::npos)
      << st.ToString();
  EXPECT_EQ(stats.write_retries, 0u);
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

TEST_F(FaultEnvTest, TornWriteLeavesNeitherFileNorOrphanTmp) {
  FaultInjector injector;
  injector.AddRule(FaultInjector::TransientAt("", 1, FaultOp::kWrite,
                                              FaultKind::kTornWrite));
  FaultScope scope(&injector);
  const std::string path = NewPath(".edges");
  Status st = WriteEdgeFile(path, 128, ChainEdges(128), 512, nullptr);
  ASSERT_TRUE(st.IsIoError()) << st.ToString();
  EXPECT_NE(st.ToString().find("torn write"), std::string::npos);
  // The crash-consistency contract: no torn file under the final name,
  // no orphaned staging file either.
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

TEST_F(FaultEnvTest, ShortWriteIsRetriedToSuccess) {
  FaultInjector injector;
  injector.AddRule(FaultInjector::TransientAt("", 2, FaultOp::kWrite,
                                              FaultKind::kShortWrite));
  FaultScope scope(&injector);
  IoStats stats;
  const std::string path = NewPath(".edges");
  ASSERT_OK(WriteEdgeFile(path, 256, ChainEdges(256), 512, &stats));
  EXPECT_EQ(stats.write_retries, 1u);
  // The rewritten block must be intact.
  std::vector<Edge> edges;
  ASSERT_OK(ReadAllEdges(path, &edges, nullptr, nullptr));
  EXPECT_EQ(edges.size(), 255u);
}

TEST_F(FaultEnvTest, BitFlipOnV1ReadIsSilent) {
  // The uncheckable case the v2 format exists for: a flipped bit in a v1
  // data block sails through (only endpoint validation could catch it,
  // and bit 0 of a small id stays in range).
  const std::string path = WriteGraph(16, ChainEdges(16), 512);
  FaultInjector injector(/*seed=*/1);
  injector.AddRule(FaultInjector::TransientAt("", 1, FaultOp::kRead,
                                              FaultKind::kBitFlip));
  FaultScope scope(&injector);
  std::vector<Edge> edges;
  Status st = ReadAllEdges(path, &edges, nullptr, nullptr);
  // Either the flip hit an endpoint and pushed it out of range
  // (Corruption via endpoint validation) or it silently altered an edge;
  // it must never be an I/O error or crash.
  if (!st.ok()) {
    EXPECT_TRUE(st.IsCorruption()) << st.ToString();
  } else {
    EXPECT_EQ(edges.size(), 15u);
  }
}

TEST_F(FaultEnvTest, BitFlipOnV2ReadIsCorruption) {
  const std::string path = NewPath(".edges");
  ASSERT_OK(WriteEdgeFile(path, 16, ChainEdges(16), 512, nullptr,
                          kEdgeFormatV2));
  FaultInjector injector(/*seed=*/1);
  injector.AddRule(FaultInjector::TransientAt("", 1, FaultOp::kRead,
                                              FaultKind::kBitFlip));
  FaultScope scope(&injector);
  std::vector<Edge> edges;
  Status st = ReadAllEdges(path, &edges, nullptr, nullptr);
  ASSERT_TRUE(st.IsCorruption()) << st.ToString();
  EXPECT_NE(st.ToString().find("block 1"), std::string::npos)
      << st.ToString();
  EXPECT_NE(st.ToString().find("checksum mismatch"), std::string::npos);
}

TEST_F(FaultEnvTest, FlushFaultSurfacesThroughFinish) {
  FaultInjector injector;
  injector.AddRule(FaultInjector::PermanentAt("", kAnyBlock,
                                              FaultOp::kFlush,
                                              FaultKind::kEnospc));
  FaultScope scope(&injector);
  const std::string path = NewPath(".edges");
  Status st = WriteEdgeFile(path, 16, ChainEdges(16), 512, nullptr);
  ASSERT_TRUE(st.IsIoError()) << st.ToString();
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

TEST_F(FaultEnvTest, NoInjectorMeansByteIdenticalStats) {
  // The acceptance bar for the whole seam: with no injector installed the
  // counters match a pre-seam run exactly.
  const std::vector<Edge> edges = ChainEdges(130);
  const std::string a = NewPath(".edges");
  ASSERT_OK(WriteEdgeFile(a, 130, edges, 512, nullptr));
  IoStats with_scope;
  {
    FaultInjector injector;  // installed but with zero rules
    FaultScope scope(&injector);
    std::vector<Edge> out;
    ASSERT_OK(ReadAllEdges(a, &out, nullptr, &with_scope));
  }
  IoStats without;
  std::vector<Edge> out;
  ASSERT_OK(ReadAllEdges(a, &out, nullptr, &without));
  EXPECT_TRUE(with_scope == without);
  EXPECT_EQ(without.read_retries, 0u);
}

class FormatV2Test : public TempDirTest {};

TEST_F(FormatV2Test, RoundTripAndHeaderMetadata) {
  const std::string path = NewPath(".edges");
  const std::vector<Edge> edges = ChainEdges(200);
  ASSERT_OK(WriteEdgeFile(path, 200, edges, 512, nullptr, kEdgeFormatV2));
  EdgeFileInfo info;
  ASSERT_OK(ReadEdgeFileInfo(path, &info));
  EXPECT_EQ(info.version, kEdgeFormatV2);
  // 512-byte v2 block carries (512-4)/8 = 63 edges.
  EXPECT_EQ(info.EdgesPerBlock(), 63u);
  std::vector<Edge> back;
  uint64_t n = 0;
  ASSERT_OK(ReadAllEdges(path, &back, &n, nullptr));
  EXPECT_EQ(n, 200u);
  EXPECT_EQ(back, edges);
}

TEST_F(FormatV2Test, V1FilesStillReadUnderV2Default) {
  // Compatibility both ways: a v1 file written before the flag flip reads
  // fine while the process default is v2, and vice versa.
  const std::vector<Edge> edges = ChainEdges(100);
  const std::string v1 = NewPath(".edges");
  ASSERT_OK(WriteEdgeFile(v1, 100, edges, 512, nullptr, kEdgeFormatV1));
  SetDefaultEdgeFileVersion(kEdgeFormatV2);
  const std::string v2 = NewPath(".edges");
  Status st = WriteEdgeFile(v2, 100, edges, 512, nullptr);
  SetDefaultEdgeFileVersion(kEdgeFormatV1);
  ASSERT_OK(st);

  EdgeFileInfo info;
  ASSERT_OK(ReadEdgeFileInfo(v2, &info));
  EXPECT_EQ(info.version, kEdgeFormatV2);  // default was honored
  for (const std::string& path : {v1, v2}) {
    std::vector<Edge> back;
    ASSERT_OK(ReadAllEdges(path, &back, nullptr, nullptr));
    EXPECT_EQ(back, edges) << path;
  }
}

TEST_F(FormatV2Test, FlippedBitAnywhereIsNamedCorruption) {
  const std::string path = NewPath(".edges");
  ASSERT_OK(WriteEdgeFile(path, 500, ChainEdges(500), 512, nullptr,
                          kEdgeFormatV2));
  const auto file_size = std::filesystem::file_size(path);
  // Flip one bit in every block in turn; every single one must be caught
  // and attributed to the right block.
  for (uint64_t block = 0; block * 512 < file_size; ++block) {
    const uint64_t offset = block * 512 + 100;  // mid-block byte
    std::FILE* f = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, static_cast<long>(offset), SEEK_SET), 0);
    int byte = std::fgetc(f);
    ASSERT_NE(byte, EOF);
    ASSERT_EQ(std::fseek(f, static_cast<long>(offset), SEEK_SET), 0);
    std::fputc(byte ^ 0x10, f);
    std::fclose(f);

    std::vector<Edge> edges;
    Status st = ReadAllEdges(path, &edges, nullptr, nullptr);
    ASSERT_TRUE(st.IsCorruption()) << "block " << block << ": "
                                   << st.ToString();
    EXPECT_NE(st.ToString().find("block " + std::to_string(block)),
              std::string::npos)
        << st.ToString();

    // Un-flip for the next round.
    f = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, static_cast<long>(offset), SEEK_SET), 0);
    std::fputc(byte, f);
    std::fclose(f);
  }
  // Restored file is clean again.
  std::vector<Edge> edges;
  ASSERT_OK(ReadAllEdges(path, &edges, nullptr, nullptr));
}

TEST_F(FormatV2Test, FsckReportsFirstCorruptBlock) {
  const std::string path = NewPath(".edges");
  ASSERT_OK(WriteEdgeFile(path, 500, ChainEdges(500), 512, nullptr,
                          kEdgeFormatV2));
  FsckReport clean;
  ASSERT_OK(FsckEdgeFile(path, &clean, nullptr));
  EXPECT_EQ(clean.version, kEdgeFormatV2);
  EXPECT_EQ(clean.first_bad_block, -1);
  EXPECT_EQ(clean.blocks_checked, clean.block_count);

  // Damage blocks 3 and 5; fsck must name 3 (the *first*).
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  for (long block : {3, 5}) {
    ASSERT_EQ(std::fseek(f, block * 512 + 17, SEEK_SET), 0);
    std::fputc(0x7f, f);
  }
  std::fclose(f);

  FsckReport report;
  Status st = FsckEdgeFile(path, &report, nullptr);
  ASSERT_TRUE(st.IsCorruption()) << st.ToString();
  EXPECT_EQ(report.first_bad_block, 3);
  EXPECT_EQ(report.blocks_checked, report.block_count - 2);
}

TEST_F(FormatV2Test, ReverseKeepsFormatVersion) {
  const std::string in = NewPath(".edges");
  ASSERT_OK(WriteEdgeFile(in, 64, ChainEdges(64), 512, nullptr,
                          kEdgeFormatV2));
  const std::string out = NewPath(".edges");
  ASSERT_OK(ReverseEdgeFile(in, out, nullptr));
  EdgeFileInfo info;
  ASSERT_OK(ReadEdgeFileInfo(out, &info));
  EXPECT_EQ(info.version, kEdgeFormatV2);
}

TEST_F(FormatV2Test, FinishedFileAppearsAtomically) {
  // While the writer is mid-stream only the .tmp exists; after Finish
  // only the final file does.
  const std::string path = NewPath(".edges");
  std::unique_ptr<EdgeWriter> writer;
  ASSERT_OK(EdgeWriter::Create(path, 300, 512, nullptr, &writer));
  for (const Edge& e : ChainEdges(300)) ASSERT_OK(writer->Add(e));
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_TRUE(std::filesystem::exists(path + ".tmp"));
  ASSERT_OK(writer->Finish());
  EXPECT_TRUE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

// Regression for the k-way merge's EOF-vs-error distinction
// (MergeSource::Advance in external_sort.cc): EdgeScanner::Next returns
// false both at clean end-of-run and on a failed read, and only the
// scanner's sticky status tells them apart. A merge that treated every
// false as exhaustion would drop the rest of the failed run and finish
// "successfully" with a truncated output. A mid-run read failure must
// instead surface as IOError and leave no output file behind.
TEST_F(FaultEnvTest, MergeSurfacesRunReadFailure) {
  std::vector<Edge> edges;
  for (NodeId v = 0; v < 2000; ++v) {
    edges.push_back({v, static_cast<NodeId>((v * 7 + 1) % 2000)});
  }
  const std::string in = NewPath(".edges");
  const std::string out = NewPath(".sorted");
  ASSERT_OK(WriteEdgeFile(in, 2000, edges, 512, nullptr));

  FaultInjector injector;
  // Data block 2 of every .run file fails on every read attempt. The
  // header and block 1 stay readable, so the merge starts cleanly and
  // hits the fault mid-run — exactly where a conflated Advance would
  // mistake the failure for end-of-run.
  injector.AddRule(FaultInjector::PermanentAt(".run", 2, FaultOp::kRead,
                                              FaultKind::kPermanentEio));
  FaultScope scope(&injector);

  ExternalSortOptions options;
  options.memory_budget_bytes = 256 * sizeof(Edge);  // several runs
  Status st = SortEdgeFile(in, out, options, dir_.get(), nullptr);
  ASSERT_FALSE(st.ok()) << "merge swallowed a mid-run read failure";
  EXPECT_TRUE(st.IsIoError()) << st.ToString();
  // The abandoned writer must have cleaned up: no torn/truncated output.
  EXPECT_FALSE(std::filesystem::exists(out));
  EXPECT_FALSE(std::filesystem::exists(out + ".tmp"));
}

TEST_F(FormatV2Test, AbandonedWriterRemovesTmp) {
  const std::string path = NewPath(".edges");
  {
    std::unique_ptr<EdgeWriter> writer;
    ASSERT_OK(EdgeWriter::Create(path, 300, 512, nullptr, &writer));
    for (const Edge& e : ChainEdges(300)) ASSERT_OK(writer->Add(e));
    // Destroyed without Finish: simulated abort.
  }
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

// Faults x the async prefetcher (io/block_file.h): a fault injected on a
// background fill is carried to the consuming logical read unretried, so
// the surfaced Status, the retry counters and the logical ledger are
// identical to an unthreaded run of the same schedule. The filler's
// failed attempt IS the demand path's first attempt, just taken early.
class ThreadedFaultTest : public TempDirTest {
 protected:
  struct ScanRun {
    Status status;
    IoStats stats;
    std::vector<Edge> edges;
  };

  // Scans `path` under a fresh injector built by `add_rules`; when
  // `threaded`, a 2-worker pool and an async depth-4 window cover every
  // data block, so each injected read fault lands on an in-flight
  // prefetch instead of a demand read.
  template <typename AddRules>
  ScanRun Scan(const std::string& path, bool threaded,
               const AddRules& add_rules, uint64_t seed = 7) {
    ScanRun run;
    std::unique_ptr<ThreadPool> pool;
    std::unique_ptr<BlockCache> cache;
    if (threaded) {
      pool = std::make_unique<ThreadPool>(2);
      SetIoThreadPool(pool.get());
      cache = std::make_unique<BlockCache>(0);  // carries the depth only
      cache->set_prefetch_depth(4);
      SetBlockCache(cache.get());
    }
    FaultInjector injector(seed);
    add_rules(&injector);
    {
      FaultScope scope(&injector);
      run.status = ReadAllEdges(path, &run.edges, nullptr, &run.stats);
    }
    SetBlockCache(nullptr);
    SetIoThreadPool(nullptr);
    return run;
  }

  static void ExpectSameOutcome(const ScanRun& threaded,
                                const ScanRun& serial) {
    EXPECT_EQ(threaded.status.ok(), serial.status.ok());
    EXPECT_EQ(threaded.status.ToString(), serial.status.ToString());
    EXPECT_EQ(threaded.stats.read_retries, serial.stats.read_retries);
    EXPECT_EQ(threaded.stats.blocks_read, serial.stats.blocks_read);
    EXPECT_EQ(threaded.stats.bytes_read, serial.stats.bytes_read);
    EXPECT_EQ(threaded.edges, serial.edges);
  }
};

TEST_F(ThreadedFaultTest, TransientEioOnPrefetchedBlockMatchesUnthreaded) {
  const std::string path = WriteGraph(300, ChainEdges(300), 512);
  auto rules = [](FaultInjector* injector) {
    injector->AddRule(FaultInjector::TransientAt("", 3, FaultOp::kRead,
                                                 FaultKind::kTransientEio));
  };
  ScanRun serial = Scan(path, /*threaded=*/false, rules);
  ScanRun threaded = Scan(path, /*threaded=*/true, rules);
  ASSERT_OK(serial.status);
  EXPECT_EQ(serial.stats.read_retries, 1u);
  // The filler's single failed attempt surfaced on the consuming read,
  // which retried exactly like a failed demand read would.
  ExpectSameOutcome(threaded, serial);
  EXPECT_GT(threaded.stats.prefetched_blocks, 0u);
}

TEST_F(ThreadedFaultTest, PermanentEioOnPrefetchedBlockMatchesUnthreaded) {
  const std::string path = WriteGraph(300, ChainEdges(300), 512);
  auto rules = [](FaultInjector* injector) {
    injector->AddRule(FaultInjector::PermanentAt("", 2, FaultOp::kRead,
                                                 FaultKind::kPermanentEio));
  };
  ScanRun serial = Scan(path, false, rules);
  ScanRun threaded = Scan(path, true, rules);
  ASSERT_TRUE(serial.status.IsIoError()) << serial.status.ToString();
  EXPECT_NE(serial.status.ToString().find("gave up after 3 attempts"),
            std::string::npos);
  EXPECT_EQ(serial.stats.read_retries, 2u);  // max_attempts=3 via FaultScope
  ExpectSameOutcome(threaded, serial);
}

TEST_F(ThreadedFaultTest, ShortReadOnPrefetchedBlockIsRetriedToSuccess) {
  const std::string path = WriteGraph(300, ChainEdges(300), 512);
  auto rules = [](FaultInjector* injector) {
    injector->AddRule(FaultInjector::TransientAt("", 4, FaultOp::kRead,
                                                 FaultKind::kShortRead));
  };
  ScanRun serial = Scan(path, false, rules);
  ScanRun threaded = Scan(path, true, rules);
  ASSERT_OK(serial.status);
  EXPECT_EQ(serial.stats.read_retries, 1u);
  ExpectSameOutcome(threaded, serial);
}

TEST_F(ThreadedFaultTest, BitFlipOnPrefetchedBlockSurfacesOnConsumingRead) {
  // v2 checksums: the flipped bits ride inside the prefetched slot and
  // the Corruption verdict fires when the *logical* read consumes the
  // block — same block named, same message as the unthreaded run (the
  // same seed draws the same bit for the first fault fired).
  const std::string path = NewPath(".edges");
  ASSERT_OK(WriteEdgeFile(path, 300, ChainEdges(300), 512, nullptr,
                          kEdgeFormatV2));
  auto rules = [](FaultInjector* injector) {
    injector->AddRule(FaultInjector::TransientAt("", 2, FaultOp::kRead,
                                                 FaultKind::kBitFlip));
  };
  ScanRun serial = Scan(path, false, rules, /*seed=*/1);
  ScanRun threaded = Scan(path, true, rules, /*seed=*/1);
  ASSERT_TRUE(serial.status.IsCorruption()) << serial.status.ToString();
  EXPECT_NE(serial.status.ToString().find("block 2"), std::string::npos);
  EXPECT_EQ(threaded.status.ToString(), serial.status.ToString());
  EXPECT_EQ(threaded.stats.read_retries, serial.stats.read_retries);
}

}  // namespace
}  // namespace ioscc
