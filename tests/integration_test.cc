// End-to-end integration: generator -> on-disk edge file -> every
// algorithm through the registry -> partition checks; plus error paths
// through the full stack (corrupt inputs, missing files) and the
// algorithm registry itself.

#include <cstdio>
#include <filesystem>
#include <vector>

#include <gtest/gtest.h>

#include "gen/generators.h"
#include "graph/graph_io.h"
#include "io/edge_file.h"
#include "scc/algorithms.h"
#include "tests/test_util.h"

namespace ioscc {
namespace {

using testing_util::OracleFor;
using testing_util::TempDirTest;

TEST(RegistryTest, NamesRoundTrip) {
  for (SccAlgorithm algorithm : AllAlgorithms()) {
    SccAlgorithm parsed;
    ASSERT_OK(ParseAlgorithm(AlgorithmName(algorithm), &parsed));
    EXPECT_EQ(parsed, algorithm);
  }
  SccAlgorithm parsed;
  ASSERT_OK(ParseAlgorithm("1PB", &parsed));
  EXPECT_EQ(parsed, SccAlgorithm::kOnePhaseBatch);
  EXPECT_TRUE(ParseAlgorithm("FOO", &parsed).IsInvalidArgument());
  EXPECT_TRUE(ParseAlgorithm("", &parsed).IsInvalidArgument());
}

class IntegrationTest : public TempDirTest {};

TEST_F(IntegrationTest, GeneratorToDiskToAllAlgorithms) {
  // Full pipeline on a planted workload, through the file generators (not
  // the in-memory edge vectors).
  PlantedSccSpec spec;
  spec.node_count = 1500;
  spec.avg_degree = 4.0;
  spec.components = {{100, 2}, {10, 12}};
  spec.seed = 2024;
  const std::string path = NewPath(".edges");
  ASSERT_OK(GeneratePlantedSccFile(spec, path, 4096, nullptr));

  Digraph graph;
  ASSERT_OK(LoadDigraph(path, &graph, nullptr));
  const SccResult oracle = OracleFor(graph.node_count(), graph.ToEdgeList());

  for (SccAlgorithm algorithm : AllAlgorithms()) {
    SccResult result;
    RunStats stats;
    SemiExternalOptions options;
    options.scratch_block_size = 4096;
    options.memory_budget_bytes = 1 << 16;
    Status st = RunScc(algorithm, path, options, &result, &stats);
    if (st.IsIncomplete() && (algorithm == SccAlgorithm::kTwoPhase ||
                              algorithm == SccAlgorithm::kEm)) {
      continue;  // documented non-convergence cases
    }
    ASSERT_TRUE(st.ok()) << AlgorithmName(algorithm) << ": "
                         << st.ToString();
    EXPECT_EQ(result, oracle) << AlgorithmName(algorithm);
    EXPECT_GT(stats.io.blocks_read, 0u) << AlgorithmName(algorithm);
    EXPECT_GT(stats.seconds, 0.0) << AlgorithmName(algorithm);
  }
}

TEST_F(IntegrationTest, MissingInputSurfacesIoErrorEverywhere) {
  for (SccAlgorithm algorithm : AllAlgorithms()) {
    SccResult result;
    RunStats stats;
    Status st = RunScc(algorithm, NewPath(".missing"),
                       SemiExternalOptions(), &result, &stats);
    EXPECT_TRUE(st.IsIoError() || st.IsCorruption())
        << AlgorithmName(algorithm) << ": " << st.ToString();
  }
}

TEST_F(IntegrationTest, CorruptInputSurfacesCorruptionEverywhere) {
  const std::string path = NewPath(".edges");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  std::vector<char> junk(8192, '?');
  std::fwrite(junk.data(), 1, junk.size(), f);
  std::fclose(f);
  for (SccAlgorithm algorithm : AllAlgorithms()) {
    SccResult result;
    RunStats stats;
    Status st =
        RunScc(algorithm, path, SemiExternalOptions(), &result, &stats);
    EXPECT_TRUE(st.IsCorruption())
        << AlgorithmName(algorithm) << ": " << st.ToString();
  }
}

TEST_F(IntegrationTest, TruncatedInputDetectedBeforeAnyWork) {
  std::vector<Edge> edges(5000, Edge{1, 2});
  const std::string path = NewPath(".edges");
  ASSERT_OK(WriteEdgeFile(path, 3, edges, 4096, nullptr));
  std::filesystem::resize_file(path, 4096 * 3);  // chop data blocks
  for (SccAlgorithm algorithm : AllAlgorithms()) {
    SccResult result;
    RunStats stats;
    Status st =
        RunScc(algorithm, path, SemiExternalOptions(), &result, &stats);
    EXPECT_TRUE(st.IsCorruption())
        << AlgorithmName(algorithm) << ": " << st.ToString();
  }
}

TEST_F(IntegrationTest, OutOfRangeEndpointSurfacesEverywhere) {
  const std::string path = WriteGraph(3, {{0, 1}, {1, 2}});
  // Forge an in-range file, then write one with a rogue endpoint by
  // claiming a smaller node count.
  const std::string rogue = NewPath(".edges");
  ASSERT_OK(WriteEdgeFile(rogue, 2, {{0, 1}, {1, 2}}, 4096, nullptr));
  for (SccAlgorithm algorithm : AllAlgorithms()) {
    SccResult result;
    RunStats stats;
    Status st =
        RunScc(algorithm, rogue, SemiExternalOptions(), &result, &stats);
    EXPECT_TRUE(st.IsCorruption())
        << AlgorithmName(algorithm) << ": " << st.ToString();
  }
}

TEST_F(IntegrationTest, SingleNodeGraph) {
  const std::string path = WriteGraph(1, {});
  for (SccAlgorithm algorithm : AllAlgorithms()) {
    SccResult result;
    RunStats stats;
    ASSERT_OK(
        RunScc(algorithm, path, SemiExternalOptions(), &result, &stats));
    EXPECT_EQ(result.ComponentCount(), 1u) << AlgorithmName(algorithm);
  }
}

TEST_F(IntegrationTest, InducedSubgraphPipeline) {
  // Generate -> induce 50% -> SCCs of the subgraph must match the oracle
  // of the subgraph (Exp-2 pipeline).
  PlantedSccSpec spec;
  spec.node_count = 1000;
  spec.avg_degree = 4.0;
  spec.components = {{50, 4}};
  spec.seed = 99;
  const std::string full = NewPath(".edges");
  ASSERT_OK(GeneratePlantedSccFile(spec, full, 4096, nullptr));
  const std::string half = NewPath(".half");
  ASSERT_OK(InduceSubgraphByNodePrefix(full, 0.5, half, nullptr));

  Digraph subgraph;
  ASSERT_OK(LoadDigraph(half, &subgraph, nullptr));
  const SccResult oracle =
      OracleFor(subgraph.node_count(), subgraph.ToEdgeList());
  SccResult result;
  RunStats stats;
  ASSERT_OK(RunScc(SccAlgorithm::kOnePhaseBatch, half,
                   SemiExternalOptions(), &result, &stats));
  EXPECT_EQ(result, oracle);
}

}  // namespace
}  // namespace ioscc
