// Unit tests for the BR-Tree substrate: star construction, pushdown,
// ancestor checks, path contraction, removal, rebuilds and the structural
// self-check after randomized operation sequences.

#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "scc/spanning_tree.h"
#include "scc/union_find.h"
#include "util/random.h"

namespace ioscc {
namespace {

TEST(SpanningTreeTest, StarInitialization) {
  SpanningTree tree(4);
  EXPECT_EQ(tree.root(), 4u);
  EXPECT_EQ(tree.depth(tree.root()), 0u);
  for (NodeId v = 0; v < 4; ++v) {
    EXPECT_EQ(tree.parent(v), tree.root());
    EXPECT_EQ(tree.depth(v), 1u);
    EXPECT_TRUE(tree.IsAncestor(tree.root(), v));
  }
  EXPECT_TRUE(tree.CheckConsistency());
}

TEST(SpanningTreeTest, AncestorSemantics) {
  SpanningTree tree(5);
  tree.Reparent(1, 0);
  tree.Reparent(2, 1);
  // root -> 0 -> 1 -> 2; 3, 4 remain root children.
  EXPECT_TRUE(tree.IsAncestor(0, 2));
  EXPECT_TRUE(tree.IsAncestor(0, 0));  // reflexive
  EXPECT_FALSE(tree.IsAncestor(2, 0));
  EXPECT_FALSE(tree.IsAncestor(3, 2));
  EXPECT_FALSE(tree.IsAncestor(2, 3));
  EXPECT_EQ(tree.depth(2), 3u);
  EXPECT_TRUE(tree.CheckConsistency());
}

TEST(SpanningTreeTest, ReparentUpdatesSubtreeDepthsAndReportsMax) {
  SpanningTree tree(6);
  tree.Reparent(1, 0);
  tree.Reparent(2, 1);
  tree.Reparent(3, 2);  // chain 0-1-2-3
  uint32_t moved_max = 0;
  tree.Reparent(1, 4, &moved_max);  // move the 1-2-3 chain under 4
  EXPECT_EQ(tree.depth(1), 2u);
  EXPECT_EQ(tree.depth(2), 3u);
  EXPECT_EQ(tree.depth(3), 4u);
  EXPECT_EQ(moved_max, 4u);
  EXPECT_TRUE(tree.CheckConsistency());
}

TEST(SpanningTreeTest, SubtreeIterationAndSize) {
  SpanningTree tree(6);
  tree.Reparent(1, 0);
  tree.Reparent(2, 0);
  tree.Reparent(3, 1);
  std::set<NodeId> seen;
  tree.ForEachInSubtree(0, [&](NodeId v) { seen.insert(v); });
  EXPECT_EQ(seen, (std::set<NodeId>{0, 1, 2, 3}));
  EXPECT_EQ(tree.SubtreeSize(0), 4u);
  EXPECT_EQ(tree.SubtreeSize(4), 1u);
}

TEST(SpanningTreeTest, ContractPathMergesAndSplicesChildren) {
  SpanningTree tree(7);
  tree.Reparent(1, 0);
  tree.Reparent(2, 1);
  tree.Reparent(3, 2);
  tree.Reparent(4, 1);  // hangs off the path
  tree.Reparent(5, 2);  // hangs off the path
  // Contract the path 0..3 (descendant 3 up to ancestor 0).
  std::vector<NodeId> merged;
  tree.ContractPathInto(3, 0, &merged);
  EXPECT_EQ(std::set<NodeId>(merged.begin(), merged.end()),
            (std::set<NodeId>{1, 2, 3}));
  // The hanging subtrees must now be children of 0 at depth 2.
  EXPECT_EQ(tree.parent(4), 0u);
  EXPECT_EQ(tree.parent(5), 0u);
  EXPECT_EQ(tree.depth(4), 2u);
  EXPECT_EQ(tree.depth(5), 2u);
  EXPECT_TRUE(tree.CheckConsistency());
}

TEST(SpanningTreeTest, RemoveSplicesChildrenToGrandparent) {
  SpanningTree tree(5);
  tree.Reparent(1, 0);
  tree.Reparent(2, 1);
  tree.Reparent(3, 1);
  tree.Remove(1);
  EXPECT_EQ(tree.parent(2), 0u);
  EXPECT_EQ(tree.parent(3), 0u);
  EXPECT_EQ(tree.depth(2), 2u);
  EXPECT_EQ(tree.parent(1), kInvalidNode);  // detached
  EXPECT_TRUE(tree.CheckConsistency());
}

TEST(SpanningTreeTest, RebuildFromParents) {
  SpanningTree tree(5);
  std::vector<NodeId> parents = {tree.root(), 0, 1, kInvalidNode, 0};
  tree.RebuildFromParents(parents);
  EXPECT_EQ(tree.depth(0), 1u);
  EXPECT_EQ(tree.depth(1), 2u);
  EXPECT_EQ(tree.depth(2), 3u);
  EXPECT_EQ(tree.parent(3), kInvalidNode);
  EXPECT_EQ(tree.depth(4), 2u);
  EXPECT_TRUE(tree.CheckConsistency());
}

TEST(SpanningTreeTest, RecomputeDepthsFixesEverything) {
  SpanningTree tree(4);
  tree.Reparent(1, 0);
  tree.Reparent(2, 1);
  tree.RecomputeDepths();
  EXPECT_EQ(tree.depth(0), 1u);
  EXPECT_EQ(tree.depth(1), 2u);
  EXPECT_EQ(tree.depth(2), 3u);
  EXPECT_EQ(tree.depth(3), 1u);
}

// Randomized operation sequences keep the structure consistent.
class SpanningTreeFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(SpanningTreeFuzzTest, RandomOperationsPreserveInvariants) {
  Rng rng(GetParam() * 7919);
  const NodeId n = 60;
  SpanningTree tree(n);
  UnionFind uf(n + 1);
  std::vector<bool> removed(n, false);

  auto alive = [&](NodeId v) { return !removed[v] && uf.Find(v) == v; };

  for (int op = 0; op < 400; ++op) {
    NodeId a = uf.Find(static_cast<NodeId>(rng.Uniform(n)));
    NodeId b = uf.Find(static_cast<NodeId>(rng.Uniform(n)));
    if (!alive(a) || !alive(b) || a == b) continue;
    switch (rng.Uniform(3)) {
      case 0:  // pushdown b under a when legal
        if (!tree.IsAncestor(a, b) && !tree.IsAncestor(b, a)) {
          tree.Reparent(b, a);
        }
        break;
      case 1:  // contract path when related
        if (tree.IsAncestor(b, a)) {
          std::vector<NodeId> merged;
          tree.ContractPathInto(a, b, &merged);
          for (NodeId w : merged) uf.UnionInto(b, w, b);
        }
        break;
      case 2:  // remove
        removed[a] = true;
        tree.Remove(a);
        break;
    }
    ASSERT_TRUE(tree.CheckConsistency()) << "op " << op;
  }
  // Depths must equal parent depth + 1 for all attached nodes.
  for (NodeId v = 0; v < n; ++v) {
    if (tree.parent(v) != kInvalidNode) {
      EXPECT_EQ(tree.depth(v), tree.depth(tree.parent(v)) + 1);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, SpanningTreeFuzzTest,
                         ::testing::Range(1, 11));

TEST(UnionFindTest, BasicUnionAndFind) {
  UnionFind uf(5);
  EXPECT_NE(uf.Find(0), uf.Find(1));
  uf.Union(0, 1);
  EXPECT_EQ(uf.Find(0), uf.Find(1));
  EXPECT_EQ(uf.SetSize(0), 2u);
  EXPECT_EQ(uf.SetSize(2), 1u);
}

TEST(UnionFindTest, UnionIntoForcesRepresentative) {
  UnionFind uf(5);
  uf.UnionInto(3, 1, 3);
  EXPECT_EQ(uf.Find(1), 3u);
  uf.UnionInto(3, 2, 3);
  EXPECT_EQ(uf.Find(2), 3u);
  EXPECT_EQ(uf.SetSize(3), 3u);
  // Idempotent on same-set arguments.
  uf.UnionInto(3, 1, 3);
  EXPECT_EQ(uf.SetSize(3), 3u);
}

TEST(UnionFindTest, TransitiveMergesResolve) {
  UnionFind uf(100);
  for (NodeId v = 1; v < 100; ++v) uf.UnionInto(v - 1, v, uf.Find(v - 1));
  NodeId rep = uf.Find(0);
  for (NodeId v = 0; v < 100; ++v) EXPECT_EQ(uf.Find(v), rep);
  EXPECT_EQ(uf.SetSize(50), 100u);
}

}  // namespace
}  // namespace ioscc
