// End-to-end tests for the observability wiring: the per-iteration I/O
// identity (sum of IterationStats.io == RunStats.io), the top-level trace
// span's I/O attribution, and the JSONL run report round-trip.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "harness/runner.h"
#include "obs/metrics.h"
#include "obs/run_report.h"
#include "obs/trace.h"
#include "scc/algorithms.h"
#include "tests/json_test_util.h"
#include "tests/test_util.h"

namespace ioscc {
namespace {

using testing_util::JsonValue;
using testing_util::ParseJson;
using testing_util::PaperFigure1Edges;
using testing_util::kPaperFigure1Nodes;

class RunReportTest : public testing_util::TempDirTest {
 protected:
  // Small blocks force multi-block scans, so the identity test sees real
  // per-iteration I/O rather than a single cached block.
  std::string PaperGraph() {
    return WriteGraph(kPaperFigure1Nodes, PaperFigure1Edges(), 512);
  }

  SemiExternalOptions Options() {
    SemiExternalOptions options;
    options.scratch_dir = dir_->path();
    options.scratch_block_size = 512;
    return options;
  }

  static std::vector<std::string> ReadLines(const std::string& path) {
    std::ifstream in(path);
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line)) {
      if (!line.empty()) lines.push_back(line);
    }
    return lines;
  }
};

// The regression guard for the identity documented in scc/options.h: every
// reducing algorithm's per-iteration I/O deltas must sum to the run total
// (the first iteration absorbs setup I/O such as the header read).
TEST_F(RunReportTest, PerIterationIoSumsToRunTotal) {
  const std::string path = PaperGraph();
  for (SccAlgorithm algorithm :
       {SccAlgorithm::kOnePhase, SccAlgorithm::kOnePhaseBatch,
        SccAlgorithm::kTwoPhase}) {
    RunOutcome outcome = RunAlgorithmOnFile(algorithm, path, Options());
    ASSERT_TRUE(outcome.Finished())
        << AlgorithmName(algorithm) << ": " << outcome.status.ToString();
    ASSERT_FALSE(outcome.stats.per_iteration.empty())
        << AlgorithmName(algorithm);
    EXPECT_GT(outcome.stats.io.TotalBlockIos(), 0u);
    IoStats sum;
    for (const IterationStats& iter : outcome.stats.per_iteration) {
      sum += iter.io;
    }
    EXPECT_EQ(sum, outcome.stats.io)
        << AlgorithmName(algorithm) << ": per-iteration I/O sums to "
        << sum.Format() << " but the run counted "
        << outcome.stats.io.Format();
  }
}

TEST_F(RunReportTest, TopLevelTraceSpanCarriesRunIo) {
  const std::string path = PaperGraph();
  Tracer tracer;
  SetTracer(&tracer);
  RunOutcome outcome =
      RunAlgorithmOnFile(SccAlgorithm::kOnePhaseBatch, path, Options());
  SetTracer(nullptr);
  ASSERT_TRUE(outcome.Finished()) << outcome.status.ToString();

  // The runner wraps the whole run in a span named after the algorithm;
  // its I/O delta must equal the run's total.
  const TraceEvent* top = nullptr;
  for (const TraceEvent& event : tracer.events()) {
    if (event.name == AlgorithmName(SccAlgorithm::kOnePhaseBatch)) {
      top = &event;
    }
  }
  ASSERT_NE(top, nullptr);
  EXPECT_EQ(top->depth, 0u);
  EXPECT_TRUE(top->has_io);
  EXPECT_EQ(top->io_delta, outcome.stats.io);
  // Nested pass spans exist and stay within the top-level span.
  bool saw_pass = false;
  for (const TraceEvent& event : tracer.events()) {
    if (event.name == std::string("1pb.pass")) {
      saw_pass = true;
      EXPECT_GE(event.depth, 1u);
      EXPECT_GE(event.start_us, top->start_us);
    }
  }
  EXPECT_TRUE(saw_pass);
}

TEST_F(RunReportTest, ReportJsonlRoundTrips) {
  const std::string path = PaperGraph();
  const std::string report_path = NewPath(".jsonl");

  MetricsRegistry::Global().Reset();
  SetMetricsEnabled(true);
  RunOutcome outcome =
      RunAlgorithmOnFile(SccAlgorithm::kOnePhaseBatch, path, Options());
  SetMetricsEnabled(false);
  ASSERT_TRUE(outcome.Finished()) << outcome.status.ToString();

  std::unique_ptr<RunReportWriter> writer;
  ASSERT_OK(RunReportWriter::Open(report_path, &writer));
  ASSERT_OK(writer->Append(
      MakeReportEntry("run_report_test", SccAlgorithm::kOnePhaseBatch, path,
                      outcome)));
  ASSERT_OK(writer->AppendMetricsSnapshot());
  writer.reset();

  std::vector<std::string> lines = ReadLines(report_path);
  ASSERT_EQ(lines.size(), 2u);

  JsonValue run;
  ASSERT_TRUE(ParseJson(lines[0], &run)) << lines[0];
  EXPECT_EQ(run["type"].string_value, "run");
  EXPECT_EQ(run["experiment"].string_value, "run_report_test");
  EXPECT_EQ(run["algorithm"].string_value, "1PB-SCC");
  EXPECT_EQ(run["dataset"].string_value, path);
  EXPECT_TRUE(run["finished"].bool_value);
  EXPECT_EQ(run["io"]["blocks_read"].number,
            static_cast<double>(outcome.stats.io.blocks_read));
  EXPECT_EQ(run["io"]["blocks_written"].number,
            static_cast<double>(outcome.stats.io.blocks_written));
  EXPECT_EQ(run["io"]["block_ios"].number,
            static_cast<double>(outcome.stats.io.TotalBlockIos()));
  EXPECT_EQ(run["iterations"].number,
            static_cast<double>(outcome.stats.iterations));
  // The paper graph has SCCs {b,c,d,e} and {g,h,i,j} plus 4 singletons.
  EXPECT_EQ(run["result"]["component_count"].number, 6.0);
  EXPECT_EQ(run["result"]["largest_component"].number, 4.0);
  // Per-iteration records are present and their I/O sums to the total.
  const JsonValue& iterations = run["per_iteration"];
  ASSERT_TRUE(iterations.is_array());
  ASSERT_EQ(iterations.array.size(), outcome.stats.per_iteration.size());
  double block_io_sum = 0;
  for (const JsonValue& iter : iterations.array) {
    block_io_sum += iter["io"]["block_ios"].number;
  }
  EXPECT_EQ(block_io_sum,
            static_cast<double>(outcome.stats.io.TotalBlockIos()));

  JsonValue metrics;
  ASSERT_TRUE(ParseJson(lines[1], &metrics)) << lines[1];
  EXPECT_EQ(metrics["type"].string_value, "metrics");
  // The run above bumped the pass counter and sampled block latencies.
  EXPECT_TRUE(metrics["counters"]["scc.passes"].is_number());
  EXPECT_GE(metrics["counters"]["scc.passes"].number, 1.0);
  const JsonValue& latency = metrics["histograms"]["io.block_read_us"];
  ASSERT_TRUE(latency.is_object());
  EXPECT_GE(latency["count"].number, 1.0);
  ASSERT_TRUE(latency["buckets"].is_array());
  MetricsRegistry::Global().Reset();
}

// Retry counters (io/fault_env.h recovery path) ride along in every io
// object so run reports show how hard the storage fought back.
TEST_F(RunReportTest, RetryCountersAppearInJson) {
  RunReportEntry entry;
  entry.experiment = "run_report_test";
  entry.algorithm = "1PB-SCC";
  entry.dataset = "synthetic";
  entry.status = "OK";
  entry.finished = true;
  entry.stats.io.blocks_read = 10;
  entry.stats.io.read_retries = 3;
  entry.stats.io.write_retries = 2;
  JsonValue run;
  ASSERT_TRUE(ParseJson(RunReportEntryToJson(entry), &run));
  EXPECT_EQ(run["io"]["read_retries"].number, 3.0);
  EXPECT_EQ(run["io"]["write_retries"].number, 2.0);

  // A clean run serializes explicit zeros (consumers need not probe for
  // the keys).
  RunReportEntry clean;
  JsonValue clean_run;
  ASSERT_TRUE(ParseJson(RunReportEntryToJson(clean), &clean_run));
  EXPECT_EQ(clean_run["io"]["read_retries"].number, 0.0);
  EXPECT_EQ(clean_run["io"]["write_retries"].number, 0.0);
}

// With a PhaseProfiler installed the run entry gains a "phases" array
// whose I/O attribution matches the run total, and the writer can append
// a whole-process {"type":"phases"} record.
TEST_F(RunReportTest, PhaseProfilesRoundTripThroughJsonl) {
  const std::string path = PaperGraph();
  const std::string report_path = NewPath(".jsonl");

  PhaseProfiler profiler;
  SetPhaseProfiler(&profiler);
  RunOutcome outcome =
      RunAlgorithmOnFile(SccAlgorithm::kOnePhaseBatch, path, Options());
  SetPhaseProfiler(nullptr);
  ASSERT_TRUE(outcome.Finished()) << outcome.status.ToString();
  ASSERT_FALSE(outcome.phases.empty());

  std::unique_ptr<RunReportWriter> writer;
  ASSERT_OK(RunReportWriter::Open(report_path, &writer));
  ASSERT_OK(writer->Append(
      MakeReportEntry("run_report_test", SccAlgorithm::kOnePhaseBatch, path,
                      outcome)));
  ASSERT_OK(writer->AppendPhaseProfiles(profiler.Snapshot()));
  writer.reset();

  std::vector<std::string> lines = ReadLines(report_path);
  ASSERT_EQ(lines.size(), 2u);

  JsonValue run;
  ASSERT_TRUE(ParseJson(lines[0], &run)) << lines[0];
  const JsonValue& phases = run["phases"];
  ASSERT_TRUE(phases.is_array());
  ASSERT_EQ(phases.array.size(), outcome.phases.size());
  // The top-level phase is named after the algorithm and owns the whole
  // run's I/O.
  bool saw_top = false;
  for (const JsonValue& phase : phases.array) {
    EXPECT_TRUE(phase["wall_micros"].is_number());
    EXPECT_TRUE(phase["cpu_user_micros"].is_number());
    EXPECT_TRUE(phase["max_rss_kb"].is_number());
    if (phase["name"].string_value == "1PB-SCC") {
      saw_top = true;
      EXPECT_EQ(phase["spans"].number, 1.0);
      EXPECT_EQ(phase["io"]["block_ios"].number,
                static_cast<double>(outcome.stats.io.TotalBlockIos()));
    }
  }
  EXPECT_TRUE(saw_top);

  JsonValue process;
  ASSERT_TRUE(ParseJson(lines[1], &process)) << lines[1];
  EXPECT_EQ(process["type"].string_value, "phases");
  ASSERT_TRUE(process["profiles"].is_array());
  EXPECT_EQ(process["profiles"].array.size(), outcome.phases.size());

  // Without a profiler the run entry carries no phases key at all.
  RunOutcome bare =
      RunAlgorithmOnFile(SccAlgorithm::kOnePhaseBatch, path, Options());
  JsonValue bare_run;
  ASSERT_TRUE(ParseJson(
      RunReportEntryToJson(MakeReportEntry("run_report_test",
                                           SccAlgorithm::kOnePhaseBatch,
                                           path, bare)),
      &bare_run));
  EXPECT_FALSE(bare_run["phases"].is_array());
}

// The per_iteration array is capped at kMaxPerIterationEntries via
// stride-based downsampling: the JSON records the stride and the true
// total, keeps the last iteration, and labels each retained entry with
// its 1-based index. --full-iterations (the entry flag) restores the
// exact array.
TEST_F(RunReportTest, PerIterationStrideDownsampling) {
  RunReportEntry entry;
  entry.experiment = "run_report_test";
  entry.algorithm = "DFS-SCC";
  entry.dataset = "synthetic";
  entry.status = "OK";
  const size_t total = 2 * kMaxPerIterationEntries + 7;
  for (size_t i = 0; i < total; ++i) {
    IterationStats iter;
    iter.live_nodes = i + 1;  // recoverable from the JSON for spot checks
    entry.stats.per_iteration.push_back(iter);
  }

  JsonValue run;
  ASSERT_TRUE(ParseJson(RunReportEntryToJson(entry), &run));
  EXPECT_EQ(run["per_iteration_total"].number, static_cast<double>(total));
  EXPECT_EQ(run["per_iteration_stride"].number, 3.0);
  const JsonValue& sampled = run["per_iteration"];
  ASSERT_TRUE(sampled.is_array());
  EXPECT_LE(sampled.array.size(), kMaxPerIterationEntries + 1);
  // Every retained entry is labeled, stride-aligned (except the always-
  // retained last), and carries its original payload.
  for (const JsonValue& iter : sampled.array) {
    ASSERT_TRUE(iter["iteration"].is_number());
    const auto index = static_cast<size_t>(iter["iteration"].number);
    EXPECT_TRUE((index - 1) % 3 == 0 || index == total);
    EXPECT_EQ(iter["live_nodes"].number, static_cast<double>(index));
  }
  EXPECT_EQ(static_cast<size_t>(
                sampled.array.back()["iteration"].number),
            total);

  // Opting into the exact array restores every record, unlabeled.
  entry.full_iterations = true;
  JsonValue full;
  ASSERT_TRUE(ParseJson(RunReportEntryToJson(entry), &full));
  EXPECT_EQ(full["per_iteration_stride"].number, 1.0);
  ASSERT_EQ(full["per_iteration"].array.size(), total);
  EXPECT_FALSE(full["per_iteration"].array[0]["iteration"].is_number());
}

// A watchdog that fired shows up as a "watchdog" object; a quiet run
// serializes without the key.
TEST_F(RunReportTest, WatchdogFiresAppearInJson) {
  RunReportEntry entry;
  entry.watchdog_fires = 2;
  JsonValue run;
  ASSERT_TRUE(ParseJson(RunReportEntryToJson(entry), &run));
  EXPECT_EQ(run["watchdog"]["fires"].number, 2.0);

  RunReportEntry quiet;
  JsonValue quiet_run;
  ASSERT_TRUE(ParseJson(RunReportEntryToJson(quiet), &quiet_run));
  EXPECT_FALSE(quiet_run["watchdog"].is_object());
}

// An unfinished run must serialize without a result summary.
TEST_F(RunReportTest, UnfinishedRunHasNoResult) {
  const std::string path = PaperGraph();
  SemiExternalOptions options = Options();
  options.max_iterations = 1;  // force Incomplete
  RunOutcome outcome =
      RunAlgorithmOnFile(SccAlgorithm::kOnePhase, path, options);
  ASSERT_TRUE(outcome.TimedOut()) << outcome.status.ToString();

  RunReportEntry entry = MakeReportEntry("run_report_test",
                                         SccAlgorithm::kOnePhase, path,
                                         outcome);
  JsonValue run;
  ASSERT_TRUE(ParseJson(RunReportEntryToJson(entry), &run));
  EXPECT_FALSE(run["finished"].bool_value);
  EXPECT_TRUE(run["timed_out"].bool_value);
  EXPECT_FALSE(run["result"].is_object());
}

}  // namespace
}  // namespace ioscc
