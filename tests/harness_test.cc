// Tests for the bench harness: formatting, outcome cells, dataset builder
// and the analytic I/O models.

#include <gtest/gtest.h>

#include "harness/datasets.h"
#include "harness/runner.h"
#include "harness/table.h"
#include "harness/theory.h"
#include "tests/test_util.h"

namespace ioscc {
namespace {

TEST(FormatTest, FormatCount) {
  EXPECT_EQ(FormatCount(0), "0");
  EXPECT_EQ(FormatCount(999), "999");
  EXPECT_EQ(FormatCount(1000), "1,000");
  EXPECT_EQ(FormatCount(50000), "50,000");
  EXPECT_EQ(FormatCount(1234567), "1,234,567");
  EXPECT_EQ(FormatCount(105895908), "105,895,908");
}

TEST(FormatTest, FormatSeconds) {
  EXPECT_EQ(FormatSeconds(0.5), "0.500s");
  EXPECT_EQ(FormatSeconds(12.34), "12.3s");
  EXPECT_EQ(FormatSeconds(120), "120s");
  EXPECT_EQ(FormatSeconds(7200), "2.00h");
}

TEST(FormatTest, FormatCompact) {
  EXPECT_EQ(FormatCompact(999), "999");
  EXPECT_EQ(FormatCompact(113000000), "113.0M");
  EXPECT_EQ(FormatCompact(7600000), "7.6M");
  EXPECT_EQ(FormatCompact(50000), "50.0K");
}

TEST(FormatTest, FormatPercent) {
  EXPECT_EQ(FormatPercent(0.0302), "3.02%");
  EXPECT_EQ(FormatPercent(1.0), "100.00%");
}

TEST(RunnerCellsTest, IncompleteRendersAsInf) {
  RunOutcome outcome;
  outcome.status = Status::Incomplete("cap");
  EXPECT_EQ(TimeCell(outcome), "INF");
  EXPECT_EQ(IoCell(outcome), "INF");
  outcome.status = Status::Internal("bug");
  EXPECT_EQ(TimeCell(outcome), "ERR");
  outcome.status = Status::OK();
  outcome.stats.seconds = 1.5;
  outcome.stats.io.blocks_read = 10;
  outcome.stats.io.blocks_written = 5;
  EXPECT_EQ(TimeCell(outcome), "1.5s");
  EXPECT_EQ(IoCell(outcome), "15");
}

TEST(RunnerTest, PaperDefaultMemory) {
  // M = 4 bytes * 3|V| + one block.
  EXPECT_EQ(PaperDefaultMemoryBytes(1000, 65536), 12 * 1000 + 65536u);
}

TEST(RunnerTest, OracleMismatchSurfacesAsInternal) {
  // Run a real algorithm but hand it a wrong "oracle": the runner must
  // flag the disagreement instead of reporting success.
  std::unique_ptr<TempDir> dir;
  ASSERT_OK(TempDir::Create("ioscc-harness", &dir));
  const std::string path = dir->FilePath("g.edges");
  ASSERT_OK(WriteEdgeFile(path, 3, {{0, 1}, {1, 0}}, 512, nullptr));
  SccResult bogus;
  bogus.component = {0, 1, 2};  // wrong: 0 and 1 are one SCC
  RunOutcome outcome = RunAlgorithmOnFile(
      SccAlgorithm::kOnePhaseBatch, path, SemiExternalOptions(), &bogus);
  EXPECT_TRUE(outcome.status.IsInternal()) << outcome.status.ToString();
}

TEST(DatasetBuilderTest, BuildsAndDescribesDatasets) {
  std::unique_ptr<DatasetBuilder> builder;
  ASSERT_OK(DatasetBuilder::Create(&builder));
  std::string path;
  ASSERT_OK(builder->CitPatentsSim(0.001, 1, &path));
  DatasetStats stats;
  ASSERT_OK(DatasetBuilder::Describe(path, &stats));
  EXPECT_GE(stats.node_count, 1000u);
  EXPECT_GT(stats.edge_count, stats.node_count);  // degree > 1

  ASSERT_OK(builder->WebspamSim(20000, 8.0, 2, &path));
  ASSERT_OK(DatasetBuilder::Describe(path, &stats));
  EXPECT_EQ(stats.node_count, 20000u);
  EXPECT_NEAR(static_cast<double>(stats.edge_count) / stats.node_count,
              8.0, 0.5);
}

TEST(TheoryTest, BuchsbaumBoundDominatesOurScanBound) {
  // At any realistic scale the theoretical DFS bound is orders of
  // magnitude above depth(G) sequential scans — the Section 2 claim.
  const uint64_t n = 1'000'000, m = 35'000'000;
  const uint64_t buchsbaum =
      TheoryBuchsbaumDfsIos(n, m, 1ull << 30, 65536);
  const uint64_t ours = TheoryTwoPhaseIos(/*depth=*/21, m, 65536);
  EXPECT_GT(buchsbaum, ours);
}

TEST(TheoryTest, PruningSavingsModel) {
  // Section 7.4: the saving grows quadratically in the iteration count
  // and linearly in the pruned volume.
  const uint64_t base = TheoryPruningIoSavings(1000, 5000, 10, 65536);
  EXPECT_GT(base, 0u);
  EXPECT_GT(TheoryPruningIoSavings(1000, 5000, 20, 65536), 3 * base);
  EXPECT_GT(TheoryPruningIoSavings(2000, 10000, 10, 65536), base);
  // One iteration -> nothing to save in later iterations.
  EXPECT_EQ(TheoryPruningIoSavings(1000, 5000, 1, 65536), 0u);
  EXPECT_EQ(TheoryExtraBatchEdges(1000, 1), 0u);
  EXPECT_EQ(TheoryExtraBatchEdges(1000, 5), 5000u);
}

TEST(TheoryTest, SortIosScaleWithInput) {
  EXPECT_LT(TheorySortIos(1'000'000, 1 << 30, 65536),
            TheorySortIos(100'000'000, 1 << 30, 65536));
}

}  // namespace
}  // namespace ioscc
