// Tests for the observability layer: JSON writer, metrics registry,
// histogram bucketing, span tracing with I/O attribution and the Chrome
// trace export.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "io/io_stats.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tests/json_test_util.h"
#include "util/timer.h"

namespace ioscc {
namespace {

using testing_util::JsonValue;
using testing_util::ParseJson;

TEST(JsonWriterTest, NestedStructure) {
  JsonWriter w;
  w.BeginObject()
      .Key("name").String("run")
      .Key("n").Int(-3)
      .Key("u").UInt(18446744073709551615ull)
      .Key("ok").Bool(true)
      .Key("list").BeginArray().Int(1).Int(2).EndArray()
      .Key("nested").BeginObject().Key("x").Double(0.5).EndObject()
      .EndObject();
  EXPECT_EQ(w.str(),
            "{\"name\":\"run\",\"n\":-3,\"u\":18446744073709551615,"
            "\"ok\":true,\"list\":[1,2],\"nested\":{\"x\":0.5}}");
  JsonValue parsed;
  ASSERT_TRUE(ParseJson(w.Take(), &parsed));
  EXPECT_EQ(parsed["name"].string_value, "run");
  EXPECT_EQ(parsed["list"].array.size(), 2u);
}

TEST(JsonWriterTest, EscapesStrings) {
  EXPECT_EQ(JsonEscape("a\"b\\c\n\t"), "a\\\"b\\\\c\\n\\t");
  // Control characters become \u00XX.
  EXPECT_EQ(JsonEscape(std::string(1, '\x01')), "\\u0001");
  JsonWriter w;
  w.BeginObject().Key("k\"ey").String("v\nv").EndObject();
  JsonValue parsed;
  ASSERT_TRUE(ParseJson(w.Take(), &parsed));
  EXPECT_EQ(parsed["k\"ey"].string_value, "v\nv");
}

TEST(HistogramTest, BucketBoundaries) {
  // Bucket 0 holds the value 0; bucket i holds [2^(i-1), 2^i).
  EXPECT_EQ(Histogram::BucketIndex(0), 0);
  EXPECT_EQ(Histogram::BucketIndex(1), 1);
  EXPECT_EQ(Histogram::BucketIndex(2), 2);
  EXPECT_EQ(Histogram::BucketIndex(3), 2);
  EXPECT_EQ(Histogram::BucketIndex(4), 3);
  EXPECT_EQ(Histogram::BucketIndex(7), 3);
  EXPECT_EQ(Histogram::BucketIndex(8), 4);
  EXPECT_EQ(Histogram::BucketIndex(1023), 10);
  EXPECT_EQ(Histogram::BucketIndex(1024), 11);
  EXPECT_EQ(Histogram::BucketIndex(UINT64_MAX), 64);

  EXPECT_EQ(Histogram::BucketLowerBound(0), 0u);
  EXPECT_EQ(Histogram::BucketLowerBound(1), 1u);
  EXPECT_EQ(Histogram::BucketLowerBound(2), 2u);
  EXPECT_EQ(Histogram::BucketLowerBound(3), 4u);
  EXPECT_EQ(Histogram::BucketLowerBound(64), 1ull << 63);

  // Every bucket's lower bound maps back to that bucket.
  for (int i = 0; i < Histogram::kBucketCount; ++i) {
    EXPECT_EQ(Histogram::BucketIndex(Histogram::BucketLowerBound(i)), i)
        << "bucket " << i;
  }
}

TEST(HistogramTest, RecordAndStats) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), UINT64_MAX);  // empty sentinel
  h.Record(0);
  h.Record(5);
  h.Record(5);
  h.Record(100);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 110u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 100u);
  EXPECT_DOUBLE_EQ(h.Mean(), 27.5);
  EXPECT_EQ(h.bucket(Histogram::BucketIndex(0)), 1u);
  EXPECT_EQ(h.bucket(Histogram::BucketIndex(5)), 2u);
  EXPECT_EQ(h.bucket(Histogram::BucketIndex(100)), 1u);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), UINT64_MAX);
  EXPECT_EQ(h.bucket(Histogram::BucketIndex(5)), 0u);
}

TEST(MetricsRegistryTest, HandlesAreStableAcrossReset) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter* c = registry.GetCounter("test.obs_counter");
  Histogram* h = registry.GetHistogram("test.obs_hist");
  ASSERT_EQ(registry.GetCounter("test.obs_counter"), c);
  ASSERT_EQ(registry.GetHistogram("test.obs_hist"), h);

  c->Add(7);
  h->Record(16);
  MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.counters.at("test.obs_counter"), 7u);
  ASSERT_EQ(snap.histograms.count("test.obs_hist"), 1u);
  EXPECT_EQ(snap.histograms.at("test.obs_hist").count, 1u);
  EXPECT_EQ(snap.histograms.at("test.obs_hist").min, 16u);
  ASSERT_EQ(snap.histograms.at("test.obs_hist").buckets.size(), 1u);
  EXPECT_EQ(snap.histograms.at("test.obs_hist").buckets[0].first, 16u);
  EXPECT_EQ(snap.histograms.at("test.obs_hist").buckets[0].second, 1u);

  registry.Reset();
  // Same pointers, zeroed values; zero-count metrics leave the snapshot.
  EXPECT_EQ(registry.GetCounter("test.obs_counter"), c);
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(h->count(), 0u);
  MetricsSnapshot after = registry.Snapshot();
  EXPECT_EQ(after.counters.count("test.obs_counter"), 0u);
  EXPECT_EQ(after.histograms.count("test.obs_hist"), 0u);
}

TEST(IoStatsTest, DifferenceAndFormat) {
  IoStats a;
  a.blocks_read = 100;
  a.blocks_written = 20;
  a.bytes_read = 100 * 4096;
  a.bytes_written = 20 * 4096;
  IoStats b;
  b.blocks_read = 60;
  b.blocks_written = 5;
  b.bytes_read = 60 * 4096;
  b.bytes_written = 5 * 4096;
  IoStats d = a - b;
  EXPECT_EQ(d.blocks_read, 40u);
  EXPECT_EQ(d.blocks_written, 15u);
  EXPECT_EQ(d.TotalBlockIos(), 55u);
  EXPECT_EQ(b + d, a);
  // Subtraction saturates instead of wrapping.
  IoStats neg = b - a;
  EXPECT_EQ(neg.blocks_read, 0u);
  EXPECT_EQ(neg.bytes_written, 0u);

  std::string s = a.Format();
  EXPECT_NE(s.find("120 I/Os"), std::string::npos) << s;
  EXPECT_NE(s.find("100r"), std::string::npos) << s;
  EXPECT_NE(s.find("20w"), std::string::npos) << s;
}

TEST(TraceTest, NoSinkSpansAreNoOps) {
  ASSERT_EQ(GetTracer(), nullptr);
  IoStats io;
  {
    TraceSpan outer("outer", &io);
    TraceSpan inner("inner");
  }  // must not crash or record anywhere
  // Smoke-check the disabled cost: a span is a couple of nanoseconds, so
  // a million of them must be far under a (generous) second.
  Timer timer;
  for (int i = 0; i < 1000000; ++i) {
    TraceSpan span("hot");
  }
  EXPECT_LT(timer.ElapsedSeconds(), 1.0);
}

TEST(TraceTest, NestedSpansAttributeIoDeltas) {
  Tracer tracer;
  SetTracer(&tracer);
  IoStats io;
  {
    TraceSpan outer("phase", &io);
    {
      TraceSpan inner("pass", &io);
      io.blocks_read += 10;
      io.bytes_read += 10 * 4096;
    }
    {
      TraceSpan inner("pass", &io);
      io.blocks_read += 5;
      io.blocks_written += 2;
    }
    TraceSpan no_io("cpu_only");
    no_io.Close();
    no_io.Close();  // idempotent
  }
  SetTracer(nullptr);

  std::vector<TraceEvent> events = tracer.events();
  ASSERT_EQ(events.size(), 4u);
  // Recorded at exit: the two passes first, then cpu_only, then the phase.
  EXPECT_EQ(events[0].name, "pass");
  EXPECT_EQ(events[0].depth, 1u);
  EXPECT_TRUE(events[0].has_io);
  EXPECT_EQ(events[0].io_delta.blocks_read, 10u);
  EXPECT_EQ(events[0].io_delta.blocks_written, 0u);
  EXPECT_EQ(events[1].name, "pass");
  EXPECT_EQ(events[1].io_delta.blocks_read, 5u);
  EXPECT_EQ(events[1].io_delta.blocks_written, 2u);
  EXPECT_EQ(events[2].name, "cpu_only");
  EXPECT_FALSE(events[2].has_io);
  EXPECT_EQ(events[3].name, "phase");
  EXPECT_EQ(events[3].depth, 0u);
  // The outer span owns everything its children did.
  EXPECT_EQ(events[3].io_delta.blocks_read, 15u);
  EXPECT_EQ(events[3].io_delta.blocks_written, 2u);
  // Children nest inside the parent's time range.
  EXPECT_GE(events[0].start_us, events[3].start_us);
  EXPECT_LE(events[0].start_us + events[0].dur_us,
            events[3].start_us + events[3].dur_us);
}

TEST(TraceTest, ChromeTraceJsonParsesBack) {
  Tracer tracer;
  SetTracer(&tracer);
  IoStats io;
  {
    TraceSpan span("sort \"quoted\"", &io);
    io.blocks_written += 3;
    io.bytes_written += 3 * 4096;
  }
  SetTracer(nullptr);

  JsonValue doc;
  ASSERT_TRUE(ParseJson(tracer.ToChromeTraceJson(), &doc));
  ASSERT_TRUE(doc.is_object());
  const JsonValue& events = doc["traceEvents"];
  ASSERT_TRUE(events.is_array());
  ASSERT_EQ(events.array.size(), 1u);
  const JsonValue& e = events.array[0];
  EXPECT_EQ(e["name"].string_value, "sort \"quoted\"");
  EXPECT_EQ(e["ph"].string_value, "X");  // complete event
  EXPECT_TRUE(e["ts"].is_number());
  EXPECT_TRUE(e["dur"].is_number());
  EXPECT_EQ(e["args"]["blocks_written"].number, 3.0);
  EXPECT_EQ(e["args"]["bytes_written"].number, 3.0 * 4096);
}

}  // namespace
}  // namespace ioscc
