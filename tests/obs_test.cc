// Tests for the observability layer: JSON writer, metrics registry,
// histogram bucketing, span tracing with I/O attribution and the Chrome
// trace export.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "io/io_stats.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/phase_profiler.h"
#include "obs/trace.h"
#include "tests/json_test_util.h"
#include "util/random.h"
#include "util/timer.h"

namespace ioscc {
namespace {

using testing_util::JsonValue;
using testing_util::ParseJson;

TEST(JsonWriterTest, NestedStructure) {
  JsonWriter w;
  w.BeginObject()
      .Key("name").String("run")
      .Key("n").Int(-3)
      .Key("u").UInt(18446744073709551615ull)
      .Key("ok").Bool(true)
      .Key("list").BeginArray().Int(1).Int(2).EndArray()
      .Key("nested").BeginObject().Key("x").Double(0.5).EndObject()
      .EndObject();
  EXPECT_EQ(w.str(),
            "{\"name\":\"run\",\"n\":-3,\"u\":18446744073709551615,"
            "\"ok\":true,\"list\":[1,2],\"nested\":{\"x\":0.5}}");
  JsonValue parsed;
  ASSERT_TRUE(ParseJson(w.Take(), &parsed));
  EXPECT_EQ(parsed["name"].string_value, "run");
  EXPECT_EQ(parsed["list"].array.size(), 2u);
}

TEST(JsonWriterTest, EscapesStrings) {
  EXPECT_EQ(JsonEscape("a\"b\\c\n\t"), "a\\\"b\\\\c\\n\\t");
  // Control characters become \u00XX.
  EXPECT_EQ(JsonEscape(std::string(1, '\x01')), "\\u0001");
  JsonWriter w;
  w.BeginObject().Key("k\"ey").String("v\nv").EndObject();
  JsonValue parsed;
  ASSERT_TRUE(ParseJson(w.Take(), &parsed));
  EXPECT_EQ(parsed["k\"ey"].string_value, "v\nv");
}

TEST(HistogramTest, BucketBoundaries) {
  // Bucket 0 holds the value 0; bucket i holds [2^(i-1), 2^i).
  EXPECT_EQ(Histogram::BucketIndex(0), 0);
  EXPECT_EQ(Histogram::BucketIndex(1), 1);
  EXPECT_EQ(Histogram::BucketIndex(2), 2);
  EXPECT_EQ(Histogram::BucketIndex(3), 2);
  EXPECT_EQ(Histogram::BucketIndex(4), 3);
  EXPECT_EQ(Histogram::BucketIndex(7), 3);
  EXPECT_EQ(Histogram::BucketIndex(8), 4);
  EXPECT_EQ(Histogram::BucketIndex(1023), 10);
  EXPECT_EQ(Histogram::BucketIndex(1024), 11);
  EXPECT_EQ(Histogram::BucketIndex(UINT64_MAX), 64);

  EXPECT_EQ(Histogram::BucketLowerBound(0), 0u);
  EXPECT_EQ(Histogram::BucketLowerBound(1), 1u);
  EXPECT_EQ(Histogram::BucketLowerBound(2), 2u);
  EXPECT_EQ(Histogram::BucketLowerBound(3), 4u);
  EXPECT_EQ(Histogram::BucketLowerBound(64), 1ull << 63);

  // Every bucket's lower bound maps back to that bucket.
  for (int i = 0; i < Histogram::kBucketCount; ++i) {
    EXPECT_EQ(Histogram::BucketIndex(Histogram::BucketLowerBound(i)), i)
        << "bucket " << i;
  }
}

TEST(HistogramTest, RecordAndStats) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), UINT64_MAX);  // empty sentinel
  h.Record(0);
  h.Record(5);
  h.Record(5);
  h.Record(100);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 110u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 100u);
  EXPECT_DOUBLE_EQ(h.Mean(), 27.5);
  EXPECT_EQ(h.bucket(Histogram::BucketIndex(0)), 1u);
  EXPECT_EQ(h.bucket(Histogram::BucketIndex(5)), 2u);
  EXPECT_EQ(h.bucket(Histogram::BucketIndex(100)), 1u);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), UINT64_MAX);
  EXPECT_EQ(h.bucket(Histogram::BucketIndex(5)), 0u);
}

TEST(HistogramTest, EmptyAccessorAndFormat) {
  Histogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.Format(), "empty");
  EXPECT_DOUBLE_EQ(h.Percentile(50), 0.0);
  // The snapshot of an empty histogram is explicit about emptiness: count
  // 0 and min 0, never the internal UINT64_MAX sentinel.
  HistogramSnapshot snap = h.TakeSnapshot();
  EXPECT_TRUE(snap.empty());
  EXPECT_EQ(snap.min, 0u);
  EXPECT_EQ(snap.Format(), "empty");
  h.Record(7);
  EXPECT_FALSE(h.empty());
  EXPECT_FALSE(h.TakeSnapshot().empty());
}

TEST(HistogramTest, PercentileExactWhenBucketIsASingleValue) {
  // All samples share one value: every percentile reports it exactly
  // (the bucket range is tightened to [min, max + 1)).
  Histogram h;
  for (int i = 0; i < 100; ++i) h.Record(48);
  for (double p : {1.0, 50.0, 90.0, 99.0, 100.0}) {
    EXPECT_DOUBLE_EQ(h.Percentile(p), 48.0) << "p" << p;
  }
  // Zero is bucket 0, also a single-value bucket.
  Histogram z;
  z.Record(0);
  z.Record(0);
  EXPECT_DOUBLE_EQ(z.Percentile(50), 0.0);
  EXPECT_DOUBLE_EQ(z.Percentile(99), 0.0);
}

TEST(HistogramTest, PercentileAtBucketBoundaries) {
  // 10 samples of 1 and 10 of 1024: p50 must stay in the low bucket and
  // p90/p99 in the high one; estimates always lie inside [min, max].
  Histogram h;
  for (int i = 0; i < 10; ++i) h.Record(1);
  for (int i = 0; i < 10; ++i) h.Record(1024);
  // p50 lands in the low bucket [1, 2); the estimate stays inside it.
  const double p50 = h.Percentile(50);
  EXPECT_GE(p50, 1.0);
  EXPECT_LE(p50, 2.0);
  const double p90 = h.Percentile(90);
  EXPECT_GE(p90, 1024.0);  // high bucket tightened to [1024, 1025)
  EXPECT_LE(p90, 1024.0 + 1.0);
  EXPECT_LE(h.Percentile(100), 1024.0);
  EXPECT_GE(h.Percentile(0), 1.0);
}

// The documented pow2-bucket error bound: the interpolated estimate lies
// in the same [2^(i-1), 2^i) bucket as the true percentile, so it is
// within a factor of 2 of the true value and always inside [min, max].
TEST(HistogramTest, PercentileRandomizedErrorBound) {
  Rng rng(20260808);
  for (int trial = 0; trial < 20; ++trial) {
    Histogram h;
    std::vector<uint64_t> values;
    const int n = 100 + static_cast<int>(rng.Uniform(900));
    for (int i = 0; i < n; ++i) {
      // Spread over ~6 decades so many buckets are populated.
      const uint64_t v = rng.Uniform(1u << (1 + rng.Uniform(20)));
      values.push_back(v);
      h.Record(v);
    }
    std::sort(values.begin(), values.end());
    for (double p : {50.0, 90.0, 99.0}) {
      // True percentile by the same nearest-rank rule the histogram
      // targets: rank = ceil(max(1, p/100 * n)).
      const size_t rank = static_cast<size_t>(
          std::ceil(std::max(1.0, (p / 100.0) * static_cast<double>(n))));
      const uint64_t truth = values[rank - 1];
      const double estimate = h.Percentile(p);
      EXPECT_GE(estimate, static_cast<double>(values.front()));
      EXPECT_LE(estimate, static_cast<double>(values.back()));
      if (truth > 0) {
        EXPECT_LE(estimate, static_cast<double>(truth) * 2.0)
            << "trial " << trial << " p" << p << " truth " << truth;
        EXPECT_GE(estimate, static_cast<double>(truth) / 2.0)
            << "trial " << trial << " p" << p << " truth " << truth;
      } else {
        // truth == 0 lives in bucket 0, which holds only zeros: the
        // estimate must be exact.
        EXPECT_DOUBLE_EQ(estimate, 0.0) << "trial " << trial << " p" << p;
      }
    }
  }
}

TEST(HistogramTest, FormatCarriesPercentiles) {
  Histogram h;
  h.Record(0);
  h.Record(5);
  h.Record(5);
  h.Record(100);
  const std::string s = h.Format();
  EXPECT_NE(s.find("count=4"), std::string::npos) << s;
  EXPECT_NE(s.find("mean=27.5"), std::string::npos) << s;
  EXPECT_NE(s.find("p50="), std::string::npos) << s;
  EXPECT_NE(s.find("p99="), std::string::npos) << s;
}

TEST(MetricsRegistryTest, HandlesAreStableAcrossReset) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter* c = registry.GetCounter("test.obs_counter");
  Histogram* h = registry.GetHistogram("test.obs_hist");
  ASSERT_EQ(registry.GetCounter("test.obs_counter"), c);
  ASSERT_EQ(registry.GetHistogram("test.obs_hist"), h);

  c->Add(7);
  h->Record(16);
  MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.counters.at("test.obs_counter"), 7u);
  ASSERT_EQ(snap.histograms.count("test.obs_hist"), 1u);
  EXPECT_EQ(snap.histograms.at("test.obs_hist").count, 1u);
  EXPECT_EQ(snap.histograms.at("test.obs_hist").min, 16u);
  ASSERT_EQ(snap.histograms.at("test.obs_hist").buckets.size(), 1u);
  EXPECT_EQ(snap.histograms.at("test.obs_hist").buckets[0].first, 16u);
  EXPECT_EQ(snap.histograms.at("test.obs_hist").buckets[0].second, 1u);

  registry.Reset();
  // Same pointers, zeroed values; zero-count metrics leave the snapshot.
  EXPECT_EQ(registry.GetCounter("test.obs_counter"), c);
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(h->count(), 0u);
  MetricsSnapshot after = registry.Snapshot();
  EXPECT_EQ(after.counters.count("test.obs_counter"), 0u);
  EXPECT_EQ(after.histograms.count("test.obs_hist"), 0u);
}

TEST(IoStatsTest, DifferenceAndFormat) {
  IoStats a;
  a.blocks_read = 100;
  a.blocks_written = 20;
  a.bytes_read = 100 * 4096;
  a.bytes_written = 20 * 4096;
  IoStats b;
  b.blocks_read = 60;
  b.blocks_written = 5;
  b.bytes_read = 60 * 4096;
  b.bytes_written = 5 * 4096;
  IoStats d = a - b;
  EXPECT_EQ(d.blocks_read, 40u);
  EXPECT_EQ(d.blocks_written, 15u);
  EXPECT_EQ(d.TotalBlockIos(), 55u);
  EXPECT_EQ(b + d, a);
  // Subtraction saturates instead of wrapping.
  IoStats neg = b - a;
  EXPECT_EQ(neg.blocks_read, 0u);
  EXPECT_EQ(neg.bytes_written, 0u);

  std::string s = a.Format();
  EXPECT_NE(s.find("120 I/Os"), std::string::npos) << s;
  EXPECT_NE(s.find("100r"), std::string::npos) << s;
  EXPECT_NE(s.find("20w"), std::string::npos) << s;
}

TEST(TraceTest, NoSinkSpansAreNoOps) {
  ASSERT_EQ(GetTracer(), nullptr);
  IoStats io;
  {
    TraceSpan outer("outer", &io);
    TraceSpan inner("inner");
  }  // must not crash or record anywhere
  // Smoke-check the disabled cost: a span is a couple of nanoseconds, so
  // a million of them must be far under a (generous) second.
  Timer timer;
  for (int i = 0; i < 1000000; ++i) {
    TraceSpan span("hot");
  }
  EXPECT_LT(timer.ElapsedSeconds(), 1.0);
}

TEST(TraceTest, NestedSpansAttributeIoDeltas) {
  Tracer tracer;
  SetTracer(&tracer);
  IoStats io;
  {
    TraceSpan outer("phase", &io);
    {
      TraceSpan inner("pass", &io);
      io.blocks_read += 10;
      io.bytes_read += 10 * 4096;
    }
    {
      TraceSpan inner("pass", &io);
      io.blocks_read += 5;
      io.blocks_written += 2;
    }
    TraceSpan no_io("cpu_only");
    no_io.Close();
    no_io.Close();  // idempotent
  }
  SetTracer(nullptr);

  std::vector<TraceEvent> events = tracer.events();
  ASSERT_EQ(events.size(), 4u);
  // Recorded at exit: the two passes first, then cpu_only, then the phase.
  EXPECT_EQ(events[0].name, "pass");
  EXPECT_EQ(events[0].depth, 1u);
  EXPECT_TRUE(events[0].has_io);
  EXPECT_EQ(events[0].io_delta.blocks_read, 10u);
  EXPECT_EQ(events[0].io_delta.blocks_written, 0u);
  EXPECT_EQ(events[1].name, "pass");
  EXPECT_EQ(events[1].io_delta.blocks_read, 5u);
  EXPECT_EQ(events[1].io_delta.blocks_written, 2u);
  EXPECT_EQ(events[2].name, "cpu_only");
  EXPECT_FALSE(events[2].has_io);
  EXPECT_EQ(events[3].name, "phase");
  EXPECT_EQ(events[3].depth, 0u);
  // The outer span owns everything its children did.
  EXPECT_EQ(events[3].io_delta.blocks_read, 15u);
  EXPECT_EQ(events[3].io_delta.blocks_written, 2u);
  // Children nest inside the parent's time range.
  EXPECT_GE(events[0].start_us, events[3].start_us);
  EXPECT_LE(events[0].start_us + events[0].dur_us,
            events[3].start_us + events[3].dur_us);
}

TEST(TraceTest, ChromeTraceJsonParsesBack) {
  Tracer tracer;
  SetTracer(&tracer);
  IoStats io;
  {
    TraceSpan span("sort \"quoted\"", &io);
    io.blocks_written += 3;
    io.bytes_written += 3 * 4096;
  }
  SetTracer(nullptr);

  JsonValue doc;
  ASSERT_TRUE(ParseJson(tracer.ToChromeTraceJson(), &doc));
  ASSERT_TRUE(doc.is_object());
  const JsonValue& events = doc["traceEvents"];
  ASSERT_TRUE(events.is_array());
  ASSERT_EQ(events.array.size(), 1u);
  const JsonValue& e = events.array[0];
  EXPECT_EQ(e["name"].string_value, "sort \"quoted\"");
  EXPECT_EQ(e["ph"].string_value, "X");  // complete event
  EXPECT_TRUE(e["ts"].is_number());
  EXPECT_TRUE(e["dur"].is_number());
  EXPECT_EQ(e["args"]["blocks_written"].number, 3.0);
  EXPECT_EQ(e["args"]["bytes_written"].number, 3.0 * 4096);
}

TEST(PhaseProfilerTest, AggregatesSpansByName) {
  PhaseProfiler profiler;
  SetPhaseProfiler(&profiler);
  ASSERT_EQ(GetTracer(), nullptr);  // profiler-only mode must work
  IoStats io;
  {
    TraceSpan span("zeta.phase", &io);
    io.blocks_read += 4;
  }
  {
    TraceSpan span("zeta.phase", &io);
    io.blocks_read += 6;
    io.blocks_written += 1;
  }
  { TraceSpan span("alpha.phase"); }
  SetPhaseProfiler(nullptr);

  std::vector<PhaseProfile> phases = profiler.Snapshot();
  ASSERT_EQ(phases.size(), 2u);
  // Sorted by name.
  EXPECT_EQ(phases[0].name, "alpha.phase");
  EXPECT_EQ(phases[0].spans, 1u);
  EXPECT_FALSE(phases[0].has_io);
  EXPECT_EQ(phases[1].name, "zeta.phase");
  EXPECT_EQ(phases[1].spans, 2u);
  EXPECT_TRUE(phases[1].has_io);
  EXPECT_EQ(phases[1].io.blocks_read, 10u);
  EXPECT_EQ(phases[1].io.blocks_written, 1u);
}

TEST(PhaseProfilerTest, DeltaIsolatesOneRun) {
  PhaseProfiler profiler;
  SetPhaseProfiler(&profiler);
  IoStats io;
  {
    TraceSpan span("run.phase", &io);
    io.blocks_read += 3;
  }
  std::vector<PhaseProfile> mark = profiler.Snapshot();
  {
    TraceSpan span("run.phase", &io);
    io.blocks_read += 7;
  }
  { TraceSpan span("late.phase"); }
  SetPhaseProfiler(nullptr);

  std::vector<PhaseProfile> delta =
      PhaseProfiler::Delta(mark, profiler.Snapshot());
  ASSERT_EQ(delta.size(), 2u);
  EXPECT_EQ(delta[0].name, "late.phase");
  EXPECT_EQ(delta[1].name, "run.phase");
  // Only the second span's contribution survives the subtraction.
  EXPECT_EQ(delta[1].spans, 1u);
  EXPECT_EQ(delta[1].io.blocks_read, 7u);
  // A no-new-spans phase would be dropped entirely.
  std::vector<PhaseProfile> none =
      PhaseProfiler::Delta(profiler.Snapshot(), profiler.Snapshot());
  EXPECT_TRUE(none.empty());
}

TEST(PhaseProfilerTest, SamplesCpuAndRss) {
  // getrusage-backed platforms report a nonzero process peak RSS; the
  // CPU deltas are plausibly tiny, so only sanity-check monotonicity.
  const ResourceSample a = SampleResourceUsage();
  // Burn a little CPU so user time moves on fast clocks.
  volatile uint64_t sink = 0;
  for (uint64_t i = 0; i < 2'000'000; ++i) sink = sink + i * i;
  const ResourceSample b = SampleResourceUsage();
#if defined(__unix__) || defined(__APPLE__)
  EXPECT_GT(b.max_rss_kb, 0u);
#endif
  EXPECT_GE(b.cpu_user_micros + b.cpu_sys_micros,
            a.cpu_user_micros + a.cpu_sys_micros);
  EXPECT_GE(b.max_rss_kb, a.max_rss_kb);
}

TEST(PhaseProfilerTest, TraceEventsCarryResourceArgs) {
  // With both sinks installed, the Chrome trace args gain the CPU/RSS
  // fields next to the I/O delta.
  Tracer tracer;
  PhaseProfiler profiler;
  SetTracer(&tracer);
  SetPhaseProfiler(&profiler);
  IoStats io;
  {
    TraceSpan span("profiled.phase", &io);
    io.blocks_read += 2;
  }
  SetPhaseProfiler(nullptr);
  SetTracer(nullptr);

  std::vector<TraceEvent> events = tracer.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_TRUE(events[0].has_resources);

  JsonValue doc;
  ASSERT_TRUE(ParseJson(tracer.ToChromeTraceJson(), &doc));
  const JsonValue& args = doc["traceEvents"].array[0]["args"];
  EXPECT_TRUE(args["cpu_user_micros"].is_number());
  EXPECT_TRUE(args["cpu_sys_micros"].is_number());
  EXPECT_TRUE(args["max_rss_kb"].is_number());
  EXPECT_EQ(args["blocks_read"].number, 2.0);

  // Without a profiler the args stay exactly as before (no resource keys).
  Tracer plain;
  SetTracer(&plain);
  { TraceSpan span("plain.phase"); }
  SetTracer(nullptr);
  ASSERT_EQ(plain.events().size(), 1u);
  EXPECT_FALSE(plain.events()[0].has_resources);
}

}  // namespace
}  // namespace ioscc
