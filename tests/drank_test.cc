// Tests for the exact drank/dlink computation (Definition in Section 5):
// fixed examples including the paper's Fig. 5 shape, plus a brute-force
// reachability cross-check on random tree/backedge structures.

#include <queue>
#include <vector>

#include <gtest/gtest.h>

#include "scc/drank.h"
#include "scc/spanning_tree.h"
#include "util/random.h"

namespace ioscc {
namespace {

// Brute force: BFS over (tree-down ∪ backedge) reachability from every
// node; drank = min depth reached, dlink = smallest node attaining it
// (ties broken toward the smaller id as in ComputeDrank).
void BruteForceDrank(const SpanningTree& tree,
                     const std::vector<NodeId>& backedge,
                     std::vector<uint32_t>* drank,
                     std::vector<NodeId>* dlink) {
  const NodeId n = tree.real_node_count();
  const NodeId total = n + 1;
  std::vector<std::vector<NodeId>> adj(total);
  for (NodeId v = 0; v < n; ++v) {
    if (tree.parent(v) != kInvalidNode) adj[tree.parent(v)].push_back(v);
    if (backedge[v] != kInvalidNode) adj[v].push_back(backedge[v]);
  }
  drank->assign(total, 0);
  dlink->assign(total, kInvalidNode);
  for (NodeId s = 0; s < total; ++s) {
    std::vector<bool> seen(total, false);
    std::queue<NodeId> queue;
    queue.push(s);
    seen[s] = true;
    uint32_t best = tree.depth(s);
    NodeId best_node = s;
    while (!queue.empty()) {
      NodeId u = queue.front();
      queue.pop();
      if (tree.depth(u) < best ||
          (tree.depth(u) == best && u < best_node)) {
        best = tree.depth(u);
        best_node = u;
      }
      for (NodeId w : adj[u]) {
        if (!seen[w]) {
          seen[w] = true;
          queue.push(w);
        }
      }
    }
    (*drank)[s] = best;
    (*dlink)[s] = best_node;
  }
}

TEST(DrankTest, StarWithoutBackedges) {
  SpanningTree tree(4);
  std::vector<NodeId> backedge(4, kInvalidNode);
  DrankResult dr = ComputeDrank(tree, backedge);
  for (NodeId v = 0; v < 4; ++v) {
    EXPECT_EQ(dr.drank[v], 1u);
    EXPECT_EQ(dr.dlink[v], v);
  }
  EXPECT_EQ(dr.drank[tree.root()], 0u);
}

TEST(DrankTest, ChainWithBackedgeToTop) {
  // root -> 0 -> 1 -> 2 -> 3 with backedge 3 -> 0.
  SpanningTree tree(4);
  tree.Reparent(1, 0);
  tree.Reparent(2, 1);
  tree.Reparent(3, 2);
  std::vector<NodeId> backedge(4, kInvalidNode);
  backedge[3] = 0;
  DrankResult dr = ComputeDrank(tree, backedge);
  // Everyone reaches 0 (via descendants and the backedge): drank = 1.
  for (NodeId v = 0; v < 4; ++v) {
    EXPECT_EQ(dr.drank[v], 1u) << v;
    EXPECT_EQ(dr.dlink[v], 0u) << v;
  }
}

TEST(DrankTest, Figure5Shape) {
  // The paper's Fig. 5: f's sibling subtree contains d whose region
  // reaches b (depth 1); the refined up-edge definition relies on
  // drank(d) being b's depth even though d is deeper elsewhere.
  //
  // Build: root -> b(0); b -> c(1), b -> e(2); e -> d(3); backedge d->b.
  SpanningTree tree(4);
  tree.Reparent(1, 0);  // c under b
  tree.Reparent(2, 0);  // e under b
  tree.Reparent(3, 2);  // d under e
  std::vector<NodeId> backedge(4, kInvalidNode);
  backedge[3] = 0;  // d -> b
  DrankResult dr = ComputeDrank(tree, backedge);
  EXPECT_EQ(dr.drank[3], tree.depth(0));  // d reaches b
  EXPECT_EQ(dr.dlink[3], 0u);
  EXPECT_EQ(dr.drank[2], tree.depth(0));  // e reaches b through d
  EXPECT_EQ(dr.drank[1], tree.depth(1));  // c reaches only itself
}

TEST(DrankTest, CrossSubtreeJumpPropagates) {
  // Backedge chains must propagate through other subtrees: x jumps to an
  // ancestor a whose OTHER child's subtree jumps even higher.
  // root -> a(0) -> {b(1) -> x(2), c(3) -> y(4)}; x->a via backedge,
  // y->a via backedge... then from a you can re-descend everywhere.
  SpanningTree tree(5);
  tree.Reparent(1, 0);
  tree.Reparent(2, 1);
  tree.Reparent(3, 0);
  tree.Reparent(4, 3);
  std::vector<NodeId> backedge(5, kInvalidNode);
  backedge[2] = 0;
  backedge[4] = 3;
  DrankResult dr = ComputeDrank(tree, backedge);
  EXPECT_EQ(dr.drank[2], tree.depth(0));
  EXPECT_EQ(dr.drank[4], tree.depth(3));
  EXPECT_EQ(dr.drank[1], tree.depth(0));  // through x
}

class DrankFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(DrankFuzzTest, MatchesBruteForce) {
  Rng rng(GetParam() * 104729);
  const NodeId n = 40;
  SpanningTree tree(n);
  // Random tree shape.
  for (NodeId v = 0; v < n; ++v) {
    NodeId u = static_cast<NodeId>(rng.Uniform(n));
    if (u != v && !tree.IsAncestor(v, u) && !tree.IsAncestor(u, v)) {
      tree.Reparent(v, u);
    }
  }
  // Random valid backedges (target = proper ancestor).
  std::vector<NodeId> backedge(n, kInvalidNode);
  for (NodeId v = 0; v < n; ++v) {
    if (!rng.OneIn(0.5)) continue;
    NodeId anc = tree.parent(v);
    uint64_t hops = rng.Uniform(3);
    while (hops-- > 0 && anc != kInvalidNode && anc != tree.root() &&
           tree.parent(anc) != tree.root() &&
           tree.parent(anc) != kInvalidNode) {
      anc = tree.parent(anc);
    }
    if (anc != kInvalidNode && anc != tree.root()) backedge[v] = anc;
  }

  DrankResult dr = ComputeDrank(tree, backedge);
  std::vector<uint32_t> want_drank;
  std::vector<NodeId> want_dlink;
  BruteForceDrank(tree, backedge, &want_drank, &want_dlink);
  for (NodeId v = 0; v < n; ++v) {
    EXPECT_EQ(dr.drank[v], want_drank[v]) << "node " << v;
    EXPECT_EQ(dr.dlink[v], want_dlink[v]) << "node " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, DrankFuzzTest, ::testing::Range(1, 16));

}  // namespace
}  // namespace ioscc
