// Direct verification of the BR+-Tree construction invariant (Section 6):
// when the Tree-Construction fixpoint converges, every edge of G is
// "handled" — ancestor-related, a down-edge by exact drank, or an up-edge
// whose cycle information is already recorded as a stored backward edge
// at least as shallow as dlink of its target. The construction loop here
// mirrors two_phase.cc using the same public building blocks.

#include <vector>

#include <gtest/gtest.h>

#include "gen/generators.h"
#include "graph/digraph.h"
#include "scc/drank.h"
#include "scc/spanning_tree.h"
#include "scc/tarjan.h"
#include "scc/union_find.h"
#include "tests/test_util.h"
#include "util/random.h"

namespace ioscc {
namespace {

using testing_util::kPaperFigure1Nodes;
using testing_util::PaperFigure1Edges;

struct ConstructionResult {
  SpanningTree tree;
  std::vector<NodeId> backedge;
  DrankResult dr;
  bool converged = false;
};

ConstructionResult RunConstruction(NodeId n, const std::vector<Edge>& edges,
                                   uint64_t max_iterations) {
  ConstructionResult result{SpanningTree(n),
                            std::vector<NodeId>(n, kInvalidNode),
                            DrankResult{},
                            false};
  result.dr = ComputeDrank(result.tree, result.backedge);
  for (uint64_t iteration = 0; iteration < max_iterations; ++iteration) {
    bool updated = false;
    for (const Edge& e : edges) {
      const NodeId u = e.from, v = e.to;
      if (u == v) continue;
      if (result.tree.IsAncestor(v, u)) {
        if (result.backedge[u] == kInvalidNode ||
            result.tree.depth(v) <
                result.tree.depth(result.backedge[u])) {
          result.backedge[u] = v;
          updated = true;
        }
        continue;
      }
      if (result.tree.IsAncestor(u, v)) continue;
      if (result.dr.drank[u] < result.dr.drank[v]) continue;
      const NodeId target = result.dr.dlink[v];
      if (target != u && target < n &&
          result.tree.IsAncestor(target, u)) {
        if (result.backedge[u] == kInvalidNode ||
            result.tree.depth(target) <
                result.tree.depth(result.backedge[u])) {
          result.backedge[u] = target;
          updated = true;
        }
      } else {
        result.tree.Reparent(v, u);
        updated = true;
      }
    }
    for (NodeId v = 0; v < n; ++v) {
      if (result.backedge[v] != kInvalidNode &&
          !result.tree.IsAncestor(result.backedge[v], v)) {
        result.backedge[v] = kInvalidNode;
      }
    }
    result.dr = ComputeDrank(result.tree, result.backedge);
    if (!updated) {
      result.converged = true;
      break;
    }
  }
  return result;
}

// Every edge must be handled at convergence.
void ExpectNoUnhandledUpEdge(const ConstructionResult& c,
                             const std::vector<Edge>& edges, NodeId n) {
  for (const Edge& e : edges) {
    const NodeId u = e.from, v = e.to;
    if (u == v) continue;
    if (c.tree.IsAncestor(v, u)) {
      // Backward edge: a stored backward edge at least as shallow exists.
      ASSERT_NE(c.backedge[u], kInvalidNode)
          << "(" << u << "," << v << ")";
      EXPECT_LE(c.tree.depth(c.backedge[u]), c.tree.depth(v));
      continue;
    }
    if (c.tree.IsAncestor(u, v)) continue;
    if (c.dr.drank[u] < c.dr.drank[v]) continue;  // down-edge
    // Up-edge: must be the handled replace case.
    const NodeId target = c.dr.dlink[v];
    ASSERT_TRUE(target == u ||
                (target < n && c.tree.IsAncestor(target, u)))
        << "unhandled up-edge (" << u << "," << v << ")";
    if (target != u) {
      ASSERT_NE(c.backedge[u], kInvalidNode);
      EXPECT_LE(c.tree.depth(c.backedge[u]), c.tree.depth(target));
    }
  }
}

TEST(BrPlusInvariantTest, PaperFigure1Converges) {
  const std::vector<Edge> edges = PaperFigure1Edges();
  ConstructionResult c =
      RunConstruction(kPaperFigure1Nodes, edges, 100);
  ASSERT_TRUE(c.converged);
  ASSERT_TRUE(c.tree.CheckConsistency());
  ExpectNoUnhandledUpEdge(c, edges, kPaperFigure1Nodes);
  // Example 6.1's outcome: c (node 2) carries a stored backward edge to
  // b (node 1), replacing the up-edge (c, e).
  EXPECT_EQ(c.backedge[2], 1u);
}

class BrPlusFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(BrPlusFuzzTest, ConvergedConstructionsSatisfyTheInvariant) {
  const int seed = GetParam();
  Rng rng(seed * 7927);
  const NodeId n = static_cast<NodeId>(15 + rng.Uniform(120));
  std::vector<Edge> edges;
  ASSERT_OK(GenerateUniformEdges(n, 3ull * n, seed * 11 + 5, &edges));
  ConstructionResult c = RunConstruction(n, edges, n + 16);
  if (!c.converged) return;  // documented non-convergence cases
  ASSERT_TRUE(c.tree.CheckConsistency());
  ExpectNoUnhandledUpEdge(c, edges, n);

  // And tree search over the converged BR+-Tree yields the exact SCCs.
  UnionFind uf(n + 1);
  std::vector<NodeId> scratch;
  auto contract = [&](NodeId desc, NodeId anc) {
    NodeId d = uf.Find(desc), a = uf.Find(anc);
    if (d == a || !c.tree.IsAncestor(a, d)) return;
    scratch.clear();
    c.tree.ContractPathInto(d, a, &scratch);
    for (NodeId w : scratch) uf.UnionInto(a, w, a);
  };
  for (NodeId v = 0; v < n; ++v) {
    if (c.backedge[v] != kInvalidNode) contract(v, c.backedge[v]);
  }
  for (bool changed = true; changed;) {
    changed = false;
    for (const Edge& e : edges) {
      NodeId a = uf.Find(e.from), b = uf.Find(e.to);
      if (a != b && c.tree.IsAncestor(b, a)) {
        contract(a, b);
        changed = true;
      }
    }
  }
  SccResult mine;
  mine.component.resize(n);
  for (NodeId v = 0; v < n; ++v) mine.component[v] = uf.Find(v);
  mine.Normalize();
  EXPECT_EQ(mine, TarjanScc(Digraph(n, edges))) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Sweep, BrPlusFuzzTest, ::testing::Range(1, 31));

}  // namespace
}  // namespace ioscc
