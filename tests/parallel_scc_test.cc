// Parallel FB kernel tests: fixed graphs, thread-count determinism, the
// condensation contract, and the 1PB-SCC ledger-identity guarantee (the
// kernel choice must not change a single logical I/O).

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "gen/generators.h"
#include "graph/digraph.h"
#include "scc/algorithms.h"
#include "scc/one_phase_batch.h"
#include "scc/options.h"
#include "scc/parallel_scc.h"
#include "scc/tarjan.h"
#include "tests/test_util.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace ioscc {
namespace {

using testing_util::kPaperFigure1Nodes;
using testing_util::PaperFigure1Edges;
using testing_util::TempDirTest;

TEST(ParallelFbTest, EmptyGraph) {
  SccResult result = ParallelFbScc(Digraph(0, {}));
  EXPECT_EQ(result.ComponentCount(), 0u);
}

TEST(ParallelFbTest, SingleNodeNoEdges) {
  SccResult result = ParallelFbScc(Digraph(1, {}));
  EXPECT_EQ(result.ComponentCount(), 1u);
  EXPECT_EQ(result.component[0], 0u);
}

TEST(ParallelFbTest, SelfLoopIsSingletonComponent) {
  SccResult result = ParallelFbScc(Digraph(2, {{0, 0}, {0, 1}}));
  EXPECT_EQ(result.ComponentCount(), 2u);
}

TEST(ParallelFbTest, TwoNodeCycle) {
  SccResult result = ParallelFbScc(Digraph(2, {{0, 1}, {1, 0}}));
  EXPECT_EQ(result.ComponentCount(), 1u);
  EXPECT_EQ(result.component[0], result.component[1]);
}

TEST(ParallelFbTest, ChainIsAllSingletons) {
  // Pathological high-diameter input: the trim pass must peel the whole
  // chain without ever running a BFS round.
  std::vector<Edge> edges;
  for (NodeId v = 0; v + 1 < 100; ++v) edges.push_back({v, v + 1});
  SccResult result = ParallelFbScc(Digraph(100, edges));
  EXPECT_EQ(result.ComponentCount(), 100u);
}

TEST(ParallelFbTest, FullCycle) {
  std::vector<Edge> edges;
  for (NodeId v = 0; v < 100; ++v) edges.push_back({v, (v + 1) % 100});
  SccResult result = ParallelFbScc(Digraph(100, edges));
  EXPECT_EQ(result.ComponentCount(), 1u);
  EXPECT_EQ(result.LargestComponentSize(), 100u);
}

TEST(ParallelFbTest, PaperFigure1MatchesTarjanLabels) {
  Digraph graph(kPaperFigure1Nodes, PaperFigure1Edges());
  SccResult result = ParallelFbScc(graph);
  EXPECT_EQ(result, TarjanScc(graph));
  // Labels are canonical: smallest member id.
  EXPECT_EQ(result.component[1], 1u);
  EXPECT_EQ(result.component[4], 1u);
  EXPECT_EQ(result.component[6], 6u);
  EXPECT_EQ(result.component[9], 6u);
}

// A mixed workload with a giant SCC, mid-size planted SCCs, and a DAG
// periphery — exercises trim, pivot BFS, and the small-subproblem path.
std::vector<Edge> MixedWorkload(uint64_t n, uint64_t seed) {
  PlantedSccSpec spec = WebspamSpec(n, 4.0, seed);
  std::vector<Edge> edges;
  Status st = GeneratePlantedSccEdges(spec, &edges);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return edges;
}

TEST(ParallelFbTest, DeterministicAcrossThreadsAndGranularity) {
  // Identical partition at threads {1,2,8} x granularity {1,3,64,default}:
  // granularity 1 forces maximal chunking, 3 odd-sized chunks.
  for (uint64_t seed : {1u, 2u, 3u}) {
    const uint64_t n = 1500;
    std::vector<Edge> edges = MixedWorkload(n, seed);
    Digraph graph(static_cast<NodeId>(n), edges);
    const SccResult oracle = TarjanScc(graph);
    for (uint32_t threads : {1u, 2u, 8u}) {
      for (uint32_t granularity : {1u, 3u, 64u, 0u}) {
        EXPECT_EQ(RunInMemoryKernel(BatchKernel::kParallelFb, graph, threads,
                                    granularity),
                  oracle)
            << "seed=" << seed << " threads=" << threads
            << " granularity=" << granularity;
      }
    }
  }
}

TEST(ParallelFbTest, RandomGraphsAcrossDensities) {
  Rng rng(4242);
  for (int round = 0; round < 40; ++round) {
    const NodeId n = static_cast<NodeId>(5 + rng.Uniform(400));
    std::vector<Edge> edges;
    ASSERT_OK(GenerateUniformEdges(
        n, (round % 7) * uint64_t{n} / 2, round * 31 + 7, &edges));
    Digraph graph(n, edges);
    ThreadPool pool(3);
    ParallelSccOptions options;
    options.pool = &pool;
    options.granularity = 1 + round % 5;
    EXPECT_EQ(ParallelFbScc(graph, options), TarjanScc(graph))
        << "round " << round;
  }
}

TEST(ParallelFbCondensationTest, MatchesTarjanContract) {
  // Same partition as CondensationOf, valid reverse-topological order,
  // and the same canonical edge set (duplicates aside).
  Rng rng(909);
  for (int round = 0; round < 25; ++round) {
    const NodeId n = static_cast<NodeId>(10 + rng.Uniform(150));
    std::vector<Edge> edges;
    ASSERT_OK(GenerateUniformEdges(n, 3ull * n, round * 13 + 5, &edges));
    Digraph graph(n, edges);

    SccResult scc_t, scc_p;
    std::vector<NodeId> order_t, order_p;
    std::vector<Edge> dag_t = CondensationOf(graph, &scc_t, &order_t);
    ThreadPool pool(2);
    ParallelSccOptions options;
    options.pool = &pool;
    std::vector<Edge> dag_p =
        CondensationOfParallelFb(graph, options, &scc_p, &order_p);

    EXPECT_EQ(scc_t, scc_p) << "round " << round;
    EXPECT_EQ(order_t.size(), order_p.size());

    // Reverse-topological: every DAG edge goes from later-emitted to
    // earlier-emitted component.
    std::vector<int> pos(n, -1);
    for (size_t i = 0; i < order_p.size(); ++i) pos[order_p[i]] = int(i);
    for (const Edge& e : dag_p) {
      EXPECT_GT(pos[e.from], pos[e.to]) << "round " << round;
    }

    // Canonical edge sets agree (duplicate multiplicity may differ).
    auto edge_set = [](const std::vector<Edge>& dag) {
      std::set<std::pair<NodeId, NodeId>> set;
      for (const Edge& e : dag) set.emplace(e.from, e.to);
      return set;
    };
    EXPECT_EQ(edge_set(dag_t), edge_set(dag_p)) << "round " << round;
  }
}

TEST(ParallelFbCondensationTest, DeterministicAcrossThreads) {
  // The full condensation output — edge sequence and emission order, not
  // just the partition — must be byte-identical at every pool size.
  const uint64_t n = 1200;
  std::vector<Edge> edges = MixedWorkload(n, 11);
  Digraph graph(static_cast<NodeId>(n), edges);

  SccResult base_scc;
  std::vector<NodeId> base_order;
  std::vector<Edge> base_dag =
      CondensationOfParallelFb(graph, {}, &base_scc, &base_order);
  for (uint32_t threads : {2u, 8u}) {
    ThreadPool pool(threads);
    ParallelSccOptions options;
    options.pool = &pool;
    options.granularity = 7;
    SccResult scc;
    std::vector<NodeId> order;
    std::vector<Edge> dag =
        CondensationOfParallelFb(graph, options, &scc, &order);
    EXPECT_EQ(scc, base_scc) << "threads " << threads;
    EXPECT_EQ(order, base_order) << "threads " << threads;
    ASSERT_EQ(dag.size(), base_dag.size()) << "threads " << threads;
    for (size_t i = 0; i < dag.size(); ++i) {
      EXPECT_EQ(dag[i].from, base_dag[i].from);
      EXPECT_EQ(dag[i].to, base_dag[i].to);
    }
  }
}

// 1PB-SCC with the parallel kernel: identical result AND byte-identical
// logical I/O ledger to the Tarjan kernel at every thread count. The
// kernels are RAM-only, so the block ledger cannot legally differ.
class BatchKernelLedgerTest : public TempDirTest {};

TEST_F(BatchKernelLedgerTest, LedgerIsByteIdenticalAcrossKernels) {
  const uint64_t n = 4000;
  std::vector<Edge> edges = MixedWorkload(n, 23);
  const std::string path = WriteGraph(static_cast<NodeId>(n), edges);

  auto run = [&](BatchKernel kernel, uint32_t threads, SccResult* result,
                 RunStats* stats) {
    SemiExternalOptions options;
    options.scratch_block_size = 4096;
    // Small budget so the run needs several batches (several kernel
    // invocations), not one.
    options.memory_budget_bytes = 8192;
    options.batch_kernel = kernel;
    options.kernel_threads = threads;
    ASSERT_OK(OnePhaseBatchScc(path, options, result, stats));
  };

  SccResult base_result;
  RunStats base_stats;
  run(BatchKernel::kTarjan, 0, &base_result, &base_stats);
  ASSERT_GT(base_stats.kernel_invocations, 1u);
  EXPECT_GT(base_stats.io.blocks_read, 0u);

  for (uint32_t threads : {1u, 3u, 8u}) {
    SccResult result;
    RunStats stats;
    run(BatchKernel::kParallelFb, threads, &result, &stats);
    EXPECT_EQ(result, base_result) << "threads " << threads;
    // IoStats::operator== covers every logical and physical counter
    // (timing excluded): the same I/O must have happened.
    EXPECT_EQ(stats.io, base_stats.io) << "threads " << threads;
    EXPECT_EQ(stats.iterations, base_stats.iterations);
    EXPECT_EQ(stats.kernel_invocations, base_stats.kernel_invocations);
    ASSERT_EQ(stats.per_iteration.size(), base_stats.per_iteration.size());
    for (size_t i = 0; i < stats.per_iteration.size(); ++i) {
      EXPECT_EQ(stats.per_iteration[i].io, base_stats.per_iteration[i].io)
          << "iteration " << i;
      EXPECT_EQ(stats.per_iteration[i].live_nodes,
                base_stats.per_iteration[i].live_nodes);
      EXPECT_EQ(stats.per_iteration[i].live_edges,
                base_stats.per_iteration[i].live_edges);
    }
  }

  // Kosaraju rides the same guarantee.
  SccResult result_k;
  RunStats stats_k;
  run(BatchKernel::kKosaraju, 0, &result_k, &stats_k);
  EXPECT_EQ(result_k, base_result);
  EXPECT_EQ(stats_k.io, base_stats.io);
}

TEST(BatchKernelRegistryTest, NamesParseRoundTrip) {
  for (BatchKernel kernel : AllBatchKernels()) {
    BatchKernel parsed;
    ASSERT_OK(ParseBatchKernel(BatchKernelName(kernel), &parsed));
    EXPECT_EQ(parsed, kernel);
  }
  BatchKernel parsed;
  EXPECT_FALSE(ParseBatchKernel("bogus", &parsed).ok());
}

}  // namespace
}  // namespace ioscc
