// Fork+SIGKILL crash torture for the checkpoint/resume subsystem.
//
// For every driver, a child process runs with checkpointing enabled and
// kills itself (SIGKILL — no destructors, no flushes, scratch and
// half-written files left exactly as the crash left them) at a chosen
// instant; the parent then resumes from the surviving checkpoint
// directory and must reproduce the uninterrupted run bit for bit:
// same status, same partition, same logical-I/O ledger, same iteration
// counts. Two kinds of instants are tortured:
//
//   * pass boundaries — the first, a middle, and the last boundary the
//     driver offers (>= 3 distinct points per driver), and
//   * mid-checkpoint-write — via the SetSnapshotCrashHook seam, killing
//     with the staging file half-written (kMidTempWrite), fully written
//     but not yet renamed (kAfterTempWrite), and just after the rename
//     (kAfterRename), so the torn-snapshot fallback path is exercised
//     by a real kill and not only by synthetic file corruption.
//
// The graph is seeded from $IOSCC_TORTURE_SEED (CI sweeps a small
// matrix) so repeated runs walk different torture schedules.

#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "gen/generators.h"
#include "harness/checkpoint.h"
#include "io/snapshot_file.h"
#include "scc/algorithms.h"
#include "tests/test_util.h"

namespace ioscc {
namespace {

using testing_util::TempDirTest;

uint64_t TortureSeed() {
  const char* env = std::getenv("IOSCC_TORTURE_SEED");
  if (env != nullptr && *env != '\0') {
    return std::strtoull(env, nullptr, 10);
  }
  return 0x70e77e5eedULL;
}

constexpr SccAlgorithm kDrivers[] = {
    SccAlgorithm::kOnePhase, SccAlgorithm::kOnePhaseBatch,
    SccAlgorithm::kTwoPhase, SccAlgorithm::kDfs,
    SccAlgorithm::kEm,
};

// Crash-hook state. The hook is a plain function pointer, so the child
// parameterizes it through file-scope statics (set after the fork, so
// the parent process is never affected).
SnapshotCrashPoint g_crash_point = SnapshotCrashPoint::kMidTempWrite;
uint64_t g_crash_at_write = 0;  // kill at the Nth write reaching the point
uint64_t g_crash_seen = 0;

void CrashHook(SnapshotCrashPoint point) {
  if (point != g_crash_point) return;
  if (++g_crash_seen == g_crash_at_write) ::kill(::getpid(), SIGKILL);
}

// Routes all scratch under the fixture dir ($IOSCC_TMPDIR): the killed
// children strand their TempDirs by design (the surviving snapshots
// reference rewrites inside them), and the fixture teardown reclaims
// everything instead of leaking into the system temp root.
class CrashTortureDeathTest : public TempDirTest {
 protected:
  void SetUp() override {
    TempDirTest::SetUp();
    const char* prev = std::getenv("IOSCC_TMPDIR");
    had_prev_tmpdir_ = prev != nullptr;
    if (had_prev_tmpdir_) prev_tmpdir_ = prev;
    ::setenv("IOSCC_TMPDIR", dir_->path().c_str(), 1);
  }

  void TearDown() override {
    if (had_prev_tmpdir_) {
      ::setenv("IOSCC_TMPDIR", prev_tmpdir_.c_str(), 1);
    } else {
      ::unsetenv("IOSCC_TMPDIR");
    }
  }

  // Planted cycles (one long, many short) plus seeded uniform noise, so
  // every driver runs several passes and EM keeps contracting across
  // multiple chunked rewrites before it converges or documents a stall.
  std::string TortureGraphPath() {
    const NodeId n = 600;
    std::vector<Edge> edges;
    EXPECT_TRUE(GenerateUniformEdges(n, 2400, TortureSeed(), &edges).ok());
    for (NodeId v = 0; v < 100; ++v) edges.push_back({v, (v + 1) % 100});
    for (NodeId v = 100; v + 3 < 300; v += 4) {
      edges.push_back({v, v + 1});
      edges.push_back({v + 1, v + 2});
      edges.push_back({v + 2, v + 3});
      edges.push_back({v + 3, v});
    }
    return WriteGraph(n, edges);
  }

  // Small budget => chunked paths and many pass boundaries to kill at.
  static SemiExternalOptions TortureOptions() {
    SemiExternalOptions options;
    options.scratch_block_size = 4096;
    options.memory_budget_bytes = 1 << 13;
    return options;
  }

  struct Reference {
    Status status = Status::OK();
    SccResult result;
    RunStats stats;
    uint64_t boundaries = 0;  // progress callbacks seen
  };

  Reference RunReference(SccAlgorithm algorithm, const std::string& path) {
    Reference ref;
    SemiExternalOptions options = TortureOptions();
    options.progress = [&ref](uint64_t, const IterationStats&) {
      ++ref.boundaries;
      return true;
    };
    ref.status =
        RunScc(algorithm, path, options, &ref.result, &ref.stats);
    return ref;
  }

  // Checkpointed no-kill run: counts snapshot writes (the crash-hook
  // schedule needs to know how many there are) and doubles as the
  // "checkpointing changes nothing" identity check under torture opts.
  uint64_t CountSnapshotWrites(SccAlgorithm algorithm,
                               const std::string& path,
                               const Reference& ref) {
    CheckpointOptions copts;
    copts.dir = NewPath(".ckpt");
    copts.remove_on_success = false;
    Checkpointer cp(copts);
    EXPECT_OK(cp.OpenForRun(AlgorithmName(algorithm), path, false));
    SemiExternalOptions options = TortureOptions();
    options.checkpoint = &cp;
    SccResult result;
    RunStats stats;
    Status st = RunScc(algorithm, path, options, &result, &stats);
    EXPECT_EQ(ref.status.ToString(), st.ToString());
    EXPECT_TRUE(ref.stats.io == stats.io)
        << "checkpointing perturbed the run ledger";
    return cp.written();
  }

  // The child half of every torture stage: run checkpointed and die by
  // SIGKILL at the scheduled instant. `arm` installs the kill (boundary
  // counter or crash hook) after the fork. Exits 0 if the run survives,
  // which makes the enclosing EXPECT_EXIT fail — a stage that does not
  // actually kill is a bug in the schedule.
  template <typename Arm>
  void RunChildToDeath(SccAlgorithm algorithm, const std::string& path,
                       const std::string& ckpt_dir, const Arm& arm) {
    EXPECT_EXIT(
        {
          CheckpointOptions copts;
          copts.dir = ckpt_dir;
          copts.remove_on_success = false;
          Checkpointer cp(copts);
          if (!cp.OpenForRun(AlgorithmName(algorithm), path, false).ok()) {
            _exit(17);
          }
          SemiExternalOptions options = TortureOptions();
          options.checkpoint = &cp;
          arm(&options);
          SccResult result;
          RunStats stats;
          RunScc(algorithm, path, options, &result, &stats);
          _exit(0);
        },
        ::testing::KilledBySignal(SIGKILL), "");
  }

  // The parent half: resume from whatever the dead child left behind and
  // demand the uninterrupted run's exact outcome.
  void ResumeAndCheck(SccAlgorithm algorithm, const std::string& path,
                      const std::string& ckpt_dir, const Reference& ref) {
    CheckpointOptions copts;
    copts.dir = ckpt_dir;
    copts.remove_on_success = false;
    Checkpointer cp(copts);
    ASSERT_OK(cp.OpenForRun(AlgorithmName(algorithm), path, true));
    SemiExternalOptions options = TortureOptions();
    options.checkpoint = &cp;
    SccResult result;
    RunStats stats;
    Status st = RunScc(algorithm, path, options, &result, &stats);
    EXPECT_EQ(ref.status.ToString(), st.ToString());
    if (ref.status.ok() && st.ok()) {
      EXPECT_EQ(ref.result, result);
    }
    EXPECT_TRUE(ref.stats.io == stats.io)
        << "resumed run's logical-I/O ledger drifted";
    EXPECT_EQ(ref.stats.iterations, stats.iterations);
    EXPECT_EQ(ref.stats.search_scans, stats.search_scans);
    ASSERT_EQ(ref.stats.per_iteration.size(),
              stats.per_iteration.size());
    for (size_t i = 0; i < ref.stats.per_iteration.size(); ++i) {
      EXPECT_TRUE(ref.stats.per_iteration[i].io ==
                  stats.per_iteration[i].io)
          << "per-iteration ledger drift at " << i;
    }
  }

  std::string prev_tmpdir_;
  bool had_prev_tmpdir_ = false;
};

TEST_F(CrashTortureDeathTest, KillAtPassBoundariesThenResume) {
  const std::string path = TortureGraphPath();
  for (SccAlgorithm algorithm : kDrivers) {
    SCOPED_TRACE(AlgorithmName(algorithm));
    const Reference ref = RunReference(algorithm, path);
    // EM reaches its one boundary after a single chunked rewrite pass on
    // this graph (its remaining distinct kill points come from the
    // mid-checkpoint-write matrix below); every other driver must offer
    // at least first/middle/last.
    if (algorithm == SccAlgorithm::kEm) {
      ASSERT_GE(ref.boundaries, 1u)
          << "EM never reached a checkpoint boundary";
    } else {
      ASSERT_GE(ref.boundaries, 3u)
          << "graph offers too few kill points for this driver";
    }

    // First, a middle, and the last boundary — three distinct instants.
    std::vector<uint64_t> kill_points = {1, (ref.boundaries + 1) / 2,
                                         ref.boundaries};
    kill_points.erase(
        std::unique(kill_points.begin(), kill_points.end()),
        kill_points.end());
    for (uint64_t kill_at : kill_points) {
      SCOPED_TRACE("kill at boundary " + std::to_string(kill_at));
      const std::string ckpt_dir = NewPath(".ckpt");
      RunChildToDeath(algorithm, path, ckpt_dir,
                      [kill_at](SemiExternalOptions* options) {
                        auto boundary =
                            std::make_shared<uint64_t>(0);
                        options->progress =
                            [boundary, kill_at](uint64_t,
                                                const IterationStats&) {
                              if (++*boundary == kill_at) {
                                ::kill(::getpid(), SIGKILL);
                              }
                              return true;
                            };
                      });
      ResumeAndCheck(algorithm, path, ckpt_dir, ref);
    }
  }
}

TEST_F(CrashTortureDeathTest, KillMidCheckpointWriteThenResume) {
  const std::string path = TortureGraphPath();
  for (SccAlgorithm algorithm : kDrivers) {
    SCOPED_TRACE(AlgorithmName(algorithm));
    const Reference ref = RunReference(algorithm, path);
    const uint64_t writes = CountSnapshotWrites(algorithm, path, ref);
    ASSERT_GE(writes, 1u) << "driver never reached a snapshot write";
    // Kill at the second write when there is one, so a previous valid
    // snapshot exists for the torn-write fallback; at the first
    // otherwise (resume then proves the fresh-start path).
    const uint64_t crash_at = std::min<uint64_t>(2, writes);

    constexpr SnapshotCrashPoint kPoints[] = {
        SnapshotCrashPoint::kMidTempWrite,
        SnapshotCrashPoint::kAfterTempWrite,
        SnapshotCrashPoint::kAfterRename,
    };
    for (SnapshotCrashPoint point : kPoints) {
      SCOPED_TRACE("crash point " +
                   std::to_string(static_cast<int>(point)));
      const std::string ckpt_dir = NewPath(".ckpt");
      RunChildToDeath(algorithm, path, ckpt_dir,
                      [point, crash_at](SemiExternalOptions*) {
                        g_crash_point = point;
                        g_crash_at_write = crash_at;
                        g_crash_seen = 0;
                        SetSnapshotCrashHook(&CrashHook);
                      });
      ResumeAndCheck(algorithm, path, ckpt_dir, ref);
    }
  }
}

}  // namespace
}  // namespace ioscc
