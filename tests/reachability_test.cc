// Tests for the GRAIL-style reachability index and the end-to-end
// oracle: exactness against BFS ground truth, filter soundness (no false
// negatives), and pruning effectiveness.

#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "gen/generators.h"
#include "graph/digraph.h"
#include "scc/reachability.h"
#include "scc/tarjan.h"
#include "tests/test_util.h"
#include "util/random.h"

namespace ioscc {
namespace {

using testing_util::kPaperFigure1Nodes;
using testing_util::PaperFigure1Edges;

bool BfsReaches(const Digraph& graph, NodeId from, NodeId to) {
  if (from == to) return true;
  std::vector<bool> seen(graph.node_count(), false);
  std::vector<NodeId> stack = {from};
  seen[from] = true;
  while (!stack.empty()) {
    NodeId u = stack.back();
    stack.pop_back();
    for (NodeId v : graph.OutNeighbors(u)) {
      if (v == to) return true;
      if (!seen[v]) {
        seen[v] = true;
        stack.push_back(v);
      }
    }
  }
  return false;
}

TEST(GrailIndexTest, FilterIsSoundOnAChain) {
  // 0 -> 1 -> 2 -> 3.
  Digraph dag(4, {{0, 1}, {1, 2}, {2, 3}});
  GrailIndex index(dag, 2, 7);
  for (NodeId u = 0; u < 4; ++u) {
    for (NodeId v = 0; v < 4; ++v) {
      if (u <= v) {
        EXPECT_TRUE(index.MayReach(u, v)) << u << "->" << v;
        EXPECT_TRUE(index.Reaches(dag, u, v));
      } else {
        EXPECT_FALSE(index.Reaches(dag, u, v));
      }
    }
  }
}

TEST(GrailIndexTest, DisconnectedNodesAreUnreachable) {
  Digraph dag(4, {{0, 1}});
  GrailIndex index(dag, 3, 9);
  EXPECT_FALSE(index.Reaches(dag, 0, 2));
  EXPECT_FALSE(index.Reaches(dag, 2, 3));
  EXPECT_TRUE(index.Reaches(dag, 2, 2));
}

class GrailFuzzTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(GrailFuzzTest, ExactOnRandomDags) {
  const int seed = std::get<0>(GetParam());
  const int num_labelings = std::get<1>(GetParam());
  Rng rng(seed * 40009);
  const NodeId n = static_cast<NodeId>(30 + rng.Uniform(150));
  // Random DAG: edges point from smaller to larger id.
  std::vector<Edge> edges;
  for (uint64_t e = 0; e < 4ull * n; ++e) {
    NodeId a = static_cast<NodeId>(rng.Uniform(n));
    NodeId b = static_cast<NodeId>(rng.Uniform(n));
    if (a == b) continue;
    edges.push_back(Edge{std::min(a, b), std::max(a, b)});
  }
  Digraph dag(n, edges);
  GrailIndex index(dag, num_labelings, seed);
  for (int q = 0; q < 400; ++q) {
    NodeId u = static_cast<NodeId>(rng.Uniform(n));
    NodeId v = static_cast<NodeId>(rng.Uniform(n));
    const bool truth = BfsReaches(dag, u, v);
    EXPECT_EQ(index.Reaches(dag, u, v), truth)
        << u << "->" << v << " seed=" << seed;
    if (truth) {
      // Filter soundness: never a false negative.
      EXPECT_TRUE(index.MayReach(u, v));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, GrailFuzzTest,
                         ::testing::Combine(::testing::Range(1, 9),
                                            ::testing::Values(1, 2, 4)));

TEST(ReachabilityOracleTest, PaperFigure1) {
  Digraph graph(kPaperFigure1Nodes, PaperFigure1Edges());
  SccResult scc = TarjanScc(graph);
  ReachabilityOracle oracle(graph, scc, 2, 3);
  for (NodeId u = 0; u < graph.node_count(); ++u) {
    for (NodeId v = 0; v < graph.node_count(); ++v) {
      EXPECT_EQ(oracle.Reaches(u, v), BfsReaches(graph, u, v))
          << u << "->" << v;
    }
  }
}

class ReachabilityOracleFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(ReachabilityOracleFuzzTest, ExactOnCyclicGraphs) {
  const int seed = GetParam();
  Rng rng(seed * 31337);
  const NodeId n = static_cast<NodeId>(40 + rng.Uniform(150));
  std::vector<Edge> edges;
  ASSERT_OK(GenerateUniformEdges(n, 3ull * n, seed * 5 + 2, &edges));
  Digraph graph(n, edges);
  SccResult scc = TarjanScc(graph);
  ReachabilityOracle oracle(graph, scc, 2, seed);
  for (int q = 0; q < 300; ++q) {
    NodeId u = static_cast<NodeId>(rng.Uniform(n));
    NodeId v = static_cast<NodeId>(rng.Uniform(n));
    EXPECT_EQ(oracle.Reaches(u, v), BfsReaches(graph, u, v))
        << u << "->" << v << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ReachabilityOracleFuzzTest,
                         ::testing::Range(1, 11));

TEST(GrailIndexTest, MoreLabelingsNeverPruneLess) {
  // Filter acceptance with k labelings is the intersection over
  // labelings, so acceptance count is non-increasing in k (same seed
  // prefix => first labelings identical).
  Rng rng(777);
  const NodeId n = 120;
  std::vector<Edge> edges;
  for (int e = 0; e < 500; ++e) {
    NodeId a = static_cast<NodeId>(rng.Uniform(n));
    NodeId b = static_cast<NodeId>(rng.Uniform(n));
    if (a == b) continue;
    edges.push_back(Edge{std::min(a, b), std::max(a, b)});
  }
  Digraph dag(n, edges);
  GrailIndex one(dag, 1, 42);
  GrailIndex four(dag, 4, 42);
  int accept_one = 0, accept_four = 0;
  Rng qrng(99);
  for (int q = 0; q < 2000; ++q) {
    NodeId u = static_cast<NodeId>(qrng.Uniform(n));
    NodeId v = static_cast<NodeId>(qrng.Uniform(n));
    accept_one += one.MayReach(u, v);
    accept_four += four.MayReach(u, v);
  }
  EXPECT_LE(accept_four, accept_one);
}

}  // namespace
}  // namespace ioscc
