// Tests for VerifyEdgeFile fingerprints, ComputeGraphStats, the progress
// callback, and a deterministic fuzz loop feeding random bytes to the
// edge-file reader (no crash, no false acceptance).

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <vector>

#include <gtest/gtest.h>

#include "gen/generators.h"
#include "graph/graph_stats.h"
#include "io/edge_file.h"
#include "io/external_sort.h"
#include "io/verify_file.h"
#include "scc/algorithms.h"
#include "tests/test_util.h"
#include "util/random.h"

namespace ioscc {
namespace {

using testing_util::TempDirTest;

class VerifyFileTest : public TempDirTest {};

TEST_F(VerifyFileTest, CleanFileVerifies) {
  const std::vector<Edge> edges = {{0, 1}, {1, 2}, {2, 0}};
  const std::string path = WriteGraph(3, edges);
  EdgeFileFingerprint fp;
  ASSERT_OK(VerifyEdgeFile(path, &fp, nullptr));
  EXPECT_EQ(fp.node_count, 3u);
  EXPECT_EQ(fp.edge_count, 3u);
  EXPECT_NE(fp.stream_digest, 0u);
}

TEST_F(VerifyFileTest, IdenticalContentSameFingerprint) {
  const std::vector<Edge> edges = {{0, 1}, {1, 2}, {2, 0}};
  // Different block sizes, same logical content.
  const std::string a = WriteGraph(3, edges, 512);
  const std::string b = WriteGraph(3, edges, 4096);
  EdgeFileFingerprint fa, fb;
  ASSERT_OK(VerifyEdgeFile(a, &fa, nullptr));
  ASSERT_OK(VerifyEdgeFile(b, &fb, nullptr));
  EXPECT_EQ(fa, fb);
}

TEST_F(VerifyFileTest, ReorderKeepsMultisetDigestOnly) {
  std::vector<Edge> edges;
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    NodeId a = static_cast<NodeId>(rng.Uniform(64));
    NodeId b = static_cast<NodeId>(rng.Uniform(64));
    if (a != b) edges.push_back({a, b});
  }
  const std::string original = WriteGraph(64, edges, 512);
  const std::string sorted = NewPath(".sorted");
  ASSERT_OK(SortEdgeFile(original, sorted, ExternalSortOptions(),
                         dir_.get(), nullptr));
  EdgeFileFingerprint fo, fs;
  ASSERT_OK(VerifyEdgeFile(original, &fo, nullptr));
  ASSERT_OK(VerifyEdgeFile(sorted, &fs, nullptr));
  EXPECT_EQ(fo.multiset_digest, fs.multiset_digest);
  EXPECT_NE(fo.stream_digest, fs.stream_digest);  // order changed
}

TEST_F(VerifyFileTest, ContentChangeChangesDigest) {
  const std::string a = WriteGraph(4, {{0, 1}, {1, 2}});
  const std::string b = WriteGraph(4, {{0, 1}, {1, 3}});
  EdgeFileFingerprint fa, fb;
  ASSERT_OK(VerifyEdgeFile(a, &fa, nullptr));
  ASSERT_OK(VerifyEdgeFile(b, &fb, nullptr));
  EXPECT_NE(fa.stream_digest, fb.stream_digest);
  EXPECT_NE(fa.multiset_digest, fb.multiset_digest);
}

TEST_F(VerifyFileTest, DetectsCorruptPayload) {
  const std::string path = WriteGraph(3, {{0, 1}, {1, 2}});
  // Claim 2 nodes instead -> endpoint 2 is out of range.
  const std::string rogue = NewPath(".edges");
  ASSERT_OK(WriteEdgeFile(rogue, 2, {{0, 1}, {1, 2}}, 4096, nullptr));
  EXPECT_TRUE(VerifyEdgeFile(rogue, nullptr, nullptr).IsCorruption());
  EXPECT_OK(VerifyEdgeFile(path, nullptr, nullptr));
}

// Deterministic fuzz: random byte blobs must never crash the reader and
// must never be accepted as a valid edge file unless they genuinely parse.
TEST_F(VerifyFileTest, FuzzRandomBlobsNeverCrash) {
  Rng rng(0xF022);
  for (int round = 0; round < 200; ++round) {
    const size_t size = 1 + rng.Uniform(4096);
    std::vector<char> blob(size);
    for (char& c : blob) c = static_cast<char>(rng.Next64());
    // Half the rounds get a valid-looking magic prefix to push deeper.
    if (round % 2 == 0 && size >= 8) {
      std::memcpy(blob.data(), "IOSCCEDG", 8);
    }
    const std::string path = NewPath(".fuzz");
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite(blob.data(), 1, blob.size(), f);
    std::fclose(f);
    EdgeFileFingerprint fp;
    Status st = VerifyEdgeFile(path, &fp, nullptr);
    EXPECT_FALSE(st.ok()) << "round " << round << " size " << size;
  }
}

class GraphStatsTest : public TempDirTest {};

TEST_F(GraphStatsTest, CountsEverything) {
  // 0->1, 0->2, 1->1 (self loop), node 3 isolated, node 2 sink, 0 source.
  const std::string path = WriteGraph(4, {{0, 1}, {0, 2}, {1, 1}});
  GraphStats stats;
  ASSERT_OK(ComputeGraphStats(path, &stats, nullptr));
  EXPECT_EQ(stats.node_count, 4u);
  EXPECT_EQ(stats.edge_count, 3u);
  EXPECT_EQ(stats.self_loops, 1u);
  EXPECT_EQ(stats.max_out_degree, 2u);
  EXPECT_EQ(stats.max_in_degree, 2u);  // node 1: from 0 and its self-loop
  EXPECT_EQ(stats.sources, 1u);   // node 0
  EXPECT_EQ(stats.sinks, 1u);     // node 2
  EXPECT_EQ(stats.isolated, 1u);  // node 3
  EXPECT_DOUBLE_EQ(stats.avg_degree, 0.75);
  // Histogram: node 3 in bucket 0; nodes 1,2... node 1 out-degree 1
  // (bucket 1), node 0 out-degree 2 (bucket 2), node 2 and 3 degree 0.
  EXPECT_EQ(stats.out_degree_histogram[0], 2u);
  EXPECT_EQ(stats.out_degree_histogram[1], 1u);
  EXPECT_EQ(stats.out_degree_histogram[2], 1u);
}

TEST_F(GraphStatsTest, EmptyGraph) {
  const std::string path = WriteGraph(0, {});
  GraphStats stats;
  ASSERT_OK(ComputeGraphStats(path, &stats, nullptr));
  EXPECT_EQ(stats.node_count, 0u);
  EXPECT_EQ(stats.edge_count, 0u);
  EXPECT_DOUBLE_EQ(stats.avg_degree, 0.0);
}

class ProgressTest : public TempDirTest {};

TEST_F(ProgressTest, CallbackSeesEveryIteration) {
  PlantedSccSpec spec;
  spec.node_count = 1000;
  spec.avg_degree = 4.0;
  spec.components = {{100, 1}, {5, 10}};
  spec.seed = 5;
  std::vector<Edge> edges;
  ASSERT_OK(GeneratePlantedSccEdges(spec, &edges));
  const std::string path = WriteGraph(1000, edges);

  for (SccAlgorithm algorithm :
       {SccAlgorithm::kOnePhaseBatch, SccAlgorithm::kOnePhase}) {
    SemiExternalOptions options;
    options.scratch_block_size = 4096;
    uint64_t calls = 0;
    options.progress = [&](uint64_t iteration, const IterationStats&) {
      EXPECT_EQ(iteration, calls + 1);
      ++calls;
      return true;
    };
    SccResult result;
    RunStats stats;
    ASSERT_OK(RunScc(algorithm, path, options, &result, &stats));
    EXPECT_EQ(calls, stats.iterations) << AlgorithmName(algorithm);
  }
}

TEST_F(ProgressTest, ReturningFalseCancels) {
  std::vector<Edge> edges;
  for (NodeId v = 0; v < 500; ++v) edges.push_back({v, (v + 1) % 500});
  const std::string path = WriteGraph(500, edges);
  for (SccAlgorithm algorithm : AllAlgorithms()) {
    SemiExternalOptions options;
    options.scratch_block_size = 4096;
    options.progress = [](uint64_t, const IterationStats&) {
      return false;  // cancel immediately
    };
    SccResult result;
    RunStats stats;
    Status st = RunScc(algorithm, path, options, &result, &stats);
    // EM-SCC may finish before its first full iteration when the graph
    // fits in memory; everyone else must report the cancellation.
    if (algorithm == SccAlgorithm::kEm && st.ok()) continue;
    EXPECT_TRUE(st.IsIncomplete())
        << AlgorithmName(algorithm) << ": " << st.ToString();
  }
}

}  // namespace
}  // namespace ioscc
