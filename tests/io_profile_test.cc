// Regression tests for the *I/O profiles* the paper's claims rest on:
// early acceptance reduces block I/Os on SCC-heavy graphs, batching
// reduces iterations, DFS-SCC pays for the reversed graph, and the
// algorithms respect the accounting identities of the io layer.

#include <vector>

#include <gtest/gtest.h>

#include "gen/generators.h"
#include "io/edge_file.h"
#include "scc/algorithms.h"
#include "tests/test_util.h"

namespace ioscc {
namespace {

using testing_util::OracleFor;
using testing_util::TempDirTest;

class IoProfileTest : public TempDirTest {
 protected:
  // Webspam-shaped workload: giant SCC + tail (early acceptance's case).
  std::string MakeWebby(SccResult* oracle) {
    PlantedSccSpec spec = WebspamSpec(4000, 8.0, 91);
    std::vector<Edge> edges;
    EXPECT_TRUE(GeneratePlantedSccEdges(spec, &edges).ok());
    *oracle = OracleFor(static_cast<NodeId>(spec.node_count), edges);
    return WriteGraph(static_cast<NodeId>(spec.node_count), edges, 4096);
  }

  RunStats RunWith(SccAlgorithm algorithm, const std::string& path,
                   const SemiExternalOptions& options,
                   const SccResult& oracle) {
    SccResult result;
    RunStats stats;
    Status st = RunScc(algorithm, path, options, &result, &stats);
    EXPECT_TRUE(st.ok()) << st.ToString();
    EXPECT_EQ(result, oracle);
    return stats;
  }
};

TEST_F(IoProfileTest, EarlyAcceptanceReducesTotalIos) {
  SccResult oracle;
  const std::string path = MakeWebby(&oracle);
  SemiExternalOptions with;
  with.scratch_block_size = 4096;
  SemiExternalOptions without = with;
  without.tau_fraction = -1.0;
  without.reject_interval = 0;
  RunStats stats_with =
      RunWith(SccAlgorithm::kOnePhase, path, with, oracle);
  RunStats stats_without =
      RunWith(SccAlgorithm::kOnePhase, path, without, oracle);
  // The giant SCC covers ~65% of nodes: pruning it must pay for the
  // rewrite traffic (this is the headline effect of Section 7.4).
  EXPECT_LT(stats_with.io.TotalBlockIos(),
            stats_without.io.TotalBlockIos());
  EXPECT_GT(stats_with.nodes_accepted, 0u);
}

TEST_F(IoProfileTest, BatchingReducesIterations) {
  SccResult oracle;
  const std::string path = MakeWebby(&oracle);
  SemiExternalOptions options;
  options.scratch_block_size = 4096;
  options.memory_budget_bytes = 1 << 20;
  RunStats batched =
      RunWith(SccAlgorithm::kOnePhaseBatch, path, options, oracle);
  RunStats unbatched =
      RunWith(SccAlgorithm::kOnePhase, path, options, oracle);
  EXPECT_LE(batched.iterations, unbatched.iterations + 1);
}

TEST_F(IoProfileTest, DfsPaysForTheReversedGraph) {
  SccResult oracle;
  const std::string path = MakeWebby(&oracle);
  EdgeFileInfo info;
  ASSERT_OK(ReadEdgeFileInfo(path, &info));
  SemiExternalOptions options;
  options.scratch_block_size = 4096;
  RunStats stats = RunWith(SccAlgorithm::kDfs, path, options, oracle);
  // Algorithm 2 writes the reversed edge file exactly once: data blocks +
  // initial header + final header rewrite.
  EXPECT_EQ(stats.io.blocks_written, info.TotalBlocks() + 1);
}

TEST_F(IoProfileTest, ReadsAreWholeScansOnly) {
  // 1PB never reads partial scans: block reads decompose into full passes
  // over the sequence of (shrinking) files. We verify the weaker but
  // robust invariant that reads are at least one full pass of the input
  // and grow with iterations.
  SccResult oracle;
  const std::string path = MakeWebby(&oracle);
  EdgeFileInfo info;
  ASSERT_OK(ReadEdgeFileInfo(path, &info));
  SemiExternalOptions options;
  options.scratch_block_size = 4096;
  RunStats stats =
      RunWith(SccAlgorithm::kOnePhaseBatch, path, options, oracle);
  EXPECT_GE(stats.io.blocks_read, info.TotalBlocks());
  EXPECT_LE(stats.io.blocks_read,
            stats.iterations * info.TotalBlocks() + stats.iterations + 1);
}

TEST_F(IoProfileTest, BytesMatchBlocks) {
  SccResult oracle;
  const std::string path = MakeWebby(&oracle);
  SemiExternalOptions options;
  options.scratch_block_size = 4096;
  RunStats stats =
      RunWith(SccAlgorithm::kOnePhase, path, options, oracle);
  EXPECT_EQ(stats.io.bytes_read, stats.io.blocks_read * 4096);
  EXPECT_EQ(stats.io.bytes_written, stats.io.blocks_written * 4096);
}

}  // namespace
}  // namespace ioscc
