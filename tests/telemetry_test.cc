// Tests for the live-telemetry engine (obs/telemetry.h): the byte-identity
// guarantee (sampler on/off changes nothing observable), the
// budget-anchored progress estimator, the bounded sample ring, the stall
// watchdog (manual-stepped and against a real injected stall), and the
// progress-callback cancellation contract across every driver.

#include "obs/telemetry.h"

#include <chrono>
#include <filesystem>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "gen/generators.h"
#include "harness/runner.h"
#include "io/block_cache.h"
#include "io/block_file.h"
#include "io/fault_env.h"
#include "io/io_counters.h"
#include "obs/io_audit.h"
#include "scc/algorithms.h"
#include "tests/json_test_util.h"
#include "tests/test_util.h"
#include "util/thread_pool.h"

namespace ioscc {
namespace {

using testing_util::JsonParser;
using testing_util::JsonValue;
using testing_util::PaperFigure1Edges;
using testing_util::kPaperFigure1Nodes;

constexpr SccAlgorithm kAllAlgorithms[] = {
    SccAlgorithm::kOnePhaseBatch, SccAlgorithm::kOnePhase,
    SccAlgorithm::kTwoPhase,      SccAlgorithm::kDfs,
    SccAlgorithm::kEm,
};

// One pipeline configuration of the byte-identity sweep.
struct PipelineConfig {
  int threads;
  int prefetch_depth;
  uint64_t cache_blocks;
};

// What a run observably produced: status, partition, the logical ledger,
// and the full audit access stream.
struct RunFingerprint {
  std::string status;
  SccResult result;
  IoStats io;
  AuditLogData audit;
};

RunFingerprint RunWithConfig(SccAlgorithm algorithm, const std::string& path,
                             const PipelineConfig& config,
                             Telemetry* telemetry) {
  // Seams installed in the same order the binaries use.
  std::unique_ptr<ThreadPool> pool;
  if (config.threads > 0) {
    pool = std::make_unique<ThreadPool>(static_cast<size_t>(config.threads));
    SetIoThreadPool(pool.get());
  }
  std::unique_ptr<BlockCache> cache;
  if (config.cache_blocks > 0 ||
      (config.prefetch_depth >= 2 && pool != nullptr)) {
    cache = std::make_unique<BlockCache>(config.cache_blocks);
    cache->set_prefetch_depth(config.prefetch_depth);
    SetBlockCache(cache.get());
  }
  BlockAccessLog audit;
  SetBlockAccessLog(&audit);
  if (telemetry != nullptr) SetTelemetry(telemetry);

  SemiExternalOptions options;
  options.memory_budget_bytes = 1 << 20;
  RunOutcome outcome = RunAlgorithmOnFile(algorithm, path, options);

  if (telemetry != nullptr) SetTelemetry(nullptr);
  SetBlockAccessLog(nullptr);
  if (cache != nullptr) SetBlockCache(nullptr);
  if (pool != nullptr) SetIoThreadPool(nullptr);

  RunFingerprint fp;
  fp.status = outcome.status.ToString();
  fp.result = outcome.result;
  fp.io = outcome.stats.io;
  fp.audit = audit.Snapshot();
  return fp;
}

void ExpectSameObservables(const RunFingerprint& off,
                           const RunFingerprint& on,
                           const std::string& label) {
  EXPECT_EQ(off.status, on.status) << label;
  EXPECT_TRUE(off.result == on.result) << label;
  // The logical ledger is the paper's "# of I/Os": must be exact.
  EXPECT_TRUE(off.io == on.io) << label << ": logical/physical ledger drift";
  // The audit stream must be the same accesses in the same order.
  ASSERT_EQ(off.audit.files.size(), on.audit.files.size()) << label;
  ASSERT_EQ(off.audit.accesses.size(), on.audit.accesses.size()) << label;
  for (size_t i = 0; i < off.audit.accesses.size(); ++i) {
    const BlockAccessRecord& a = off.audit.accesses[i];
    const BlockAccessRecord& b = on.audit.accesses[i];
    ASSERT_TRUE(a.file_id == b.file_id && a.block == b.block &&
                a.is_write == b.is_write && a.seq == b.seq)
        << label << ": audit record " << i << " differs";
  }
}

class TelemetryTest : public testing_util::TempDirTest {};

// The tentpole guarantee: installing the telemetry engine — sampler
// thread running — changes nothing observable about a run, at every
// pipeline configuration. The sampler only reads relaxed atomics.
TEST_F(TelemetryTest, ByteIdentityAcrossPipelineConfigs) {
  const std::string path =
      WriteGraph(kPaperFigure1Nodes, PaperFigure1Edges());
  const PipelineConfig configs[] = {
      {0, 1, 0},   // serial, double buffer, no cache
      {0, 0, 0},   // serial, no read-ahead
      {0, 1, 32},  // serial + LRU cache
      {2, 1, 0},   // pool, double buffer
      {2, 4, 0},   // pool + async prefetch (budget-0 cache seam)
      {2, 4, 32},  // the full pipeline
  };
  for (SccAlgorithm algorithm : kAllAlgorithms) {
    for (const PipelineConfig& config : configs) {
      const std::string label =
          std::string(AlgorithmName(algorithm)) + " t" +
          std::to_string(config.threads) + "/d" +
          std::to_string(config.prefetch_depth) + "/c" +
          std::to_string(config.cache_blocks);
      RunFingerprint off =
          RunWithConfig(algorithm, path, config, /*telemetry=*/nullptr);
      TelemetryOptions topts;
      topts.sample_interval_ms = 1;  // sample as hot as possible
      topts.watchdog_window_ms = 10'000;
      Telemetry telemetry(topts);
      RunFingerprint on = RunWithConfig(algorithm, path, config, &telemetry);
      ExpectSameObservables(off, on, label);
      EXPECT_EQ(telemetry.watchdog_fires(), 0u) << label;
    }
  }
}

// The estimator divides measured logical blocks by the analytic bound at
// the anchor iteration count, and the anchor grows monotonically once the
// run outlives the anticipated count.
TEST(TelemetryEstimatorTest, BudgetAnchoredProgress) {
  TelemetryOptions topts;
  topts.sample_interval_ms = 0;  // manual stepping only
  Telemetry telemetry(topts);

  TelemetryRunInfo info;
  info.algorithm = "1PB-SCC";
  info.dataset = "synthetic";
  info.total_nodes = 100;
  info.total_edges = 1000;
  info.fixed_blocks = 10;
  info.blocks_per_iteration = 10;
  info.anticipated_iterations = 4;
  telemetry.BeginRun(info);

  // 25 measured blocks against bound 10 + 10 * max(4, 0+1) = 50.
  for (int i = 0; i < 25; ++i) IoCounters().BumpRead(4096);
  TelemetrySample s = telemetry.SampleNow();
  EXPECT_DOUBLE_EQ(s.progress, 0.5);
  EXPECT_GE(s.eta_seconds, 0.0);

  // Outliving the anticipated count grows the anchor: bound becomes
  // 10 + 10 * max(4, 9+1) = 110, so progress *drops* rather than pinning
  // at a false 100%.
  telemetry.OnIteration(9, 50, 500);
  s = telemetry.SampleNow();
  EXPECT_DOUBLE_EQ(s.progress, 25.0 / 110.0);
  EXPECT_EQ(s.iteration, 9u);
  EXPECT_EQ(s.live_nodes, 50u);

  telemetry.EndRun();
  // No active run: the estimator is parked.
  s = telemetry.SampleNow();
  EXPECT_LT(s.progress, 0.0);
  EXPECT_LT(s.eta_seconds, 0.0);
}

// The ring is bounded and the timeseries record reflects the retained
// tail only.
TEST(TelemetryRingTest, RingIsBoundedAndSerializes) {
  TelemetryOptions topts;
  topts.sample_interval_ms = 0;
  topts.ring_capacity = 4;
  Telemetry telemetry(topts);

  TelemetryRunInfo info;
  info.algorithm = "DFS-SCC";
  info.dataset = "ring-test";
  telemetry.BeginRun(info);
  for (int i = 0; i < 10; ++i) telemetry.SampleNow();
  telemetry.EndRun();

  EXPECT_EQ(telemetry.RingSnapshot().size(), 4u);
  JsonValue record;
  ASSERT_TRUE(JsonParser(telemetry.TimeseriesToJson()).Parse(&record));
  EXPECT_EQ(record["type"].string_value, "timeseries");
  EXPECT_EQ(record["algorithm"].string_value, "DFS-SCC");
  EXPECT_EQ(record["dataset"].string_value, "ring-test");
  ASSERT_TRUE(record["samples"].is_array());
  EXPECT_EQ(record["samples"].array.size(), 4u);
  EXPECT_EQ(static_cast<uint64_t>(record["sample_count"].number), 4u);
  // Samples are oldest-first and monotone in time.
  const auto& samples = record["samples"].array;
  for (size_t i = 1; i < samples.size(); ++i) {
    EXPECT_GE(samples[i]["elapsed_micros"].number,
              samples[i - 1]["elapsed_micros"].number);
  }
}

// Manual-stepped watchdog: frozen logical I/O + frozen iteration gauge
// accumulate stall time; advancing either resets it; it fires once per
// run and the diagnostic record is well-formed JSON with the metrics,
// phases, and ring-tail sub-records.
TEST(TelemetryWatchdogTest, FiresOnceOnFrozenGauges) {
  TelemetryOptions topts;
  topts.sample_interval_ms = 0;
  topts.watchdog_window_ms = 40;
  topts.watchdog_tail_samples = 8;
  Telemetry telemetry(topts);

  TelemetryRunInfo info;
  info.algorithm = "2P-SCC";
  info.dataset = "stall-test";
  telemetry.BeginRun(info);
  telemetry.SampleNow();  // baseline sample

  // Advancing I/O keeps the watchdog quiet.
  IoCounters().BumpRead(4096);
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  telemetry.SampleNow();
  EXPECT_EQ(telemetry.watchdog_fires(), 0u);

  // Freeze everything past the window: fires exactly once.
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  telemetry.SampleNow();
  EXPECT_EQ(telemetry.watchdog_fires(), 1u);
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  telemetry.SampleNow();
  EXPECT_EQ(telemetry.watchdog_fires(), 1u) << "watchdog must be one-shot";

  JsonValue record;
  ASSERT_TRUE(JsonParser(telemetry.WatchdogReportJson()).Parse(&record));
  EXPECT_EQ(record["type"].string_value, "watchdog");
  EXPECT_EQ(record["algorithm"].string_value, "2P-SCC");
  EXPECT_GE(record["stalled_ms"].number, 40.0);
  EXPECT_EQ(record["metrics"]["type"].string_value, "metrics");
  EXPECT_EQ(record["phases"]["type"].string_value, "phases");
  ASSERT_TRUE(record["samples"].is_array());
  EXPECT_GE(record["samples"].array.size(), 1u);

  // A new run re-arms it.
  telemetry.EndRun();
  telemetry.BeginRun(info);
  telemetry.SampleNow();
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  telemetry.SampleNow();
  EXPECT_EQ(telemetry.watchdog_fires(), 2u);
  telemetry.EndRun();
}

// End-to-end stall: a permanent-EIO fault on a data block makes BlockFile
// sit in its retry/backoff loop with logical I/O and the iteration gauge
// frozen; the background sampler must fire the watchdog during the stall
// and the run must surface the IoError afterwards.
TEST_F(TelemetryTest, WatchdogFiresOnInjectedPermanentStall) {
  std::vector<Edge> edges;
  ASSERT_OK(GenerateUniformEdges(500, 3000, /*seed=*/7, &edges));
  const std::string path = WriteGraph(500, edges);

  // Stretch the bounded retry loop into a ~1.6 s stall window
  // (100us * (2^14 - 1) of exponential backoff across 15 attempts).
  const IoRetryPolicy saved = GetIoRetryPolicy();
  IoRetryPolicy slow;
  slow.max_attempts = 15;
  slow.backoff_initial_us = 100;
  SetIoRetryPolicy(slow);

  // Block 1 (a data block — the header must stay readable so the harness
  // can bracket the run) fails on every physical read attempt.
  FaultInjector injector;
  injector.AddRule(FaultInjector::PermanentAt(
      path, /*block=*/1, FaultOp::kRead, FaultKind::kPermanentEio));
  SetFaultInjector(&injector);

  TelemetryOptions topts;
  topts.sample_interval_ms = 20;
  topts.watchdog_window_ms = 300;
  Telemetry telemetry(topts);
  SetTelemetry(&telemetry);

  SemiExternalOptions options;
  RunOutcome outcome =
      RunAlgorithmOnFile(SccAlgorithm::kOnePhaseBatch, path, options);

  SetTelemetry(nullptr);
  SetFaultInjector(nullptr);
  SetIoRetryPolicy(saved);

  EXPECT_FALSE(outcome.status.ok());
  EXPECT_GE(telemetry.watchdog_fires(), 1u)
      << "watchdog must fire during the injected retry stall";
  JsonValue record;
  ASSERT_TRUE(JsonParser(telemetry.WatchdogReportJson()).Parse(&record));
  EXPECT_EQ(record["type"].string_value, "watchdog");
}

// Satellite: cooperative cancellation through the progress callback is
// honored by every driver — the run ends Incomplete, the partial stats
// stay consistent, and no scratch temp files leak.
TEST_F(TelemetryTest, ProgressCancellationAcrossDrivers) {
  std::vector<Edge> edges;
  ASSERT_OK(GenerateUniformEdges(600, 3000, /*seed=*/11, &edges));
  const std::string path = WriteGraph(600, edges);

  const std::filesystem::path tmp_root =
      std::filesystem::path(dir_->path()).parent_path();
  auto scratch_entries = [&tmp_root]() {
    std::set<std::string> names;
    for (const auto& entry : std::filesystem::directory_iterator(tmp_root)) {
      const std::string name = entry.path().filename().string();
      if (name.rfind("ioscc-", 0) == 0) names.insert(name);
    }
    return names;
  };
  const std::set<std::string> before = scratch_entries();

  for (SccAlgorithm algorithm : kAllAlgorithms) {
    SemiExternalOptions options;
    // Force the chunked/batched paths so EM and DFS iterate instead of
    // solving in one in-memory pass.
    options.memory_budget_bytes = 1;
    uint64_t calls = 0;
    options.progress = [&calls](uint64_t iteration,
                                const IterationStats& iter) {
      ++calls;
      EXPECT_GE(iteration, 1u);
      EXPECT_GT(iter.live_nodes + iter.live_edges, 0u);
      return false;  // cancel immediately
    };
    RunOutcome outcome = RunAlgorithmOnFile(algorithm, path, options);
    const std::string label = AlgorithmName(algorithm);
    EXPECT_TRUE(outcome.status.IsIncomplete())
        << label << ": " << outcome.status.ToString();
    EXPECT_EQ(calls, 1u) << label << ": cancelled run must stop scanning";
    EXPECT_GE(outcome.stats.iterations, 1u) << label;
    EXPECT_GE(outcome.stats.per_iteration.size(), 1u) << label;
  }

  EXPECT_EQ(scratch_entries(), before)
      << "cancelled runs must not leak scratch directories";
}

}  // namespace
}  // namespace ioscc
