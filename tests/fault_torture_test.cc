// LevelDB-style fault-torture harness: run every driver under escalating
// fault schedules and assert the robustness trichotomy — each run ends in
// exactly one of
//   1. a correct SCC partition (bit-identical to the in-memory oracle),
//   2. a clean Status::Corruption (a checksum caught damaged data), or
//   3. a clean Status::IoError (the storage failed after bounded retries)
// — never a wrong answer, never a crash. 2P-SCC may additionally return
// its documented Status::Incomplete (no Def. 5.1 fixpoint), which the
// paper reports as INF and is unrelated to faults.
//
// The whole schedule is deterministic: rules fire as a pure function of
// the I/O sequence, and the RNG (seeded from IOSCC_TORTURE_SEED, default
// below) only draws fault parameters. A failing seed reproduces exactly:
//   IOSCC_TORTURE_SEED=1234 ./fault_torture_test

#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "gen/generators.h"
#include "harness/checkpoint.h"
#include "io/edge_file.h"
#include "io/fault_env.h"
#include "scc/algorithms.h"
#include "tests/test_util.h"

namespace ioscc {
namespace {

using testing_util::OracleFor;
using testing_util::TempDirTest;

uint64_t TortureSeed() {
  const char* env = std::getenv("IOSCC_TORTURE_SEED");
  if (env != nullptr && env[0] != '\0') {
    return std::strtoull(env, nullptr, 10);
  }
  return 0x70e77e5eedULL;
}

// The drivers under torture (the paper's four semi-external algorithms;
// EM-SCC is excluded because its contraction can stall for reasons
// unrelated to storage faults).
const SccAlgorithm kDrivers[] = {
    SccAlgorithm::kTwoPhase,
    SccAlgorithm::kOnePhase,
    SccAlgorithm::kOnePhaseBatch,
    SccAlgorithm::kDfs,
};

// One named fault schedule; `install` adds its rules to a fresh injector.
struct Schedule {
  const char* name;
  void (*install)(FaultInjector*);
};

// Escalating severity: recoverable noise first, then silent corruption,
// then unrecoverable device failures.
const Schedule kSchedules[] = {
    {"clean", [](FaultInjector*) {}},
    {"transient-read-noise",
     [](FaultInjector* f) {
       f->AddRule(FaultInjector::EveryKth(17, FaultOp::kRead,
                                          FaultKind::kTransientEio));
       f->AddRule(
           FaultInjector::EveryKth(13, FaultOp::kRead, FaultKind::kEintr));
     }},
    {"transient-write-noise",
     [](FaultInjector* f) {
       f->AddRule(FaultInjector::EveryKth(7, FaultOp::kWrite,
                                          FaultKind::kShortWrite));
       f->AddRule(
           FaultInjector::EveryKth(9, FaultOp::kFlush, FaultKind::kEintr));
     }},
    {"bit-flip-reads",
     [](FaultInjector* f) {
       f->AddRule(FaultInjector::EveryKth(23, FaultOp::kRead,
                                          FaultKind::kBitFlip));
     }},
    {"bit-flip-writes",
     [](FaultInjector* f) {
       f->AddRule(FaultInjector::EveryKth(19, FaultOp::kWrite,
                                          FaultKind::kBitFlip));
     }},
    {"enospc-mid-run",
     [](FaultInjector* f) {
       f->AddRule(FaultInjector::EveryKth(40, FaultOp::kWrite,
                                          FaultKind::kEnospc,
                                          /*fires=*/1));
     }},
    {"torn-write-crash",
     [](FaultInjector* f) {
       f->AddRule(FaultInjector::EveryKth(30, FaultOp::kWrite,
                                          FaultKind::kTornWrite,
                                          /*fires=*/1));
     }},
    {"dying-disk",
     [](FaultInjector* f) {
       // Scratch reads start failing permanently partway in.
       f->AddRule(FaultInjector::PermanentAt("", 2, FaultOp::kRead,
                                             FaultKind::kPermanentEio));
     }},
};

// $IOSCC_TMPDIR is routed under the fixture dir: interrupted checkpointed
// runs deliberately keep their scratch alive for the snapshots that
// reference it, and the fixture teardown reclaims it.
class FaultTortureTest : public TempDirTest {
 protected:
  void SetUp() override {
    TempDirTest::SetUp();
    const char* prev = std::getenv("IOSCC_TMPDIR");
    had_prev_tmpdir_ = prev != nullptr;
    if (had_prev_tmpdir_) prev_tmpdir_ = prev;
    ::setenv("IOSCC_TMPDIR", dir_->path().c_str(), 1);
  }

  void TearDown() override {
    if (had_prev_tmpdir_) {
      ::setenv("IOSCC_TMPDIR", prev_tmpdir_.c_str(), 1);
    } else {
      ::unsetenv("IOSCC_TMPDIR");
    }
  }

  std::string prev_tmpdir_;
  bool had_prev_tmpdir_ = false;

  int correct_runs_ = 0;
  int corruption_runs_ = 0;
  int io_error_runs_ = 0;

  // Checks the trichotomy for one (driver, schedule) cell.
  void Torture(SccAlgorithm algorithm, const Schedule& schedule,
               const std::string& path, const SccResult& oracle) {
    SCOPED_TRACE(std::string(AlgorithmName(algorithm)) + " under " +
                 schedule.name + " (seed " + std::to_string(TortureSeed()) +
                 ")");
    FaultInjector injector(TortureSeed());
    schedule.install(&injector);
    SetFaultInjector(&injector);

    SemiExternalOptions options;
    options.scratch_block_size = 4096;
    options.memory_budget_bytes = 1 << 16;  // force batching + rewrites
    SccResult result;
    RunStats stats;
    Status st = RunScc(algorithm, path, options, &result, &stats);
    SetFaultInjector(nullptr);

    if (st.ok()) {
      // Outcome 1: the answer must be exactly right — a fault schedule
      // may slow a run down, never skew it.
      EXPECT_EQ(result, oracle) << "survived faults with a WRONG answer; "
                                << injector.Summary();
      ++correct_runs_;
    } else if (algorithm == SccAlgorithm::kTwoPhase && st.IsIncomplete()) {
      // 2P's documented no-fixpoint outcome, allowed fault or no fault.
    } else {
      // Outcomes 2 and 3: a clean, typed error — anything else (Internal,
      // InvalidArgument, a crash before we got here) is a robustness bug.
      EXPECT_TRUE(st.IsCorruption() || st.IsIoError())
          << "untyped failure: " << st.ToString() << "; "
          << injector.Summary();
      if (st.IsCorruption()) ++corruption_runs_;
      if (st.IsIoError()) ++io_error_runs_;
    }

    // Recovery hygiene: whatever happened, no half-written file may be
    // left under a final name and no staging orphan may survive.
    for (const auto& entry :
         std::filesystem::directory_iterator(
             std::filesystem::path(path).parent_path())) {
      EXPECT_NE(entry.path().extension(), ".tmp")
          << "orphaned staging file: " << entry.path();
    }
  }
};

TEST_F(FaultTortureTest, TrichotomyAcrossDriversAndSchedules) {
  // A graph with planted structure (cycles of several sizes plus uniform
  // noise) so every driver does real multi-iteration work: scans,
  // scratch rewrites, reversals.
  std::vector<Edge> edges;
  ASSERT_OK(GenerateUniformEdges(600, 2400, /*seed=*/5, &edges));
  for (NodeId v = 0; v < 100; ++v) {  // one big cycle → one big SCC
    edges.push_back({v, (v + 1) % 100});
  }
  for (NodeId v = 200; v < 280; v += 4) {  // many small cycles
    edges.push_back({v, v + 1});
    edges.push_back({v + 1, v + 2});
    edges.push_back({v + 2, v});
  }
  const SccResult oracle = OracleFor(600, edges);

  // Checksummed files everywhere: the input is written as v2 and the
  // process default makes every scratch rewrite v2 too, so bit flips in
  // intermediate files surface as Corruption instead of silent damage.
  const std::string path = NewPath(".edges");
  ASSERT_OK(WriteEdgeFile(path, 600, edges, 4096, nullptr, kEdgeFormatV2));
  SetDefaultEdgeFileVersion(kEdgeFormatV2);
  IoRetryPolicy fast;
  fast.max_attempts = 4;
  fast.backoff_initial_us = 0;  // determinism is by sequence, not timing
  SetIoRetryPolicy(fast);

  for (const Schedule& schedule : kSchedules) {
    for (SccAlgorithm algorithm : kDrivers) {
      Torture(algorithm, schedule, path, oracle);
      if (HasFatalFailure()) break;
    }
  }

  SetDefaultEdgeFileVersion(kEdgeFormatV1);
  SetIoRetryPolicy(IoRetryPolicy());

  // The matrix must actually exercise all three trichotomy arms — a
  // schedule set where nothing fires (or everything dies) would make the
  // assertions above vacuous.
  EXPECT_GT(correct_runs_, 0) << "no run survived its schedule";
  EXPECT_GT(corruption_runs_, 0) << "no run hit a checksum mismatch";
  EXPECT_GT(io_error_runs_, 0) << "no run exhausted retries";
}

TEST_F(FaultTortureTest, CheckpointFaultsNeverPoisonTheRun) {
  // Faults aimed exclusively at snapshot files (path substring "ckpt-",
  // matching both ckpt-*.snap.tmp staging and the published names) must
  // never change a run's outcome: invariant 1 of harness/checkpoint.h.
  //   * permanent ENOSPC — every snapshot write fails: the run finishes
  //     with the exact answer, checkpointing records the failure and
  //     degrades itself off, and no snapshot lands under a final name;
  //   * a torn write — the damage is invisible at write time (the write
  //     "succeeds" short), so the proof is downstream: fsck or resume
  //     validation catches the CRC mismatch and a subsequent resume
  //     falls back cleanly and still completes exactly.
  std::vector<Edge> edges;
  ASSERT_OK(GenerateUniformEdges(400, 1600, /*seed=*/11, &edges));
  for (NodeId v = 0; v < 60; ++v) edges.push_back({v, (v + 1) % 60});
  const SccResult oracle = OracleFor(400, edges);
  const std::string path = NewPath(".edges");
  ASSERT_OK(WriteEdgeFile(path, 400, edges, 4096, nullptr, kEdgeFormatV2));
  SetDefaultEdgeFileVersion(kEdgeFormatV2);
  IoRetryPolicy fast;
  fast.max_attempts = 4;
  fast.backoff_initial_us = 0;
  SetIoRetryPolicy(fast);

  const struct {
    const char* name;
    FaultKind kind;
    uint64_t fires;  // 0 = permanent
  } kCkptSchedules[] = {
      {"ckpt-enospc-permanent", FaultKind::kEnospc, 0},
      {"ckpt-torn-write-once", FaultKind::kTornWrite, 1},
  };

  for (const auto& schedule : kCkptSchedules) {
    for (SccAlgorithm algorithm : kDrivers) {
      SCOPED_TRACE(std::string(AlgorithmName(algorithm)) + " under " +
                   schedule.name + " (seed " +
                   std::to_string(TortureSeed()) + ")");
      FaultInjector injector(TortureSeed());
      FaultRule rule;
      rule.path_contains = "ckpt-";
      rule.op = FaultOp::kWrite;
      rule.any_op = false;
      rule.fires_remaining = schedule.fires;
      rule.kind = schedule.kind;
      injector.AddRule(rule);
      SetFaultInjector(&injector);

      CheckpointOptions copts;
      copts.dir = NewPath(".ckpt");
      copts.remove_on_success = false;
      Checkpointer cp(copts);
      ASSERT_OK(cp.OpenForRun(AlgorithmName(algorithm), path, false));
      SemiExternalOptions options;
      options.scratch_block_size = 4096;
      options.memory_budget_bytes = 1 << 16;
      options.checkpoint = &cp;
      uint64_t boundaries = 0;
      if (schedule.kind == FaultKind::kTornWrite) {
        // Interrupt after two boundaries (cooperative cancellation, as a
        // SIGINT would): snapshots — the first of them torn — stay on
        // disk together with the scratch they reference.
        options.progress = [&boundaries](uint64_t,
                                         const IterationStats&) {
          return ++boundaries < 2;
        };
      }
      SccResult result;
      RunStats stats;
      Status st = RunScc(algorithm, path, options, &result, &stats);

      if (schedule.kind == FaultKind::kEnospc) {
        if (!(algorithm == SccAlgorithm::kTwoPhase &&
              st.IsIncomplete())) {
          ASSERT_TRUE(st.ok())
              << "checkpoint fault leaked into the run: " << st.ToString()
              << "; " << injector.Summary();
          EXPECT_EQ(result, oracle) << injector.Summary();
        }
        EXPECT_TRUE(cp.degraded());
        EXPECT_GE(cp.write_failures(), 1u);
        EXPECT_EQ(cp.written(), 0u);
        for (const auto& entry :
             std::filesystem::directory_iterator(copts.dir)) {
          EXPECT_NE(entry.path().extension(), ".snap")
              << "snapshot published despite ENOSPC: " << entry.path();
        }
      } else {
        // The interruption (or the driver's own early finish) must be
        // clean, and the resume must skip any torn snapshot and still
        // produce the exact answer.
        ASSERT_TRUE(st.ok() || st.IsIncomplete())
            << "checkpoint fault leaked into the run: " << st.ToString()
            << "; " << injector.Summary();
        Checkpointer resume_cp(copts);
        ASSERT_OK(
            resume_cp.OpenForRun(AlgorithmName(algorithm), path, true));
        SemiExternalOptions resume_options = options;
        resume_options.progress = nullptr;  // run to completion this time
        resume_options.checkpoint = &resume_cp;
        SccResult resumed;
        RunStats resumed_stats;
        Status rst = RunScc(algorithm, path, resume_options, &resumed,
                            &resumed_stats);
        if (!(algorithm == SccAlgorithm::kTwoPhase &&
              rst.IsIncomplete())) {
          ASSERT_TRUE(rst.ok()) << "resume past a torn snapshot failed: "
                                << rst.ToString();
          EXPECT_EQ(resumed, oracle);
        }
      }
      SetFaultInjector(nullptr);
    }
  }

  SetDefaultEdgeFileVersion(kEdgeFormatV1);
  SetIoRetryPolicy(IoRetryPolicy());
}

TEST_F(FaultTortureTest, CleanScheduleStillSucceedsEverywhere) {
  // Control cell: with the injector installed but no rules, every driver
  // must finish with the exact partition — the torture harness itself
  // must not perturb results.
  std::vector<Edge> edges;
  ASSERT_OK(GenerateUniformEdges(300, 1200, /*seed=*/9, &edges));
  for (NodeId v = 0; v < 50; ++v) edges.push_back({v, (v + 1) % 50});
  const SccResult oracle = OracleFor(300, edges);
  const std::string path = NewPath(".edges");
  ASSERT_OK(WriteEdgeFile(path, 300, edges, 4096, nullptr, kEdgeFormatV2));
  SetDefaultEdgeFileVersion(kEdgeFormatV2);

  FaultInjector injector(TortureSeed());
  SetFaultInjector(&injector);
  for (SccAlgorithm algorithm : kDrivers) {
    SemiExternalOptions options;
    options.scratch_block_size = 4096;
    SccResult result;
    RunStats stats;
    Status st = RunScc(algorithm, path, options, &result, &stats);
    if (algorithm == SccAlgorithm::kTwoPhase && st.IsIncomplete()) continue;
    ASSERT_TRUE(st.ok()) << AlgorithmName(algorithm) << ": "
                         << st.ToString();
    EXPECT_EQ(result, oracle) << AlgorithmName(algorithm);
  }
  SetFaultInjector(nullptr);
  SetDefaultEdgeFileVersion(kEdgeFormatV1);
}

}  // namespace
}  // namespace ioscc
