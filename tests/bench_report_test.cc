// Tests for the perf-trajectory pipeline (obs/bench_report.h): JSONL ->
// canonical BENCH json aggregation (schema, determinism, percentile and
// sweep extraction) and the bench_compare gate semantics (hard on
// logical-I/O / result drift, soft on timing, baseline-scoped).

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "obs/bench_report.h"
#include "obs/json_value.h"
#include "obs/metrics.h"
#include "obs/run_report.h"
#include "tests/test_util.h"

namespace ioscc {
namespace {

class BenchReportTest : public testing_util::TempDirTest {
 protected:
  // One synthetic SCC-bench run record, dataset under `dir` (the
  // aggregator must reduce it to the basename).
  static RunReportEntry SccRun(const std::string& algo,
                               const std::string& dir, uint64_t blocks_read,
                               double seconds, uint64_t components) {
    RunReportEntry entry;
    entry.experiment = "bench_alpha";
    entry.algorithm = algo;
    entry.dataset = dir + "/f1.edges";
    entry.status = "OK";
    entry.finished = true;
    entry.stats.seconds = seconds;
    entry.stats.iterations = 3;
    entry.stats.io.blocks_read = blocks_read;
    entry.stats.io.blocks_written = blocks_read / 2;
    entry.stats.io.bytes_read = blocks_read * 4096;
    entry.stats.io.read_stall_micros = 1000;
    entry.has_io_budget = true;
    entry.io_budget_model = "1p";
    entry.io_budget_bound_ios = 10 * blocks_read;
    entry.io_budget_measured_ios = blocks_read + blocks_read / 2;
    entry.io_budget_ratio = 0.15;
    entry.io_budget_pass = true;
    entry.component_count = components;
    entry.largest_component = 4;
    entry.nodes_in_nontrivial_sccs = 8;
    return entry;
  }

  // One bench_io sweep-point record (threads/depth ride in the cache
  // object; the (0,0) point has none, mirroring bench_io itself).
  static RunReportEntry IoRun(const std::string& workload, uint64_t threads,
                              uint64_t depth, uint64_t blocks_read,
                              double seconds) {
    RunReportEntry entry;
    entry.experiment = "bench_io";
    entry.algorithm = workload;
    entry.dataset = "/scratch/bench_io/input.edges";
    entry.status = "OK";
    entry.finished = true;
    entry.stats.seconds = seconds;
    entry.stats.io.blocks_read = blocks_read;
    entry.stats.io.bytes_read = blocks_read * 4096;
    entry.stats.io.read_stall_micros = threads > 0 ? 50 : 5000;
    entry.io_threads = threads;
    entry.prefetch_depth = depth;
    return entry;
  }

  // Writes `entries` (plus a metrics snapshot with one histogram) as a
  // JSONL run report. The aggregator derives the bench name from the
  // basename, so each report gets its own scratch directory and the file
  // is named exactly <bench>.jsonl.
  std::string WriteReport(const std::string& bench,
                          const std::vector<RunReportEntry>& entries) {
    std::unique_ptr<TempDir> report_dir;
    EXPECT_TRUE(TempDir::Create("bench-report-test", &report_dir).ok());
    const std::string file = report_dir->FilePath(bench + ".jsonl");
    report_dirs_.push_back(std::move(report_dir));
    std::unique_ptr<RunReportWriter> writer;
    EXPECT_TRUE(RunReportWriter::Open(file, &writer).ok());
    for (const RunReportEntry& entry : entries) {
      EXPECT_TRUE(writer->Append(entry).ok());
    }
    MetricsRegistry::Global().Reset();
    Histogram* h = MetricsRegistry::Global().GetHistogram("test.latency_us");
    for (uint64_t v : {3u, 5u, 5u, 90u, 200u}) h->Record(v);
    EXPECT_TRUE(writer->AppendMetricsSnapshot().ok());
    MetricsRegistry::Global().Reset();
    return file;
  }

  std::string Aggregate(const std::vector<std::string>& files,
                        bool deterministic_only = false,
                        const std::string& tag = "test") {
    BenchReportOptions options;
    options.tag = tag;
    options.deterministic_only = deterministic_only;
    options.build_type = "Release";
    options.threads = 2;
    options.prefetch_depth = 4;
    options.cache_blocks = 0;
    std::string json;
    EXPECT_TRUE(AggregateBenchReportFiles(files, options, &json).ok());
    return json;
  }

  std::vector<std::unique_ptr<TempDir>> report_dirs_;
};

TEST_F(BenchReportTest, AggregateIsDeterministicAndSchemaComplete) {
  const std::string alpha = WriteReport(
      "bench_alpha", {SccRun("1P-SCC", "/tmp/run1", 100, 1.5, 6),
                      SccRun("2P-SCC", "/tmp/run1", 140, 2.5, 6)});
  const std::string io = WriteReport(
      "bench_io", {IoRun("scan", 0, 0, 500, 2.0), IoRun("scan", 2, 4, 500, 1.0),
                   IoRun("sort", 0, 0, 800, 4.0), IoRun("sort", 2, 4, 800, 2.0)});

  const std::string first = Aggregate({alpha, io});
  const std::string second = Aggregate({io, alpha});  // order-independent
  EXPECT_EQ(first, second);

  JsonValue doc;
  std::string error;
  ASSERT_TRUE(ParseJson(first, &doc, &error)) << error;
  EXPECT_EQ(doc["schema"].AsString(), kBenchReportSchema);
  EXPECT_EQ(doc["tag"].AsString(), "test");
  EXPECT_FALSE(doc["deterministic_only"].AsBool(true));
  EXPECT_EQ(doc["environment"]["build_type"].AsString(), "Release");
  EXPECT_EQ(doc["environment"]["threads"].AsUInt(), 2u);
  EXPECT_EQ(doc["environment"]["prefetch_depth"].AsUInt(), 4u);

  // Per-bench runs: datasets reduced to basenames, ledgers intact.
  const JsonValue& runs = doc["benches"]["bench_alpha"]["runs"];
  ASSERT_TRUE(runs.is_array());
  ASSERT_EQ(runs.array.size(), 2u);
  EXPECT_EQ(runs.array[0]["dataset"].AsString(), "f1.edges");
  EXPECT_EQ(runs.array[0]["io"]["blocks_read"].AsUInt(), 100u);
  EXPECT_EQ(runs.array[0]["result"]["component_count"].AsUInt(), 6u);
  EXPECT_EQ(runs.array[0]["io_budget"]["bound_ios"].AsUInt(), 1000u);
  EXPECT_FALSE(runs.array[0].has("per_iteration"));
  EXPECT_FALSE(runs.array[0].has("experiment"));

  // Histogram percentiles come from the shared snapshot implementation:
  // 5 samples {3,5,5,90,200} -> the true p50 is 5, so the pow2-bucket
  // estimate stays inside its [4, 8) bucket; p99 clamps to <= 200.
  const JsonValue& hist =
      doc["benches"]["bench_alpha"]["histograms"]["test.latency_us"];
  ASSERT_TRUE(hist.is_object());
  EXPECT_EQ(hist["count"].AsUInt(), 5u);
  EXPECT_GE(hist["p50"].AsDouble(), 4.0);
  EXPECT_LE(hist["p50"].AsDouble(), 8.0);
  EXPECT_LE(hist["p99"].AsDouble(), 200.0);
  EXPECT_GE(hist["p99"].AsDouble(), 100.0);

  // bench_io sweep + speedup: the threaded scan point halved the wall
  // time, so its speedup over the (0,0) point is 2x.
  ASSERT_TRUE(doc["bench_io"]["sweep"].is_array());
  EXPECT_EQ(doc["bench_io"]["sweep"].array.size(), 4u);
  const JsonValue& speedup = doc["bench_io"]["speedup"];
  ASSERT_TRUE(speedup.is_array());
  bool saw_threaded_scan = false;
  for (const JsonValue& point : speedup.array) {
    if (point["workload"].AsString() == "scan" &&
        point["io_threads"].AsUInt() == 2) {
      saw_threaded_scan = true;
      EXPECT_NEAR(point["speedup"].AsDouble(), 2.0, 1e-9);
    }
  }
  EXPECT_TRUE(saw_threaded_scan);
}

TEST_F(BenchReportTest, DeterministicOnlyDropsTimingFields) {
  const std::string io = WriteReport(
      "bench_io", {IoRun("scan", 0, 0, 500, 2.0), IoRun("scan", 2, 4, 500, 1.0)});
  RunReportEntry timed_out = SccRun("2P-SCC", "/tmp/x", 77, 60.0, 0);
  timed_out.status = "Incomplete: hit the time limit";
  timed_out.finished = false;
  timed_out.timed_out = true;
  const std::string alpha = WriteReport(
      "bench_alpha", {SccRun("1P-SCC", "/tmp/x", 100, 1.5, 6), timed_out});
  const std::string json = Aggregate({alpha, io}, /*deterministic_only=*/true);
  JsonValue doc;
  ASSERT_TRUE(ParseJson(json, &doc));
  EXPECT_TRUE(doc["deterministic_only"].AsBool());
  // The timed-out run is dropped wholesale: its ledger records where the
  // clock cut it off, which no other machine reproduces.
  ASSERT_EQ(doc["benches"]["bench_alpha"]["runs"].array.size(), 1u);
  const JsonValue& run = doc["benches"]["bench_alpha"]["runs"].array[0];
  EXPECT_FALSE(run.has("seconds"));
  EXPECT_FALSE(run["io"].has("read_stall_micros"));
  // Physical/pipeline counters are race outcomes under the async
  // prefetcher; only the logical ledger survives.
  EXPECT_FALSE(run["io"].has("prefetch_hits"));
  EXPECT_FALSE(run["io"].has("physical_blocks_read"));
  EXPECT_TRUE(run["io"].has("blocks_read"));
  EXPECT_TRUE(run["io"].has("block_ios"));
  EXPECT_FALSE(doc["benches"]["bench_alpha"].has("histograms"));
  EXPECT_FALSE(doc["bench_io"].has("speedup"));
  const JsonValue& point = doc["bench_io"]["sweep"].array[0];
  EXPECT_FALSE(point.has("seconds"));
  EXPECT_FALSE(point["io"].has("read_stall_micros"));
}

TEST_F(BenchReportTest, TelemetryRecordsSummarizedAndStripped) {
  // A run report carrying live-telemetry records: the aggregator must
  // reduce the timeseries ring to a summary (the full ring stays in the
  // JSONL) and count watchdog fires — and drop both under
  // deterministic_only, since they sample on a wall-clock cadence.
  std::unique_ptr<TempDir> report_dir;
  ASSERT_TRUE(TempDir::Create("bench-report-test", &report_dir).ok());
  const std::string file = report_dir->FilePath("bench_alpha.jsonl");
  {
    std::unique_ptr<RunReportWriter> writer;
    ASSERT_TRUE(RunReportWriter::Open(file, &writer).ok());
    ASSERT_TRUE(writer->Append(SccRun("1P-SCC", "/tmp/x", 100, 1.5, 6)).ok());
    ASSERT_TRUE(writer
                    ->AppendRecordJson(
                        "{\"type\":\"timeseries\",\"algorithm\":\"1P-SCC\","
                        "\"dataset\":\"/tmp/x/f1.edges\",\"interval_ms\":200,"
                        "\"sample_count\":2,\"samples\":["
                        "{\"elapsed_micros\":10},{\"elapsed_micros\":20}]}")
                    .ok());
    ASSERT_TRUE(writer
                    ->AppendRecordJson(
                        "{\"type\":\"watchdog\",\"algorithm\":\"1P-SCC\","
                        "\"dataset\":\"/tmp/x/f1.edges\",\"stalled_ms\":700,"
                        "\"iteration\":2,\"logical_blocks\":10}")
                    .ok());
  }
  report_dirs_.push_back(std::move(report_dir));

  JsonValue doc;
  ASSERT_TRUE(ParseJson(Aggregate({file}), &doc));
  const JsonValue& bench = doc["benches"]["bench_alpha"];
  ASSERT_TRUE(bench["timeseries"].is_array());
  ASSERT_EQ(bench["timeseries"].array.size(), 1u);
  const JsonValue& summary = bench["timeseries"].array[0];
  EXPECT_EQ(summary["algorithm"].AsString(), "1P-SCC");
  EXPECT_EQ(summary["dataset"].AsString(), "f1.edges");
  EXPECT_EQ(summary["interval_ms"].AsUInt(), 200u);
  EXPECT_EQ(summary["samples"].AsUInt(), 2u);
  EXPECT_FALSE(summary.has("elapsed_micros"));  // summary, not the ring
  EXPECT_EQ(bench["watchdog_fires"].AsUInt(), 1u);

  JsonValue det;
  ASSERT_TRUE(ParseJson(Aggregate({file}, /*deterministic_only=*/true), &det));
  EXPECT_FALSE(det["benches"]["bench_alpha"].has("timeseries"));
  EXPECT_FALSE(det["benches"]["bench_alpha"].has("watchdog_fires"));
  ASSERT_EQ(det["benches"]["bench_alpha"]["runs"].array.size(), 1u);
}

TEST_F(BenchReportTest, EnvironmentRecordsBuildProvenance) {
  const std::string alpha =
      WriteReport("bench_alpha", {SccRun("1P-SCC", "/tmp/x", 100, 1.5, 6)});
  JsonValue doc;
  ASSERT_TRUE(ParseJson(Aggregate({alpha}), &doc));
  // Exact values are configure-time constants; the schema just has to
  // carry them (and they must not perturb environments_match, which the
  // Compare* tests above cover by re-aggregating fresh reports).
  ASSERT_TRUE(doc["environment"].has("git_sha"));
  ASSERT_TRUE(doc["environment"].has("cxx_flags"));
  EXPECT_FALSE(doc["environment"]["git_sha"].AsString().empty());
  EXPECT_FALSE(doc["environment"]["compiler"].AsString().empty());
}

TEST_F(BenchReportTest, CompareIdenticalReportsPasses) {
  const std::string alpha = WriteReport(
      "bench_alpha", {SccRun("1P-SCC", "/tmp/base", 100, 1.5, 6)});
  const std::string io =
      WriteReport("bench_io", {IoRun("scan", 0, 0, 500, 2.0)});
  const std::string json = Aggregate({alpha, io});
  BenchCompareResult result;
  ASSERT_TRUE(
      CompareBenchReports(json, json, BenchCompareOptions(), &result).ok());
  EXPECT_TRUE(result.pass());
  EXPECT_TRUE(result.issues.empty()) << result.Format();
  EXPECT_GT(result.deterministic_checks, 0u);
  EXPECT_GT(result.timing_checks, 0u);
}

TEST_F(BenchReportTest, DatasetBasenameMatchesAcrossScratchDirs) {
  // Same run, different per-invocation scratch directories: the gate must
  // still line the runs up (and find zero diffs).
  const std::string base_file = WriteReport(
      "bench_alpha", {SccRun("1P-SCC", "/scratch/run-A", 100, 1.5, 6)});
  const std::string fresh_file = WriteReport(
      "bench_alpha", {SccRun("1P-SCC", "/scratch/run-B", 100, 1.5, 6)});
  BenchCompareResult result;
  ASSERT_TRUE(CompareBenchReports(Aggregate({base_file}),
                                  Aggregate({fresh_file}),
                                  BenchCompareOptions(), &result)
                  .ok());
  EXPECT_TRUE(result.issues.empty()) << result.Format();
}

TEST_F(BenchReportTest, PerturbedLogicalIoCountHardFails) {
  const std::string base_file = WriteReport(
      "bench_alpha", {SccRun("1P-SCC", "/tmp/x", 100, 1.5, 6)});
  RunReportEntry drifted = SccRun("1P-SCC", "/tmp/x", 101, 1.5, 6);
  const std::string fresh_file = WriteReport("bench_alpha", {drifted});
  BenchCompareResult result;
  ASSERT_TRUE(CompareBenchReports(Aggregate({base_file}),
                                  Aggregate({fresh_file}),
                                  BenchCompareOptions(), &result)
                  .ok());
  EXPECT_FALSE(result.pass());
  EXPECT_GE(result.hard_failures(), 1u);
  EXPECT_NE(result.Format().find("blocks_read"), std::string::npos)
      << result.Format();
}

TEST_F(BenchReportTest, ChangedSccResultHardFails) {
  const std::string base_file = WriteReport(
      "bench_alpha", {SccRun("1P-SCC", "/tmp/x", 100, 1.5, 6)});
  const std::string fresh_file = WriteReport(
      "bench_alpha", {SccRun("1P-SCC", "/tmp/x", 100, 1.5, 7)});
  BenchCompareResult result;
  ASSERT_TRUE(CompareBenchReports(Aggregate({base_file}),
                                  Aggregate({fresh_file}),
                                  BenchCompareOptions(), &result)
                  .ok());
  EXPECT_FALSE(result.pass());
  EXPECT_NE(result.Format().find("component_count"), std::string::npos)
      << result.Format();
}

TEST_F(BenchReportTest, SlowWallClockIsOnlyAWarning) {
  const std::string base_file = WriteReport(
      "bench_alpha", {SccRun("1P-SCC", "/tmp/x", 100, 1.0, 6)});
  const std::string fresh_file = WriteReport(
      "bench_alpha", {SccRun("1P-SCC", "/tmp/x", 100, 10.0, 6)});
  BenchCompareResult result;
  ASSERT_TRUE(CompareBenchReports(Aggregate({base_file}),
                                  Aggregate({fresh_file}),
                                  BenchCompareOptions(), &result)
                  .ok());
  // 10x slower trips the default 50% tolerance — but only as a warning.
  EXPECT_TRUE(result.pass()) << result.Format();
  EXPECT_GE(result.soft_failures(), 1u);
  EXPECT_NE(result.Format().find("seconds"), std::string::npos);
  EXPECT_NE(result.Format().find("PASS"), std::string::npos);

  // A faster fresh run raises nothing.
  BenchCompareResult faster;
  ASSERT_TRUE(CompareBenchReports(Aggregate({fresh_file}),
                                  Aggregate({base_file}),
                                  BenchCompareOptions(), &faster)
                  .ok());
  EXPECT_TRUE(faster.issues.empty()) << faster.Format();
}

TEST_F(BenchReportTest, MissingBenchOrRunIsHard) {
  const std::string alpha = WriteReport(
      "bench_alpha", {SccRun("1P-SCC", "/tmp/x", 100, 1.5, 6),
                      SccRun("2P-SCC", "/tmp/x", 140, 2.5, 6)});
  const std::string io =
      WriteReport("bench_io", {IoRun("scan", 0, 0, 500, 2.0)});
  const std::string baseline = Aggregate({alpha, io});

  // Fresh is missing bench_io entirely and one of the two runs.
  const std::string partial = WriteReport(
      "bench_alpha", {SccRun("1P-SCC", "/tmp/x", 100, 1.5, 6)});
  BenchCompareResult result;
  ASSERT_TRUE(CompareBenchReports(baseline, Aggregate({partial}),
                                  BenchCompareOptions(), &result)
                  .ok());
  EXPECT_FALSE(result.pass());
  EXPECT_GE(result.hard_failures(), 2u) << result.Format();

  // The reverse direction is fine: extra fresh coverage is not gated.
  BenchCompareResult reverse;
  ASSERT_TRUE(CompareBenchReports(Aggregate({partial}), baseline,
                                  BenchCompareOptions(), &reverse)
                  .ok());
  EXPECT_TRUE(reverse.pass()) << reverse.Format();
  EXPECT_TRUE(reverse.issues.empty()) << reverse.Format();
}

TEST_F(BenchReportTest, DeterministicOnlyBaselineSkipsTimingChecks) {
  const std::string base_file = WriteReport(
      "bench_alpha", {SccRun("1P-SCC", "/tmp/x", 100, 1.0, 6)});
  const std::string fresh_file = WriteReport(
      "bench_alpha", {SccRun("1P-SCC", "/tmp/x", 100, 99.0, 6)});
  // Baseline recorded deterministic-only: the 99x wall-clock blowup in
  // the full fresh record has nothing to compare against.
  BenchCompareResult result;
  ASSERT_TRUE(
      CompareBenchReports(Aggregate({base_file}, /*deterministic_only=*/true),
                          Aggregate({fresh_file}), BenchCompareOptions(),
                          &result)
          .ok());
  EXPECT_TRUE(result.pass()) << result.Format();
  EXPECT_TRUE(result.issues.empty()) << result.Format();
  EXPECT_EQ(result.timing_checks, 0u);
  EXPECT_GT(result.deterministic_checks, 0u);
}

TEST_F(BenchReportTest, MalformedInputIsAnErrorNotAVerdict) {
  BenchCompareResult result;
  EXPECT_FALSE(
      CompareBenchReports("{not json", "{}", BenchCompareOptions(), &result)
          .ok());
  // A wrong schema is a verdict (hard), not a parse error.
  ASSERT_TRUE(CompareBenchReports("{\"schema\":\"other/v0\"}", "{}",
                                  BenchCompareOptions(), &result)
                  .ok());
  EXPECT_FALSE(result.pass());
}

}  // namespace
}  // namespace ioscc
