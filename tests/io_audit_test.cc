// Block-access auditing: pattern classification, re-read accounting, the
// LRU cache simulator, audit-file round trips, the BlockFile recording
// hook, and the strictly-opt-in guarantee (no sink installed => block-I/O
// counters byte-identical to an uninstrumented run).

#include <vector>

#include <gtest/gtest.h>

#include "gen/generators.h"
#include "io/block_file.h"
#include "io/edge_file.h"
#include "obs/io_audit.h"
#include "scc/algorithms.h"
#include "tests/test_util.h"

namespace ioscc {
namespace {

using testing_util::TempDirTest;

// Appends read (or write) accesses for `blocks` of `file_id`, assigning
// ascending seq numbers.
void Append(AuditLogData* log, uint32_t file_id,
            std::initializer_list<uint64_t> blocks, bool is_write = false) {
  for (uint64_t block : blocks) {
    BlockAccessRecord a;
    a.file_id = file_id;
    a.block = block;
    a.is_write = is_write;
    a.seq = log->accesses.size();
    log->accesses.push_back(a);
  }
}

TEST(IoAuditAnalysisTest, SequentialScanIsOneRun) {
  AuditLogData log;
  log.files = {"scan.edges"};
  Append(&log, 0, {0, 1, 2, 3, 4, 5});
  auto patterns = AnalyzeAccessPatterns(log);
  ASSERT_EQ(patterns.size(), 1u);
  const FileAccessPattern& p = patterns[0];
  EXPECT_EQ(p.path, "scan.edges");
  EXPECT_EQ(p.reads, 6u);
  EXPECT_EQ(p.writes, 0u);
  EXPECT_EQ(p.sequential_runs, 1u);
  EXPECT_EQ(p.random_jumps, 0u);
  EXPECT_EQ(p.sequential_accesses, 5u);  // first access opens the run
  EXPECT_EQ(p.longest_run, 6u);
  EXPECT_EQ(p.distinct_blocks, 6u);
  EXPECT_EQ(p.re_reads, 0u);
}

TEST(IoAuditAnalysisTest, MultiPassScanCountsOneJumpPerReset) {
  // Three passes over blocks 0..3: the pattern every semi-external
  // algorithm produces (jump back to the start on each Reset).
  AuditLogData log;
  log.files = {"g.edges"};
  for (int pass = 0; pass < 3; ++pass) Append(&log, 0, {0, 1, 2, 3});
  auto patterns = AnalyzeAccessPatterns(log);
  ASSERT_EQ(patterns.size(), 1u);
  const FileAccessPattern& p = patterns[0];
  EXPECT_EQ(p.reads, 12u);
  EXPECT_EQ(p.sequential_runs, 3u);
  EXPECT_EQ(p.random_jumps, 2u);
  EXPECT_EQ(p.longest_run, 4u);
  EXPECT_EQ(p.distinct_blocks, 4u);
  EXPECT_EQ(p.re_reads, 8u);  // passes 2 and 3 re-read everything
  EXPECT_DOUBLE_EQ(p.ReReadRatio(), 8.0 / 12.0);
}

TEST(IoAuditAnalysisTest, RandomAccessClassification) {
  AuditLogData log;
  log.files = {"tree.blocks"};
  // 7, 3, 4, 5, 0, 1: two jumps after the opening access (7->3, 5->0),
  // runs {7}, {3,4,5}, {0,1}.
  Append(&log, 0, {7, 3, 4, 5, 0, 1});
  auto patterns = AnalyzeAccessPatterns(log);
  ASSERT_EQ(patterns.size(), 1u);
  const FileAccessPattern& p = patterns[0];
  EXPECT_EQ(p.sequential_runs, 3u);
  EXPECT_EQ(p.random_jumps, 2u);
  EXPECT_EQ(p.sequential_accesses, 3u);  // 4, 5, 1
  EXPECT_EQ(p.longest_run, 3u);
  EXPECT_EQ(p.re_reads, 0u);
}

TEST(IoAuditAnalysisTest, FilesAreTrackedIndependently) {
  AuditLogData log;
  log.files = {"a.edges", "b.edges"};
  // Interleave two sequential scans; neither should see jumps.
  for (uint64_t b = 0; b < 4; ++b) {
    Append(&log, 0, {b});
    Append(&log, 1, {b});
  }
  Append(&log, 1, {0, 1}, /*is_write=*/true);
  auto patterns = AnalyzeAccessPatterns(log);
  ASSERT_EQ(patterns.size(), 2u);
  EXPECT_EQ(patterns[0].file_id, 0u);
  EXPECT_EQ(patterns[0].random_jumps, 0u);
  EXPECT_EQ(patterns[0].sequential_runs, 1u);
  EXPECT_EQ(patterns[1].file_id, 1u);
  EXPECT_EQ(patterns[1].reads, 4u);
  EXPECT_EQ(patterns[1].writes, 2u);
  // The write stream jumps 3 -> 0 once (read cursor at 3, write starts 0).
  EXPECT_EQ(patterns[1].random_jumps, 1u);
}

TEST(IoAuditLruTest, CyclicScanThrashesSmallCacheAndFitsLargeOne) {
  AuditLogData log;
  log.files = {"g.edges"};
  for (int pass = 0; pass < 2; ++pass) Append(&log, 0, {0, 1, 2});
  // Capacity 2 < working set 3: the cyclic scan evicts each block just
  // before its next use — the classic LRU worst case, zero hits.
  CacheSimPoint small = SimulateLruCache(log, 2);
  EXPECT_EQ(small.budget_blocks, 2u);
  EXPECT_EQ(small.hits, 0u);
  EXPECT_EQ(small.misses, 6u);
  // Capacity 3 holds the whole file: second pass is free.
  CacheSimPoint large = SimulateLruCache(log, 3);
  EXPECT_EQ(large.hits, 3u);
  EXPECT_EQ(large.misses, 3u);
  EXPECT_DOUBLE_EQ(large.HitRatio(), 0.5);
}

TEST(IoAuditLruTest, LruEvictsLeastRecentlyUsed) {
  AuditLogData log;
  log.files = {"f"};
  // 0,1,0,2,1: at capacity 2 the access to 2 evicts 1 (LRU), so the final
  // 1 misses; the middle 0 hits.
  Append(&log, 0, {0, 1, 0, 2, 1});
  CacheSimPoint point = SimulateLruCache(log, 2);
  EXPECT_EQ(point.hits, 1u);
  EXPECT_EQ(point.misses, 4u);
}

TEST(IoAuditLruTest, WritesInstallBlocksButNeverCountAsHits) {
  AuditLogData log;
  log.files = {"f"};
  Append(&log, 0, {0, 1}, /*is_write=*/true);
  Append(&log, 0, {0, 1});  // reads served by the just-written blocks
  CacheSimPoint point = SimulateLruCache(log, 4);
  EXPECT_EQ(point.hits, 2u);
  EXPECT_EQ(point.misses, 0u);
}

TEST(IoAuditLruTest, CurveSkipsZeroBudgetsAndIsMonotone) {
  AuditLogData log;
  log.files = {"g"};
  for (int pass = 0; pass < 3; ++pass) Append(&log, 0, {0, 1, 2, 3});
  auto curve = CacheSavingsCurve(log, {0, 1, 2, 4, 8});
  ASSERT_EQ(curve.size(), 4u);
  for (size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].hits, curve[i - 1].hits);
  }
  EXPECT_EQ(curve.back().hits, 8u);  // everything after pass 1 is cached
}

class IoAuditFileTest : public TempDirTest {};

TEST_F(IoAuditFileTest, WriteLoadRoundTrip) {
  AuditLogData log;
  log.files = {"/tmp/with space/g.edges", "/tmp/plain.edges"};
  Append(&log, 0, {0, 1, 2});
  Append(&log, 1, {5}, /*is_write=*/true);
  AuditBudgetRecord budget;
  budget.algorithm = "1PB-SCC";
  budget.model = "3-scans-per-iter";
  budget.bound_ios = 1000;
  budget.measured_ios = 250;
  budget.ratio = 0.25;
  budget.pass = true;
  budget.dataset = "/tmp/with space/g.edges";
  log.budgets.push_back(budget);

  const std::string path = NewPath(".audit");
  ASSERT_OK(WriteAuditLog(log, path));
  AuditLogData loaded;
  ASSERT_OK(LoadAuditLog(path, &loaded));

  ASSERT_EQ(loaded.files.size(), 2u);
  EXPECT_EQ(loaded.files[0], "/tmp/with space/g.edges");
  ASSERT_EQ(loaded.accesses.size(), 4u);
  EXPECT_EQ(loaded.accesses[0].file_id, 0u);
  EXPECT_EQ(loaded.accesses[3].file_id, 1u);
  EXPECT_EQ(loaded.accesses[3].block, 5u);
  EXPECT_TRUE(loaded.accesses[3].is_write);
  EXPECT_EQ(loaded.accesses[2].seq, 2u);
  ASSERT_EQ(loaded.budgets.size(), 1u);
  EXPECT_EQ(loaded.budgets[0].algorithm, "1PB-SCC");
  EXPECT_EQ(loaded.budgets[0].model, "3-scans-per-iter");
  EXPECT_EQ(loaded.budgets[0].bound_ios, 1000u);
  EXPECT_EQ(loaded.budgets[0].measured_ios, 250u);
  EXPECT_NEAR(loaded.budgets[0].ratio, 0.25, 1e-9);
  EXPECT_TRUE(loaded.budgets[0].pass);
  EXPECT_EQ(loaded.budgets[0].dataset, "/tmp/with space/g.edges");
}

TEST_F(IoAuditFileTest, LoadRejectsGarbage) {
  const std::string path = NewPath(".audit");
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("not an audit log\n", f);
  std::fclose(f);
  AuditLogData log;
  EXPECT_TRUE(LoadAuditLog(path, &log).IsCorruption());
  EXPECT_TRUE(LoadAuditLog(NewPath(".missing"), &log).IsIoError());
}

class BlockAccessLogTest : public TempDirTest {};

TEST_F(BlockAccessLogTest, BlockFileRecordsAccessesWhenInstalled) {
  const size_t block_size = 512;
  const std::string path = NewPath(".blk");
  BlockAccessLog log;
  SetBlockAccessLog(&log);
  std::vector<char> block(block_size, 'x');
  {
    std::unique_ptr<BlockFile> file;
    ASSERT_OK(BlockFile::Open(path, BlockFile::Mode::kWrite, block_size,
                              nullptr, &file));
    for (int i = 0; i < 3; ++i) ASSERT_OK(file->AppendBlock(block.data()));
  }
  {
    std::unique_ptr<BlockFile> file;
    ASSERT_OK(BlockFile::Open(path, BlockFile::Mode::kRead, block_size,
                              nullptr, &file));
    ASSERT_OK(file->ReadBlock(2, block.data()));
    ASSERT_OK(file->ReadBlock(0, block.data()));
  }
  SetBlockAccessLog(nullptr);

  AuditLogData data = log.Snapshot();
  ASSERT_EQ(data.files.size(), 1u);  // same path interned once per mode
  EXPECT_EQ(data.files[0], path);
  ASSERT_EQ(data.accesses.size(), 5u);
  EXPECT_TRUE(data.accesses[0].is_write);
  EXPECT_EQ(data.accesses[1].block, 1u);
  EXPECT_FALSE(data.accesses[3].is_write);
  EXPECT_EQ(data.accesses[3].block, 2u);
  EXPECT_EQ(data.accesses[4].block, 0u);
  for (uint64_t i = 0; i < data.accesses.size(); ++i) {
    EXPECT_EQ(data.accesses[i].seq, i);
  }
}

TEST_F(BlockAccessLogTest, CapturedAtOpenNotPerAccess) {
  // A file opened before the log is installed never reports into it.
  const size_t block_size = 256;
  const std::string path = NewPath(".blk");
  std::vector<char> block(block_size, 'y');
  {
    std::unique_ptr<BlockFile> file;
    ASSERT_OK(BlockFile::Open(path, BlockFile::Mode::kWrite, block_size,
                              nullptr, &file));
    BlockAccessLog log;
    SetBlockAccessLog(&log);
    ASSERT_OK(file->AppendBlock(block.data()));
    SetBlockAccessLog(nullptr);
    EXPECT_EQ(log.access_count(), 0u);
  }
}

TEST_F(BlockAccessLogTest, AuditIsStrictlyOptIn) {
  // The headline guarantee: running with the sink installed changes no
  // I/O counter, and running without it records nothing.
  PlantedSccSpec spec;
  spec.node_count = 800;
  spec.avg_degree = 4.0;
  spec.components = {{50, 2}, {10, 6}};
  spec.seed = 7;
  const std::string path = NewPath(".edges");
  ASSERT_OK(GeneratePlantedSccFile(spec, path, 4096, nullptr));

  SemiExternalOptions options;
  options.scratch_block_size = 4096;

  SccResult bare_result;
  RunStats bare;
  ASSERT_EQ(GetBlockAccessLog(), nullptr);
  ASSERT_OK(RunScc(SccAlgorithm::kOnePhaseBatch, path, options,
                   &bare_result, &bare));

  BlockAccessLog log;
  SetBlockAccessLog(&log);
  SccResult audited_result;
  RunStats audited;
  Status st = RunScc(SccAlgorithm::kOnePhaseBatch, path, options,
                     &audited_result, &audited);
  SetBlockAccessLog(nullptr);
  ASSERT_OK(st);

  EXPECT_TRUE(bare.io == audited.io)
      << "audited: " << audited.io.Format()
      << " bare: " << bare.io.Format();
  EXPECT_TRUE(bare_result == audited_result);
  // And the log saw exactly the run's block traffic.
  EXPECT_EQ(log.access_count(), audited.io.TotalBlockIos());
}

}  // namespace
}  // namespace ioscc
