// The buffer manager (io/buffer_manager.h): block-identity width, the
// single-flight load protocol, clock eviction against the simulator,
// pin/unpin latches, dirty-page write-back, and the concurrency side of
// the conformance contract — with N scanner threads sharing one
// manager, the real hit/miss counts still equal the audit-log replay
// (SimulateCache) at every budget, policy, and thread count, because
// the cache transition and the audit record are one atomic step.

#include <atomic>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "io/block_file.h"
#include "io/buffer_manager.h"
#include "obs/io_audit.h"
#include "tests/test_util.h"
#include "util/thread_pool.h"

namespace ioscc {
namespace {

using testing_util::TempDirTest;

std::vector<char> FilledBlock(size_t block_size, char fill) {
  return std::vector<char>(block_size, fill);
}

// --- Satellite 1: block identity is a real (uint32, uint64) pair ------
//
// The PR-4 cache keyed blocks as (file_id << 40) | block, which aliases
// once block >= 2^40 or file_id >= 2^24. These are regression tests for
// both overflow directions, in the real manager and in the simulator.

TEST(BufferManagerKeyTest, BlocksPast2To40DoNotAliasAcrossFiles) {
  BufferManager mgr(4, EvictionPolicy::kLru, /*read_ahead=*/false);
  const uint32_t a = mgr.RegisterFile("a.edges");
  const uint32_t b = mgr.RegisterFile("b.edges");
  const uint64_t big = 1ull << 40;

  // Under the packed key, (a, 2^40) and (b, 0) collided when b == a + 1.
  ASSERT_EQ(b, a + 1);
  auto block_a = FilledBlock(64, 'A');
  auto block_b = FilledBlock(64, 'B');
  mgr.Install(a, big, block_a.data(), 64, /*is_write=*/false);
  mgr.Install(b, 0, block_b.data(), 64, /*is_write=*/false);
  EXPECT_EQ(mgr.resident_blocks(), 2u);

  std::vector<char> buf(64);
  ASSERT_TRUE(mgr.Lookup(a, big, buf.data(), 64));
  EXPECT_EQ(buf[0], 'A');
  ASSERT_TRUE(mgr.Lookup(b, 0, buf.data(), 64));
  EXPECT_EQ(buf[0], 'B');
  // Neighbouring huge blocks of one file stay distinct too.
  EXPECT_FALSE(mgr.Contains(a, big + 1));
}

TEST(BufferManagerKeyTest, SimulatorKeepsWideIdentitiesDistinct) {
  // Two distinct blocks that the packed key folded together, accessed
  // alternately twice: a correct budget-2 replay holds both resident
  // and hits on the second round; an aliasing replay would see one
  // block read four times and report three hits.
  for (const auto& pair :
       std::vector<std::pair<BlockId, BlockId>>{
           {{0, 1ull << 40}, {1, 0}},          // block overflow
           {{1u << 24, 5}, {0, 5}},            // file-id overflow
           {{3, (1ull << 40) + 7}, {4, 7}}}) { // both off by one file
    AuditLogData log;
    uint64_t seq = 0;
    for (int round = 0; round < 2; ++round) {
      for (const BlockId& id : {pair.first, pair.second}) {
        log.accesses.push_back({id.file_id, id.block, false, seq++});
      }
    }
    for (CacheSimPolicy policy :
         {CacheSimPolicy::kLru, CacheSimPolicy::kClock}) {
      const CacheSimPoint point = SimulateCache(log, 2, policy);
      EXPECT_EQ(point.hits, 2u);
      EXPECT_EQ(point.misses, 2u);
    }
  }
}

// --- Clock eviction semantics -----------------------------------------

TEST(BufferManagerClockTest, SweepGivesSecondChanceThenEvictsOldest) {
  BufferManager mgr(2, EvictionPolicy::kClock, false);
  const uint32_t f = mgr.RegisterFile("a.edges");
  auto block = FilledBlock(64, 'k');
  mgr.Install(f, 0, block.data(), 64, false);
  mgr.Install(f, 1, block.data(), 64, false);
  // Both frames enter with their reference bit set; the first sweep
  // clears both, wraps, and evicts the oldest (block 0) — never the
  // newcomer.
  mgr.Install(f, 2, block.data(), 64, false);
  EXPECT_EQ(mgr.stats().evictions, 1u);
  EXPECT_FALSE(mgr.Contains(f, 0));
  EXPECT_TRUE(mgr.Contains(f, 1));
  EXPECT_TRUE(mgr.Contains(f, 2));
}

TEST(BufferManagerClockTest, LegacyProtocolMatchesClockSimulator) {
  // A deterministic scrambled access sequence, replayed through the real
  // clock manager (legacy Lookup/Install protocol) and through
  // SimulateClockCache: the counts must agree at every budget. The LCG
  // keeps the sequence fixed across runs.
  std::vector<uint64_t> blocks;
  uint64_t state = 12345;
  for (int i = 0; i < 400; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    blocks.push_back((state >> 33) % 17);
  }
  for (uint64_t budget : {1u, 3u, 8u, 64u}) {
    SCOPED_TRACE("budget=" + std::to_string(budget));
    BufferManager mgr(budget, EvictionPolicy::kClock, false);
    const uint32_t f = mgr.RegisterFile("a.edges");
    AuditLogData log;
    uint64_t seq = 0;
    std::vector<char> buf(64);
    auto fill = FilledBlock(64, 'r');
    for (uint64_t b : blocks) {
      log.accesses.push_back({0, b, false, seq++});
      if (!mgr.Lookup(f, b, buf.data(), 64)) {
        mgr.Install(f, b, fill.data(), 64, /*is_write=*/false);
      }
    }
    const CacheSimPoint sim = SimulateClockCache(log, budget);
    EXPECT_EQ(mgr.stats().hits, sim.hits);
    EXPECT_EQ(mgr.stats().misses, sim.misses);
    EXPECT_EQ(mgr.stats().hits + mgr.stats().misses, blocks.size());
  }
}

// --- Satellite 2: single-flight loads ---------------------------------

TEST(BufferManagerSingleFlightTest, ConcurrentColdReadsLoadExactlyOnce) {
  for (EvictionPolicy policy :
       {EvictionPolicy::kLru, EvictionPolicy::kClock}) {
    BufferManager mgr(4, policy, false);
    const uint32_t f = mgr.RegisterFile("a.edges");
    constexpr int kThreads = 8;
    std::atomic<int> ready{0};
    std::atomic<int> loads{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&] {
        ready.fetch_add(1);
        while (ready.load() < kThreads) std::this_thread::yield();
        std::vector<char> buf(64, '?');
        const BufferManager::ReadOutcome outcome =
            mgr.BeginRead(f, 7, buf.data(), 64, nullptr, 0);
        if (outcome == BufferManager::ReadOutcome::kLoad) {
          loads.fetch_add(1);
          // Hold the token long enough that the other threads pile onto
          // the wait path rather than racing past a finished load.
          std::this_thread::sleep_for(std::chrono::milliseconds(20));
          auto bytes = FilledBlock(64, 'z');
          mgr.FinishLoad(f, 7, bytes.data(), 64, nullptr, 0);
        } else {
          // A waiter was woken by the loader (or arrived after it) and
          // must observe the fully loaded bytes, never a torn page.
          for (char c : buf) EXPECT_EQ(c, 'z');
        }
      });
    }
    for (std::thread& th : threads) th.join();
    // The double-miss bug this protocol fixes: with Lookup-then-Install
    // every cold racer counted its own miss. Here the block was loaded
    // exactly once and everyone else hit.
    EXPECT_EQ(loads.load(), 1);
    EXPECT_EQ(mgr.stats().misses, 1u);
    EXPECT_EQ(mgr.stats().hits, static_cast<uint64_t>(kThreads - 1));
  }
}

TEST(BufferManagerSingleFlightTest, AbortPassesTheTokenToAWaiter) {
  BufferManager mgr(4, EvictionPolicy::kLru, false);
  const uint32_t f = mgr.RegisterFile("a.edges");
  std::vector<char> buf(64);
  ASSERT_EQ(mgr.BeginRead(f, 0, buf.data(), 64, nullptr, 0),
            BufferManager::ReadOutcome::kLoad);
  std::atomic<bool> waiter_loaded{false};
  std::thread waiter([&] {
    std::vector<char> wbuf(64);
    const BufferManager::ReadOutcome outcome =
        mgr.BeginRead(f, 0, wbuf.data(), 64, nullptr, 0);
    // After the first loader aborts (failed physical read), the waiter
    // is promoted to loader instead of spinning forever.
    ASSERT_EQ(outcome, BufferManager::ReadOutcome::kLoad);
    waiter_loaded.store(true);
    auto bytes = FilledBlock(64, 'w');
    mgr.FinishLoad(f, 0, bytes.data(), 64, nullptr, 0);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(waiter_loaded.load());
  mgr.AbortLoad(f, 0);
  waiter.join();
  EXPECT_TRUE(waiter_loaded.load());
  EXPECT_EQ(mgr.stats().misses, 1u);  // the abort itself counted nothing
}

// --- Pin/unpin, latches, and write-back -------------------------------

TEST(BufferManagerPinTest, PinIsAccessTransparentAndBlocksEviction) {
  BufferManager mgr(1, EvictionPolicy::kLru, false);
  const uint32_t f = mgr.RegisterFile("a.edges");
  PageHandle pin = mgr.Pin(f, 0, 64, PinMode::kShared, [](void* dst) {
    std::memset(dst, 'p', 64);
    return true;
  });
  ASSERT_TRUE(pin.valid());
  EXPECT_EQ(static_cast<const char*>(pin.data())[0], 'p');
  // The pin loaded the page without touching the conformance counters.
  EXPECT_EQ(mgr.stats().hits, 0u);
  EXPECT_EQ(mgr.stats().misses, 0u);
  EXPECT_EQ(mgr.pinned_blocks(), 1u);

  // Budget 1 is full of pinned data: a miss on another block may run the
  // manager transiently over budget but must never evict the pinned
  // frame or invalidate its pointer.
  auto other = FilledBlock(64, 'q');
  mgr.Install(f, 1, other.data(), 64, false);
  EXPECT_TRUE(mgr.Contains(f, 0));
  EXPECT_EQ(static_cast<const char*>(pin.data())[0], 'p');

  pin.Release();
  EXPECT_FALSE(pin.valid());
  EXPECT_EQ(mgr.pinned_blocks(), 0u);
  // With the pin gone the frame is evictable again and the budget
  // recovers on the next install.
  mgr.Install(f, 2, other.data(), 64, false);
  EXPECT_EQ(mgr.resident_blocks(), 1u);
}

TEST(BufferManagerPinTest, PinAbsentWithoutLoaderFails) {
  BufferManager mgr(2, EvictionPolicy::kLru, false);
  const uint32_t f = mgr.RegisterFile("a.edges");
  PageHandle pin = mgr.Pin(f, 0, 64, PinMode::kShared);
  EXPECT_FALSE(pin.valid());
  PageHandle failed = mgr.Pin(f, 0, 64, PinMode::kExclusive,
                              [](void*) { return false; });
  EXPECT_FALSE(failed.valid());
  EXPECT_EQ(mgr.resident_blocks(), 0u);
}

TEST(BufferManagerPinTest, SharedPinsCoexistExclusiveWaits) {
  BufferManager mgr(4, EvictionPolicy::kClock, false);
  const uint32_t f = mgr.RegisterFile("a.edges");
  auto loader = [](void* dst) {
    std::memset(dst, 's', 64);
    return true;
  };
  PageHandle first = mgr.Pin(f, 0, 64, PinMode::kShared, loader);
  PageHandle second = mgr.Pin(f, 0, 64, PinMode::kShared, loader);
  ASSERT_TRUE(first.valid());
  ASSERT_TRUE(second.valid());
  EXPECT_EQ(first.data(), second.data());  // one frame, two shared pins

  std::atomic<bool> exclusive_granted{false};
  std::thread writer([&] {
    PageHandle ex = mgr.Pin(f, 0, 64, PinMode::kExclusive, loader);
    ASSERT_TRUE(ex.valid());
    exclusive_granted.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(exclusive_granted.load());  // still blocked by the shares
  first.Release();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(exclusive_granted.load());  // one share is enough to block
  second.Release();
  writer.join();
  EXPECT_TRUE(exclusive_granted.load());
}

TEST(BufferManagerPinTest, ExclusivePinBlocksReadersUntilReleased) {
  BufferManager mgr(4, EvictionPolicy::kLru, false);
  const uint32_t f = mgr.RegisterFile("a.edges");
  PageHandle ex = mgr.Pin(f, 0, 64, PinMode::kExclusive, [](void* dst) {
    std::memset(dst, 'x', 64);
    return true;
  });
  ASSERT_TRUE(ex.valid());

  std::atomic<bool> read_done{false};
  std::vector<char> buf(64, '?');
  std::thread reader([&] {
    // BeginRead on an exclusively pinned block must wait: copying now
    // could observe the page mid-mutation.
    EXPECT_EQ(mgr.BeginRead(f, 0, buf.data(), 64, nullptr, 0),
              BufferManager::ReadOutcome::kHit);
    read_done.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(read_done.load());
  std::memset(ex.data(), 'y', 64);  // full-page mutation under the latch
  ex.Release();
  reader.join();
  ASSERT_TRUE(read_done.load());
  for (char c : buf) EXPECT_EQ(c, 'y');  // never a torn page
}

TEST(BufferManagerPinTest, DirtyPagesWriteBackOnFlushAndEviction) {
  struct WriteBack {
    uint32_t file_id;
    uint64_t block;
    std::vector<char> bytes;
  };
  std::vector<WriteBack> written;
  BufferManager mgr(1, EvictionPolicy::kLru, false);
  mgr.set_page_writer([&](uint32_t file_id, uint64_t block,
                          const void* data, size_t size) {
    const char* bytes = static_cast<const char*>(data);
    written.push_back({file_id, block, {bytes, bytes + size}});
  });
  const uint32_t f = mgr.RegisterFile("a.edges");

  {
    PageHandle ex = mgr.Pin(f, 0, 64, PinMode::kExclusive, [](void* dst) {
      std::memset(dst, '0', 64);
      return true;
    });
    ASSERT_TRUE(ex.valid());
    std::memset(ex.data(), 'D', 64);
    ex.MarkDirty();
  }
  EXPECT_EQ(mgr.FlushDirty(), 1u);
  ASSERT_EQ(written.size(), 1u);
  EXPECT_EQ(written[0].file_id, f);
  EXPECT_EQ(written[0].block, 0u);
  EXPECT_EQ(written[0].bytes, FilledBlock(64, 'D'));
  EXPECT_EQ(mgr.FlushDirty(), 0u);  // dirty bit cleared by the flush
  EXPECT_EQ(mgr.stats().write_backs, 1u);

  // Evicting a dirty page also writes it back, without an explicit
  // flush: dirty block 0 is the budget-1 victim of installing block 1.
  {
    PageHandle ex = mgr.Pin(f, 0, 64, PinMode::kExclusive);
    ASSERT_TRUE(ex.valid());
    std::memset(ex.data(), 'E', 64);
    ex.MarkDirty();
  }
  auto other = FilledBlock(64, 'o');
  mgr.Install(f, 1, other.data(), 64, false);
  ASSERT_EQ(written.size(), 2u);
  EXPECT_EQ(written[1].block, 0u);
  EXPECT_EQ(written[1].bytes, FilledBlock(64, 'E'));
  EXPECT_EQ(mgr.stats().write_backs, 2u);
}

TEST(BufferManagerPinTest, SharedPinCannotMarkDirty) {
  BufferManager mgr(2, EvictionPolicy::kLru, false);
  uint64_t write_backs = 0;
  mgr.set_page_writer([&](uint32_t, uint64_t, const void*, size_t) {
    ++write_backs;
  });
  const uint32_t f = mgr.RegisterFile("a.edges");
  PageHandle shared = mgr.Pin(f, 0, 64, PinMode::kShared, [](void* dst) {
    std::memset(dst, 's', 64);
    return true;
  });
  ASSERT_TRUE(shared.valid());
  shared.MarkDirty();  // no-op: a shared pin cannot have mutated the page
  shared.Release();
  EXPECT_EQ(mgr.FlushDirty(), 0u);
  EXPECT_EQ(write_backs, 0u);
}

// --- Satellites 2 + 4: multi-scanner conformance and stress -----------
//
// The acceptance matrix: scanner threads share one manager and one
// audit log through real BlockFiles; for both policies at budgets
// {1, 4, 64} with 1 and 4 threads, the manager's real hit/miss counts
// equal SimulateCache replaying the run's own audit log, the logical
// ledger is exact at every setting, and single-flight keeps physical
// reads equal to misses.

class BufferManagerIoTest : public TempDirTest {
 protected:
  static constexpr size_t kBlock = 512;
  static constexpr uint64_t kBlocks = 24;
  static constexpr int kPasses = 3;

  std::string WriteBlockFile() {
    const std::string path = NewPath(".blk");
    std::unique_ptr<BlockFile> writer;
    EXPECT_OK(BlockFile::Open(path, BlockFile::Mode::kWrite, kBlock,
                              nullptr, &writer));
    for (uint64_t i = 0; i < kBlocks; ++i) {
      auto block = FilledBlock(kBlock, BlockByte(i));
      EXPECT_OK(writer->AppendBlock(block.data()));
    }
    EXPECT_OK(writer->Flush());
    return path;
  }

  static char BlockByte(uint64_t block) {
    return static_cast<char>('A' + block % 23);
  }

  // Each scanner opens its own BlockFile and makes kPasses wrapped
  // passes starting at a thread-specific offset (so threads contend on
  // different blocks at any instant). Every block read is checked for
  // uniform content: a torn page — half old, half new bytes — fails.
  void Scan(const std::string& path, int thread_index, IoStats* stats) {
    std::unique_ptr<BlockFile> reader;
    ASSERT_OK(BlockFile::Open(path, BlockFile::Mode::kRead, kBlock, stats,
                              &reader));
    std::vector<char> buf(kBlock);
    for (int pass = 0; pass < kPasses; ++pass) {
      for (uint64_t i = 0; i < kBlocks; ++i) {
        const uint64_t block =
            (i + static_cast<uint64_t>(thread_index) * 5) % kBlocks;
        ASSERT_OK(reader->ReadBlock(block, buf.data()));
        for (char c : buf) ASSERT_EQ(c, BlockByte(block));
      }
    }
  }
};

TEST_F(BufferManagerIoTest, RealCountsMatchReplayAcrossPolicyBudgetThreads) {
  const std::string path = WriteBlockFile();
  for (EvictionPolicy policy :
       {EvictionPolicy::kLru, EvictionPolicy::kClock}) {
    const CacheSimPolicy sim_policy = policy == EvictionPolicy::kClock
                                          ? CacheSimPolicy::kClock
                                          : CacheSimPolicy::kLru;
    for (uint64_t budget : {1u, 4u, 64u}) {
      for (int thread_count : {1, 4}) {
        SCOPED_TRACE("policy=" +
                     std::string(policy == EvictionPolicy::kClock ? "clock"
                                                                  : "lru") +
                     " budget=" + std::to_string(budget) +
                     " threads=" + std::to_string(thread_count));
        BlockAccessLog log;
        BufferManager mgr(budget, policy, /*read_ahead=*/false);
        SetBlockAccessLog(&log);
        SetBufferManager(&mgr);
        std::vector<IoStats> stats(thread_count);
        std::vector<std::thread> scanners;
        for (int t = 0; t < thread_count; ++t) {
          scanners.emplace_back(
              [&, t] { Scan(path, t, &stats[t]); });
        }
        for (std::thread& th : scanners) th.join();
        SetBufferManager(nullptr);
        SetBlockAccessLog(nullptr);

        // The simulator is the spec, at every thread count: the audit
        // stream is recorded in cache-transition order, so its replay
        // reproduces the real counts exactly.
        const CacheSimPoint sim =
            SimulateCache(log.Snapshot(), budget, sim_policy);
        EXPECT_EQ(mgr.stats().hits, sim.hits);
        EXPECT_EQ(mgr.stats().misses, sim.misses);

        // The logical ledger is exact — byte-identical across every
        // budget/policy/thread setting — and single-flight makes every
        // miss exactly one physical read.
        IoStats total;
        for (const IoStats& s : stats) {
          total.blocks_read += s.blocks_read;
          total.bytes_read += s.bytes_read;
          total.physical_blocks_read += s.physical_blocks_read;
          total.cache_hits += s.cache_hits;
        }
        const uint64_t logical =
            static_cast<uint64_t>(thread_count) * kPasses * kBlocks;
        EXPECT_EQ(total.blocks_read, logical);
        EXPECT_EQ(total.bytes_read, logical * kBlock);
        EXPECT_EQ(total.cache_hits, sim.hits);
        EXPECT_EQ(total.physical_blocks_read, sim.misses);
        EXPECT_EQ(total.physical_blocks_read + total.cache_hits, logical);
      }
    }
  }
}

TEST_F(BufferManagerIoTest, AsyncPrefetchScannersStayConformant) {
  // The stress shape CI runs under TSan: four scanners, the async
  // prefetcher pool behind them, and a small clock-policy manager, all
  // racing on one file. Conformance (real counts == replay) and page
  // integrity must survive; prefetcher fills are physical-only, so the
  // logical ledger is still exact.
  const std::string path = WriteBlockFile();
  BlockAccessLog log;
  BufferManager mgr(4, EvictionPolicy::kClock);
  mgr.set_prefetch_depth(4);
  ThreadPool pool(4);
  SetIoThreadPool(&pool);
  SetBlockAccessLog(&log);
  SetBufferManager(&mgr);
  constexpr int kThreads = 4;
  std::vector<IoStats> stats(kThreads);
  std::vector<std::thread> scanners;
  for (int t = 0; t < kThreads; ++t) {
    scanners.emplace_back([&, t] { Scan(path, t, &stats[t]); });
  }
  for (std::thread& th : scanners) th.join();
  SetBufferManager(nullptr);
  SetBlockAccessLog(nullptr);
  SetIoThreadPool(nullptr);

  const CacheSimPoint sim =
      SimulateCache(log.Snapshot(), 4, CacheSimPolicy::kClock);
  EXPECT_EQ(mgr.stats().hits, sim.hits);
  EXPECT_EQ(mgr.stats().misses, sim.misses);
  uint64_t logical = 0;
  for (const IoStats& s : stats) logical += s.blocks_read;
  EXPECT_EQ(logical, static_cast<uint64_t>(kThreads) * kPasses * kBlocks);
  EXPECT_EQ(mgr.stats().hits + mgr.stats().misses, logical);
}

TEST_F(BufferManagerIoTest, EvictionNeverDropsPinnedPagesUnderContention) {
  // Scanners churn a budget-1 manager while pinned pages are held and
  // mutated under exclusive latches; the pins must survive the eviction
  // pressure with their bytes and pointers intact.
  const std::string path = WriteBlockFile();
  BufferManager mgr(1, EvictionPolicy::kClock, false);
  SetBufferManager(&mgr);
  // Pin a page of a file the scanners never touch: an exclusive latch
  // on a scanned block would (correctly) park the scanners until
  // release, which is not what this test is about.
  const uint32_t f = mgr.RegisterFile("pinned.scratch");
  PageHandle pinned = mgr.Pin(f, 0, kBlock, PinMode::kExclusive,
                              [](void* dst) {
                                std::memset(dst, '!', kBlock);
                                return true;
                              });
  ASSERT_TRUE(pinned.valid());
  void* const stable_ptr = pinned.data();

  std::vector<IoStats> stats(2);
  std::vector<std::thread> scanners;
  for (int t = 0; t < 2; ++t) {
    scanners.emplace_back([&, t] { Scan(path, t + 1, &stats[t]); });
  }
  std::memset(pinned.data(), '#', kBlock);
  for (std::thread& th : scanners) th.join();
  SetBufferManager(nullptr);

  EXPECT_GT(mgr.stats().evictions, 0u);
  EXPECT_TRUE(mgr.Contains(f, 0));
  EXPECT_EQ(pinned.data(), stable_ptr);
  for (size_t i = 0; i < kBlock; ++i) {
    ASSERT_EQ(static_cast<const char*>(pinned.data())[i], '#');
  }
  pinned.Release();
}

// --- Satellite 3: prefetch depth is release/acquire -------------------

TEST(BufferManagerTest, PrefetchDepthRoundTripsAndClampsNegatives) {
  BufferManager mgr(2, EvictionPolicy::kLru, /*read_ahead=*/true);
  EXPECT_EQ(mgr.prefetch_depth(), 1);  // default: synchronous double buffer
  mgr.set_prefetch_depth(6);
  EXPECT_EQ(mgr.prefetch_depth(), 6);
  mgr.set_prefetch_depth(-3);
  EXPECT_EQ(mgr.prefetch_depth(), 0);
  BufferManager no_ahead(2, EvictionPolicy::kLru, /*read_ahead=*/false);
  no_ahead.set_prefetch_depth(6);
  EXPECT_EQ(no_ahead.prefetch_depth(), 0);  // read_ahead off wins
}

}  // namespace
}  // namespace ioscc
