// Unit tests for the I/O substrate: block files, edge files, I/O
// accounting exactness, external sort, and corruption handling.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <vector>

#include <gtest/gtest.h>

#include "io/block_file.h"
#include "io/edge_file.h"
#include "io/external_sort.h"
#include "io/io_stats.h"
#include "io/temp_dir.h"
#include "tests/test_util.h"
#include "util/random.h"

namespace ioscc {
namespace {

using testing_util::TempDirTest;

class BlockFileTest : public TempDirTest {};

TEST_F(BlockFileTest, WriteThenReadBlocks) {
  const size_t block_size = 512;
  const std::string path = NewPath(".blk");
  IoStats stats;
  {
    std::unique_ptr<BlockFile> file;
    ASSERT_OK(BlockFile::Open(path, BlockFile::Mode::kWrite, block_size,
                              &stats, &file));
    std::vector<char> block(block_size);
    for (int i = 0; i < 5; ++i) {
      std::fill(block.begin(), block.end(), static_cast<char>('a' + i));
      ASSERT_OK(file->AppendBlock(block.data()));
    }
    ASSERT_OK(file->Flush());
    EXPECT_EQ(file->block_count(), 5u);
  }
  EXPECT_EQ(stats.blocks_written, 5u);
  EXPECT_EQ(stats.bytes_written, 5 * block_size);

  std::unique_ptr<BlockFile> file;
  ASSERT_OK(BlockFile::Open(path, BlockFile::Mode::kRead, block_size,
                            &stats, &file));
  EXPECT_EQ(file->block_count(), 5u);
  std::vector<char> block(block_size);
  // Random access: read block 3 then block 1.
  ASSERT_OK(file->ReadBlock(3, block.data()));
  EXPECT_EQ(block[0], 'd');
  ASSERT_OK(file->ReadBlock(1, block.data()));
  EXPECT_EQ(block[block_size - 1], 'b');
  EXPECT_EQ(stats.blocks_read, 2u);
}

TEST_F(BlockFileTest, ReadPastEndFails) {
  const std::string path = NewPath(".blk");
  IoStats stats;
  {
    std::unique_ptr<BlockFile> file;
    ASSERT_OK(BlockFile::Open(path, BlockFile::Mode::kWrite, 256, &stats,
                              &file));
    std::vector<char> block(256, 0);
    ASSERT_OK(file->AppendBlock(block.data()));
  }
  std::unique_ptr<BlockFile> file;
  ASSERT_OK(
      BlockFile::Open(path, BlockFile::Mode::kRead, 256, &stats, &file));
  std::vector<char> block(256);
  EXPECT_TRUE(file->ReadBlock(1, block.data()).IsInvalidArgument());
}

TEST_F(BlockFileTest, NonBlockAlignedFileIsCorruption) {
  const std::string path = NewPath(".blk");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fwrite("xyz", 1, 3, f);
  std::fclose(f);
  std::unique_ptr<BlockFile> file;
  Status st = BlockFile::Open(path, BlockFile::Mode::kRead, 256, nullptr,
                              &file);
  EXPECT_TRUE(st.IsCorruption()) << st.ToString();
}

TEST_F(BlockFileTest, MissingFileIsIoError) {
  std::unique_ptr<BlockFile> file;
  Status st = BlockFile::Open(NewPath(".nope"), BlockFile::Mode::kRead, 256,
                              nullptr, &file);
  EXPECT_TRUE(st.IsIoError());
}

TEST_F(BlockFileTest, WrongModeOperationsFail) {
  const std::string path = NewPath(".blk");
  std::unique_ptr<BlockFile> writer;
  ASSERT_OK(BlockFile::Open(path, BlockFile::Mode::kWrite, 256, nullptr,
                            &writer));
  std::vector<char> block(256, 0);
  EXPECT_TRUE(writer->ReadBlock(0, block.data()).IsInvalidArgument());
  ASSERT_OK(writer->AppendBlock(block.data()));
  writer.reset();
  std::unique_ptr<BlockFile> reader;
  ASSERT_OK(BlockFile::Open(path, BlockFile::Mode::kRead, 256, nullptr,
                            &reader));
  EXPECT_TRUE(reader->AppendBlock(block.data()).IsInvalidArgument());
}

// ---------------------------------------------------------------------------

class EdgeFileTest : public TempDirTest {};

TEST_F(EdgeFileTest, RoundTripSmall) {
  const std::vector<Edge> edges = {{0, 1}, {1, 2}, {2, 0}};
  const std::string path = NewPath(".edges");
  ASSERT_OK(WriteEdgeFile(path, 3, edges, 512, nullptr));

  std::vector<Edge> read;
  uint64_t node_count = 0;
  ASSERT_OK(ReadAllEdges(path, &read, &node_count, nullptr));
  EXPECT_EQ(node_count, 3u);
  EXPECT_EQ(read, edges);
}

TEST_F(EdgeFileTest, RoundTripEmpty) {
  const std::string path = NewPath(".edges");
  ASSERT_OK(WriteEdgeFile(path, 9, {}, 512, nullptr));
  std::vector<Edge> read;
  uint64_t node_count = 0;
  ASSERT_OK(ReadAllEdges(path, &read, &node_count, nullptr));
  EXPECT_EQ(node_count, 9u);
  EXPECT_TRUE(read.empty());
}

TEST_F(EdgeFileTest, RoundTripMultiBlock) {
  // 512-byte blocks hold 64 edges; write 1000 edges -> 16 data blocks.
  std::vector<Edge> edges;
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    edges.push_back(Edge{static_cast<NodeId>(rng.Uniform(500)),
                         static_cast<NodeId>(rng.Uniform(500))});
  }
  const std::string path = NewPath(".edges");
  ASSERT_OK(WriteEdgeFile(path, 500, edges, 512, nullptr));
  std::vector<Edge> read;
  ASSERT_OK(ReadAllEdges(path, &read, nullptr, nullptr));
  EXPECT_EQ(read, edges);
}

TEST_F(EdgeFileTest, HeaderInfoMatches) {
  const std::string path = NewPath(".edges");
  std::vector<Edge> edges(100, Edge{1, 2});
  ASSERT_OK(WriteEdgeFile(path, 7, edges, 512, nullptr));
  EdgeFileInfo info;
  ASSERT_OK(ReadEdgeFileInfo(path, &info));
  EXPECT_EQ(info.node_count, 7u);
  EXPECT_EQ(info.edge_count, 100u);
  EXPECT_EQ(info.block_size, 512u);
  // 512-byte blocks hold 64 edges: 100 edges -> 2 data blocks + header.
  EXPECT_EQ(info.TotalBlocks(), 3u);
}

TEST_F(EdgeFileTest, ScanIoCountIsExact) {
  // One full scan must cost exactly TotalBlocks() block reads, and a
  // second scan (Reset) costs the same again — this is the accounting the
  // paper's "# of I/Os" columns rely on.
  std::vector<Edge> edges(1000, Edge{1, 2});
  const std::string path = NewPath(".edges");
  ASSERT_OK(WriteEdgeFile(path, 3, edges, 512, nullptr));
  EdgeFileInfo info;
  ASSERT_OK(ReadEdgeFileInfo(path, &info));

  IoStats stats;
  std::unique_ptr<EdgeScanner> scanner;
  ASSERT_OK(EdgeScanner::Open(path, &stats, &scanner));
  EXPECT_EQ(stats.blocks_read, 1u);  // header
  Edge edge;
  uint64_t count = 0;
  while (scanner->Next(&edge)) ++count;
  ASSERT_OK(scanner->status());
  EXPECT_EQ(count, 1000u);
  EXPECT_EQ(stats.blocks_read, info.TotalBlocks());

  scanner->Reset();
  while (scanner->Next(&edge)) ++count;
  EXPECT_EQ(count, 2000u);
  EXPECT_EQ(stats.blocks_read, 2 * info.TotalBlocks() - 1);  // header once
}

TEST_F(EdgeFileTest, WriterCountsBlockWrites) {
  IoStats stats;
  std::unique_ptr<EdgeWriter> writer;
  const std::string path = NewPath(".edges");
  ASSERT_OK(EdgeWriter::Create(path, 10, 512, &stats, &writer));
  for (int i = 0; i < 130; ++i) {
    ASSERT_OK(writer->Add(Edge{0, 1}));  // 64 edges per 512-byte block
  }
  ASSERT_OK(writer->Finish());
  // header + 3 data blocks (64+64+2) + final header rewrite.
  EXPECT_EQ(stats.blocks_written, 5u);
}

TEST_F(EdgeFileTest, AddAfterFinishFails) {
  std::unique_ptr<EdgeWriter> writer;
  const std::string path = NewPath(".edges");
  ASSERT_OK(EdgeWriter::Create(path, 2, 512, nullptr, &writer));
  ASSERT_OK(writer->Add(Edge{0, 1}));
  ASSERT_OK(writer->Finish());
  EXPECT_TRUE(writer->Add(Edge{1, 0}).IsInvalidArgument());
}

TEST_F(EdgeFileTest, BadMagicIsCorruption) {
  const std::string path = NewPath(".edges");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  std::vector<char> junk(1024, 'J');
  std::fwrite(junk.data(), 1, junk.size(), f);
  std::fclose(f);
  std::unique_ptr<EdgeScanner> scanner;
  Status st = EdgeScanner::Open(path, nullptr, &scanner);
  EXPECT_TRUE(st.IsCorruption()) << st.ToString();
}

TEST_F(EdgeFileTest, TruncatedFileIsCorruption) {
  const std::string path = NewPath(".edges");
  std::vector<Edge> edges(1000, Edge{1, 2});
  ASSERT_OK(WriteEdgeFile(path, 3, edges, 512, nullptr));
  // Chop off the last data block (keep block alignment so only the
  // header/edge-count consistency check can catch it).
  std::filesystem::resize_file(path, 512 * 2);
  std::unique_ptr<EdgeScanner> scanner;
  Status st = EdgeScanner::Open(path, nullptr, &scanner);
  EXPECT_TRUE(st.IsCorruption()) << st.ToString();
}

TEST_F(EdgeFileTest, TruncatedHeaderIsCorruption) {
  const std::string path = NewPath(".edges");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  std::fwrite("IOSCC", 1, 5, f);
  std::fclose(f);
  EdgeFileInfo info;
  EXPECT_TRUE(ReadEdgeFileInfo(path, &info).IsCorruption());
}

TEST_F(EdgeFileTest, VariousBlockSizesRoundTrip) {
  std::vector<Edge> edges;
  Rng rng(23);
  for (int i = 0; i < 700; ++i) {
    edges.push_back(Edge{static_cast<NodeId>(rng.Uniform(100)),
                         static_cast<NodeId>(rng.Uniform(100))});
  }
  for (size_t block_size : {64u, 512u, 4096u, 65536u}) {
    const std::string path = NewPath(".edges");
    ASSERT_OK(WriteEdgeFile(path, 100, edges, block_size, nullptr));
    EdgeFileInfo info;
    ASSERT_OK(ReadEdgeFileInfo(path, &info));
    EXPECT_EQ(info.block_size, block_size);
    std::vector<Edge> read;
    ASSERT_OK(ReadAllEdges(path, &read, nullptr, nullptr));
    EXPECT_EQ(read, edges) << "block size " << block_size;
  }
}

TEST_F(EdgeFileTest, ResetMidScanRestartsFromTheTop) {
  std::vector<Edge> edges;
  for (NodeId v = 0; v < 200; ++v) edges.push_back({v, (v + 1) % 200});
  const std::string path = NewPath(".edges");
  ASSERT_OK(WriteEdgeFile(path, 200, edges, 512, nullptr));
  std::unique_ptr<EdgeScanner> scanner;
  ASSERT_OK(EdgeScanner::Open(path, nullptr, &scanner));
  Edge edge;
  for (int i = 0; i < 37; ++i) ASSERT_TRUE(scanner->Next(&edge));
  scanner->Reset();
  std::vector<Edge> read;
  while (scanner->Next(&edge)) read.push_back(edge);
  ASSERT_OK(scanner->status());
  EXPECT_EQ(read, edges);
}

TEST_F(EdgeFileTest, OutOfRangeEndpointIsCorruption) {
  // Algorithms size per-node arrays from the header; a payload edge whose
  // endpoint exceeds node_count must be rejected at scan time, not crash.
  const std::string path = NewPath(".edges");
  ASSERT_OK(WriteEdgeFile(path, 3, {{0, 1}, {7, 2}}, 512, nullptr));
  std::unique_ptr<EdgeScanner> scanner;
  ASSERT_OK(EdgeScanner::Open(path, nullptr, &scanner));
  Edge edge;
  EXPECT_TRUE(scanner->Next(&edge));  // (0, 1) is fine
  EXPECT_FALSE(scanner->Next(&edge));
  EXPECT_TRUE(scanner->status().IsCorruption())
      << scanner->status().ToString();
}

TEST_F(EdgeFileTest, ReverseFlipsEveryEdge) {
  const std::vector<Edge> edges = {{0, 1}, {2, 3}, {1, 0}};
  const std::string path = NewPath(".edges");
  const std::string reversed = NewPath(".rev");
  ASSERT_OK(WriteEdgeFile(path, 4, edges, 512, nullptr));
  ASSERT_OK(ReverseEdgeFile(path, reversed, nullptr));
  std::vector<Edge> read;
  ASSERT_OK(ReadAllEdges(reversed, &read, nullptr, nullptr));
  ASSERT_EQ(read.size(), edges.size());
  for (size_t i = 0; i < edges.size(); ++i) {
    EXPECT_EQ(read[i].from, edges[i].to);
    EXPECT_EQ(read[i].to, edges[i].from);
  }
}

TEST_F(EdgeFileTest, RejectsBadBlockSize) {
  std::unique_ptr<EdgeWriter> writer;
  EXPECT_TRUE(EdgeWriter::Create(NewPath(".edges"), 1, 7, nullptr, &writer)
                  .IsInvalidArgument());
  EXPECT_TRUE(
      EdgeWriter::Create(NewPath(".edges"), 1, 16, nullptr, &writer)
          .IsInvalidArgument());  // too small for the header
}

// EdgePayloadBytesPerBlock must never wrap: a v2 block no bigger than the
// checksum trailer carries zero payload, not a huge size_t, and writers
// reject such sizes outright rather than dividing by a zero
// EdgesPerBlock() downstream.
TEST_F(EdgeFileTest, DegenerateBlockSizesCarryNoPayload) {
  // At or below the v2 trailer: the old code computed
  // block_size - kEdgeBlockTrailerBytes on size_t and wrapped.
  EXPECT_EQ(EdgePayloadBytesPerBlock(kEdgeFormatV2, 0), 0u);
  EXPECT_EQ(EdgePayloadBytesPerBlock(kEdgeFormatV2,
                                     kEdgeBlockTrailerBytes),
            0u);
  EXPECT_EQ(EdgePayloadBytesPerBlock(kEdgeFormatV2,
                                     kEdgeBlockTrailerBytes - 1),
            0u);
  // Above the trailer but below one record: still zero, not wrapped.
  EXPECT_EQ(EdgePayloadBytesPerBlock(kEdgeFormatV2,
                                     kEdgeBlockTrailerBytes + 1),
            0u);
  EXPECT_EQ(EdgePayloadBytesPerBlock(kEdgeFormatV1, 0), 0u);
  EXPECT_EQ(EdgePayloadBytesPerBlock(kEdgeFormatV1, kEdgeRecordBytes - 1),
            0u);
  // Sanity: healthy sizes are unchanged.
  EXPECT_EQ(EdgePayloadBytesPerBlock(kEdgeFormatV1, 512), 512u);
  EXPECT_EQ(EdgePayloadBytesPerBlock(kEdgeFormatV2, 512),
            (512 - kEdgeBlockTrailerBytes) / kEdgeRecordBytes *
                kEdgeRecordBytes);

  // Writers refuse block sizes with no payload under the version.
  std::unique_ptr<EdgeWriter> writer;
  EXPECT_TRUE(EdgeWriter::Create(NewPath(".edges"), 1,
                                 kEdgeBlockTrailerBytes, nullptr, &writer)
                  .IsInvalidArgument());
  EXPECT_TRUE(EdgeWriter::Create(NewPath(".edges"), 1,
                                 kEdgeBlockTrailerBytes, nullptr, &writer,
                                 kEdgeFormatV2)
                  .IsInvalidArgument());
}

// ---------------------------------------------------------------------------

class ExternalSortTest : public TempDirTest {};

TEST_F(ExternalSortTest, SortsBySourceAcrossManyRuns) {
  std::vector<Edge> edges;
  Rng rng(17);
  for (int i = 0; i < 5000; ++i) {
    edges.push_back(Edge{static_cast<NodeId>(rng.Uniform(1000)),
                         static_cast<NodeId>(rng.Uniform(1000))});
  }
  const std::string in = NewPath(".edges");
  const std::string out = NewPath(".sorted");
  ASSERT_OK(WriteEdgeFile(in, 1000, edges, 512, nullptr));

  ExternalSortOptions options;
  options.memory_budget_bytes = 256 * sizeof(Edge);  // ~20 runs
  ASSERT_OK(SortEdgeFile(in, out, options, dir_.get(), nullptr));

  std::vector<Edge> sorted;
  ASSERT_OK(ReadAllEdges(out, &sorted, nullptr, nullptr));
  std::vector<Edge> expected = edges;
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(sorted, expected);
}

TEST_F(ExternalSortTest, SortsByTarget) {
  std::vector<Edge> edges = {{5, 0}, {1, 3}, {2, 0}, {0, 9}};
  const std::string in = NewPath(".edges");
  const std::string out = NewPath(".sorted");
  ASSERT_OK(WriteEdgeFile(in, 10, edges, 512, nullptr));
  ExternalSortOptions options;
  options.order = EdgeOrder::kByTarget;
  ASSERT_OK(SortEdgeFile(in, out, options, dir_.get(), nullptr));
  std::vector<Edge> sorted;
  ASSERT_OK(ReadAllEdges(out, &sorted, nullptr, nullptr));
  std::vector<Edge> expected = edges;
  std::sort(expected.begin(), expected.end(), OrderEdgeByTarget());
  EXPECT_EQ(sorted, expected);
}

TEST_F(ExternalSortTest, DedupAndSelfLoopFilters) {
  std::vector<Edge> edges = {{1, 2}, {1, 2}, {3, 3}, {0, 1}, {1, 2}};
  const std::string in = NewPath(".edges");
  const std::string out = NewPath(".sorted");
  ASSERT_OK(WriteEdgeFile(in, 4, edges, 512, nullptr));
  ExternalSortOptions options;
  options.dedup = true;
  options.drop_self_loops = true;
  ASSERT_OK(SortEdgeFile(in, out, options, dir_.get(), nullptr));
  std::vector<Edge> sorted;
  ASSERT_OK(ReadAllEdges(out, &sorted, nullptr, nullptr));
  const std::vector<Edge> expected = {{0, 1}, {1, 2}};
  EXPECT_EQ(sorted, expected);
}

TEST_F(ExternalSortTest, SingleRunWhenBudgetCoversInput) {
  std::vector<Edge> edges = {{3, 1}, {0, 2}, {3, 0}, {1, 1}};
  const std::string in = NewPath(".edges");
  const std::string out = NewPath(".sorted");
  ASSERT_OK(WriteEdgeFile(in, 4, edges, 512, nullptr));
  ExternalSortOptions options;  // default 64 MiB budget: one run
  ASSERT_OK(SortEdgeFile(in, out, options, dir_.get(), nullptr));
  std::vector<Edge> sorted;
  ASSERT_OK(ReadAllEdges(out, &sorted, nullptr, nullptr));
  std::vector<Edge> expected = edges;
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(sorted, expected);
}

TEST_F(ExternalSortTest, EmptyInput) {
  const std::string in = NewPath(".edges");
  const std::string out = NewPath(".sorted");
  ASSERT_OK(WriteEdgeFile(in, 5, {}, 512, nullptr));
  ASSERT_OK(SortEdgeFile(in, out, ExternalSortOptions(), dir_.get(),
                         nullptr));
  std::vector<Edge> sorted;
  uint64_t node_count = 0;
  ASSERT_OK(ReadAllEdges(out, &sorted, &node_count, nullptr));
  EXPECT_TRUE(sorted.empty());
  EXPECT_EQ(node_count, 5u);
}

class TempDirLifecycleTest : public ::testing::Test {};

TEST_F(TempDirLifecycleTest, RemovesContentsOnDestruction) {
  std::string kept_path;
  {
    std::unique_ptr<TempDir> dir;
    ASSERT_OK(TempDir::Create("ioscc-lifecycle", &dir));
    kept_path = dir->path();
    std::FILE* f = std::fopen(dir->FilePath("junk").c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fclose(f);
    EXPECT_TRUE(std::filesystem::exists(kept_path));
  }
  EXPECT_FALSE(std::filesystem::exists(kept_path));
}

TEST_F(TempDirLifecycleTest, NewFilePathsAreUnique) {
  std::unique_ptr<TempDir> dir;
  ASSERT_OK(TempDir::Create("ioscc-unique", &dir));
  EXPECT_NE(dir->NewFilePath(".a"), dir->NewFilePath(".a"));
}

}  // namespace
}  // namespace ioscc
