// A minimal recursive-descent JSON parser used by tests to validate the
// well-formedness of obs/ output (trace files, JSONL run reports) by
// parsing it back. Not a production parser: accepts strict JSON only, no
// comments, and keeps numbers as doubles.

#ifndef IOSCC_TESTS_JSON_TEST_UTIL_H_
#define IOSCC_TESTS_JSON_TEST_UTIL_H_

#include <cctype>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace ioscc {
namespace testing_util {

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool bool_value = false;
  double number = 0.0;
  std::string string_value;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }
  bool is_string() const { return type == Type::kString; }
  bool is_number() const { return type == Type::kNumber; }

  // Object member access; returns a shared null value when absent so
  // lookups can chain without crashing (tests then assert on type).
  const JsonValue& operator[](const std::string& key) const {
    static const JsonValue kNullValue;
    auto it = object.find(key);
    return it == object.end() ? kNullValue : it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool Parse(JsonValue* out) {
    pos_ = 0;
    if (!ParseValue(out)) return false;
    SkipSpace();
    return pos_ == text_.size();  // no trailing garbage
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  bool ConsumeLiteral(const char* literal) {
    size_t n = 0;
    while (literal[n] != '\0') ++n;
    if (text_.compare(pos_, n, literal) != 0) return false;
    pos_ += n;
    return true;
  }

  bool ParseValue(JsonValue* out) {
    SkipSpace();
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"':
        out->type = JsonValue::Type::kString;
        return ParseString(&out->string_value);
      case 't':
        out->type = JsonValue::Type::kBool;
        out->bool_value = true;
        return ConsumeLiteral("true");
      case 'f':
        out->type = JsonValue::Type::kBool;
        out->bool_value = false;
        return ConsumeLiteral("false");
      case 'n':
        out->type = JsonValue::Type::kNull;
        return ConsumeLiteral("null");
      default:
        return ParseNumber(out);
    }
  }

  bool ParseObject(JsonValue* out) {
    out->type = JsonValue::Type::kObject;
    if (!Consume('{')) return false;
    SkipSpace();
    if (Consume('}')) return true;
    while (true) {
      SkipSpace();
      std::string key;
      if (!ParseString(&key)) return false;
      if (!Consume(':')) return false;
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->object.emplace(std::move(key), std::move(value));
      if (Consume(',')) continue;
      return Consume('}');
    }
  }

  bool ParseArray(JsonValue* out) {
    out->type = JsonValue::Type::kArray;
    if (!Consume('[')) return false;
    SkipSpace();
    if (Consume(']')) return true;
    while (true) {
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->array.push_back(std::move(value));
      if (Consume(',')) continue;
      return Consume(']');
    }
  }

  bool ParseString(std::string* out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') return false;
    ++pos_;
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return false;
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return false;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= h - '0';
            else if (h >= 'a' && h <= 'f') code |= h - 'a' + 10;
            else if (h >= 'A' && h <= 'F') code |= h - 'A' + 10;
            else return false;
          }
          // Tests only escape control characters; keep it one byte.
          out->push_back(static_cast<char>(code));
          break;
        }
        default:
          return false;
      }
    }
    return false;  // unterminated
  }

  bool ParseNumber(JsonValue* out) {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    out->type = JsonValue::Type::kNumber;
    out->number = std::strtod(text_.substr(start, pos_ - start).c_str(),
                              nullptr);
    return true;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

inline bool ParseJson(const std::string& text, JsonValue* out) {
  return JsonParser(text).Parse(out);
}

}  // namespace testing_util
}  // namespace ioscc

#endif  // IOSCC_TESTS_JSON_TEST_UTIL_H_
