// Cost-model conformance: every driver's measured block I/O must stay
// within its analytic theory.h-derived bound, the harness must surface the
// verdict on RunOutcome and in the JSONL run report, and the bound math
// itself must be exercised on hand-computed cases.

#include <string>

#include <gtest/gtest.h>

#include "gen/generators.h"
#include "harness/io_budget.h"
#include "harness/runner.h"
#include "harness/theory.h"
#include "io/edge_file.h"
#include "obs/run_report.h"
#include "scc/algorithms.h"
#include "tests/test_util.h"

namespace ioscc {
namespace {

using testing_util::TempDirTest;

TEST(IoBudgetMathTest, ScanBlocksMatchesOnDiskLayout) {
  // 1000 edges * kEdgeRecordBytes at 4 KiB blocks: ceil(8000/4096) = 2
  // data blocks + 1 header.
  EXPECT_EQ(TheoryScanBlocks(1000, 4096),
            (kEdgeRecordBytes * 1000 + 4095) / 4096 + 1);
  EXPECT_EQ(TheoryScanBlocks(0, 4096), 1u);  // header only
}

TEST(IoBudgetMathTest, BoundScalesWithIterations) {
  RunStats one_iter;
  one_iter.iterations = 1;
  RunStats five_iter;
  five_iter.iterations = 5;
  const uint64_t m = 10000, block = 4096;
  for (SccAlgorithm algorithm : AllAlgorithms()) {
    const uint64_t b1 = IoBudgetBoundIos(algorithm, m, block, one_iter);
    const uint64_t b5 = IoBudgetBoundIos(algorithm, m, block, five_iter);
    EXPECT_GT(b5, b1) << AlgorithmName(algorithm);
    EXPECT_GT(b1, 0u) << AlgorithmName(algorithm);
    EXPECT_NE(IoBudgetModelName(algorithm), nullptr);
  }
}

class IoBudgetConformanceTest : public TempDirTest {};

TEST_F(IoBudgetConformanceTest, EveryAlgorithmStaysWithinItsBound) {
  // Same planted workload as IntegrationTest.GeneratorToDiskToAllAlgorithms
  // so the non-convergence carve-outs below stay in sync with it.
  PlantedSccSpec spec;
  spec.node_count = 1500;
  spec.avg_degree = 4.0;
  spec.components = {{100, 2}, {10, 12}};
  spec.seed = 2024;
  const std::string path = NewPath(".edges");
  ASSERT_OK(GeneratePlantedSccFile(spec, path, 4096, nullptr));

  SemiExternalOptions options;
  options.scratch_block_size = 4096;
  options.memory_budget_bytes = 1 << 16;

  for (SccAlgorithm algorithm : AllAlgorithms()) {
    SCOPED_TRACE(AlgorithmName(algorithm));
    RunOutcome outcome = RunAlgorithmOnFile(algorithm, path, options);
    if (outcome.status.IsIncomplete() &&
        (algorithm == SccAlgorithm::kTwoPhase ||
         algorithm == SccAlgorithm::kEm)) {
      continue;  // documented non-convergence cases (see integration_test)
    }
    ASSERT_OK(outcome.status);
    ASSERT_TRUE(outcome.io_budget.has_value());
    const IoBudgetVerdict& v = *outcome.io_budget;
    EXPECT_TRUE(v.pass) << v.Format();
    EXPECT_LE(v.ratio, 1.0) << v.Format();
    EXPECT_LE(v.measured_ios, v.bound_ios) << v.Format();
    EXPECT_EQ(v.measured_ios, outcome.stats.io.TotalBlockIos());
    EXPECT_FALSE(v.model.empty());
  }
}

TEST_F(IoBudgetConformanceTest, VerdictFlowsIntoJsonReport) {
  PlantedSccSpec spec;
  spec.node_count = 500;
  spec.components = {{25, 4}};
  spec.seed = 3;
  const std::string path = NewPath(".edges");
  ASSERT_OK(GeneratePlantedSccFile(spec, path, 4096, nullptr));

  SemiExternalOptions options;
  options.scratch_block_size = 4096;
  RunOutcome outcome =
      RunAlgorithmOnFile(SccAlgorithm::kOnePhaseBatch, path, options);
  ASSERT_OK(outcome.status);
  ASSERT_TRUE(outcome.io_budget.has_value());

  RunReportEntry entry = MakeReportEntry("test", SccAlgorithm::kOnePhaseBatch,
                                         path, outcome);
  EXPECT_TRUE(entry.has_io_budget);
  EXPECT_EQ(entry.io_budget_measured_ios, outcome.io_budget->measured_ios);
  const std::string json = RunReportEntryToJson(entry);
  EXPECT_NE(json.find("\"io_budget\":{"), std::string::npos) << json;
  EXPECT_NE(json.find("\"model\":\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"pass\":true"), std::string::npos) << json;
}

TEST_F(IoBudgetConformanceTest, VerdictConvertsToAuditRecord) {
  IoBudgetVerdict v;
  v.model = "3-scans-per-iter";
  v.bound_ios = 100;
  v.measured_ios = 40;
  v.ratio = 0.4;
  v.pass = true;
  AuditBudgetRecord rec =
      ToAuditBudgetRecord(v, SccAlgorithm::kOnePhaseBatch, "g.edges");
  EXPECT_EQ(rec.algorithm, AlgorithmName(SccAlgorithm::kOnePhaseBatch));
  EXPECT_EQ(rec.model, v.model);
  EXPECT_EQ(rec.bound_ios, 100u);
  EXPECT_EQ(rec.measured_ios, 40u);
  EXPECT_TRUE(rec.pass);
  EXPECT_EQ(rec.dataset, "g.edges");
}

}  // namespace
}  // namespace ioscc
