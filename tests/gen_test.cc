// Generator property tests: planted components must be exactly the SCCs
// of the output, citation graphs must be DAGs before noise, and
// everything must be deterministic in the seed.

#include <algorithm>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "gen/generators.h"
#include "graph/digraph.h"
#include "scc/tarjan.h"
#include "tests/test_util.h"

namespace ioscc {
namespace {

TEST(PlantedSccTest, SpecAccounting) {
  PlantedSccSpec spec;
  spec.node_count = 1000;
  spec.avg_degree = 3.0;
  spec.components = {{50, 2}, {10, 5}};
  EXPECT_EQ(spec.PlantedNodes(), 150u);
  EXPECT_EQ(spec.TargetEdges(), 3000u);
}

TEST(PlantedSccTest, RejectsOversizedComponents) {
  PlantedSccSpec spec;
  spec.node_count = 100;
  spec.components = {{60, 2}};
  std::vector<Edge> edges;
  EXPECT_TRUE(GeneratePlantedSccEdges(spec, &edges).IsInvalidArgument());
}

TEST(PlantedSccTest, RejectsSizeOneComponents) {
  PlantedSccSpec spec;
  spec.node_count = 100;
  spec.components = {{1, 3}};
  std::vector<Edge> edges;
  EXPECT_TRUE(GeneratePlantedSccEdges(spec, &edges).IsInvalidArgument());
}

TEST(PlantedSccTest, DeterministicInSeed) {
  PlantedSccSpec spec;
  spec.node_count = 500;
  spec.avg_degree = 4.0;
  spec.components = {{20, 3}};
  spec.seed = 77;
  std::vector<Edge> a, b;
  ASSERT_OK(GeneratePlantedSccEdges(spec, &a));
  ASSERT_OK(GeneratePlantedSccEdges(spec, &b));
  EXPECT_EQ(a, b);
  spec.seed = 78;
  ASSERT_OK(GeneratePlantedSccEdges(spec, &b));
  EXPECT_NE(a, b);
}

// The central generator property: the SCCs of the output are EXACTLY the
// planted components (filler edges respect the hidden condensation order,
// so they can never create or enlarge a component).
class PlantedExactnessTest : public ::testing::TestWithParam<int> {};

TEST_P(PlantedExactnessTest, SccsAreExactlyThePlantedComponents) {
  const int seed = GetParam();
  PlantedSccSpec spec;
  spec.node_count = 800;
  spec.avg_degree = 5.0;
  spec.components = {{64, 1}, {16, 4}, {4, 10}, {2, 15}};
  spec.seed = static_cast<uint64_t>(seed) * 1299709;
  std::vector<Edge> edges;
  ASSERT_OK(GeneratePlantedSccEdges(spec, &edges));
  EXPECT_EQ(edges.size(), spec.TargetEdges());

  SccResult scc =
      TarjanScc(Digraph(static_cast<NodeId>(spec.node_count), edges));
  // Histogram of component sizes >= 2 must match the spec exactly.
  std::map<uint32_t, uint32_t> histogram;
  for (uint32_t size : scc.ComponentSizes()) {
    if (size >= 2) ++histogram[size];
  }
  std::map<uint32_t, uint32_t> expected;
  for (const PlantedComponent& c : spec.components) {
    expected[static_cast<uint32_t>(c.size)] +=
        static_cast<uint32_t>(c.count);
  }
  EXPECT_EQ(histogram, expected);
}

INSTANTIATE_TEST_SUITE_P(Sweep, PlantedExactnessTest,
                         ::testing::Range(1, 21));

TEST(CitationTest, NoNoiseMeansDag) {
  CitationSpec spec;
  spec.node_count = 2000;
  spec.avg_degree = 4.0;
  spec.noise_fraction = 0.0;
  spec.seed = 5;
  std::vector<Edge> edges;
  ASSERT_OK(GenerateCitationEdges(spec, &edges));
  // Every edge cites an earlier node.
  for (const Edge& e : edges) EXPECT_LT(e.to, e.from);
  SccResult scc =
      TarjanScc(Digraph(static_cast<NodeId>(spec.node_count), edges));
  EXPECT_EQ(scc.ComponentCount(), spec.node_count);
}

TEST(CitationTest, NoiseCreatesSccs) {
  CitationSpec spec;
  spec.node_count = 2000;
  spec.avg_degree = 4.0;
  spec.noise_fraction = 0.10;
  spec.seed = 5;
  std::vector<Edge> edges;
  ASSERT_OK(GenerateCitationEdges(spec, &edges));
  SccResult scc =
      TarjanScc(Digraph(static_cast<NodeId>(spec.node_count), edges));
  EXPECT_LT(scc.ComponentCount(), spec.node_count);
  EXPECT_GT(scc.NodesInNontrivialSccs(), 0u);
}

TEST(UniformTest, EdgeCountAndBounds) {
  std::vector<Edge> edges;
  ASSERT_OK(GenerateUniformEdges(100, 500, 9, &edges));
  EXPECT_EQ(edges.size(), 500u);
  for (const Edge& e : edges) {
    EXPECT_LT(e.from, 100u);
    EXPECT_LT(e.to, 100u);
    EXPECT_NE(e.from, e.to);  // generator never emits self-loops
  }
}

TEST(PowerLawTest, HeavyTailAndBounds) {
  std::vector<Edge> edges;
  ASSERT_OK(GeneratePowerLawEdges(5000, 40000, 2.1, 7, &edges));
  EXPECT_EQ(edges.size(), 40000u);
  std::vector<uint32_t> out_degree(5000, 0);
  for (const Edge& e : edges) {
    ASSERT_LT(e.from, 5000u);
    ASSERT_LT(e.to, 5000u);
    EXPECT_NE(e.from, e.to);
    ++out_degree[e.from];
  }
  // Heavy tail: the heaviest hub (node 0) dwarfs the median node.
  std::vector<uint32_t> sorted = out_degree;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_GT(out_degree[0], 50u * std::max<uint32_t>(1, sorted[2500]));
}

TEST(PowerLawTest, RejectsBadExponent) {
  std::vector<Edge> edges;
  EXPECT_TRUE(
      GeneratePowerLawEdges(100, 10, 1.0, 1, &edges).IsInvalidArgument());
}

TEST(PowerLawTest, DeterministicInSeed) {
  std::vector<Edge> a, b;
  ASSERT_OK(GeneratePowerLawEdges(500, 2000, 2.2, 9, &a));
  ASSERT_OK(GeneratePowerLawEdges(500, 2000, 2.2, 9, &b));
  EXPECT_EQ(a, b);
}

TEST(WebspamSpecTest, CompositionMatchesTheRealGraph) {
  PlantedSccSpec spec = WebspamSpec(1'000'000, 10.0, 3);
  // Giant SCC ~64.8%, coverage ~80%.
  ASSERT_FALSE(spec.components.empty());
  EXPECT_NEAR(static_cast<double>(spec.components[0].size) /
                  spec.node_count,
              0.648, 0.001);
  EXPECT_NEAR(static_cast<double>(spec.PlantedNodes()) / spec.node_count,
              0.80, 0.02);
  EXPECT_LE(spec.PlantedNodes(), spec.node_count);
}

TEST(Table2SpecsTest, FamiliesMatchPaperStructure) {
  PlantedSccSpec massive = MassiveSccSpec(30000, 5.0, 400, 1);
  ASSERT_EQ(massive.components.size(), 1u);
  EXPECT_EQ(massive.components[0].size, 400u);
  EXPECT_EQ(massive.components[0].count, 1u);

  PlantedSccSpec large = LargeSccSpec(30000, 5.0, 80, 50, 1);
  EXPECT_EQ(large.components[0].count, 50u);

  PlantedSccSpec small = SmallSccSpec(30000, 5.0, 40, 100, 1);
  EXPECT_EQ(small.components[0].size, 40u);
  EXPECT_EQ(small.components[0].count, 100u);
}

}  // namespace
}  // namespace ioscc
