// Tests for text edge-list import/export.

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "io/edge_file.h"
#include "io/text_import.h"
#include "tests/test_util.h"

namespace ioscc {
namespace {

using testing_util::TempDirTest;

class TextImportTest : public TempDirTest {
 protected:
  std::string WriteText(const std::string& content) {
    std::string path = NewPath(".txt");
    std::FILE* f = std::fopen(path.c_str(), "w");
    EXPECT_NE(f, nullptr);
    std::fwrite(content.data(), 1, content.size(), f);
    std::fclose(f);
    return path;
  }
};

TEST_F(TextImportTest, BasicSnapFormat) {
  const std::string text = WriteText(
      "# Directed graph\n"
      "# FromNodeId\tToNodeId\n"
      "0\t1\n"
      "1\t2\n"
      "2\t0\n");
  const std::string edges = NewPath(".edges");
  TextImportResult result;
  TextImportOptions options;
  options.densify = false;
  ASSERT_OK(ImportTextEdges(text, edges, options, &result, nullptr));
  EXPECT_EQ(result.node_count, 3u);
  EXPECT_EQ(result.edge_count, 3u);
  EXPECT_EQ(result.comment_lines, 2u);

  std::vector<Edge> read;
  ASSERT_OK(ReadAllEdges(edges, &read, nullptr, nullptr));
  EXPECT_EQ(read, (std::vector<Edge>{{0, 1}, {1, 2}, {2, 0}}));
}

TEST_F(TextImportTest, DensifiesSparseIds) {
  const std::string text = WriteText(
      "1000000000000 5\n"
      "5 42\n"
      "42 1000000000000\n");
  const std::string edges = NewPath(".edges");
  TextImportResult result;
  ASSERT_OK(ImportTextEdges(text, edges, TextImportOptions(), &result,
                            nullptr));
  EXPECT_EQ(result.node_count, 3u);  // three distinct raw ids
  std::vector<Edge> read;
  ASSERT_OK(ReadAllEdges(edges, &read, nullptr, nullptr));
  // First-seen order: 1000000000000 -> 0, 5 -> 1, 42 -> 2.
  EXPECT_EQ(read, (std::vector<Edge>{{0, 1}, {1, 2}, {2, 0}}));
}

TEST_F(TextImportTest, RejectsHugeIdsWithoutDensify) {
  const std::string text = WriteText("1000000000000 5\n");
  TextImportOptions options;
  options.densify = false;
  TextImportResult result;
  EXPECT_TRUE(ImportTextEdges(text, NewPath(".edges"), options, &result,
                              nullptr)
                  .IsInvalidArgument());
}

TEST_F(TextImportTest, SelfLoopFilter) {
  const std::string text = WriteText("0 0\n0 1\n1 1\n");
  TextImportOptions options;
  options.densify = false;
  options.drop_self_loops = true;
  TextImportResult result;
  ASSERT_OK(ImportTextEdges(text, NewPath(".edges"), options, &result,
                            nullptr));
  EXPECT_EQ(result.edge_count, 1u);
  EXPECT_EQ(result.dropped_self_loops, 2u);
}

TEST_F(TextImportTest, MalformedLineIsCorruption) {
  const std::string text = WriteText("0 1\nhello world\n");
  TextImportResult result;
  Status st = ImportTextEdges(text, NewPath(".edges"), TextImportOptions(),
                              &result, nullptr);
  EXPECT_TRUE(st.IsCorruption()) << st.ToString();
}

TEST_F(TextImportTest, MissingSecondColumnIsCorruption) {
  const std::string text = WriteText("0\n");
  TextImportResult result;
  EXPECT_TRUE(ImportTextEdges(text, NewPath(".edges"),
                              TextImportOptions(), &result, nullptr)
                  .IsCorruption());
}

TEST_F(TextImportTest, EmptyFileIsEmptyGraph) {
  const std::string text = WriteText("# nothing here\n\n");
  const std::string edges = NewPath(".edges");
  TextImportResult result;
  ASSERT_OK(ImportTextEdges(text, edges, TextImportOptions(), &result,
                            nullptr));
  EXPECT_EQ(result.node_count, 0u);
  EXPECT_EQ(result.edge_count, 0u);
}

TEST_F(TextImportTest, RoundTripThroughExport) {
  const std::vector<Edge> original = {{0, 1}, {2, 3}, {1, 0}, {3, 3}};
  const std::string edges = WriteGraph(4, original);
  const std::string text = NewPath(".txt");
  ASSERT_OK(ExportTextEdges(edges, text, nullptr));
  const std::string edges2 = NewPath(".edges");
  TextImportOptions options;
  options.densify = false;
  TextImportResult result;
  ASSERT_OK(ImportTextEdges(text, edges2, options, &result, nullptr));
  std::vector<Edge> read;
  uint64_t node_count = 0;
  ASSERT_OK(ReadAllEdges(edges2, &read, &node_count, nullptr));
  EXPECT_EQ(read, original);
  EXPECT_EQ(node_count, 4u);
}

}  // namespace
}  // namespace ioscc
