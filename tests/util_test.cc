// Unit tests for the util layer: Status, Rng, Flags, Timer/Deadline.

#include <cstring>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "util/flags.h"
#include "util/random.h"
#include "util/status.h"
#include "util/timer.h"

namespace ioscc {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, FactoryConstructorsCarryCodeAndMessage) {
  Status st = Status::IoError("disk on fire");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsIoError());
  EXPECT_FALSE(st.IsCorruption());
  EXPECT_EQ(st.message(), "disk on fire");
  EXPECT_EQ(st.ToString(), "IoError: disk on fire");
}

TEST(StatusTest, AllCodesRoundTrip) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::OutOfMemoryBudget("x").IsOutOfMemoryBudget());
  EXPECT_TRUE(Status::Incomplete("x").IsIncomplete());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
}

TEST(StatusTest, EqualityComparesCodesOnly) {
  EXPECT_EQ(Status::IoError("a"), Status::IoError("b"));
  EXPECT_FALSE(Status::IoError("a") == Status::Corruption("a"));
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto inner = []() { return Status::NotFound("gone"); };
  auto outer = [&]() -> Status {
    IOSCC_RETURN_IF_ERROR(inner());
    return Status::Internal("unreachable");
  };
  EXPECT_TRUE(outer().IsNotFound());
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next64(), b.Next64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next64() == b.Next64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
  EXPECT_EQ(rng.Uniform(0), 0u);
  EXPECT_EQ(rng.Uniform(1), 0u);
}

TEST(RngTest, UniformCoversRange) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.Uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    uint64_t x = rng.UniformRange(5, 9);
    EXPECT_GE(x, 5u);
    EXPECT_LE(x, 9u);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(13);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, SeedZeroIsWellMixed) {
  Rng rng(0);
  // SplitMix seeding must not produce the all-zero degenerate state.
  EXPECT_NE(rng.Next64(), 0u);
  EXPECT_NE(rng.Next64(), rng.Next64());
}

TEST(FlagsTest, ParsesKeyValueAndBooleans) {
  const char* argv[] = {"prog", "--alpha=3",   "--name=x",
                        "--on", "--off=false", "pos1"};
  Flags flags = Flags::Parse(6, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetInt("alpha", 0), 3);
  EXPECT_EQ(flags.GetString("name", ""), "x");
  EXPECT_TRUE(flags.GetBool("on", false));
  EXPECT_FALSE(flags.GetBool("off", true));
  EXPECT_EQ(flags.GetInt("missing", 42), 42);
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "pos1");
}

TEST(FlagsTest, DoubleParsing) {
  const char* argv[] = {"prog", "--scale=0.25"};
  Flags flags = Flags::Parse(2, const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(flags.GetDouble("scale", 1.0), 0.25);
}

// Malformed numeric flag values are hard errors (exit 2), never a silent
// fallback to the default: --cache-blocks= running an uncached sweep and
// publishing its numbers is exactly the failure mode this forbids.
TEST(FlagsDeathTest, EmptyNumericValueIsFatal) {
  const char* argv[] = {"prog", "--cache-blocks="};
  Flags flags = Flags::Parse(2, const_cast<char**>(argv));
  EXPECT_EXIT((void)flags.GetInt("cache-blocks", 0),
              ::testing::ExitedWithCode(2), "invalid value");
  EXPECT_EXIT((void)flags.GetDouble("cache-blocks", 0.0),
              ::testing::ExitedWithCode(2), "invalid value");
}

TEST(FlagsDeathTest, MalformedNumericValueIsFatal) {
  const char* argv[] = {"prog", "--alpha=12x", "--scale=0.2.5",
                        "--beta=  ", "--gamma=1e999"};
  Flags flags = Flags::Parse(5, const_cast<char**>(argv));
  EXPECT_EXIT((void)flags.GetInt("alpha", 0),
              ::testing::ExitedWithCode(2), "invalid value for --alpha");
  EXPECT_EXIT((void)flags.GetDouble("scale", 1.0),
              ::testing::ExitedWithCode(2), "invalid value for --scale");
  EXPECT_EXIT((void)flags.GetInt("beta", 0),
              ::testing::ExitedWithCode(2), "expected an integer");
  // Out-of-range (strtod sets ERANGE) is malformed too.
  EXPECT_EXIT((void)flags.GetDouble("gamma", 1.0),
              ::testing::ExitedWithCode(2), "expected a number");
}

TEST(FlagsTest, WellFormedNumericValuesStillParse) {
  const char* argv[] = {"prog", "--a=-7", "--b=0", "--c=2.5", "--d=1e3"};
  Flags flags = Flags::Parse(5, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetInt("a", 0), -7);
  EXPECT_EQ(flags.GetInt("b", 9), 0);
  EXPECT_DOUBLE_EQ(flags.GetDouble("c", 0.0), 2.5);
  EXPECT_DOUBLE_EQ(flags.GetDouble("d", 0.0), 1000.0);
  // Absent flags still fall back to the default without dying.
  EXPECT_EQ(flags.GetInt("missing", 42), 42);
}

TEST(FlagsTest, UnusedFlagsDetectsTypos) {
  const char* argv[] = {"prog", "--sclae=0.25", "--seed=1"};
  Flags flags = Flags::Parse(3, const_cast<char**>(argv));
  (void)flags.GetInt("seed", 0);
  std::vector<std::string> unused = flags.UnusedFlags();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "sclae");
}

TEST(TimerTest, MeasuresElapsedTime) {
  Timer timer;
  volatile uint64_t sink = 0;
  for (int i = 0; i < 1000000; ++i) sink = sink + i;
  EXPECT_GE(timer.ElapsedSeconds(), 0.0);
  EXPECT_GE(timer.ElapsedMillis(), timer.ElapsedSeconds());
}

TEST(DeadlineTest, ZeroMeansNoDeadline) {
  Deadline deadline(0);
  EXPECT_FALSE(deadline.Expired());
}

TEST(DeadlineTest, NegativeMeansNoDeadline) {
  Deadline deadline(-1);
  EXPECT_FALSE(deadline.Expired());
}

TEST(DeadlineTest, TinyDeadlineExpires) {
  Deadline deadline(1e-9);
  volatile uint64_t sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  EXPECT_TRUE(deadline.Expired());
}

}  // namespace
}  // namespace ioscc
