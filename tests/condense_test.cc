// Tests for the condensation pipeline (DAG writing + topological levels).

#include <vector>

#include <gtest/gtest.h>

#include "scc/algorithms.h"
#include "scc/condense.h"
#include "io/edge_file.h"
#include "tests/test_util.h"

namespace ioscc {
namespace {

using testing_util::kPaperFigure1Nodes;
using testing_util::OracleFor;
using testing_util::PaperFigure1Edges;
using testing_util::TempDirTest;

class CondenseTest : public TempDirTest {};

TEST_F(CondenseTest, PaperFigure1Condensation) {
  const std::vector<Edge> edges = PaperFigure1Edges();
  const std::string graph = WriteGraph(kPaperFigure1Nodes, edges);
  const SccResult scc = OracleFor(kPaperFigure1Nodes, edges);

  const std::string dag = NewPath(".dag");
  CondensationStats stats;
  ASSERT_OK(WriteCondensation(graph, scc, dag, &stats, nullptr));
  EXPECT_EQ(stats.component_count, 6u);
  // 18 edges total; intra-SCC edges of {b,c,d,e} (5: bc,bd,ce,de,eb) and
  // {g,h,i,j} (5: gj,ji,ih,hg,gi) drop.
  EXPECT_EQ(stats.dropped_intra, 10u);
  EXPECT_EQ(stats.edge_count, 8u);

  // Every written edge connects two distinct component labels.
  std::vector<Edge> dag_edges;
  ASSERT_OK(ReadAllEdges(dag, &dag_edges, nullptr, nullptr));
  for (const Edge& e : dag_edges) {
    EXPECT_NE(e.from, e.to);
    EXPECT_EQ(scc.component[e.from], e.from);
    EXPECT_EQ(scc.component[e.to], e.to);
  }
}

TEST_F(CondenseTest, RejectsMismatchedPartition) {
  const std::string graph = WriteGraph(5, {{0, 1}});
  SccResult scc;
  scc.component = {0, 1, 2};  // wrong size
  CondensationStats stats;
  EXPECT_TRUE(WriteCondensation(graph, scc, NewPath(".dag"), &stats,
                                nullptr)
                  .IsInvalidArgument());
}

TEST_F(CondenseTest, TopologicalLevelsOnChain) {
  // 0 -> 1 -> 2 -> 3: levels 0,1,2,3 after depth+1 relaxation scans plus
  // one confirming scan.
  std::vector<Edge> edges = {{0, 1}, {1, 2}, {2, 3}};
  const std::string dag = WriteGraph(4, edges);
  std::vector<uint32_t> levels;
  uint64_t scans = 0;
  ASSERT_OK(TopologicalLevels(dag, &levels, &scans, nullptr));
  EXPECT_EQ(levels, (std::vector<uint32_t>{0, 1, 2, 3}));
  EXPECT_GE(scans, 2u);
}

TEST_F(CondenseTest, TopologicalLevelsDetectsCycles) {
  std::vector<Edge> edges = {{0, 1}, {1, 0}};
  const std::string not_a_dag = WriteGraph(2, edges);
  std::vector<uint32_t> levels;
  EXPECT_TRUE(TopologicalLevels(not_a_dag, &levels, nullptr, nullptr)
                  .IsInvalidArgument());
}

TEST_F(CondenseTest, EndToEndPipeline) {
  // graph -> SCC -> condensation -> levels must respect every DAG edge.
  const std::vector<Edge> edges = PaperFigure1Edges();
  const std::string graph = WriteGraph(kPaperFigure1Nodes, edges);
  SccResult scc;
  RunStats run_stats;
  ASSERT_OK(RunScc(SccAlgorithm::kOnePhaseBatch, graph,
                   SemiExternalOptions(), &scc, &run_stats));
  const std::string dag = NewPath(".dag");
  ASSERT_OK(WriteCondensation(graph, scc, dag, nullptr, nullptr));
  std::vector<uint32_t> levels;
  ASSERT_OK(TopologicalLevels(dag, &levels, nullptr, nullptr));
  std::vector<Edge> dag_edges;
  ASSERT_OK(ReadAllEdges(dag, &dag_edges, nullptr, nullptr));
  for (const Edge& e : dag_edges) {
    EXPECT_LT(levels[e.from], levels[e.to]);
  }
}

}  // namespace
}  // namespace ioscc
