// The real block cache (io/block_cache.h): LRU mechanics against the
// simulator's documented semantics, read-ahead through BlockFile, and
// the headline conformance guarantee — a run's real hit/miss counts
// equal SimulateLruCache replaying that run's audit log at the same
// budget, while logical I/O and SCC output stay byte-identical at every
// budget.

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "io/block_cache.h"
#include "io/block_file.h"
#include "obs/io_audit.h"
#include "scc/algorithms.h"
#include "tests/test_util.h"

namespace ioscc {
namespace {

using testing_util::TempDirTest;

std::vector<char> FilledBlock(size_t block_size, char fill) {
  return std::vector<char>(block_size, fill);
}

TEST(BlockCacheTest, HitMissEvictionFollowSimulatorSemantics) {
  BlockCache cache(2, /*read_ahead=*/false);
  const uint32_t f = cache.RegisterFile("a.edges");
  std::vector<char> buf(64);

  // Cold lookup misses but counts nothing: the miss is charged at
  // Install, after the physical read succeeded, so a failed read can
  // never desync the counts from the audit log.
  EXPECT_FALSE(cache.Lookup(f, 0, buf.data(), 64));
  EXPECT_EQ(cache.stats().misses, 0u);

  auto b0 = FilledBlock(64, 'x');
  cache.Install(f, 0, b0.data(), 64, /*is_write=*/false);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.resident_blocks(), 1u);

  EXPECT_TRUE(cache.Lookup(f, 0, buf.data(), 64));
  EXPECT_EQ(buf[0], 'x');
  EXPECT_EQ(cache.stats().hits, 1u);

  // Fill past the budget: installs push in front of the promoted block
  // 0, so after installing 1 then 2 the LRU order is [2, 1, 0] and the
  // third install evicts block 0 — same transition the simulator makes.
  auto b1 = FilledBlock(64, 'y');
  auto b2 = FilledBlock(64, 'z');
  cache.Install(f, 1, b1.data(), 64, false);
  cache.Install(f, 2, b2.data(), 64, false);
  EXPECT_EQ(cache.resident_blocks(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_TRUE(cache.Lookup(f, 1, buf.data(), 64));
  EXPECT_TRUE(cache.Lookup(f, 2, buf.data(), 64));
  EXPECT_FALSE(cache.Lookup(f, 0, buf.data(), 64));
}

TEST(BlockCacheTest, WritesInstallAndPromoteWithoutCounting) {
  BlockCache cache(2, false);
  const uint32_t f = cache.RegisterFile("a.edges");
  auto b = FilledBlock(64, 'a');
  cache.Install(f, 0, b.data(), 64, /*is_write=*/false);
  cache.Install(f, 1, b.data(), 64, /*is_write=*/false);

  // A write refreshes content and promotes block 0 without touching
  // hit/miss counts — exactly the simulator's treatment of writes.
  auto w = FilledBlock(64, 'W');
  cache.Install(f, 0, w.data(), 64, /*is_write=*/true);
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.stats().hits, 0u);

  cache.Install(f, 2, b.data(), 64, /*is_write=*/false);
  std::vector<char> buf(64);
  EXPECT_TRUE(cache.Lookup(f, 0, buf.data(), 64));  // promoted, survived
  EXPECT_EQ(buf[0], 'W');
  EXPECT_FALSE(cache.Lookup(f, 1, buf.data(), 64));  // LRU tail, evicted
}

TEST(BlockCacheTest, ZeroBudgetCachesNothing) {
  BlockCache cache(0, false);
  const uint32_t f = cache.RegisterFile("a.edges");
  auto b = FilledBlock(64, 'q');
  cache.Install(f, 0, b.data(), 64, false);
  EXPECT_EQ(cache.resident_blocks(), 0u);
  EXPECT_EQ(cache.stats().misses, 1u);
  std::vector<char> buf(64);
  EXPECT_FALSE(cache.Lookup(f, 0, buf.data(), 64));
  EXPECT_EQ(cache.stats().hits, 0u);
}

TEST(BlockCacheTest, ContainsDoesNotPromote) {
  BlockCache cache(2, false);
  const uint32_t f = cache.RegisterFile("a.edges");
  auto b = FilledBlock(64, 'c');
  cache.Install(f, 0, b.data(), 64, false);
  cache.Install(f, 1, b.data(), 64, false);
  EXPECT_TRUE(cache.Contains(f, 0));
  // Block 0 is still the LRU tail despite the probe.
  cache.Install(f, 2, b.data(), 64, false);
  std::vector<char> buf(64);
  EXPECT_FALSE(cache.Lookup(f, 0, buf.data(), 64));
  EXPECT_TRUE(cache.Lookup(f, 1, buf.data(), 64));
}

TEST(BlockCacheTest, FilesAreDistinctAndPathsIntern) {
  BlockCache cache(4, false);
  const uint32_t a = cache.RegisterFile("a.edges");
  const uint32_t b = cache.RegisterFile("b.edges");
  EXPECT_NE(a, b);
  EXPECT_EQ(cache.RegisterFile("a.edges"), a);

  auto block = FilledBlock(64, '1');
  cache.Install(a, 0, block.data(), 64, false);
  std::vector<char> buf(64);
  EXPECT_FALSE(cache.Lookup(b, 0, buf.data(), 64));
  EXPECT_TRUE(cache.Lookup(a, 0, buf.data(), 64));
}

TEST(BlockCacheTest, SizeMismatchIsAMiss) {
  BlockCache cache(2, false);
  const uint32_t f = cache.RegisterFile("a.edges");
  auto b = FilledBlock(64, 'm');
  cache.Install(f, 0, b.data(), 64, false);
  // A lookup at a different block size never serves stale bytes; the
  // stale entry is dropped.
  std::vector<char> buf(128);
  EXPECT_FALSE(cache.Lookup(f, 0, buf.data(), 128));
  EXPECT_FALSE(cache.Contains(f, 0));
}

class BlockCacheIoTest : public TempDirTest {};

// A cold sequential scan through a cache-installed BlockFile double
// buffers: every block after the first is already in the prefetch
// buffer when the demand read arrives.
TEST_F(BlockCacheIoTest, SequentialScanIsServedByReadAhead) {
  const size_t kBlock = 512;
  const uint64_t kBlocks = 16;
  const std::string path = NewPath(".blk");
  {
    std::unique_ptr<BlockFile> writer;
    ASSERT_OK(BlockFile::Open(path, BlockFile::Mode::kWrite, kBlock,
                              nullptr, &writer));
    for (uint64_t i = 0; i < kBlocks; ++i) {
      auto b = FilledBlock(kBlock, static_cast<char>('a' + i));
      ASSERT_OK(writer->AppendBlock(b.data()));
    }
    ASSERT_OK(writer->Flush());
  }

  BlockCache cache(kBlocks);  // read-ahead on, everything fits
  SetBlockCache(&cache);
  IoStats stats;
  std::unique_ptr<BlockFile> reader;
  Status st =
      BlockFile::Open(path, BlockFile::Mode::kRead, kBlock, &stats, &reader);
  ASSERT_OK(st);
  std::vector<char> buf(kBlock);
  for (uint64_t i = 0; i < kBlocks; ++i) {
    ASSERT_OK(reader->ReadBlock(i, buf.data()));
    EXPECT_EQ(buf[0], static_cast<char>('a' + i));
  }
  // Cold pass: every block crossed the disk exactly once, all but the
  // first via the prefetch buffer. Logical counters are untouched by
  // how the bytes arrived.
  EXPECT_EQ(stats.blocks_read, kBlocks);
  EXPECT_EQ(stats.physical_blocks_read, kBlocks);
  EXPECT_EQ(stats.prefetch_hits, kBlocks - 1);
  EXPECT_EQ(stats.prefetched_blocks, kBlocks - 1);
  EXPECT_EQ(stats.cache_hits, 0u);

  // Second pass: the scan installed every block, so the LRU serves all
  // of it with zero new physical reads.
  for (uint64_t i = 0; i < kBlocks; ++i) {
    ASSERT_OK(reader->ReadBlock(i, buf.data()));
    EXPECT_EQ(buf[0], static_cast<char>('a' + i));
  }
  reader.reset();
  SetBlockCache(nullptr);
  EXPECT_EQ(stats.blocks_read, 2 * kBlocks);
  EXPECT_EQ(stats.physical_blocks_read, kBlocks);
  EXPECT_EQ(stats.cache_hits, kBlocks);
  EXPECT_EQ(cache.stats().hits, kBlocks);
  EXPECT_EQ(cache.stats().misses, kBlocks);
}

// End-to-end conformance: for one 2P-SCC run with both seams installed,
// the real cache's hit/miss counts must equal SimulateLruCache replaying
// that run's own audit log at the same budget — the simulator is the
// spec. Logical I/O and the SCC result must be identical at every
// budget, and the no-cache configuration must reproduce a bare run's
// IoStats field for field.
class BlockCacheConformanceTest : public TempDirTest {
 protected:
  struct RunOutcome {
    SccResult result;
    RunStats stats;
    AuditLogData log;
    BufferManager::Stats cache_stats;
  };

  void RunAtBudget(const std::string& path, uint64_t budget,
                   RunOutcome* out,
                   EvictionPolicy policy = EvictionPolicy::kLru) {
    SemiExternalOptions options;
    options.scratch_block_size = 512;
    BlockAccessLog log;
    std::unique_ptr<BufferManager> cache;
    SetBlockAccessLog(&log);
    if (budget > 0) {
      cache = std::make_unique<BufferManager>(budget, policy);
      SetBlockCache(cache.get());
    }
    Status st = RunScc(SccAlgorithm::kTwoPhase, path, options, &out->result,
                       &out->stats);
    SetBlockCache(nullptr);
    SetBlockAccessLog(nullptr);
    ASSERT_OK(st);
    out->log = log.Snapshot();
    if (cache != nullptr) out->cache_stats = cache->stats();
  }

  // 2P-SCC's Def. 5.1 fixpoint need not exist for arbitrary random
  // graphs, so the workload is 100 disjoint copies of the paper's
  // Fig. 1 graph (on which 2P provably converges): 1200 nodes, 1800
  // edges, ~60 data blocks at 512 bytes — enough re-scanned blocks for
  // the cache to matter, deterministic enough to always terminate.
  std::string MakeGraph() {
    const std::vector<Edge> tile = testing_util::PaperFigure1Edges();
    std::vector<Edge> edges;
    const NodeId n = 100 * testing_util::kPaperFigure1Nodes;
    for (NodeId copy = 0; copy < 100; ++copy) {
      const NodeId base = copy * testing_util::kPaperFigure1Nodes;
      for (const Edge& e : tile) edges.push_back({e.from + base, e.to + base});
    }
    return WriteGraph(n, edges, 512);
  }
};

TEST_F(BlockCacheConformanceTest, RealHitsMatchSimulatedHitsAcrossBudgets) {
  const std::string path = MakeGraph();

  RunOutcome baseline;  // budget 0: cache left uninstalled, audit only
  RunAtBudget(path, 0, &baseline);
  ASSERT_GT(baseline.stats.io.blocks_read, 0u);
  // Without a cache, every logical read is a physical read.
  EXPECT_EQ(baseline.stats.io.physical_blocks_read,
            baseline.stats.io.blocks_read);
  EXPECT_EQ(baseline.stats.io.cache_hits, 0u);
  EXPECT_EQ(baseline.stats.io.prefetch_hits, 0u);
  EXPECT_EQ(baseline.stats.io.prefetched_blocks, 0u);

  for (uint64_t budget : {1u, 4u, 64u}) {
    SCOPED_TRACE("budget=" + std::to_string(budget));
    RunOutcome run;
    RunAtBudget(path, budget, &run);

    // The simulator is the spec: replay this run's own audit log.
    CacheSimPoint sim = SimulateLruCache(run.log, budget);
    EXPECT_EQ(run.cache_stats.hits, sim.hits);
    EXPECT_EQ(run.cache_stats.misses, sim.misses);
    EXPECT_EQ(run.stats.io.cache_hits, sim.hits);

    // Caching must be invisible to the algorithm: logical I/O and the
    // SCC output are byte-identical to the uncached run.
    EXPECT_EQ(run.stats.io.blocks_read, baseline.stats.io.blocks_read);
    EXPECT_EQ(run.stats.io.bytes_read, baseline.stats.io.bytes_read);
    EXPECT_EQ(run.stats.io.blocks_written, baseline.stats.io.blocks_written);
    EXPECT_EQ(run.stats.io.bytes_written, baseline.stats.io.bytes_written);
    EXPECT_TRUE(run.result == baseline.result);

    // Every hit is a physical read the run no longer performed.
    EXPECT_EQ(run.stats.io.physical_blocks_read + run.stats.io.cache_hits,
              run.stats.io.blocks_read);
    EXPECT_LE(run.stats.io.physical_blocks_read,
              baseline.stats.io.physical_blocks_read);
  }
}

TEST_F(BlockCacheConformanceTest, ClockPolicyIsConformantAndInvisibleToo) {
  const std::string path = MakeGraph();
  RunOutcome baseline;
  RunAtBudget(path, 0, &baseline);

  for (uint64_t budget : {1u, 4u, 64u}) {
    SCOPED_TRACE("budget=" + std::to_string(budget));
    RunOutcome run;
    RunAtBudget(path, budget, &run, EvictionPolicy::kClock);

    // Same spec, different policy: the clock simulator replays the
    // run's own audit log to the run's exact hit/miss counts.
    CacheSimPoint sim = SimulateClockCache(run.log, budget);
    EXPECT_EQ(run.cache_stats.hits, sim.hits);
    EXPECT_EQ(run.cache_stats.misses, sim.misses);
    EXPECT_EQ(run.stats.io.cache_hits, sim.hits);

    // The eviction policy may only move the hit/miss split; the logical
    // ledger and the SCC result stay byte-identical to the uncached run.
    EXPECT_EQ(run.stats.io.blocks_read, baseline.stats.io.blocks_read);
    EXPECT_EQ(run.stats.io.bytes_read, baseline.stats.io.bytes_read);
    EXPECT_EQ(run.stats.io.blocks_written, baseline.stats.io.blocks_written);
    EXPECT_EQ(run.stats.io.bytes_written, baseline.stats.io.bytes_written);
    EXPECT_TRUE(run.result == baseline.result);
    EXPECT_EQ(run.stats.io.physical_blocks_read + run.stats.io.cache_hits,
              run.stats.io.blocks_read);
  }
}

TEST_F(BlockCacheConformanceTest, BigBudgetCutsPhysicalReads) {
  const std::string path = MakeGraph();
  RunOutcome run;
  RunAtBudget(path, 4096, &run);
  // 2P-SCC re-scans its (shrinking) edge files; with everything
  // resident after first touch the re-scans cost no physical reads.
  EXPECT_LT(run.stats.io.physical_blocks_read, run.stats.io.blocks_read);
  EXPECT_GT(run.stats.io.cache_hits, 0u);
}

TEST_F(BlockCacheConformanceTest, UncachedRunMatchesBareRunExactly) {
  const std::string path = MakeGraph();
  SemiExternalOptions options;
  options.scratch_block_size = 512;

  ASSERT_EQ(GetBlockCache(), nullptr);
  SccResult bare_result;
  RunStats bare;
  ASSERT_OK(RunScc(SccAlgorithm::kTwoPhase, path, options, &bare_result,
                   &bare));

  // Installing the audit log (the conformance harness) must not change
  // a single IoStats field either — operator== covers the new physical
  // and cache counters.
  RunOutcome audited;
  RunAtBudget(path, 0, &audited);
  EXPECT_TRUE(bare.io == audited.stats.io)
      << "bare: " << bare.io.Format()
      << " audited: " << audited.stats.io.Format();
  EXPECT_TRUE(bare_result == audited.result);
}

}  // namespace
}  // namespace ioscc
