// Behavioural tests for 1P-SCC and 1PB-SCC: option handling (tau,
// rejection cadence, strict vs loose bounds, memory budget), statistics
// coherence, and graph-reduction invariants.

#include <vector>

#include <gtest/gtest.h>

#include "gen/generators.h"
#include "scc/one_phase.h"
#include "scc/one_phase_batch.h"
#include "tests/test_util.h"
#include "util/random.h"

namespace ioscc {
namespace {

using testing_util::OracleFor;
using testing_util::TempDirTest;

class OnePhaseOptionsTest : public TempDirTest {
 protected:
  // A planted workload with a dominant SCC (early acceptance fires), small
  // SCCs and DAG tail (early rejection fires).
  std::string MakeWorkload(uint64_t seed, NodeId* n_out,
                           SccResult* oracle) {
    PlantedSccSpec spec;
    spec.node_count = 2000;
    spec.avg_degree = 5.0;
    spec.components = {{500, 1}, {20, 10}, {2, 50}};
    spec.seed = seed;
    std::vector<Edge> edges;
    Status st = GeneratePlantedSccEdges(spec, &edges);
    EXPECT_TRUE(st.ok());
    *n_out = static_cast<NodeId>(spec.node_count);
    *oracle = OracleFor(*n_out, edges);
    return WriteGraph(*n_out, edges);
  }
};

TEST_F(OnePhaseOptionsTest, StrictAndLooseRejectionAgree) {
  NodeId n;
  SccResult oracle;
  const std::string path = MakeWorkload(1, &n, &oracle);
  for (uint32_t interval : {1u, 2u, 5u}) {
    for (bool strict : {false, true}) {
      SemiExternalOptions options;
      options.scratch_block_size = 4096;
      options.reject_interval = interval;
      options.strict_rejection = strict;
      SccResult result;
      RunStats stats;
      ASSERT_OK(OnePhaseScc(path, options, &result, &stats));
      EXPECT_EQ(result, oracle)
          << "interval=" << interval << " strict=" << strict;
    }
  }
}

TEST_F(OnePhaseOptionsTest, RejectionDisabledStillCorrect) {
  NodeId n;
  SccResult oracle;
  const std::string path = MakeWorkload(2, &n, &oracle);
  SemiExternalOptions options;
  options.scratch_block_size = 4096;
  options.reject_interval = 0;
  SccResult result;
  RunStats stats;
  ASSERT_OK(OnePhaseScc(path, options, &result, &stats));
  EXPECT_EQ(result, oracle);
  EXPECT_EQ(stats.nodes_rejected, 0u);
}

TEST_F(OnePhaseOptionsTest, AcceptanceDisabledStillCorrect) {
  NodeId n;
  SccResult oracle;
  const std::string path = MakeWorkload(3, &n, &oracle);
  SemiExternalOptions options;
  options.scratch_block_size = 4096;
  options.tau_fraction = -1.0;  // never rewrite for acceptance
  SccResult result;
  RunStats stats;
  ASSERT_OK(OnePhaseScc(path, options, &result, &stats));
  EXPECT_EQ(result, oracle);
}

TEST_F(OnePhaseOptionsTest, RejectionPrunesDagTail) {
  NodeId n;
  SccResult oracle;
  const std::string path = MakeWorkload(4, &n, &oracle);
  SemiExternalOptions options;
  options.scratch_block_size = 4096;
  options.reject_interval = 1;
  SccResult result;
  RunStats stats;
  ASSERT_OK(OnePhaseScc(path, options, &result, &stats));
  EXPECT_EQ(result, oracle);
  // The workload has ~900 nodes outside any SCC; rejection must fire.
  EXPECT_GT(stats.nodes_rejected, 0u);
}

TEST_F(OnePhaseOptionsTest, AggressiveAcceptanceShrinksTheStream) {
  NodeId n;
  SccResult oracle;
  const std::string path = MakeWorkload(5, &n, &oracle);
  SemiExternalOptions options;
  options.scratch_block_size = 4096;
  options.tau_fraction = 0.0;  // rewrite on any contraction
  SccResult result;
  RunStats stats;
  ASSERT_OK(OnePhaseScc(path, options, &result, &stats));
  EXPECT_EQ(result, oracle);
  ASSERT_FALSE(stats.per_iteration.empty());
  // The giant planted SCC (25% of nodes) guarantees big edge reductions.
  uint64_t reduced = 0;
  for (const auto& it : stats.per_iteration) reduced += it.edges_reduced;
  EXPECT_GT(reduced, 0u);
  EXPECT_LT(stats.per_iteration.back().live_edges,
            stats.per_iteration.front().live_edges + 1);
}

TEST_F(OnePhaseOptionsTest, StatsAreCoherent) {
  NodeId n;
  SccResult oracle;
  const std::string path = MakeWorkload(6, &n, &oracle);
  SemiExternalOptions options;
  options.scratch_block_size = 4096;
  SccResult result;
  RunStats stats;
  ASSERT_OK(OnePhaseScc(path, options, &result, &stats));
  EXPECT_EQ(stats.per_iteration.size(), stats.iterations);
  EXPECT_GT(stats.iterations, 0u);
  EXPECT_GT(stats.io.blocks_read, 0u);
  // Accepted + rejected never exceeds n.
  EXPECT_LE(stats.nodes_accepted + stats.nodes_rejected, n);
  // contractions == nodes merged away == nodes_accepted.
  EXPECT_EQ(stats.contractions, stats.nodes_accepted);
}

TEST_F(OnePhaseOptionsTest, TimeLimitReturnsIncomplete) {
  NodeId n;
  SccResult oracle;
  const std::string path = MakeWorkload(7, &n, &oracle);
  SemiExternalOptions options;
  options.scratch_block_size = 4096;
  options.time_limit_seconds = 1e-9;
  SccResult result;
  RunStats stats;
  Status st = OnePhaseScc(path, options, &result, &stats);
  EXPECT_TRUE(st.IsIncomplete()) << st.ToString();
}

TEST_F(OnePhaseOptionsTest, IterationCapReturnsIncomplete) {
  NodeId n;
  SccResult oracle;
  const std::string path = MakeWorkload(8, &n, &oracle);
  SemiExternalOptions options;
  options.scratch_block_size = 4096;
  options.max_iterations = 1;  // cannot converge in one scan
  SccResult result;
  RunStats stats;
  Status st = OnePhaseScc(path, options, &result, &stats);
  EXPECT_TRUE(st.IsIncomplete()) << st.ToString();
}

// ---------------------------------------------------------------------------

class OnePhaseBatchOptionsTest : public OnePhaseOptionsTest {};

TEST_F(OnePhaseBatchOptionsTest, CorrectAcrossBatchSizes) {
  NodeId n;
  SccResult oracle;
  const std::string path = MakeWorkload(9, &n, &oracle);
  for (uint64_t budget : {1ull, 1ull << 14, 1ull << 18, 1ull << 26}) {
    SemiExternalOptions options;
    options.scratch_block_size = 4096;
    options.memory_budget_bytes = budget;  // floor = 1024 edges per batch
    SccResult result;
    RunStats stats;
    ASSERT_OK(OnePhaseBatchScc(path, options, &result, &stats));
    EXPECT_EQ(result, oracle) << "budget=" << budget;
  }
}

TEST_F(OnePhaseBatchOptionsTest, MoreMemoryNeverMoreIterations) {
  NodeId n;
  SccResult oracle;
  const std::string path = MakeWorkload(10, &n, &oracle);
  uint64_t small_iters = 0, big_iters = 0;
  {
    SemiExternalOptions options;
    options.scratch_block_size = 4096;
    options.memory_budget_bytes = 1;  // 1024-edge batches
    SccResult result;
    RunStats stats;
    ASSERT_OK(OnePhaseBatchScc(path, options, &result, &stats));
    small_iters = stats.iterations;
  }
  {
    SemiExternalOptions options;
    options.scratch_block_size = 4096;
    options.memory_budget_bytes = 1ull << 26;  // whole graph per batch
    SccResult result;
    RunStats stats;
    ASSERT_OK(OnePhaseBatchScc(path, options, &result, &stats));
    big_iters = stats.iterations;
  }
  EXPECT_LE(big_iters, small_iters);
}

TEST_F(OnePhaseBatchOptionsTest, KosarajuKernelMatchesTarjanKernel) {
  NodeId n;
  SccResult oracle;
  const std::string path = MakeWorkload(13, &n, &oracle);
  for (BatchKernel kernel : {BatchKernel::kTarjan, BatchKernel::kKosaraju}) {
    SemiExternalOptions options;
    options.scratch_block_size = 4096;
    options.memory_budget_bytes = 1 << 14;
    options.batch_kernel = kernel;
    SccResult result;
    RunStats stats;
    ASSERT_OK(OnePhaseBatchScc(path, options, &result, &stats));
    EXPECT_EQ(result, oracle);
  }
}

TEST_F(OnePhaseBatchOptionsTest, BatchStatsCoherent) {
  NodeId n;
  SccResult oracle;
  const std::string path = MakeWorkload(11, &n, &oracle);
  SemiExternalOptions options;
  options.scratch_block_size = 4096;
  options.memory_budget_bytes = 1 << 14;
  SccResult result;
  RunStats stats;
  ASSERT_OK(OnePhaseBatchScc(path, options, &result, &stats));
  EXPECT_EQ(stats.per_iteration.size(), stats.iterations);
  EXPECT_LE(stats.nodes_accepted + stats.nodes_rejected, n);
}

TEST_F(OnePhaseBatchOptionsTest, TimeLimitReturnsIncomplete) {
  NodeId n;
  SccResult oracle;
  const std::string path = MakeWorkload(12, &n, &oracle);
  SemiExternalOptions options;
  options.scratch_block_size = 4096;
  options.time_limit_seconds = 1e-9;
  SccResult result;
  RunStats stats;
  Status st = OnePhaseBatchScc(path, options, &result, &stats);
  EXPECT_TRUE(st.IsIncomplete()) << st.ToString();
}

}  // namespace
}  // namespace ioscc
