// Unit tests for the in-memory CSR graph and graph I/O bridges.

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "graph/digraph.h"
#include "graph/graph_io.h"
#include "io/edge_file.h"
#include "tests/test_util.h"
#include "util/random.h"

namespace ioscc {
namespace {

using testing_util::TempDirTest;

TEST(DigraphTest, EmptyGraph) {
  Digraph graph(0, {});
  EXPECT_EQ(graph.node_count(), 0u);
  EXPECT_EQ(graph.edge_count(), 0u);
}

TEST(DigraphTest, CsrNeighborsGroupedBySource) {
  Digraph graph(4, {{2, 1}, {0, 3}, {2, 0}, {0, 1}});
  EXPECT_EQ(graph.edge_count(), 4u);
  EXPECT_EQ(graph.OutDegree(0), 2u);
  EXPECT_EQ(graph.OutDegree(1), 0u);
  EXPECT_EQ(graph.OutDegree(2), 2u);
  EXPECT_EQ(graph.OutDegree(3), 0u);
  auto n0 = graph.OutNeighbors(0);
  std::vector<NodeId> v0(n0.begin(), n0.end());
  std::sort(v0.begin(), v0.end());
  EXPECT_EQ(v0, (std::vector<NodeId>{1, 3}));
}

TEST(DigraphTest, PreservesParallelEdgesAndSelfLoops) {
  Digraph graph(2, {{0, 1}, {0, 1}, {1, 1}});
  EXPECT_EQ(graph.edge_count(), 3u);
  EXPECT_EQ(graph.OutDegree(0), 2u);
  EXPECT_EQ(graph.OutDegree(1), 1u);
}

TEST(DigraphTest, ReversedFlipsEdges) {
  Digraph graph(3, {{0, 1}, {1, 2}});
  Digraph reversed = graph.Reversed();
  EXPECT_EQ(reversed.edge_count(), 2u);
  EXPECT_EQ(reversed.OutDegree(1), 1u);
  EXPECT_EQ(reversed.OutNeighbors(1)[0], 0u);
  EXPECT_EQ(reversed.OutNeighbors(2)[0], 1u);
}

TEST(DigraphTest, DoubleReverseIsIdentityAsEdgeMultiset) {
  Rng rng(3);
  std::vector<Edge> edges;
  for (int i = 0; i < 200; ++i) {
    edges.push_back(Edge{static_cast<NodeId>(rng.Uniform(50)),
                         static_cast<NodeId>(rng.Uniform(50))});
  }
  Digraph graph(50, edges);
  std::vector<Edge> twice = graph.Reversed().Reversed().ToEdgeList();
  std::vector<Edge> original = graph.ToEdgeList();
  std::sort(twice.begin(), twice.end());
  std::sort(original.begin(), original.end());
  EXPECT_EQ(twice, original);
}

class GraphIoTest : public TempDirTest {};

TEST_F(GraphIoTest, SaveLoadRoundTrip) {
  Digraph graph(5, {{0, 1}, {1, 2}, {4, 0}, {2, 2}});
  const std::string path = NewPath(".edges");
  ASSERT_OK(SaveDigraph(graph, path, 512, nullptr));
  Digraph loaded;
  ASSERT_OK(LoadDigraph(path, &loaded, nullptr));
  EXPECT_EQ(loaded.node_count(), graph.node_count());
  std::vector<Edge> a = graph.ToEdgeList();
  std::vector<Edge> b = loaded.ToEdgeList();
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

TEST_F(GraphIoTest, InduceSubgraphKeepsPrefixNodes) {
  // Nodes 0..9; keep 50% -> nodes 0..4 and only edges among them.
  std::vector<Edge> edges = {{0, 1}, {1, 4}, {4, 0}, {5, 1},
                             {3, 7}, {8, 9}, {2, 3}};
  const std::string in = NewPath(".edges");
  const std::string out = NewPath(".sub");
  ASSERT_OK(WriteEdgeFile(in, 10, edges, 512, nullptr));
  ASSERT_OK(InduceSubgraphByNodePrefix(in, 0.5, out, nullptr));
  std::vector<Edge> read;
  uint64_t node_count = 0;
  ASSERT_OK(ReadAllEdges(out, &read, &node_count, nullptr));
  EXPECT_EQ(node_count, 5u);
  const std::vector<Edge> expected = {{0, 1}, {1, 4}, {4, 0}, {2, 3}};
  EXPECT_EQ(read, expected);
}

TEST_F(GraphIoTest, InduceFullFractionKeepsEverything) {
  std::vector<Edge> edges = {{0, 1}, {1, 2}};
  const std::string in = NewPath(".edges");
  const std::string out = NewPath(".sub");
  ASSERT_OK(WriteEdgeFile(in, 3, edges, 512, nullptr));
  ASSERT_OK(InduceSubgraphByNodePrefix(in, 1.0, out, nullptr));
  std::vector<Edge> read;
  ASSERT_OK(ReadAllEdges(out, &read, nullptr, nullptr));
  EXPECT_EQ(read, edges);
}

TEST_F(GraphIoTest, InduceRejectsBadFraction) {
  const std::string in = NewPath(".edges");
  ASSERT_OK(WriteEdgeFile(in, 3, {}, 512, nullptr));
  EXPECT_TRUE(InduceSubgraphByNodePrefix(in, 0.0, NewPath(".x"), nullptr)
                  .IsInvalidArgument());
  EXPECT_TRUE(InduceSubgraphByNodePrefix(in, 1.5, NewPath(".x"), nullptr)
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace ioscc
