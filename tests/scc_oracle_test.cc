// In-memory oracle tests: Tarjan, Kosaraju and the parallel FB kernel on
// fixed and random graphs.

#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "gen/generators.h"
#include "graph/digraph.h"
#include "scc/algorithms.h"
#include "scc/kosaraju.h"
#include "scc/scc_result.h"
#include "scc/tarjan.h"
#include "tests/test_util.h"
#include "util/random.h"

namespace ioscc {
namespace {

using testing_util::kPaperFigure1Nodes;
using testing_util::PaperFigure1Edges;

TEST(TarjanTest, EmptyGraph) {
  SccResult result = TarjanScc(Digraph(0, {}));
  EXPECT_EQ(result.ComponentCount(), 0u);
}

TEST(TarjanTest, SingleNodeNoEdges) {
  SccResult result = TarjanScc(Digraph(1, {}));
  EXPECT_EQ(result.ComponentCount(), 1u);
  EXPECT_EQ(result.component[0], 0u);
}

TEST(TarjanTest, SelfLoopIsSingletonComponent) {
  SccResult result = TarjanScc(Digraph(2, {{0, 0}, {0, 1}}));
  EXPECT_EQ(result.ComponentCount(), 2u);
}

TEST(TarjanTest, TwoNodeCycle) {
  SccResult result = TarjanScc(Digraph(2, {{0, 1}, {1, 0}}));
  EXPECT_EQ(result.ComponentCount(), 1u);
  EXPECT_EQ(result.component[0], result.component[1]);
}

TEST(TarjanTest, ChainIsAllSingletons) {
  std::vector<Edge> edges;
  for (NodeId v = 0; v + 1 < 100; ++v) edges.push_back({v, v + 1});
  SccResult result = TarjanScc(Digraph(100, edges));
  EXPECT_EQ(result.ComponentCount(), 100u);
}

TEST(TarjanTest, FullCycle) {
  std::vector<Edge> edges;
  for (NodeId v = 0; v < 100; ++v) edges.push_back({v, (v + 1) % 100});
  SccResult result = TarjanScc(Digraph(100, edges));
  EXPECT_EQ(result.ComponentCount(), 1u);
  EXPECT_EQ(result.LargestComponentSize(), 100u);
}

TEST(TarjanTest, PaperFigure1HasSixComponents) {
  SccResult result =
      TarjanScc(Digraph(kPaperFigure1Nodes, PaperFigure1Edges()));
  // {a}, {b,c,d,e}, {f}, {g,h,i,j}, {k}, {l}.
  EXPECT_EQ(result.ComponentCount(), 6u);
  EXPECT_EQ(result.LargestComponentSize(), 4u);
  EXPECT_EQ(result.NodesInNontrivialSccs(), 8u);
  // b,c,d,e share a component; g,h,i,j share another; both labeled by
  // their smallest member.
  EXPECT_EQ(result.component[1], 1u);
  EXPECT_EQ(result.component[2], 1u);
  EXPECT_EQ(result.component[3], 1u);
  EXPECT_EQ(result.component[4], 1u);
  EXPECT_EQ(result.component[6], 6u);
  EXPECT_EQ(result.component[7], 6u);
  EXPECT_EQ(result.component[8], 6u);
  EXPECT_EQ(result.component[9], 6u);
}

TEST(KosarajuTest, MatchesTarjanOnPaperFigure1) {
  Digraph graph(kPaperFigure1Nodes, PaperFigure1Edges());
  EXPECT_EQ(KosarajuScc(graph), TarjanScc(graph));
}

TEST(CondensationTest, KosarajuMatchesTarjanCondensation) {
  // Both condensation kernels must produce the same partition and a
  // valid reverse-topological emission order on random graphs.
  Rng rng(5150);
  for (int round = 0; round < 30; ++round) {
    const NodeId n = static_cast<NodeId>(10 + rng.Uniform(120));
    std::vector<Edge> edges;
    ASSERT_OK(GenerateUniformEdges(n, 3ull * n, round * 17 + 3, &edges));
    Digraph graph(n, edges);

    SccResult scc_t, scc_k;
    std::vector<NodeId> order_t, order_k;
    std::vector<Edge> dag_t = CondensationOf(graph, &scc_t, &order_t);
    std::vector<Edge> dag_k =
        CondensationOfKosaraju(graph, &scc_k, &order_k);
    EXPECT_EQ(scc_t, scc_k) << "round " << round;
    EXPECT_EQ(order_t.size(), order_k.size());

    // Kosaraju's order must also satisfy the reverse-topological
    // property: every DAG edge goes from later-emitted to earlier.
    std::vector<int> pos(n, -1);
    for (size_t i = 0; i < order_k.size(); ++i) pos[order_k[i]] = int(i);
    for (const Edge& e : dag_k) {
      EXPECT_GT(pos[e.from], pos[e.to]) << "round " << round;
    }
  }
}

TEST(CondensationTest, EmitsReverseTopologicalOrder) {
  // 0 -> 1 -> 2 with a cycle {1, 3}.
  Digraph graph(4, {{0, 1}, {1, 2}, {1, 3}, {3, 1}});
  SccResult scc;
  std::vector<NodeId> order;
  std::vector<Edge> dag = CondensationOf(graph, &scc, &order);
  EXPECT_EQ(order.size(), 3u);  // {0}, {1,3}, {2}
  // Every DAG edge must point from a later-emitted component to an
  // earlier-emitted one.
  std::vector<int> emit_pos(4, -1);
  for (size_t i = 0; i < order.size(); ++i) emit_pos[order[i]] = int(i);
  for (const Edge& e : dag) {
    EXPECT_GT(emit_pos[e.from], emit_pos[e.to])
        << e.from << "->" << e.to;
  }
}

// Property sweep: Kosaraju and Tarjan agree on random graphs across
// densities.
class OracleAgreementTest
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(OracleAgreementTest, KosarajuMatchesTarjan) {
  const int seed = std::get<0>(GetParam());
  const double degree = std::get<1>(GetParam());
  Rng rng(seed);
  const NodeId n = static_cast<NodeId>(20 + rng.Uniform(300));
  std::vector<Edge> edges;
  ASSERT_OK(GenerateUniformEdges(
      n, static_cast<uint64_t>(n * degree), seed * 977 + 13, &edges));
  Digraph graph(n, edges);
  EXPECT_EQ(KosarajuScc(graph), TarjanScc(graph));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OracleAgreementTest,
    ::testing::Combine(::testing::Range(1, 26),
                       ::testing::Values(0.5, 1.0, 2.0, 4.0, 8.0)));

// Differential sweep over the kernel registry: every in-memory kernel
// (tarjan, kosaraju, parallel_fb) must produce the identical partition on
// every generator family at every scale — and parallel_fb must do so at
// every thread count. Deeper parallel_fb-specific properties (condensation
// contract, ledger identity) live in tests/parallel_scc_test.cc.
std::vector<Edge> FamilyEdges(const std::string& family, uint64_t n,
                              uint64_t seed) {
  std::vector<Edge> edges;
  Status st;
  if (family == "uniform") {
    st = GenerateUniformEdges(n, 3 * n, seed, &edges);
  } else if (family == "power_law") {
    st = GeneratePowerLawEdges(n, 4 * n, 2.1, seed, &edges);
  } else if (family == "citation") {
    CitationSpec spec;
    spec.node_count = n;
    spec.seed = seed;
    st = GenerateCitationEdges(spec, &edges);
  } else {
    PlantedSccSpec spec;
    if (family == "massive") {
      spec = MassiveSccSpec(n, 4.0, std::max<uint64_t>(2, n / 10), seed);
    } else if (family == "large") {
      spec = LargeSccSpec(n, 4.0, std::max<uint64_t>(2, n / 50), 5, seed);
    } else if (family == "small") {
      spec = SmallSccSpec(n, 4.0, 4, std::max<uint64_t>(1, n / 40), seed);
    } else {
      EXPECT_EQ(family, "webspam");
      spec = WebspamSpec(n, 4.0, seed);
    }
    st = GeneratePlantedSccEdges(spec, &edges);
  }
  EXPECT_TRUE(st.ok()) << st.ToString();
  return edges;
}

class KernelFamilyTest
    : public ::testing::TestWithParam<std::tuple<const char*, uint64_t>> {};

TEST_P(KernelFamilyTest, AllKernelsAgreeAtEveryThreadCount) {
  const std::string family = std::get<0>(GetParam());
  const uint64_t n = std::get<1>(GetParam());
  const std::vector<Edge> edges = FamilyEdges(family, n, 7 * n + 1);
  Digraph graph(static_cast<NodeId>(n), edges);
  const SccResult oracle = TarjanScc(graph);
  for (BatchKernel kernel : AllBatchKernels()) {
    if (kernel == BatchKernel::kParallelFb) continue;
    EXPECT_EQ(RunInMemoryKernel(kernel, graph), oracle)
        << BatchKernelName(kernel) << " on " << family << "/" << n;
  }
  for (uint32_t threads : {1u, 2u, 8u}) {
    EXPECT_EQ(RunInMemoryKernel(BatchKernel::kParallelFb, graph, threads),
              oracle)
        << "parallel_fb t=" << threads << " on " << family << "/" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, KernelFamilyTest,
    ::testing::Combine(::testing::Values("uniform", "power_law", "citation",
                                         "massive", "large", "small",
                                         "webspam"),
                       ::testing::Values(uint64_t{64}, uint64_t{400},
                                         uint64_t{2000})));

}  // namespace
}  // namespace ioscc
