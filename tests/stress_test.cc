// Randomized cross-validation stress: every algorithm against the oracle
// over a spread of sizes, densities, rejection cadences and acceptance
// thresholds. This is a scaled-down in-suite version of the 12,000-graph
// sweep used during development; crank kRounds up for deeper runs.

#include <vector>

#include <gtest/gtest.h>

#include "gen/generators.h"
#include "graph/digraph.h"
#include "io/edge_file.h"
#include "scc/algorithms.h"
#include "scc/tarjan.h"
#include "tests/test_util.h"
#include "util/random.h"

namespace ioscc {
namespace {

using testing_util::TempDirTest;

constexpr int kRounds = 120;

class StressTest : public TempDirTest {};

TEST_F(StressTest, AllAlgorithmsAllShapes) {
  uint64_t two_phase_converged = 0, two_phase_incomplete = 0;
  for (int round = 1; round <= kRounds; ++round) {
    Rng rng(static_cast<uint64_t>(round) * 2654435761ULL);
    const NodeId n = static_cast<NodeId>(10 + rng.Uniform(250));
    const double degree = 0.3 + rng.NextDouble() * 5.0;
    std::vector<Edge> edges;
    ASSERT_OK(GenerateUniformEdges(
        n, static_cast<uint64_t>(n * degree), round * 31 + 7, &edges));
    const std::string path = WriteGraph(n, edges, 512);
    const SccResult oracle = TarjanScc(Digraph(n, edges));

    SemiExternalOptions options;
    options.scratch_block_size = 512;
    options.memory_budget_bytes = 1 << 14;
    options.reject_interval = 1 + round % 4;
    options.strict_rejection = (round % 2) == 0;
    options.tau_fraction = (round % 3) == 0 ? 0.0 : 0.005;

    for (SccAlgorithm algorithm : AllAlgorithms()) {
      SccResult result;
      RunStats stats;
      Status st = RunScc(algorithm, path, options, &result, &stats);
      const bool may_not_converge =
          algorithm == SccAlgorithm::kTwoPhase ||
          algorithm == SccAlgorithm::kEm;
      if (algorithm == SccAlgorithm::kTwoPhase) {
        (st.ok() ? two_phase_converged : two_phase_incomplete) += 1;
      }
      if (may_not_converge && st.IsIncomplete()) continue;
      ASSERT_TRUE(st.ok())
          << AlgorithmName(algorithm) << " round=" << round << " n=" << n
          << ": " << st.ToString();
      ASSERT_EQ(result, oracle)
          << AlgorithmName(algorithm) << " round=" << round << " n=" << n
          << " degree=" << degree;
    }
  }
  // Sanity on the known convergence profile: 2P succeeds on the clear
  // majority of random graphs (measured ~93% over 12,000 graphs).
  EXPECT_GT(two_phase_converged, two_phase_incomplete);
}

TEST_F(StressTest, PlantedShapesAcrossAlgorithms) {
  for (int round = 1; round <= 20; ++round) {
    Rng rng(static_cast<uint64_t>(round) * 48271);
    PlantedSccSpec spec;
    spec.node_count = 400 + rng.Uniform(800);
    spec.avg_degree = 3.0 + rng.NextDouble() * 3.0;
    spec.components = {{20 + rng.Uniform(100), 1 + rng.Uniform(3)},
                       {2 + rng.Uniform(8), rng.Uniform(20)}};
    spec.seed = round * 7919;
    std::vector<Edge> edges;
    ASSERT_OK(GeneratePlantedSccEdges(spec, &edges));
    const NodeId n = static_cast<NodeId>(spec.node_count);
    const std::string path = WriteGraph(n, edges, 512);
    const SccResult oracle = TarjanScc(Digraph(n, edges));

    SemiExternalOptions options;
    options.scratch_block_size = 512;
    options.memory_budget_bytes = 1 << 15;
    for (SccAlgorithm algorithm :
         {SccAlgorithm::kOnePhaseBatch, SccAlgorithm::kOnePhase,
          SccAlgorithm::kDfs}) {
      SccResult result;
      RunStats stats;
      Status st = RunScc(algorithm, path, options, &result, &stats);
      ASSERT_TRUE(st.ok()) << AlgorithmName(algorithm)
                           << " round=" << round << ": " << st.ToString();
      ASSERT_EQ(result, oracle)
          << AlgorithmName(algorithm) << " round=" << round;
    }
  }
}

}  // namespace
}  // namespace ioscc
