// Checkpoint/resume subsystem tests (io/snapshot_file.h +
// harness/checkpoint.h): snapshot format round-trip and corruption
// detection, the no-checkpoint byte-identity guarantee, write cadence,
// resume fallback across bad snapshots, ENOSPC degradation, the
// stale-scratch reaper, and graceful SIGINT wind-down.
//
// The fork+SIGKILL crash-torture matrix lives in crash_torture_test.cc;
// this file covers the subsystem's contracts in-process.

#include "harness/checkpoint.h"

#include <signal.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "gen/generators.h"
#include "harness/runner.h"
#include "io/fault_env.h"
#include "io/snapshot_file.h"
#include "io/temp_dir.h"
#include "scc/algorithms.h"
#include "tests/test_util.h"
#include "util/build_info.h"
#include "util/signals.h"

namespace ioscc {
namespace {

namespace fs = std::filesystem;

using testing_util::OracleFor;
using testing_util::TempDirTest;

constexpr SccAlgorithm kAllDrivers[] = {
    SccAlgorithm::kOnePhase, SccAlgorithm::kOnePhaseBatch,
    SccAlgorithm::kTwoPhase, SccAlgorithm::kDfs,
    SccAlgorithm::kEm,
};

// A graph with planted cycles plus noise so every driver does several
// passes (scans, rewrites, fixpoints) under a small memory budget.
std::vector<Edge> TortureEdges(NodeId n, uint64_t noise, uint64_t seed) {
  std::vector<Edge> edges;
  EXPECT_TRUE(GenerateUniformEdges(n, noise, seed, &edges).ok());
  for (NodeId v = 0; v < 100; ++v) edges.push_back({v, (v + 1) % 100});
  for (NodeId v = 200; v + 2 < 280; v += 4) {
    edges.push_back({v, v + 1});
    edges.push_back({v + 1, v + 2});
    edges.push_back({v + 2, v});
  }
  return edges;
}

SemiExternalOptions SmallBudgetOptions() {
  SemiExternalOptions options;
  options.scratch_block_size = 4096;
  // Small enough that every driver runs chunked multi-pass loops — in
  // particular EM-SCC (chunk capacity = budget / sizeof(Edge)) must not
  // swallow the whole graph in its final in-memory pass, or it would
  // never reach a checkpoint boundary.
  options.memory_budget_bytes = 1 << 13;
  return options;
}

int CountSnapshots(const std::string& dir) {
  int count = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() == ".snap") ++count;
  }
  return count;
}

// Flips one byte in the middle of `path`.
void CorruptFile(const std::string& path) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.is_open());
  f.seekg(0, std::ios::end);
  const auto size = f.tellg();
  ASSERT_GT(size, 0);
  f.seekg(static_cast<long>(size) / 2);
  char byte = 0;
  f.read(&byte, 1);
  f.seekp(static_cast<long>(size) / 2);
  byte ^= 0x40;
  f.write(&byte, 1);
}

// Routes all driver scratch (TempDir reads $IOSCC_TMPDIR) under the
// fixture directory: interrupted runs deliberately abandon scratch that
// their snapshots reference (ScratchKeepGuard), and this way the fixture
// teardown reclaims it instead of leaking into the system temp root.
class CheckpointTest : public TempDirTest {
 protected:
  void SetUp() override {
    TempDirTest::SetUp();
    const char* prev = std::getenv("IOSCC_TMPDIR");
    had_prev_tmpdir_ = prev != nullptr;
    if (had_prev_tmpdir_) prev_tmpdir_ = prev;
    ::setenv("IOSCC_TMPDIR", dir_->path().c_str(), 1);
  }

  void TearDown() override {
    if (had_prev_tmpdir_) {
      ::setenv("IOSCC_TMPDIR", prev_tmpdir_.c_str(), 1);
    } else {
      ::unsetenv("IOSCC_TMPDIR");
    }
  }

  std::string prev_tmpdir_;
  bool had_prev_tmpdir_ = false;
};

TEST_F(CheckpointTest, SnapshotRoundTripsManifestAndState) {
  SnapshotManifest manifest;
  manifest.algorithm = "1PB-SCC";
  manifest.phase = "1pb";
  manifest.iteration = 7;
  manifest.seq = 3;
  manifest.input_path = "/data/web.edges";
  manifest.input_size = 123456;
  manifest.input_head_crc = 0xdeadbeef;
  manifest.build_sha = BuildGitSha();
  // State larger than one block so the multi-block path is exercised.
  std::string state(3 * kSnapshotBlockSize + 17, '\x5c');
  const std::string path = NewPath(".snap");

  IoStats io;
  ASSERT_OK(WriteSnapshot(path, manifest, state, &io));
  EXPECT_GT(io.blocks_written, 3u);

  SnapshotManifest got;
  std::string got_state;
  ASSERT_OK(ReadSnapshot(path, &got, &got_state, nullptr));
  EXPECT_EQ(got.algorithm, manifest.algorithm);
  EXPECT_EQ(got.phase, manifest.phase);
  EXPECT_EQ(got.iteration, manifest.iteration);
  EXPECT_EQ(got.seq, manifest.seq);
  EXPECT_EQ(got.input_path, manifest.input_path);
  EXPECT_EQ(got.input_size, manifest.input_size);
  EXPECT_EQ(got.input_head_crc, manifest.input_head_crc);
  EXPECT_EQ(got.build_sha, manifest.build_sha);
  EXPECT_EQ(got_state, state);
  // The staging file was renamed away, never left behind.
  EXPECT_FALSE(fs::exists(path + ".tmp"));
}

TEST_F(CheckpointTest, TornOrBitFlippedSnapshotIsCorruption) {
  SnapshotManifest manifest;
  manifest.algorithm = "1P-SCC";
  const std::string state(2 * kSnapshotBlockSize, 'x');
  const std::string path = NewPath(".snap");
  ASSERT_OK(WriteSnapshot(path, manifest, state, nullptr));

  // Bit damage anywhere in the image fails the whole-payload CRC.
  CorruptFile(path);
  Status st = ReadSnapshot(path, nullptr, nullptr, nullptr);
  EXPECT_TRUE(st.IsCorruption()) << st.ToString();

  // A torn (truncated) snapshot under the final name is also caught.
  ASSERT_OK(WriteSnapshot(path, manifest, state, nullptr));
  fs::resize_file(path, kSnapshotBlockSize);
  st = ReadSnapshot(path, nullptr, nullptr, nullptr);
  EXPECT_FALSE(st.ok()) << "truncated snapshot accepted";
}

TEST_F(CheckpointTest, CheckpointedRunIsByteIdenticalToPlainRun) {
  const std::vector<Edge> edges = TortureEdges(600, 2400, 5);
  const std::string path = WriteGraph(600, edges);
  for (SccAlgorithm algorithm : kAllDrivers) {
    SCOPED_TRACE(AlgorithmName(algorithm));
    // Reference: no checkpoint hook — today's behavior.
    SccResult plain_result;
    RunStats plain_stats;
    Status plain_st = RunScc(algorithm, path, SmallBudgetOptions(),
                             &plain_result, &plain_stats);

    // Checkpointing at every boundary must not perturb anything the run
    // reports: status, partition, the logical-I/O ledger, the iteration
    // counts, or the per-iteration I/O deltas.
    CheckpointOptions copts;
    copts.dir = NewPath(".ckpt");
    copts.remove_on_success = false;
    Checkpointer cp(copts);
    ASSERT_OK(cp.OpenForRun(AlgorithmName(algorithm), path, false));
    SemiExternalOptions options = SmallBudgetOptions();
    options.checkpoint = &cp;
    SccResult ckpt_result;
    RunStats ckpt_stats;
    Status ckpt_st = RunScc(algorithm, path, options, &ckpt_result,
                            &ckpt_stats);

    EXPECT_EQ(plain_st.ToString(), ckpt_st.ToString());
    if (plain_st.ok()) {
      EXPECT_EQ(plain_result, ckpt_result);
    }
    EXPECT_TRUE(plain_stats.io == ckpt_stats.io) << "run ledger drift";
    EXPECT_EQ(plain_stats.iterations, ckpt_stats.iterations);
    EXPECT_EQ(plain_stats.search_scans, ckpt_stats.search_scans);
    ASSERT_EQ(plain_stats.per_iteration.size(),
              ckpt_stats.per_iteration.size());
    for (size_t i = 0; i < plain_stats.per_iteration.size(); ++i) {
      EXPECT_TRUE(plain_stats.per_iteration[i].io ==
                  ckpt_stats.per_iteration[i].io)
          << "per-iteration ledger drift at " << i;
    }
    // The snapshot I/O went somewhere — just not into the run ledger.
    EXPECT_GT(cp.written(), 0u);
    EXPECT_GT(cp.checkpoint_io().blocks_written, 0u);
  }
}

TEST_F(CheckpointTest, SuccessfulRunRemovesItsSnapshots) {
  const std::vector<Edge> edges = TortureEdges(400, 1600, 7);
  const std::string path = WriteGraph(400, edges);
  CheckpointOptions copts;
  copts.dir = NewPath(".ckpt");
  Checkpointer cp(copts);
  ASSERT_OK(cp.OpenForRun("1PB-SCC", path, false));
  SemiExternalOptions options = SmallBudgetOptions();
  options.checkpoint = &cp;
  SccResult result;
  RunStats stats;
  ASSERT_OK(RunScc(SccAlgorithm::kOnePhaseBatch, path, options, &result,
                   &stats));
  EXPECT_GT(cp.written(), 0u);
  EXPECT_GT(CountSnapshots(copts.dir), 0);
  cp.OnRunFinished(/*run_ok=*/true);
  EXPECT_EQ(CountSnapshots(copts.dir), 0);
}

TEST_F(CheckpointTest, CadenceAndRetentionAreRespected) {
  const std::vector<Edge> edges = TortureEdges(600, 2400, 5);
  const std::string path = WriteGraph(600, edges);

  // DFS offers the most boundaries of the five drivers (tens of fixpoint
  // passes on this graph), making the cadence arithmetic meaningful.
  CheckpointOptions copts;
  copts.dir = NewPath(".ckpt");
  copts.every = 2;
  copts.keep = 1;
  copts.remove_on_success = false;
  Checkpointer cp(copts);
  ASSERT_OK(cp.OpenForRun("DFS-SCC", path, false));
  SemiExternalOptions options = SmallBudgetOptions();
  options.checkpoint = &cp;
  uint64_t boundaries = 0;
  options.progress = [&boundaries](uint64_t, const IterationStats&) {
    ++boundaries;
    return true;
  };
  SccResult result;
  RunStats stats;
  ASSERT_OK(RunScc(SccAlgorithm::kDfs, path, options, &result, &stats));
  ASSERT_GE(boundaries, 6u) << "graph too easy for this test";
  // every=2 cuts at every second offered boundary.
  EXPECT_EQ(cp.written(), boundaries / 2);
  // keep=1 prunes everything but the newest.
  EXPECT_EQ(CountSnapshots(copts.dir), 1);
}

TEST_F(CheckpointTest, ResumeFallsBackPastACorruptNewestSnapshot) {
  const std::vector<Edge> edges = TortureEdges(600, 2400, 5);
  const std::string path = WriteGraph(600, edges);
  SccResult expected;
  RunStats reference;
  ASSERT_OK(RunScc(SccAlgorithm::kOnePhaseBatch, path,
                   SmallBudgetOptions(), &expected, &reference));

  ASSERT_GE(reference.iterations, 3u) << "graph too easy for this test";

  // Interrupt a checkpointed run after its third boundary (cooperative
  // cancellation, like a SIGINT) so three snapshots sit on disk and the
  // driver's scratch survives for them (ScratchKeepGuard).
  CheckpointOptions copts;
  copts.dir = NewPath(".ckpt");
  copts.keep = 3;
  copts.remove_on_success = false;
  {
    Checkpointer cp(copts);
    ASSERT_OK(cp.OpenForRun("1PB-SCC", path, false));
    SemiExternalOptions options = SmallBudgetOptions();
    options.checkpoint = &cp;
    uint64_t boundaries = 0;
    options.progress = [&boundaries](uint64_t, const IterationStats&) {
      return ++boundaries < 3;
    };
    SccResult result;
    RunStats stats;
    Status st = RunScc(SccAlgorithm::kOnePhaseBatch, path, options,
                       &result, &stats);
    ASSERT_TRUE(st.IsIncomplete()) << st.ToString();
    ASSERT_EQ(cp.written(), 3u);
  }

  // Corrupt the newest snapshot: resume must skip it (counted as a
  // fallback), restore the previous one, and still finish correctly.
  std::string newest;
  for (const auto& entry : fs::directory_iterator(copts.dir)) {
    const std::string p = entry.path().string();
    if (entry.path().extension() == ".snap" && p > newest) newest = p;
  }
  ASSERT_FALSE(newest.empty());
  CorruptFile(newest);

  Checkpointer cp(copts);
  ASSERT_OK(cp.OpenForRun("1PB-SCC", path, /*resume=*/true));
  EXPECT_TRUE(cp.resumed());
  EXPECT_EQ(cp.resume_fallbacks(), 1u);
  SemiExternalOptions options = SmallBudgetOptions();
  options.checkpoint = &cp;
  SccResult result;
  RunStats stats;
  ASSERT_OK(RunScc(SccAlgorithm::kOnePhaseBatch, path, options, &result,
                   &stats));
  EXPECT_EQ(result, expected);
  // Ledger identity: replayed passes re-charge exactly what the crash
  // discarded, so the final ledger equals the uninterrupted run's and
  // the replay cost is visible only in the separate resume ledger.
  EXPECT_TRUE(stats.io == reference.io) << "resume perturbed the ledger";
  EXPECT_GT(cp.resume_io().blocks_read, 0u);
}

TEST_F(CheckpointTest, ResumeSkipsSnapshotsWhoseStreamIsGone) {
  const std::vector<Edge> edges = TortureEdges(600, 2400, 5);
  const std::string path = WriteGraph(600, edges);
  SccResult expected;
  RunStats reference;
  ASSERT_OK(RunScc(SccAlgorithm::kOnePhaseBatch, path,
                   SmallBudgetOptions(), &expected, &reference));

  // Interrupt a checkpointed run so snapshots referencing the scratch
  // rewrite survive along with the kept scratch itself.
  CheckpointOptions copts;
  copts.dir = NewPath(".ckpt");
  copts.keep = 3;
  copts.remove_on_success = false;
  {
    Checkpointer cp(copts);
    ASSERT_OK(cp.OpenForRun("1PB-SCC", path, false));
    SemiExternalOptions options = SmallBudgetOptions();
    options.checkpoint = &cp;
    uint64_t boundaries = 0;
    options.progress = [&boundaries](uint64_t, const IterationStats&) {
      return ++boundaries < 3;
    };
    SccResult result;
    RunStats stats;
    Status st = RunScc(SccAlgorithm::kOnePhaseBatch, path, options,
                       &result, &stats);
    ASSERT_TRUE(st.IsIncomplete()) << st.ToString();
    ASSERT_GE(cp.written(), 1u);
  }

  // Delete the kept scratch out from under the snapshots — the shape a
  // retained checkpoint dir has after its run's scratch went away (most
  // commonly: --keep-checkpoints across a *successful* run, whose
  // scratch is correctly removed). Resume must skip every snapshot whose
  // recorded stream is gone instead of handing the driver a dead path.
  uint64_t scratch_removed = 0;
  for (const auto& entry : fs::directory_iterator(dir_->path())) {
    if (entry.path().filename().string().rfind("ioscc-", 0) == 0) {
      scratch_removed += fs::remove_all(entry.path());
    }
  }
  ASSERT_GT(scratch_removed, 0u) << "no scratch was kept to delete";

  Checkpointer cp(copts);
  ASSERT_OK(cp.OpenForRun("1PB-SCC", path, /*resume=*/true));
  EXPECT_GE(cp.resume_fallbacks(), 1u);
  SemiExternalOptions options = SmallBudgetOptions();
  options.checkpoint = &cp;
  SccResult result;
  RunStats stats;
  ASSERT_OK(RunScc(SccAlgorithm::kOnePhaseBatch, path, options, &result,
                   &stats));
  EXPECT_EQ(result, expected);
  // Whether the fallback landed on an older input-stream snapshot or a
  // fresh start, the run ledger must match the uninterrupted run's.
  EXPECT_TRUE(stats.io == reference.io) << "fallback perturbed the ledger";
}

TEST_F(CheckpointTest, ResumeRejectsSnapshotsFromADifferentInput) {
  const std::vector<Edge> edges_a = TortureEdges(600, 2400, 5);
  const std::string path_a = WriteGraph(600, edges_a);
  CheckpointOptions copts;
  copts.dir = NewPath(".ckpt");
  copts.remove_on_success = false;
  {
    Checkpointer cp(copts);
    ASSERT_OK(cp.OpenForRun("1PB-SCC", path_a, false));
    SemiExternalOptions options = SmallBudgetOptions();
    options.checkpoint = &cp;
    SccResult result;
    RunStats stats;
    ASSERT_OK(RunScc(SccAlgorithm::kOnePhaseBatch, path_a, options,
                     &result, &stats));
    ASSERT_GT(cp.written(), 0u);
  }

  // Same directory, different graph: every snapshot fails the content
  // fingerprint and the run starts fresh (correctly) instead of
  // restoring another input's state.
  const std::vector<Edge> edges_b = TortureEdges(500, 2000, 99);
  const std::string path_b = WriteGraph(500, edges_b);
  Checkpointer cp(copts);
  ASSERT_OK(cp.OpenForRun("1PB-SCC", path_b, /*resume=*/true));
  EXPECT_FALSE(cp.resumed());
  EXPECT_GT(cp.resume_fallbacks(), 0u);
  SemiExternalOptions options = SmallBudgetOptions();
  options.checkpoint = &cp;
  SccResult result;
  RunStats stats;
  ASSERT_OK(RunScc(SccAlgorithm::kOnePhaseBatch, path_b, options, &result,
                   &stats));
  EXPECT_EQ(result, OracleFor(500, edges_b));
}

TEST_F(CheckpointTest, EnospcOnCheckpointWritesDegradesGracefully) {
  const std::vector<Edge> edges = TortureEdges(600, 2400, 5);
  const std::string path = WriteGraph(600, edges);
  const SccResult oracle = OracleFor(600, edges);

  // Every write to a snapshot file fails with ENOSPC; the run itself
  // must finish, correct, with the failure recorded and checkpointing
  // permanently off.
  FaultInjector injector(1);
  FaultRule rule;
  rule.path_contains = "ckpt-";
  rule.op = FaultOp::kWrite;
  rule.any_op = false;
  rule.fires_remaining = 0;  // permanent
  rule.kind = FaultKind::kEnospc;
  injector.AddRule(rule);
  SetFaultInjector(&injector);

  CheckpointOptions copts;
  copts.dir = NewPath(".ckpt");
  Checkpointer cp(copts);
  ASSERT_OK(cp.OpenForRun("1PB-SCC", path, false));
  SemiExternalOptions options = SmallBudgetOptions();
  options.checkpoint = &cp;
  SccResult result;
  RunStats stats;
  Status st = RunScc(SccAlgorithm::kOnePhaseBatch, path, options, &result,
                     &stats);
  SetFaultInjector(nullptr);

  ASSERT_OK(st);
  EXPECT_EQ(result, oracle);
  EXPECT_TRUE(cp.degraded());
  EXPECT_EQ(cp.written(), 0u);
  EXPECT_EQ(cp.write_failures(), 1u);  // degraded after the first failure
  // No half-written snapshot may sit under a final name.
  for (const auto& entry : fs::directory_iterator(copts.dir)) {
    EXPECT_NE(entry.path().extension(), ".snap")
        << "orphaned snapshot: " << entry.path();
  }
}

TEST_F(CheckpointTest, FsckValidatesCheckpointDirsAndSnapshots) {
  const std::string dir = NewPath(".ckpt");
  fs::create_directories(dir);
  SnapshotManifest manifest;
  manifest.algorithm = "EM-SCC";
  manifest.phase = "em";
  manifest.iteration = 4;
  manifest.seq = 1;
  const std::string good = dir + "/ckpt-000001.snap";
  const std::string bad = dir + "/ckpt-000002.snap";
  ASSERT_OK(WriteSnapshot(good, manifest, std::string(5000, 'a'), nullptr));
  manifest.seq = 2;
  ASSERT_OK(WriteSnapshot(bad, manifest, std::string(5000, 'b'), nullptr));

  CheckpointFsckReport report;
  ASSERT_OK(FsckCheckpointDir(dir, &report));
  EXPECT_EQ(report.snapshots_checked, 2u);
  EXPECT_EQ(report.snapshots_bad, 0u);

  std::string summary;
  ASSERT_OK(FsckSnapshotFile(good, &summary));
  EXPECT_NE(summary.find("EM-SCC"), std::string::npos) << summary;

  CorruptFile(bad);
  Status st = FsckCheckpointDir(dir, &report);
  EXPECT_TRUE(st.IsCorruption()) << st.ToString();
  EXPECT_EQ(report.snapshots_checked, 2u);
  EXPECT_EQ(report.snapshots_bad, 1u);
  EXPECT_EQ(report.first_bad_path, bad);
}

TEST_F(CheckpointTest, StaleScratchSweepReapsOnlyDeadAndOld) {
  const std::string root = NewPath(".scratchroot");
  fs::create_directories(root);
  const auto old_time =
      fs::file_time_type::clock::now() - std::chrono::hours(48);

  // Dead owner (pid 1 is init — alive; use an impossibly high pid), old.
  const std::string stale = root + "/ioscc-1p.999999999.0";
  fs::create_directories(stale);
  std::ofstream(stale + "/f0.edges") << "x";
  fs::last_write_time(stale, old_time);
  // Live owner (this process), old: must survive.
  const std::string live =
      root + "/ioscc-em." + std::to_string(::getpid()) + ".3";
  fs::create_directories(live);
  fs::last_write_time(live, old_time);
  // Dead owner but fresh: must survive the age gate.
  const std::string young = root + "/ioscc-dfs.999999998.1";
  fs::create_directories(young);
  // Stray rename-staging orphan, old: reaped.
  const std::string tmp = root + "/ckpt-000004.snap.tmp";
  std::ofstream(tmp) << "partial";
  fs::last_write_time(tmp, old_time);
  // Not ours: never touched regardless of age.
  const std::string foreign = root + "/somebody-else.123.4";
  fs::create_directories(foreign);
  fs::last_write_time(foreign, old_time);

  // Dry run counts without deleting.
  ScratchSweepStats stats;
  ASSERT_OK(SweepStaleScratch(root, 3600, /*dry_run=*/true, &stats));
  EXPECT_EQ(stats.dirs_removed, 1u);
  EXPECT_EQ(stats.files_removed, 1u);
  EXPECT_TRUE(fs::exists(stale));

  ASSERT_OK(SweepStaleScratch(root, 3600, /*dry_run=*/false, &stats));
  EXPECT_EQ(stats.dirs_removed, 1u);
  EXPECT_EQ(stats.files_removed, 1u);
  EXPECT_EQ(stats.skipped_live, 1u);
  EXPECT_EQ(stats.skipped_young, 1u);
  EXPECT_FALSE(fs::exists(stale));
  EXPECT_FALSE(fs::exists(tmp));
  EXPECT_TRUE(fs::exists(live));
  EXPECT_TRUE(fs::exists(young));
  EXPECT_TRUE(fs::exists(foreign));
}

TEST_F(CheckpointTest, PendingSignalForcesAFinalCheckpointAndWindsDown) {
  const std::vector<Edge> edges = TortureEdges(600, 2400, 5);
  const std::string path = WriteGraph(600, edges);
  SccResult expected;
  RunStats reference;
  ASSERT_OK(RunScc(SccAlgorithm::kOnePhaseBatch, path,
                   SmallBudgetOptions(), &expected, &reference));
  ASSERT_GE(reference.iterations, 2u);

  CheckpointOptions copts;
  copts.dir = NewPath(".ckpt");
  copts.every = 1000;  // cadence would never fire — only the force path
  copts.remove_on_success = false;
  Checkpointer cp(copts);
  ASSERT_OK(cp.OpenForRun("1PB-SCC", path, false));
  // The harness progress wrap turns the pending signal into cooperative
  // cancellation at the next boundary; the Checkpointer sees the same
  // flag and force-writes a final snapshot out of cadence first.
  SetSignalRequestedForTest(SIGINT);
  SemiExternalOptions options = SmallBudgetOptions();
  options.checkpoint = &cp;
  RunOutcome outcome = RunAlgorithmOnFile(SccAlgorithm::kOnePhaseBatch,
                                          path, options);
  SetSignalRequestedForTest(0);
  EXPECT_TRUE(outcome.status.IsIncomplete())
      << outcome.status.ToString();
  EXPECT_EQ(cp.written(), 1u) << "no forced final snapshot";
  EXPECT_EQ(GracefulExitCode(), 0) << "flag leaked past the test";

  // The interrupted run resumes to the exact reference outcome.
  Checkpointer resume_cp(copts);
  ASSERT_OK(resume_cp.OpenForRun("1PB-SCC", path, /*resume=*/true));
  EXPECT_TRUE(resume_cp.resumed());
  SemiExternalOptions resume_options = SmallBudgetOptions();
  resume_options.checkpoint = &resume_cp;
  SccResult result;
  RunStats stats;
  ASSERT_OK(RunScc(SccAlgorithm::kOnePhaseBatch, path, resume_options,
                   &result, &stats));
  EXPECT_EQ(result, expected);
  EXPECT_TRUE(stats.io == reference.io) << "resume perturbed the ledger";
}

using CheckpointDeathTest = CheckpointTest;

TEST_F(CheckpointDeathTest, GracefulSignalExitCodeIs128PlusSig) {
  // What scc_tool/bench main()s do after an interrupted run unwinds:
  // exit GracefulExitCode(). 128+SIGINT = 130, the shell convention.
  EXPECT_EXIT(
      {
        InstallGracefulSignalHandlers();
        ::raise(SIGINT);  // handled: recorded, not fatal
        std::exit(GracefulExitCode());
      },
      ::testing::ExitedWithCode(130), "");
}

}  // namespace
}  // namespace ioscc
