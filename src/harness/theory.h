// Analytic I/O-cost models from Section 2, printed alongside measured
// counts so the paper's "1,566,000,000 I/Os for one DFS vs ~4,000,000 for
// ours" comparison can be regenerated at any scale.
//
// All byte-per-record terms derive from the on-disk record widths in
// io/edge_file.h (kEdgeRecordBytes, kNodeIdRecordBytes) rather than
// hardcoded numerals, so the bounds stay correct if the edge format
// changes.

#ifndef IOSCC_HARNESS_THEORY_H_
#define IOSCC_HARNESS_THEORY_H_

#include <cmath>
#include <cstdint>

#include "io/edge_file.h"

namespace ioscc {

// Blocks one full sequential scan of an m-edge file reads: the data
// blocks (rounded up) plus the header block. This is the unit every
// per-pass bound below is measured in.
//
// `block_bytes` is the *payload* bytes one block carries — equal to the
// raw block size for format v1, and block_size minus the checksum
// trailer (floored to whole edge records) for v2; callers convert via
// EdgePayloadBytesPerBlock. Under v1 the two readings coincide, so the
// classic TheoryScanBlocks(m, block_size) call sites stay exact.
inline uint64_t TheoryScanBlocks(uint64_t m, uint64_t block_bytes) {
  return (kEdgeRecordBytes * m + block_bytes - 1) / block_bytes + 1;
}

// sort(m) = (m/B) * ceil(log_{M/B - 1}(m/B)) block I/Os (merge-sort
// bound). The merge fan-out is M/B minus one: io/external_sort.cc
// charges the output writer's block buffer against the same budget as
// the per-run input buffers (a k-way merge holds k + 1 blocks), so the
// analytic bound mirrors the implementation's real fan-in cap.
inline uint64_t TheorySortIos(uint64_t m, uint64_t memory_bytes,
                              uint64_t block_bytes) {
  const double edge_bytes = static_cast<double>(kEdgeRecordBytes);
  const double runs = std::max<double>(1.0, edge_bytes * m / block_bytes);
  const double fanout = std::max<double>(
      2.0, static_cast<double>(memory_bytes) / block_bytes - 1.0);
  const double passes = std::max(1.0, std::ceil(std::log(runs) /
                                                std::log(fanout)));
  return static_cast<uint64_t>(edge_bytes * m / block_bytes * passes);
}

// Buchsbaum et al. DFS bound: (|V| + |E|/B) * log2(|V|/B) + sort(|E|).
inline uint64_t TheoryBuchsbaumDfsIos(uint64_t n, uint64_t m,
                                      uint64_t memory_bytes,
                                      uint64_t block_bytes) {
  // A node's frontier entry is a node-id pair (node, parent).
  const double pair_bytes = 2.0 * kNodeIdRecordBytes;
  const double log_term =
      std::max(1.0, std::log2(static_cast<double>(n) / block_bytes *
                              pair_bytes));
  const double traversal =
      (static_cast<double>(n) +
       static_cast<double>(kEdgeRecordBytes) * m / block_bytes) *
      log_term;
  return static_cast<uint64_t>(traversal) +
         TheorySortIos(m, memory_bytes, block_bytes);
}

// Worst-case bound for our algorithms: depth(G) * |E| / B per construction
// plus one scan for the search (Section 6).
inline uint64_t TheoryTwoPhaseIos(uint64_t depth, uint64_t m,
                                  uint64_t block_bytes) {
  const uint64_t scan = kEdgeRecordBytes * m / block_bytes + 1;
  return (depth + 1) * scan;
}

// Section 7.4's I/O-saving model: if L iterations each prune P nodes and
// Q intra-pruned edges on average, the scans that follow skip
// (P + 2Q)(L - i) * b / B bytes of traffic at step i, summing to
// (P + 2Q) * L(L-1)/2 * b / B block I/Os saved in total (b = bytes per
// node id).
inline uint64_t TheoryPruningIoSavings(uint64_t pruned_nodes_per_iter,
                                       uint64_t pruned_edges_per_iter,
                                       uint64_t iterations,
                                       uint64_t block_bytes) {
  const double b = static_cast<double>(kNodeIdRecordBytes);
  const double p = static_cast<double>(pruned_nodes_per_iter);
  const double q = static_cast<double>(pruned_edges_per_iter);
  const double l = static_cast<double>(iterations);
  return static_cast<uint64_t>((p + 2 * q) * (l - 1) * l / 2 * b /
                               block_bytes);
}

// Section 7.4's batch-capacity model: pruning P nodes per iteration frees
// room for P/2 extra edges per later batch, L(L-1)/4 * P extra edges over
// the whole run.
inline uint64_t TheoryExtraBatchEdges(uint64_t pruned_nodes_per_iter,
                                      uint64_t iterations) {
  return pruned_nodes_per_iter * (iterations - 1) * iterations / 4;
}

// Memory the semi-external model charges for a c-block buffer manager
// (io/buffer_manager.h, either eviction policy — the budget is the frame
// count, not the policy): c resident blocks of B bytes. The paper's grant is
// O(|V|) words *plus a constant number of blocks* (Section 2 — the same
// constant PaperDefaultMemoryBytes spends on the scan buffer); a cache of
// c blocks simply spends c such constants. Reported alongside the
// algorithm's own grant, never subtracted from it, so enabling the cache
// cannot change batch sizes or results — only physical I/O.
inline uint64_t TheoryCacheMemoryBytes(uint64_t cache_blocks,
                                       uint64_t block_bytes) {
  return cache_blocks * block_bytes;
}

}  // namespace ioscc

#endif  // IOSCC_HARNESS_THEORY_H_
