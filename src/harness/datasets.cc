#include "harness/datasets.h"

#include <algorithm>

#include "io/edge_file.h"

namespace ioscc {
namespace {

uint64_t Scaled(double scale, uint64_t paper_count) {
  return std::max<uint64_t>(
      1000, static_cast<uint64_t>(scale * static_cast<double>(paper_count)));
}

}  // namespace

Status DatasetBuilder::Create(std::unique_ptr<DatasetBuilder>* out) {
  std::unique_ptr<DatasetBuilder> builder(new DatasetBuilder());
  IOSCC_RETURN_IF_ERROR(TempDir::Create("ioscc-data", &builder->dir_));
  *out = std::move(builder);
  return Status::OK();
}

Status DatasetBuilder::CitPatentsSim(double scale, uint64_t seed,
                                     std::string* path) {
  CitationSpec spec;
  spec.node_count = Scaled(scale, 3'774'768);
  spec.avg_degree = 4.37;
  spec.noise_fraction = 0.10;
  spec.seed = seed;
  return FromCitationSpec(spec, path);
}

Status DatasetBuilder::GoUniprotSim(double scale, uint64_t seed,
                                    std::string* path) {
  CitationSpec spec;
  spec.node_count = Scaled(scale, 6'967'956);
  spec.avg_degree = 4.99;
  // go-uniprot's SCCs are smaller on average than the other two datasets
  // (the effect behind 1PB's I/O win in Table 3); less noise -> smaller,
  // more scattered cycles.
  spec.noise_fraction = 0.06;
  spec.seed = seed;
  return FromCitationSpec(spec, path);
}

Status DatasetBuilder::CiteseerxSim(double scale, uint64_t seed,
                                    std::string* path) {
  CitationSpec spec;
  spec.node_count = Scaled(scale, 6'540'399);
  spec.avg_degree = 2.3;
  spec.noise_fraction = 0.10;
  spec.seed = seed;
  return FromCitationSpec(spec, path);
}

Status DatasetBuilder::WebspamSim(uint64_t node_count, double degree,
                                  uint64_t seed, std::string* path) {
  return FromPlantedSpec(WebspamSpec(node_count, degree, seed), path);
}

Status DatasetBuilder::Massive(const PlantedSccSpec& spec,
                               std::string* path) {
  return FromPlantedSpec(spec, path);
}

Status DatasetBuilder::FromPlantedSpec(const PlantedSccSpec& spec,
                                       std::string* path) {
  *path = dir_->NewFilePath(".edges");
  return GeneratePlantedSccFile(spec, *path, kDefaultBlockSize,
                                /*stats=*/nullptr);
}

Status DatasetBuilder::FromCitationSpec(const CitationSpec& spec,
                                        std::string* path) {
  *path = dir_->NewFilePath(".edges");
  return GenerateCitationFile(spec, *path, kDefaultBlockSize,
                              /*stats=*/nullptr);
}

std::string DatasetBuilder::NewPath(const std::string& suffix) {
  return dir_->NewFilePath(suffix);
}

Status DatasetBuilder::Describe(const std::string& path,
                                DatasetStats* stats) {
  EdgeFileInfo info;
  IOSCC_RETURN_IF_ERROR(ReadEdgeFileInfo(path, &info));
  stats->node_count = info.node_count;
  stats->edge_count = info.edge_count;
  return Status::OK();
}

}  // namespace ioscc
