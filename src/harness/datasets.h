// Named dataset construction for the benches (the paper's four real
// datasets as synthetic stand-ins plus the Table 2 synthetic families).
// Files are built lazily into a scratch directory owned by the builder.

#ifndef IOSCC_HARNESS_DATASETS_H_
#define IOSCC_HARNESS_DATASETS_H_

#include <memory>
#include <string>

#include "gen/generators.h"
#include "io/temp_dir.h"
#include "util/status.h"

namespace ioscc {

// Real-dataset stand-ins (see DESIGN.md §3 for the substitution rationale).
// `scale` multiplies the real node counts (1.0 = paper scale; benches
// default to 0.01). Average degrees match the real graphs.
struct DatasetStats {
  std::string name;
  uint64_t node_count = 0;
  uint64_t edge_count = 0;
};

class DatasetBuilder {
 public:
  static Status Create(std::unique_ptr<DatasetBuilder>* out);

  // cit-patents: 3.77M nodes, degree 4.37, +10% random edges.
  Status CitPatentsSim(double scale, uint64_t seed, std::string* path);
  // go-uniprot: 6.97M nodes, degree 4.99, denser, smaller SCCs.
  Status GoUniprotSim(double scale, uint64_t seed, std::string* path);
  // citeseerx: 6.54M nodes, degree 2.3, sparse.
  Status CiteseerxSim(double scale, uint64_t seed, std::string* path);
  // WEBSPAM-UK2007: 105.9M nodes, degree ~35 (stand-in uses `degree`).
  Status WebspamSim(uint64_t node_count, double degree, uint64_t seed,
                    std::string* path);

  // Table 2 synthetic families.
  Status Massive(const PlantedSccSpec& spec, std::string* path);

  // Generic: write any planted spec / citation spec.
  Status FromPlantedSpec(const PlantedSccSpec& spec, std::string* path);
  Status FromCitationSpec(const CitationSpec& spec, std::string* path);

  // A fresh file path inside the scratch directory (for induced subgraphs
  // and other derived datasets).
  std::string NewPath(const std::string& suffix);

  static Status Describe(const std::string& path, DatasetStats* stats);

 private:
  DatasetBuilder() = default;
  std::unique_ptr<TempDir> dir_;
};

}  // namespace ioscc

#endif  // IOSCC_HARNESS_DATASETS_H_
