// I/O cost-model conformance: checks a run's measured block I/O against
// the analytic per-pass bounds of harness/theory.h.
//
// Each driver has a structural cost model — so many full scans of the
// edge stream per recorded iteration — built from TheoryScanBlocks. The
// verdict compares the measured *physical* I/O total
// (TotalPhysicalBlockIos: blocks that actually crossed the disk
// boundary) against that bound: measured <= bound is PASS, and the
// measured/bound ratio quantifies the headroom (pruning, early
// termination, and the block cache typically push it well under 1).
// With no cache installed physical == logical, so cache-less verdicts
// are unchanged. A FAIL means the implementation performs I/O the
// Section 2/6 analysis does not account for — a regression the benches
// and CI surface instead of silently absorbing.

#ifndef IOSCC_HARNESS_IO_BUDGET_H_
#define IOSCC_HARNESS_IO_BUDGET_H_

#include <string>

#include "io/edge_file.h"
#include "obs/io_audit.h"
#include "obs/telemetry.h"
#include "scc/algorithms.h"
#include "scc/options.h"

namespace ioscc {

struct IoBudgetVerdict {
  std::string model;          // cost model used, e.g. "3-scans-per-iter"
  uint64_t bound_ios = 0;     // analytic upper bound, block I/Os
  uint64_t measured_ios = 0;  // RunStats.io.TotalPhysicalBlockIos()
  double ratio = 0;           // measured / bound
  bool pass = false;          // measured <= bound

  // One-line human rendering: "PASS 0.42 (5,120 / 12,288 I/Os, model)".
  std::string Format() const;
};

// The analytic block-I/O bound for one driver on an m-edge input, given
// the run's observed pass structure (iterations, search scans). Exposed
// separately from CheckIoBudget so benches can print budgets up front.
//
// Models (scan = TheoryScanBlocks(m, B), B = the smaller of the input and
// scratch per-block *payloads* — raw block size for v1 files, minus the
// checksum trailer for v2 — so rewrites at a finer granularity or with
// checksums enabled stay covered):
//   1P-SCC / 1PB-SCC  (3 * iterations + 1) * scan   — each iteration is at
//                     most a mutating scan, a rejection scan, and a
//                     rewrite of at most the full stream
//   2P-SCC            (iterations + search_scans + 1) * scan — Section
//                     6's depth(G)-passes construction plus search scans
//   DFS-SCC           (iterations + 4) * scan — tree-repair scans over
//                     G and reverse(G) plus the external reversal
//   EM-SCC            (2 * iterations + 2) * scan — each contraction pass
//                     reads the stream and rewrites the survivor edges
// The trailing "+ scan" slack absorbs per-open header reads.
uint64_t IoBudgetBoundIos(SccAlgorithm algorithm, uint64_t edge_count,
                          uint64_t block_bytes, const RunStats& stats);

// Short name of the model backing IoBudgetBoundIos for `algorithm`.
const char* IoBudgetModelName(SccAlgorithm algorithm);

// Packages the bound-vs-measured comparison for one finished (or
// partial) run of `algorithm` on the edge file described by `info`.
IoBudgetVerdict CheckIoBudget(SccAlgorithm algorithm,
                              const EdgeFileInfo& info,
                              const SemiExternalOptions& options,
                              const RunStats& stats);

// The audit-file form of a verdict (obs/io_audit.h), labeled with the
// producing algorithm and dataset.
AuditBudgetRecord ToAuditBudgetRecord(const IoBudgetVerdict& verdict,
                                      SccAlgorithm algorithm,
                                      const std::string& dataset);

// The linear form of IoBudgetBoundIos for the live telemetry estimator:
// bound(iterations) = fixed_blocks + blocks_per_iteration * iterations,
// with the same scan unit and payload handling as CheckIoBudget. 2P's
// search scans (bounded by its construction passes) fold into the
// per-iteration slope so the anchor stays a single linear model.
// `anticipated_iterations` seeds the estimator's anchor: the caller's
// max_iterations cap when set, a small structural default otherwise;
// obs/telemetry.h grows the anchor past it as the run's real iteration
// count overtakes it.
TelemetryRunInfo MakeTelemetryRunInfo(SccAlgorithm algorithm,
                                      const std::string& dataset,
                                      const EdgeFileInfo& info,
                                      const SemiExternalOptions& options);

}  // namespace ioscc

#endif  // IOSCC_HARNESS_IO_BUDGET_H_
