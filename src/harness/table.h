// Console table rendering for the bench harness: each bench binary prints
// the rows/series of the paper table or figure it regenerates.

#ifndef IOSCC_HARNESS_TABLE_H_
#define IOSCC_HARNESS_TABLE_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace ioscc {

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  // Renders with aligned columns (first column left-aligned, the rest
  // right-aligned, matching the paper's tables).
  void Print(std::FILE* out = stdout) const;

  // Appends the table as CSV rows (header + data, comma-separated; commas
  // inside cells — e.g. FormatCount output — are stripped).
  void AppendCsv(std::FILE* out) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// 1234567 -> "1,234,567".
std::string FormatCount(uint64_t value);

// Seconds with adaptive precision ("0.42s", "12.3s", "1.2h").
std::string FormatSeconds(double seconds);

// Compact magnitude ("7.6M", "113K").
std::string FormatCompact(uint64_t value);

// Percentage with two decimals ("3.02%").
std::string FormatPercent(double fraction);

}  // namespace ioscc

#endif  // IOSCC_HARNESS_TABLE_H_
