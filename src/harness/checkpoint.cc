#include "harness/checkpoint.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <utility>
#include <vector>

#include "io/io_counters.h"
#include "io/snapshot_file.h"
#include "obs/metrics.h"
#include "util/build_info.h"
#include "util/logging.h"
#include "util/signals.h"

namespace ioscc {
namespace {

namespace fs = std::filesystem;

struct CheckpointCounters {
  Counter* written;
  Counter* bytes_written;
  Counter* write_failures;
  Counter* pruned;
  Counter* forced;
  Counter* resume_loaded;
  Counter* resume_fallbacks;

  static const CheckpointCounters& Get() {
    static CheckpointCounters counters{
        MetricsRegistry::Global().GetCounter("checkpoint.written"),
        MetricsRegistry::Global().GetCounter("checkpoint.bytes_written"),
        MetricsRegistry::Global().GetCounter("checkpoint.write_failures"),
        MetricsRegistry::Global().GetCounter("checkpoint.pruned"),
        MetricsRegistry::Global().GetCounter("checkpoint.forced"),
        MetricsRegistry::Global().GetCounter("resume.loaded"),
        MetricsRegistry::Global().GetCounter("resume.fallbacks")};
    return counters;
  }
};

// Parses the sequence number out of "ckpt-NNNNNN.snap"; false otherwise.
bool ParseSnapshotName(const std::string& name, uint64_t* seq) {
  constexpr const char kPrefix[] = "ckpt-";
  constexpr const char kSuffix[] = ".snap";
  const size_t prefix_len = sizeof(kPrefix) - 1;
  const size_t suffix_len = sizeof(kSuffix) - 1;
  if (name.size() <= prefix_len + suffix_len) return false;
  if (name.compare(0, prefix_len, kPrefix) != 0) return false;
  if (name.compare(name.size() - suffix_len, suffix_len, kSuffix) != 0) {
    return false;
  }
  uint64_t value = 0;
  for (size_t i = prefix_len; i < name.size() - suffix_len; ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
    value = value * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  *seq = value;
  return true;
}

// All snapshots in `dir`, sorted by ascending sequence number.
std::vector<std::pair<uint64_t, std::string>> ListSnapshots(
    const std::string& dir) {
  std::vector<std::pair<uint64_t, std::string>> found;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    uint64_t seq = 0;
    if (ParseSnapshotName(entry.path().filename().string(), &seq)) {
      found.emplace_back(seq, entry.path().string());
    }
  }
  std::sort(found.begin(), found.end());
  return found;
}

}  // namespace

Checkpointer::Checkpointer(const CheckpointOptions& options)
    : options_(options) {}

std::string Checkpointer::SnapshotPath(uint64_t seq) const {
  char name[32];
  std::snprintf(name, sizeof(name), "ckpt-%06llu.snap",
                static_cast<unsigned long long>(seq));
  return (fs::path(options_.dir) / name).string();
}

Status Checkpointer::OpenForRun(const std::string& algorithm,
                                const std::string& input_path,
                                bool resume) {
  if (!enabled()) return Status::OK();
  algorithm_ = algorithm;
  input_path_ = input_path;

  std::error_code ec;
  fs::create_directories(options_.dir, ec);
  if (ec) {
    return Status::IoError("cannot create checkpoint dir " + options_.dir +
                           ": " + ec.message());
  }
  IOSCC_RETURN_IF_ERROR(
      FingerprintInputFile(input_path, &input_size_, &input_head_crc_));

  if (!resume) return Status::OK();

  // Newest first: the first candidate that validates wins; everything
  // that does not (torn, truncated, wrong run) is a counted fallback.
  auto snapshots = ListSnapshots(options_.dir);
  for (auto it = snapshots.rbegin(); it != snapshots.rend(); ++it) {
    SnapshotManifest manifest;
    std::string state;
    Status st = ReadSnapshot(it->second, &manifest, &state, &resume_io_);
    if (!st.ok()) {
      LogInfo("resume: skipping %s (%s)", it->second.c_str(),
              st.ToString().c_str());
      ++resume_fallbacks_;
      CheckpointCounters::Get().resume_fallbacks->Increment();
      continue;
    }
    if (manifest.algorithm != algorithm_ ||
        manifest.input_path != input_path_ ||
        manifest.input_size != input_size_ ||
        manifest.input_head_crc != input_head_crc_ ||
        manifest.build_sha != BuildGitSha()) {
      LogInfo("resume: skipping %s (manifest does not match this run)",
              it->second.c_str());
      ++resume_fallbacks_;
      CheckpointCounters::Get().resume_fallbacks->Increment();
      continue;
    }
    // The snapshot may depend on a stream rewrite in the interrupted
    // process's scratch dir. If that stream is gone (e.g. the snapshot
    // was retained by --keep-checkpoints after a successful run, whose
    // scratch was correctly deleted), the driver could not re-open it —
    // fall back instead of handing over a dead-end state.
    if (!manifest.stream_path.empty() &&
        manifest.stream_path != input_path_ &&
        !fs::exists(manifest.stream_path)) {
      LogInfo("resume: skipping %s (its edge stream %s is gone)",
              it->second.c_str(), manifest.stream_path.c_str());
      ++resume_fallbacks_;
      CheckpointCounters::Get().resume_fallbacks->Increment();
      continue;
    }
    resume_phase_ = manifest.phase;
    resume_payload_ = std::move(state);
    has_resume_state_ = true;
    resumed_ = true;
    resume_seq_ = manifest.seq;
    resume_iteration_ = manifest.iteration;
    seq_ = manifest.seq;  // continue the sequence
    CheckpointCounters::Get().resume_loaded->Increment();
    LogInfo("resume: restored %s (phase %s, iteration %llu)",
            it->second.c_str(), resume_phase_.c_str(),
            static_cast<unsigned long long>(resume_iteration_));
    return Status::OK();
  }
  // Nothing usable: run from scratch. A crash before the first boundary
  // (or before the first snapshot) must resume into a plain fresh run.
  return Status::OK();
}

void Checkpointer::AtBoundary(
    const char* phase, uint64_t iteration, const std::string& stream_path,
    const std::function<void(BlobWriter*)>& encode) {
  if (!enabled() || degraded_) return;
  // A pending graceful-stop signal forces a final snapshot regardless of
  // cadence, so SIGINT never loses more than the in-flight pass.
  const bool forced = SignalRequested() != 0;
  if (!forced && options_.every > 1 && iteration % options_.every != 0) {
    return;
  }

  BlobWriter state;
  encode(&state);

  SnapshotManifest manifest;
  manifest.algorithm = algorithm_;
  manifest.phase = phase;
  manifest.iteration = iteration;
  manifest.seq = ++seq_;
  manifest.input_path = input_path_;
  manifest.input_size = input_size_;
  manifest.input_head_crc = input_head_crc_;
  manifest.build_sha = BuildGitSha();
  manifest.stream_path = stream_path;

  const CheckpointCounters& counters = CheckpointCounters::Get();
  Status st = WriteSnapshot(SnapshotPath(manifest.seq), manifest,
                            state.data(), &checkpoint_io_);
  if (!st.ok()) {
    // Invariant 1: never poison a healthy run. Warn, record, and stop
    // checkpointing; the algorithm itself continues unharmed.
    degraded_ = true;
    ++write_failures_;
    counters.write_failures->Increment();
    LogInfo("checkpoint write failed, continuing un-checkpointed: %s",
            st.ToString().c_str());
    return;
  }
  ++written_;
  counters.written->Increment();
  counters.bytes_written->Add(state.data().size());
  if (forced) counters.forced->Increment();
  IoCounters().BumpCheckpoint();
  Prune();
}

void Checkpointer::Prune() {
  const uint64_t keep = std::max<uint64_t>(1, options_.keep);
  if (seq_ <= keep) return;
  const CheckpointCounters& counters = CheckpointCounters::Get();
  for (const auto& [seq, path] : ListSnapshots(options_.dir)) {
    if (seq + keep > seq_) break;  // ascending: the rest are retained
    std::error_code ec;
    if (fs::remove(path, ec)) counters.pruned->Increment();
  }
}

bool Checkpointer::ResumeState(std::string* phase, std::string* payload) {
  if (!has_resume_state_) return false;
  has_resume_state_ = false;
  *phase = resume_phase_;
  *payload = std::move(resume_payload_);
  resume_payload_.clear();
  return true;
}

void Checkpointer::ChargeResumeIo(const IoStats& delta) {
  resume_io_ += delta;
}

void Checkpointer::OnRunFinished(bool run_ok) {
  if (!enabled() || !run_ok || !options_.remove_on_success) return;
  std::error_code ec;
  for (const auto& [seq, path] : ListSnapshots(options_.dir)) {
    (void)seq;
    fs::remove(path, ec);
  }
}

void AttachCheckpointInfo(RunReportEntry* entry, const Checkpointer& cp) {
  if (!cp.enabled()) return;
  entry->has_checkpoint = true;
  entry->checkpoints_written = cp.written();
  entry->checkpoint_write_failures = cp.write_failures();
  entry->checkpoint_degraded = cp.degraded();
  entry->checkpoint_io = cp.checkpoint_io();
  entry->resumed = cp.resumed();
  entry->resume_seq = cp.resume_seq();
  entry->resume_iteration = cp.resume_iteration();
  entry->resume_fallbacks = cp.resume_fallbacks();
  entry->resume_io = cp.resume_io();
}

Status FsckSnapshotFile(const std::string& path, std::string* summary) {
  SnapshotManifest manifest;
  IOSCC_RETURN_IF_ERROR(ReadSnapshot(path, &manifest, nullptr, nullptr));
  if (summary != nullptr) {
    *summary = manifest.algorithm + " phase=" + manifest.phase +
               " iteration=" + std::to_string(manifest.iteration) +
               " seq=" + std::to_string(manifest.seq) + " input=" +
               manifest.input_path;
    // A snapshot whose recorded edge stream vanished is structurally
    // sound but unresumable; surface that without failing the check.
    if (!manifest.stream_path.empty() &&
        manifest.stream_path != manifest.input_path &&
        !fs::exists(manifest.stream_path)) {
      *summary += " (stream " + manifest.stream_path + " is gone)";
    }
  }
  return Status::OK();
}

Status FsckCheckpointDir(const std::string& dir,
                         CheckpointFsckReport* report) {
  *report = CheckpointFsckReport();
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) {
    return Status::NotFound(dir + " is not a directory");
  }
  Status first_bad = Status::OK();
  for (const auto& [seq, path] : ListSnapshots(dir)) {
    (void)seq;
    ++report->snapshots_checked;
    Status st = FsckSnapshotFile(path, nullptr);
    if (!st.ok()) {
      ++report->snapshots_bad;
      if (first_bad.ok()) {
        first_bad = st;
        report->first_bad_path = path;
        report->first_bad_error = st.ToString();
      }
    }
  }
  return first_bad;
}

}  // namespace ioscc
