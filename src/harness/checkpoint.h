// Crash-consistent checkpoint/resume for long-running SCC runs.
//
// Checkpointer is the harness-side implementation of the driver seam
// (scc/checkpoint_hook.h). At every boundary the drivers offer, it
// decides by cadence (--checkpoint-every) whether to cut a snapshot,
// serializes the driver state, and persists it through the durable
// snapshot format (io/snapshot_file.h: version + CRC32C + temp/fsync/
// rename). Snapshot files are `ckpt-NNNNNN.snap` under --checkpoint-dir,
// with the newest `keep` retained so a snapshot torn by a crash mid-write
// (which the format's rename discipline already makes nearly impossible)
// or corrupted on disk still leaves a previous valid one to fall back to.
//
// Resume (`scc_tool run --resume`): OpenForRun scans the directory newest
// first, validates each candidate (CRC + format version + algorithm +
// input path + input content fingerprint + build SHA) and hands the first
// valid state to the driver; invalid candidates are skipped with a
// warning and counted as fallbacks.
//
// Two invariants this class is built around:
//   1. A checkpoint must never poison a healthy run: any write failure
//      (ENOSPC included) logs a warning, bumps checkpoint.write_failures,
//      and permanently degrades to "no checkpointing" — the run itself
//      continues and stays correct.
//   2. Ledger identity: snapshot I/O goes to the Checkpointer's own
//      ledger and resume replay I/O to a separate resume ledger, so the
//      run's logical-I/O ledger is byte-identical to an uninterrupted,
//      un-checkpointed run. Both side ledgers are reported in the run
//      report's "checkpoint" object (AttachCheckpointInfo).

#ifndef IOSCC_HARNESS_CHECKPOINT_H_
#define IOSCC_HARNESS_CHECKPOINT_H_

#include <cstdint>
#include <string>

#include "io/io_stats.h"
#include "obs/run_report.h"
#include "scc/checkpoint_hook.h"
#include "util/status.h"

namespace ioscc {

struct CheckpointOptions {
  std::string dir;    // empty = checkpointing disabled
  uint64_t every = 1; // snapshot every N offered boundaries
  uint64_t keep = 2;  // retained snapshots (>= 2 enables torn-fallback)
  bool remove_on_success = true;  // clean snapshots after a finished run
};

class Checkpointer : public CheckpointHook {
 public:
  explicit Checkpointer(const CheckpointOptions& options);

  // Creates the checkpoint directory, fingerprints the input, and — when
  // `resume` — loads the newest valid snapshot for this (algorithm,
  // input) pair. Finding no usable snapshot is NOT an error: the run
  // simply starts fresh (a crash before the first boundary must still
  // resume cleanly). No-op when disabled.
  Status OpenForRun(const std::string& algorithm,
                    const std::string& input_path, bool resume);

  // CheckpointHook. AtBoundary writes out of cadence when a graceful-stop
  // signal is pending (util/signals.h), so SIGINT gets a final snapshot.
  void AtBoundary(const char* phase, uint64_t iteration,
                  const std::string& stream_path,
                  const std::function<void(BlobWriter*)>& encode) override;
  bool ResumeState(std::string* phase, std::string* payload) override;
  void ChargeResumeIo(const IoStats& delta) override;
  bool SnapshotOnDisk() const override { return written_ > 0; }

  // Removes the run's snapshots after a successful finish (when
  // remove_on_success); keeps them after failures so the run can be
  // resumed.
  void OnRunFinished(bool run_ok);

  bool enabled() const { return !options_.dir.empty(); }
  bool degraded() const { return degraded_; }
  bool resumed() const { return resumed_; }
  uint64_t written() const { return written_; }
  uint64_t write_failures() const { return write_failures_; }
  uint64_t resume_seq() const { return resume_seq_; }
  uint64_t resume_iteration() const { return resume_iteration_; }
  uint64_t resume_fallbacks() const { return resume_fallbacks_; }
  const IoStats& checkpoint_io() const { return checkpoint_io_; }
  const IoStats& resume_io() const { return resume_io_; }

 private:
  std::string SnapshotPath(uint64_t seq) const;
  void Prune();

  const CheckpointOptions options_;
  std::string algorithm_;
  std::string input_path_;
  uint64_t input_size_ = 0;
  uint32_t input_head_crc_ = 0;

  uint64_t seq_ = 0;          // last written (or resumed-from) sequence
  uint64_t written_ = 0;
  uint64_t write_failures_ = 0;
  bool degraded_ = false;

  bool has_resume_state_ = false;  // consumed by the driver exactly once
  std::string resume_phase_;
  std::string resume_payload_;
  bool resumed_ = false;
  uint64_t resume_seq_ = 0;
  uint64_t resume_iteration_ = 0;
  uint64_t resume_fallbacks_ = 0;

  IoStats checkpoint_io_;  // snapshot writes; never the run ledger
  IoStats resume_io_;      // replay reads on resume
};

// Copies the Checkpointer's outcome into the report entry's checkpoint
// fields (kept here so runner.cc stays ignorant of checkpointing).
void AttachCheckpointInfo(RunReportEntry* entry, const Checkpointer& cp);

// fsck support (`scc_tool fsck <dir-or-.snap>`): validates every
// `ckpt-*.snap` under `dir` (CRC, magic, version, payload parse).
struct CheckpointFsckReport {
  uint64_t snapshots_checked = 0;
  uint64_t snapshots_bad = 0;
  std::string first_bad_path;
  std::string first_bad_error;
};

// Checks all snapshots; OK when every one validates, otherwise the first
// bad snapshot's status (the report keeps counting past it).
Status FsckCheckpointDir(const std::string& dir,
                         CheckpointFsckReport* report);

// Validates a single snapshot file; fills `summary` with a one-line
// description (algorithm/phase/iteration/seq) on success.
Status FsckSnapshotFile(const std::string& path, std::string* summary);

}  // namespace ioscc

#endif  // IOSCC_HARNESS_CHECKPOINT_H_
