#include "harness/table.h"

#include <algorithm>
#include <cstdio>

namespace ioscc {

void Table::Print(std::FILE* out) const {
  std::vector<size_t> width(headers_.size(), 0);
  for (size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < width.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < width.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      if (c == 0) {
        std::fprintf(out, "%-*s", static_cast<int>(width[c]), cell.c_str());
      } else {
        std::fprintf(out, "  %*s", static_cast<int>(width[c]), cell.c_str());
      }
    }
    std::fputc('\n', out);
  };
  print_row(headers_);
  size_t total = 0;
  for (size_t c = 0; c < width.size(); ++c) total += width[c] + (c ? 2 : 0);
  std::string rule(total, '-');
  std::fprintf(out, "%s\n", rule.c_str());
  for (const auto& row : rows_) print_row(row);
}

void Table::AppendCsv(std::FILE* out) const {
  auto emit = [out](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) {
      if (c != 0) std::fputc(',', out);
      for (char ch : cells[c]) {
        if (ch != ',') std::fputc(ch, out);
      }
    }
    std::fputc('\n', out);
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

std::string FormatCount(uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  const int size = static_cast<int>(digits.size());
  const int lead = size % 3;
  for (int i = 0; i < size; ++i) {
    if (i != 0 && (i - lead) % 3 == 0) out += ',';
    out += digits[i];
  }
  return out;
}

std::string FormatSeconds(double seconds) {
  char buffer[64];
  if (seconds >= 3600) {
    std::snprintf(buffer, sizeof(buffer), "%.2fh", seconds / 3600);
  } else if (seconds >= 100) {
    std::snprintf(buffer, sizeof(buffer), "%.0fs", seconds);
  } else if (seconds >= 1) {
    std::snprintf(buffer, sizeof(buffer), "%.1fs", seconds);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.3fs", seconds);
  }
  return buffer;
}

std::string FormatCompact(uint64_t value) {
  char buffer[64];
  if (value >= 1'000'000'000ULL) {
    std::snprintf(buffer, sizeof(buffer), "%.1fG", value / 1e9);
  } else if (value >= 1'000'000ULL) {
    std::snprintf(buffer, sizeof(buffer), "%.1fM", value / 1e6);
  } else if (value >= 10'000ULL) {
    std::snprintf(buffer, sizeof(buffer), "%.1fK", value / 1e3);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%llu",
                  static_cast<unsigned long long>(value));
  }
  return buffer;
}

std::string FormatPercent(double fraction) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.2f%%", fraction * 100.0);
  return buffer;
}

}  // namespace ioscc
