// Runs an algorithm on a dataset file and packages the outcome the way the
// paper reports it (time, # of I/Os, or INF when the cap was hit).

#ifndef IOSCC_HARNESS_RUNNER_H_
#define IOSCC_HARNESS_RUNNER_H_

#include <optional>
#include <string>
#include <vector>

#include "harness/io_budget.h"
#include "obs/phase_profiler.h"
#include "obs/run_report.h"
#include "scc/algorithms.h"
#include "scc/options.h"
#include "scc/scc_result.h"
#include "util/status.h"

namespace ioscc {

// A failed run is a *value*, not an exception: storage faults (IOError
// after retries, Corruption from a checksum mismatch) land here as a
// non-ok status whose message names the file/block, the table cells
// render "ERR", and MakeReportEntry carries the full error string into
// the JSONL report — so a sweep continues past a poisoned dataset
// instead of dying on it.
struct RunOutcome {
  Status status;
  SccResult result;
  RunStats stats;

  // Cost-model conformance for this run (absent only when the input
  // header could not be read back). Report entries carry it into JSONL.
  std::optional<IoBudgetVerdict> io_budget;

  // Per-phase wall/CPU/RSS/I/O profile of this run, captured when a
  // PhaseProfiler is installed (empty otherwise); report entries carry
  // it into JSONL as the "phases" array.
  std::vector<PhaseProfile> phases;

  bool Finished() const { return status.ok(); }
  bool TimedOut() const { return status.IsIncomplete(); }
};

// Runs and, if `oracle` is non-null, cross-checks the partition against it
// (mismatch turns the outcome's status into Internal — benches report it
// loudly instead of publishing wrong numbers).
RunOutcome RunAlgorithmOnFile(SccAlgorithm algorithm, const std::string& path,
                              const SemiExternalOptions& options,
                              const SccResult* oracle = nullptr);

// "12.3s" / "INF" / "ERR".
std::string TimeCell(const RunOutcome& outcome);
// "4,096" / "INF" / "ERR".
std::string IoCell(const RunOutcome& outcome);

// Packages an outcome as a run-report record (obs/run_report.h).
// `experiment` labels the producing bench/tool.
RunReportEntry MakeReportEntry(const std::string& experiment,
                               SccAlgorithm algorithm,
                               const std::string& dataset,
                               const RunOutcome& outcome);

// The paper's default memory grant: 4 bytes * 3|V| + one block, i.e. the
// three per-node words the BR+-Tree needs plus a single I/O buffer.
// Used as the baseline for the memory-scaling experiment (Fig. 13).
uint64_t PaperDefaultMemoryBytes(uint64_t node_count, size_t block_size);

}  // namespace ioscc

#endif  // IOSCC_HARNESS_RUNNER_H_
