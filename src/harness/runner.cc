#include "harness/runner.h"

#include "harness/table.h"
#include "io/edge_file.h"
#include "obs/trace.h"
#include "util/signals.h"

namespace ioscc {

RunOutcome RunAlgorithmOnFile(SccAlgorithm algorithm, const std::string& path,
                              const SemiExternalOptions& options,
                              const SccResult* oracle) {
  RunOutcome outcome;
  // Graceful-stop seam: every driver already polls its progress callback
  // at pass boundaries, so folding the SIGINT/SIGTERM check in here
  // covers scc_tool and every bench without per-driver edits. The driver
  // winds down with Status::Incomplete at the next boundary — after the
  // Checkpointer's forced final snapshot, which runs before the progress
  // callback at each boundary.
  SemiExternalOptions run_options = options;
  const auto inner_progress = options.progress;
  run_options.progress = [inner_progress](uint64_t iteration,
                                          const IterationStats& stats) {
    if (SignalRequested() != 0) return false;
    return !inner_progress || inner_progress(iteration, stats);
  };
  // Input header, read up front *unconditionally*: the telemetry
  // estimator needs the edge count before the run, the budget verdict
  // needs it after, and doing the read whether or not an engine is
  // installed keeps the audit stream byte-identical telemetry on vs off.
  EdgeFileInfo info;
  const bool have_info = ReadEdgeFileInfo(path, &info).ok();
  Telemetry* telemetry = GetTelemetry();
  if (telemetry != nullptr && have_info) {
    telemetry->BeginRun(
        MakeTelemetryRunInfo(algorithm, path, info, options));
  }
  // With a PhaseProfiler installed, bracket the run so its report entry
  // carries just this run's per-phase delta (the profiler itself keeps
  // accumulating across runs for the shutdown-time process profile).
  PhaseProfiler* profiler = GetPhaseProfiler();
  std::vector<PhaseProfile> before;
  if (profiler != nullptr) before = profiler->Snapshot();
  {
    // Top-level span: one per algorithm execution, holding the whole
    // run's I/O delta (phase spans nest underneath).
    TraceSpan span(AlgorithmName(algorithm), &outcome.stats.io);
    outcome.status = RunScc(algorithm, path, run_options, &outcome.result,
                            &outcome.stats);
  }
  if (telemetry != nullptr) telemetry->EndRun();
  if (profiler != nullptr) {
    outcome.phases = PhaseProfiler::Delta(before, profiler->Snapshot());
  }
  if (outcome.status.ok() && oracle != nullptr &&
      !(outcome.result == *oracle)) {
    outcome.status = Status::Internal(
        std::string(AlgorithmName(algorithm)) +
        " produced a partition that disagrees with the oracle");
  }
  // Conformance verdict vs the analytic bound: computed even for partial
  // runs (the bound scales with the iterations actually performed).
  if (have_info) {
    outcome.io_budget =
        CheckIoBudget(algorithm, info, options, outcome.stats);
  }
  return outcome;
}

std::string TimeCell(const RunOutcome& outcome) {
  if (outcome.TimedOut()) return "INF";
  if (!outcome.status.ok()) return "ERR";
  return FormatSeconds(outcome.stats.seconds);
}

std::string IoCell(const RunOutcome& outcome) {
  if (outcome.TimedOut()) return "INF";
  if (!outcome.status.ok()) return "ERR";
  return FormatCount(outcome.stats.io.TotalBlockIos());
}

RunReportEntry MakeReportEntry(const std::string& experiment,
                               SccAlgorithm algorithm,
                               const std::string& dataset,
                               const RunOutcome& outcome) {
  RunReportEntry entry;
  entry.experiment = experiment;
  entry.algorithm = AlgorithmName(algorithm);
  entry.dataset = dataset;
  entry.status = outcome.status.ToString();
  entry.finished = outcome.Finished();
  entry.timed_out = outcome.TimedOut();
  entry.stats = outcome.stats;
  if (outcome.io_budget.has_value()) {
    entry.has_io_budget = true;
    entry.io_budget_model = outcome.io_budget->model;
    entry.io_budget_bound_ios = outcome.io_budget->bound_ios;
    entry.io_budget_measured_ios = outcome.io_budget->measured_ios;
    entry.io_budget_ratio = outcome.io_budget->ratio;
    entry.io_budget_pass = outcome.io_budget->pass;
  }
  if (outcome.Finished()) {
    entry.component_count = outcome.result.ComponentCount();
    entry.largest_component = outcome.result.LargestComponentSize();
    entry.nodes_in_nontrivial_sccs = outcome.result.NodesInNontrivialSccs();
  }
  entry.phases = outcome.phases;
  return entry;
}

uint64_t PaperDefaultMemoryBytes(uint64_t node_count, size_t block_size) {
  return 4 * 3 * node_count + block_size;
}

}  // namespace ioscc
