#include "harness/runner.h"

#include "harness/table.h"

namespace ioscc {

RunOutcome RunAlgorithmOnFile(SccAlgorithm algorithm, const std::string& path,
                              const SemiExternalOptions& options,
                              const SccResult* oracle) {
  RunOutcome outcome;
  outcome.status =
      RunScc(algorithm, path, options, &outcome.result, &outcome.stats);
  if (outcome.status.ok() && oracle != nullptr &&
      !(outcome.result == *oracle)) {
    outcome.status = Status::Internal(
        std::string(AlgorithmName(algorithm)) +
        " produced a partition that disagrees with the oracle");
  }
  return outcome;
}

std::string TimeCell(const RunOutcome& outcome) {
  if (outcome.TimedOut()) return "INF";
  if (!outcome.status.ok()) return "ERR";
  return FormatSeconds(outcome.stats.seconds);
}

std::string IoCell(const RunOutcome& outcome) {
  if (outcome.TimedOut()) return "INF";
  if (!outcome.status.ok()) return "ERR";
  return FormatCount(outcome.stats.io.TotalBlockIos());
}

uint64_t PaperDefaultMemoryBytes(uint64_t node_count, size_t block_size) {
  return 4 * 3 * node_count + block_size;
}

}  // namespace ioscc
