#include "harness/io_budget.h"

#include <algorithm>
#include <cstdio>

#include "harness/table.h"
#include "harness/theory.h"

namespace ioscc {

std::string IoBudgetVerdict::Format() const {
  char ratio_buf[32];
  std::snprintf(ratio_buf, sizeof ratio_buf, "%.2f", ratio);
  return std::string(pass ? "PASS" : "FAIL") + " " + ratio_buf + " (" +
         FormatCount(measured_ios) + " / " + FormatCount(bound_ios) +
         " I/Os, " + model + ")";
}

const char* IoBudgetModelName(SccAlgorithm algorithm) {
  switch (algorithm) {
    case SccAlgorithm::kOnePhaseBatch:
    case SccAlgorithm::kOnePhase:
      return "3-scans-per-iter";
    case SccAlgorithm::kTwoPhase:
      return "depth-passes+search";
    case SccAlgorithm::kDfs:
      return "tree-scans+reverse";
    case SccAlgorithm::kEm:
      return "contract+rewrite";
  }
  return "unknown";
}

uint64_t IoBudgetBoundIos(SccAlgorithm algorithm, uint64_t edge_count,
                          uint64_t block_bytes, const RunStats& stats) {
  const uint64_t scan = TheoryScanBlocks(edge_count, block_bytes);
  switch (algorithm) {
    case SccAlgorithm::kOnePhaseBatch:
    case SccAlgorithm::kOnePhase:
      // Mutating scan + rejection scan + stream rewrite, each at most one
      // full scan of the (monotonically shrinking) stream.
      return (3 * stats.iterations + 1) * scan;
    case SccAlgorithm::kTwoPhase:
      // One read-only pass per construction iteration and per search scan
      // — 2P never rewrites the stream.
      return (stats.iterations + stats.search_scans + 1) * scan;
    case SccAlgorithm::kDfs:
      // stats.iterations counts tree-repair scans over both G and
      // reverse(G); the reversal itself is one read plus one write scan.
      return (stats.iterations + 4) * scan;
    case SccAlgorithm::kEm:
      // Each contraction pass reads the stream and rewrites at most all
      // of it; the final in-memory pass is one more read scan.
      return (2 * stats.iterations + 2) * scan;
  }
  return 0;
}

IoBudgetVerdict CheckIoBudget(SccAlgorithm algorithm,
                              const EdgeFileInfo& info,
                              const SemiExternalOptions& options,
                              const RunStats& stats) {
  // Scratch rewrites may use a smaller block size than the input; bound
  // with the finer granularity so every write pass stays covered. Both
  // terms are *payload* bytes per block: a v2 block carries 4 fewer
  // bytes of edges than its raw size (checksum trailer), so a v2 file
  // spans slightly more blocks per scan and the bound must track that.
  // Scratch files are written at the process-default version; under the
  // default (v1, no injector) this reduces to min(block sizes) exactly
  // as before.
  const uint64_t input_payload =
      EdgePayloadBytesPerBlock(info.version, info.block_size);
  const uint64_t scratch_payload = EdgePayloadBytesPerBlock(
      DefaultEdgeFileVersion(), options.scratch_block_size > 0
                                    ? options.scratch_block_size
                                    : info.block_size);
  const uint64_t block_bytes =
      std::min<uint64_t>(input_payload, scratch_payload);
  IoBudgetVerdict verdict;
  verdict.model = IoBudgetModelName(algorithm);
  verdict.bound_ios =
      IoBudgetBoundIos(algorithm, info.edge_count, block_bytes, stats);
  // Budgets bound what the disk actually saw: with a block cache
  // installed, absorbed re-reads don't count against the model (with no
  // cache, physical == logical and this is the historical total).
  verdict.measured_ios = stats.io.TotalPhysicalBlockIos();
  verdict.ratio = verdict.bound_ios == 0
                      ? (verdict.measured_ios == 0 ? 0.0 : 1e9)
                      : static_cast<double>(verdict.measured_ios) /
                            static_cast<double>(verdict.bound_ios);
  verdict.pass = verdict.measured_ios <= verdict.bound_ios;
  return verdict;
}

TelemetryRunInfo MakeTelemetryRunInfo(SccAlgorithm algorithm,
                                      const std::string& dataset,
                                      const EdgeFileInfo& info,
                                      const SemiExternalOptions& options) {
  // Same payload resolution as CheckIoBudget: bound with the finer of
  // the input and scratch per-block payloads.
  const uint64_t input_payload =
      EdgePayloadBytesPerBlock(info.version, info.block_size);
  const uint64_t scratch_payload = EdgePayloadBytesPerBlock(
      DefaultEdgeFileVersion(), options.scratch_block_size > 0
                                    ? options.scratch_block_size
                                    : info.block_size);
  const uint64_t block_bytes =
      std::min<uint64_t>(input_payload, scratch_payload);
  const uint64_t scan =
      block_bytes > 0 ? TheoryScanBlocks(info.edge_count, block_bytes) : 0;

  TelemetryRunInfo run;
  run.algorithm = AlgorithmName(algorithm);
  run.dataset = dataset;
  run.total_nodes = info.node_count;
  run.total_edges = info.edge_count;
  switch (algorithm) {
    case SccAlgorithm::kOnePhaseBatch:
    case SccAlgorithm::kOnePhase:
      run.fixed_blocks = scan;
      run.blocks_per_iteration = 3 * scan;
      break;
    case SccAlgorithm::kTwoPhase:
      // Construction pass plus at most one search scan per iteration.
      run.fixed_blocks = scan;
      run.blocks_per_iteration = 2 * scan;
      break;
    case SccAlgorithm::kDfs:
      run.fixed_blocks = 4 * scan;
      run.blocks_per_iteration = scan;
      break;
    case SccAlgorithm::kEm:
      run.fixed_blocks = 2 * scan;
      run.blocks_per_iteration = 2 * scan;
      break;
  }
  // Anchor iterations: a hard cap when the caller set one, otherwise a
  // small structural default — the paper's drivers converge in a handful
  // of passes, and the anchor self-corrects upward as iterations mount.
  run.anticipated_iterations =
      options.max_iterations > 0 ? options.max_iterations : 8;
  return run;
}

AuditBudgetRecord ToAuditBudgetRecord(const IoBudgetVerdict& verdict,
                                      SccAlgorithm algorithm,
                                      const std::string& dataset) {
  AuditBudgetRecord record;
  record.algorithm = AlgorithmName(algorithm);
  record.model = verdict.model;
  record.bound_ios = verdict.bound_ios;
  record.measured_ios = verdict.measured_ios;
  record.ratio = verdict.ratio;
  record.pass = verdict.pass;
  record.dataset = dataset;
  return record;
}

}  // namespace ioscc
