#include "io/io_stats.h"

#include <cstdio>

namespace ioscc {
namespace {

std::string Grouped(uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  size_t leading = digits.size() % 3;
  if (leading == 0) leading = 3;
  for (size_t i = 0; i < digits.size(); ++i) {
    if (i >= leading && (i - leading) % 3 == 0) out += ',';
    out += digits[i];
  }
  return out;
}

}  // namespace

std::string IoStats::Format() const {
  const double mib = static_cast<double>(bytes_read + bytes_written) /
                     (1024.0 * 1024.0);
  char suffix[64];
  std::snprintf(suffix, sizeof(suffix), "w, %.1f MiB)", mib);
  std::string out = Grouped(TotalBlockIos()) + " I/Os (" +
                    Grouped(blocks_read) + "r + " + Grouped(blocks_written) +
                    suffix;
  // Cache-less runs keep the historical rendering; with a BlockCache
  // installed the physical count is what the disk actually saw.
  if (cache_hits > 0 || prefetch_hits > 0 || prefetched_blocks > 0 ||
      physical_blocks_read != blocks_read) {
    out += ", " + Grouped(physical_blocks_read) + " physical r";
    if (cache_hits > 0) out += ", " + Grouped(cache_hits) + " cached";
    if (prefetch_hits > 0) {
      out += ", " + Grouped(prefetch_hits) + " prefetched";
    }
  }
  // Retries are rare enough that the clean-run rendering stays unchanged.
  if (TotalRetries() > 0) {
    out += " + " + Grouped(TotalRetries()) + " retries";
  }
  if (read_stall_micros > 0) {
    char stall[48];
    std::snprintf(stall, sizeof(stall), ", %.1f ms stalled",
                  static_cast<double>(read_stall_micros) / 1e3);
    out += stall;
  }
  return out;
}

}  // namespace ioscc
