// Process-wide monotone I/O rate counters for live observation.
//
// Every per-run ledger in the system (IoStats) is consumer-thread-only by
// design, so a background sampler cannot read it without racing. These
// counters are the observation-side mirror: relaxed atomics bumped at the
// same sites io/block_file.cc bumps the ledger, summed across every open
// file and every run in the process. They exist *only* to be read — the
// telemetry sampler (obs/telemetry.h) snapshots them at its cadence to
// compute rates, progress, and stall detection. Nothing in the I/O or
// algorithm layer ever reads them back, so they cannot influence the
// logical ledger, the audit stream, or SCC results.
//
// Header-only on purpose: obs/ sits below io/ in the link order
// (io links obs for metrics and the audit log), so the telemetry engine
// reads these through this header without a library dependency — the same
// arrangement io_stats.h already uses.
//
// All loads and stores are memory_order_relaxed. A sampler may observe a
// torn *set* (blocks from one instant, bytes from the next); each
// individual counter is always a valid monotone value, which is all a
// time-series needs.

#ifndef IOSCC_IO_IO_COUNTERS_H_
#define IOSCC_IO_IO_COUNTERS_H_

#include <atomic>
#include <cstdint>

namespace ioscc {

struct GlobalIoCounters {
  // Logical side: blocks the algorithms asked for (cache hits included).
  std::atomic<uint64_t> logical_blocks_read{0};
  std::atomic<uint64_t> logical_blocks_written{0};
  std::atomic<uint64_t> logical_bytes_read{0};
  std::atomic<uint64_t> logical_bytes_written{0};
  // Physical side: blocks that actually crossed the disk boundary.
  std::atomic<uint64_t> physical_blocks_read{0};
  std::atomic<uint64_t> cache_hits{0};
  std::atomic<uint64_t> prefetch_hits{0};
  std::atomic<uint64_t> prefetched_blocks{0};
  // Cumulative consumer-blocked-on-disk time, microseconds.
  std::atomic<uint64_t> read_stall_micros{0};
  // Gauge: the deepest prefetch window in effect so far (0 = none,
  // 1 = synchronous double buffer, N>=2 = async pipeline).
  std::atomic<uint64_t> prefetch_depth_used{0};
  // Snapshots published by the checkpoint subsystem; sampled by the
  // telemetry ring so a live trace shows checkpoint markers.
  std::atomic<uint64_t> checkpoints{0};

  void BumpRead(uint64_t bytes) {
    logical_blocks_read.fetch_add(1, std::memory_order_relaxed);
    logical_bytes_read.fetch_add(bytes, std::memory_order_relaxed);
  }
  void BumpWrite(uint64_t bytes) {
    logical_blocks_written.fetch_add(1, std::memory_order_relaxed);
    logical_bytes_written.fetch_add(bytes, std::memory_order_relaxed);
  }
  void BumpPhysicalRead() {
    physical_blocks_read.fetch_add(1, std::memory_order_relaxed);
  }
  void BumpCacheHit() { cache_hits.fetch_add(1, std::memory_order_relaxed); }
  void BumpPrefetchHit() {
    prefetch_hits.fetch_add(1, std::memory_order_relaxed);
  }
  void BumpPrefetched() {
    prefetched_blocks.fetch_add(1, std::memory_order_relaxed);
  }
  void BumpReadStall(uint64_t micros) {
    read_stall_micros.fetch_add(micros, std::memory_order_relaxed);
  }
  void BumpCheckpoint() {
    checkpoints.fetch_add(1, std::memory_order_relaxed);
  }
  void NotePrefetchDepth(uint64_t depth) {
    uint64_t prev = prefetch_depth_used.load(std::memory_order_relaxed);
    while (prev < depth && !prefetch_depth_used.compare_exchange_weak(
                               prev, depth, std::memory_order_relaxed)) {
    }
  }
};

namespace internal_io {
inline GlobalIoCounters g_io_counters;
}  // namespace internal_io

inline GlobalIoCounters& IoCounters() {
  return internal_io::g_io_counters;
}

// Plain-data point-in-time copy, safe to hold across samples.
struct IoCountersSnapshot {
  uint64_t logical_blocks_read = 0;
  uint64_t logical_blocks_written = 0;
  uint64_t logical_bytes_read = 0;
  uint64_t logical_bytes_written = 0;
  uint64_t physical_blocks_read = 0;
  uint64_t cache_hits = 0;
  uint64_t prefetch_hits = 0;
  uint64_t prefetched_blocks = 0;
  uint64_t read_stall_micros = 0;
  uint64_t prefetch_depth_used = 0;
  uint64_t checkpoints = 0;

  uint64_t TotalLogicalBlocks() const {
    return logical_blocks_read + logical_blocks_written;
  }
  uint64_t TotalLogicalBytes() const {
    return logical_bytes_read + logical_bytes_written;
  }
};

inline IoCountersSnapshot SnapshotIoCounters() {
  const GlobalIoCounters& c = IoCounters();
  IoCountersSnapshot s;
  s.logical_blocks_read = c.logical_blocks_read.load(std::memory_order_relaxed);
  s.logical_blocks_written =
      c.logical_blocks_written.load(std::memory_order_relaxed);
  s.logical_bytes_read = c.logical_bytes_read.load(std::memory_order_relaxed);
  s.logical_bytes_written =
      c.logical_bytes_written.load(std::memory_order_relaxed);
  s.physical_blocks_read =
      c.physical_blocks_read.load(std::memory_order_relaxed);
  s.cache_hits = c.cache_hits.load(std::memory_order_relaxed);
  s.prefetch_hits = c.prefetch_hits.load(std::memory_order_relaxed);
  s.prefetched_blocks = c.prefetched_blocks.load(std::memory_order_relaxed);
  s.read_stall_micros = c.read_stall_micros.load(std::memory_order_relaxed);
  s.prefetch_depth_used =
      c.prefetch_depth_used.load(std::memory_order_relaxed);
  s.checkpoints = c.checkpoints.load(std::memory_order_relaxed);
  return s;
}

}  // namespace ioscc

#endif  // IOSCC_IO_IO_COUNTERS_H_
