#include "io/block_cache.h"

#include <cstring>

#include "obs/metrics.h"

namespace ioscc {
namespace {

// Counter handles are process-lifetime-stable; look them up once.
Counter* HitCounter() {
  static Counter* c = MetricsRegistry::Global().GetCounter("cache.hits");
  return c;
}
Counter* MissCounter() {
  static Counter* c = MetricsRegistry::Global().GetCounter("cache.misses");
  return c;
}
Counter* PrefetchHitCounter() {
  static Counter* c =
      MetricsRegistry::Global().GetCounter("cache.prefetch_hits");
  return c;
}
Counter* PrefetchedCounter() {
  static Counter* c =
      MetricsRegistry::Global().GetCounter("cache.prefetched_blocks");
  return c;
}
Counter* EvictionCounter() {
  static Counter* c = MetricsRegistry::Global().GetCounter("cache.evictions");
  return c;
}

}  // namespace

BlockCache::BlockCache(uint64_t budget_blocks, bool read_ahead)
    : budget_blocks_(budget_blocks), read_ahead_(read_ahead) {}

uint32_t BlockCache::RegisterFile(const std::string& logical_path) {
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t id = 0; id < files_.size(); ++id) {
    if (files_[id] == logical_path) return static_cast<uint32_t>(id);
  }
  files_.push_back(logical_path);
  return static_cast<uint32_t>(files_.size() - 1);
}

bool BlockCache::Lookup(uint32_t file_id, uint64_t block, void* data,
                        size_t block_size) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = resident_.find(Key(file_id, block));
  if (it == resident_.end()) return false;
  if (it->second.data.size() != block_size) {
    // A path re-registered at a different block size (nothing in this
    // codebase does that — scratch rewrites get fresh names). Treat the
    // stale entry as a miss; the install after the read replaces it.
    lru_.erase(it->second.lru_pos);
    resident_.erase(it);
    return false;
  }
  std::memcpy(data, it->second.data.data(), block_size);
  lru_.splice(lru_.begin(), lru_, it->second.lru_pos);  // promote
  ++stats_.hits;
  HitCounter()->Increment();
  return true;
}

void BlockCache::Install(uint32_t file_id, uint64_t block, const void* data,
                         size_t block_size, bool is_write) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t key = Key(file_id, block);
  auto it = resident_.find(key);
  if (it != resident_.end()) {
    // Writes refresh content in place and promote; the simulator's
    // resident-write step. (A read install can only land here under
    // concurrent access to the same block; refreshing is still right.)
    it->second.data.assign(static_cast<const char*>(data),
                           static_cast<const char*>(data) + block_size);
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    if (!is_write) {
      ++stats_.misses;
      MissCounter()->Increment();
    }
    return;
  }
  if (!is_write) {
    ++stats_.misses;
    MissCounter()->Increment();
  }
  lru_.push_front(key);
  Entry& entry = resident_[key];
  entry.lru_pos = lru_.begin();
  entry.data.assign(static_cast<const char*>(data),
                    static_cast<const char*>(data) + block_size);
  EvictIfOverBudget();
}

bool BlockCache::Contains(uint32_t file_id, uint64_t block) const {
  std::lock_guard<std::mutex> lock(mu_);
  return resident_.find(Key(file_id, block)) != resident_.end();
}

void BlockCache::CountPrefetch() {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.prefetched_blocks;
  PrefetchedCounter()->Increment();
}

void BlockCache::CountPrefetchHit() {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.prefetch_hits;
  PrefetchHitCounter()->Increment();
}

BlockCache::Stats BlockCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

uint64_t BlockCache::resident_blocks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return resident_.size();
}

uint64_t BlockCache::resident_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t bytes = 0;
  for (const auto& [key, entry] : resident_) bytes += entry.data.size();
  return bytes;
}

void BlockCache::EvictIfOverBudget() {
  while (resident_.size() > budget_blocks_) {
    resident_.erase(lru_.back());
    lru_.pop_back();
    ++stats_.evictions;
    EvictionCounter()->Increment();
  }
}

}  // namespace ioscc
