// External merge sort over edge files.
//
// Classic two-stage sort under a memory budget: (1) run formation — read as
// many edges as fit in memory, sort, spill a sorted run; (2) k-way merge of
// the runs with a loser-tree-style heap, one block buffer per run. All disk
// traffic goes through the edge-file layer and is counted in IoStats, so a
// sort costs the textbook sort(m) ≈ (m/B)·(1 + ceil(log_k(runs))) block I/Os.
//
// Used to reverse/normalize graphs (DFS-SCC's second pass needs the reversed
// edge set) and by generators to produce deduplicated edge files.

#ifndef IOSCC_IO_EXTERNAL_SORT_H_
#define IOSCC_IO_EXTERNAL_SORT_H_

#include <cstdint>
#include <string>

#include "graph/types.h"
#include "io/io_stats.h"
#include "io/temp_dir.h"
#include "util/status.h"

namespace ioscc {

enum class EdgeOrder {
  kBySource,  // (from, to) lexicographic
  kByTarget,  // (to, from) lexicographic
};

struct ExternalSortOptions {
  // Bytes of main memory the sort may use for edge payloads.
  size_t memory_budget_bytes = 64 * 1024 * 1024;
  EdgeOrder order = EdgeOrder::kBySource;
  // Drop exact duplicate edges while merging.
  bool dedup = false;
  // Drop self-loops (u,u) while merging.
  bool drop_self_loops = false;
};

// Sorts the edge file `input` into a new edge file `output`.
// `scratch` holds intermediate runs; `stats` may be null.
Status SortEdgeFile(const std::string& input, const std::string& output,
                    const ExternalSortOptions& options, TempDir* scratch,
                    IoStats* stats);

}  // namespace ioscc

#endif  // IOSCC_IO_EXTERNAL_SORT_H_
