// External merge sort over edge files.
//
// Classic two-stage sort under a memory budget: (1) run formation — read as
// many edges as fit in memory, sort, spill a sorted run; (2) k-way merge of
// the runs with a loser-tree-style heap, one block buffer per run. The
// fan-in of a merge pass is capped (by the memory budget, and optionally
// max_fanin), falling back to multiple merge passes when there are more
// runs than open buffers — so the sort costs the textbook
// sort(m) ≈ (m/B)·(1 + ceil(log_k(runs))) block I/Os with k = M/B - 1.
//
// With a ThreadPool available (options.pool, or the process-wide
// SetIoThreadPool), run formation is pipelined: while pool workers sort
// chunk k, the calling thread reads chunk k+1 and spills run k-1. All
// *logical* I/O (scanner reads, run spills) stays on the calling thread
// in program order, so the IoStats ledger and the audit log are
// byte-identical at every thread count (docs/PERFORMANCE.md); only the
// wall clock changes. The merge pass gets its overlap for free from the
// BlockFile async prefetcher, which keeps each run's next blocks in
// flight.
//
// Used to reverse/normalize graphs (DFS-SCC's second pass needs the reversed
// edge set) and by generators to produce deduplicated edge files.

#ifndef IOSCC_IO_EXTERNAL_SORT_H_
#define IOSCC_IO_EXTERNAL_SORT_H_

#include <cstdint>
#include <string>

#include "graph/types.h"
#include "io/io_stats.h"
#include "io/temp_dir.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace ioscc {

enum class EdgeOrder {
  kBySource,  // (from, to) lexicographic
  kByTarget,  // (to, from) lexicographic
};

struct ExternalSortOptions {
  // Bytes of main memory the sort may use. The whole working set is
  // charged against this: edge payloads, the double buffer pipelined
  // run formation keeps in flight, and one block buffer per open file
  // during a merge pass (fan-in + 1 of them) — not just the edges.
  size_t memory_budget_bytes = 64 * 1024 * 1024;
  EdgeOrder order = EdgeOrder::kBySource;
  // Drop exact duplicate edges while merging.
  bool dedup = false;
  // Drop self-loops (u,u) while merging.
  bool drop_self_loops = false;
  // Cap on runs merged at once. 0 derives the cap from the memory
  // budget (M/B - 1 block buffers); a nonzero value lowers it further.
  // Merges above the cap fall back to multiple passes over scratch.
  size_t max_fanin = 0;
  // Worker pool for pipelined formation and parallel in-memory sorting.
  // nullptr uses the process-wide pool (SetIoThreadPool), which may
  // itself be absent — then the sort runs serially, as before.
  ThreadPool* pool = nullptr;
};

// Sorts the edge file `input` into a new edge file `output`.
// `scratch` holds intermediate runs; `stats` may be null.
Status SortEdgeFile(const std::string& input, const std::string& output,
                    const ExternalSortOptions& options, TempDir* scratch,
                    IoStats* stats);

}  // namespace ioscc

#endif  // IOSCC_IO_EXTERNAL_SORT_H_
