// Deterministic fault injection for the block-I/O layer.
//
// A FaultInjector is a process-wide seam in BlockFile (the same
// capture-at-open, null-check-when-absent pattern as BlockAccessLog):
// every physical I/O attempt — each read, write, or flush syscall,
// including retries — consults the injector, which may order a failure.
// With no injector installed the per-attempt cost is one null check on a
// plain member, and the I/O path is byte-identical to an uninstrumented
// run.
//
// Faults are scheduled by rules that match on (file, block, op) plus
// either an absolute attempt sequence number or an every-k-th-match
// cadence, so a failure point is a pure function of the rule set, the
// seed, and the workload's I/O sequence: the same run reproduces the
// same failure, bit for bit. The seedable RNG (util/random.h) only
// chooses fault *parameters* — which bit flips, how many bytes a torn
// write lands — never whether a fault fires.
//
// Fault semantics (what BlockFile does when a rule fires):
//   kEintr          attempt fails with EINTR            retried
//   kTransientEio   attempt fails with EIO              retried
//   kPermanentEio   attempt fails with EIO              retries exhaust
//   kEnospc         write/flush fails with ENOSPC       not retried
//   kShortRead      fread returns a partial block       retried
//   kShortWrite     fwrite reports a partial block      retried
//   kTornWrite      a random prefix of the block lands
//                   on disk, then the attempt fails     retries exhaust
//   kBitFlip        the attempt *succeeds* but one bit
//                   of the returned block is flipped    caught by v2
//                                                       checksums only
// Transient rules (fires_remaining == 1 by default) burn out after
// firing, so the retry succeeds; permanent rules (fires_remaining == 0,
// i.e. unlimited) keep failing until BlockFile gives up with IOError.

#ifndef IOSCC_IO_FAULT_ENV_H_
#define IOSCC_IO_FAULT_ENV_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "util/random.h"

namespace ioscc {

enum class FaultOp { kRead, kWrite, kFlush };

enum class FaultKind {
  kNone = 0,
  kShortRead,
  kShortWrite,
  kEintr,
  kTransientEio,
  kPermanentEio,
  kEnospc,
  kTornWrite,
  kBitFlip,
};
inline constexpr int kNumFaultKinds = 9;

const char* FaultOpName(FaultOp op);
const char* FaultKindName(FaultKind kind);

// Wildcards for FaultRule match fields.
inline constexpr uint64_t kAnyBlock = ~0ull;
inline constexpr uint64_t kAnySeq = ~0ull;

// One scheduled fault. An attempt matches when every non-wildcard field
// agrees; `every_kth` (when nonzero) additionally requires the attempt
// to be the k-th, 2k-th, ... match of this rule.
struct FaultRule {
  std::string path_contains;     // substring of the logical path; "" = any
  uint64_t block = kAnyBlock;    // block index, or kAnyBlock
  FaultOp op = FaultOp::kRead;   // consulted only when any_op is false
  bool any_op = true;
  uint64_t at_seq = kAnySeq;     // absolute attempt seq, or kAnySeq
  uint64_t every_kth = 0;        // 0 = every match is eligible
  uint64_t fires_remaining = 1;  // 0 = unlimited (a permanent fault)
  FaultKind kind = FaultKind::kNone;

  uint64_t matched = 0;  // internal: matches seen so far (for every_kth)
};

// What BlockFile is ordered to do for one attempt. `param` carries the
// RNG-drawn fault parameter: the bit index for kBitFlip, the byte count
// transferred for short/torn transfers.
struct FaultAction {
  FaultKind kind = FaultKind::kNone;
  uint64_t param = 0;
};

class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed = 0x5ccc0de5ULL) : rng_(seed) {}

  void AddRule(const FaultRule& rule);

  // Rule builders. Transient* fires once; Permanent* fires on every
  // matching attempt until the injector is removed.
  static FaultRule TransientAt(std::string path_contains, uint64_t block,
                               FaultOp op, FaultKind kind);
  static FaultRule PermanentAt(std::string path_contains, uint64_t block,
                               FaultOp op, FaultKind kind);
  static FaultRule AtSeq(uint64_t seq, FaultKind kind);
  static FaultRule EveryKth(uint64_t k, FaultOp op, FaultKind kind,
                            uint64_t fires = 0);

  // Called by BlockFile for every physical attempt. Thread-safe; the
  // global attempt counter advances whether or not a rule fires.
  FaultAction OnAccess(const std::string& path, uint64_t block, FaultOp op,
                       size_t block_size);

  uint64_t attempts() const;
  uint64_t injected_total() const;
  uint64_t injected_count(FaultKind kind) const;

  // "3 faults over 120 attempts (2 transient-eio, 1 bit-flip)".
  std::string Summary() const;

 private:
  mutable std::mutex mu_;
  Rng rng_;
  uint64_t seq_ = 0;
  uint64_t injected_[kNumFaultKinds] = {};
  std::vector<FaultRule> rules_;
};

namespace internal_io {
inline std::atomic<FaultInjector*> g_fault_injector{nullptr};
}  // namespace internal_io

// Installs `injector` as the process-wide fault source (nullptr removes
// it). Not synchronized against open BlockFiles: install before opening
// the files to torture; the injector must outlive them.
inline void SetFaultInjector(FaultInjector* injector) {
  internal_io::g_fault_injector.store(injector, std::memory_order_release);
}

inline FaultInjector* GetFaultInjector() {
  return internal_io::g_fault_injector.load(std::memory_order_relaxed);
}

// Bounded-retry policy BlockFile applies to retryable failures (EINTR,
// EIO, short transfers). Exposed so tests and the torture harness can
// shrink the backoff; the defaults add at most ~3 ms per failed op.
struct IoRetryPolicy {
  int max_attempts = 5;          // total attempts, including the first
  int backoff_initial_us = 200;  // doubles per retry
};

void SetIoRetryPolicy(const IoRetryPolicy& policy);
IoRetryPolicy GetIoRetryPolicy();

}  // namespace ioscc

#endif  // IOSCC_IO_FAULT_ENV_H_
