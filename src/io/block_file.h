// Block-granular file storage with logical I/O accounting.
//
// This is the "disk" of the external-memory model: all edge data moves
// through fixed-size blocks, and every block transfer increments IoStats.
// Files written through BlockFile are always a whole number of blocks long
// (writers pad the tail block).

#ifndef IOSCC_IO_BLOCK_FILE_H_
#define IOSCC_IO_BLOCK_FILE_H_

#include <cstdio>
#include <memory>
#include <string>

#include "io/io_stats.h"
#include "util/status.h"

namespace ioscc {

class BlockFile {
 public:
  enum class Mode { kRead, kWrite };

  // Opens `path` for reading or (over)writing. `stats` may be null (no
  // accounting); otherwise it must outlive the BlockFile.
  static Status Open(const std::string& path, Mode mode, size_t block_size,
                     IoStats* stats, std::unique_ptr<BlockFile>* out);

  ~BlockFile();

  BlockFile(const BlockFile&) = delete;
  BlockFile& operator=(const BlockFile&) = delete;

  // Appends one full block (block_size bytes). Write mode only.
  Status AppendBlock(const void* data);

  // Reads block `index` (0-based) into `data` (block_size bytes).
  // Read mode only.
  Status ReadBlock(uint64_t index, void* data);

  // Flushes buffered writes to the OS. Write mode only.
  Status Flush();

  // Number of complete blocks currently in the file.
  uint64_t block_count() const { return block_count_; }
  size_t block_size() const { return block_size_; }
  const std::string& path() const { return path_; }

 private:
  BlockFile(std::string path, std::FILE* file, Mode mode, size_t block_size,
            uint64_t block_count, IoStats* stats)
      : path_(std::move(path)),
        file_(file),
        mode_(mode),
        block_size_(block_size),
        block_count_(block_count),
        stats_(stats) {}

  std::string path_;
  std::FILE* file_;
  Mode mode_;
  size_t block_size_;
  uint64_t block_count_;
  uint64_t read_cursor_ = static_cast<uint64_t>(-1);  // last block read + 1
  IoStats* stats_;
};

}  // namespace ioscc

#endif  // IOSCC_IO_BLOCK_FILE_H_
