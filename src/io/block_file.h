// Block-granular file storage with logical I/O accounting.
//
// This is the "disk" of the external-memory model: all edge data moves
// through fixed-size blocks, and every block transfer increments IoStats.
// Files written through BlockFile are always a whole number of blocks long
// (writers pad the tail block).
//
// Robustness: every physical read/write/flush attempt flows through
// opt-in seams captured once at Open — the BlockAccessLog auditor, the
// BufferManager (io/buffer_manager.h, which also drives the per-file
// read-ahead buffer), the FaultInjector (io/fault_env.h), and the
// ThreadPool (util/thread_pool.h, which upgrades the read-ahead to an
// async N-deep pipeline). The audit log records *logical* accesses (what
// the algorithm asked for); IoStats counts both logical and physical
// reads, which diverge exactly when the cache or prefetcher serves a
// block without touching the disk.
//
// With a manager installed, logical reads use its single-flight
// BeginRead/FinishLoad protocol: the manager serves hits (recording the
// audit access atomically with the cache transition), and at most one
// thread per cold block performs the physical read. The manager-less
// path is unchanged.
//
// Page providers: each file reads/writes through one of two backends,
// chosen per Open (or by the process-wide default, SetDefaultIoBackend):
//   kBuffered — stdio FILE* with the kernel page cache (today's path);
//   kDirect   — an O_DIRECT fd with an aligned bounce buffer, bypassing
//               the page cache so the manager's budget is the *only*
//               cache in play. Falls back to kBuffered when the platform
//               or filesystem refuses O_DIRECT or the block size is not
//               a multiple of 4096 — backends never change results, only
//               which layer absorbs re-reads, so the fallback is silent.
// Retryable failures (EINTR, EIO, short
// transfers — real or injected) are retried with bounded exponential
// backoff (IoRetryPolicy); the retry count lands in IoStats so run
// reports show how hard the storage fought back. With neither seam
// installed the hot path is two null checks and the I/O counters are
// byte-identical to an uninstrumented run.
//
// Threading discipline (docs/PERFORMANCE.md): background filler tasks
// perform *only* the physical read into a pinned slot. All logical
// accounting — IoStats, the audit log, cache hit/miss transitions —
// happens on the consuming thread, in program order, when the logical
// read arrives. That keeps the logical ledger and audit log
// byte-identical at every thread count and prefetch depth, and makes an
// injected fault on an in-flight prefetch surface on the logical access
// that consumes it (with the same Status and retry counts as an
// unthreaded run), never on a background thread.

#ifndef IOSCC_IO_BLOCK_FILE_H_
#define IOSCC_IO_BLOCK_FILE_H_

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "io/block_cache.h"
#include "io/fault_env.h"
#include "io/io_stats.h"
#include "obs/io_audit.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace ioscc {

// Records every logical block access crossing the BlockFile boundary as
// (file_id, block, op, seq) — the raw material for obs/io_audit.h's
// pattern analysis and cache simulation.
//
// Install with SetBlockAccessLog() *before* opening the files to audit:
// BlockFile captures the sink once at Open (the same single-relaxed-load
// pattern as TraceSpan), so with no log installed the per-access cost is
// one null check on a plain member and the I/O counters are byte-
// identical to an uninstrumented run (tests/io_audit_test.cc pins this
// down). The log must outlive every BlockFile opened while installed.
class BlockAccessLog {
 public:
  // Interns `path`, returning its stable file id. The same path opened
  // twice gets the same id, so re-opens (scanner Reset-after-rewrite,
  // reverse passes) stay attributable to one file.
  uint32_t RegisterFile(const std::string& path);

  void Record(uint32_t file_id, uint64_t block, bool is_write);

  // Budget verdicts ride along in the audit file (harness/io_budget.h).
  void AddBudget(const AuditBudgetRecord& budget);

  uint64_t access_count() const;

  // Consistent copy of everything recorded so far.
  AuditLogData Snapshot() const;

  // Convenience: Snapshot() + WriteAuditLog().
  Status WriteTo(const std::string& path) const;

 private:
  mutable std::mutex mu_;
  AuditLogData data_;
};

namespace internal_io {
inline std::atomic<BlockAccessLog*> g_block_access_log{nullptr};
}  // namespace internal_io

// Installs `log` as the process-wide sink (nullptr disables auditing).
// Not synchronized against open BlockFiles: install before opening them.
inline void SetBlockAccessLog(BlockAccessLog* log) {
  internal_io::g_block_access_log.store(log, std::memory_order_release);
}

inline BlockAccessLog* GetBlockAccessLog() {
  return internal_io::g_block_access_log.load(std::memory_order_relaxed);
}

// Physical page provider for a BlockFile (see the header comment).
enum class IoBackend {
  kDefault,   // resolve to the process-wide default at Open
  kBuffered,  // stdio FILE* through the kernel page cache
  kDirect,    // O_DIRECT fd + aligned bounce buffer (page cache bypassed)
};

namespace internal_io {
inline std::atomic<IoBackend> g_default_io_backend{IoBackend::kBuffered};
}  // namespace internal_io

// Process-wide default backend for Opens that pass IoBackend::kDefault.
// Same install-before-open contract as the other seams; kDefault resets
// to kBuffered.
inline void SetDefaultIoBackend(IoBackend backend) {
  internal_io::g_default_io_backend.store(
      backend == IoBackend::kDefault ? IoBackend::kBuffered : backend,
      std::memory_order_release);
}

inline IoBackend GetDefaultIoBackend() {
  return internal_io::g_default_io_backend.load(std::memory_order_acquire);
}

class BlockFile {
 public:
  enum class Mode { kRead, kWrite };

  // Opens `path` for reading or (over)writing. `stats` may be null (no
  // accounting); otherwise it must outlive the BlockFile.
  //
  // `logical_path`, when nonempty, is the name the file is *known as* to
  // the audit log and the fault injector — writers that stage output in
  // a temp file (EdgeWriter's write-temp-then-rename) pass the final
  // path here so access patterns and fault schedules stay keyed to one
  // stable name. Error messages always name the physical path.
  //
  // `backend` selects the page provider; kDefault defers to
  // SetDefaultIoBackend. A kDirect request the platform cannot honor
  // silently degrades to kBuffered (backend() reports what was used).
  static Status Open(const std::string& path, Mode mode, size_t block_size,
                     IoStats* stats, std::unique_ptr<BlockFile>* out,
                     const std::string& logical_path = std::string(),
                     IoBackend backend = IoBackend::kDefault);

  ~BlockFile();

  BlockFile(const BlockFile&) = delete;
  BlockFile& operator=(const BlockFile&) = delete;

  // Appends one full block (block_size bytes). Write mode only.
  Status AppendBlock(const void* data);

  // Overwrites block `index` (which must already exist or be the next
  // append slot) in place. Write mode only; used for header rewrites so
  // that metadata maintenance stays inside the counted/faultable seam.
  Status WriteBlockAt(uint64_t index, const void* data);

  // Reads block `index` (0-based) into `data` (block_size bytes).
  // Read mode only.
  Status ReadBlock(uint64_t index, void* data);

  // Flushes buffered writes to the OS. Write mode only.
  Status Flush();

  // Flush() + fsync(): the data is durable on return. Write mode only.
  Status SyncToDisk();

  // Number of complete blocks currently in the file.
  uint64_t block_count() const { return block_count_; }
  size_t block_size() const { return block_size_; }
  const std::string& path() const { return path_; }

  // The page provider actually in use after Open's fallback.
  IoBackend backend() const {
    return fd_ >= 0 ? IoBackend::kDirect : IoBackend::kBuffered;
  }

 private:
  static constexpr uint64_t kNoBlock = static_cast<uint64_t>(-1);

  BlockFile(std::string path, std::string logical_path, std::FILE* file,
            int fd, Mode mode, size_t block_size, uint64_t block_count,
            IoStats* stats, BlockAccessLog* audit, uint32_t audit_file_id,
            FaultInjector* fault, BufferManager* cache,
            uint32_t cache_file_id, ThreadPool* pool, int prefetch_depth);

  // One physical attempt. `*retryable` reports whether the failure class
  // is worth retrying (EINTR/EIO/short transfer yes; ENOSPC/torn no).
  Status ReadAttempt(uint64_t index, void* data, bool need_seek,
                     bool* retryable);
  Status WriteAttempt(uint64_t index, const void* data, bool need_seek,
                      bool* retryable);
  Status FlushAttempt(bool* retryable);

  // Raw transfer through the file's backend. Buffered assumes the FILE*
  // position is already at `index` (the callers handle seeking); direct
  // positions with pread/pwrite and bounces through aligned_buf_. On a
  // short transfer *err is the errno (0 when the kernel reported no
  // error). RawWrite moves `len` bytes (`len` < block_size only for
  // injected short/torn writes; direct rounds it down to the 512-byte
  // sector grain, the coarsest truncation O_DIRECT can express).
  size_t RawRead(uint64_t index, void* data, int* err);
  size_t RawWrite(uint64_t index, const void* data, size_t len, int* err);

  // The demand-read slow path: physical read (+retries) under file_mu_,
  // stall accounting, physical counters. No cache interaction.
  Status DemandRead(uint64_t index, void* data);
  // Produces a cold block's bytes for the single-flight load this thread
  // owns: async window consume, sync prefetch-buffer consume, or demand
  // read. Counters for the consumed read-ahead move here.
  Status LoadForRead(uint64_t index, void* data, bool* disk_was_touched);

  // Slow path: bounded retry with exponential backoff; counts each extra
  // attempt into IoStats. `first` is the failed first attempt's status.
  Status RetryRead(uint64_t index, void* data, Status first,
                   bool retryable);
  Status RetryWrite(uint64_t index, const void* data, Status first,
                    bool retryable);

  // Opportunistic read-ahead of block `index` into the double buffer.
  // Failures are dropped silently (no retry, no status): the demand read
  // that eventually wants the block retries and reports as usual.
  void Prefetch(uint64_t index);

  // --- Async prefetch pipeline (prefetch_depth_ >= 2; implies pool_).
  //
  // pf_queue_ holds slots for a contiguous ascending range of blocks.
  // One filler task at a time pulls the front-most unfilled slot and
  // performs its physical read (under file_mu_, which serializes the
  // FILE* and read_cursor_ against demand reads). The consumer pops only
  // ready slots; a failed fill is carried to the consuming logical read
  // unretried, so retries, retry counters, and the surfaced Status are
  // identical to the unthreaded path.
  struct PrefetchSlot {
    uint64_t block = 0;
    std::vector<char> data;
    Status status;                // the filler's single attempt
    bool retryable = false;
    bool ready = false;           // filler is done with this slot
    bool cache_resident = false;  // skipped: the LRU already held it
    bool ok_read = false;         // data holds the block's contents
  };

  bool async_prefetch() const { return prefetch_depth_ >= 2; }

  // Extends the window to cover (after, after + prefetch_depth_] and
  // wakes the filler if idle. Call without pf_mu_ held.
  void ScheduleAsyncPrefetch(uint64_t after);
  // The background task: fills unfilled slots front to back until none
  // remain or shutdown. Touches no IoStats and no audit log.
  void FillerLoop();
  // Pops the slot for `index` if the window holds it, draining (and
  // accounting) stale slots in front of it. Waits for in-flight fills;
  // the wait is charged to read_stall_micros. Returns false when the
  // window does not cover `index`.
  bool TakeSlot(uint64_t index, PrefetchSlot* out);
  // Blocks until the front slot is ready, charging the wait to
  // read_stall_micros. `lock` must hold pf_mu_ and the queue must be
  // non-empty.
  void WaitForFrontReady(std::unique_lock<std::mutex>* lock);
  // Books the physical read of a slot that was drained unconsumed.
  // Consumer thread only (it touches stats_). pf_mu_ may be held.
  void AccountDroppedSlot(const PrefetchSlot& slot);
  // Stops the filler, waits it out, and drains the queue. Idempotent.
  void ShutdownPrefetcher();

  std::string path_;
  std::string logical_path_;  // == path_ unless the caller aliased it
  std::FILE* file_;  // buffered backend; null when fd_ >= 0
  // Direct backend: the O_DIRECT fd and its aligned bounce buffer. The
  // buffer is shared by all transfers, which is safe because every read
  // path that can race holds file_mu_ and writers are single-threaded
  // per file (the same contract the FILE* position already relies on).
  int fd_ = -1;
  char* aligned_buf_ = nullptr;
  Mode mode_;
  size_t block_size_;
  uint64_t block_count_;
  // Physical position of the FILE* in blocks (next block a seek-free read
  // would deliver), advanced only by physical reads — cache hits leave
  // the disk head where it was. kNoBlock after a failure or at open.
  // Guarded by file_mu_ when a filler can run (async_prefetch()).
  uint64_t read_cursor_ = kNoBlock;
  // Last block delivered to the caller, for sequential-scan detection.
  // Consumer thread only.
  uint64_t last_logical_read_ = kNoBlock;
  IoStats* stats_;
  BlockAccessLog* audit_;   // captured at Open; null when uninstalled
  uint32_t audit_file_id_;  // meaningful only when audit_ != nullptr
  FaultInjector* fault_;    // captured at Open; null when uninstalled
  BufferManager* cache_;    // captured at Open; null when uninstalled
  uint32_t cache_file_id_;  // meaningful only when cache_ != nullptr
  ThreadPool* pool_;        // captured at Open; null when uninstalled
  // Effective read-ahead mode after Open's fallback: 0 = none, 1 = the
  // synchronous double buffer, >= 2 = async window (pool_ != nullptr).
  int prefetch_depth_;
  // Read-ahead double buffer (outside the cache's block budget), used
  // only in synchronous mode (prefetch_depth_ == 1).
  std::vector<char> prefetch_buffer_;
  uint64_t prefetch_block_ = kNoBlock;  // block resident in the buffer
  // Serializes the FILE* + read_cursor_ between the consumer's demand
  // reads and the filler's read-ahead. Uncontended (and the filler
  // nonexistent) outside async mode.
  std::mutex file_mu_;
  // Async window state; pf_mu_ guards all of it. Slots are appended by
  // the consumer, filled front-to-back by the filler, popped (ready
  // slots only) by the consumer — so a slot address is stable for the
  // duration of its fill.
  std::mutex pf_mu_;
  std::condition_variable pf_cv_;
  std::deque<PrefetchSlot> pf_queue_;
  bool pf_filler_active_ = false;
  bool pf_shutdown_ = false;
};

}  // namespace ioscc

#endif  // IOSCC_IO_BLOCK_FILE_H_
