#include "io/fault_env.h"

namespace ioscc {
namespace {

std::mutex g_retry_policy_mu;
IoRetryPolicy g_retry_policy;

}  // namespace

const char* FaultOpName(FaultOp op) {
  switch (op) {
    case FaultOp::kRead:
      return "read";
    case FaultOp::kWrite:
      return "write";
    case FaultOp::kFlush:
      return "flush";
  }
  return "?";
}

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kShortRead:
      return "short-read";
    case FaultKind::kShortWrite:
      return "short-write";
    case FaultKind::kEintr:
      return "eintr";
    case FaultKind::kTransientEio:
      return "transient-eio";
    case FaultKind::kPermanentEio:
      return "permanent-eio";
    case FaultKind::kEnospc:
      return "enospc";
    case FaultKind::kTornWrite:
      return "torn-write";
    case FaultKind::kBitFlip:
      return "bit-flip";
  }
  return "?";
}

void FaultInjector::AddRule(const FaultRule& rule) {
  std::lock_guard<std::mutex> lock(mu_);
  rules_.push_back(rule);
}

FaultRule FaultInjector::TransientAt(std::string path_contains,
                                     uint64_t block, FaultOp op,
                                     FaultKind kind) {
  FaultRule rule;
  rule.path_contains = std::move(path_contains);
  rule.block = block;
  rule.op = op;
  rule.any_op = false;
  rule.kind = kind;
  rule.fires_remaining = 1;
  return rule;
}

FaultRule FaultInjector::PermanentAt(std::string path_contains,
                                     uint64_t block, FaultOp op,
                                     FaultKind kind) {
  FaultRule rule = TransientAt(std::move(path_contains), block, op, kind);
  rule.fires_remaining = 0;  // unlimited
  return rule;
}

FaultRule FaultInjector::AtSeq(uint64_t seq, FaultKind kind) {
  FaultRule rule;
  rule.at_seq = seq;
  rule.kind = kind;
  rule.fires_remaining = 1;
  return rule;
}

FaultRule FaultInjector::EveryKth(uint64_t k, FaultOp op, FaultKind kind,
                                  uint64_t fires) {
  FaultRule rule;
  rule.op = op;
  rule.any_op = false;
  rule.every_kth = k;
  rule.kind = kind;
  rule.fires_remaining = fires;
  return rule;
}

FaultAction FaultInjector::OnAccess(const std::string& path, uint64_t block,
                                    FaultOp op, size_t block_size) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t seq = seq_++;
  FaultAction action;
  for (FaultRule& rule : rules_) {
    if (rule.kind == FaultKind::kNone) continue;  // burned out
    if (!rule.path_contains.empty() &&
        path.find(rule.path_contains) == std::string::npos) {
      continue;
    }
    if (rule.block != kAnyBlock && rule.block != block) continue;
    if (!rule.any_op && rule.op != op) continue;
    if (rule.at_seq != kAnySeq && rule.at_seq != seq) continue;
    ++rule.matched;
    if (rule.every_kth != 0 && rule.matched % rule.every_kth != 0) continue;
    action.kind = rule.kind;
    if (rule.fires_remaining != 0 && --rule.fires_remaining == 0) {
      rule.kind = FaultKind::kNone;
    }
    break;  // first matching rule wins
  }
  if (action.kind == FaultKind::kNone) return action;
  ++injected_[static_cast<int>(action.kind)];
  switch (action.kind) {
    case FaultKind::kBitFlip:
      action.param = rng_.Uniform(block_size * 8);
      break;
    case FaultKind::kShortRead:
    case FaultKind::kShortWrite:
    case FaultKind::kTornWrite:
      // A strict prefix of the block transfers.
      action.param = rng_.Uniform(block_size);
      break;
    default:
      break;
  }
  return action;
}

uint64_t FaultInjector::attempts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return seq_;
}

uint64_t FaultInjector::injected_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (uint64_t count : injected_) total += count;
  return total;
}

uint64_t FaultInjector::injected_count(FaultKind kind) const {
  std::lock_guard<std::mutex> lock(mu_);
  return injected_[static_cast<int>(kind)];
}

std::string FaultInjector::Summary() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (uint64_t count : injected_) total += count;
  std::string out = std::to_string(total) + " faults over " +
                    std::to_string(seq_) + " attempts";
  if (total > 0) {
    out += " (";
    bool first = true;
    for (int k = 0; k < kNumFaultKinds; ++k) {
      if (injected_[k] == 0) continue;
      if (!first) out += ", ";
      first = false;
      out += std::to_string(injected_[k]) + " " +
             FaultKindName(static_cast<FaultKind>(k));
    }
    out += ")";
  }
  return out;
}

void SetIoRetryPolicy(const IoRetryPolicy& policy) {
  std::lock_guard<std::mutex> lock(g_retry_policy_mu);
  g_retry_policy = policy;
}

IoRetryPolicy GetIoRetryPolicy() {
  std::lock_guard<std::mutex> lock(g_retry_policy_mu);
  return g_retry_policy;
}

}  // namespace ioscc
