#include "io/buffer_manager.h"

#include "io/block_file.h"
#include "obs/metrics.h"

namespace ioscc {
namespace {

// Counter handles are process-lifetime-stable; look them up once.
Counter* HitCounter() {
  static Counter* c = MetricsRegistry::Global().GetCounter("cache.hits");
  return c;
}
Counter* MissCounter() {
  static Counter* c = MetricsRegistry::Global().GetCounter("cache.misses");
  return c;
}
Counter* PrefetchHitCounter() {
  static Counter* c =
      MetricsRegistry::Global().GetCounter("cache.prefetch_hits");
  return c;
}
Counter* PrefetchedCounter() {
  static Counter* c =
      MetricsRegistry::Global().GetCounter("cache.prefetched_blocks");
  return c;
}
Counter* EvictionCounter() {
  static Counter* c = MetricsRegistry::Global().GetCounter("cache.evictions");
  return c;
}
Counter* WriteBackCounter() {
  static Counter* c =
      MetricsRegistry::Global().GetCounter("cache.write_backs");
  return c;
}

}  // namespace

PageHandle& PageHandle::operator=(PageHandle&& other) noexcept {
  if (this != &other) {
    Release();
    mgr_ = other.mgr_;
    id_ = other.id_;
    mode_ = other.mode_;
    data_ = other.data_;
    size_ = other.size_;
    other.mgr_ = nullptr;
    other.data_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

void PageHandle::MarkDirty() {
  if (mgr_ != nullptr && mode_ == PinMode::kExclusive) {
    mgr_->MarkDirtyInternal(id_);
  }
}

void PageHandle::Release() {
  if (mgr_ == nullptr) return;
  BufferManager* mgr = mgr_;
  mgr_ = nullptr;
  data_ = nullptr;
  size_ = 0;
  mgr->Unpin(id_, mode_);
}

BufferManager::BufferManager(uint64_t budget_blocks, EvictionPolicy policy,
                             bool read_ahead)
    : budget_blocks_(budget_blocks),
      policy_(policy),
      read_ahead_(read_ahead) {}

BufferManager::~BufferManager() { FlushDirty(); }

uint32_t BufferManager::RegisterFile(const std::string& logical_path) {
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t id = 0; id < files_.size(); ++id) {
    if (files_[id] == logical_path) return static_cast<uint32_t>(id);
  }
  files_.push_back(logical_path);
  return static_cast<uint32_t>(files_.size() - 1);
}

// --- Internal state transitions (mu_ held) ---------------------------

void BufferManager::TouchLocked(Frame* frame) {
  if (policy_ == EvictionPolicy::kLru) {
    list_.splice(list_.begin(), list_, frame->pos);  // promote to MRU
  } else {
    frame->ref = true;  // second chance; no list movement
  }
}

void BufferManager::EraseFrameLocked(FrameMap::iterator it) {
  const auto pos = it->second.pos;
  resident_.erase(it);
  if (hand_ == pos) {
    hand_ = list_.erase(pos);
  } else {
    list_.erase(pos);
  }
}

bool BufferManager::EvictOneLruLocked(std::vector<Spill>* spills) {
  for (auto rit = list_.rbegin(); rit != list_.rend(); ++rit) {
    auto fit = resident_.find(*rit);
    Frame& f = fit->second;
    if (f.pins > 0) continue;  // a pinned page is never dropped
    if (f.dirty) spills->push_back(Spill{*rit, std::move(f.data)});
    EraseFrameLocked(fit);
    ++stats_.evictions;
    EvictionCounter()->Increment();
    return true;
  }
  return false;
}

bool BufferManager::EvictOneClockLocked(std::vector<Spill>* spills) {
  // Two full laps always suffice when any unpinned frame exists: the
  // first clears its reference bit, the second evicts it. The bound
  // makes an all-pinned ring terminate instead of spinning.
  size_t steps = 2 * list_.size() + 1;
  while (steps-- > 0) {
    if (hand_ == list_.end()) {
      if (list_.empty()) return false;
      hand_ = list_.begin();
    }
    auto fit = resident_.find(*hand_);
    Frame& f = fit->second;
    if (f.pins > 0) {
      ++hand_;  // skip without clearing ref: pins aren't accesses
      continue;
    }
    if (f.ref) {
      f.ref = false;
      ++hand_;
      continue;
    }
    if (f.dirty) spills->push_back(Spill{*hand_, std::move(f.data)});
    EraseFrameLocked(fit);
    ++stats_.evictions;
    EvictionCounter()->Increment();
    return true;
  }
  return false;
}

void BufferManager::TrimToBudgetLocked(std::vector<Spill>* spills) {
  if (policy_ == EvictionPolicy::kLru) {
    while (resident_.size() > budget_blocks_ && EvictOneLruLocked(spills)) {
    }
  } else {
    while (resident_.size() > budget_blocks_ &&
           EvictOneClockLocked(spills)) {
    }
  }
}

BufferManager::Frame* BufferManager::InsertFrameLocked(
    const BlockId& id, const void* data, size_t block_size,
    uint32_t initial_pins, std::vector<Spill>* spills) {
  if (policy_ == EvictionPolicy::kClock) {
    // Clock makes room first, then installs just behind the hand with
    // the reference bit set — the newcomer is examined only after a
    // full sweep. This is SimulateClockCache's transition verbatim.
    while (resident_.size() >= budget_blocks_ &&
           EvictOneClockLocked(spills)) {
    }
    Frame f;
    f.pos = list_.insert(hand_, id);
    f.ref = true;
    f.pins = initial_pins;
    f.data.assign(static_cast<const char*>(data),
                  static_cast<const char*>(data) + block_size);
    auto [it, inserted] = resident_.emplace(id, std::move(f));
    (void)inserted;
    return &it->second;
  }
  // LRU installs at MRU, then trims — the legacy BlockCache order, and
  // SimulateLruCache's.
  list_.push_front(id);
  Frame f;
  f.pos = list_.begin();
  f.pins = initial_pins;
  f.data.assign(static_cast<const char*>(data),
                static_cast<const char*>(data) + block_size);
  resident_.emplace(id, std::move(f));
  while (resident_.size() > budget_blocks_ && EvictOneLruLocked(spills)) {
  }
  // The trim may have chosen the newcomer itself (budget smaller than
  // the pinned population); report residency truthfully.
  auto post = resident_.find(id);
  return post == resident_.end() ? nullptr : &post->second;
}

void BufferManager::InstallLocked(const BlockId& id, const void* data,
                                  size_t block_size, bool count_miss,
                                  std::vector<Spill>* spills) {
  if (count_miss) {
    ++stats_.misses;
    MissCounter()->Increment();
  }
  auto it = resident_.find(id);
  if (it != resident_.end()) {
    Frame& f = it->second;
    if (f.data.size() == block_size) {
      // Refresh in place (memcpy, not assign: a pinned handle's data
      // pointer must survive the refresh) and touch — the simulators'
      // resident-write step.
      std::memcpy(f.data.data(), data, block_size);
      TouchLocked(&f);
      return;
    }
    // A path re-registered at a different block size (nothing in this
    // codebase does that — scratch rewrites get fresh names). Replace
    // the stale entry.
    EraseFrameLocked(it);
  }
  if (budget_blocks_ == 0) {
    // Install-then-immediately-evict, without the detour: the block is
    // never resident, but the eviction is still counted (the legacy
    // budget-0 behavior).
    ++stats_.evictions;
    EvictionCounter()->Increment();
    return;
  }
  InsertFrameLocked(id, data, block_size, /*initial_pins=*/0, spills);
}

// --- Single-flight protocol ------------------------------------------

BufferManager::ReadOutcome BufferManager::BeginRead(
    uint32_t file_id, uint64_t block, void* data, size_t block_size,
    BlockAccessLog* audit, uint32_t audit_file_id) {
  const BlockId id{file_id, block};
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    auto it = resident_.find(id);
    if (it != resident_.end()) {
      Frame& f = it->second;
      if (f.data.size() != block_size) {
        EraseFrameLocked(it);  // stale size: fall through to a load
        continue;
      }
      if (f.exclusive) {
        // An exclusive pin may be mid-mutation; a copy now could tear.
        cv_.wait(lock);
        continue;
      }
      std::memcpy(data, f.data.data(), block_size);
      TouchLocked(&f);
      ++stats_.hits;
      HitCounter()->Increment();
      // Recording under mu_ makes transition order == audit order: the
      // invariant that lets the simulator replay concurrency exactly.
      if (audit != nullptr) audit->Record(audit_file_id, block, false);
      return ReadOutcome::kHit;
    }
    if (loading_.count(id) != 0) {
      cv_.wait(lock);  // another thread owns the load; hit when it lands
      continue;
    }
    loading_.insert(id);
    return ReadOutcome::kLoad;
  }
}

void BufferManager::FinishLoad(uint32_t file_id, uint64_t block, void* data,
                               size_t block_size, BlockAccessLog* audit,
                               uint32_t audit_file_id) {
  const BlockId id{file_id, block};
  std::vector<Spill> spills;
  {
    std::lock_guard<std::mutex> lock(mu_);
    loading_.erase(id);
    auto it = resident_.find(id);
    if (it != resident_.end() && it->second.data.size() == block_size) {
      // A concurrent logical write installed the block while this load
      // was in flight. The audit stream reads (..., w, r): the simulator
      // replays that as a hit, so count a hit — and surface the fresher
      // written content, not the stale loaded bytes.
      std::memcpy(data, it->second.data.data(), block_size);
      TouchLocked(&it->second);
      ++stats_.hits;
      HitCounter()->Increment();
    } else {
      if (it != resident_.end()) EraseFrameLocked(it);
      InstallLocked(id, data, block_size, /*count_miss=*/true, &spills);
    }
    if (audit != nullptr) audit->Record(audit_file_id, block, false);
  }
  cv_.notify_all();
  WriteBackSpills(&spills);
}

void BufferManager::AbortLoad(uint32_t file_id, uint64_t block) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    loading_.erase(BlockId{file_id, block});
  }
  cv_.notify_all();  // the first waiter becomes the new loader
}

void BufferManager::WriteInstall(uint32_t file_id, uint64_t block,
                                 const void* data, size_t block_size,
                                 BlockAccessLog* audit,
                                 uint32_t audit_file_id) {
  const BlockId id{file_id, block};
  std::vector<Spill> spills;
  {
    std::lock_guard<std::mutex> lock(mu_);
    InstallLocked(id, data, block_size, /*count_miss=*/false, &spills);
    if (audit != nullptr) audit->Record(audit_file_id, block, true);
  }
  cv_.notify_all();
  WriteBackSpills(&spills);
}

// --- Legacy protocol --------------------------------------------------

bool BufferManager::Lookup(uint32_t file_id, uint64_t block, void* data,
                           size_t block_size) {
  const BlockId id{file_id, block};
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    auto it = resident_.find(id);
    if (it == resident_.end()) return false;
    Frame& f = it->second;
    if (f.data.size() != block_size) {
      EraseFrameLocked(it);  // stale size: treat as a miss
      return false;
    }
    if (f.exclusive) {
      cv_.wait(lock);
      continue;
    }
    std::memcpy(data, f.data.data(), block_size);
    TouchLocked(&f);
    ++stats_.hits;
    HitCounter()->Increment();
    return true;
  }
}

void BufferManager::Install(uint32_t file_id, uint64_t block,
                            const void* data, size_t block_size,
                            bool is_write) {
  std::vector<Spill> spills;
  {
    std::lock_guard<std::mutex> lock(mu_);
    InstallLocked(BlockId{file_id, block}, data, block_size,
                  /*count_miss=*/!is_write, &spills);
  }
  cv_.notify_all();
  WriteBackSpills(&spills);
}

bool BufferManager::Contains(uint32_t file_id, uint64_t block) const {
  std::lock_guard<std::mutex> lock(mu_);
  return resident_.find(BlockId{file_id, block}) != resident_.end();
}

// --- Pin/unpin --------------------------------------------------------

PageHandle BufferManager::Pin(uint32_t file_id, uint64_t block,
                              size_t block_size, PinMode mode,
                              const PageLoader& loader) {
  const BlockId id{file_id, block};
  std::vector<Spill> spills;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    auto it = resident_.find(id);
    if (it != resident_.end()) {
      Frame& f = it->second;
      if (f.data.size() != block_size) {
        if (f.pins > 0) return PageHandle();  // pinned at another size
        EraseFrameLocked(it);
        continue;
      }
      if (f.exclusive ||
          (mode == PinMode::kExclusive && f.pins > 0)) {
        cv_.wait(lock);
        continue;
      }
      ++f.pins;
      if (mode == PinMode::kExclusive) f.exclusive = true;
      return PageHandle(this, id, mode, f.data.data(), block_size);
    }
    if (loading_.count(id) != 0) {
      cv_.wait(lock);  // a logical read is bringing it in
      continue;
    }
    if (!loader) return PageHandle();
    // Load under the single-flight token so concurrent logical reads of
    // this block wait instead of double-reading.
    loading_.insert(id);
    lock.unlock();
    std::vector<char> buf(block_size);
    const bool ok = loader(buf.data());
    lock.lock();
    loading_.erase(id);
    cv_.notify_all();
    if (!ok) return PageHandle();
    if (resident_.find(id) == resident_.end()) {
      // Access-transparent install: the pin load occupies a frame but
      // counts no miss and writes no audit record, so pinning never
      // perturbs the conformance story. initial_pins protects the frame
      // from the room-making sweep it may itself trigger.
      Frame* f = InsertFrameLocked(id, buf.data(), block_size,
                                   /*initial_pins=*/1, &spills);
      if (mode == PinMode::kExclusive) f->exclusive = true;
      void* page = f->data.data();
      lock.unlock();
      WriteBackSpills(&spills);
      return PageHandle(this, id, mode, page, block_size);
    }
    // A concurrent WriteInstall beat the loader; pin the resident frame.
  }
}

void BufferManager::Unpin(const BlockId& id, PinMode mode) {
  std::vector<Spill> spills;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = resident_.find(id);
    if (it == resident_.end()) return;
    Frame& f = it->second;
    if (f.pins > 0) --f.pins;
    if (mode == PinMode::kExclusive) f.exclusive = false;
    // A pin taken while the manager ran over budget kept its frame
    // alive; releasing the last pin lets the budget be honored again.
    if (f.pins == 0) TrimToBudgetLocked(&spills);
  }
  cv_.notify_all();
  WriteBackSpills(&spills);
}

void BufferManager::MarkDirtyInternal(const BlockId& id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = resident_.find(id);
  if (it != resident_.end()) it->second.dirty = true;
}

void BufferManager::set_page_writer(PageWriter writer) {
  std::lock_guard<std::mutex> lock(mu_);
  writer_ = std::move(writer);
}

uint64_t BufferManager::FlushDirty() {
  std::vector<Spill> spills;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [id, f] : resident_) {
      if (!f.dirty) continue;
      spills.push_back(Spill{id, f.data});  // copy: the frame stays
      f.dirty = false;
    }
  }
  const uint64_t flushed = spills.size();
  WriteBackSpills(&spills);
  return flushed;
}

void BufferManager::WriteBackSpills(std::vector<Spill>* spills) {
  if (spills->empty()) return;
  PageWriter writer;
  {
    std::lock_guard<std::mutex> lock(mu_);
    writer = writer_;
    if (writer) stats_.write_backs += spills->size();
  }
  if (writer) {
    for (const Spill& s : *spills) {
      writer(s.id.file_id, s.id.block, s.data.data(), s.data.size());
      WriteBackCounter()->Increment();
    }
  }
  spills->clear();
}

// --- Accounting -------------------------------------------------------

void BufferManager::CountPrefetch() {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.prefetched_blocks;
  PrefetchedCounter()->Increment();
}

void BufferManager::CountPrefetchHit() {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.prefetch_hits;
  PrefetchHitCounter()->Increment();
}

BufferManager::Stats BufferManager::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

uint64_t BufferManager::resident_blocks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return resident_.size();
}

uint64_t BufferManager::resident_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t bytes = 0;
  for (const auto& [id, f] : resident_) bytes += f.data.size();
  return bytes;
}

uint64_t BufferManager::pinned_blocks() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t pinned = 0;
  for (const auto& [id, f] : resident_) {
    if (f.pins > 0) ++pinned;
  }
  return pinned;
}

}  // namespace ioscc
