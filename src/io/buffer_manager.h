// A fixed-size, thread-safe buffer manager between BlockFile and the
// disk: the successor to the single-policy LRU BlockCache of PR 4.
//
// One process-wide BufferManager holds at most budget_blocks resident
// blocks — the constant number of in-memory blocks the semi-external
// model grants (harness/theory.h charges the budget against that grant)
// — shared by every BlockFile opened while it is installed: concurrent
// scanners, the async prefetcher pool, external sort, and all five SCC
// drivers draw from one memory budget.
//
// What it adds over the old BlockCache:
//
//  * Single-flight loads. A logical read goes through the
//    BeginRead/FinishLoad/AbortLoad protocol: the first thread to miss
//    a block becomes its *loader*; concurrent readers of the same block
//    wait on the load token and then hit. Exactly one miss is counted
//    and exactly one physical read happens per cold block, no matter how
//    many threads demand it at once — the double-miss/double-read bug of
//    the legacy Lookup-then-Install protocol cannot occur.
//
//  * Atomic transition + audit. The cache state transition and the
//    BlockAccessLog record for a logical access happen inside one
//    critical section, so the audit stream's order *is* the order the
//    cache saw. That is what keeps the conformance contract exact under
//    concurrency: replaying a run's audit log through the matching
//    simulator in obs/io_audit (SimulateLruCache / SimulateClockCache)
//    reproduces the run's real hit/miss counts at any thread count.
//    tests/buffer_manager_test.cc pins this down for both policies at
//    budgets {1, 4, 64} with 1 and 4 scanner threads.
//
//  * Two eviction policies. EvictionPolicy::kLru is the legacy
//    promote-on-access LRU; EvictionPolicy::kClock is a second-chance
//    clock: a resident access sets the frame's reference bit (no list
//    movement, so hot scans don't serialize on reordering), a miss
//    installs the block just behind the hand, and the sweep clears
//    reference bits until it finds an unreferenced, unpinned victim.
//
//  * Pin/unpin page handles with shared/exclusive latches. Pin() hands
//    out a PageHandle whose data pointer stays valid until release:
//    pinned frames are never evicted (eviction skips them; if every
//    frame is pinned the manager runs transiently over budget rather
//    than invalidate a handle). Shared pins coexist; an exclusive pin
//    excludes every other pin *and* blocks concurrent logical reads of
//    that block, so a reader can never copy out a half-mutated page.
//    Pins are access-transparent: they touch no hit/miss counters and
//    write no audit records, so pinning never perturbs conformance.
//
//  * Dirty-page write-back. An exclusive pin may MarkDirty(); dirty
//    pages are written back through the installed PageWriter when
//    evicted, flushed (FlushDirty), or at destruction. BlockFile itself
//    stays write-through, so the logical write ledger is unchanged.
//
// Installation follows the TraceSpan pattern: SetBufferManager() before
// opening files, nullptr to disable; BlockFile captures the pointer once
// at Open. The manager must outlive every BlockFile opened while
// installed. All methods are thread-safe.
//
// io/block_cache.h keeps the legacy names (BlockCache is now a
// BufferManager fixed to the LRU policy; SetBlockCache forwards here).

#ifndef IOSCC_IO_BUFFER_MANAGER_H_
#define IOSCC_IO_BUFFER_MANAGER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <functional>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "obs/io_audit.h"  // BlockId: the (file_id, block) identity

namespace ioscc {

class BlockAccessLog;
class BufferManager;

enum class EvictionPolicy { kLru, kClock };
enum class PinMode { kShared, kExclusive };

// RAII pin. data() is stable until Release()/destruction: the pinned
// frame cannot be evicted and refreshes never reallocate its buffer.
// Move-only; an empty handle (valid() == false) means Pin failed.
class PageHandle {
 public:
  PageHandle() = default;
  PageHandle(PageHandle&& other) noexcept { *this = std::move(other); }
  PageHandle& operator=(PageHandle&& other) noexcept;
  PageHandle(const PageHandle&) = delete;
  PageHandle& operator=(const PageHandle&) = delete;
  ~PageHandle() { Release(); }

  bool valid() const { return mgr_ != nullptr; }
  void* data() { return data_; }
  const void* data() const { return data_; }
  size_t size() const { return size_; }
  uint32_t file_id() const { return id_.file_id; }
  uint64_t block() const { return id_.block; }
  PinMode mode() const { return mode_; }

  // Marks the page for write-back on eviction/flush. Exclusive pins
  // only (a shared pin cannot have mutated the page); no-op otherwise.
  void MarkDirty();

  // Early unpin; the handle becomes empty. Idempotent.
  void Release();

 private:
  friend class BufferManager;
  PageHandle(BufferManager* mgr, BlockId id, PinMode mode, void* data,
             size_t size)
      : mgr_(mgr), id_(id), mode_(mode), data_(data), size_(size) {}

  BufferManager* mgr_ = nullptr;
  BlockId id_{};
  PinMode mode_ = PinMode::kShared;
  void* data_ = nullptr;
  size_t size_ = 0;
};

class BufferManager {
 public:
  struct Stats {
    uint64_t hits = 0;        // logical reads served from memory
    uint64_t misses = 0;      // logical reads that installed a block
    uint64_t prefetch_hits = 0;       // misses served by the read-ahead buffer
    uint64_t prefetched_blocks = 0;   // read-ahead disk reads performed
    uint64_t evictions = 0;
    uint64_t write_backs = 0;         // dirty pages written back
  };

  // Sink for evicted/flushed dirty pages. Called *outside* the manager's
  // lock, so it may perform blocking I/O (and may re-enter the manager).
  using PageWriter = std::function<void(uint32_t file_id, uint64_t block,
                                        const void* data, size_t size)>;

  // Fills `dst` (block_size bytes) with a page's on-disk content for
  // Pin-with-load; returns false to fail the pin.
  using PageLoader = std::function<bool(void* dst)>;

  // budget_blocks == 0 is legal and caches nothing (every read misses
  // and is dropped immediately), matching the simulators; such a manager
  // still carries the read-ahead configuration. Pinned pages may push
  // residency transiently over any budget — a pin is a promise, not a
  // hint.
  explicit BufferManager(uint64_t budget_blocks,
                         EvictionPolicy policy = EvictionPolicy::kLru,
                         bool read_ahead = true);
  ~BufferManager();

  BufferManager(const BufferManager&) = delete;
  BufferManager& operator=(const BufferManager&) = delete;

  // Interns a logical path to a stable file id, exactly like
  // BlockAccessLog::RegisterFile — both key on the logical ("known as")
  // path, so cache identity matches audit identity for temp-then-rename
  // writers and scanner re-opens.
  uint32_t RegisterFile(const std::string& logical_path);

  // --- Single-flight logical-read protocol (what BlockFile uses) -----
  //
  // BeginRead either serves the block from memory (kHit: `data` is
  // filled, a hit is counted, and the audit record is written — all in
  // one critical section) or grants this thread the block's load token
  // (kLoad: the caller must produce the bytes and then call FinishLoad,
  // or AbortLoad on failure). Threads that race BeginRead on a loading
  // block wait for the token holder and then hit. If an exclusive pin
  // holds the block, BeginRead waits for it to release.
  enum class ReadOutcome { kHit, kLoad };
  ReadOutcome BeginRead(uint32_t file_id, uint64_t block, void* data,
                        size_t block_size, BlockAccessLog* audit,
                        uint32_t audit_file_id);

  // Completes a load: installs the block (counting the miss), writes the
  // audit record, and wakes waiters. If a concurrent logical *write*
  // made the block resident while this load was in flight, the fresher
  // content wins: the resident bytes are copied back into `data`, a hit
  // is counted, and the loaded bytes are discarded — exactly what the
  // simulator sees replaying the (write, read) record order.
  void FinishLoad(uint32_t file_id, uint64_t block, void* data,
                  size_t block_size, BlockAccessLog* audit,
                  uint32_t audit_file_id);

  // Releases the load token after a failed physical read; the first
  // waiter (if any) becomes the new loader. Counts nothing.
  void AbortLoad(uint32_t file_id, uint64_t block);

  // Logical write: installs/refreshes content and touches the frame
  // without counting hits or misses, and writes the audit record — the
  // simulators' resident/absent write steps, fused with the audit.
  void WriteInstall(uint32_t file_id, uint64_t block, const void* data,
                    size_t block_size, BlockAccessLog* audit,
                    uint32_t audit_file_id);

  // --- Legacy non-single-flight protocol (unit tests, direct users) --
  //
  // Lookup returns true on a hit (counted); on a miss the caller reads
  // and calls Install, which counts the miss. Two concurrent misses on
  // one block through *this* protocol still double-count — new code uses
  // BeginRead/FinishLoad, which cannot.
  bool Lookup(uint32_t file_id, uint64_t block, void* data,
              size_t block_size);
  void Install(uint32_t file_id, uint64_t block, const void* data,
               size_t block_size, bool is_write);

  // Residency probe that does NOT touch the frame — used by the
  // prefetcher to skip blocks the cache would serve anyway without
  // perturbing eviction order.
  bool Contains(uint32_t file_id, uint64_t block) const;

  // --- Pin/unpin ----------------------------------------------------
  //
  // Pins the page, loading it via `loader` if absent (the load is
  // access-transparent: no hit/miss counting, no audit record). Blocks
  // while the page is exclusively pinned (any mode) or pinned at all
  // (exclusive mode). Returns an empty handle when the page is absent
  // and no loader was given, or when the loader fails.
  PageHandle Pin(uint32_t file_id, uint64_t block, size_t block_size,
                 PinMode mode, const PageLoader& loader = nullptr);

  // Installs the dirty-page sink. Set before pages can get dirty (the
  // same install-before-use contract as the process seams); without a
  // writer, evicted dirty pages are dropped.
  void set_page_writer(PageWriter writer);

  // Writes back every dirty page through the PageWriter and clears the
  // dirty bits. Returns the number of pages written.
  uint64_t FlushDirty();

  // Read-ahead accounting (the buffers themselves live in BlockFile).
  void CountPrefetch();
  void CountPrefetchHit();

  uint64_t budget_blocks() const { return budget_blocks_; }
  EvictionPolicy policy() const { return policy_; }
  bool read_ahead() const { return read_ahead_; }

  // Read-ahead pipeline depth, captured by BlockFile at Open:
  //   0          no read-ahead (same as read_ahead == false)
  //   1          the synchronous one-block double buffer (default —
  //              no threads involved)
  //   N >= 2     asynchronous N-deep prefetch window, serviced by the
  //              process-wide ThreadPool (SetIoThreadPool); falls back
  //              to the synchronous buffer when no pool is installed.
  // Set before opening files, like the budget. The release/acquire pair
  // makes a depth stored just before Open visible to the opening thread
  // (the old relaxed load had no such guarantee).
  void set_prefetch_depth(int depth) {
    prefetch_depth_.store(depth < 0 ? 0 : depth, std::memory_order_release);
  }
  int prefetch_depth() const {
    return read_ahead_ ? prefetch_depth_.load(std::memory_order_acquire)
                       : 0;
  }

  Stats stats() const;
  uint64_t resident_blocks() const;
  uint64_t resident_bytes() const;
  uint64_t pinned_blocks() const;

 private:
  friend class PageHandle;

  struct Frame {
    std::vector<char> data;
    std::list<BlockId>::iterator pos;  // position in list_
    uint32_t pins = 0;
    bool exclusive = false;  // implies pins > 0
    bool dirty = false;
    bool ref = false;        // clock reference bit
  };

  // A dirty page captured under the lock for write-back outside it.
  struct Spill {
    BlockId id;
    std::vector<char> data;
  };

  using FrameMap = std::unordered_map<BlockId, Frame, BlockIdHash>;

  // All methods below require mu_ held.

  // Promote (LRU) or set the reference bit (clock).
  void TouchLocked(Frame* frame);
  // Removes a frame, keeping the clock hand valid.
  void EraseFrameLocked(FrameMap::iterator it);
  // Inserts a new frame (evicting per policy to make room) and returns
  // it. `initial_pins` protects the newcomer from its own eviction
  // sweep. Never refuses: at budget 0 with pins the manager simply runs
  // over budget.
  Frame* InsertFrameLocked(const BlockId& id, const void* data,
                           size_t block_size, uint32_t initial_pins,
                           std::vector<Spill>* spills);
  // The counting install shared by Install/WriteInstall/FinishLoad:
  // refresh-or-insert, counting a miss when count_miss (budget-0 managers
  // count the miss and the immediate eviction without ever inserting).
  void InstallLocked(const BlockId& id, const void* data, size_t block_size,
                     bool count_miss, std::vector<Spill>* spills);
  // Evict one unpinned frame per policy; false when none qualifies.
  bool EvictOneLruLocked(std::vector<Spill>* spills);
  bool EvictOneClockLocked(std::vector<Spill>* spills);
  void TrimToBudgetLocked(std::vector<Spill>* spills);

  // Called without mu_ held.
  void WriteBackSpills(std::vector<Spill>* spills);
  void Unpin(const BlockId& id, PinMode mode);
  void MarkDirtyInternal(const BlockId& id);

  const uint64_t budget_blocks_;
  const EvictionPolicy policy_;
  const bool read_ahead_;
  std::atomic<int> prefetch_depth_{1};

  mutable std::mutex mu_;
  // Waiters of all kinds (load tokens, latches) share one cv: wakeups
  // are rare (cold blocks, contended pins) and the predicates re-check.
  std::condition_variable cv_;
  std::vector<std::string> files_;  // id -> logical path
  // kLru: MRU at the front, victims from the back.
  // kClock: insertion ring; hand_ walks it in sweep order.
  std::list<BlockId> list_;
  std::list<BlockId>::iterator hand_ = list_.end();
  FrameMap resident_;
  std::unordered_set<BlockId, BlockIdHash> loading_;  // live load tokens
  PageWriter writer_;
  Stats stats_;
};

namespace internal_io {
inline std::atomic<BufferManager*> g_buffer_manager{nullptr};
}  // namespace internal_io

// Installs `manager` as the process-wide buffer manager (nullptr
// disables). Not synchronized against open BlockFiles: install before
// opening them, uninstall after closing them (the same contract as
// SetBlockAccessLog).
inline void SetBufferManager(BufferManager* manager) {
  internal_io::g_buffer_manager.store(manager, std::memory_order_release);
}

inline BufferManager* GetBufferManager() {
  return internal_io::g_buffer_manager.load(std::memory_order_relaxed);
}

}  // namespace ioscc

#endif  // IOSCC_IO_BUFFER_MANAGER_H_
