// Scratch-directory management for spill files (edge files, sort runs).

#ifndef IOSCC_IO_TEMP_DIR_H_
#define IOSCC_IO_TEMP_DIR_H_

#include <memory>
#include <string>

#include "util/status.h"

namespace ioscc {

// Owns a uniquely named directory; removes it (and everything inside)
// on destruction.
class TempDir {
 public:
  // Creates a fresh directory under the system temp root (or $IOSCC_TMPDIR
  // if set) whose name starts with `prefix`.
  static Status Create(const std::string& prefix,
                       std::unique_ptr<TempDir>* out);

  ~TempDir();

  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;

  const std::string& path() const { return path_; }

  // Returns an absolute path for a file named `name` inside the directory.
  std::string FilePath(const std::string& name) const;

  // Allocates a fresh unique file name with the given suffix.
  std::string NewFilePath(const std::string& suffix);

 private:
  explicit TempDir(std::string path) : path_(std::move(path)) {}

  std::string path_;
  uint64_t counter_ = 0;
};

}  // namespace ioscc

#endif  // IOSCC_IO_TEMP_DIR_H_
