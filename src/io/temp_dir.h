// Scratch-directory management for spill files (edge files, sort runs).

#ifndef IOSCC_IO_TEMP_DIR_H_
#define IOSCC_IO_TEMP_DIR_H_

#include <memory>
#include <string>

#include "util/status.h"

namespace ioscc {

// Owns a uniquely named directory; removes it (and everything inside)
// on destruction.
class TempDir {
 public:
  // Creates a fresh directory under the system temp root (or $IOSCC_TMPDIR
  // if set) whose name starts with `prefix`.
  static Status Create(const std::string& prefix,
                       std::unique_ptr<TempDir>* out);

  ~TempDir();

  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;

  const std::string& path() const { return path_; }

  // Disowns the directory: the destructor leaves it on disk. Used when a
  // checkpoint snapshot references files inside it — the snapshots of a
  // failed/interrupted run outlive the process, so the scratch they point
  // at must too. SweepStaleScratch reaps it once the owner pid is gone.
  void KeepOnExit() { keep_ = true; }

  // Returns an absolute path for a file named `name` inside the directory.
  std::string FilePath(const std::string& name) const;

  // Allocates a fresh unique file name with the given suffix.
  std::string NewFilePath(const std::string& suffix);

 private:
  explicit TempDir(std::string path) : path_(std::move(path)) {}

  std::string path_;
  uint64_t counter_ = 0;
  bool keep_ = false;
};

// Outcome of one SweepStaleScratch pass.
struct ScratchSweepStats {
  uint64_t dirs_removed = 0;   // orphaned TempDir trees removed (or counted)
  uint64_t files_removed = 0;  // stray *.tmp staging files removed
  uint64_t skipped_live = 0;   // owner process is still running
  uint64_t skipped_young = 0;  // newer than the age gate
};

// Stale-scratch reaper. TempDir cleans up via its destructor, so a
// SIGKILL (or the crash-torture harness) strands `ioscc-*.<pid>.<id>`
// trees and `ckpt-*.snap.tmp` staging files under the scratch root.
// This removes, directly under `root`:
//   * directories named `ioscc-<anything>.<pid>.<id>` whose owning pid
//     is no longer alive (kill(pid, 0) => ESRCH), and
//   * regular files ending in ".tmp" (write-temp-then-rename leftovers),
// both only when older than `max_age_seconds` — the age gate keeps a
// concurrent live run's freshly created scratch safe even if pid reuse
// makes the liveness probe lie. `dry_run` counts without deleting.
// Anything not matching those shapes is never touched.
Status SweepStaleScratch(const std::string& root, uint64_t max_age_seconds,
                         bool dry_run, ScratchSweepStats* stats);

}  // namespace ioscc

#endif  // IOSCC_IO_TEMP_DIR_H_
