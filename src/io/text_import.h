// Text edge-list import/export (SNAP / WebGraph-ascii style).
//
// The real datasets the paper evaluates (cit-patents, go-uniprot,
// citeseerx, WEBSPAM-UK2007) ship as whitespace-separated "u v" lines
// with '#' comments. ImportTextEdges streams such a file into our binary
// edge-file format, optionally densifying arbitrary (possibly sparse,
// 64-bit) ids into 0..n-1.

#ifndef IOSCC_IO_TEXT_IMPORT_H_
#define IOSCC_IO_TEXT_IMPORT_H_

#include <cstdint>
#include <string>

#include "io/io_stats.h"
#include "util/status.h"

namespace ioscc {

struct TextImportOptions {
  // Remap arbitrary node ids to dense 0..n-1 (first-seen order). When
  // false, ids are used as-is and node_count = max id + 1 (ids must fit
  // in 32 bits).
  bool densify = true;
  // Drop self-loops during import.
  bool drop_self_loops = false;
  // Block size of the output edge file.
  size_t block_size = kDefaultBlockSize;
};

struct TextImportResult {
  uint64_t node_count = 0;
  uint64_t edge_count = 0;
  uint64_t comment_lines = 0;
  uint64_t dropped_self_loops = 0;
};

// Parses `text_path` ('#'- or '%'-prefixed lines are comments; each other
// non-empty line is "<from> <to>" with arbitrary whitespace) and writes
// the binary edge file to `edge_path`.
Status ImportTextEdges(const std::string& text_path,
                       const std::string& edge_path,
                       const TextImportOptions& options,
                       TextImportResult* result, IoStats* io);

// Writes the binary edge file at `edge_path` as "u v" lines (one edge per
// line) with a "# nodes=<n> edges=<m>" header comment.
Status ExportTextEdges(const std::string& edge_path,
                       const std::string& text_path, IoStats* io);

}  // namespace ioscc

#endif  // IOSCC_IO_TEXT_IMPORT_H_
