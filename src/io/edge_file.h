// On-disk edge-list format and sequential streaming access.
//
// Layout: one header block followed by data blocks of packed Edge records
// (8 bytes each). The header block stores {magic, version, block size,
// node count, edge count}; the rest of it is zero padding so that data
// blocks stay aligned. A graph with m edges therefore occupies
// 1 + ceil(m / edges_per_block) blocks, and one sequential scan costs
// exactly that many block reads — the quantity the paper counts.
//
// Semi-external algorithms only ever touch edges through EdgeScanner
// (repeated sequential scans) and EdgeWriter (rewriting a reduced graph),
// so IoStats gives a faithful I/O count.

#ifndef IOSCC_IO_EDGE_FILE_H_
#define IOSCC_IO_EDGE_FILE_H_

#include <memory>
#include <string>
#include <vector>

#include "graph/types.h"
#include "io/block_file.h"
#include "io/io_stats.h"
#include "util/status.h"

namespace ioscc {

// On-disk record widths. Every analytic byte-per-record term (the cost
// models in harness/theory.h, the I/O budgets in harness/io_budget.h)
// derives from these so the bounds track the format if it ever changes.
inline constexpr size_t kEdgeRecordBytes = sizeof(Edge);
inline constexpr size_t kNodeIdRecordBytes = sizeof(NodeId);
static_assert(kEdgeRecordBytes == 2 * kNodeIdRecordBytes,
              "an edge record is exactly two node ids");

// Parsed header of an edge file.
struct EdgeFileInfo {
  uint64_t node_count = 0;
  uint64_t edge_count = 0;
  size_t block_size = kDefaultBlockSize;

  // Blocks a full sequential scan reads (header + data).
  uint64_t TotalBlocks() const {
    size_t per_block = block_size / sizeof(Edge);
    return 1 + (edge_count + per_block - 1) / per_block;
  }
};

// Reads and validates only the header of `path`.
Status ReadEdgeFileInfo(const std::string& path, EdgeFileInfo* info);

// Appends edges to a new edge file. Not thread-safe.
class EdgeWriter {
 public:
  // Creates/overwrites `path`. `node_count` may be adjusted later via
  // set_node_count (e.g. generators that discover n while emitting).
  static Status Create(const std::string& path, uint64_t node_count,
                       size_t block_size, IoStats* stats,
                       std::unique_ptr<EdgeWriter>* out);

  ~EdgeWriter();

  EdgeWriter(const EdgeWriter&) = delete;
  EdgeWriter& operator=(const EdgeWriter&) = delete;

  Status Add(Edge edge);

  void set_node_count(uint64_t node_count) { node_count_ = node_count; }
  uint64_t edge_count() const { return edge_count_; }

  // Flushes the tail block and rewrites the header. Must be called exactly
  // once; no Add() after Finish().
  Status Finish();

 private:
  EdgeWriter(std::string path, uint64_t node_count, size_t block_size,
             IoStats* stats)
      : path_(std::move(path)),
        node_count_(node_count),
        block_size_(block_size),
        stats_(stats) {}

  Status FlushBlock();

  std::string path_;
  uint64_t node_count_;
  size_t block_size_;
  IoStats* stats_;
  std::unique_ptr<BlockFile> file_;
  std::vector<Edge> buffer_;
  uint64_t edge_count_ = 0;
  bool finished_ = false;
};

// Sequentially scans an edge file, possibly multiple times (Reset()).
class EdgeScanner {
 public:
  static Status Open(const std::string& path, IoStats* stats,
                     std::unique_ptr<EdgeScanner>* out);

  EdgeScanner(const EdgeScanner&) = delete;
  EdgeScanner& operator=(const EdgeScanner&) = delete;

  // Fills `edge` and returns true, or returns false at end-of-file or on
  // error (distinguish via status()).
  bool Next(Edge* edge);

  // Rewinds to the first edge. The next data block read is counted again:
  // each pass over the file is a fresh sequential scan.
  void Reset();

  Status status() const { return status_; }
  uint64_t node_count() const { return info_.node_count; }
  uint64_t edge_count() const { return info_.edge_count; }
  const EdgeFileInfo& info() const { return info_; }

 private:
  EdgeScanner(std::unique_ptr<BlockFile> file, const EdgeFileInfo& info)
      : file_(std::move(file)), info_(info) {
    block_.resize(info_.block_size / sizeof(Edge));
  }

  std::unique_ptr<BlockFile> file_;
  EdgeFileInfo info_;
  std::vector<Edge> block_;      // current data block, decoded
  uint64_t next_block_ = 1;      // next data block index (0 is the header)
  size_t pos_in_block_ = 0;      // next edge within block_
  size_t valid_in_block_ = 0;    // edges decoded in block_
  uint64_t edges_emitted_ = 0;
  Status status_;
};

// Convenience: writes `edges` (n = node_count) to `path`.
Status WriteEdgeFile(const std::string& path, uint64_t node_count,
                     const std::vector<Edge>& edges, size_t block_size,
                     IoStats* stats);

// Convenience: reads every edge into memory (tests / small graphs only).
Status ReadAllEdges(const std::string& path, std::vector<Edge>* edges,
                    uint64_t* node_count, IoStats* stats);

// Streams `input` to `output` with every edge reversed (v,u for u,v).
Status ReverseEdgeFile(const std::string& input, const std::string& output,
                       IoStats* stats);

}  // namespace ioscc

#endif  // IOSCC_IO_EDGE_FILE_H_
