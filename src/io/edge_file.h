// On-disk edge-list format and sequential streaming access.
//
// Layout: one header block followed by data blocks of packed Edge records
// (8 bytes each). The header block stores {magic, version, block size,
// node count, edge count}; the rest of it is zero padding so that data
// blocks stay aligned. A graph with m edges therefore occupies
// 1 + ceil(m / edges_per_block) blocks, and one sequential scan costs
// exactly that many block reads — the quantity the paper counts.
//
// Two format versions coexist (docs/FORMATS.md has the byte layout):
//   v1  bit-faithful to the paper's raw-block model; a block is pure
//       payload and corruption is only caught structurally.
//   v2  every block (header included) ends in a 4-byte masked CRC32C
//       trailer over the rest of the block, so a flipped bit anywhere is
//       detected at read time as Status::Corruption naming the file,
//       block, and byte offset — instead of propagating into SCC output.
// Readers handle both transparently (the header self-describes); writers
// default to the process-wide version (SetDefaultEdgeFileVersion), which
// starts at v1 so checksums are strictly opt-in.
//
// Durability: EdgeWriter stages output in `<path>.tmp` and renames it
// over `path` only after the header rewrite and an fsync succeed, so an
// interrupted write never leaves a half-valid file under the final name.
//
// Semi-external algorithms only ever touch edges through EdgeScanner
// (repeated sequential scans) and EdgeWriter (rewriting a reduced graph),
// so IoStats gives a faithful I/O count.

#ifndef IOSCC_IO_EDGE_FILE_H_
#define IOSCC_IO_EDGE_FILE_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "graph/types.h"
#include "io/block_file.h"
#include "io/io_stats.h"
#include "util/status.h"

namespace ioscc {

// On-disk record widths. Every analytic byte-per-record term (the cost
// models in harness/theory.h, the I/O budgets in harness/io_budget.h)
// derives from these so the bounds track the format if it ever changes.
inline constexpr size_t kEdgeRecordBytes = sizeof(Edge);
inline constexpr size_t kNodeIdRecordBytes = sizeof(NodeId);
static_assert(kEdgeRecordBytes == 2 * kNodeIdRecordBytes,
              "an edge record is exactly two node ids");

// Format versions and the v2 per-block checksum trailer width.
inline constexpr uint32_t kEdgeFormatV1 = 1;
inline constexpr uint32_t kEdgeFormatV2 = 2;
inline constexpr size_t kEdgeBlockTrailerBytes = sizeof(uint32_t);

// Payload bytes a data block of `block_size` carries under `version`:
// the whole block for v1, the block minus the checksum trailer (floored
// to whole edge records) for v2. Budget bounds use this instead of the
// raw block size so they track the reduced v2 payload.
//
// Returns 0 when the block is too small to carry even one record (in
// particular a v2 block of block_size <= kEdgeBlockTrailerBytes, which
// would otherwise underflow the subtraction and wrap to a huge size_t).
// EdgeWriter::Create and header validation reject such block sizes with
// InvalidArgument before any file carries them.
inline constexpr size_t EdgePayloadBytesPerBlock(uint32_t version,
                                                 size_t block_size) {
  const size_t trailer =
      version >= kEdgeFormatV2 ? kEdgeBlockTrailerBytes : 0;
  if (block_size <= trailer) return 0;
  const size_t usable = block_size - trailer;
  return usable / kEdgeRecordBytes * kEdgeRecordBytes;
}

namespace internal_io {
inline std::atomic<uint32_t> g_default_edge_version{kEdgeFormatV1};
}  // namespace internal_io

// Process-wide format version for newly written edge files (generators,
// graph rewrites, sort runs). Defaults to v1: enabling v2 checksums is
// an explicit opt-in because it shrinks the per-block payload and thus
// changes block counts.
inline void SetDefaultEdgeFileVersion(uint32_t version) {
  internal_io::g_default_edge_version.store(version,
                                            std::memory_order_release);
}

inline uint32_t DefaultEdgeFileVersion() {
  return internal_io::g_default_edge_version.load(std::memory_order_relaxed);
}

// Parsed header of an edge file.
struct EdgeFileInfo {
  uint64_t node_count = 0;
  uint64_t edge_count = 0;
  size_t block_size = kDefaultBlockSize;
  uint32_t version = kEdgeFormatV1;

  size_t EdgesPerBlock() const {
    return EdgePayloadBytesPerBlock(version, block_size) / kEdgeRecordBytes;
  }

  // Blocks a full sequential scan reads (header + data).
  uint64_t TotalBlocks() const {
    const size_t per_block = EdgesPerBlock();
    return 1 + (edge_count + per_block - 1) / per_block;
  }
};

// Reads and validates only the header of `path`.
Status ReadEdgeFileInfo(const std::string& path, EdgeFileInfo* info);

// Validates the CRC32C trailer of one v2 block (header or data blocks
// alike — every v2 block is checksummed the same way). On mismatch the
// Corruption status names `path`, the block index, and its byte offset.
// Exposed for io/verify_file.cc's physical fsck pass; EdgeScanner runs
// the same check on every block it reads.
Status VerifyEdgeBlockChecksum(const std::string& path, uint64_t block_index,
                               const void* block, size_t block_size);

// Appends edges to a new edge file. Not thread-safe.
//
// Output is staged in `<path>.tmp` until Finish() has flushed the tail,
// rewritten the header, and fsynced; only then is it renamed to `path`.
// On any failure (and on destruction without Finish) the temp file is
// removed, so crashes and injected faults leave neither a torn `path`
// nor an orphaned `.tmp`.
class EdgeWriter {
 public:
  // Creates/overwrites `path`. `node_count` may be adjusted later via
  // set_node_count (e.g. generators that discover n while emitting).
  // `format_version` 0 means the process default
  // (DefaultEdgeFileVersion()).
  static Status Create(const std::string& path, uint64_t node_count,
                       size_t block_size, IoStats* stats,
                       std::unique_ptr<EdgeWriter>* out,
                       uint32_t format_version = 0);

  ~EdgeWriter();

  EdgeWriter(const EdgeWriter&) = delete;
  EdgeWriter& operator=(const EdgeWriter&) = delete;

  Status Add(Edge edge);

  void set_node_count(uint64_t node_count) { node_count_ = node_count; }
  uint64_t edge_count() const { return edge_count_; }
  uint32_t format_version() const { return version_; }

  // Flushes the tail block, rewrites the header, fsyncs, and renames the
  // temp file into place. Must be called exactly once; no Add() after
  // Finish().
  Status Finish();

 private:
  EdgeWriter(std::string path, uint64_t node_count, size_t block_size,
             uint32_t version, IoStats* stats)
      : path_(std::move(path)),
        tmp_path_(path_ + ".tmp"),
        node_count_(node_count),
        block_size_(block_size),
        version_(version),
        stats_(stats) {}

  Status FlushBlock();
  // Closes and deletes the staging file after a failure.
  void Abandon();

  std::string path_;
  std::string tmp_path_;
  uint64_t node_count_;
  size_t block_size_;
  uint32_t version_;
  IoStats* stats_;
  std::unique_ptr<BlockFile> file_;
  std::vector<Edge> buffer_;
  uint64_t edge_count_ = 0;
  bool finished_ = false;
};

// Sequentially scans an edge file, possibly multiple times (Reset()).
// For v2 files every block's checksum is verified as it is read; a
// mismatch surfaces as Status::Corruption naming the block.
class EdgeScanner {
 public:
  static Status Open(const std::string& path, IoStats* stats,
                     std::unique_ptr<EdgeScanner>* out);

  EdgeScanner(const EdgeScanner&) = delete;
  EdgeScanner& operator=(const EdgeScanner&) = delete;

  // Fills `edge` and returns true, or returns false at end-of-file or on
  // error (distinguish via status()).
  bool Next(Edge* edge);

  // Rewinds to the first edge. The next data block read is counted again:
  // each pass over the file is a fresh sequential scan.
  void Reset();

  Status status() const { return status_; }
  uint64_t node_count() const { return info_.node_count; }
  uint64_t edge_count() const { return info_.edge_count; }
  const EdgeFileInfo& info() const { return info_; }

 private:
  EdgeScanner(std::unique_ptr<BlockFile> file, const EdgeFileInfo& info)
      : file_(std::move(file)), info_(info) {
    block_.resize(info_.block_size / sizeof(Edge));
  }

  std::unique_ptr<BlockFile> file_;
  EdgeFileInfo info_;
  std::vector<Edge> block_;      // current data block, decoded
  uint64_t next_block_ = 1;      // next data block index (0 is the header)
  size_t pos_in_block_ = 0;      // next edge within block_
  size_t valid_in_block_ = 0;    // edges decoded in block_
  uint64_t edges_emitted_ = 0;
  Status status_;
};

// Convenience: writes `edges` (n = node_count) to `path`.
Status WriteEdgeFile(const std::string& path, uint64_t node_count,
                     const std::vector<Edge>& edges, size_t block_size,
                     IoStats* stats, uint32_t format_version = 0);

// Convenience: reads every edge into memory (tests / small graphs only).
Status ReadAllEdges(const std::string& path, std::vector<Edge>* edges,
                    uint64_t* node_count, IoStats* stats);

// Streams `input` to `output` with every edge reversed (v,u for u,v).
// The output keeps the input's format version.
Status ReverseEdgeFile(const std::string& input, const std::string& output,
                       IoStats* stats);

}  // namespace ioscc

#endif  // IOSCC_IO_EDGE_FILE_H_
