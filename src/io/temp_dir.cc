#include "io/temp_dir.h"

#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <system_error>

namespace ioscc {
namespace fs = std::filesystem;

namespace {
std::atomic<uint64_t> g_dir_counter{0};

// Parses a TempDir directory name of the shape `ioscc-*.<pid>.<id>`;
// returns false (leaving *pid untouched) for anything else.
bool ParseScratchDirName(const std::string& name, pid_t* pid) {
  if (name.rfind("ioscc", 0) != 0) return false;
  size_t last_dot = name.rfind('.');
  if (last_dot == std::string::npos || last_dot + 1 >= name.size()) {
    return false;
  }
  size_t pid_dot = name.rfind('.', last_dot - 1);
  if (pid_dot == std::string::npos || pid_dot + 1 >= last_dot) return false;
  uint64_t pid_value = 0;
  for (size_t i = pid_dot + 1; i < last_dot; ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
    pid_value = pid_value * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  for (size_t i = last_dot + 1; i < name.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
  }
  *pid = static_cast<pid_t>(pid_value);
  return true;
}

bool ProcessAlive(pid_t pid) {
  if (pid <= 0) return false;
  // Signal 0 probes existence without delivering anything; EPERM means
  // the process exists but belongs to someone else — treat as alive.
  return ::kill(pid, 0) == 0 || errno == EPERM;
}

bool OlderThan(const fs::path& path, uint64_t max_age_seconds) {
  std::error_code ec;
  fs::file_time_type mtime = fs::last_write_time(path, ec);
  if (ec) return false;  // unreadable: leave it alone
  const auto age = fs::file_time_type::clock::now() - mtime;
  return age >= std::chrono::seconds(max_age_seconds);
}
}  // namespace

Status TempDir::Create(const std::string& prefix,
                       std::unique_ptr<TempDir>* out) {
  const char* env_root = std::getenv("IOSCC_TMPDIR");
  std::error_code ec;
  fs::path root = env_root != nullptr ? fs::path(env_root)
                                      : fs::temp_directory_path(ec);
  if (ec) return Status::IoError("temp root unavailable: " + ec.message());

  // Retry with distinct counters in case of collisions.
  for (int attempt = 0; attempt < 64; ++attempt) {
    uint64_t id = g_dir_counter.fetch_add(1);
    fs::path candidate =
        root / (prefix + "." + std::to_string(::getpid()) + "." +
                std::to_string(id));
    if (fs::create_directories(candidate, ec) && !ec) {
      out->reset(new TempDir(candidate.string()));
      return Status::OK();
    }
  }
  return Status::IoError("could not create temp dir under " + root.string());
}

TempDir::~TempDir() {
  if (keep_) return;
  std::error_code ec;
  fs::remove_all(path_, ec);  // best effort
}

std::string TempDir::FilePath(const std::string& name) const {
  return (fs::path(path_) / name).string();
}

std::string TempDir::NewFilePath(const std::string& suffix) {
  return FilePath("f" + std::to_string(counter_++) + suffix);
}

Status SweepStaleScratch(const std::string& root, uint64_t max_age_seconds,
                         bool dry_run, ScratchSweepStats* stats) {
  *stats = ScratchSweepStats();
  std::error_code ec;
  fs::directory_iterator it(root, ec);
  if (ec) {
    return Status::IoError("cannot scan scratch root " + root + ": " +
                           ec.message());
  }
  for (const fs::directory_entry& entry : it) {
    const fs::path& path = entry.path();
    const std::string name = path.filename().string();
    std::error_code type_ec;
    if (entry.is_directory(type_ec) && !type_ec) {
      pid_t pid = 0;
      if (!ParseScratchDirName(name, &pid)) continue;
      if (ProcessAlive(pid)) {
        ++stats->skipped_live;
        continue;
      }
      if (!OlderThan(path, max_age_seconds)) {
        ++stats->skipped_young;
        continue;
      }
      if (!dry_run) {
        std::error_code rm_ec;
        fs::remove_all(path, rm_ec);
        if (rm_ec) continue;  // vanished or busy; next sweep retries
      }
      ++stats->dirs_removed;
    } else if (entry.is_regular_file(type_ec) && !type_ec) {
      // Write-temp-then-rename leftovers (e.g. "ckpt-000003.snap.tmp")
      // carry no owner pid, so the age gate alone decides.
      if (name.size() < 4 || name.rfind(".tmp") != name.size() - 4) {
        continue;
      }
      if (!OlderThan(path, max_age_seconds)) {
        ++stats->skipped_young;
        continue;
      }
      if (!dry_run) {
        std::error_code rm_ec;
        fs::remove(path, rm_ec);
        if (rm_ec) continue;
      }
      ++stats->files_removed;
    }
  }
  return Status::OK();
}

}  // namespace ioscc
