#include "io/temp_dir.h"

#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <system_error>

namespace ioscc {
namespace fs = std::filesystem;

namespace {
std::atomic<uint64_t> g_dir_counter{0};
}  // namespace

Status TempDir::Create(const std::string& prefix,
                       std::unique_ptr<TempDir>* out) {
  const char* env_root = std::getenv("IOSCC_TMPDIR");
  std::error_code ec;
  fs::path root = env_root != nullptr ? fs::path(env_root)
                                      : fs::temp_directory_path(ec);
  if (ec) return Status::IoError("temp root unavailable: " + ec.message());

  // Retry with distinct counters in case of collisions.
  for (int attempt = 0; attempt < 64; ++attempt) {
    uint64_t id = g_dir_counter.fetch_add(1);
    fs::path candidate =
        root / (prefix + "." + std::to_string(::getpid()) + "." +
                std::to_string(id));
    if (fs::create_directories(candidate, ec) && !ec) {
      out->reset(new TempDir(candidate.string()));
      return Status::OK();
    }
  }
  return Status::IoError("could not create temp dir under " + root.string());
}

TempDir::~TempDir() {
  std::error_code ec;
  fs::remove_all(path_, ec);  // best effort
}

std::string TempDir::FilePath(const std::string& name) const {
  return (fs::path(path_) / name).string();
}

std::string TempDir::NewFilePath(const std::string& suffix) {
  return FilePath("f" + std::to_string(counter_++) + suffix);
}

}  // namespace ioscc
