#include "io/verify_file.h"

#include <memory>

#include "io/edge_file.h"

namespace ioscc {
namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

uint64_t HashEdge(Edge edge) {
  uint64_t h = kFnvOffset;
  uint64_t packed =
      (static_cast<uint64_t>(edge.from) << 32) | edge.to;
  for (int shift = 0; shift < 64; shift += 8) {
    h ^= (packed >> shift) & 0xFF;
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace

Status VerifyEdgeFile(const std::string& path,
                      EdgeFileFingerprint* fingerprint, IoStats* io) {
  std::unique_ptr<EdgeScanner> scanner;
  IOSCC_RETURN_IF_ERROR(EdgeScanner::Open(path, io, &scanner));
  EdgeFileFingerprint local;
  local.node_count = scanner->node_count();
  local.stream_digest = kFnvOffset;

  Edge edge;
  while (scanner->Next(&edge)) {
    ++local.edge_count;
    uint64_t h = HashEdge(edge);
    local.stream_digest = (local.stream_digest ^ h) * kFnvPrime;
    local.multiset_digest += h;
  }
  IOSCC_RETURN_IF_ERROR(scanner->status());
  if (local.edge_count != scanner->edge_count()) {
    return Status::Corruption(path + ": payload held " +
                              std::to_string(local.edge_count) +
                              " edges but the header claims " +
                              std::to_string(scanner->edge_count()));
  }
  if (fingerprint != nullptr) *fingerprint = local;
  return Status::OK();
}

}  // namespace ioscc
