#include "io/verify_file.h"

#include <memory>
#include <vector>

#include "io/block_file.h"
#include "io/edge_file.h"

namespace ioscc {
namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

uint64_t HashEdge(Edge edge) {
  uint64_t h = kFnvOffset;
  uint64_t packed =
      (static_cast<uint64_t>(edge.from) << 32) | edge.to;
  for (int shift = 0; shift < 64; shift += 8) {
    h ^= (packed >> shift) & 0xFF;
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace

Status VerifyEdgeFile(const std::string& path,
                      EdgeFileFingerprint* fingerprint, IoStats* io) {
  std::unique_ptr<EdgeScanner> scanner;
  IOSCC_RETURN_IF_ERROR(EdgeScanner::Open(path, io, &scanner));
  EdgeFileFingerprint local;
  local.node_count = scanner->node_count();
  local.stream_digest = kFnvOffset;

  Edge edge;
  while (scanner->Next(&edge)) {
    ++local.edge_count;
    uint64_t h = HashEdge(edge);
    local.stream_digest = (local.stream_digest ^ h) * kFnvPrime;
    local.multiset_digest += h;
  }
  IOSCC_RETURN_IF_ERROR(scanner->status());
  if (local.edge_count != scanner->edge_count()) {
    return Status::Corruption(path + ": payload held " +
                              std::to_string(local.edge_count) +
                              " edges but the header claims " +
                              std::to_string(scanner->edge_count()));
  }
  if (fingerprint != nullptr) *fingerprint = local;
  return Status::OK();
}

Status FsckEdgeFile(const std::string& path, FsckReport* report,
                    IoStats* io) {
  FsckReport local;
  EdgeFileInfo info;
  IOSCC_RETURN_IF_ERROR(ReadEdgeFileInfo(path, &info));
  local.version = info.version;
  local.block_count = info.TotalBlocks();

  // Physical pass: visit every block the header claims. The logical scan
  // below stops at the first damaged block, so this pass is what lets
  // fsck report *where* the damage starts even in a multiply-corrupt
  // file. v1 blocks have no trailer to check; reading them still catches
  // truncation.
  Status physical = Status::OK();
  {
    std::unique_ptr<BlockFile> file;
    IOSCC_RETURN_IF_ERROR(BlockFile::Open(
        path, BlockFile::Mode::kRead, info.block_size, io, &file));
    std::vector<char> block(info.block_size);
    for (uint64_t b = 0; b < local.block_count; ++b) {
      Status st = file->ReadBlock(b, block.data());
      if (st.ok() && info.version >= kEdgeFormatV2) {
        st = VerifyEdgeBlockChecksum(path, b, block.data(),
                                     info.block_size);
      }
      if (!st.ok() && physical.ok()) {
        physical = st;
        local.first_bad_block = static_cast<int64_t>(b);
      }
      if (st.ok()) ++local.blocks_checked;
    }
  }

  // Logical pass: structural + endpoint validation and the fingerprint.
  Status logical =
      VerifyEdgeFile(path, &local.fingerprint, io);

  if (report != nullptr) *report = local;
  if (!physical.ok()) return physical;
  return logical;
}

}  // namespace ioscc
