// On-disk checkpoint snapshot format (docs/FORMATS.md).
//
// A snapshot is a single self-validating file holding one manifest (who
// wrote it, for which input, at which boundary) plus one opaque
// driver-state blob. Layout, in 4 KiB blocks written through BlockFile
// (so snapshot I/O is counted, audited, and fault-injectable like every
// other block transfer):
//
//   "IOSCCKPT"            8-byte magic
//   format_version  u32   kSnapshotFormatVersion
//   payload_len     u64   bytes of payload that follow
//   payload               manifest blob + driver-state blob (util/blob.h)
//   crc             u32   masked CRC32C of everything above
//   zero padding to a whole number of blocks
//
// Durability follows the PR 3 EdgeWriter discipline: the snapshot is
// staged in `<path>.tmp`, fsync'd, then renamed over the final name —
// a crash at any instant leaves either the previous complete snapshot
// or a `.tmp` orphan (swept by `scc_tool clean-scratch`), never a torn
// final file under the published name. A torn or bit-flipped snapshot
// that somehow does appear (torn-write fault injection, disk damage) is
// caught by the whole-payload CRC and reported as Status::Corruption so
// resume can fall back to the previous sequence number.

#ifndef IOSCC_IO_SNAPSHOT_FILE_H_
#define IOSCC_IO_SNAPSHOT_FILE_H_

#include <cstdint>
#include <string>

#include "io/io_stats.h"
#include "util/status.h"

namespace ioscc {

inline constexpr uint32_t kSnapshotFormatVersion = 1;
inline constexpr size_t kSnapshotBlockSize = 4096;

// Identity + provenance of one snapshot; validated on resume before any
// driver state is trusted.
struct SnapshotManifest {
  std::string algorithm;   // "1P-SCC", ... (scc/algorithms.h name)
  std::string phase;       // driver loop tag, e.g. "1p", "2p.search"
  uint64_t iteration = 0;  // boundary counter when the snapshot was cut
  uint64_t seq = 0;        // monotone snapshot sequence number
  std::string input_path;  // the run's input edge file
  // Cheap content fingerprint of the input: file size plus the CRC32C of
  // its first block. Catches "same path, different graph" without a full
  // verify scan at every checkpoint.
  uint64_t input_size = 0;
  uint32_t input_head_crc = 0;
  std::string build_sha;   // util/build_info.h BuildGitSha()
  // The edge stream the driver was scanning when the snapshot was cut.
  // Usually the input itself; after a contraction rewrite it is a file
  // inside the (deliberately kept) scratch dir of the interrupted
  // process. Resume refuses a snapshot whose stream is gone — e.g. one
  // retained by --keep-checkpoints after a *successful* run, whose
  // scratch was correctly deleted — and falls back to an older snapshot
  // or a fresh start. Empty means "no stream dependency".
  std::string stream_path;
};

// Computes the manifest fingerprint fields for `path`. Reads at most one
// kSnapshotBlockSize chunk via stdio — constant work, deliberately
// outside the block-I/O ledger (it is identity metadata, not data I/O).
Status FingerprintInputFile(const std::string& path, uint64_t* size,
                            uint32_t* head_crc);

// Writes `manifest` + `driver_state` to `path` (temp + fsync + rename).
// `stats` may be null; when set it receives the snapshot's block I/O —
// callers keep this ledger separate from the run ledger so checkpointing
// never perturbs the paper's I/O counts.
Status WriteSnapshot(const std::string& path,
                     const SnapshotManifest& manifest,
                     const std::string& driver_state, IoStats* stats);

// Reads and validates (magic, version, CRC) the snapshot at `path`.
// Either output may be null when only validation is wanted.
Status ReadSnapshot(const std::string& path, SnapshotManifest* manifest,
                    std::string* driver_state, IoStats* stats);

// Crash-point seam for the kill-torture suite: when installed, the hook
// is invoked at the named instants of WriteSnapshot so a test child can
// raise(SIGKILL) exactly mid-checkpoint. Never installed in production.
enum class SnapshotCrashPoint {
  kMidTempWrite,    // some but not all payload blocks staged in .tmp
  kAfterTempWrite,  // .tmp complete + fsync'd, rename not yet issued
  kAfterRename,     // the new snapshot is published
};
void SetSnapshotCrashHook(void (*hook)(SnapshotCrashPoint));

}  // namespace ioscc

#endif  // IOSCC_IO_SNAPSHOT_FILE_H_
