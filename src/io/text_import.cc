#include "io/text_import.h"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <memory>
#include <unordered_map>

#include "graph/types.h"
#include "io/edge_file.h"

namespace ioscc {
namespace {

// Parses an unsigned integer starting at *p, advancing it. Returns false
// if no digits are present.
bool ParseUint(const char** p, uint64_t* value) {
  const char* s = *p;
  while (*s == ' ' || *s == '\t') ++s;
  if (!std::isdigit(static_cast<unsigned char>(*s))) return false;
  uint64_t v = 0;
  while (std::isdigit(static_cast<unsigned char>(*s))) {
    v = v * 10 + static_cast<uint64_t>(*s - '0');
    ++s;
  }
  *p = s;
  *value = v;
  return true;
}

}  // namespace

Status ImportTextEdges(const std::string& text_path,
                       const std::string& edge_path,
                       const TextImportOptions& options,
                       TextImportResult* result, IoStats* io) {
  std::FILE* in = std::fopen(text_path.c_str(), "r");
  if (in == nullptr) {
    return Status::IoError("open " + text_path + ": " +
                           std::strerror(errno));
  }

  std::unique_ptr<EdgeWriter> writer;
  Status st = EdgeWriter::Create(edge_path, 0, options.block_size, io,
                                 &writer);
  if (!st.ok()) {
    std::fclose(in);
    return st;
  }

  TextImportResult local;
  std::unordered_map<uint64_t, NodeId> dense;
  uint64_t max_id = 0;
  auto map_id = [&](uint64_t raw) -> NodeId {
    if (!options.densify) {
      max_id = std::max(max_id, raw);
      return static_cast<NodeId>(raw);
    }
    auto [it, inserted] =
        dense.emplace(raw, static_cast<NodeId>(dense.size()));
    return it->second;
  };

  char line[4096];
  uint64_t line_number = 0;
  while (std::fgets(line, sizeof(line), in) != nullptr) {
    ++line_number;
    const char* p = line;
    while (*p == ' ' || *p == '\t') ++p;
    if (*p == '\0' || *p == '\n' || *p == '\r') continue;
    if (*p == '#' || *p == '%') {
      ++local.comment_lines;
      continue;
    }
    uint64_t from_raw = 0, to_raw = 0;
    if (!ParseUint(&p, &from_raw) || !ParseUint(&p, &to_raw)) {
      std::fclose(in);
      return Status::Corruption(text_path + ":" +
                                std::to_string(line_number) +
                                ": expected '<from> <to>'");
    }
    if (!options.densify &&
        (from_raw > UINT32_MAX - 1 || to_raw > UINT32_MAX - 1)) {
      std::fclose(in);
      return Status::InvalidArgument(
          "node id exceeds 32 bits; use densify");
    }
    NodeId from = map_id(from_raw);
    NodeId to = map_id(to_raw);
    if (options.drop_self_loops && from == to) {
      ++local.dropped_self_loops;
      continue;
    }
    st = writer->Add(Edge{from, to});
    if (!st.ok()) {
      std::fclose(in);
      return st;
    }
  }
  const bool read_error = std::ferror(in) != 0;
  std::fclose(in);
  if (read_error) return Status::IoError("read " + text_path);

  local.node_count =
      options.densify ? dense.size()
                      : (writer->edge_count() > 0 || max_id > 0 ? max_id + 1
                                                                : 0);
  local.edge_count = writer->edge_count();
  writer->set_node_count(local.node_count);
  IOSCC_RETURN_IF_ERROR(writer->Finish());
  if (result != nullptr) *result = local;
  return Status::OK();
}

Status ExportTextEdges(const std::string& edge_path,
                       const std::string& text_path, IoStats* io) {
  std::unique_ptr<EdgeScanner> scanner;
  IOSCC_RETURN_IF_ERROR(EdgeScanner::Open(edge_path, io, &scanner));
  std::FILE* out = std::fopen(text_path.c_str(), "w");
  if (out == nullptr) {
    return Status::IoError("open " + text_path + ": " +
                           std::strerror(errno));
  }
  std::fprintf(out, "# nodes=%llu edges=%llu\n",
               static_cast<unsigned long long>(scanner->node_count()),
               static_cast<unsigned long long>(scanner->edge_count()));
  Edge edge;
  while (scanner->Next(&edge)) {
    std::fprintf(out, "%u %u\n", edge.from, edge.to);
  }
  const bool write_error = std::ferror(out) != 0;
  std::fclose(out);
  if (write_error) return Status::IoError("write " + text_path);
  return scanner->status();
}

}  // namespace ioscc
