// A real, budgeted LRU block cache between BlockFile and the disk.
//
// PR 2 built SimulateLruCache (obs/io_audit.h), which replays an audit
// log and predicts how many reads a c-block cache would absorb. This is
// the cache that actually absorbs them: one process-wide LRU over every
// BlockFile opened while it is installed, holding at most budget_blocks
// resident blocks — the constant number of in-memory blocks the
// semi-external model grants (harness/theory.h charges the budget
// against that grant; it never shrinks the algorithms' own O(|V|)
// allocation, so results are byte-identical at every budget).
//
// The simulator is the spec: the cache's LRU state transitions are keyed
// on exactly the *logical* accesses the audit log records, in the same
// order, with the same (file, block) identity and the same semantics —
// reads hit or miss and install on miss; writes install/refresh content
// and promote but never count as hits; eviction drops the LRU tail once
// residency exceeds the budget. tests/block_cache_test.cc pins down that
// a run's real hit count equals SimulateLruCache replaying that run's
// audit log at the same budget.
//
// Read-ahead lives *outside* the LRU: each sequentially-scanned
// BlockFile keeps a private one-block prefetch buffer (double
// buffering), filled opportunistically after a physical read. A logical
// read served from that buffer is still an LRU miss (and installs, as
// any miss does) — it just cost no new disk read at demand time. This
// keeps hit/miss accounting in lockstep with the simulator no matter
// how much the prefetcher saves.
//
// Installation follows the TraceSpan/BlockAccessLog pattern:
// SetBlockCache() before opening files, nullptr to disable; BlockFile
// captures the pointer once at Open. The cache must outlive every
// BlockFile opened while installed. All methods are thread-safe.

#ifndef IOSCC_IO_BLOCK_CACHE_H_
#define IOSCC_IO_BLOCK_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace ioscc {

class BlockCache {
 public:
  struct Stats {
    uint64_t hits = 0;        // logical reads served from the LRU
    uint64_t misses = 0;      // logical reads that installed a block
    uint64_t prefetch_hits = 0;       // misses served by the read-ahead buffer
    uint64_t prefetched_blocks = 0;   // read-ahead disk reads performed
    uint64_t evictions = 0;
  };

  // budget_blocks == 0 is legal and caches nothing (every read misses,
  // installs are dropped immediately), matching SimulateLruCache; callers
  // normally just leave the cache uninstalled instead. `read_ahead`
  // enables the per-file prefetch buffer in BlockFile.
  explicit BlockCache(uint64_t budget_blocks, bool read_ahead = true);

  BlockCache(const BlockCache&) = delete;
  BlockCache& operator=(const BlockCache&) = delete;

  // Interns a logical path to a stable file id, exactly like
  // BlockAccessLog::RegisterFile — both key on the logical ("known as")
  // path, so cache identity matches audit identity for temp-then-rename
  // writers and scanner re-opens.
  uint32_t RegisterFile(const std::string& logical_path);

  // Logical read through the LRU. On a hit copies the cached block into
  // `data`, promotes it to MRU, counts a hit, and returns true. On a
  // miss returns false and counts nothing — the caller performs the
  // physical read (or consumes its prefetch buffer) and calls Install,
  // which is where the miss is counted, mirroring the simulator's
  // miss-then-install step.
  bool Lookup(uint32_t file_id, uint64_t block, void* data,
              size_t block_size);

  // Installs block content after a successful physical read, a prefetch-
  // buffer consume, or a write. Read installs (is_write == false) count
  // one miss. Write installs refresh/insert content and promote without
  // touching hit/miss counts, exactly as the simulator treats writes.
  void Install(uint32_t file_id, uint64_t block, const void* data,
               size_t block_size, bool is_write);

  // Residency probe that does NOT promote — used by the prefetcher to
  // skip blocks the LRU would serve anyway without perturbing its order.
  bool Contains(uint32_t file_id, uint64_t block) const;

  // Read-ahead accounting (the buffer itself lives in BlockFile).
  void CountPrefetch();
  void CountPrefetchHit();

  uint64_t budget_blocks() const { return budget_blocks_; }
  bool read_ahead() const { return read_ahead_; }

  // Read-ahead pipeline depth, captured by BlockFile at Open:
  //   0          no read-ahead (same as read_ahead == false)
  //   1          the synchronous one-block double buffer (default —
  //              today's behavior, no threads involved)
  //   N >= 2     asynchronous N-deep prefetch window, serviced by the
  //              process-wide ThreadPool (SetIoThreadPool); falls back
  //              to the synchronous buffer when no pool is installed.
  // Set before opening files, like the budget (not synchronized against
  // open BlockFiles).
  void set_prefetch_depth(int depth) {
    prefetch_depth_.store(depth < 0 ? 0 : depth, std::memory_order_release);
  }
  int prefetch_depth() const {
    return read_ahead_ ? prefetch_depth_.load(std::memory_order_relaxed)
                       : 0;
  }

  Stats stats() const;
  uint64_t resident_blocks() const;
  uint64_t resident_bytes() const;

 private:
  struct Entry {
    std::list<uint64_t>::iterator lru_pos;
    std::vector<char> data;
  };

  // Same packing as obs/io_audit.cc's BlockKey, so (file, block)
  // identity is bit-identical between cache and simulator.
  static uint64_t Key(uint32_t file_id, uint64_t block) {
    return (static_cast<uint64_t>(file_id) << 40) | block;
  }

  void EvictIfOverBudget();  // mu_ held

  const uint64_t budget_blocks_;
  const bool read_ahead_;
  std::atomic<int> prefetch_depth_{1};

  mutable std::mutex mu_;
  std::vector<std::string> files_;          // id -> logical path
  std::list<uint64_t> lru_;                 // MRU at the front
  std::unordered_map<uint64_t, Entry> resident_;
  Stats stats_;
};

namespace internal_io {
inline std::atomic<BlockCache*> g_block_cache{nullptr};
}  // namespace internal_io

// Installs `cache` as the process-wide block cache (nullptr disables).
// Not synchronized against open BlockFiles: install before opening them,
// uninstall after closing them (the same contract as SetBlockAccessLog).
inline void SetBlockCache(BlockCache* cache) {
  internal_io::g_block_cache.store(cache, std::memory_order_release);
}

inline BlockCache* GetBlockCache() {
  return internal_io::g_block_cache.load(std::memory_order_relaxed);
}

}  // namespace ioscc

#endif  // IOSCC_IO_BLOCK_CACHE_H_
