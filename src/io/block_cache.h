// Legacy names for the buffer manager (io/buffer_manager.h).
//
// PR 4's BlockCache was a single-policy, promote-on-every-access LRU
// behind a process-wide capture-at-open seam. The buffer manager
// subsumed it — same budget semantics, same simulator-is-the-spec
// conformance contract, plus single-flight loads, a clock policy,
// pin/unpin handles, and dirty-page write-back — so these aliases exist
// only to keep the original spelling compiling: `BlockCache(budget)` is
// a BufferManager fixed to the LRU policy, and SetBlockCache /
// GetBlockCache forward to the one process-wide manager seam.

#ifndef IOSCC_IO_BLOCK_CACHE_H_
#define IOSCC_IO_BLOCK_CACHE_H_

#include "io/buffer_manager.h"

namespace ioscc {

class BlockCache : public BufferManager {
 public:
  explicit BlockCache(uint64_t budget_blocks, bool read_ahead = true)
      : BufferManager(budget_blocks, EvictionPolicy::kLru, read_ahead) {}
};

// Forwarders to the buffer-manager seam: legacy installers and the new
// code share one process-wide slot, whichever name they use.
inline void SetBlockCache(BufferManager* cache) { SetBufferManager(cache); }
inline BufferManager* GetBlockCache() { return GetBufferManager(); }

}  // namespace ioscc

#endif  // IOSCC_IO_BLOCK_CACHE_H_
