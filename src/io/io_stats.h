// Logical disk I/O accounting.
//
// Every block that crosses the disk boundary through the io:: layer is
// counted here. "# of I/Os" in the paper's tables and figures is
// blocks_read + blocks_written at the default 64 KiB block size.

#ifndef IOSCC_IO_IO_STATS_H_
#define IOSCC_IO_IO_STATS_H_

#include <algorithm>
#include <cstdint>
#include <string>

namespace ioscc {

// Default disk block size used throughout (the paper's experimental setup).
inline constexpr size_t kDefaultBlockSize = 64 * 1024;

struct IoStats {
  // Logical counters: every block the algorithm asked for, whether it was
  // served from disk or from the block cache. The paper's "# of I/Os" is
  // the logical count — it is byte-identical across cache budgets.
  uint64_t blocks_read = 0;
  uint64_t blocks_written = 0;
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
  // Physical attempts repeated after a retryable failure (EINTR, EIO,
  // short transfer — real or injected by io/fault_env.h). Zero on healthy
  // storage; successful retried blocks are still counted once above.
  uint64_t read_retries = 0;
  uint64_t write_retries = 0;
  // Physical counters: blocks that actually crossed the disk boundary.
  // With no BlockCache installed, physical_blocks_read == blocks_read.
  // With a cache, cache_hits logical reads cost no disk read,
  // prefetch_hits were paid early by the read-ahead buffer, and
  // prefetched_blocks counts the read-ahead disk reads themselves (they
  // are physical but not logical — nobody asked for them yet).
  uint64_t physical_blocks_read = 0;
  uint64_t cache_hits = 0;
  uint64_t prefetch_hits = 0;
  uint64_t prefetched_blocks = 0;
  // Timing counters (wall clock, not I/O counts). read_stall_micros is
  // the time the *consumer* spent blocked on the disk: demand reads,
  // synchronous read-ahead, and waits for an in-flight async prefetch.
  // It shrinks as the prefetch pipeline deepens while every logical and
  // physical count above stays put — the whole point of the async
  // prefetcher. prefetch_depth_used is a gauge: the deepest prefetch
  // window in effect while these stats were collected (0 = no
  // read-ahead, 1 = the synchronous double buffer, N>=2 = async).
  //
  // Both are excluded from operator== — equality means "the same I/O
  // happened", and wall-clock timing differs between identical runs —
  // but flow through +=/- so trace spans and reports carry them.
  uint64_t read_stall_micros = 0;
  uint64_t prefetch_depth_used = 0;

  uint64_t TotalBlockIos() const { return blocks_read + blocks_written; }
  uint64_t TotalPhysicalBlockIos() const {
    return physical_blocks_read + blocks_written;
  }
  uint64_t TotalRetries() const { return read_retries + write_retries; }

  void Reset() { *this = IoStats(); }

  IoStats& operator+=(const IoStats& other) {
    blocks_read += other.blocks_read;
    blocks_written += other.blocks_written;
    bytes_read += other.bytes_read;
    bytes_written += other.bytes_written;
    read_retries += other.read_retries;
    write_retries += other.write_retries;
    physical_blocks_read += other.physical_blocks_read;
    cache_hits += other.cache_hits;
    prefetch_hits += other.prefetch_hits;
    prefetched_blocks += other.prefetched_blocks;
    read_stall_micros += other.read_stall_micros;
    prefetch_depth_used = std::max(prefetch_depth_used,
                                   other.prefetch_depth_used);
    return *this;
  }

  // Delta between two snapshots of the same (monotone) counter set, e.g.
  // span exit minus span entry. Saturates at zero per field so a stale
  // pair never underflows into astronomic counts.
  friend IoStats operator-(const IoStats& a, const IoStats& b) {
    auto sub = [](uint64_t x, uint64_t y) { return x > y ? x - y : 0; };
    IoStats delta;
    delta.blocks_read = sub(a.blocks_read, b.blocks_read);
    delta.blocks_written = sub(a.blocks_written, b.blocks_written);
    delta.bytes_read = sub(a.bytes_read, b.bytes_read);
    delta.bytes_written = sub(a.bytes_written, b.bytes_written);
    delta.read_retries = sub(a.read_retries, b.read_retries);
    delta.write_retries = sub(a.write_retries, b.write_retries);
    delta.physical_blocks_read =
        sub(a.physical_blocks_read, b.physical_blocks_read);
    delta.cache_hits = sub(a.cache_hits, b.cache_hits);
    delta.prefetch_hits = sub(a.prefetch_hits, b.prefetch_hits);
    delta.prefetched_blocks = sub(a.prefetched_blocks, b.prefetched_blocks);
    delta.read_stall_micros = sub(a.read_stall_micros, b.read_stall_micros);
    // A gauge, not a counter: the depth in effect over the interval.
    delta.prefetch_depth_used = a.prefetch_depth_used;
    return delta;
  }

  friend IoStats operator+(IoStats a, const IoStats& b) { return a += b; }

  // Compares the I/O *counts* only. The timing fields are deliberately
  // left out: two runs that did identical I/O are equal even though
  // their stall clocks differ (tests compare cached/audited/threaded
  // runs against bare ones this way).
  friend bool operator==(const IoStats& a, const IoStats& b) {
    return a.blocks_read == b.blocks_read &&
           a.blocks_written == b.blocks_written &&
           a.bytes_read == b.bytes_read &&
           a.bytes_written == b.bytes_written &&
           a.read_retries == b.read_retries &&
           a.write_retries == b.write_retries &&
           a.physical_blocks_read == b.physical_blocks_read &&
           a.cache_hits == b.cache_hits &&
           a.prefetch_hits == b.prefetch_hits &&
           a.prefetched_blocks == b.prefetched_blocks;
  }

  // "12,288 I/Os (12,000r + 288w, 768.0 MiB)" — the way benches and tools
  // print block-I/O totals.
  std::string Format() const;
};

}  // namespace ioscc

#endif  // IOSCC_IO_IO_STATS_H_
