// Logical disk I/O accounting.
//
// Every block that crosses the disk boundary through the io:: layer is
// counted here. "# of I/Os" in the paper's tables and figures is
// blocks_read + blocks_written at the default 64 KiB block size.

#ifndef IOSCC_IO_IO_STATS_H_
#define IOSCC_IO_IO_STATS_H_

#include <cstdint>

namespace ioscc {

// Default disk block size used throughout (the paper's experimental setup).
inline constexpr size_t kDefaultBlockSize = 64 * 1024;

struct IoStats {
  uint64_t blocks_read = 0;
  uint64_t blocks_written = 0;
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;

  uint64_t TotalBlockIos() const { return blocks_read + blocks_written; }

  void Reset() { *this = IoStats(); }

  IoStats& operator+=(const IoStats& other) {
    blocks_read += other.blocks_read;
    blocks_written += other.blocks_written;
    bytes_read += other.bytes_read;
    bytes_written += other.bytes_written;
    return *this;
  }
};

}  // namespace ioscc

#endif  // IOSCC_IO_IO_STATS_H_
