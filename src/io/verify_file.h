// Offline integrity verification for edge files.
//
// The edge-file format has no per-block checksums (the paper's I/O model
// counts raw block transfers, and we keep the format bit-faithful to
// that), so VerifyEdgeFile provides the integrity story instead: a full
// structural scan — header sanity, payload length, endpoint ranges — plus
// a content fingerprint that is stable across block sizes and can be
// compared between copies of a graph.

#ifndef IOSCC_IO_VERIFY_FILE_H_
#define IOSCC_IO_VERIFY_FILE_H_

#include <cstdint>
#include <string>

#include "io/io_stats.h"
#include "util/status.h"

namespace ioscc {

struct EdgeFileFingerprint {
  uint64_t node_count = 0;
  uint64_t edge_count = 0;
  // Order-sensitive FNV-1a style digest over the edge stream.
  uint64_t stream_digest = 0;
  // Order-insensitive digest (sum of per-edge hashes): equal for files
  // holding the same edge multiset in different orders (e.g. after an
  // external sort).
  uint64_t multiset_digest = 0;

  friend bool operator==(const EdgeFileFingerprint& a,
                         const EdgeFileFingerprint& b) {
    return a.node_count == b.node_count && a.edge_count == b.edge_count &&
           a.stream_digest == b.stream_digest &&
           a.multiset_digest == b.multiset_digest;
  }
};

// Scans the whole file; returns Corruption for structural damage
// (bad magic, truncation, out-of-range endpoints). On success fills
// `fingerprint` (may be null).
Status VerifyEdgeFile(const std::string& path,
                      EdgeFileFingerprint* fingerprint, IoStats* io);

}  // namespace ioscc

#endif  // IOSCC_IO_VERIFY_FILE_H_
