// Offline integrity verification for edge files.
//
// Format v1 blocks carry no per-block checksums (bit-faithful to the
// paper's raw-block I/O model), so for v1 files VerifyEdgeFile's full
// structural scan — header sanity, payload length, endpoint ranges — is
// the whole integrity story. Format v2 files additionally end every
// block with a CRC32C trailer (see io/edge_file.h and docs/FORMATS.md),
// which the scan validates block by block; a flipped bit surfaces as
// Status::Corruption naming the damaged block. Both versions get a
// content fingerprint that is stable across block sizes and format
// versions and can be compared between copies of a graph.

#ifndef IOSCC_IO_VERIFY_FILE_H_
#define IOSCC_IO_VERIFY_FILE_H_

#include <cstdint>
#include <string>

#include "io/io_stats.h"
#include "util/status.h"

namespace ioscc {

struct EdgeFileFingerprint {
  uint64_t node_count = 0;
  uint64_t edge_count = 0;
  // Order-sensitive FNV-1a style digest over the edge stream.
  uint64_t stream_digest = 0;
  // Order-insensitive digest (sum of per-edge hashes): equal for files
  // holding the same edge multiset in different orders (e.g. after an
  // external sort).
  uint64_t multiset_digest = 0;

  friend bool operator==(const EdgeFileFingerprint& a,
                         const EdgeFileFingerprint& b) {
    return a.node_count == b.node_count && a.edge_count == b.edge_count &&
           a.stream_digest == b.stream_digest &&
           a.multiset_digest == b.multiset_digest;
  }
};

// Scans the whole file; returns Corruption for structural damage
// (bad magic, truncation, out-of-range endpoints) and, on v2 files, for
// any per-block checksum mismatch. On success fills `fingerprint`
// (may be null).
Status VerifyEdgeFile(const std::string& path,
                      EdgeFileFingerprint* fingerprint, IoStats* io);

// Everything `scc_tool fsck` reports about one file.
struct FsckReport {
  uint32_t version = 0;
  uint64_t block_count = 0;   // blocks the header says the file spans
  uint64_t blocks_checked = 0;
  // Index of the first block whose v2 checksum failed, or -1 if the
  // physical pass was clean (always -1 for v1 files, which have no
  // checksums to check).
  int64_t first_bad_block = -1;
  EdgeFileFingerprint fingerprint;
};

// Two-pass check: a physical pass that reads every block the header
// claims and (for v2) validates each block's checksum trailer, then the
// logical VerifyEdgeFile scan. Unlike the scanner — which stops at the
// first damaged block — the physical pass visits all blocks, so `report`
// is filled as far as possible even when the return status is
// Corruption. `report` and `io` may be null.
Status FsckEdgeFile(const std::string& path, FsckReport* report,
                    IoStats* io);

}  // namespace ioscc

#endif  // IOSCC_IO_VERIFY_FILE_H_
