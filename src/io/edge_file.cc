#include "io/edge_file.h"

#include <algorithm>
#include <cstring>

#include "io/block_file.h"

namespace ioscc {
namespace {

constexpr char kMagic[8] = {'I', 'O', 'S', 'C', 'C', 'E', 'D', 'G'};
constexpr uint32_t kVersion = 1;

struct HeaderLayout {
  char magic[8];
  uint32_t version;
  uint32_t block_size;
  uint64_t node_count;
  uint64_t edge_count;
};
static_assert(sizeof(HeaderLayout) == 32, "header layout drifted");

void EncodeHeader(const EdgeFileInfo& info, std::vector<char>* block) {
  block->assign(info.block_size, 0);
  HeaderLayout header;
  std::memcpy(header.magic, kMagic, sizeof(kMagic));
  header.version = kVersion;
  header.block_size = static_cast<uint32_t>(info.block_size);
  header.node_count = info.node_count;
  header.edge_count = info.edge_count;
  std::memcpy(block->data(), &header, sizeof(header));
}

Status DecodeHeader(const char* data, size_t file_block_size,
                    EdgeFileInfo* info) {
  HeaderLayout header;
  std::memcpy(&header, data, sizeof(header));
  if (std::memcmp(header.magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("bad edge-file magic");
  }
  if (header.version != kVersion) {
    return Status::Corruption("unsupported edge-file version " +
                              std::to_string(header.version));
  }
  if (header.block_size != file_block_size) {
    return Status::Corruption("header block size mismatch");
  }
  info->block_size = header.block_size;
  info->node_count = header.node_count;
  info->edge_count = header.edge_count;
  return Status::OK();
}

// Probes the block size by reading the header prefix directly; edge files
// record their own block size, so scanners need no external configuration.
Status ProbeBlockSize(const std::string& path, size_t* block_size) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return Status::IoError("open " + path);
  HeaderLayout header;
  size_t got = std::fread(&header, 1, sizeof(header), file);
  std::fclose(file);
  if (got != sizeof(header)) {
    return Status::Corruption(path + ": truncated header");
  }
  if (std::memcmp(header.magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption(path + ": bad edge-file magic");
  }
  if (header.block_size < sizeof(HeaderLayout) ||
      header.block_size % sizeof(Edge) != 0) {
    return Status::Corruption(path + ": implausible block size");
  }
  *block_size = header.block_size;
  return Status::OK();
}

}  // namespace

Status ReadEdgeFileInfo(const std::string& path, EdgeFileInfo* info) {
  size_t block_size = 0;
  IOSCC_RETURN_IF_ERROR(ProbeBlockSize(path, &block_size));
  std::unique_ptr<BlockFile> file;
  IOSCC_RETURN_IF_ERROR(
      BlockFile::Open(path, BlockFile::Mode::kRead, block_size,
                      /*stats=*/nullptr, &file));
  std::vector<char> block(block_size);
  IOSCC_RETURN_IF_ERROR(file->ReadBlock(0, block.data()));
  IOSCC_RETURN_IF_ERROR(DecodeHeader(block.data(), block_size, info));
  // Validate that the payload is consistent with the edge count.
  if (file->block_count() < info->TotalBlocks()) {
    return Status::Corruption(path + ": file shorter than header claims");
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// EdgeWriter

Status EdgeWriter::Create(const std::string& path, uint64_t node_count,
                          size_t block_size, IoStats* stats,
                          std::unique_ptr<EdgeWriter>* out) {
  if (block_size < sizeof(HeaderLayout) || block_size % sizeof(Edge) != 0) {
    return Status::InvalidArgument(
        "block size must be a multiple of 8 and hold the header");
  }
  std::unique_ptr<EdgeWriter> writer(
      new EdgeWriter(path, node_count, block_size, stats));
  IOSCC_RETURN_IF_ERROR(BlockFile::Open(path, BlockFile::Mode::kWrite,
                                        block_size, stats, &writer->file_));
  // Reserve the header block; rewritten with real counts in Finish().
  std::vector<char> header;
  EdgeFileInfo info{node_count, 0, block_size};
  EncodeHeader(info, &header);
  IOSCC_RETURN_IF_ERROR(writer->file_->AppendBlock(header.data()));
  writer->buffer_.reserve(block_size / sizeof(Edge));
  *out = std::move(writer);
  return Status::OK();
}

EdgeWriter::~EdgeWriter() = default;

Status EdgeWriter::Add(Edge edge) {
  if (finished_) return Status::InvalidArgument("Add after Finish");
  buffer_.push_back(edge);
  ++edge_count_;
  if (buffer_.size() * sizeof(Edge) == block_size_) return FlushBlock();
  return Status::OK();
}

Status EdgeWriter::FlushBlock() {
  std::vector<char> block(block_size_, 0);
  std::memcpy(block.data(), buffer_.data(), buffer_.size() * sizeof(Edge));
  buffer_.clear();
  return file_->AppendBlock(block.data());
}

Status EdgeWriter::Finish() {
  if (finished_) return Status::InvalidArgument("double Finish");
  finished_ = true;
  if (!buffer_.empty()) IOSCC_RETURN_IF_ERROR(FlushBlock());
  IOSCC_RETURN_IF_ERROR(file_->Flush());
  file_.reset();  // close

  // Rewrite the header in place with the final counts. This is metadata
  // maintenance, not part of the algorithmic edge traffic, but we still
  // count it as one block write for honesty.
  std::FILE* f = std::fopen(path_.c_str(), "rb+");
  if (f == nullptr) return Status::IoError("reopen " + path_);
  std::vector<char> header;
  EdgeFileInfo info{node_count_, edge_count_, block_size_};
  EncodeHeader(info, &header);
  size_t wrote = std::fwrite(header.data(), 1, block_size_, f);
  std::fclose(f);
  if (wrote != block_size_) return Status::IoError("header rewrite " + path_);
  if (stats_ != nullptr) {
    ++stats_->blocks_written;
    stats_->bytes_written += block_size_;
  }
  // Mirror the counted write into the audit log: every block I/O that
  // lands in IoStats must be visible to the auditor (tests assert
  // access_count == TotalBlockIos), and this bypasses BlockFile.
  BlockAccessLog* audit = GetBlockAccessLog();
  if (audit != nullptr) {
    audit->Record(audit->RegisterFile(path_), 0, /*is_write=*/true);
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// EdgeScanner

Status EdgeScanner::Open(const std::string& path, IoStats* stats,
                         std::unique_ptr<EdgeScanner>* out) {
  size_t block_size = 0;
  IOSCC_RETURN_IF_ERROR(ProbeBlockSize(path, &block_size));
  std::unique_ptr<BlockFile> file;
  IOSCC_RETURN_IF_ERROR(
      BlockFile::Open(path, BlockFile::Mode::kRead, block_size, stats,
                      &file));
  std::vector<char> header(block_size);
  IOSCC_RETURN_IF_ERROR(file->ReadBlock(0, header.data()));
  EdgeFileInfo info;
  IOSCC_RETURN_IF_ERROR(DecodeHeader(header.data(), block_size, &info));
  if (file->block_count() < info.TotalBlocks()) {
    return Status::Corruption(path + ": file shorter than header claims");
  }
  out->reset(new EdgeScanner(std::move(file), info));
  return Status::OK();
}

bool EdgeScanner::Next(Edge* edge) {
  if (!status_.ok()) return false;
  if (edges_emitted_ == info_.edge_count) return false;
  if (pos_in_block_ == valid_in_block_) {
    status_ = file_->ReadBlock(next_block_, block_.data());
    if (!status_.ok()) return false;
    ++next_block_;
    pos_in_block_ = 0;
    uint64_t remaining = info_.edge_count - edges_emitted_;
    valid_in_block_ = static_cast<size_t>(
        std::min<uint64_t>(remaining, block_.size()));
  }
  *edge = block_[pos_in_block_++];
  ++edges_emitted_;
  // Endpoint validation: algorithms size their per-node state from the
  // header's node count, so an out-of-range id would corrupt memory.
  if (edge->from >= info_.node_count || edge->to >= info_.node_count) {
    status_ = Status::Corruption(
        "edge (" + std::to_string(edge->from) + "," +
        std::to_string(edge->to) + ") exceeds node count " +
        std::to_string(info_.node_count));
    return false;
  }
  return true;
}

void EdgeScanner::Reset() {
  next_block_ = 1;
  pos_in_block_ = 0;
  valid_in_block_ = 0;
  edges_emitted_ = 0;
  status_ = Status::OK();
}

// ---------------------------------------------------------------------------
// Convenience helpers

Status WriteEdgeFile(const std::string& path, uint64_t node_count,
                     const std::vector<Edge>& edges, size_t block_size,
                     IoStats* stats) {
  std::unique_ptr<EdgeWriter> writer;
  IOSCC_RETURN_IF_ERROR(
      EdgeWriter::Create(path, node_count, block_size, stats, &writer));
  for (const Edge& edge : edges) {
    IOSCC_RETURN_IF_ERROR(writer->Add(edge));
  }
  return writer->Finish();
}

Status ReadAllEdges(const std::string& path, std::vector<Edge>* edges,
                    uint64_t* node_count, IoStats* stats) {
  std::unique_ptr<EdgeScanner> scanner;
  IOSCC_RETURN_IF_ERROR(EdgeScanner::Open(path, stats, &scanner));
  edges->clear();
  edges->reserve(scanner->edge_count());
  Edge edge;
  while (scanner->Next(&edge)) edges->push_back(edge);
  if (node_count != nullptr) *node_count = scanner->node_count();
  return scanner->status();
}

Status ReverseEdgeFile(const std::string& input, const std::string& output,
                       IoStats* stats) {
  std::unique_ptr<EdgeScanner> scanner;
  IOSCC_RETURN_IF_ERROR(EdgeScanner::Open(input, stats, &scanner));
  std::unique_ptr<EdgeWriter> writer;
  IOSCC_RETURN_IF_ERROR(EdgeWriter::Create(output, scanner->node_count(),
                                           scanner->info().block_size, stats,
                                           &writer));
  Edge edge;
  while (scanner->Next(&edge)) {
    IOSCC_RETURN_IF_ERROR(writer->Add(Edge{edge.to, edge.from}));
  }
  IOSCC_RETURN_IF_ERROR(scanner->status());
  return writer->Finish();
}

}  // namespace ioscc
