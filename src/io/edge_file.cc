#include "io/edge_file.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "io/block_file.h"
#include "util/crc32c.h"

namespace ioscc {
namespace {

constexpr char kMagic[8] = {'I', 'O', 'S', 'C', 'C', 'E', 'D', 'G'};

struct HeaderLayout {
  char magic[8];
  uint32_t version;
  uint32_t block_size;
  uint64_t node_count;
  uint64_t edge_count;
};
static_assert(sizeof(HeaderLayout) == 32, "header layout drifted");

// Stamps the masked CRC32C of block[0, block_size - 4) into the last
// four bytes. v2 blocks only.
void StampBlockChecksum(char* block, size_t block_size) {
  const uint32_t crc = crc32c::Mask(
      crc32c::Value(block, block_size - kEdgeBlockTrailerBytes));
  std::memcpy(block + block_size - kEdgeBlockTrailerBytes, &crc,
              kEdgeBlockTrailerBytes);
}

}  // namespace

// Verifies a v2 block's trailer; `block_index` and the derived byte
// offset give the Corruption status enough context to locate the damage.
Status VerifyEdgeBlockChecksum(const std::string& path, uint64_t block_index,
                               const void* block, size_t block_size) {
  const char* bytes = static_cast<const char*>(block);
  uint32_t stored = 0;
  std::memcpy(&stored, bytes + block_size - kEdgeBlockTrailerBytes,
              kEdgeBlockTrailerBytes);
  const uint32_t computed = crc32c::Mask(
      crc32c::Value(bytes, block_size - kEdgeBlockTrailerBytes));
  if (stored != computed) {
    char hex[64];
    std::snprintf(hex, sizeof hex, "stored %08x, computed %08x", stored,
                  computed);
    return Status::Corruption(
        path + ": block " + std::to_string(block_index) + " (offset " +
        std::to_string(block_index * block_size) +
        "): checksum mismatch (" + hex + ")");
  }
  return Status::OK();
}

namespace {

void EncodeHeader(const EdgeFileInfo& info, std::vector<char>* block) {
  block->assign(info.block_size, 0);
  HeaderLayout header;
  std::memcpy(header.magic, kMagic, sizeof(kMagic));
  header.version = info.version;
  header.block_size = static_cast<uint32_t>(info.block_size);
  header.node_count = info.node_count;
  header.edge_count = info.edge_count;
  std::memcpy(block->data(), &header, sizeof(header));
  if (info.version >= kEdgeFormatV2) {
    StampBlockChecksum(block->data(), info.block_size);
  }
}

// Decodes and validates a whole header block (including the v2 header
// checksum, which covers the entire block).
Status DecodeHeader(const std::string& path, const char* data,
                    size_t file_block_size, EdgeFileInfo* info) {
  HeaderLayout header;
  std::memcpy(&header, data, sizeof(header));
  if (std::memcmp(header.magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption(path + ": bad edge-file magic");
  }
  if (header.version != kEdgeFormatV1 && header.version != kEdgeFormatV2) {
    return Status::Corruption(path + ": unsupported edge-file version " +
                              std::to_string(header.version));
  }
  if (header.block_size != file_block_size) {
    return Status::Corruption(path + ": header block size mismatch");
  }
  if (EdgePayloadBytesPerBlock(header.version, header.block_size) == 0) {
    return Status::InvalidArgument(
        path + ": block size " + std::to_string(header.block_size) +
        " holds no edge payload under version " +
        std::to_string(header.version));
  }
  if (header.version >= kEdgeFormatV2) {
    IOSCC_RETURN_IF_ERROR(
        VerifyEdgeBlockChecksum(path, 0, data, file_block_size));
  }
  info->block_size = header.block_size;
  info->version = header.version;
  info->node_count = header.node_count;
  info->edge_count = header.edge_count;
  return Status::OK();
}

// Probes the block size by reading the header prefix directly; edge files
// record their own block size, so scanners need no external configuration.
Status ProbeBlockSize(const std::string& path, size_t* block_size) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::IoError("open " + path + ": " + std::strerror(errno));
  }
  HeaderLayout header;
  size_t got = std::fread(&header, 1, sizeof(header), file);
  std::fclose(file);
  if (got != sizeof(header)) {
    return Status::Corruption(path + ": truncated header");
  }
  if (std::memcmp(header.magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption(path + ": bad edge-file magic");
  }
  if (header.block_size < sizeof(HeaderLayout) ||
      header.block_size % sizeof(Edge) != 0) {
    return Status::Corruption(path + ": implausible block size");
  }
  *block_size = header.block_size;
  return Status::OK();
}

uint32_t ResolveVersion(uint32_t requested) {
  return requested == 0 ? DefaultEdgeFileVersion() : requested;
}

}  // namespace

Status ReadEdgeFileInfo(const std::string& path, EdgeFileInfo* info) {
  size_t block_size = 0;
  IOSCC_RETURN_IF_ERROR(ProbeBlockSize(path, &block_size));
  std::unique_ptr<BlockFile> file;
  IOSCC_RETURN_IF_ERROR(
      BlockFile::Open(path, BlockFile::Mode::kRead, block_size,
                      /*stats=*/nullptr, &file));
  std::vector<char> block(block_size);
  IOSCC_RETURN_IF_ERROR(file->ReadBlock(0, block.data()));
  IOSCC_RETURN_IF_ERROR(DecodeHeader(path, block.data(), block_size, info));
  // Validate that the payload is consistent with the edge count.
  if (file->block_count() < info->TotalBlocks()) {
    return Status::Corruption(path + ": file shorter than header claims");
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// EdgeWriter

Status EdgeWriter::Create(const std::string& path, uint64_t node_count,
                          size_t block_size, IoStats* stats,
                          std::unique_ptr<EdgeWriter>* out,
                          uint32_t format_version) {
  if (block_size < sizeof(HeaderLayout) || block_size % sizeof(Edge) != 0) {
    return Status::InvalidArgument(
        "block size must be a multiple of 8 and hold the header");
  }
  const uint32_t version = ResolveVersion(format_version);
  if (version != kEdgeFormatV1 && version != kEdgeFormatV2) {
    return Status::InvalidArgument("unsupported edge-file version " +
                                   std::to_string(version));
  }
  // A block must carry at least one edge record after the version's
  // trailer; EdgePayloadBytesPerBlock returns 0 (not a wrapped size_t)
  // for degenerate sizes, and EdgesPerBlock()/TotalBlocks() divide by it.
  if (EdgePayloadBytesPerBlock(version, block_size) == 0) {
    return Status::InvalidArgument(
        "block size " + std::to_string(block_size) +
        " holds no edge payload under version " + std::to_string(version));
  }
  std::unique_ptr<EdgeWriter> writer(
      new EdgeWriter(path, node_count, block_size, version, stats));
  // Stage in <path>.tmp; the BlockFile is *known as* the final path to
  // the audit log and fault injector so schedules key on a stable name.
  IOSCC_RETURN_IF_ERROR(BlockFile::Open(writer->tmp_path_,
                                        BlockFile::Mode::kWrite, block_size,
                                        stats, &writer->file_,
                                        /*logical_path=*/path));
  // Reserve the header block; rewritten with real counts in Finish().
  std::vector<char> header;
  EdgeFileInfo info{node_count, 0, block_size, version};
  EncodeHeader(info, &header);
  Status st = writer->file_->AppendBlock(header.data());
  if (!st.ok()) {
    writer->Abandon();
    return st;
  }
  writer->buffer_.reserve(
      EdgePayloadBytesPerBlock(version, block_size) / sizeof(Edge));
  *out = std::move(writer);
  return Status::OK();
}

EdgeWriter::~EdgeWriter() {
  // An unfinished writer (error path or abandoned mid-stream) must not
  // leave its staging file behind.
  if (!finished_) Abandon();
}

void EdgeWriter::Abandon() {
  file_.reset();  // close before unlinking
  std::remove(tmp_path_.c_str());
  finished_ = true;
}

Status EdgeWriter::Add(Edge edge) {
  if (finished_) return Status::InvalidArgument("Add after Finish");
  buffer_.push_back(edge);
  ++edge_count_;
  const size_t edges_per_block =
      EdgePayloadBytesPerBlock(version_, block_size_) / sizeof(Edge);
  if (buffer_.size() == edges_per_block) return FlushBlock();
  return Status::OK();
}

Status EdgeWriter::FlushBlock() {
  std::vector<char> block(block_size_, 0);
  std::memcpy(block.data(), buffer_.data(), buffer_.size() * sizeof(Edge));
  buffer_.clear();
  if (version_ >= kEdgeFormatV2) {
    StampBlockChecksum(block.data(), block_size_);
  }
  Status st = file_->AppendBlock(block.data());
  if (!st.ok()) Abandon();
  return st;
}

Status EdgeWriter::Finish() {
  if (finished_) return Status::InvalidArgument("double Finish");
  if (!buffer_.empty()) {
    Status st = FlushBlock();
    if (!st.ok()) return st;  // FlushBlock already abandoned
  }
  finished_ = true;

  // Rewrite the header in place with the final counts. This is metadata
  // maintenance, not part of the algorithmic edge traffic, but we still
  // count it as one block write for honesty (WriteBlockAt records it).
  std::vector<char> header;
  EdgeFileInfo info{node_count_, edge_count_, block_size_, version_};
  EncodeHeader(info, &header);
  Status st = file_->WriteBlockAt(0, header.data());
  // Durability point: everything (tail, header) reaches disk before the
  // rename publishes the file under its final name.
  if (st.ok()) st = file_->SyncToDisk();
  if (!st.ok()) {
    finished_ = false;  // so Abandon() runs its cleanup
    Abandon();
    return st;
  }
  file_.reset();  // close

  if (std::rename(tmp_path_.c_str(), path_.c_str()) != 0) {
    Status rename_st = Status::IoError("rename " + tmp_path_ + " -> " +
                                       path_ + ": " + std::strerror(errno));
    std::remove(tmp_path_.c_str());
    return rename_st;
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// EdgeScanner

Status EdgeScanner::Open(const std::string& path, IoStats* stats,
                         std::unique_ptr<EdgeScanner>* out) {
  size_t block_size = 0;
  IOSCC_RETURN_IF_ERROR(ProbeBlockSize(path, &block_size));
  std::unique_ptr<BlockFile> file;
  IOSCC_RETURN_IF_ERROR(
      BlockFile::Open(path, BlockFile::Mode::kRead, block_size, stats,
                      &file));
  std::vector<char> header(block_size);
  IOSCC_RETURN_IF_ERROR(file->ReadBlock(0, header.data()));
  EdgeFileInfo info;
  IOSCC_RETURN_IF_ERROR(
      DecodeHeader(path, header.data(), block_size, &info));
  if (file->block_count() < info.TotalBlocks()) {
    return Status::Corruption(path + ": file shorter than header claims");
  }
  out->reset(new EdgeScanner(std::move(file), info));
  return Status::OK();
}

bool EdgeScanner::Next(Edge* edge) {
  if (!status_.ok()) return false;
  if (edges_emitted_ == info_.edge_count) return false;
  if (pos_in_block_ == valid_in_block_) {
    status_ = file_->ReadBlock(next_block_, block_.data());
    if (!status_.ok()) return false;
    if (info_.version >= kEdgeFormatV2) {
      status_ = VerifyEdgeBlockChecksum(file_->path(), next_block_,
                                        block_.data(), info_.block_size);
      if (!status_.ok()) return false;
    }
    ++next_block_;
    pos_in_block_ = 0;
    uint64_t remaining = info_.edge_count - edges_emitted_;
    valid_in_block_ = static_cast<size_t>(
        std::min<uint64_t>(remaining, info_.EdgesPerBlock()));
  }
  *edge = block_[pos_in_block_++];
  ++edges_emitted_;
  // Endpoint validation: algorithms size their per-node state from the
  // header's node count, so an out-of-range id would corrupt memory.
  if (edge->from >= info_.node_count || edge->to >= info_.node_count) {
    status_ = Status::Corruption(
        "edge (" + std::to_string(edge->from) + "," +
        std::to_string(edge->to) + ") exceeds node count " +
        std::to_string(info_.node_count));
    return false;
  }
  return true;
}

void EdgeScanner::Reset() {
  next_block_ = 1;
  pos_in_block_ = 0;
  valid_in_block_ = 0;
  edges_emitted_ = 0;
  status_ = Status::OK();
}

// ---------------------------------------------------------------------------
// Convenience helpers

Status WriteEdgeFile(const std::string& path, uint64_t node_count,
                     const std::vector<Edge>& edges, size_t block_size,
                     IoStats* stats, uint32_t format_version) {
  std::unique_ptr<EdgeWriter> writer;
  IOSCC_RETURN_IF_ERROR(EdgeWriter::Create(path, node_count, block_size,
                                           stats, &writer, format_version));
  for (const Edge& edge : edges) {
    IOSCC_RETURN_IF_ERROR(writer->Add(edge));
  }
  return writer->Finish();
}

Status ReadAllEdges(const std::string& path, std::vector<Edge>* edges,
                    uint64_t* node_count, IoStats* stats) {
  std::unique_ptr<EdgeScanner> scanner;
  IOSCC_RETURN_IF_ERROR(EdgeScanner::Open(path, stats, &scanner));
  edges->clear();
  edges->reserve(scanner->edge_count());
  Edge edge;
  while (scanner->Next(&edge)) edges->push_back(edge);
  if (node_count != nullptr) *node_count = scanner->node_count();
  return scanner->status();
}

Status ReverseEdgeFile(const std::string& input, const std::string& output,
                       IoStats* stats) {
  std::unique_ptr<EdgeScanner> scanner;
  IOSCC_RETURN_IF_ERROR(EdgeScanner::Open(input, stats, &scanner));
  std::unique_ptr<EdgeWriter> writer;
  IOSCC_RETURN_IF_ERROR(EdgeWriter::Create(output, scanner->node_count(),
                                           scanner->info().block_size, stats,
                                           &writer,
                                           scanner->info().version));
  Edge edge;
  while (scanner->Next(&edge)) {
    IOSCC_RETURN_IF_ERROR(writer->Add(Edge{edge.to, edge.from}));
  }
  IOSCC_RETURN_IF_ERROR(scanner->status());
  return writer->Finish();
}

}  // namespace ioscc
