#include "io/snapshot_file.h"

#include <cstdio>
#include <cstring>
#include <filesystem>

#include "io/block_file.h"
#include "util/blob.h"
#include "util/crc32c.h"

namespace ioscc {
namespace {

constexpr char kSnapshotMagic[8] = {'I', 'O', 'S', 'C',
                                    'C', 'K', 'P', 'T'};

void (*g_crash_hook)(SnapshotCrashPoint) = nullptr;

void CrashPoint(SnapshotCrashPoint point) {
  if (g_crash_hook != nullptr) g_crash_hook(point);
}

void EncodeManifest(BlobWriter* w, const SnapshotManifest& m) {
  w->PutString(m.algorithm);
  w->PutString(m.phase);
  w->PutU64(m.iteration);
  w->PutU64(m.seq);
  w->PutString(m.input_path);
  w->PutU64(m.input_size);
  w->PutU32(m.input_head_crc);
  w->PutString(m.build_sha);
  w->PutString(m.stream_path);
}

bool DecodeManifest(BlobReader* r, SnapshotManifest* m) {
  m->algorithm = r->GetString();
  m->phase = r->GetString();
  m->iteration = r->GetU64();
  m->seq = r->GetU64();
  m->input_path = r->GetString();
  m->input_size = r->GetU64();
  m->input_head_crc = r->GetU32();
  m->build_sha = r->GetString();
  m->stream_path = r->GetString();
  return r->ok();
}

}  // namespace

void SetSnapshotCrashHook(void (*hook)(SnapshotCrashPoint)) {
  g_crash_hook = hook;
}

Status FingerprintInputFile(const std::string& path, uint64_t* size,
                            uint32_t* head_crc) {
  std::error_code ec;
  const uint64_t file_size = std::filesystem::file_size(path, ec);
  if (ec) {
    return Status::IoError("fingerprint: cannot stat " + path + ": " +
                           ec.message());
  }
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IoError("fingerprint: cannot open " + path);
  }
  char head[kSnapshotBlockSize];
  const size_t got = std::fread(head, 1, sizeof(head), f);
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    return Status::IoError("fingerprint: cannot read " + path);
  }
  *size = file_size;
  *head_crc = crc32c::Value(head, got);
  return Status::OK();
}

Status WriteSnapshot(const std::string& path,
                     const SnapshotManifest& manifest,
                     const std::string& driver_state, IoStats* stats) {
  // Assemble the whole image in memory: header + manifest + state + CRC.
  BlobWriter body;
  {
    BlobWriter mw;
    EncodeManifest(&mw, manifest);
    body.PutString(mw.data());
  }
  body.PutString(driver_state);
  const std::string& payload = body.data();

  std::string image;
  image.reserve(payload.size() + kSnapshotBlockSize);
  image.append(kSnapshotMagic, sizeof(kSnapshotMagic));
  const uint32_t version = kSnapshotFormatVersion;
  image.append(reinterpret_cast<const char*>(&version), sizeof(version));
  const uint64_t payload_len = payload.size();
  image.append(reinterpret_cast<const char*>(&payload_len),
               sizeof(payload_len));
  image.append(payload);
  const uint32_t crc =
      crc32c::Mask(crc32c::Value(image.data(), image.size()));
  image.append(reinterpret_cast<const char*>(&crc), sizeof(crc));
  // Pad to whole blocks.
  const size_t padded =
      (image.size() + kSnapshotBlockSize - 1) / kSnapshotBlockSize *
      kSnapshotBlockSize;
  image.resize(padded, '\0');

  // Stage in <path>.tmp, known to the audit log and fault injector as
  // the final path (fault rules target "ckpt-" names).
  const std::string tmp_path = path + ".tmp";
  std::unique_ptr<BlockFile> file;
  Status st = BlockFile::Open(tmp_path, BlockFile::Mode::kWrite,
                              kSnapshotBlockSize, stats, &file,
                              /*logical_path=*/path);
  if (!st.ok()) return st;
  for (size_t off = 0; st.ok() && off < image.size();
       off += kSnapshotBlockSize) {
    st = file->AppendBlock(image.data() + off);
    if (off == 0 && image.size() > kSnapshotBlockSize) {
      CrashPoint(SnapshotCrashPoint::kMidTempWrite);
    }
  }
  if (st.ok()) st = file->SyncToDisk();
  file.reset();
  if (!st.ok()) {
    std::error_code ec;
    std::filesystem::remove(tmp_path, ec);  // best effort
    return st;
  }
  CrashPoint(SnapshotCrashPoint::kAfterTempWrite);
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    Status rename_st = Status::IoError("rename " + tmp_path + " -> " +
                                       path + " failed");
    std::error_code ec;
    std::filesystem::remove(tmp_path, ec);
    return rename_st;
  }
  CrashPoint(SnapshotCrashPoint::kAfterRename);
  return Status::OK();
}

Status ReadSnapshot(const std::string& path, SnapshotManifest* manifest,
                    std::string* driver_state, IoStats* stats) {
  std::unique_ptr<BlockFile> file;
  IOSCC_RETURN_IF_ERROR(BlockFile::Open(path, BlockFile::Mode::kRead,
                                        kSnapshotBlockSize, stats, &file));
  std::string image;
  image.resize(file->block_count() * kSnapshotBlockSize);
  for (uint64_t b = 0; b < file->block_count(); ++b) {
    IOSCC_RETURN_IF_ERROR(
        file->ReadBlock(b, image.data() + b * kSnapshotBlockSize));
  }
  const size_t kHeader = sizeof(kSnapshotMagic) + sizeof(uint32_t) +
                         sizeof(uint64_t);
  if (image.size() < kHeader + sizeof(uint32_t)) {
    return Status::Corruption("snapshot " + path + " is truncated");
  }
  if (std::memcmp(image.data(), kSnapshotMagic, sizeof(kSnapshotMagic)) !=
      0) {
    return Status::Corruption("snapshot " + path + " has a bad magic");
  }
  uint32_t version = 0;
  std::memcpy(&version, image.data() + sizeof(kSnapshotMagic),
              sizeof(version));
  if (version != kSnapshotFormatVersion) {
    return Status::Corruption(
        "snapshot " + path + " has unsupported format version " +
        std::to_string(version));
  }
  uint64_t payload_len = 0;
  std::memcpy(&payload_len,
              image.data() + sizeof(kSnapshotMagic) + sizeof(version),
              sizeof(payload_len));
  if (payload_len > image.size() - kHeader - sizeof(uint32_t)) {
    return Status::Corruption("snapshot " + path +
                              " declares an impossible payload length");
  }
  const size_t crc_offset = kHeader + static_cast<size_t>(payload_len);
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, image.data() + crc_offset, sizeof(stored_crc));
  const uint32_t actual = crc32c::Value(image.data(), crc_offset);
  if (crc32c::Unmask(stored_crc) != actual) {
    return Status::Corruption("snapshot " + path +
                              " failed its CRC32C check (torn or corrupt)");
  }
  BlobReader reader(image.data() + kHeader,
                    static_cast<size_t>(payload_len));
  const std::string manifest_bytes = reader.GetString();
  const std::string state_bytes = reader.GetString();
  if (!reader.Done()) {
    return Status::Corruption("snapshot " + path +
                              " payload does not parse");
  }
  if (manifest != nullptr) {
    BlobReader mr(manifest_bytes);
    if (!DecodeManifest(&mr, manifest)) {
      return Status::Corruption("snapshot " + path +
                                " manifest does not parse");
    }
  }
  if (driver_state != nullptr) *driver_state = state_bytes;
  return Status::OK();
}

}  // namespace ioscc
