#include "io/external_sort.h"

#include <algorithm>
#include <memory>
#include <queue>
#include <vector>

#include "io/edge_file.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ioscc {
namespace {

bool Less(EdgeOrder order, const Edge& a, const Edge& b) {
  if (order == EdgeOrder::kBySource) return a < b;
  return OrderEdgeByTarget()(a, b);
}

// One source in the k-way merge.
struct MergeSource {
  std::unique_ptr<EdgeScanner> scanner;
  Edge head;
  bool has_head = false;

  // Pulls the next edge of this run. EdgeScanner::Next returns false
  // both at clean end-of-run and on a failed scan; only the scanner's
  // sticky status tells the two apart. The merge must check it whenever
  // Next declines — treating every false as exhaustion would silently
  // truncate the merged output on a mid-run read failure
  // (tests/fault_env_test.cc MergeSurfacesRunReadFailure pins this down).
  Status Advance() {
    has_head = scanner->Next(&head);
    if (has_head) return Status::OK();
    return scanner->status();  // OK at EOF; the read error otherwise
  }
};

}  // namespace

Status SortEdgeFile(const std::string& input, const std::string& output,
                    const ExternalSortOptions& options, TempDir* scratch,
                    IoStats* stats) {
  if (options.memory_budget_bytes < sizeof(Edge)) {
    return Status::InvalidArgument("memory budget below one edge");
  }
  std::unique_ptr<EdgeScanner> scanner;
  IOSCC_RETURN_IF_ERROR(EdgeScanner::Open(input, stats, &scanner));
  const uint64_t node_count = scanner->node_count();
  const size_t block_size = scanner->info().block_size;
  const size_t run_capacity =
      std::max<size_t>(1, options.memory_budget_bytes / sizeof(Edge));

  // Stage 1: run formation. Run files (and the final output below) go
  // through EdgeWriter's write-temp-then-rename: an I/O failure or crash
  // mid-sort leaves only complete `.run` files plus scratch temp files
  // that EdgeWriter unlinks on the error path, never a torn file that a
  // resumed merge could read as valid.
  TraceSpan formation_span("sort.run_formation", stats);
  Histogram* run_length_hist =
      MetricsRegistry::Global().GetHistogram("sort.run_edges");
  std::vector<std::string> run_paths;
  std::vector<Edge> run;
  run.reserve(std::min<size_t>(run_capacity, 1 << 22));
  bool eof = false;
  while (!eof) {
    run.clear();
    Edge edge;
    while (run.size() < run_capacity && scanner->Next(&edge)) {
      run.push_back(edge);
    }
    IOSCC_RETURN_IF_ERROR(scanner->status());
    if (run.empty()) break;
    eof = run.size() < run_capacity;
    std::sort(run.begin(), run.end(), [&](const Edge& a, const Edge& b) {
      return Less(options.order, a, b);
    });
    run_length_hist->Record(run.size());
    std::string run_path = scratch->NewFilePath(".run");
    IOSCC_RETURN_IF_ERROR(
        WriteEdgeFile(run_path, node_count, run, block_size, stats));
    run_paths.push_back(std::move(run_path));
  }
  scanner.reset();
  formation_span.Close();

  // Stage 2: k-way merge. A single pass suffices for every workload we
  // generate (runs = m / budget is small); this keeps the code simple.
  TraceSpan merge_span("sort.merge", stats);
  MetricsRegistry::Global().GetCounter("sort.sorts")->Increment();
  MetricsRegistry::Global()
      .GetHistogram("sort.merge_fanin")
      ->Record(run_paths.size());
  std::unique_ptr<EdgeWriter> writer;
  IOSCC_RETURN_IF_ERROR(
      EdgeWriter::Create(output, node_count, block_size, stats, &writer));

  std::vector<MergeSource> sources(run_paths.size());
  for (size_t i = 0; i < run_paths.size(); ++i) {
    IOSCC_RETURN_IF_ERROR(
        EdgeScanner::Open(run_paths[i], stats, &sources[i].scanner));
    IOSCC_RETURN_IF_ERROR(sources[i].Advance());
  }

  auto greater = [&](size_t a, size_t b) {
    return Less(options.order, sources[b].head, sources[a].head);
  };
  std::priority_queue<size_t, std::vector<size_t>, decltype(greater)> heap(
      greater);
  for (size_t i = 0; i < sources.size(); ++i) {
    if (sources[i].has_head) heap.push(i);
  }

  Edge last{kInvalidNode, kInvalidNode};
  bool have_last = false;
  while (!heap.empty()) {
    size_t i = heap.top();
    heap.pop();
    Edge edge = sources[i].head;
    IOSCC_RETURN_IF_ERROR(sources[i].Advance());
    if (sources[i].has_head) heap.push(i);

    if (options.drop_self_loops && edge.from == edge.to) continue;
    if (options.dedup && have_last && edge == last) continue;
    last = edge;
    have_last = true;
    IOSCC_RETURN_IF_ERROR(writer->Add(edge));
  }
  return writer->Finish();
}

}  // namespace ioscc
