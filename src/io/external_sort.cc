#include "io/external_sort.h"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <optional>
#include <queue>
#include <vector>

#include "io/edge_file.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ioscc {
namespace {

bool Less(EdgeOrder order, const Edge& a, const Edge& b) {
  if (order == EdgeOrder::kBySource) return a < b;
  return OrderEdgeByTarget()(a, b);
}

// Below this many edges a chunk is not worth a task dispatch.
constexpr size_t kMinSortChunk = 4096;
// Diminishing returns past this many chunks (the merge cascade is
// serial), and it bounds task bookkeeping.
constexpr size_t kMaxSortChunks = 16;

// An in-memory sort of one run, split across pool workers: the
// constructor carves the run into chunks and submits one std::sort task
// per chunk; Finish() waits and merges the sorted chunks in place on
// the calling thread.
//
// The result is byte-identical to a single serial std::sort: both edge
// orders compare every field, so "equal" elements are bitwise identical
// and any permutation of them serializes the same.
//
// With a null pool the chunk sorts run inline in the constructor
// (TaskGroup's contract) — same code path, same answer, no overlap.
class PendingSort {
 public:
  PendingSort(ThreadPool* pool, std::vector<Edge>* run, EdgeOrder order)
      : group_(pool), run_(run), order_(order) {
    const size_t n = run->size();
    size_t chunks = 1;
    if (pool != nullptr && n >= 2 * kMinSortChunk) {
      chunks = std::min<size_t>(
          {static_cast<size_t>(pool->num_threads()), n / kMinSortChunk,
           kMaxSortChunks});
      chunks = std::max<size_t>(1, chunks);
    }
    bounds_.reserve(chunks + 1);
    for (size_t i = 0; i <= chunks; ++i) bounds_.push_back(n * i / chunks);
    for (size_t i = 0; i + 1 < bounds_.size(); ++i) {
      Edge* begin = run->data() + bounds_[i];
      Edge* end = run->data() + bounds_[i + 1];
      const EdgeOrder o = order;
      group_.Run([begin, end, o] {
        std::sort(begin, end,
                  [o](const Edge& a, const Edge& b) { return Less(o, a, b); });
      });
    }
  }

  // Waits out the chunk sorts, then runs the inplace_merge cascade.
  // Must be called before the run vector is touched again.
  void Finish() {
    group_.Wait();
    std::vector<size_t> b = bounds_;
    const EdgeOrder o = order_;
    auto less = [o](const Edge& x, const Edge& y) { return Less(o, x, y); };
    while (b.size() > 2) {
      std::vector<size_t> next;
      next.push_back(b.front());
      size_t i = 0;
      for (; i + 2 < b.size(); i += 2) {
        std::inplace_merge(run_->begin() + b[i], run_->begin() + b[i + 1],
                           run_->begin() + b[i + 2], less);
        next.push_back(b[i + 2]);
      }
      if (next.back() != b.back()) next.push_back(b.back());
      b = std::move(next);
    }
  }

 private:
  TaskGroup group_;  // its destructor waits, so tasks never outlive run_
  std::vector<Edge>* run_;
  EdgeOrder order_;
  std::vector<size_t> bounds_;
};

// One source in the k-way merge.
struct MergeSource {
  std::unique_ptr<EdgeScanner> scanner;
  Edge head;
  bool has_head = false;

  // Pulls the next edge of this run. EdgeScanner::Next returns false
  // both at clean end-of-run and on a failed scan; only the scanner's
  // sticky status tells the two apart. The merge must check it whenever
  // Next declines — treating every false as exhaustion would silently
  // truncate the merged output on a mid-run read failure
  // (tests/fault_env_test.cc MergeSurfacesRunReadFailure pins this down).
  Status Advance() {
    has_head = scanner->Next(&head);
    if (has_head) return Status::OK();
    return scanner->status();  // OK at EOF; the read error otherwise
  }
};

// Heap-merges `inputs` into a new edge file at `out_path`, applying the
// dedup/self-loop filters. The filters are idempotent, so applying them
// on every pass of a multi-pass merge is safe (and shrinks intermediate
// runs). Used for intermediate passes and the final output alike.
Status MergeOnePass(const std::vector<std::string>& inputs,
                    const std::string& out_path, uint64_t node_count,
                    size_t block_size, const ExternalSortOptions& options,
                    IoStats* stats) {
  MetricsRegistry::Global()
      .GetHistogram("sort.merge_fanin")
      ->Record(inputs.size());
  std::unique_ptr<EdgeWriter> writer;
  IOSCC_RETURN_IF_ERROR(
      EdgeWriter::Create(out_path, node_count, block_size, stats, &writer));

  std::vector<MergeSource> sources(inputs.size());
  for (size_t i = 0; i < inputs.size(); ++i) {
    IOSCC_RETURN_IF_ERROR(
        EdgeScanner::Open(inputs[i], stats, &sources[i].scanner));
    IOSCC_RETURN_IF_ERROR(sources[i].Advance());
  }

  auto greater = [&](size_t a, size_t b) {
    return Less(options.order, sources[b].head, sources[a].head);
  };
  std::priority_queue<size_t, std::vector<size_t>, decltype(greater)> heap(
      greater);
  for (size_t i = 0; i < sources.size(); ++i) {
    if (sources[i].has_head) heap.push(i);
  }

  Edge last{kInvalidNode, kInvalidNode};
  bool have_last = false;
  while (!heap.empty()) {
    size_t i = heap.top();
    heap.pop();
    Edge edge = sources[i].head;
    IOSCC_RETURN_IF_ERROR(sources[i].Advance());
    if (sources[i].has_head) heap.push(i);

    if (options.drop_self_loops && edge.from == edge.to) continue;
    if (options.dedup && have_last && edge == last) continue;
    last = edge;
    have_last = true;
    IOSCC_RETURN_IF_ERROR(writer->Add(edge));
  }
  return writer->Finish();
}

// Reads up to `capacity` edges into `out`; the caller checks
// scanner->status() to tell a short chunk from a failed one.
void ReadChunk(EdgeScanner* scanner, size_t capacity,
               std::vector<Edge>* out) {
  out->clear();
  Edge edge;
  while (out->size() < capacity && scanner->Next(&edge)) {
    out->push_back(edge);
  }
}

}  // namespace

Status SortEdgeFile(const std::string& input, const std::string& output,
                    const ExternalSortOptions& options, TempDir* scratch,
                    IoStats* stats) {
  if (options.memory_budget_bytes < sizeof(Edge)) {
    return Status::InvalidArgument("memory budget below one edge");
  }
  ThreadPool* pool =
      options.pool != nullptr ? options.pool : GetIoThreadPool();
  std::unique_ptr<EdgeScanner> scanner;
  IOSCC_RETURN_IF_ERROR(EdgeScanner::Open(input, stats, &scanner));
  const uint64_t node_count = scanner->node_count();
  const size_t block_size = scanner->info().block_size;
  // Charge the real working set against the budget, not just edge
  // payloads: the scanner and the run writer each hold a block buffer,
  // and formation keeps TWO chunk buffers alive (read-ahead of chunk
  // k+1 overlaps the sort of chunk k — the same schedule runs with or
  // without a pool so the audit log is identical at every thread count;
  // without one it simply doesn't overlap anything).
  const size_t fixed_bytes = 2 * block_size;
  const size_t payload_bytes =
      options.memory_budget_bytes > fixed_bytes
          ? options.memory_budget_bytes - fixed_bytes
          : 0;
  const size_t run_capacity =
      std::max<size_t>(1, payload_bytes / 2 / sizeof(Edge));

  // Stage 1: pipelined run formation. Run files (and the final output
  // below) go through EdgeWriter's write-temp-then-rename: an I/O
  // failure or crash mid-sort leaves only complete `.run` files plus
  // scratch temp files that EdgeWriter unlinks on the error path, never
  // a torn file that a resumed merge could read as valid.
  //
  // Schedule per iteration (chunk k): read chunk k+1, finish sorting
  // chunk k, start sorting chunk k+1, spill run k. Logical I/O thus
  // stays on this thread in the fixed program order R(c0) R(c1) W(r0)
  // R(c2) W(r1) ... regardless of worker timing.
  TraceSpan formation_span("sort.run_formation", stats);
  Histogram* run_length_hist =
      MetricsRegistry::Global().GetHistogram("sort.run_edges");
  std::vector<std::string> run_paths;
  std::vector<Edge> bufs[2];
  bufs[0].reserve(std::min<size_t>(run_capacity, 1 << 22));
  bufs[1].reserve(std::min<size_t>(run_capacity, 1 << 22));
  int cur = 0;
  ReadChunk(scanner.get(), run_capacity, &bufs[cur]);
  IOSCC_RETURN_IF_ERROR(scanner->status());
  std::optional<PendingSort> pending;
  if (!bufs[cur].empty()) {
    pending.emplace(pool, &bufs[cur], options.order);
  }
  while (pending.has_value()) {
    const bool maybe_more = bufs[cur].size() == run_capacity;
    const int nxt = 1 - cur;
    bufs[nxt].clear();
    if (maybe_more) ReadChunk(scanner.get(), run_capacity, &bufs[nxt]);
    Status read_status = scanner->status();
    // Wait for the chunk sorts even when the read failed: the tasks
    // hold pointers into bufs.
    pending->Finish();
    pending.reset();
    IOSCC_RETURN_IF_ERROR(read_status);
    if (!bufs[nxt].empty()) {
      pending.emplace(pool, &bufs[nxt], options.order);
    }
    run_length_hist->Record(bufs[cur].size());
    std::string run_path = scratch->NewFilePath(".run");
    IOSCC_RETURN_IF_ERROR(WriteEdgeFile(run_path, node_count, bufs[cur],
                                        block_size, stats));
    run_paths.push_back(std::move(run_path));
    cur = nxt;
  }
  scanner.reset();
  formation_span.Close();

  // Stage 2: k-way merge, in as many passes as the fan-in cap demands.
  // A merge pass holds one block buffer per open run plus the output
  // writer's block, so the budget affords M/B - 1 open runs; max_fanin
  // can cap it further (tests force multi-pass merges with it).
  TraceSpan merge_span("sort.merge", stats);
  MetricsRegistry::Global().GetCounter("sort.sorts")->Increment();
  size_t fanin = std::max<size_t>(
      2, options.memory_budget_bytes / block_size > 0
             ? options.memory_budget_bytes / block_size - 1
             : 0);
  if (options.max_fanin > 0) {
    fanin = std::min(fanin, std::max<size_t>(2, options.max_fanin));
  }

  uint64_t passes = 1;  // the final pass below always runs
  while (run_paths.size() > fanin) {
    ++passes;
    std::vector<std::string> next_runs;
    for (size_t start = 0; start < run_paths.size(); start += fanin) {
      const size_t end = std::min(run_paths.size(), start + fanin);
      if (end - start == 1) {
        // A lone straggler run passes through untouched.
        next_runs.push_back(run_paths[start]);
        continue;
      }
      std::vector<std::string> group(run_paths.begin() + start,
                                     run_paths.begin() + end);
      std::string merged_path = scratch->NewFilePath(".run");
      IOSCC_RETURN_IF_ERROR(MergeOnePass(group, merged_path, node_count,
                                         block_size, options, stats));
      for (const std::string& used : group) std::remove(used.c_str());
      next_runs.push_back(std::move(merged_path));
    }
    run_paths = std::move(next_runs);
  }
  MetricsRegistry::Global()
      .GetHistogram("sort.merge_passes")
      ->Record(passes);
  return MergeOnePass(run_paths, output, node_count, block_size, options,
                      stats);
}

}  // namespace ioscc
