#include "io/block_file.h"

#include <sys/stat.h>

#include <cerrno>
#include <cstring>

#include "obs/metrics.h"
#include "util/timer.h"

namespace ioscc {
namespace {

// Latency histograms are sampled only while metrics are enabled (two clock
// reads per block otherwise tax the hot scan path for nothing). The
// handles are cached: registry lookups happen once per process.
Histogram* ReadLatencyHistogram() {
  static Histogram* h =
      MetricsRegistry::Global().GetHistogram("io.block_read_us");
  return h;
}

Histogram* WriteLatencyHistogram() {
  static Histogram* h =
      MetricsRegistry::Global().GetHistogram("io.block_write_us");
  return h;
}

}  // namespace

uint32_t BlockAccessLog::RegisterFile(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t id = 0; id < data_.files.size(); ++id) {
    if (data_.files[id] == path) return static_cast<uint32_t>(id);
  }
  data_.files.push_back(path);
  return static_cast<uint32_t>(data_.files.size() - 1);
}

void BlockAccessLog::Record(uint32_t file_id, uint64_t block,
                            bool is_write) {
  std::lock_guard<std::mutex> lock(mu_);
  BlockAccessRecord access;
  access.file_id = file_id;
  access.block = block;
  access.is_write = is_write;
  access.seq = data_.accesses.size();
  data_.accesses.push_back(access);
}

void BlockAccessLog::AddBudget(const AuditBudgetRecord& budget) {
  std::lock_guard<std::mutex> lock(mu_);
  data_.budgets.push_back(budget);
}

uint64_t BlockAccessLog::access_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return data_.accesses.size();
}

AuditLogData BlockAccessLog::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return data_;
}

Status BlockAccessLog::WriteTo(const std::string& path) const {
  return WriteAuditLog(Snapshot(), path);
}

Status BlockFile::Open(const std::string& path, Mode mode, size_t block_size,
                       IoStats* stats, std::unique_ptr<BlockFile>* out) {
  if (block_size == 0) {
    return Status::InvalidArgument("block_size must be positive");
  }
  const char* fmode = mode == Mode::kRead ? "rb" : "wb";
  std::FILE* file = std::fopen(path.c_str(), fmode);
  if (file == nullptr) {
    return Status::IoError("open " + path + ": " + std::strerror(errno));
  }

  uint64_t block_count = 0;
  if (mode == Mode::kRead) {
    struct stat st;
    if (::stat(path.c_str(), &st) != 0) {
      std::fclose(file);
      return Status::IoError("stat " + path + ": " + std::strerror(errno));
    }
    if (st.st_size % static_cast<off_t>(block_size) != 0) {
      std::fclose(file);
      return Status::Corruption(path + ": size " +
                                std::to_string(st.st_size) +
                                " is not a multiple of the block size");
    }
    block_count = static_cast<uint64_t>(st.st_size) / block_size;
  }

  // Capture the audit sink once per open (the TraceSpan pattern): when no
  // log is installed the per-access hook below is a plain null check.
  BlockAccessLog* audit = GetBlockAccessLog();
  const uint32_t audit_file_id =
      audit != nullptr ? audit->RegisterFile(path) : 0;
  out->reset(new BlockFile(path, file, mode, block_size, block_count, stats,
                           audit, audit_file_id));
  return Status::OK();
}

BlockFile::~BlockFile() {
  if (file_ != nullptr) std::fclose(file_);
}

Status BlockFile::AppendBlock(const void* data) {
  if (mode_ != Mode::kWrite) {
    return Status::InvalidArgument("AppendBlock on read-only file");
  }
  if (MetricsEnabled()) {
    Timer timer;
    if (std::fwrite(data, 1, block_size_, file_) != block_size_) {
      return Status::IoError("short write to " + path_);
    }
    WriteLatencyHistogram()->Record(
        static_cast<uint64_t>(timer.ElapsedSeconds() * 1e6));
  } else if (std::fwrite(data, 1, block_size_, file_) != block_size_) {
    return Status::IoError("short write to " + path_);
  }
  ++block_count_;
  if (audit_ != nullptr) {
    audit_->Record(audit_file_id_, block_count_ - 1, /*is_write=*/true);
  }
  if (stats_ != nullptr) {
    ++stats_->blocks_written;
    stats_->bytes_written += block_size_;
  }
  return Status::OK();
}

Status BlockFile::ReadBlock(uint64_t index, void* data) {
  if (mode_ != Mode::kRead) {
    return Status::InvalidArgument("ReadBlock on write-only file");
  }
  if (index >= block_count_) {
    return Status::InvalidArgument("block index out of range in " + path_);
  }
  // Avoid a redundant fseek for the common sequential-scan pattern.
  if (index != read_cursor_) {
    if (std::fseek(file_,
                   static_cast<long>(index * block_size_), SEEK_SET) != 0) {
      return Status::IoError("seek in " + path_);
    }
  }
  if (MetricsEnabled()) {
    Timer timer;
    if (std::fread(data, 1, block_size_, file_) != block_size_) {
      return Status::IoError("short read from " + path_);
    }
    ReadLatencyHistogram()->Record(
        static_cast<uint64_t>(timer.ElapsedSeconds() * 1e6));
  } else if (std::fread(data, 1, block_size_, file_) != block_size_) {
    return Status::IoError("short read from " + path_);
  }
  read_cursor_ = index + 1;
  if (audit_ != nullptr) {
    audit_->Record(audit_file_id_, index, /*is_write=*/false);
  }
  if (stats_ != nullptr) {
    ++stats_->blocks_read;
    stats_->bytes_read += block_size_;
  }
  return Status::OK();
}

Status BlockFile::Flush() {
  if (mode_ != Mode::kWrite) return Status::OK();
  if (std::fflush(file_) != 0) {
    return Status::IoError("flush " + path_);
  }
  return Status::OK();
}

}  // namespace ioscc
