#include "io/block_file.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "io/io_counters.h"
#include "obs/metrics.h"
#include "util/timer.h"

namespace ioscc {
namespace {

// Latency histograms are sampled only while metrics are enabled (two clock
// reads per block otherwise tax the hot scan path for nothing). The
// handles are cached: registry lookups happen once per process.
Histogram* ReadLatencyHistogram() {
  static Histogram* h =
      MetricsRegistry::Global().GetHistogram("io.block_read_us");
  return h;
}

Histogram* WriteLatencyHistogram() {
  static Histogram* h =
      MetricsRegistry::Global().GetHistogram("io.block_write_us");
  return h;
}

// Pool activity as seen from the I/O layer (the pool itself lives in
// util and cannot depend on obs): filler tasks kicked, and the pool
// queue depth at each kick.
Counter* PoolTaskCounter() {
  static Counter* c =
      MetricsRegistry::Global().GetCounter("pool.prefetch_tasks");
  return c;
}

Histogram* PoolQueueDepthHistogram() {
  static Histogram* h =
      MetricsRegistry::Global().GetHistogram("pool.queue_depth");
  return h;
}

bool ErrnoIsRetryable(int err) {
  return err == EINTR || err == EAGAIN || err == EIO;
}

std::string ErrnoText(int err) { return std::strerror(err); }

// Honors the backoff schedule between attempt `attempt` - 1 and `attempt`
// (1-based retries).
void Backoff(const IoRetryPolicy& policy, int attempt) {
  if (policy.backoff_initial_us <= 0) return;
  const int64_t us =
      static_cast<int64_t>(policy.backoff_initial_us) << (attempt - 1);
  std::this_thread::sleep_for(std::chrono::microseconds(us));
}

}  // namespace

uint32_t BlockAccessLog::RegisterFile(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t id = 0; id < data_.files.size(); ++id) {
    if (data_.files[id] == path) return static_cast<uint32_t>(id);
  }
  data_.files.push_back(path);
  return static_cast<uint32_t>(data_.files.size() - 1);
}

void BlockAccessLog::Record(uint32_t file_id, uint64_t block,
                            bool is_write) {
  std::lock_guard<std::mutex> lock(mu_);
  BlockAccessRecord access;
  access.file_id = file_id;
  access.block = block;
  access.is_write = is_write;
  access.seq = data_.accesses.size();
  data_.accesses.push_back(access);
}

void BlockAccessLog::AddBudget(const AuditBudgetRecord& budget) {
  std::lock_guard<std::mutex> lock(mu_);
  data_.budgets.push_back(budget);
}

uint64_t BlockAccessLog::access_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return data_.accesses.size();
}

AuditLogData BlockAccessLog::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return data_;
}

Status BlockAccessLog::WriteTo(const std::string& path) const {
  return WriteAuditLog(Snapshot(), path);
}

BlockFile::BlockFile(std::string path, std::string logical_path,
                     std::FILE* file, int fd, Mode mode, size_t block_size,
                     uint64_t block_count, IoStats* stats,
                     BlockAccessLog* audit, uint32_t audit_file_id,
                     FaultInjector* fault, BufferManager* cache,
                     uint32_t cache_file_id, ThreadPool* pool,
                     int prefetch_depth)
    : path_(std::move(path)),
      logical_path_(std::move(logical_path)),
      file_(file),
      fd_(fd),
      mode_(mode),
      block_size_(block_size),
      block_count_(block_count),
      stats_(stats),
      audit_(audit),
      audit_file_id_(audit_file_id),
      fault_(fault),
      cache_(cache),
      cache_file_id_(cache_file_id),
      pool_(pool),
      prefetch_depth_(prefetch_depth) {
  if (fd_ >= 0) {
    // O_DIRECT transfers need sector-aligned memory; 4096 covers every
    // common logical sector size. Open() only selects the direct
    // backend when the allocation succeeds, so this cannot be null on
    // the transfer paths.
    void* buf = nullptr;
    if (::posix_memalign(&buf, 4096, block_size_) == 0) {
      aligned_buf_ = static_cast<char*>(buf);
    }
  }
}

Status BlockFile::Open(const std::string& path, Mode mode, size_t block_size,
                       IoStats* stats, std::unique_ptr<BlockFile>* out,
                       const std::string& logical_path, IoBackend backend) {
  if (block_size == 0) {
    return Status::InvalidArgument("block_size must be positive");
  }
  if (backend == IoBackend::kDefault) backend = GetDefaultIoBackend();

  // Direct backend: O_DIRECT wants sector-aligned lengths and offsets,
  // so require a 4096-multiple block size; anything else (including the
  // filesystem refusing O_DIRECT outright, e.g. tmpfs) silently falls
  // back to the buffered path — the backend changes which layer absorbs
  // re-reads, never what the file contains.
  int fd = -1;
#ifdef O_DIRECT
  if (backend == IoBackend::kDirect && block_size % 4096 == 0) {
    const int flags = mode == Mode::kRead
                          ? (O_RDONLY | O_DIRECT)
                          : (O_WRONLY | O_CREAT | O_TRUNC | O_DIRECT);
    fd = ::open(path.c_str(), flags, 0644);
  }
#endif

  std::FILE* file = nullptr;
  uint64_t block_count = 0;
  if (fd >= 0) {
    if (mode == Mode::kRead) {
      struct stat st;
      if (::fstat(fd, &st) != 0) {
        const int err = errno;
        ::close(fd);
        return Status::IoError("stat " + path + ": " + ErrnoText(err));
      }
      if (st.st_size % static_cast<off_t>(block_size) != 0) {
        ::close(fd);
        return Status::Corruption(path + ": size " +
                                  std::to_string(st.st_size) +
                                  " is not a multiple of the block size");
      }
      block_count = static_cast<uint64_t>(st.st_size) / block_size;
    }
  } else {
    const char* fmode = mode == Mode::kRead ? "rb" : "wb";
    file = std::fopen(path.c_str(), fmode);
    if (file == nullptr) {
      return Status::IoError("open " + path + ": " + ErrnoText(errno));
    }
    if (mode == Mode::kRead) {
      struct stat st;
      if (::stat(path.c_str(), &st) != 0) {
        const int err = errno;
        std::fclose(file);
        return Status::IoError("stat " + path + ": " + ErrnoText(err));
      }
      if (st.st_size % static_cast<off_t>(block_size) != 0) {
        std::fclose(file);
        return Status::Corruption(path + ": size " +
                                  std::to_string(st.st_size) +
                                  " is not a multiple of the block size");
      }
      block_count = static_cast<uint64_t>(st.st_size) / block_size;
    }
  }

  const std::string& known_as = logical_path.empty() ? path : logical_path;
  // Capture the opt-in seams once per open (the TraceSpan pattern): when
  // neither is installed the per-access hooks below are plain null checks.
  BlockAccessLog* audit = GetBlockAccessLog();
  const uint32_t audit_file_id =
      audit != nullptr ? audit->RegisterFile(known_as) : 0;
  FaultInjector* fault = GetFaultInjector();
  BufferManager* cache = GetBufferManager();
  const uint32_t cache_file_id =
      cache != nullptr ? cache->RegisterFile(known_as) : 0;
  ThreadPool* pool = GetIoThreadPool();
  // Resolve the effective read-ahead mode once: an async depth without a
  // pool to service it degrades to the synchronous double buffer, so
  // `prefetch_depth_ >= 2` always implies a live pool.
  int depth = cache != nullptr ? cache->prefetch_depth() : 0;
  if (depth >= 2 && pool == nullptr) depth = 1;
  if (mode != Mode::kRead) depth = 0;  // writers never read ahead
  if (stats != nullptr && mode == Mode::kRead && cache != nullptr) {
    stats->prefetch_depth_used = std::max<uint64_t>(
        stats->prefetch_depth_used, static_cast<uint64_t>(depth));
  }
  if (mode == Mode::kRead && cache != nullptr) {
    IoCounters().NotePrefetchDepth(static_cast<uint64_t>(depth));
  }
  out->reset(new BlockFile(path, known_as, file, fd, mode, block_size,
                           block_count, stats, audit, audit_file_id, fault,
                           cache, cache_file_id, pool, depth));
  if (fd >= 0 && (*out)->aligned_buf_ == nullptr) {
    // The aligned bounce buffer failed to allocate; reopen buffered.
    out->reset();
    ::close(fd);
    return Open(path, mode, block_size, stats, out, logical_path,
                IoBackend::kBuffered);
  }
  return Status::OK();
}

BlockFile::~BlockFile() {
  ShutdownPrefetcher();
  if (file_ != nullptr) std::fclose(file_);
  if (fd_ >= 0) ::close(fd_);
  std::free(aligned_buf_);
}

size_t BlockFile::RawRead(uint64_t index, void* data, int* err) {
  *err = 0;
  if (fd_ >= 0) {
    const off_t off = static_cast<off_t>(index * block_size_);
    const ssize_t got = ::pread(fd_, aligned_buf_, block_size_, off);
    if (got < 0) {
      *err = errno;
      return 0;
    }
    std::memcpy(data, aligned_buf_, static_cast<size_t>(got));
    return static_cast<size_t>(got);
  }
  const size_t got = std::fread(data, 1, block_size_, file_);
  if (got != block_size_) {
    *err = std::ferror(file_) ? errno : 0;
    std::clearerr(file_);
  }
  return got;
}

size_t BlockFile::RawWrite(uint64_t index, const void* data, size_t len,
                           int* err) {
  *err = 0;
  if (fd_ >= 0) {
    // O_DIRECT can only land whole sectors, so an injected short/torn
    // prefix rounds down to the 512-byte grain.
    const size_t n = len - len % 512;
    if (n == 0) return 0;
    std::memcpy(aligned_buf_, data, n);
    const off_t off = static_cast<off_t>(index * block_size_);
    const ssize_t wrote = ::pwrite(fd_, aligned_buf_, n, off);
    if (wrote < 0) {
      *err = errno;
      return 0;
    }
    return static_cast<size_t>(wrote);
  }
  const size_t wrote =
      std::fwrite(static_cast<const char*>(data), 1, len, file_);
  if (wrote != len) {
    *err = std::ferror(file_) ? errno : 0;
    std::clearerr(file_);
  }
  return wrote;
}

Status BlockFile::ReadAttempt(uint64_t index, void* data, bool need_seek,
                              bool* retryable) {
  *retryable = false;
  if (need_seek && fd_ < 0) {
    if (std::fseek(file_, static_cast<long>(index * block_size_),
                   SEEK_SET) != 0) {
      *retryable = ErrnoIsRetryable(errno);
      return Status::IoError("seek in " + path_ + ": " + ErrnoText(errno));
    }
  }

  FaultAction action;
  if (fault_ != nullptr) {
    action = fault_->OnAccess(logical_path_, index, FaultOp::kRead,
                              block_size_);
  }
  switch (action.kind) {
    case FaultKind::kEintr:
      *retryable = true;
      return Status::IoError("read block " + std::to_string(index) +
                             " of " + path_ + ": " + ErrnoText(EINTR) +
                             " (injected)");
    case FaultKind::kTransientEio:
    case FaultKind::kPermanentEio:
      *retryable = true;
      return Status::IoError("read block " + std::to_string(index) +
                             " of " + path_ + ": " + ErrnoText(EIO) +
                             " (injected)");
    case FaultKind::kShortRead: {
      // The transfer happens, but the kernel reports fewer bytes.
      int ignored = 0;
      (void)RawRead(index, data, &ignored);
      *retryable = true;
      return Status::IoError(
          "short read from " + path_ + ": got " +
          std::to_string(action.param) + " of " +
          std::to_string(block_size_) + " bytes (injected)");
    }
    default:
      break;
  }

  int err = 0;
  const size_t got = RawRead(index, data, &err);
  if (got != block_size_) {
    *retryable = err == 0 || ErrnoIsRetryable(err);
    std::string detail =
        err != 0 ? ErrnoText(err)
                 : "got " + std::to_string(got) + " of " +
                       std::to_string(block_size_) + " bytes";
    return Status::IoError("short read from " + path_ + ": " + detail);
  }
  if (action.kind == FaultKind::kBitFlip) {
    const uint64_t bit = action.param % (block_size_ * 8);
    static_cast<unsigned char*>(data)[bit / 8] ^=
        static_cast<unsigned char>(1u << (bit % 8));
  }
  return Status::OK();
}

Status BlockFile::RetryRead(uint64_t index, void* data, Status first,
                            bool retryable) {
  const IoRetryPolicy policy = GetIoRetryPolicy();
  Status st = std::move(first);
  for (int attempt = 1; retryable && attempt < policy.max_attempts;
       ++attempt) {
    Backoff(policy, attempt);
    if (stats_ != nullptr) ++stats_->read_retries;
    st = ReadAttempt(index, data, /*need_seek=*/true, &retryable);
    if (st.ok()) return st;
  }
  if (!retryable) return st;  // permanent failure class: report as-is
  return Status::IoError(st.message() + " (gave up after " +
                         std::to_string(policy.max_attempts) +
                         " attempts)");
}

Status BlockFile::DemandRead(uint64_t index, void* data) {
  const bool sample_latency = MetricsEnabled();
  Timer timer;
  bool retryable = false;
  Status st;
  {
    std::lock_guard<std::mutex> lock(file_mu_);
    // Avoid a redundant fseek for the common sequential-scan pattern.
    st = ReadAttempt(index, data, /*need_seek=*/index != read_cursor_,
                     &retryable);
    if (!st.ok()) {
      st = RetryRead(index, data, std::move(st), retryable);
    }
    read_cursor_ = st.ok() ? index + 1 : kNoBlock;
  }
  const uint64_t micros =
      static_cast<uint64_t>(timer.ElapsedSeconds() * 1e6);
  if (stats_ != nullptr) stats_->read_stall_micros += micros;
  IoCounters().BumpReadStall(micros);
  if (!st.ok()) return st;
  if (sample_latency) ReadLatencyHistogram()->Record(micros);
  if (stats_ != nullptr) ++stats_->physical_blocks_read;
  IoCounters().BumpPhysicalRead();
  return Status::OK();
}

Status BlockFile::LoadForRead(uint64_t index, void* data,
                              bool* disk_was_touched) {
  if (async_prefetch()) {
    PrefetchSlot slot;
    if (TakeSlot(index, &slot)) {
      if (slot.ok_read) {
        // Async read-ahead hit: a miss whose physical read was already
        // paid by the filler. Every counter moves here, on the
        // consuming thread, so the ledger and the cache's hit/miss
        // sequence stay in lockstep with the simulator.
        std::memcpy(data, slot.data.data(), block_size_);
        cache_->CountPrefetch();
        cache_->CountPrefetchHit();
        if (stats_ != nullptr) {
          ++stats_->physical_blocks_read;
          ++stats_->prefetched_blocks;
          ++stats_->prefetch_hits;
        }
        IoCounters().BumpPhysicalRead();
        IoCounters().BumpPrefetched();
        IoCounters().BumpPrefetchHit();
        *disk_was_touched = true;
        return Status::OK();
      }
      if (!slot.status.ok()) {
        // Deferred fault: the filler's failed attempt stands in for this
        // logical read's first attempt. Retries happen here and count
        // into read_retries, so the surfaced Status and the retry ledger
        // are identical to the unthreaded demand path.
        Timer timer;
        Status st;
        {
          std::lock_guard<std::mutex> lock(file_mu_);
          st = RetryRead(index, data, std::move(slot.status),
                         slot.retryable);
          read_cursor_ = st.ok() ? index + 1 : kNoBlock;
        }
        const uint64_t stalled =
            static_cast<uint64_t>(timer.ElapsedSeconds() * 1e6);
        if (stats_ != nullptr) stats_->read_stall_micros += stalled;
        IoCounters().BumpReadStall(stalled);
        if (!st.ok()) return st;
        if (stats_ != nullptr) ++stats_->physical_blocks_read;
        IoCounters().BumpPhysicalRead();
        *disk_was_touched = true;
        return Status::OK();
      }
      // Otherwise the filler skipped the block (cache-resident when
      // probed, evicted since): fall through to a demand read.
    }
  } else if (prefetch_depth_ == 1 && prefetch_block_ == index) {
    // Synchronous read-ahead hit: a miss whose physical read was
    // already paid by the prefetcher (which also booked it).
    std::memcpy(data, prefetch_buffer_.data(), block_size_);
    prefetch_block_ = kNoBlock;
    cache_->CountPrefetchHit();
    if (stats_ != nullptr) ++stats_->prefetch_hits;
    IoCounters().BumpPrefetchHit();
    *disk_was_touched = true;
    return Status::OK();
  }
  IOSCC_RETURN_IF_ERROR(DemandRead(index, data));
  *disk_was_touched = true;
  return Status::OK();
}

Status BlockFile::ReadBlock(uint64_t index, void* data) {
  if (mode_ != Mode::kRead) {
    return Status::InvalidArgument("ReadBlock on write-only file");
  }
  if (index >= block_count_) {
    return Status::InvalidArgument("block index out of range in " + path_);
  }
  const bool sequential = index == 0 || index == last_logical_read_ + 1;
  bool disk_was_touched = false;  // demand read or prefetch consume

  if (cache_ == nullptr) {
    // Manager-less path: the demand read, the audit record, and the
    // logical counters, exactly as before the buffer manager existed.
    IOSCC_RETURN_IF_ERROR(DemandRead(index, data));
    last_logical_read_ = index;
    if (audit_ != nullptr) {
      audit_->Record(audit_file_id_, index, /*is_write=*/false);
    }
    if (stats_ != nullptr) {
      ++stats_->blocks_read;
      stats_->bytes_read += block_size_;
    }
    IoCounters().BumpRead(block_size_);
    return Status::OK();
  }

  // Single-flight logical read: the manager either serves a hit (and
  // writes the audit record atomically with the cache transition) or
  // grants this thread the block's load token. Concurrent readers of
  // the same cold block wait for the token holder and then hit — one
  // miss, one physical read, however many threads demanded it.
  if (cache_->BeginRead(cache_file_id_, index, data, block_size_, audit_,
                        audit_file_id_) == BufferManager::ReadOutcome::kHit) {
    if (stats_ != nullptr) ++stats_->cache_hits;
    IoCounters().BumpCacheHit();
  } else {
    Status st = LoadForRead(index, data, &disk_was_touched);
    if (!st.ok()) {
      cache_->AbortLoad(cache_file_id_, index);
      return st;
    }
    cache_->FinishLoad(cache_file_id_, index, data, block_size_, audit_,
                       audit_file_id_);
  }
  // Read-ahead: while the head sits just past a sequentially-demanded
  // block, pull the next one (synchronous double buffer) or top the
  // async window back up to prefetch_depth_ blocks. Chains across
  // prefetch consumes so a steady scan stays ahead; skipped on cache
  // hits (the disk was never involved).
  if (sequential && disk_was_touched) {
    if (async_prefetch()) {
      ScheduleAsyncPrefetch(index);
    } else if (prefetch_depth_ == 1) {
      Prefetch(index + 1);
    }
  }
  last_logical_read_ = index;
  if (stats_ != nullptr) {
    ++stats_->blocks_read;
    stats_->bytes_read += block_size_;
  }
  IoCounters().BumpRead(block_size_);
  return Status::OK();
}

void BlockFile::Prefetch(uint64_t index) {
  if (index >= block_count_) return;
  if (prefetch_block_ == index) return;
  // Non-promoting probe: a block the LRU would serve anyway must not be
  // re-read (that would inflate physical I/O) nor promoted (that would
  // desync the LRU order from the simulator's).
  if (cache_->Contains(cache_file_id_, index)) return;
  if (prefetch_buffer_.size() != block_size_) {
    prefetch_buffer_.resize(block_size_);
  }
  bool retryable = false;
  Timer timer;
  Status st = ReadAttempt(index, prefetch_buffer_.data(),
                          /*need_seek=*/index != read_cursor_, &retryable);
  // The synchronous read-ahead blocks the consumer just like a demand
  // read — it only moves the wait earlier — so it counts as stall. The
  // async pipeline exists to take exactly this term off the clock.
  {
    const uint64_t stalled =
        static_cast<uint64_t>(timer.ElapsedSeconds() * 1e6);
    if (stats_ != nullptr) stats_->read_stall_micros += stalled;
    IoCounters().BumpReadStall(stalled);
  }
  if (!st.ok()) {
    // Opportunistic read: drop it without retrying. If the block is
    // really wanted later, the demand read retries and reports.
    prefetch_block_ = kNoBlock;
    read_cursor_ = kNoBlock;
    return;
  }
  read_cursor_ = index + 1;
  prefetch_block_ = index;
  cache_->CountPrefetch();
  if (stats_ != nullptr) {
    ++stats_->physical_blocks_read;
    ++stats_->prefetched_blocks;
  }
  IoCounters().BumpPhysicalRead();
  IoCounters().BumpPrefetched();
}

void BlockFile::ScheduleAsyncPrefetch(uint64_t after) {
  const uint64_t first = after + 1;
  if (first >= block_count_) return;  // clean EOF: the window drains
  const uint64_t last = std::min<uint64_t>(
      block_count_ - 1, after + static_cast<uint64_t>(prefetch_depth_));
  bool kick = false;
  {
    std::lock_guard<std::mutex> lock(pf_mu_);
    if (pf_shutdown_) return;
    uint64_t next = first;
    if (!pf_queue_.empty()) {
      const uint64_t window_first = pf_queue_.front().block;
      const uint64_t window_last = pf_queue_.back().block;
      if (first < window_first || first > window_last + 1) {
        // The live window is disjoint from the new position (a Reset or
        // a jump). Leave it: the consume path drains it — or reaches it,
        // if the scan is walking back up to where the window starts.
        return;
      }
      next = window_last + 1;
    }
    if (next > last) return;  // window already covers the target depth
    for (uint64_t b = next; b <= last; ++b) {
      PrefetchSlot slot;
      slot.block = b;
      pf_queue_.push_back(std::move(slot));
    }
    if (!pf_filler_active_) {
      pf_filler_active_ = true;
      kick = true;
    }
  }
  if (!kick) return;
  PoolTaskCounter()->Increment();
  if (MetricsEnabled()) {
    PoolQueueDepthHistogram()->Record(pool_->queue_depth());
  }
  if (!pool_->Submit([this] { FillerLoop(); })) {
    // The pool is already shutting down — a broken uninstall-before-
    // destroy ordering. Degrade gracefully: mark everything unfilled as
    // ready-and-empty so no consumer waits on a fill that never comes.
    std::lock_guard<std::mutex> lock(pf_mu_);
    pf_filler_active_ = false;
    for (PrefetchSlot& slot : pf_queue_) slot.ready = true;
    pf_cv_.notify_all();
  }
}

void BlockFile::FillerLoop() {
  for (;;) {
    PrefetchSlot* slot = nullptr;
    {
      std::lock_guard<std::mutex> lock(pf_mu_);
      if (!pf_shutdown_) {
        // Fills proceed strictly front to back, so unfilled slots are a
        // suffix and every slot ahead of this one is already ready.
        for (PrefetchSlot& s : pf_queue_) {
          if (!s.ready) {
            slot = &s;
            break;
          }
        }
      }
      if (slot == nullptr) {
        pf_filler_active_ = false;
        pf_cv_.notify_all();  // ShutdownPrefetcher may be waiting
        return;
      }
    }
    // Fill outside pf_mu_. The pointer stays valid: the consumer never
    // pops a slot that is not ready, and deque ops at the ends do not
    // move other elements.
    if (cache_->Contains(cache_file_id_, slot->block)) {
      // The LRU would serve it; reading it again would inflate physical
      // I/O. The consumer falls back to a demand read in the (rare)
      // event the block is evicted before it is wanted.
      slot->cache_resident = true;
    } else {
      slot->data.resize(block_size_);
      bool retryable = false;
      std::lock_guard<std::mutex> lock(file_mu_);
      Status st = ReadAttempt(slot->block, slot->data.data(),
                              /*need_seek=*/slot->block != read_cursor_,
                              &retryable);
      read_cursor_ = st.ok() ? slot->block + 1 : kNoBlock;
      // A failure is carried to the consuming logical read *unretried*
      // and unaccounted: it stands in for that read's first attempt, so
      // Status and retry counts match the unthreaded path exactly.
      slot->ok_read = st.ok();
      slot->status = std::move(st);
      slot->retryable = retryable;
    }
    {
      std::lock_guard<std::mutex> lock(pf_mu_);
      slot->ready = true;
    }
    pf_cv_.notify_all();
  }
}

void BlockFile::WaitForFrontReady(std::unique_lock<std::mutex>* lock) {
  Timer timer;
  pf_cv_.wait(*lock, [this] { return pf_queue_.front().ready; });
  // Time spent waiting on an in-flight fill is the async pipeline's
  // residual stall: the consumer outran the filler.
  const uint64_t stalled =
      static_cast<uint64_t>(timer.ElapsedSeconds() * 1e6);
  if (stats_ != nullptr) stats_->read_stall_micros += stalled;
  IoCounters().BumpReadStall(stalled);
}

bool BlockFile::TakeSlot(uint64_t index, PrefetchSlot* out) {
  std::unique_lock<std::mutex> lock(pf_mu_);
  if (pf_queue_.empty() || index < pf_queue_.front().block) {
    // Window empty or strictly ahead of the new position. A rewound
    // scan (EdgeScanner::Reset) will walk back up to it, so keep it.
    return false;
  }
  if (index > pf_queue_.back().block) {
    // The whole window is behind the new position: drop it, booking the
    // filler's completed reads so physical I/O stays truthful.
    while (!pf_queue_.empty()) {
      if (!pf_queue_.front().ready) {
        WaitForFrontReady(&lock);
        continue;
      }
      AccountDroppedSlot(pf_queue_.front());
      pf_queue_.pop_front();
    }
    return false;
  }
  for (;;) {
    if (!pf_queue_.front().ready) {
      WaitForFrontReady(&lock);
      continue;
    }
    PrefetchSlot& front = pf_queue_.front();
    if (front.block == index) {
      *out = std::move(front);
      pf_queue_.pop_front();
      return true;
    }
    AccountDroppedSlot(front);
    pf_queue_.pop_front();
  }
}

void BlockFile::AccountDroppedSlot(const PrefetchSlot& slot) {
  if (!slot.ok_read) return;  // skipped, failed, or never filled
  cache_->CountPrefetch();
  if (stats_ != nullptr) {
    ++stats_->physical_blocks_read;
    ++stats_->prefetched_blocks;
  }
  IoCounters().BumpPhysicalRead();
  IoCounters().BumpPrefetched();
}

void BlockFile::ShutdownPrefetcher() {
  if (!async_prefetch()) return;
  std::unique_lock<std::mutex> lock(pf_mu_);
  // Drain before tearing down: aborting the filler mid-queue would make
  // the number of completed (and therefore booked) read-ahead reads
  // depend on thread timing, so two identical runs closed mid-window
  // would disagree on physical_blocks_read/prefetched_blocks. The wait
  // is bounded by the remaining window (<= prefetch_depth_ blocks).
  pf_cv_.wait(lock, [this] { return !pf_filler_active_; });
  pf_shutdown_ = true;
  // Book reads the filler completed but nobody consumed, so the
  // physical ledger reflects what actually hit the disk.
  while (!pf_queue_.empty()) {
    AccountDroppedSlot(pf_queue_.front());
    pf_queue_.pop_front();
  }
}

Status BlockFile::WriteAttempt(uint64_t index, const void* data,
                               bool need_seek, bool* retryable) {
  *retryable = false;
  if (need_seek && fd_ < 0) {
    if (std::fseek(file_, static_cast<long>(index * block_size_),
                   SEEK_SET) != 0) {
      *retryable = ErrnoIsRetryable(errno);
      return Status::IoError("seek in " + path_ + ": " + ErrnoText(errno));
    }
  }

  FaultAction action;
  if (fault_ != nullptr) {
    action = fault_->OnAccess(logical_path_, index, FaultOp::kWrite,
                              block_size_);
  }
  const char* bytes = static_cast<const char*>(data);
  switch (action.kind) {
    case FaultKind::kEintr:
      *retryable = true;
      return Status::IoError("write block " + std::to_string(index) +
                             " of " + path_ + ": " + ErrnoText(EINTR) +
                             " (injected)");
    case FaultKind::kTransientEio:
    case FaultKind::kPermanentEio:
      *retryable = true;
      return Status::IoError("write block " + std::to_string(index) +
                             " of " + path_ + ": " + ErrnoText(EIO) +
                             " (injected)");
    case FaultKind::kEnospc:
      return Status::IoError("write block " + std::to_string(index) +
                             " of " + path_ + ": " + ErrnoText(ENOSPC) +
                             " (injected)");
    case FaultKind::kShortWrite: {
      // A prefix lands; a retry rewrites the block from its start.
      int ignored = 0;
      (void)RawWrite(index, bytes, static_cast<size_t>(action.param),
                     &ignored);
      *retryable = true;
      return Status::IoError(
          "short write to " + path_ + ": wrote " +
          std::to_string(action.param) + " of " +
          std::to_string(block_size_) + " bytes (injected)");
    }
    case FaultKind::kTornWrite: {
      // Crash-style failure: a partial block lands and the device is
      // gone. Not retryable — recovery is the writer's temp-then-rename.
      int ignored = 0;
      (void)RawWrite(index, bytes, static_cast<size_t>(action.param),
                     &ignored);
      return Status::IoError("torn write to " + path_ + ": " +
                             std::to_string(action.param) + " of " +
                             std::to_string(block_size_) +
                             " bytes hit disk (injected)");
    }
    case FaultKind::kBitFlip: {
      std::vector<char> corrupted(bytes, bytes + block_size_);
      const uint64_t bit = action.param % (block_size_ * 8);
      corrupted[bit / 8] ^= static_cast<char>(1u << (bit % 8));
      int err = 0;
      if (RawWrite(index, corrupted.data(), block_size_, &err) !=
          block_size_) {
        *retryable = true;
        return Status::IoError("short write to " + path_ + ": " +
                               ErrnoText(err != 0 ? err : EIO));
      }
      return Status::OK();
    }
    default:
      break;
  }

  int err = 0;
  const size_t wrote = RawWrite(index, bytes, block_size_, &err);
  if (wrote != block_size_) {
    *retryable = err == 0 || ErrnoIsRetryable(err);
    std::string detail =
        err != 0 ? ErrnoText(err)
                 : "wrote " + std::to_string(wrote) + " of " +
                       std::to_string(block_size_) + " bytes";
    return Status::IoError("short write to " + path_ + ": " + detail);
  }
  return Status::OK();
}

Status BlockFile::RetryWrite(uint64_t index, const void* data, Status first,
                             bool retryable) {
  const IoRetryPolicy policy = GetIoRetryPolicy();
  Status st = std::move(first);
  for (int attempt = 1; retryable && attempt < policy.max_attempts;
       ++attempt) {
    Backoff(policy, attempt);
    if (stats_ != nullptr) ++stats_->write_retries;
    st = WriteAttempt(index, data, /*need_seek=*/true, &retryable);
    if (st.ok()) return st;
  }
  if (!retryable) return st;  // permanent failure class: report as-is
  return Status::IoError(st.message() + " (gave up after " +
                         std::to_string(policy.max_attempts) +
                         " attempts)");
}

Status BlockFile::AppendBlock(const void* data) {
  if (mode_ != Mode::kWrite) {
    return Status::InvalidArgument("AppendBlock on read-only file");
  }
  const bool sample_latency = MetricsEnabled();
  Timer timer;
  bool retryable = false;
  Status st =
      WriteAttempt(block_count_, data, /*need_seek=*/false, &retryable);
  if (!st.ok()) {
    st = RetryWrite(block_count_, data, std::move(st), retryable);
    if (!st.ok()) return st;
  }
  if (sample_latency) {
    WriteLatencyHistogram()->Record(
        static_cast<uint64_t>(timer.ElapsedSeconds() * 1e6));
  }
  ++block_count_;
  if (cache_ != nullptr) {
    // The write transition and the audit record land in one critical
    // section, so record order == transition order under concurrency.
    cache_->WriteInstall(cache_file_id_, block_count_ - 1, data,
                         block_size_, audit_, audit_file_id_);
  } else if (audit_ != nullptr) {
    audit_->Record(audit_file_id_, block_count_ - 1, /*is_write=*/true);
  }
  if (stats_ != nullptr) {
    ++stats_->blocks_written;
    stats_->bytes_written += block_size_;
  }
  IoCounters().BumpWrite(block_size_);
  return Status::OK();
}

Status BlockFile::WriteBlockAt(uint64_t index, const void* data) {
  if (mode_ != Mode::kWrite) {
    return Status::InvalidArgument("WriteBlockAt on read-only file");
  }
  if (index > block_count_) {
    return Status::InvalidArgument("WriteBlockAt past end of " + path_);
  }
  bool retryable = false;
  Status st = WriteAttempt(index, data, /*need_seek=*/true, &retryable);
  if (!st.ok()) {
    st = RetryWrite(index, data, std::move(st), retryable);
    if (!st.ok()) return st;
  }
  // Restore the append position for any subsequent AppendBlock (the
  // direct backend positions per write and needs no restore).
  if (fd_ < 0 &&
      std::fseek(file_, static_cast<long>(block_count_ * block_size_),
                 SEEK_SET) != 0) {
    return Status::IoError("seek in " + path_ + ": " + ErrnoText(errno));
  }
  if (cache_ != nullptr) {
    cache_->WriteInstall(cache_file_id_, index, data, block_size_, audit_,
                         audit_file_id_);
  } else if (audit_ != nullptr) {
    audit_->Record(audit_file_id_, index, /*is_write=*/true);
  }
  if (stats_ != nullptr) {
    ++stats_->blocks_written;
    stats_->bytes_written += block_size_;
  }
  IoCounters().BumpWrite(block_size_);
  return Status::OK();
}

Status BlockFile::FlushAttempt(bool* retryable) {
  *retryable = false;
  FaultAction action;
  if (fault_ != nullptr) {
    action = fault_->OnAccess(logical_path_, block_count_, FaultOp::kFlush,
                              block_size_);
  }
  switch (action.kind) {
    case FaultKind::kEintr:
    case FaultKind::kTransientEio:
    case FaultKind::kPermanentEio:
      *retryable = true;
      return Status::IoError(
          "flush " + path_ + ": " +
          ErrnoText(action.kind == FaultKind::kEintr ? EINTR : EIO) +
          " (injected)");
    case FaultKind::kEnospc:
      return Status::IoError("flush " + path_ + ": " + ErrnoText(ENOSPC) +
                             " (injected)");
    default:
      break;
  }
  // The direct backend has no stdio buffer to flush: pwrite hands the
  // sectors straight to the device. Injected flush faults still fire
  // above so fault schedules are backend-independent.
  if (fd_ < 0 && std::fflush(file_) != 0) {
    *retryable = ErrnoIsRetryable(errno);
    return Status::IoError("flush " + path_ + ": " + ErrnoText(errno));
  }
  return Status::OK();
}

Status BlockFile::Flush() {
  if (mode_ != Mode::kWrite) return Status::OK();
  bool retryable = false;
  Status st = FlushAttempt(&retryable);
  if (st.ok()) return st;
  const IoRetryPolicy policy = GetIoRetryPolicy();
  for (int attempt = 1; retryable && attempt < policy.max_attempts;
       ++attempt) {
    Backoff(policy, attempt);
    if (stats_ != nullptr) ++stats_->write_retries;
    st = FlushAttempt(&retryable);
    if (st.ok()) return st;
  }
  return st;
}

Status BlockFile::SyncToDisk() {
  if (mode_ != Mode::kWrite) return Status::OK();
  IOSCC_RETURN_IF_ERROR(Flush());
  if (::fsync(fd_ >= 0 ? fd_ : ::fileno(file_)) != 0) {
    return Status::IoError("fsync " + path_ + ": " + ErrnoText(errno));
  }
  return Status::OK();
}

}  // namespace ioscc
