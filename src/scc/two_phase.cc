#include "scc/two_phase.h"

#include <memory>
#include <vector>

#include "io/edge_file.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "scc/checkpoint_hook.h"
#include "scc/drank.h"
#include "scc/spanning_tree.h"
#include "scc/union_find.h"
#include "util/logging.h"
#include "util/timer.h"

namespace ioscc {
namespace {

// Contracts the tree path find(anc_target)..desc into one node for a
// backward edge (desc, anc_target). Both arguments are raw node ids; reps
// are resolved here. Returns the number of nodes merged.
uint64_t ContractBackward(SpanningTree* tree, UnionFind* uf, NodeId desc,
                          NodeId anc_target, std::vector<NodeId>* scratch) {
  NodeId d = uf->Find(desc);
  NodeId a = uf->Find(anc_target);
  if (d == a) return 0;
  // Contraction preserves ancestor relations among representatives, so
  // this holds for every stored backward edge validated at the end of
  // construction; checked defensively anyway.
  if (!tree->IsAncestor(a, d)) return 0;
  scratch->clear();
  tree->ContractPathInto(d, a, scratch);
  for (NodeId w : *scratch) uf->UnionInto(a, w, a);
  return scratch->size();
}

}  // namespace

Status TwoPhaseScc(const std::string& edge_file,
                   const SemiExternalOptions& options, SccResult* result,
                   RunStats* stats) {
  Timer timer;
  Deadline deadline(options.time_limit_seconds);
  double seconds_base = 0;

  std::unique_ptr<EdgeScanner> scanner;
  NodeId n = 0;
  SpanningTree tree(0);
  std::vector<NodeId> backedge;
  UnionFind uf;
  bool updated = true;       // construction-phase loop flag
  bool changed = true;       // search-phase loop flag
  bool resume_search = false;  // snapshot was cut inside Tree-Search

  // Two snapshot layouts, tagged by phase: "2p.cons" carries the tree and
  // the stored backward edges (drank is recomputed from them); "2p.search"
  // carries the tree and the union-find. Both end with the RunStats
  // ledger, so per-pass I/O deltas continue exactly where they stopped.
  std::string resume_phase, resume_payload;
  const bool resumed =
      options.checkpoint != nullptr &&
      options.checkpoint->ResumeState(&resume_phase, &resume_payload) &&
      (resume_phase == "2p.cons" || resume_phase == "2p.search");
  if (resumed) {
    BlobReader reader(resume_payload);
    n = reader.GetU32();
    tree.DecodeFrom(&reader);
    if (resume_phase == "2p.cons") {
      reader.GetVec(&backedge);
      updated = reader.GetBool();
    } else {
      uf.DecodeFrom(&reader);
      changed = reader.GetBool();
      backedge.assign(n, kInvalidNode);  // unused after construction
      resume_search = true;
    }
    GetRunStats(&reader, stats, &seconds_base);
    if (!reader.Done()) {
      return Status::Corruption("2P-SCC resume state does not parse");
    }
    // The stream re-open is replay work, booked to the resume ledger so
    // the run ledger ends byte-identical to the uninterrupted run.
    IoStats before_resume = stats->io;
    IOSCC_RETURN_IF_ERROR(
        EdgeScanner::Open(edge_file, &stats->io, &scanner));
    options.checkpoint->ChargeResumeIo(stats->io - before_resume);
    stats->io = before_resume;
  }

  // Baseline for per-pass I/O deltas; the first pass also absorbs the
  // setup I/O (header read) so the deltas sum to the run total.
  IoStats io_mark = stats->io;

  if (!resumed) {
    IOSCC_RETURN_IF_ERROR(
        EdgeScanner::Open(edge_file, &stats->io, &scanner));
    n = static_cast<NodeId>(scanner->node_count());
    tree = SpanningTree(n);
    backedge.assign(n, kInvalidNode);
  }
  DrankResult dr = ComputeDrank(tree, backedge);

  const uint64_t max_iterations =
      options.max_iterations > 0 ? options.max_iterations
                                 : static_cast<uint64_t>(n) + 16;

  // ---- Phase 1: Tree-Construction (Algorithm 4) ----
  TraceSpan construction_span("2p.construction", &stats->io);
  if (resume_search) updated = false;  // phase 1 already complete
  while (updated) {
    if (stats->iterations >= max_iterations) {
      return Status::Incomplete("2P-SCC construction exceeded " +
                                std::to_string(max_iterations) +
                                " iterations");
    }
    if (deadline.Expired()) {
      return Status::Incomplete("2P-SCC hit the time limit");
    }
    updated = false;
    ++stats->iterations;
    TraceSpan pass_span("2p.construction.pass", &stats->io);
    scanner->Reset();

    Edge edge;
    uint64_t scanned = 0;
    while (scanner->Next(&edge)) {
      if ((++scanned & 0xFFFF) == 0 && deadline.Expired()) {
        return Status::Incomplete("2P-SCC hit the time limit");
      }
      const NodeId u = edge.from, v = edge.to;
      if (u == v) continue;
      if (tree.IsAncestor(v, u)) {
        // Backward edge: update-drank keeps the shallowest target.
        if (backedge[u] == kInvalidNode ||
            tree.depth(v) < tree.depth(backedge[u])) {
          backedge[u] = v;
          updated = true;
        }
        continue;
      }
      if (tree.IsAncestor(u, v)) continue;  // forward/tree direction
      // No ancestor/descendant relationship: up-edge test (Def. 5.1 with
      // exact drank). Replace case: if dlink(v) is a (proper) ancestor of
      // u then u -> v -> ... -> dlink(v) -> ... -> u closes a real cycle;
      // record the backward edge (u, dlink(v)). Otherwise: pushdown.
      //
      // Note on termination: a Def. 5.1 fixpoint need not exist — two
      // sibling subtrees that belong to one SCC and tie on drank pull each
      // other back and forth forever (without contraction there is no
      // stable local resolution). This matches the paper's evaluation,
      // where 2P-SCC frequently cannot finish within the time limit (INF
      // in Figs. 14-17); we detect the non-convergence via the iteration
      // cap / deadline and return Incomplete rather than a wrong split.
      if (dr.drank[u] < dr.drank[v]) continue;  // down-edge
      const NodeId target = dr.dlink[v];
      if (target != u && target < n && tree.IsAncestor(target, u)) {
        if (backedge[u] == kInvalidNode ||
            tree.depth(target) < tree.depth(backedge[u])) {
          backedge[u] = target;
          updated = true;
        }
      } else {
        tree.Reparent(v, u);  // pushdown T ⇓ (u, v)
        ++stats->pushdowns;
        updated = true;
      }
    }
    IOSCC_RETURN_IF_ERROR(scanner->status());

    // Pushdowns can detach a stored backward edge's target from the
    // ancestor chain of its source; such entries are no longer usable for
    // path contraction, so drop them (the underlying stream edges are
    // still present and will re-derive whatever remains true).
    for (NodeId v = 0; v < n; ++v) {
      if (backedge[v] != kInvalidNode &&
          !tree.IsAncestor(backedge[v], v)) {
        backedge[v] = kInvalidNode;
      }
    }
    dr = ComputeDrank(tree, backedge);

    IterationStats iter_stats;  // 2P never reduces the graph
    iter_stats.live_nodes = n;
    iter_stats.live_edges = scanner->edge_count();
    iter_stats.io = stats->io - io_mark;
    io_mark = stats->io;
    stats->per_iteration.push_back(iter_stats);
    TelemetryOnIteration(stats->iterations, iter_stats.live_nodes,
                         iter_stats.live_edges);
    if (options.checkpoint != nullptr) {
      options.checkpoint->AtBoundary(
          "2p.cons", stats->iterations, edge_file, [&](BlobWriter* w) {
            w->PutU32(n);
            tree.EncodeTo(w);
            w->PutVec(backedge);
            w->PutBool(updated);
            PutRunStats(w, *stats, seconds_base + timer.ElapsedSeconds());
          });
    }
    if (options.progress &&
        !options.progress(stats->iterations, iter_stats)) {
      return Status::Incomplete("2P-SCC cancelled by progress callback");
    }
    LogDebug("2P construction iteration %llu done",
             static_cast<unsigned long long>(stats->iterations));
  }
  construction_span.Close();

  // ---- Phase 2: Tree-Search (Algorithm 5) ----
  TraceSpan search_span("2p.search", &stats->io);
  std::vector<NodeId> scratch;
  if (!resume_search) {
    uf.Reset(n + 1);
    // Stored backward edges of the BR+-Tree are in memory: contract first.
    for (NodeId v = 0; v < n; ++v) {
      if (backedge[v] != kInvalidNode) {
        stats->contractions +=
            ContractBackward(&tree, &uf, v, backedge[v], &scratch);
      }
    }
  }
  while (changed) {
    if (deadline.Expired()) {
      return Status::Incomplete("2P-SCC hit the time limit");
    }
    changed = false;
    ++stats->search_scans;
    TraceSpan scan_span("2p.search.scan", &stats->io);
    scanner->Reset();
    Edge edge;
    uint64_t scanned = 0;
    while (scanner->Next(&edge)) {
      if ((++scanned & 0xFFFF) == 0 && deadline.Expired()) {
        return Status::Incomplete("2P-SCC hit the time limit");
      }
      NodeId a = uf.Find(edge.from);
      NodeId b = uf.Find(edge.to);
      if (a == b) continue;
      if (tree.IsAncestor(b, a)) {
        stats->contractions += ContractBackward(&tree, &uf, a, b, &scratch);
        changed = true;
      }
    }
    IOSCC_RETURN_IF_ERROR(scanner->status());
    scan_span.Close();

    // Search scans are passes over the stream too: record their I/O so
    // per_iteration deltas still sum to the run total.
    IterationStats iter_stats;
    iter_stats.live_nodes = n;
    iter_stats.live_edges = scanner->edge_count();
    iter_stats.io = stats->io - io_mark;
    io_mark = stats->io;
    stats->per_iteration.push_back(iter_stats);
    // Search scans advance the telemetry iteration gauge too, so the
    // stall watchdog sees a long search phase as forward progress.
    TelemetryOnIteration(stats->iterations + stats->search_scans,
                         iter_stats.live_nodes, iter_stats.live_edges);
    if (options.checkpoint != nullptr) {
      options.checkpoint->AtBoundary(
          "2p.search", stats->iterations + stats->search_scans, edge_file,
          [&](BlobWriter* w) {
            w->PutU32(n);
            tree.EncodeTo(w);
            uf.EncodeTo(w);
            w->PutBool(changed);
            PutRunStats(w, *stats, seconds_base + timer.ElapsedSeconds());
          });
    }
    // Search scans are cancellation boundaries like every other pass —
    // without this poll a SIGINT during a long search phase could not
    // wind the run down until the phase finished on its own.
    if (options.progress &&
        !options.progress(stats->iterations + stats->search_scans,
                          iter_stats)) {
      return Status::Incomplete("2P-SCC cancelled by progress callback");
    }
  }
  search_span.Close();

  result->component.resize(n);
  for (NodeId v = 0; v < n; ++v) result->component[v] = uf.Find(v);
  result->Normalize();
  stats->seconds = seconds_base + timer.ElapsedSeconds();
  return Status::OK();
}

}  // namespace ioscc
