// Semi-external DFS trees (the substrate of the DFS-SCC baseline, and a
// useful primitive in its own right — Section 4, Algorithm 1).
//
// A spanning tree T of G (rooted at a virtual node) is a DFS tree iff G
// has no forward-cross edges w.r.t. T: for every edge (u, v), u and v are
// ancestor-related or preorder(u) > preorder(v). BuildSemiExternalDfsTree
// computes such a tree for an on-disk graph while keeping only O(|V|)
// state in memory, by repeatedly scanning the edge stream in memory-sized
// batches and replacing the tree with a genuine DFS tree of
// (current tree ∪ batch) until no batch changes it (the buffered
// restructuring strategy of Sibeyn, Abello and Meyer's implementation).
//
// The root's children appear in the given priority order, which is what
// Kosaraju-style SCC extraction (DFS-SCC) builds on.

#ifndef IOSCC_SCC_SEMI_EXTERNAL_DFS_H_
#define IOSCC_SCC_SEMI_EXTERNAL_DFS_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "graph/types.h"
#include "scc/options.h"
#include "util/blob.h"
#include "util/status.h"
#include "util/timer.h"

namespace ioscc {

// A rooted tree with ordered children (DFS semantics). Node `n` is the
// virtual root; children order encodes the DFS visit order, so preorder
// and postorder are derived by plain traversal.
struct DfsForest {
  NodeId n;                                   // real node count; root = n
  std::vector<NodeId> parent;                 // size n+1
  std::vector<std::vector<NodeId>> children;  // in DFS visit order

  explicit DfsForest(NodeId n_in) : n(n_in) {
    parent.assign(static_cast<size_t>(n) + 1, kInvalidNode);
    children.assign(static_cast<size_t>(n) + 1, {});
  }

  // fn(node, entering): entering=true on first visit, false when leaving.
  template <typename Fn>
  void Traverse(Fn fn) const {
    struct Frame {
      NodeId node;
      size_t child_pos;
    };
    std::vector<Frame> stack;
    fn(n, true);
    stack.push_back({n, 0});
    while (!stack.empty()) {
      Frame& frame = stack.back();
      if (frame.child_pos < children[frame.node].size()) {
        NodeId c = children[frame.node][frame.child_pos++];
        fn(c, true);
        stack.push_back({c, 0});
        continue;
      }
      fn(frame.node, false);
      stack.pop_back();
    }
  }

  // Preorder numbers of all nodes (root included, pre[root] = 0).
  std::vector<uint32_t> Preorder() const;

  // Real nodes in decreasing postorder (last-finished first).
  std::vector<NodeId> DecreasingPostorder() const;

  // component[v] = the root-child whose subtree contains v.
  void LabelRootSubtrees(std::vector<NodeId>* component) const;
};

// Blob codec for a forest (checkpoint payloads). Children order is the
// DFS visit order and is preserved verbatim.
inline void EncodeDfsForest(BlobWriter* w, const DfsForest& f) {
  w->PutU32(f.n);
  w->PutVec(f.parent);
  w->PutU64(f.children.size());
  for (const std::vector<NodeId>& c : f.children) w->PutVec(c);
}

inline DfsForest DecodeDfsForest(BlobReader* r) {
  DfsForest f(r->GetU32());
  r->GetVec(&f.parent);
  const uint64_t lists = r->GetU64();
  f.children.clear();
  for (uint64_t i = 0; i < lists && r->ok(); ++i) {
    std::vector<NodeId> c;
    r->GetVec(&c);
    f.children.push_back(std::move(c));
  }
  return f;
}

// Checkpoint plumbing for one tree fixpoint. The caller (dfs_scc.cc)
// owns the snapshot layout and phase tags; this struct only tells the
// fixpoint where to start and whom to call at scan boundaries. The
// scanner open is charged through `hook` as resume I/O when
// `resume_tree` is set, because the build opens its scanner internally —
// restoring the ledger outside would double-charge the header read.
struct DfsTreeCheckpoint {
  const DfsForest* resume_tree = nullptr;  // start here instead of the star
  bool resume_updated = true;              // loop flag at the snapshot
  CheckpointHook* hook = nullptr;
  std::function<void(const DfsForest& tree, bool updated)> at_boundary;
};

// Computes a DFS tree of the graph at `path` with root children in
// `priority` order (must be a permutation of 0..n-1). Progress counters
// are accumulated into `stats` (iterations = stream scans; pushdowns =
// reshaping batches). Returns Incomplete on the iteration cap or
// deadline. `ckpt` (optional) resumes the fixpoint from a snapshot and
// reports scan boundaries; note the per-build iteration cap restarts on
// resume while stats->iterations continues from the restored ledger.
Status BuildSemiExternalDfsTree(const std::string& path,
                                const std::vector<NodeId>& priority,
                                const SemiExternalOptions& options,
                                const Deadline& deadline, RunStats* stats,
                                std::unique_ptr<DfsForest>* out,
                                const DfsTreeCheckpoint* ckpt = nullptr);

}  // namespace ioscc

#endif  // IOSCC_SCC_SEMI_EXTERNAL_DFS_H_
