// Condensation utilities: turning an SCC partition into the DAG
// representation the paper's motivating applications consume
// (reachability indexing, topological sorting, external bisimulation,
// graph pattern matching — Section 1).
//
// Both operations are semi-external: they stream edge files and keep only
// O(|V|) state in memory.

#ifndef IOSCC_SCC_CONDENSE_H_
#define IOSCC_SCC_CONDENSE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "io/io_stats.h"
#include "scc/scc_result.h"
#include "util/status.h"

namespace ioscc {

struct CondensationStats {
  uint64_t component_count = 0;  // nodes of the DAG
  uint64_t edge_count = 0;       // edges written (duplicates possible)
  uint64_t dropped_intra = 0;    // intra-SCC edges removed
};

// Streams `graph_path` once and writes the condensation to `dag_path`:
// endpoints mapped to their component labels, intra-SCC edges dropped.
// Component labels keep the original id space (the DAG file's node count
// equals the graph's); duplicate DAG edges are preserved — pipe through
// SortEdgeFile with dedup if uniqueness is needed.
Status WriteCondensation(const std::string& graph_path, const SccResult& scc,
                         const std::string& dag_path,
                         CondensationStats* stats, IoStats* io);

// Computes topological levels of a DAG edge file by iterated longest-path
// relaxation: level[v] = max over edges (u, v) of level[u] + 1, reached
// after depth(DAG)+1 sequential scans. On return, `levels`[v] is only
// meaningful for component representatives. `scans` (optional) receives
// the number of sequential scans used.
Status TopologicalLevels(const std::string& dag_path,
                         std::vector<uint32_t>* levels, uint64_t* scans,
                         IoStats* io);

}  // namespace ioscc

#endif  // IOSCC_SCC_CONDENSE_H_
