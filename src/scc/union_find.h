// Disjoint sets with path halving and union by size.
//
// The contraction substrate: when a tree path is contracted into one SCC
// node (Tree-Search, early acceptance), the members are merged here and
// exactly one representative keeps tree state (parent/depth).

#ifndef IOSCC_SCC_UNION_FIND_H_
#define IOSCC_SCC_UNION_FIND_H_

#include <cstdint>
#include <numeric>
#include <vector>

#include "graph/types.h"
#include "util/blob.h"

namespace ioscc {

class UnionFind {
 public:
  explicit UnionFind(NodeId n = 0) { Reset(n); }

  void Reset(NodeId n) {
    parent_.resize(n);
    std::iota(parent_.begin(), parent_.end(), NodeId{0});
    size_.assign(n, 1);
  }

  NodeId size() const { return static_cast<NodeId>(parent_.size()); }

  NodeId Find(NodeId x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];  // path halving
      x = parent_[x];
    }
    return x;
  }

  bool Same(NodeId a, NodeId b) { return Find(a) == Find(b); }

  // Merges the sets of a and b and FORCES `into` (which must be Find(a) or
  // Find(b)) to be the representative. Tree contraction needs to dictate
  // which node keeps the tree state, so no union-by-size here; set sizes
  // are still maintained.
  void UnionInto(NodeId a, NodeId b, NodeId into) {
    NodeId ra = Find(a), rb = Find(b);
    if (ra == rb) return;
    NodeId other = (into == ra) ? rb : ra;
    parent_[other] = into;
    size_[into] += size_[other];
  }

  // Standard union by size; returns the new representative.
  NodeId Union(NodeId a, NodeId b) {
    NodeId ra = Find(a), rb = Find(b);
    if (ra == rb) return ra;
    if (size_[ra] < size_[rb]) std::swap(ra, rb);
    parent_[rb] = ra;
    size_[ra] += size_[rb];
    return ra;
  }

  // Size of x's set.
  uint32_t SetSize(NodeId x) { return size_[Find(x)]; }

  // Checkpoint codec: the raw arrays verbatim. Path-halving state is part
  // of the structure, so a restored instance answers every Find/SetSize
  // exactly as the original would.
  void EncodeTo(BlobWriter* w) const {
    w->PutVec(parent_);
    w->PutVec(size_);
  }
  void DecodeFrom(BlobReader* r) {
    r->GetVec(&parent_);
    r->GetVec(&size_);
  }

 private:
  std::vector<NodeId> parent_;
  std::vector<uint32_t> size_;
};

}  // namespace ioscc

#endif  // IOSCC_SCC_UNION_FIND_H_
