#include "scc/scc_result.h"

#include <algorithm>

namespace ioscc {

void SccResult::Normalize() {
  const NodeId n = node_count();
  // min_member[label] = smallest node id seen with that label. Labels are
  // arbitrary NodeIds < n produced by the algorithms.
  std::vector<NodeId> min_member(n, kInvalidNode);
  for (NodeId v = 0; v < n; ++v) {
    NodeId label = component[v];
    if (min_member[label] == kInvalidNode || v < min_member[label]) {
      min_member[label] = v;
    }
  }
  for (NodeId v = 0; v < n; ++v) {
    component[v] = min_member[component[v]];
  }
}

uint64_t SccResult::ComponentCount() const {
  uint64_t count = 0;
  for (NodeId v = 0; v < node_count(); ++v) {
    if (component[v] == v) ++count;
  }
  return count;
}

std::vector<uint32_t> SccResult::ComponentSizes() const {
  std::vector<uint32_t> sizes(node_count(), 0);
  for (NodeId v = 0; v < node_count(); ++v) ++sizes[component[v]];
  return sizes;
}

uint32_t SccResult::LargestComponentSize() const {
  if (component.empty()) return 0;
  std::vector<uint32_t> sizes = ComponentSizes();
  return *std::max_element(sizes.begin(), sizes.end());
}

uint64_t SccResult::NodesInNontrivialSccs() const {
  std::vector<uint32_t> sizes = ComponentSizes();
  uint64_t nodes = 0;
  for (uint32_t s : sizes) {
    if (s >= 2) nodes += s;
  }
  return nodes;
}

}  // namespace ioscc
