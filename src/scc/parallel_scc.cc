#include "scc/parallel_scc.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <deque>
#include <memory>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "scc/tarjan.h"

namespace ioscc {
namespace {

// kernel.* registry counters (mirrors pass_metrics.h): aggregate work done
// by the parallel kernel across every invocation in the process.
struct KernelCounters {
  Counter* pivots;
  Counter* trimmed;
  Counter* bfs_levels;
  Counter* small_subproblems;

  static const KernelCounters& Get() {
    static KernelCounters counters{
        MetricsRegistry::Global().GetCounter("kernel.pivots"),
        MetricsRegistry::Global().GetCounter("kernel.trimmed"),
        MetricsRegistry::Global().GetCounter("kernel.bfs_levels"),
        MetricsRegistry::Global().GetCounter("kernel.small_subproblems")};
    return counters;
  }
};

// Subproblems at or below this many nodes skip the FB split and run
// restricted serial Tarjan, batched so independent subproblems solve in
// parallel. Scaled off the granularity knob so one flag tunes both the
// frontier chunking and the recursion floor.
size_t SerialCutoff(uint32_t granularity) {
  return std::max<size_t>(2048, 4ull * granularity);
}

struct FbState {
  FbState(const Digraph& fwd_graph, const Digraph& bwd_graph,
          ThreadPool* worker_pool, uint32_t gran)
      : fwd(fwd_graph), bwd(bwd_graph), pool(worker_pool),
        granularity(gran) {}

  const Digraph& fwd;
  const Digraph& bwd;  // fwd with every edge reversed
  ThreadPool* pool;
  uint32_t granularity;

  // part[v]: id of the open subproblem v belongs to (0 = solved). Written
  // only by the calling thread; tasks read it after a Submit()
  // happens-before edge and never while the calling thread mutates it
  // (the calling thread is blocked in Wait() whenever tasks run).
  std::vector<uint32_t> part;
  uint32_t next_part = 0;

  // Reachability stamps. A node is in the current forward (backward)
  // reachable set iff its stamp equals the round's stamp; bumping the
  // stamp resets both sets in O(1). Claims race benignly: exchange
  // admits each node into a frontier exactly once.
  std::unique_ptr<std::atomic<uint32_t>[]> fwd_seen;
  std::unique_ptr<std::atomic<uint32_t>[]> bwd_seen;
  uint32_t stamp = 0;

  // Scratch for restricted Tarjan: maps global id -> index in the
  // subproblem's node list. Concurrent small-subproblem tasks write
  // disjoint entries (their node sets are disjoint), so plain stores.
  std::vector<uint32_t> local_index;

  std::vector<NodeId> label;  // the answer: canonical SCC label per node

  // Copied from ParallelSccOptions; ticked by the orchestrating thread
  // only, never from pool tasks.
  std::function<void()> heartbeat;
};

void Beat(FbState* st) {
  if (st->heartbeat) st->heartbeat();
}

// Expands one frontier chunk of `dir` in subproblem `pid`, appending newly
// claimed nodes to `out`. Runs on pool workers; touches only atomics plus
// the read-only graph/part arrays.
void ExpandChunk(const Digraph& dir, std::atomic<uint32_t>* seen,
                 uint32_t stamp, const std::vector<uint32_t>& part,
                 uint32_t pid, const NodeId* chunk, size_t chunk_size,
                 std::vector<NodeId>* out) {
  for (size_t i = 0; i < chunk_size; ++i) {
    for (NodeId v : dir.OutNeighbors(chunk[i])) {
      if (part[v] != pid) continue;
      if (seen[v].load(std::memory_order_relaxed) == stamp) continue;
      if (seen[v].exchange(stamp, std::memory_order_relaxed) != stamp) {
        out->push_back(v);
      }
    }
  }
}

// Level-synchronous BFS over `dir` restricted to subproblem `pid`,
// stamping every reached node. Chunks of each level run as parallel tasks
// in `group`; the caller owns the level barrier (group.Wait()) so forward
// and backward sweeps can share one group and proceed concurrently.
class ReachSweep {
 public:
  ReachSweep(const Digraph& dir, std::atomic<uint32_t>* seen, FbState* st,
             uint32_t pid, NodeId pivot)
      : dir_(dir), seen_(seen), st_(st), pid_(pid) {
    seen_[pivot].store(st_->stamp, std::memory_order_relaxed);
    frontier_.push_back(pivot);
  }

  bool done() const { return frontier_.empty(); }

  // Submits this level's expansion tasks into `group`. Call Collect()
  // after the group's Wait().
  void SubmitLevel(TaskGroup* group) {
    const size_t chunk = st_->granularity;
    const size_t n_chunks = (frontier_.size() + chunk - 1) / chunk;
    next_.assign(n_chunks, {});
    for (size_t c = 0; c < n_chunks; ++c) {
      const NodeId* base = frontier_.data() + c * chunk;
      const size_t size = std::min(chunk, frontier_.size() - c * chunk);
      std::vector<NodeId>* out = &next_[c];
      group->Run([this, base, size, out] {
        ExpandChunk(dir_, seen_, st_->stamp, st_->part, pid_, base, size,
                    out);
      });
    }
  }

  void Collect() {
    frontier_.clear();
    for (std::vector<NodeId>& part : next_) {
      frontier_.insert(frontier_.end(), part.begin(), part.end());
    }
    next_.clear();
  }

 private:
  const Digraph& dir_;
  std::atomic<uint32_t>* seen_;
  FbState* st_;
  uint32_t pid_;
  std::vector<NodeId> frontier_;
  std::vector<std::vector<NodeId>> next_;
};

// Peels zero in/out-degree nodes (self-loops excluded); each is its own
// SCC. Level-synchronous and chunk-parallel like the BFS sweeps, because
// planted and web-scale batch graphs shed the bulk of their nodes here —
// a serial trim would cap the whole kernel's speedup. The peeled set per
// level is a pure function of the graph (a node dies in level k iff the
// level's total decrements exhaust one of its counters), so the result is
// deterministic at every pool size; only frontier order varies, and
// nothing downstream reads it. Returns survivors in ascending id order.
std::vector<NodeId> TrimPass(FbState* st) {
  const Digraph& fwd = st->fwd;
  const Digraph& bwd = st->bwd;
  const NodeId n = fwd.node_count();
  std::unique_ptr<std::atomic<uint32_t>[]> outdeg(
      new std::atomic<uint32_t>[n]);
  std::unique_ptr<std::atomic<uint32_t>[]> indeg(
      new std::atomic<uint32_t>[n]);
  std::unique_ptr<std::atomic<uint8_t>[]> dead(new std::atomic<uint8_t>[n]);

  // Per-node degree init is embarrassingly parallel: node-range chunks
  // sized so every worker gets a handful of tasks, never below the
  // granularity knob.
  const size_t threads = st->pool != nullptr ? st->pool->num_threads() : 1;
  const size_t init_chunk = std::max<size_t>(
      st->granularity, (size_t{n} + 8 * threads - 1) / (8 * threads));
  const size_t init_chunks = (size_t{n} + init_chunk - 1) / init_chunk;
  std::vector<std::vector<NodeId>> first(init_chunks);
  {
    TaskGroup group(st->pool);
    for (size_t c = 0; c < init_chunks; ++c) {
      const NodeId begin = static_cast<NodeId>(c * init_chunk);
      const NodeId end =
          static_cast<NodeId>(std::min<size_t>(n, (c + 1) * init_chunk));
      std::vector<NodeId>* out = &first[c];
      group.Run([&fwd, &bwd, &outdeg, &indeg, &dead, begin, end, out] {
        for (NodeId u = begin; u < end; ++u) {
          uint32_t self = 0;  // a self-loop never extends an SCC
          for (NodeId v : fwd.OutNeighbors(u)) {
            if (v == u) ++self;
          }
          const uint32_t out_d = fwd.OutDegree(u) - self;
          const uint32_t in_d = bwd.OutDegree(u) - self;
          outdeg[u].store(out_d, std::memory_order_relaxed);
          indeg[u].store(in_d, std::memory_order_relaxed);
          if (out_d == 0 || in_d == 0) {
            dead[u].store(1, std::memory_order_relaxed);
            out->push_back(u);
          } else {
            dead[u].store(0, std::memory_order_relaxed);
          }
        }
      });
    }
    group.Wait();
  }
  std::vector<NodeId> frontier;
  for (std::vector<NodeId>& part : first) {
    frontier.insert(frontier.end(), part.begin(), part.end());
  }

  // Peel cascade. Claims race benignly (exchange admits a node once); a
  // dead node's counters may keep absorbing decrements, which is harmless
  // because the dead flag gates every claim.
  while (!frontier.empty()) {
    const size_t chunk = st->granularity;
    const size_t n_chunks = (frontier.size() + chunk - 1) / chunk;
    std::vector<std::vector<NodeId>> next(n_chunks);
    TaskGroup group(st->pool);
    for (size_t c = 0; c < n_chunks; ++c) {
      const NodeId* base = frontier.data() + c * chunk;
      const size_t size = std::min(chunk, frontier.size() - c * chunk);
      std::vector<NodeId>* out = &next[c];
      group.Run([st, &fwd, &bwd, &outdeg, &indeg, &dead, base, size, out] {
        for (size_t i = 0; i < size; ++i) {
          const NodeId u = base[i];
          st->label[u] = u;  // claimed exactly once => disjoint writes
          for (NodeId v : fwd.OutNeighbors(u)) {
            if (v == u || dead[v].load(std::memory_order_relaxed)) continue;
            if (indeg[v].fetch_sub(1, std::memory_order_relaxed) == 1 &&
                dead[v].exchange(1, std::memory_order_relaxed) == 0) {
              out->push_back(v);
            }
          }
          for (NodeId v : bwd.OutNeighbors(u)) {
            if (v == u || dead[v].load(std::memory_order_relaxed)) continue;
            if (outdeg[v].fetch_sub(1, std::memory_order_relaxed) == 1 &&
                dead[v].exchange(1, std::memory_order_relaxed) == 0) {
              out->push_back(v);
            }
          }
        }
      });
    }
    group.Wait();
    Beat(st);
    frontier.clear();
    for (std::vector<NodeId>& part : next) {
      frontier.insert(frontier.end(), part.begin(), part.end());
    }
  }

  std::vector<NodeId> live;
  for (NodeId v = 0; v < n; ++v) {
    if (dead[v].load(std::memory_order_relaxed) == 0) live.push_back(v);
  }
  const uint64_t trimmed = n - live.size();
  if (trimmed > 0) KernelCounters::Get().trimmed->Add(trimmed);
  return live;
}

// Deterministic pivot: maximize (out+1)*(in+1) over full-graph degrees,
// smallest id on ties. Degrees are data, not timing, so every thread
// count picks the same node.
NodeId SelectPivot(const FbState& st, const std::vector<NodeId>& nodes) {
  NodeId best = nodes[0];
  uint64_t best_score = 0;
  for (NodeId v : nodes) {
    uint64_t score = (uint64_t{st.fwd.OutDegree(v)} + 1) *
                     (uint64_t{st.bwd.OutDegree(v)} + 1);
    if (score > best_score) {
      best_score = score;
      best = v;
    }
  }
  return best;
}

// Solves one small subproblem with Tarjan restricted to its node set.
// Runs as a pool task; subproblem node sets are disjoint, so concurrent
// tasks write disjoint label/local_index entries.
void SolveSmall(FbState* st, const std::vector<NodeId>& nodes,
                uint32_t pid) {
  const uint32_t local_n = static_cast<uint32_t>(nodes.size());
  for (uint32_t i = 0; i < local_n; ++i) {
    st->local_index[nodes[i]] = i;
  }
  std::vector<Edge> local_edges;
  for (uint32_t i = 0; i < local_n; ++i) {
    for (NodeId v : st->fwd.OutNeighbors(nodes[i])) {
      if (st->part[v] != pid) continue;
      local_edges.push_back(Edge{i, st->local_index[v]});
    }
  }
  SccResult local = TarjanScc(Digraph(local_n, local_edges));
  // Tarjan labels by smallest *local* index; remap to smallest global id.
  std::vector<NodeId> min_global(local_n, kInvalidNode);
  for (uint32_t i = 0; i < local_n; ++i) {
    NodeId& rep = min_global[local.component[i]];
    rep = std::min(rep, nodes[i]);
  }
  for (uint32_t i = 0; i < local_n; ++i) {
    st->label[nodes[i]] = min_global[local.component[i]];
  }
}

void RunFb(FbState* st, std::vector<NodeId> root_nodes) {
  std::deque<std::vector<NodeId>> work;
  std::vector<std::pair<std::vector<NodeId>, uint32_t>> small;
  const size_t cutoff = SerialCutoff(st->granularity);
  const size_t small_flush =
      4 * static_cast<size_t>(st->pool ? st->pool->num_threads() : 1);

  auto open_subproblem = [st](std::vector<NodeId> nodes,
                              std::deque<std::vector<NodeId>>* q) {
    uint32_t pid = ++st->next_part;
    for (NodeId v : nodes) st->part[v] = pid;
    q->push_back(std::move(nodes));
  };

  auto flush_small = [st, &small] {
    if (small.empty()) return;
    KernelCounters::Get().small_subproblems->Add(small.size());
    TaskGroup group(st->pool);
    for (auto& entry : small) {
      const std::vector<NodeId>* nodes = &entry.first;
      uint32_t pid = entry.second;
      group.Run([st, nodes, pid] { SolveSmall(st, *nodes, pid); });
    }
    group.Wait();
    Beat(st);
    for (auto& entry : small) {
      for (NodeId v : entry.first) st->part[v] = 0;
    }
    small.clear();
  };

  if (!root_nodes.empty()) {
    open_subproblem(std::move(root_nodes), &work);
  }

  while (!work.empty()) {
    std::vector<NodeId> nodes = std::move(work.front());
    work.pop_front();
    const uint32_t pid = st->part[nodes.front()];
    if (nodes.size() <= cutoff) {
      small.emplace_back(std::move(nodes), pid);
      if (small.size() >= small_flush) flush_small();
      continue;
    }

    const NodeId pivot = SelectPivot(*st, nodes);
    KernelCounters::Get().pivots->Increment();
    ++st->stamp;
    ReachSweep fwd(st->fwd, st->fwd_seen.get(), st, pid, pivot);
    ReachSweep bwd(st->bwd, st->bwd_seen.get(), st, pid, pivot);
    while (!fwd.done() || !bwd.done()) {
      KernelCounters::Get().bfs_levels->Increment();
      TaskGroup level(st->pool);
      if (!fwd.done()) fwd.SubmitLevel(&level);
      if (!bwd.done()) bwd.SubmitLevel(&level);
      level.Wait();
      Beat(st);
      fwd.Collect();
      bwd.Collect();
    }

    // Split into SCC (F∩B) and the three remainders, preserving the
    // ascending order of `nodes` so recursion order is deterministic.
    std::vector<NodeId> in_scc, f_only, b_only, rest;
    const uint32_t stamp = st->stamp;
    for (NodeId v : nodes) {
      const bool f = st->fwd_seen[v].load(std::memory_order_relaxed) == stamp;
      const bool b = st->bwd_seen[v].load(std::memory_order_relaxed) == stamp;
      if (f && b) {
        in_scc.push_back(v);
      } else if (f) {
        f_only.push_back(v);
      } else if (b) {
        b_only.push_back(v);
      } else {
        rest.push_back(v);
      }
    }
    const NodeId scc_label = in_scc.front();  // ascending order => minimum
    for (NodeId v : in_scc) {
      st->label[v] = scc_label;
      st->part[v] = 0;
    }
    if (!f_only.empty()) open_subproblem(std::move(f_only), &work);
    if (!b_only.empty()) open_subproblem(std::move(b_only), &work);
    if (!rest.empty()) open_subproblem(std::move(rest), &work);
    Beat(st);
    if (work.empty()) flush_small();
  }
  flush_small();
}

}  // namespace

SccResult ParallelFbScc(const Digraph& graph,
                        const ParallelSccOptions& options) {
  const NodeId n = graph.node_count();
  SccResult result;
  result.component.assign(n, kInvalidNode);
  if (n == 0) return result;

  const Digraph reversed = graph.Reversed();
  FbState st(graph, reversed, options.pool,
             options.granularity > 0 ? options.granularity
                                     : kDefaultKernelGranularity);
  st.part.assign(n, 0);
  st.fwd_seen = std::make_unique<std::atomic<uint32_t>[]>(n);
  st.bwd_seen = std::make_unique<std::atomic<uint32_t>[]>(n);
  for (NodeId v = 0; v < n; ++v) {
    st.fwd_seen[v].store(0, std::memory_order_relaxed);
    st.bwd_seen[v].store(0, std::memory_order_relaxed);
  }
  st.local_index.assign(n, 0);
  st.label.assign(n, kInvalidNode);
  st.heartbeat = options.heartbeat;

  std::vector<NodeId> live = TrimPass(&st);
  RunFb(&st, std::move(live));

  result.component = std::move(st.label);
  return result;
}

std::vector<Edge> CondensationOfParallelFb(const Digraph& graph,
                                           const ParallelSccOptions& options,
                                           SccResult* scc,
                                           std::vector<NodeId>* order) {
  *scc = ParallelFbScc(graph, options);
  const NodeId n = graph.node_count();

  // Condensation edges in CSR scan order — a pure function of the graph
  // and the (unique) partition, so identical at every thread count.
  std::vector<Edge> dag_edges;
  for (NodeId u = 0; u < n; ++u) {
    const NodeId cu = scc->component[u];
    for (NodeId v : graph.OutNeighbors(u)) {
      const NodeId cv = scc->component[v];
      if (cu != cv) dag_edges.push_back(Edge{cu, cv});
    }
  }

  // Reverse-topological order of components (successors first), matching
  // the CondensationOf contract: for every dag edge, `to` is emitted
  // before `from`. Kahn's algorithm over outstanding out-edge counts,
  // seeded with sink components in ascending id order.
  std::vector<uint32_t> out_cnt(n, 0);
  std::vector<uint64_t> rev_head(n + 1, 0);
  for (const Edge& e : dag_edges) {
    ++out_cnt[e.from];
    ++rev_head[e.to + 1];
  }
  for (NodeId c = 0; c < n; ++c) rev_head[c + 1] += rev_head[c];
  std::vector<NodeId> rev_adj(dag_edges.size());
  {
    std::vector<uint64_t> cursor(rev_head.begin(), rev_head.end() - 1);
    for (const Edge& e : dag_edges) rev_adj[cursor[e.to]++] = e.from;
  }
  order->clear();
  for (NodeId v = 0; v < n; ++v) {
    if (scc->component[v] == v && out_cnt[v] == 0) order->push_back(v);
  }
  for (size_t head = 0; head < order->size(); ++head) {
    const NodeId c = (*order)[head];
    for (uint64_t i = rev_head[c]; i < rev_head[c + 1]; ++i) {
      const NodeId u = rev_adj[i];
      if (--out_cnt[u] == 0) order->push_back(u);
    }
  }
  return dag_edges;
}

}  // namespace ioscc
