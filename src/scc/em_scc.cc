#include "scc/em_scc.h"

#include <algorithm>
#include <memory>
#include <vector>

#include "graph/digraph.h"
#include "io/edge_file.h"
#include "io/temp_dir.h"
#include "obs/telemetry.h"
#include "scc/checkpoint_hook.h"
#include "scc/tarjan.h"
#include "scc/union_find.h"
#include "util/logging.h"
#include "util/timer.h"

namespace ioscc {
namespace {

// Runs the in-memory oracle on the subgraph induced by `chunk` (edges over
// representatives) and merges each discovered multi-member SCC in `uf`.
// Node ids are compacted before building the Digraph so the cost scales
// with the chunk, not with |V|.
uint64_t ContractChunk(const std::vector<Edge>& chunk, UnionFind* uf) {
  if (chunk.empty()) return 0;
  // Compact the endpoint ids so the oracle's cost scales with the chunk.
  std::vector<NodeId> nodes;
  nodes.reserve(chunk.size() * 2);
  for (const Edge& e : chunk) {
    nodes.push_back(e.from);
    nodes.push_back(e.to);
  }
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());

  auto dense = [&](NodeId v) {
    return static_cast<NodeId>(
        std::lower_bound(nodes.begin(), nodes.end(), v) - nodes.begin());
  };
  std::vector<Edge> local;
  local.reserve(chunk.size());
  for (const Edge& e : chunk) {
    local.push_back(Edge{dense(e.from), dense(e.to)});
  }
  Digraph graph(static_cast<NodeId>(nodes.size()), local);
  SccResult scc = TarjanScc(graph);

  uint64_t merged = 0;
  for (NodeId v = 0; v < graph.node_count(); ++v) {
    NodeId label = scc.component[v];
    if (label != v) {
      uf->Union(nodes[label], nodes[v]);
      ++merged;
    }
  }
  return merged;
}

}  // namespace

Status EmScc(const std::string& edge_file, const SemiExternalOptions& options,
             SccResult* result, RunStats* stats) {
  Timer timer;
  Deadline deadline(options.time_limit_seconds);
  double seconds_base = 0;

  std::unique_ptr<TempDir> scratch;
  IOSCC_RETURN_IF_ERROR(TempDir::Create("ioscc-em", &scratch));
  ScratchKeepGuard keep_guard{scratch.get(), options.checkpoint};

  std::unique_ptr<EdgeScanner> scanner;
  NodeId n = 0;
  UnionFind uf;
  std::string current = edge_file;
  uint64_t live_edges = 0;

  // EM's boundary sits at the very bottom of the pass loop, after the
  // rewritten stream has been published and re-opened, so the snapshot
  // references a complete scratch file (which SIGKILL leaves behind in
  // the dead process's TempDir).
  std::string resume_phase, resume_payload;
  const bool resumed =
      options.checkpoint != nullptr &&
      options.checkpoint->ResumeState(&resume_phase, &resume_payload) &&
      resume_phase == "em";
  if (resumed) {
    BlobReader reader(resume_payload);
    n = reader.GetU32();
    uf.DecodeFrom(&reader);
    live_edges = reader.GetU64();
    current = reader.GetString();
    GetRunStats(&reader, stats, &seconds_base);
    if (!reader.Done()) {
      return Status::Corruption("EM-SCC resume state does not parse");
    }
    IoStats before_resume = stats->io;
    IOSCC_RETURN_IF_ERROR(
        EdgeScanner::Open(current, &stats->io, &scanner));
    options.checkpoint->ChargeResumeIo(stats->io - before_resume);
    stats->io = before_resume;
  } else {
    IOSCC_RETURN_IF_ERROR(
        EdgeScanner::Open(edge_file, &stats->io, &scanner));
    n = static_cast<NodeId>(scanner->node_count());
    uf.Reset(n);
    live_edges = scanner->edge_count();
  }

  const size_t chunk_capacity = std::max<size_t>(
      1024, options.memory_budget_bytes / sizeof(Edge));
  const uint64_t max_iterations =
      options.max_iterations > 0 ? options.max_iterations : 64;

  while (true) {
    if (deadline.Expired()) {
      return Status::Incomplete("EM-SCC hit the time limit");
    }
    if (live_edges <= chunk_capacity) {
      // Fits in memory: final in-memory pass over representatives.
      std::vector<Edge> edges;
      edges.reserve(live_edges);
      scanner->Reset();
      Edge e;
      while (scanner->Next(&e)) {
        NodeId a = uf.Find(e.from), b = uf.Find(e.to);
        if (a != b) edges.push_back(Edge{a, b});
      }
      IOSCC_RETURN_IF_ERROR(scanner->status());
      ContractChunk(edges, &uf);
      break;
    }

    if (stats->iterations >= max_iterations) {
      return Status::Incomplete(
          "EM-SCC stopped shrinking (Case-1/Case-2 of Section 4) after " +
          std::to_string(stats->iterations) + " iterations");
    }
    ++stats->iterations;

    // One pass: contract per chunk, and rewrite the stream remapped to
    // representatives with intra-SCC edges dropped.
    const std::string next_path = scratch->NewFilePath(".edges");
    std::unique_ptr<EdgeWriter> writer;
    IOSCC_RETURN_IF_ERROR(EdgeWriter::Create(next_path, n,
                                             options.scratch_block_size,
                                             &stats->io, &writer));
    std::vector<Edge> chunk;
    chunk.reserve(chunk_capacity);
    uint64_t merged = 0;
    scanner->Reset();
    Edge e;
    while (scanner->Next(&e)) {
      NodeId a = uf.Find(e.from), b = uf.Find(e.to);
      if (a == b) continue;
      chunk.push_back(Edge{a, b});
      if (chunk.size() >= chunk_capacity) {
        merged += ContractChunk(chunk, &uf);
        // Flush the chunk remapped to post-contraction representatives.
        for (const Edge& ce : chunk) {
          NodeId ca = uf.Find(ce.from), cb = uf.Find(ce.to);
          if (ca != cb) IOSCC_RETURN_IF_ERROR(writer->Add(Edge{ca, cb}));
        }
        chunk.clear();
      }
    }
    IOSCC_RETURN_IF_ERROR(scanner->status());
    if (!chunk.empty()) {
      merged += ContractChunk(chunk, &uf);
      for (const Edge& ce : chunk) {
        NodeId ca = uf.Find(ce.from), cb = uf.Find(ce.to);
        if (ca != cb) IOSCC_RETURN_IF_ERROR(writer->Add(Edge{ca, cb}));
      }
      chunk.clear();
    }
    IOSCC_RETURN_IF_ERROR(writer->Finish());

    const uint64_t new_edges = writer->edge_count();
    stats->contractions += merged;
    IterationStats iter_stats;
    iter_stats.nodes_reduced = merged;
    iter_stats.edges_reduced =
        live_edges > new_edges ? live_edges - new_edges : 0;
    iter_stats.live_edges = new_edges;
    // Every merged node folded into a representative; the survivors are
    // the live side of the contraction.
    iter_stats.live_nodes =
        n > stats->contractions ? n - stats->contractions : 0;
    stats->per_iteration.push_back(iter_stats);
    TelemetryOnIteration(stats->iterations, iter_stats.live_nodes,
                         iter_stats.live_edges);
    if (options.progress &&
        !options.progress(stats->iterations, iter_stats)) {
      return Status::Incomplete("EM-SCC cancelled by progress callback");
    }

    if (merged == 0 && new_edges >= live_edges) {
      // Case-1 / Case-2: contraction can no longer shrink the graph.
      return Status::Incomplete(
          "EM-SCC cannot make progress: graph exceeds memory and no "
          "partition contains a contractible cycle");
    }
    live_edges = new_edges;
    current = next_path;
    scanner.reset();
    IOSCC_RETURN_IF_ERROR(EdgeScanner::Open(current, &stats->io, &scanner));
    if (options.checkpoint != nullptr) {
      options.checkpoint->AtBoundary(
          "em", stats->iterations, current, [&](BlobWriter* w) {
            w->PutU32(n);
            uf.EncodeTo(w);
            w->PutU64(live_edges);
            w->PutString(current);
            PutRunStats(w, *stats, seconds_base + timer.ElapsedSeconds());
          });
    }
  }

  result->component.resize(n);
  for (NodeId v = 0; v < n; ++v) result->component[v] = uf.Find(v);
  result->Normalize();
  stats->seconds = seconds_base + timer.ElapsedSeconds();
  keep_guard.run_ok = true;
  return Status::OK();
}

}  // namespace ioscc
