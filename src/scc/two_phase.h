// 2P-SCC: the paper's two-phase single-tree algorithm (Section 6).
//
// Phase 1, Tree-Construction (Algorithm 4): starting from the star
// spanning tree, repeatedly scan the edge stream and eliminate up-edges
// (Definition 5.1, evaluated with exact drank/dlink) either by recording a
// backward edge to dlink(v) when that node is an ancestor of u, or by the
// pushdown reshaping T ⇓ (u, v). Stored backward edges are refreshed from
// stream backward edges every scan (update-drank). The loop ends when a
// full scan changes nothing; at most depth(G) iterations (Lemma 6.1).
//
// Phase 2, Tree-Search (Algorithm 5): scan the stream once and contract
// the tree path v..u for every backward edge (u, v), starting with the
// stored backward edges of the BR+-Tree. Each contracted set is one SCC.
// We iterate the search scan to a fixpoint and report the scan count in
// RunStats::search_scans; with the no-up-edge invariant established by
// phase 1 the fixpoint is reached after the first scan (the second scan is
// the emptiness check), matching the paper's single-scan claim.

#ifndef IOSCC_SCC_TWO_PHASE_H_
#define IOSCC_SCC_TWO_PHASE_H_

#include <string>

#include "scc/options.h"
#include "scc/scc_result.h"
#include "util/status.h"

namespace ioscc {

// Computes all SCCs of the graph stored in `edge_file`. On success,
// `result` holds the normalized partition and `stats` the I/O counts.
Status TwoPhaseScc(const std::string& edge_file,
                   const SemiExternalOptions& options, SccResult* result,
                   RunStats* stats);

}  // namespace ioscc

#endif  // IOSCC_SCC_TWO_PHASE_H_
