#include "scc/kosaraju.h"

#include <algorithm>
#include <vector>

namespace ioscc {

namespace {

// Shared two-pass core. `on_component(label, members)` is invoked for
// each component in the discovery order of pass 2, which is the
// topological order of the condensation (sources first).
template <typename OnComponent>
void RunKosaraju(const Digraph& graph, std::vector<NodeId>* component,
                 OnComponent on_component) {
  const NodeId n = graph.node_count();

  // Pass 1: DFS on G collecting nodes in increasing finish time.
  std::vector<NodeId> finish_order;
  finish_order.reserve(n);
  {
    std::vector<bool> visited(n, false);
    struct Frame {
      NodeId node;
      size_t edge_pos;
    };
    std::vector<Frame> dfs;
    for (NodeId root = 0; root < n; ++root) {
      if (visited[root]) continue;
      visited[root] = true;
      dfs.push_back({root, 0});
      while (!dfs.empty()) {
        Frame& frame = dfs.back();
        auto neighbors = graph.OutNeighbors(frame.node);
        if (frame.edge_pos < neighbors.size()) {
          NodeId v = neighbors[frame.edge_pos++];
          if (!visited[v]) {
            visited[v] = true;
            dfs.push_back({v, 0});
          }
          continue;
        }
        finish_order.push_back(frame.node);
        dfs.pop_back();
      }
    }
  }

  // Pass 2: DFS on the reverse graph in decreasing finish time; each tree
  // is one SCC, discovered in topological order of the condensation.
  Digraph reversed = graph.Reversed();
  component->assign(n, kInvalidNode);
  std::vector<NodeId> stack;
  for (auto it = finish_order.rbegin(); it != finish_order.rend(); ++it) {
    NodeId root = *it;
    if ((*component)[root] != kInvalidNode) continue;
    std::vector<NodeId> members;
    stack.push_back(root);
    (*component)[root] = root;  // temporary label
    while (!stack.empty()) {
      NodeId u = stack.back();
      stack.pop_back();
      members.push_back(u);
      for (NodeId v : reversed.OutNeighbors(u)) {
        if ((*component)[v] == kInvalidNode) {
          (*component)[v] = root;
          stack.push_back(v);
        }
      }
    }
    NodeId label = *std::min_element(members.begin(), members.end());
    for (NodeId u : members) (*component)[u] = label;
    on_component(label, members);
  }
}

}  // namespace

std::vector<Edge> CondensationOfKosaraju(const Digraph& graph,
                                         SccResult* scc,
                                         std::vector<NodeId>* order) {
  order->clear();
  RunKosaraju(graph, &scc->component,
              [&](NodeId label, const std::vector<NodeId>&) {
                order->push_back(label);
              });
  // Discovery order is topological; the shared contract wants reverse
  // topological (successors first), matching CondensationOf.
  std::reverse(order->begin(), order->end());
  std::vector<Edge> dag_edges;
  for (NodeId u = 0; u < graph.node_count(); ++u) {
    NodeId cu = scc->component[u];
    for (NodeId v : graph.OutNeighbors(u)) {
      NodeId cv = scc->component[v];
      if (cu != cv) dag_edges.push_back(Edge{cu, cv});
    }
  }
  return dag_edges;
}

SccResult KosarajuScc(const Digraph& graph) {
  SccResult result;
  RunKosaraju(graph, &result.component,
              [](NodeId, const std::vector<NodeId>&) {});
  return result;
}

}  // namespace ioscc
