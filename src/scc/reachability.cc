#include "scc/reachability.h"

#include <algorithm>

#include "util/random.h"

namespace ioscc {
namespace {

// One randomized post-order interval labeling of the DAG: children are
// explored in an order derived from `shuffle_key`, so independent
// labelings prune different false positives.
void BuildLabeling(const Digraph& dag, Rng* rng,
                   std::vector<uint32_t>* low, std::vector<uint32_t>* post) {
  const NodeId n = dag.node_count();
  low->assign(n, 0);
  post->assign(n, 0);
  std::vector<uint8_t> state(n, 0);  // 0 new, 1 on stack, 2 done

  // Random root visiting order (and a per-run neighbor rotation) gives the
  // labelings their independence.
  std::vector<NodeId> roots(n);
  for (NodeId v = 0; v < n; ++v) roots[v] = v;
  for (size_t i = roots.size(); i > 1; --i) {
    std::swap(roots[i - 1], roots[rng->Uniform(i)]);
  }

  uint32_t counter = 0;
  struct Frame {
    NodeId node;
    size_t edge_pos;
    size_t rotation;
  };
  std::vector<Frame> stack;
  for (NodeId root : roots) {
    if (state[root] != 0) continue;
    state[root] = 1;
    stack.push_back(
        {root, 0, dag.OutDegree(root) ? rng->Uniform(dag.OutDegree(root))
                                      : 0});
    while (!stack.empty()) {
      Frame& frame = stack.back();
      auto neighbors = dag.OutNeighbors(frame.node);
      if (frame.edge_pos < neighbors.size()) {
        // Rotated scan order: start at a random offset per node.
        NodeId next = neighbors[(frame.edge_pos + frame.rotation) %
                                neighbors.size()];
        ++frame.edge_pos;
        if (state[next] == 0) {
          state[next] = 1;
          stack.push_back({next, 0,
                           dag.OutDegree(next)
                               ? rng->Uniform(dag.OutDegree(next))
                               : 0});
        }
        continue;
      }
      NodeId v = frame.node;
      uint32_t my_low = counter;
      for (NodeId w : dag.OutNeighbors(v)) {
        my_low = std::min(my_low, (*low)[w]);
      }
      (*post)[v] = counter++;
      (*low)[v] = std::min(my_low, (*post)[v]);
      state[v] = 2;
      stack.pop_back();
    }
  }
}

}  // namespace

GrailIndex::GrailIndex(const Digraph& dag, int num_labelings,
                       uint64_t seed) {
  Rng rng(seed);
  labelings_.resize(std::max(1, num_labelings));
  for (Labeling& labeling : labelings_) {
    BuildLabeling(dag, &rng, &labeling.low, &labeling.post);
  }
}

bool GrailIndex::MayReach(NodeId u, NodeId v) const {
  // u can reach v only if v's interval nests in u's in EVERY labeling.
  for (const Labeling& l : labelings_) {
    if (l.low[u] > l.low[v] || l.post[v] > l.post[u]) return false;
  }
  return true;
}

bool GrailIndex::Reaches(const Digraph& dag, NodeId u, NodeId v) const {
  if (u == v) return true;
  if (!MayReach(u, v)) return false;
  // Pruned DFS: skip any branch the filter can refute.
  std::vector<NodeId> stack = {u};
  std::vector<bool> seen(dag.node_count(), false);
  seen[u] = true;
  while (!stack.empty()) {
    NodeId x = stack.back();
    stack.pop_back();
    for (NodeId w : dag.OutNeighbors(x)) {
      if (w == v) return true;
      if (!seen[w] && MayReach(w, v)) {
        seen[w] = true;
        stack.push_back(w);
      }
    }
  }
  return false;
}

ReachabilityOracle::ReachabilityOracle(const Digraph& graph,
                                       const SccResult& scc,
                                       int num_labelings, uint64_t seed)
    : component_(scc.component),
      dag_([&] {
        std::vector<Edge> dag_edges;
        for (NodeId u = 0; u < graph.node_count(); ++u) {
          for (NodeId v : graph.OutNeighbors(u)) {
            if (scc.component[u] != scc.component[v]) {
              dag_edges.push_back(
                  Edge{scc.component[u], scc.component[v]});
            }
          }
        }
        return Digraph(graph.node_count(), dag_edges);
      }()),
      index_(dag_, num_labelings, seed) {}

bool ReachabilityOracle::Reaches(NodeId u, NodeId v) const {
  NodeId cu = component_[u], cv = component_[v];
  if (cu == cv) return true;  // same SCC
  return index_.Reaches(dag_, cu, cv);
}

}  // namespace ioscc
