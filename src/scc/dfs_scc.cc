#include "scc/dfs_scc.h"

#include <memory>
#include <numeric>
#include <vector>

#include "io/edge_file.h"
#include "io/temp_dir.h"
#include "obs/trace.h"
#include "scc/checkpoint_hook.h"
#include "scc/semi_external_dfs.h"
#include "util/timer.h"

namespace ioscc {

// Algorithm 2 (DFS-SCC): two semi-external DFS fixpoints.
//
//  1. DFS tree of G with natural node priority; take its decreasing
//     postorder (the Kosaraju finish order).
//  2. Reverse G externally; DFS tree of the reversed graph with root
//     priority = that decreasing postorder.
//
// Each subtree hanging off the virtual root of the second tree is one
// SCC: root children are started in decreasing finish order, tree edges
// are real edges of the reversed graph, and the classical Kosaraju
// argument applies (see the discussion in semi_external_dfs.h).
Status DfsScc(const std::string& edge_file,
              const SemiExternalOptions& options, SccResult* result,
              RunStats* stats) {
  Timer timer;
  Deadline deadline(options.time_limit_seconds);
  double seconds_base = 0;

  EdgeFileInfo info;
  IOSCC_RETURN_IF_ERROR(ReadEdgeFileInfo(edge_file, &info));
  const NodeId n = static_cast<NodeId>(info.node_count);

  // Snapshot layouts, tagged by phase: "dfs.t1" carries the first tree
  // fixpoint; "dfs.t2" additionally carries the decreasing postorder and
  // the reversed-stream path (a scratch file of the dead process, which
  // SIGKILL leaves behind), letting resume skip tree 1 and the external
  // reverse entirely — their I/O is already in the restored ledger.
  CheckpointHook* hook = options.checkpoint;
  std::unique_ptr<DfsForest> resume_forest;
  bool resume_updated = true;
  std::vector<NodeId> resume_post;
  std::string resume_reversed;
  bool resume_t2 = false;
  bool resumed = false;
  {
    std::string phase, payload;
    if (hook != nullptr && hook->ResumeState(&phase, &payload) &&
        (phase == "dfs.t1" || phase == "dfs.t2")) {
      BlobReader reader(payload);
      resume_forest = std::make_unique<DfsForest>(DecodeDfsForest(&reader));
      resume_updated = reader.GetBool();
      if (phase == "dfs.t2") {
        reader.GetVec(&resume_post);
        resume_reversed = reader.GetString();
        resume_t2 = true;
      }
      GetRunStats(&reader, stats, &seconds_base);
      if (!reader.Done()) {
        return Status::Corruption("DFS-SCC resume state does not parse");
      }
      resumed = true;
    }
  }

  std::vector<NodeId> decreasing_post;
  if (resume_t2) {
    decreasing_post = std::move(resume_post);
  } else {
    std::vector<NodeId> priority(n);
    std::iota(priority.begin(), priority.end(), NodeId{0});
    std::unique_ptr<DfsForest> first_tree;
    DfsTreeCheckpoint ckpt;
    ckpt.hook = hook;
    if (resumed) {
      ckpt.resume_tree = resume_forest.get();
      ckpt.resume_updated = resume_updated;
    }
    if (hook != nullptr) {
      ckpt.at_boundary = [&](const DfsForest& tree, bool updated) {
        hook->AtBoundary("dfs.t1", stats->iterations, edge_file,
                         [&](BlobWriter* w) {
          EncodeDfsForest(w, tree);
          w->PutBool(updated);
          PutRunStats(w, *stats, seconds_base + timer.ElapsedSeconds());
        });
      };
    }
    TraceSpan span("dfs.first_tree", &stats->io);
    IOSCC_RETURN_IF_ERROR(BuildSemiExternalDfsTree(
        edge_file, priority, options, deadline, stats, &first_tree,
        hook != nullptr ? &ckpt : nullptr));
    decreasing_post = first_tree->DecreasingPostorder();
    resume_forest.reset();  // consumed by the first fixpoint (if at all)
  }

  std::unique_ptr<TempDir> scratch;
  IOSCC_RETURN_IF_ERROR(TempDir::Create("ioscc-dfs", &scratch));
  ScratchKeepGuard keep_guard{scratch.get(), hook};
  std::string reversed;
  if (resume_t2) {
    reversed = resume_reversed;
  } else {
    reversed = scratch->NewFilePath(".rev");
    TraceSpan span("dfs.reverse", &stats->io);
    IOSCC_RETURN_IF_ERROR(ReverseEdgeFile(edge_file, reversed, &stats->io));
  }

  std::unique_ptr<DfsForest> second_tree;
  {
    DfsTreeCheckpoint ckpt;
    ckpt.hook = hook;
    if (resume_t2) {
      ckpt.resume_tree = resume_forest.get();
      ckpt.resume_updated = resume_updated;
    }
    if (hook != nullptr) {
      ckpt.at_boundary = [&](const DfsForest& tree, bool updated) {
        hook->AtBoundary("dfs.t2", stats->iterations, reversed,
                         [&](BlobWriter* w) {
          EncodeDfsForest(w, tree);
          w->PutBool(updated);
          w->PutVec(decreasing_post);
          w->PutString(reversed);
          PutRunStats(w, *stats, seconds_base + timer.ElapsedSeconds());
        });
      };
    }
    TraceSpan span("dfs.second_tree", &stats->io);
    IOSCC_RETURN_IF_ERROR(BuildSemiExternalDfsTree(
        reversed, decreasing_post, options, deadline, stats, &second_tree,
        hook != nullptr ? &ckpt : nullptr));
  }

  second_tree->LabelRootSubtrees(&result->component);
  result->Normalize();
  stats->seconds = seconds_base + timer.ElapsedSeconds();
  keep_guard.run_ok = true;
  return Status::OK();
}

}  // namespace ioscc
