#include "scc/dfs_scc.h"

#include <memory>
#include <numeric>
#include <vector>

#include "io/edge_file.h"
#include "io/temp_dir.h"
#include "obs/trace.h"
#include "scc/semi_external_dfs.h"
#include "util/timer.h"

namespace ioscc {

// Algorithm 2 (DFS-SCC): two semi-external DFS fixpoints.
//
//  1. DFS tree of G with natural node priority; take its decreasing
//     postorder (the Kosaraju finish order).
//  2. Reverse G externally; DFS tree of the reversed graph with root
//     priority = that decreasing postorder.
//
// Each subtree hanging off the virtual root of the second tree is one
// SCC: root children are started in decreasing finish order, tree edges
// are real edges of the reversed graph, and the classical Kosaraju
// argument applies (see the discussion in semi_external_dfs.h).
Status DfsScc(const std::string& edge_file,
              const SemiExternalOptions& options, SccResult* result,
              RunStats* stats) {
  Timer timer;
  Deadline deadline(options.time_limit_seconds);

  EdgeFileInfo info;
  IOSCC_RETURN_IF_ERROR(ReadEdgeFileInfo(edge_file, &info));
  const NodeId n = static_cast<NodeId>(info.node_count);

  std::vector<NodeId> priority(n);
  std::iota(priority.begin(), priority.end(), NodeId{0});
  std::unique_ptr<DfsForest> first_tree;
  {
    TraceSpan span("dfs.first_tree", &stats->io);
    IOSCC_RETURN_IF_ERROR(BuildSemiExternalDfsTree(
        edge_file, priority, options, deadline, stats, &first_tree));
  }
  std::vector<NodeId> decreasing_post = first_tree->DecreasingPostorder();
  first_tree.reset();

  std::unique_ptr<TempDir> scratch;
  IOSCC_RETURN_IF_ERROR(TempDir::Create("ioscc-dfs", &scratch));
  const std::string reversed = scratch->NewFilePath(".rev");
  {
    TraceSpan span("dfs.reverse", &stats->io);
    IOSCC_RETURN_IF_ERROR(ReverseEdgeFile(edge_file, reversed, &stats->io));
  }

  std::unique_ptr<DfsForest> second_tree;
  {
    TraceSpan span("dfs.second_tree", &stats->io);
    IOSCC_RETURN_IF_ERROR(BuildSemiExternalDfsTree(
        reversed, decreasing_post, options, deadline, stats, &second_tree));
  }

  second_tree->LabelRootSubtrees(&result->component);
  result->Normalize();
  stats->seconds = timer.ElapsedSeconds();
  return Status::OK();
}

}  // namespace ioscc
