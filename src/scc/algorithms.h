// Uniform entry point over every SCC algorithm in the library.
//
// Benches, examples and the property-test sweeps dispatch by name through
// this registry so new algorithms plug into every harness automatically.

#ifndef IOSCC_SCC_ALGORITHMS_H_
#define IOSCC_SCC_ALGORITHMS_H_

#include <string>
#include <vector>

#include "scc/options.h"
#include "scc/scc_result.h"
#include "util/status.h"

namespace ioscc {

enum class SccAlgorithm {
  kOnePhaseBatch,  // 1PB-SCC (Algorithm 8)   — the paper's best
  kOnePhase,       // 1P-SCC  (Algorithm 6+7)
  kTwoPhase,       // 2P-SCC  (Algorithm 3-5)
  kDfs,            // DFS-SCC (Sibeyn et al. baseline)
  kEm,             // EM-SCC  (Cosgaya-Lozano & Zeh baseline)
};

// Canonical short name ("1PB-SCC", "1P-SCC", "2P-SCC", "DFS-SCC",
// "EM-SCC").
const char* AlgorithmName(SccAlgorithm algorithm);

// Parses a name (case-sensitive, with or without the "-SCC" suffix).
Status ParseAlgorithm(const std::string& name, SccAlgorithm* algorithm);

// All algorithms in the paper's reporting order.
std::vector<SccAlgorithm> AllAlgorithms();

// Runs `algorithm` on the edge file at `path`.
Status RunScc(SccAlgorithm algorithm, const std::string& path,
              const SemiExternalOptions& options, SccResult* result,
              RunStats* stats);

}  // namespace ioscc

#endif  // IOSCC_SCC_ALGORITHMS_H_
