// Uniform entry point over every SCC algorithm in the library.
//
// Benches, examples and the property-test sweeps dispatch by name through
// this registry so new algorithms plug into every harness automatically.

#ifndef IOSCC_SCC_ALGORITHMS_H_
#define IOSCC_SCC_ALGORITHMS_H_

#include <string>
#include <vector>

#include "graph/digraph.h"
#include "scc/options.h"
#include "scc/scc_result.h"
#include "util/status.h"

namespace ioscc {

enum class SccAlgorithm {
  kOnePhaseBatch,  // 1PB-SCC (Algorithm 8)   — the paper's best
  kOnePhase,       // 1P-SCC  (Algorithm 6+7)
  kTwoPhase,       // 2P-SCC  (Algorithm 3-5)
  kDfs,            // DFS-SCC (Sibeyn et al. baseline)
  kEm,             // EM-SCC  (Cosgaya-Lozano & Zeh baseline)
};

// Canonical short name ("1PB-SCC", "1P-SCC", "2P-SCC", "DFS-SCC",
// "EM-SCC").
const char* AlgorithmName(SccAlgorithm algorithm);

// Parses a name (case-sensitive, with or without the "-SCC" suffix).
Status ParseAlgorithm(const std::string& name, SccAlgorithm* algorithm);

// All algorithms in the paper's reporting order.
std::vector<SccAlgorithm> AllAlgorithms();

// Runs `algorithm` on the edge file at `path`.
Status RunScc(SccAlgorithm algorithm, const std::string& path,
              const SemiExternalOptions& options, SccResult* result,
              RunStats* stats);

// ---- In-memory batch kernels / oracles -------------------------------
//
// The same registry idea for the RAM-only kernels: 1PB-SCC dispatches
// batch graphs by BatchKernel, and the oracle tests sweep every kernel
// against every generator family.

// Canonical kernel name ("tarjan", "kosaraju", "parallel_fb").
const char* BatchKernelName(BatchKernel kernel);

// Parses a kernel name (as produced by BatchKernelName).
Status ParseBatchKernel(const std::string& name, BatchKernel* kernel);

// All kernels, default first.
std::vector<BatchKernel> AllBatchKernels();

// Runs `kernel` on an in-memory graph as an oracle and returns the
// normalized partition. `threads`/`granularity` follow the
// SemiExternalOptions fields of the same name (0 = auto / default) and
// are ignored by the serial kernels; kParallelFb builds a private pool
// for the call when threads != 1.
SccResult RunInMemoryKernel(BatchKernel kernel, const Digraph& graph,
                            uint32_t threads = 1, uint32_t granularity = 0);

}  // namespace ioscc

#endif  // IOSCC_SCC_ALGORITHMS_H_
