#include "scc/one_phase.h"

#include <algorithm>
#include <memory>
#include <vector>

#include "io/edge_file.h"
#include "io/temp_dir.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "scc/checkpoint_hook.h"
#include "scc/pass_metrics.h"
#include "scc/spanning_tree.h"
#include "scc/union_find.h"
#include "util/logging.h"
#include "util/timer.h"

namespace ioscc {
namespace {

// Early-rejection bounds (Section 7.2). A representative r can be removed
// once depth(r) < drank_min or depth(r) > drank_max, where the bounds are
// min/max over "qualifying" edges (a, b) with depth(a) >= depth(b) of
// depth(b) / depth(a) respectively. Soundness: every remaining cycle has a
// minimum-depth node m whose entering edge satisfies depth(p) >= depth(m)
// (m is the minimum) and a maximum-depth node M whose leaving edge
// satisfies depth(M) >= depth(next); hence drank_min <= depth(m) <= depth
// of every cycle node <= depth(M) <= drank_max, so nodes outside the band
// lie on no cycle and their SCC is final.
//
// When the bounds are accumulated during a *mutating* scan, depths move
// under us: contraction lowers depths (harmless: the triggering backward
// edge itself qualifies with the new, lower depth), while pushdown raises
// them — so we additionally fold the post-move maximum depth of every
// pushed-down subtree into drank_max. options.strict_rejection instead
// computes the bounds in a dedicated frozen scan, which needs no widening.
struct RejectBounds {
  uint32_t drank_min = UINT32_MAX;
  uint32_t drank_max = 0;

  void NoteQualifying(uint32_t depth_from, uint32_t depth_to) {
    if (depth_from >= depth_to) {
      drank_min = std::min(drank_min, depth_to);
      drank_max = std::max(drank_max, depth_from);
    }
  }
};

class OnePhaseRunner {
 public:
  OnePhaseRunner(const std::string& edge_file,
                 const SemiExternalOptions& options, SccResult* result,
                 RunStats* stats)
      : input_path_(edge_file),
        options_(options),
        result_(result),
        stats_(stats) {}

  Status Run();

 private:
  Status Iterate(bool* updated);
  Status RejectFrozenScan(RejectBounds* bounds);
  void ApplyRejection(const RejectBounds& bounds);
  uint64_t ContractBackward(NodeId desc_rep, NodeId anc_rep);
  void EncodeState(BlobWriter* w, bool updated, double seconds) const;
  bool DecodeState(BlobReader* r, bool* updated);

  const std::string input_path_;
  const SemiExternalOptions& options_;
  SccResult* result_;
  RunStats* stats_;

  std::unique_ptr<TempDir> scratch_;
  std::string current_path_;
  std::unique_ptr<EdgeScanner> scanner_;

  NodeId n_ = 0;
  std::unique_ptr<SpanningTree> tree_;
  std::unique_ptr<UnionFind> uf_;
  std::vector<bool> removed_;       // rep rejected (tree-detached, final)
  std::vector<NodeId> scratch_path_;

  uint64_t tau_abs_ = 0;            // early-acceptance threshold (0 = off)
  bool pending_rewrite_ = false;    // rewrite the stream on the next scan
  uint64_t live_edges_ = 0;
  uint64_t merged_this_iter_ = 0;
  uint64_t rejected_this_iter_ = 0;
  RejectBounds loose_bounds_;       // accumulated during mutating scans
  Deadline deadline_;
  double seconds_base_ = 0;         // wall time restored from a snapshot
};

// Everything the loop needs to continue from a pass boundary. Per-pass
// scratch (loose_bounds_, merged_this_iter_, ...) is reset at the top of
// each pass and deliberately not saved; tau_abs_ and the iteration cap
// are recomputed deterministically from the options.
void OnePhaseRunner::EncodeState(BlobWriter* w, bool updated,
                                 double seconds) const {
  w->PutU32(n_);
  tree_->EncodeTo(w);
  uf_->EncodeTo(w);
  w->PutBoolVec(removed_);
  w->PutBool(pending_rewrite_);
  w->PutU64(live_edges_);
  w->PutString(current_path_);
  w->PutBool(updated);
  PutRunStats(w, *stats_, seconds);
}

bool OnePhaseRunner::DecodeState(BlobReader* r, bool* updated) {
  n_ = r->GetU32();
  tree_ = std::make_unique<SpanningTree>(0);
  tree_->DecodeFrom(r);
  uf_ = std::make_unique<UnionFind>(0);
  uf_->DecodeFrom(r);
  r->GetBoolVec(&removed_);
  pending_rewrite_ = r->GetBool();
  live_edges_ = r->GetU64();
  current_path_ = r->GetString();
  *updated = r->GetBool();
  GetRunStats(r, stats_, &seconds_base_);
  return r->Done();
}

uint64_t OnePhaseRunner::ContractBackward(NodeId desc_rep, NodeId anc_rep) {
  scratch_path_.clear();
  tree_->ContractPathInto(desc_rep, anc_rep, &scratch_path_);
  for (NodeId w : scratch_path_) uf_->UnionInto(anc_rep, w, anc_rep);
  if (tau_abs_ > 0 && uf_->SetSize(anc_rep) >= tau_abs_) {
    pending_rewrite_ = true;  // early acceptance: reduce the graph
  }
  return scratch_path_.size();
}

Status OnePhaseRunner::Iterate(bool* updated) {
  // Optionally rewrite the stream while scanning it (early acceptance /
  // purge of rejected nodes): surviving edges are remapped to current
  // representatives and written to a fresh file.
  std::unique_ptr<EdgeWriter> writer;
  const bool rewriting = pending_rewrite_;
  std::string next_path;
  if (rewriting) {
    pending_rewrite_ = false;
    next_path = scratch_->NewFilePath(".edges");
    IOSCC_RETURN_IF_ERROR(EdgeWriter::Create(next_path, n_,
                                             options_.scratch_block_size,
                                             &stats_->io, &writer));
  }

  scanner_->Reset();
  Edge edge;
  uint64_t scanned = 0;
  while (scanner_->Next(&edge)) {
    if ((++scanned & 0xFFFF) == 0 && deadline_.Expired()) {
      return Status::Incomplete("1P-SCC hit the time limit");
    }
    NodeId a = uf_->Find(edge.from);
    NodeId b = uf_->Find(edge.to);
    if (a == b || removed_[a] || removed_[b]) continue;  // dead edge

    const uint32_t depth_a = tree_->depth(a);
    const uint32_t depth_b = tree_->depth(b);
    loose_bounds_.NoteQualifying(depth_a, depth_b);

    if (tree_->IsAncestor(b, a)) {
      // Backward edge: early acceptance — contract the path b..a now.
      uint64_t merged = ContractBackward(a, b);
      merged_this_iter_ += merged;
      stats_->contractions += merged;
      *updated = true;
      continue;  // edge is intra-SCC now; never write it out
    }
    if (!tree_->IsAncestor(a, b) && depth_a >= depth_b) {
      // Up-edge: pushdown T ⇓ (a, b).
      uint32_t moved_max = 0;
      tree_->Reparent(b, a, &moved_max);
      loose_bounds_.drank_max = std::max(loose_bounds_.drank_max, moved_max);
      ++stats_->pushdowns;
      *updated = true;
    }
    if (writer != nullptr) {
      IOSCC_RETURN_IF_ERROR(writer->Add(Edge{a, b}));
    }
  }
  IOSCC_RETURN_IF_ERROR(scanner_->status());

  if (writer != nullptr) {
    IOSCC_RETURN_IF_ERROR(writer->Finish());
    live_edges_ = writer->edge_count();
    current_path_ = next_path;
    scanner_.reset();
    IOSCC_RETURN_IF_ERROR(
        EdgeScanner::Open(current_path_, &stats_->io, &scanner_));
  }
  return Status::OK();
}

Status OnePhaseRunner::RejectFrozenScan(RejectBounds* bounds) {
  TraceSpan span("1p.reject_scan", &stats_->io);
  scanner_->Reset();
  Edge edge;
  while (scanner_->Next(&edge)) {
    NodeId a = uf_->Find(edge.from);
    NodeId b = uf_->Find(edge.to);
    if (a == b || removed_[a] || removed_[b]) continue;
    bounds->NoteQualifying(tree_->depth(a), tree_->depth(b));
  }
  return scanner_->status();
}

void OnePhaseRunner::ApplyRejection(const RejectBounds& bounds) {
  // Decide against one consistent depth snapshot first: removing a node
  // splices its children one level up, so interleaving removals with the
  // band test would compare later nodes' *shifted* depths against bounds
  // computed for the snapshot.
  std::vector<NodeId> doomed;
  for (NodeId r = 0; r < n_; ++r) {
    if (removed_[r] || uf_->Find(r) != r) continue;
    uint32_t d = tree_->depth(r);
    if (d < bounds.drank_min || d > bounds.drank_max) doomed.push_back(r);
  }
  for (NodeId r : doomed) {
    // r's SCC is final: report and remove it from the tree and graph.
    removed_[r] = true;
    tree_->Remove(r);
    // Counted in graph-node (representative) units, matching Table 1's
    // "# of Nodes Reduced" (the members of r's set were already counted
    // when they were contracted into r).
    ++rejected_this_iter_;
    ++stats_->nodes_rejected;
    pending_rewrite_ = true;  // purge its edges on the next scan
  }
}

Status OnePhaseRunner::Run() {
  Timer timer;
  deadline_ = Deadline(options_.time_limit_seconds);

  IOSCC_RETURN_IF_ERROR(TempDir::Create("ioscc-1p", &scratch_));
  ScratchKeepGuard keep_guard{scratch_.get(), options_.checkpoint};

  bool updated = true;
  bool resumed = false;
  std::string resume_phase, resume_payload;
  if (options_.checkpoint != nullptr &&
      options_.checkpoint->ResumeState(&resume_phase, &resume_payload) &&
      resume_phase == "1p") {
    BlobReader reader(resume_payload);
    if (!DecodeState(&reader, &updated)) {
      return Status::Corruption("1P-SCC resume state does not parse");
    }
    // Re-open the stream the snapshot pointed at (possibly a rewrite in
    // the dead process's scratch dir, which SIGKILL leaves behind). The
    // open is replay work, booked to the resume ledger so the run ledger
    // ends byte-identical to the uninterrupted run.
    IoStats before_resume = stats_->io;
    IOSCC_RETURN_IF_ERROR(
        EdgeScanner::Open(current_path_, &stats_->io, &scanner_));
    options_.checkpoint->ChargeResumeIo(stats_->io - before_resume);
    stats_->io = before_resume;
    resumed = true;
  }

  // Baseline for per-iteration I/O deltas; the first iteration also
  // absorbs the setup I/O below so the deltas sum to the run total.
  IoStats io_mark = stats_->io;

  if (!resumed) {
    current_path_ = input_path_;
    IOSCC_RETURN_IF_ERROR(
        EdgeScanner::Open(current_path_, &stats_->io, &scanner_));
    n_ = static_cast<NodeId>(scanner_->node_count());
    live_edges_ = scanner_->edge_count();
    tree_ = std::make_unique<SpanningTree>(n_);
    uf_ = std::make_unique<UnionFind>(n_ + 1);
    removed_.assign(n_, false);
  }
  tau_abs_ = options_.tau_fraction < 0
                 ? 0
                 : std::max<uint64_t>(
                       2, static_cast<uint64_t>(options_.tau_fraction *
                                                static_cast<double>(n_)));

  const uint64_t max_iterations =
      options_.max_iterations > 0 ? options_.max_iterations
                                  : static_cast<uint64_t>(n_) + 16;

  while (updated) {
    if (stats_->iterations >= max_iterations) {
      return Status::Incomplete("1P-SCC exceeded iteration cap");
    }
    if (deadline_.Expired()) {
      return Status::Incomplete("1P-SCC hit the time limit");
    }
    updated = false;
    ++stats_->iterations;
    merged_this_iter_ = 0;
    rejected_this_iter_ = 0;
    loose_bounds_ = RejectBounds();

    TraceSpan pass_span("1p.pass", &stats_->io);
    const uint64_t edges_before = live_edges_;
    IOSCC_RETURN_IF_ERROR(Iterate(&updated));

    if (options_.reject_interval > 0 &&
        stats_->iterations % options_.reject_interval == 0) {
      RejectBounds bounds = loose_bounds_;
      if (options_.strict_rejection) {
        bounds = RejectBounds();
        IOSCC_RETURN_IF_ERROR(RejectFrozenScan(&bounds));
      }
      ApplyRejection(bounds);
    }
    pass_span.Close();
    stats_->nodes_accepted += merged_this_iter_;

    const PassCounters& counters = PassCounters::Get();
    counters.passes->Increment();
    counters.nodes_accepted->Add(merged_this_iter_);
    counters.nodes_rejected->Add(rejected_this_iter_);
    counters.contractions->Add(merged_this_iter_);

    IterationStats iter_stats;
    iter_stats.nodes_reduced = merged_this_iter_ + rejected_this_iter_;
    iter_stats.edges_reduced =
        edges_before > live_edges_ ? edges_before - live_edges_ : 0;
    iter_stats.live_edges = live_edges_;
    iter_stats.live_nodes =
        n_ - stats_->nodes_rejected -
        (stats_->contractions /* merged members no longer count */);
    iter_stats.io = stats_->io - io_mark;
    io_mark = stats_->io;
    stats_->per_iteration.push_back(iter_stats);
    TelemetryOnIteration(stats_->iterations, iter_stats.live_nodes,
                         iter_stats.live_edges);
    if (options_.checkpoint != nullptr) {
      options_.checkpoint->AtBoundary(
          "1p", stats_->iterations, current_path_, [&](BlobWriter* w) {
            EncodeState(w, updated,
                        seconds_base_ + timer.ElapsedSeconds());
          });
    }
    if (options_.progress &&
        !options_.progress(stats_->iterations, iter_stats)) {
      return Status::Incomplete("1P-SCC cancelled by progress callback");
    }
    LogDebug("1P iter %llu: merged=%llu rejected=%llu edges=%llu",
             static_cast<unsigned long long>(stats_->iterations),
             static_cast<unsigned long long>(merged_this_iter_),
             static_cast<unsigned long long>(rejected_this_iter_),
             static_cast<unsigned long long>(live_edges_));
  }

  result_->component.resize(n_);
  for (NodeId v = 0; v < n_; ++v) result_->component[v] = uf_->Find(v);
  result_->Normalize();
  stats_->seconds = seconds_base_ + timer.ElapsedSeconds();
  keep_guard.run_ok = true;
  return Status::OK();
}

}  // namespace

Status OnePhaseScc(const std::string& edge_file,
                   const SemiExternalOptions& options, SccResult* result,
                   RunStats* stats) {
  OnePhaseRunner runner(edge_file, options, result, stats);
  return runner.Run();
}

}  // namespace ioscc
