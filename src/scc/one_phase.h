// 1P-SCC: the paper's single-phase single-tree algorithm (Section 7,
// Algorithm 6) with the early-acceptance and early-rejection
// optimizations (Algorithm 7).
//
// One loop over the edge stream that both shapes the BR-Tree and contracts
// SCCs as soon as their cycles are seen:
//
//   * backward edge (u, v): contract the tree path v..u immediately
//     (early acceptance of a partial SCC); drank(u) = depth(u) thereafter.
//   * up-edge (depth(u) >= depth(v), no ancestor relation): pushdown
//     T ⇓ (u, v).
//
// Graph reduction: once some contracted SCC reaches tau = tau_fraction*|V|
// nodes (or nodes were rejected), the next scan simultaneously rewrites
// the edge stream — dropping intra-SCC edges, dropping edges of removed
// nodes, and remapping endpoints to their representatives — so later
// iterations scan a strictly smaller file. Early rejection (every
// reject_interval iterations) removes representatives whose depth lies
// outside [drank_min, drank_max] and reports their sets as final SCCs;
// see the bound-soundness discussion in the .cc file.

#ifndef IOSCC_SCC_ONE_PHASE_H_
#define IOSCC_SCC_ONE_PHASE_H_

#include <string>

#include "scc/options.h"
#include "scc/scc_result.h"
#include "util/status.h"

namespace ioscc {

Status OnePhaseScc(const std::string& edge_file,
                   const SemiExternalOptions& options, SccResult* result,
                   RunStats* stats);

}  // namespace ioscc

#endif  // IOSCC_SCC_ONE_PHASE_H_
