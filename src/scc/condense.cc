#include "scc/condense.h"

#include <memory>

#include "io/edge_file.h"

namespace ioscc {

Status WriteCondensation(const std::string& graph_path, const SccResult& scc,
                         const std::string& dag_path,
                         CondensationStats* stats, IoStats* io) {
  std::unique_ptr<EdgeScanner> scanner;
  IOSCC_RETURN_IF_ERROR(EdgeScanner::Open(graph_path, io, &scanner));
  if (scanner->node_count() != scc.node_count()) {
    return Status::InvalidArgument(
        "partition size does not match the graph");
  }
  std::unique_ptr<EdgeWriter> writer;
  IOSCC_RETURN_IF_ERROR(EdgeWriter::Create(dag_path, scanner->node_count(),
                                           scanner->info().block_size, io,
                                           &writer));
  CondensationStats local;
  Edge edge;
  while (scanner->Next(&edge)) {
    NodeId cu = scc.component[edge.from];
    NodeId cv = scc.component[edge.to];
    if (cu == cv) {
      ++local.dropped_intra;
      continue;
    }
    IOSCC_RETURN_IF_ERROR(writer->Add(Edge{cu, cv}));
  }
  IOSCC_RETURN_IF_ERROR(scanner->status());
  IOSCC_RETURN_IF_ERROR(writer->Finish());
  local.edge_count = writer->edge_count();
  local.component_count = scc.ComponentCount();
  if (stats != nullptr) *stats = local;
  return Status::OK();
}

Status TopologicalLevels(const std::string& dag_path,
                         std::vector<uint32_t>* levels, uint64_t* scans,
                         IoStats* io) {
  std::unique_ptr<EdgeScanner> scanner;
  IOSCC_RETURN_IF_ERROR(EdgeScanner::Open(dag_path, io, &scanner));
  levels->assign(scanner->node_count(), 0);
  uint64_t scan_count = 0;
  bool changed = true;
  // Longest-path relaxation converges after depth(DAG)+1 scans on a DAG;
  // a cycle would relax forever, so cap at node_count + 1 and report.
  const uint64_t cap = scanner->node_count() + 1;
  while (changed) {
    if (scan_count > cap) {
      return Status::InvalidArgument(
          "TopologicalLevels input contains a cycle");
    }
    changed = false;
    ++scan_count;
    scanner->Reset();
    Edge edge;
    while (scanner->Next(&edge)) {
      if ((*levels)[edge.to] < (*levels)[edge.from] + 1) {
        (*levels)[edge.to] = (*levels)[edge.from] + 1;
        changed = true;
      }
    }
    IOSCC_RETURN_IF_ERROR(scanner->status());
  }
  if (scans != nullptr) *scans = scan_count;
  return Status::OK();
}

}  // namespace ioscc
