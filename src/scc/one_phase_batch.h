// 1PB-SCC: 1P-SCC plus batch edge reduction (Section 7.3, Algorithm 8).
//
// Instead of classifying edges one at a time against the tree (whose
// ancestor checks cost O(depth) each), edges are read in memory-budget
// sized batches. For each batch B_i the algorithm:
//
//   1. forms the in-memory graph G'' = T ∪ B_i (tree edges plus batch
//      edges over current representatives),
//   2. computes all SCCs of G'' with the in-memory oracle and contracts
//      every multi-member SCC (early acceptance at batch granularity),
//   3. condenses G'' to a DAG, topologically sorts it, and rebuilds the
//      BR-Tree as the longest-path forest from the virtual root using the
//      dynamic program drank(v) = max over in-edges (u, v) of drank(u)+1 —
//      which is exactly the paper's pushdown cascade without per-edge
//      subtree walks.
//
// Early acceptance rewrites and early rejection work as in 1P-SCC, except
// that rejection always uses a frozen classification scan: batch
// processing rewrites all depths wholesale, so bounds accumulated during a
// mutating pass would not be meaningful (see one_phase.cc for the bound
// soundness argument).

#ifndef IOSCC_SCC_ONE_PHASE_BATCH_H_
#define IOSCC_SCC_ONE_PHASE_BATCH_H_

#include <string>

#include "scc/options.h"
#include "scc/scc_result.h"
#include "util/status.h"

namespace ioscc {

Status OnePhaseBatchScc(const std::string& edge_file,
                        const SemiExternalOptions& options, SccResult* result,
                        RunStats* stats);

}  // namespace ioscc

#endif  // IOSCC_SCC_ONE_PHASE_BATCH_H_
