// Tarjan's in-memory SCC algorithm (iterative).
//
// Linear-time oracle for correctness tests and the in-memory kernel inside
// 1PB-SCC (per-batch graphs) and EM-SCC (per-partition graphs).

#ifndef IOSCC_SCC_TARJAN_H_
#define IOSCC_SCC_TARJAN_H_

#include "graph/digraph.h"
#include "scc/scc_result.h"

namespace ioscc {

// Computes the SCC partition of `graph`. Labels are normalized.
// Also usable as a condensation primitive: see CondensationOf below.
SccResult TarjanScc(const Digraph& graph);

// The condensation (DAG of SCCs) of `graph`:
//   * `scc` receives the (normalized) partition,
//   * `order` receives component representatives in a reverse topological
//     order of the condensation (every edge goes from a component later in
//     `order` to one earlier — Tarjan emits components in that order),
//   * returns the condensation edges with components named by their
//     canonical representative (self-loops removed, duplicates possible).
std::vector<Edge> CondensationOf(const Digraph& graph, SccResult* scc,
                                 std::vector<NodeId>* order);

}  // namespace ioscc

#endif  // IOSCC_SCC_TARJAN_H_
