#include "scc/drank.h"

#include <algorithm>

#include "graph/digraph.h"
#include "scc/tarjan.h"

namespace ioscc {

DrankResult ComputeDrank(const SpanningTree& tree,
                         const std::vector<NodeId>& backedge) {
  const NodeId n = tree.real_node_count();
  const NodeId total = n + 1;  // + virtual root

  // Reachability structure: tree edges (parent -> child) + stored backward
  // edges. Note the virtual root participates (its children are reachable
  // from it) but nothing reaches it via backedges, so its drank stays 0.
  std::vector<Edge> edges;
  edges.reserve(2 * static_cast<size_t>(n));
  for (NodeId v = 0; v < n; ++v) {
    NodeId p = tree.parent(v);
    if (p != kInvalidNode) edges.push_back(Edge{p, v});
    if (backedge[v] != kInvalidNode) edges.push_back(Edge{v, backedge[v]});
  }
  Digraph structure(total, edges);

  SccResult comp;
  std::vector<NodeId> emit_order;  // successors emitted before predecessors
  std::vector<Edge> dag_edges = CondensationOf(structure, &comp, &emit_order);

  // Per-component minimum over members.
  DrankResult result;
  result.drank.assign(total, 0);
  result.dlink.assign(total, kInvalidNode);
  std::vector<uint32_t> comp_min(total, UINT32_MAX);
  std::vector<NodeId> comp_arg(total, kInvalidNode);
  for (NodeId v = 0; v < total; ++v) {
    NodeId c = comp.component[v];
    uint32_t d = tree.depth(v);
    if (d < comp_min[c] || (d == comp_min[c] && v < comp_arg[c])) {
      comp_min[c] = d;
      comp_arg[c] = v;
    }
  }

  // Out-adjacency of the condensation, grouped by source component.
  std::vector<uint32_t> head(total + 1, 0);
  for (const Edge& e : dag_edges) ++head[e.from + 1];
  for (size_t i = 1; i < head.size(); ++i) head[i] += head[i - 1];
  std::vector<NodeId> adj(dag_edges.size());
  {
    std::vector<uint32_t> cursor(head.begin(), head.end() - 1);
    for (const Edge& e : dag_edges) adj[cursor[e.from]++] = e.to;
  }

  // Tarjan emits components with all successors already emitted, so one
  // pass in emission order finalizes the minimum reachable depth.
  for (NodeId c : emit_order) {
    for (uint32_t i = head[c]; i < head[c + 1]; ++i) {
      NodeId succ = adj[i];
      if (comp_min[succ] < comp_min[c] ||
          (comp_min[succ] == comp_min[c] && comp_arg[succ] < comp_arg[c])) {
        comp_min[c] = comp_min[succ];
        comp_arg[c] = comp_arg[succ];
      }
    }
  }

  for (NodeId v = 0; v < total; ++v) {
    NodeId c = comp.component[v];
    result.drank[v] = comp_min[c];
    result.dlink[v] = comp_arg[c];
  }
  return result;
}

}  // namespace ioscc
