#include "scc/spanning_tree.h"

#include <algorithm>
#include <cassert>

namespace ioscc {

SpanningTree::SpanningTree(NodeId n) : n_(n) {
  const size_t total = static_cast<size_t>(n) + 1;
  parent_.assign(total, kInvalidNode);
  depth_.assign(total, 1);
  first_child_.assign(total, kInvalidNode);
  next_sibling_.assign(total, kInvalidNode);
  prev_sibling_.assign(total, kInvalidNode);

  depth_[n_] = 0;
  // Star: children are linked in id order (node 0 first).
  for (NodeId v = 0; v < n; ++v) {
    parent_[v] = n_;
    if (v + 1 < n) next_sibling_[v] = v + 1;
    if (v > 0) prev_sibling_[v] = v - 1;
  }
  if (n > 0) first_child_[n_] = 0;
}

bool SpanningTree::IsAncestor(NodeId anc, NodeId desc) const {
  if (depth_[anc] > depth_[desc]) return false;
  NodeId v = desc;
  while (depth_[v] > depth_[anc]) v = parent_[v];
  return v == anc;
}

void SpanningTree::Detach(NodeId v) {
  NodeId p = parent_[v];
  assert(p != kInvalidNode);
  if (first_child_[p] == v) first_child_[p] = next_sibling_[v];
  if (prev_sibling_[v] != kInvalidNode) {
    next_sibling_[prev_sibling_[v]] = next_sibling_[v];
  }
  if (next_sibling_[v] != kInvalidNode) {
    prev_sibling_[next_sibling_[v]] = prev_sibling_[v];
  }
  prev_sibling_[v] = next_sibling_[v] = kInvalidNode;
  parent_[v] = kInvalidNode;
}

void SpanningTree::Attach(NodeId v, NodeId parent) {
  assert(parent_[v] == kInvalidNode);
  parent_[v] = parent;
  NodeId head = first_child_[parent];
  next_sibling_[v] = head;
  if (head != kInvalidNode) prev_sibling_[head] = v;
  first_child_[parent] = v;
  prev_sibling_[v] = kInvalidNode;
}

uint32_t SpanningTree::SetSubtreeDepths(NodeId v, uint32_t base_depth) {
  // Depth-first, assigning depth relative to the (already correct) parent.
  depth_[v] = base_depth;
  uint32_t max_depth = base_depth;
  NodeId node = v;
  while (true) {
    if (first_child_[node] != kInvalidNode) {
      node = first_child_[node];
      depth_[node] = depth_[parent_[node]] + 1;
      max_depth = std::max(max_depth, depth_[node]);
      continue;
    }
    while (node != v && next_sibling_[node] == kInvalidNode) {
      node = parent_[node];
    }
    if (node == v) return max_depth;
    node = next_sibling_[node];
    depth_[node] = depth_[parent_[node]] + 1;
    max_depth = std::max(max_depth, depth_[node]);
  }
}

void SpanningTree::Reparent(NodeId v, NodeId u, uint32_t* moved_max_depth) {
  assert(v != root());
  assert(!IsAncestor(v, u) && "cannot paste a subtree under itself");
  Detach(v);
  Attach(v, u);
  uint32_t max_depth = SetSubtreeDepths(v, depth_[u] + 1);
  if (moved_max_depth != nullptr) *moved_max_depth = max_depth;
}

void SpanningTree::SpliceChildrenTo(NodeId from, NodeId to) {
  NodeId child = first_child_[from];
  while (child != kInvalidNode) {
    NodeId next = next_sibling_[child];
    Detach(child);
    Attach(child, to);
    SetSubtreeDepths(child, depth_[to] + 1);
    child = next;
  }
}

void SpanningTree::Remove(NodeId v) {
  assert(v != root());
  NodeId p = parent_[v];
  SpliceChildrenTo(v, p);
  Detach(v);
}

void SpanningTree::RebuildFromParents(const std::vector<NodeId>& parents) {
  assert(parents.size() == n_);
  const size_t total = static_cast<size_t>(n_) + 1;
  std::fill(first_child_.begin(), first_child_.end(), kInvalidNode);
  std::fill(next_sibling_.begin(), next_sibling_.end(), kInvalidNode);
  std::fill(prev_sibling_.begin(), prev_sibling_.end(), kInvalidNode);
  parent_.assign(total, kInvalidNode);
  for (NodeId v = 0; v < n_; ++v) {
    if (parents[v] == kInvalidNode) continue;
    parent_[v] = parents[v];
    NodeId head = first_child_[parents[v]];
    next_sibling_[v] = head;
    if (head != kInvalidNode) prev_sibling_[head] = v;
    first_child_[parents[v]] = v;
  }
  RecomputeDepths();
}

void SpanningTree::ContractPathInto(NodeId desc, NodeId anc,
                                    std::vector<NodeId>* merged) {
  assert(IsAncestor(anc, desc) && anc != desc);
  const size_t first_merged = merged->size();
  for (NodeId w = desc; w != anc; w = parent_[w]) {
    assert(w != root());
    merged->push_back(w);
  }
  // Detach all path nodes first so that child-list splicing below never
  // re-attaches a node that is itself being contracted.
  for (size_t i = first_merged; i < merged->size(); ++i) {
    Detach((*merged)[i]);
  }
  for (size_t i = first_merged; i < merged->size(); ++i) {
    SpliceChildrenTo((*merged)[i], anc);
  }
}

uint64_t SpanningTree::SubtreeSize(NodeId v) const {
  uint64_t count = 0;
  ForEachInSubtree(v, [&count](NodeId) { ++count; });
  return count;
}

void SpanningTree::RecomputeDepths() {
  depth_[root()] = 0;
  SetSubtreeDepths(root(), 0);
}

bool SpanningTree::CheckConsistency() const {
  const NodeId r = root();
  if (parent_[r] != kInvalidNode || depth_[r] != 0) return false;
  // Every node that is attached (parent != invalid) must appear exactly
  // once in its parent's child list, with a consistent depth.
  std::vector<bool> seen(static_cast<size_t>(n_) + 1, false);
  uint64_t visited = 0;
  // Traverse from the root.
  NodeId node = r;
  while (true) {
    if (seen[node]) return false;  // cycle in child links
    seen[node] = true;
    ++visited;
    if (node != r) {
      if (parent_[node] == kInvalidNode) return false;
      if (depth_[node] != depth_[parent_[node]] + 1) return false;
    }
    if (first_child_[node] != kInvalidNode) {
      NodeId c = first_child_[node];
      if (parent_[c] != node || prev_sibling_[c] != kInvalidNode) {
        return false;
      }
      node = c;
      continue;
    }
    while (node != r && next_sibling_[node] == kInvalidNode) {
      node = parent_[node];
    }
    if (node == r) break;
    NodeId sib = next_sibling_[node];
    if (prev_sibling_[sib] != node || parent_[sib] != parent_[node]) {
      return false;
    }
    node = sib;
  }
  // Detached nodes (removed by early rejection) are allowed; attached node
  // count must match what the traversal saw.
  uint64_t attached = 1;  // root
  for (NodeId v = 0; v < n_; ++v) {
    if (parent_[v] != kInvalidNode) ++attached;
  }
  return attached == visited;
}

}  // namespace ioscc
