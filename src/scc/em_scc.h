// EM-SCC: the contraction-based external-memory baseline of
// Cosgaya-Lozano and Zeh (SEA'09), as characterized in Section 4.
//
// Iteratively: partition the edge stream into memory-sized chunks, compute
// the SCCs of each chunk's induced subgraph with the in-memory oracle,
// contract them, and rewrite the (remapped, deduplicated-by-contraction)
// graph. Stop when the graph fits in memory and finish in-memory.
//
// The paper's Case-1 (an SCC straddling partitions that contraction can
// no longer shrink) and Case-2 (a DAG larger than memory) make the loop
// stall: no chunk contains a cycle, nothing contracts, the graph stops
// shrinking. We detect a stalled iteration and return Status::Incomplete —
// the honest equivalent of the paper's "cannot stop in a finite number of
// iterations" (reported as INF / omitted in their tables).

#ifndef IOSCC_SCC_EM_SCC_H_
#define IOSCC_SCC_EM_SCC_H_

#include <string>

#include "scc/options.h"
#include "scc/scc_result.h"
#include "util/status.h"

namespace ioscc {

Status EmScc(const std::string& edge_file, const SemiExternalOptions& options,
             SccResult* result, RunStats* stats);

}  // namespace ioscc

#endif  // IOSCC_SCC_EM_SCC_H_
