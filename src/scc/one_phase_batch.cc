#include "scc/one_phase_batch.h"

#include <algorithm>
#include <memory>
#include <thread>
#include <vector>

#include "graph/digraph.h"
#include "io/edge_file.h"
#include "io/temp_dir.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "scc/checkpoint_hook.h"
#include "scc/kosaraju.h"
#include "scc/parallel_scc.h"
#include "scc/pass_metrics.h"
#include "scc/spanning_tree.h"
#include "scc/tarjan.h"
#include "scc/union_find.h"
#include "util/logging.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace ioscc {
namespace {

// Kernel-side registry counters bumped per batch (the per-kernel work
// counters live in parallel_scc.cc).
struct BatchKernelCounters {
  Counter* batches;
  Counter* micros;

  static const BatchKernelCounters& Get() {
    static BatchKernelCounters counters{
        MetricsRegistry::Global().GetCounter("kernel.batches"),
        MetricsRegistry::Global().GetCounter("kernel.micros")};
    return counters;
  }
};

class OnePhaseBatchRunner {
 public:
  OnePhaseBatchRunner(const std::string& edge_file,
                      const SemiExternalOptions& options, SccResult* result,
                      RunStats* stats)
      : input_path_(edge_file),
        options_(options),
        result_(result),
        stats_(stats) {}

  Status Run();

 private:
  Status Iterate(bool* updated);
  void ProcessBatch(std::vector<Edge>* batch, bool* updated);
  Status RejectFrozenScan();
  void EncodeState(BlobWriter* w, bool updated, double seconds) const;
  bool DecodeState(BlobReader* r, bool* updated);

  const std::string input_path_;
  const SemiExternalOptions& options_;
  SccResult* result_;
  RunStats* stats_;

  std::unique_ptr<TempDir> scratch_;
  std::string current_path_;
  std::unique_ptr<EdgeScanner> scanner_;

  NodeId n_ = 0;
  std::unique_ptr<SpanningTree> tree_;
  std::unique_ptr<UnionFind> uf_;
  std::vector<bool> removed_;

  // Private worker pool for the parallel batch kernel (null for the
  // serial kernels or kernel_threads == 1). Deliberately distinct from
  // the process-wide I/O pool: kernel tasks must never queue behind
  // prefetch tasks or vice versa.
  std::unique_ptr<ThreadPool> kernel_pool_;
  uint64_t kernel_batches_ = 0;

  uint64_t tau_abs_ = 0;
  bool pending_rewrite_ = false;
  uint64_t live_edges_ = 0;
  uint64_t merged_this_iter_ = 0;
  uint64_t rejected_this_iter_ = 0;
  size_t batch_capacity_ = 0;
  Deadline deadline_;
  double seconds_base_ = 0;         // wall time restored from a snapshot
};

// Same boundary-state layout as 1P (one_phase.cc): tau_abs_ and
// batch_capacity_ are recomputed from the options on resume.
void OnePhaseBatchRunner::EncodeState(BlobWriter* w, bool updated,
                                      double seconds) const {
  w->PutU32(n_);
  tree_->EncodeTo(w);
  uf_->EncodeTo(w);
  w->PutBoolVec(removed_);
  w->PutBool(pending_rewrite_);
  w->PutU64(live_edges_);
  w->PutString(current_path_);
  w->PutBool(updated);
  PutRunStats(w, *stats_, seconds);
}

bool OnePhaseBatchRunner::DecodeState(BlobReader* r, bool* updated) {
  n_ = r->GetU32();
  tree_ = std::make_unique<SpanningTree>(0);
  tree_->DecodeFrom(r);
  uf_ = std::make_unique<UnionFind>(0);
  uf_->DecodeFrom(r);
  r->GetBoolVec(&removed_);
  pending_rewrite_ = r->GetBool();
  live_edges_ = r->GetU64();
  current_path_ = r->GetString();
  *updated = r->GetBool();
  GetRunStats(r, stats_, &seconds_base_);
  return r->Done();
}

void OnePhaseBatchRunner::ProcessBatch(std::vector<Edge>* batch,
                                       bool* updated) {
  TraceSpan span("1pb.batch_kernel");  // in-memory: no I/O to attribute
  const NodeId total = n_ + 1;  // + virtual root

  // G'' = T ∪ B_i over current representatives.
  std::vector<Edge> gpp_edges;
  gpp_edges.reserve(static_cast<size_t>(n_) + batch->size());
  for (NodeId v = 0; v < n_; ++v) {
    if (removed_[v] || uf_->Find(v) != v) continue;
    NodeId p = tree_->parent(v);
    if (p != kInvalidNode) gpp_edges.push_back(Edge{p, v});
  }
  for (const Edge& e : *batch) {
    NodeId a = uf_->Find(e.from);
    NodeId b = uf_->Find(e.to);
    if (a == b || removed_[a] || removed_[b]) continue;
    gpp_edges.push_back(Edge{a, b});
  }
  batch->clear();

  Digraph gpp(total, gpp_edges);
  const uint64_t batch_edge_count = gpp.edge_count();
  SccResult comp;
  std::vector<NodeId> emit_order;
  Timer kernel_timer;
  std::vector<Edge> dag_edges;
  switch (options_.batch_kernel) {
    case BatchKernel::kKosaraju:
      dag_edges = CondensationOfKosaraju(gpp, &comp, &emit_order);
      break;
    case BatchKernel::kParallelFb: {
      ParallelSccOptions kernel_options;
      kernel_options.pool = kernel_pool_.get();
      kernel_options.granularity = options_.kernel_granularity;
      // Mid-batch liveness: one batch can run longer than the stall
      // watchdog's window, and the end-of-batch heartbeat below fires
      // too late to keep it quiet.
      kernel_options.heartbeat = [] { TelemetryOnKernelProgress(); };
      dag_edges =
          CondensationOfParallelFb(gpp, kernel_options, &comp, &emit_order);
      break;
    }
    case BatchKernel::kTarjan:
      dag_edges = CondensationOf(gpp, &comp, &emit_order);
      break;
  }
  const uint64_t kernel_micros =
      static_cast<uint64_t>(kernel_timer.ElapsedSeconds() * 1e6);
  ++stats_->kernel_invocations;
  stats_->kernel_micros += kernel_micros;
  ++kernel_batches_;
  BatchKernelCounters::Get().batches->Increment();
  BatchKernelCounters::Get().micros->Add(kernel_micros);

  // Contract every multi-member SCC of G''. Every kernel labels
  // components by their smallest member id, so merging everything into
  // the label keeps union-find representatives equal to component labels.
  {
    std::vector<uint32_t> comp_size(total, 0);
    for (NodeId v = 0; v < n_; ++v) {
      if (removed_[v] || uf_->Find(v) != v) continue;
      ++comp_size[comp.component[v]];
    }
    for (NodeId v = 0; v < n_; ++v) {
      if (removed_[v] || uf_->Find(v) != v) continue;
      NodeId label = comp.component[v];
      if (v != label && comp_size[label] >= 2) {
        uf_->UnionInto(label, v, label);
        ++merged_this_iter_;
        ++stats_->contractions;
        *updated = true;
      }
    }
    if (tau_abs_ > 0 && !pending_rewrite_) {
      for (NodeId v = 0; v < n_; ++v) {
        if (comp_size[v] >= 2 && uf_->SetSize(v) >= tau_abs_) {
          pending_rewrite_ = true;  // early acceptance: reduce the graph
          break;
        }
      }
    }
  }

  // Rebuild the BR-Tree as the longest-path forest over the condensation:
  // process components in topological order; drank(c) = max over DAG
  // in-edges (u, c) of drank(u) + 1, parent(c) = the maximizing u.
  // Every kernel emits successors first, so topological order is the
  // reverse.
  std::vector<uint32_t> in_head(static_cast<size_t>(total) + 1, 0);
  for (const Edge& e : dag_edges) ++in_head[e.to + 1];
  for (size_t i = 1; i < in_head.size(); ++i) in_head[i] += in_head[i - 1];
  std::vector<NodeId> in_adj(dag_edges.size());
  {
    std::vector<uint32_t> cursor(in_head.begin(), in_head.end() - 1);
    for (const Edge& e : dag_edges) in_adj[cursor[e.to]++] = e.from;
  }

  std::vector<uint32_t> drank(total, 0);
  std::vector<NodeId> new_parent(n_, kInvalidNode);
  const NodeId root_comp = comp.component[n_];
  for (auto it = emit_order.rbegin(); it != emit_order.rend(); ++it) {
    NodeId c = *it;
    if (c == root_comp) continue;  // drank 0, no parent
    uint32_t best = 0;
    NodeId best_parent = kInvalidNode;
    for (uint32_t i = in_head[c]; i < in_head[c + 1]; ++i) {
      NodeId u = in_adj[i];
      if (drank[u] + 1 > best) {
        best = drank[u] + 1;
        best_parent = u;
      }
    }
    drank[c] = best;
    if (c < n_ && best_parent != kInvalidNode) {
      // Map the parent component back to a tree node: the component label
      // is its representative; the root component maps to the root.
      new_parent[c] = best_parent == root_comp ? tree_->root() : best_parent;
    }
  }

  // Detect whether the rebuild actually changed anything (the paper's
  // `update` flag from pushdown operations).
  bool tree_changed = false;
  for (NodeId v = 0; v < n_; ++v) {
    bool live = !removed_[v] && uf_->Find(v) == v;
    NodeId old_parent =
        live ? tree_->parent(v) : kInvalidNode;
    NodeId wanted = live ? new_parent[v] : kInvalidNode;
    if (old_parent != wanted ||
        (live && wanted != kInvalidNode &&
         tree_->depth(v) != drank[comp.component[v]])) {
      tree_changed = true;
    }
    if (!live) new_parent[v] = kInvalidNode;
  }
  if (tree_changed) {
    tree_->RebuildFromParents(new_parent);
    ++stats_->pushdowns;  // counted per batch rebuild
    *updated = true;
  }

  // Heartbeat for the telemetry sampler and the --progress status line:
  // without it the live gauges freeze for the whole in-memory phase and
  // large batches trip the stall watchdog. The node gauge is live (this
  // batch's contractions are already counted); the edge gauge shows the
  // batch graph just solved.
  TelemetryOnKernelBatch(
      kernel_batches_,
      n_ - stats_->nodes_rejected - stats_->contractions, batch_edge_count);
}

Status OnePhaseBatchRunner::Iterate(bool* updated) {
  std::unique_ptr<EdgeWriter> writer;
  const bool rewriting = pending_rewrite_;
  std::string next_path;
  if (rewriting) {
    pending_rewrite_ = false;
    next_path = scratch_->NewFilePath(".edges");
    IOSCC_RETURN_IF_ERROR(EdgeWriter::Create(next_path, n_,
                                             options_.scratch_block_size,
                                             &stats_->io, &writer));
  }

  scanner_->Reset();
  std::vector<Edge> batch;
  batch.reserve(batch_capacity_);
  Edge edge;
  uint64_t scanned = 0;
  while (scanner_->Next(&edge)) {
    if ((++scanned & 0xFFFF) == 0 && deadline_.Expired()) {
      return Status::Incomplete("1PB-SCC hit the time limit");
    }
    NodeId a = uf_->Find(edge.from);
    NodeId b = uf_->Find(edge.to);
    if (a == b || removed_[a] || removed_[b]) continue;
    batch.push_back(Edge{a, b});
    if (writer != nullptr) {
      IOSCC_RETURN_IF_ERROR(writer->Add(Edge{a, b}));
    }
    if (batch.size() >= batch_capacity_) ProcessBatch(&batch, updated);
  }
  IOSCC_RETURN_IF_ERROR(scanner_->status());
  if (!batch.empty()) ProcessBatch(&batch, updated);

  if (writer != nullptr) {
    IOSCC_RETURN_IF_ERROR(writer->Finish());
    live_edges_ = writer->edge_count();
    current_path_ = next_path;
    scanner_.reset();
    IOSCC_RETURN_IF_ERROR(
        EdgeScanner::Open(current_path_, &stats_->io, &scanner_));
  }
  return Status::OK();
}

Status OnePhaseBatchRunner::RejectFrozenScan() {
  TraceSpan span("1pb.reject_scan", &stats_->io);
  uint32_t drank_min = UINT32_MAX;
  uint32_t drank_max = 0;
  scanner_->Reset();
  Edge edge;
  while (scanner_->Next(&edge)) {
    NodeId a = uf_->Find(edge.from);
    NodeId b = uf_->Find(edge.to);
    if (a == b || removed_[a] || removed_[b]) continue;
    uint32_t da = tree_->depth(a);
    uint32_t db = tree_->depth(b);
    if (da >= db) {
      drank_min = std::min(drank_min, db);
      drank_max = std::max(drank_max, da);
    }
  }
  IOSCC_RETURN_IF_ERROR(scanner_->status());

  // Decide on a consistent depth snapshot, then remove (removal shifts the
  // depths of spliced child subtrees; see one_phase.cc).
  std::vector<NodeId> doomed;
  for (NodeId r = 0; r < n_; ++r) {
    if (removed_[r] || uf_->Find(r) != r) continue;
    uint32_t d = tree_->depth(r);
    if (d < drank_min || d > drank_max) doomed.push_back(r);
  }
  for (NodeId r : doomed) {
    removed_[r] = true;
    tree_->Remove(r);
    // Counted in graph-node (representative) units, matching Table 1's
    // "# of Nodes Reduced" (the members of r's set were already counted
    // when they were contracted into r).
    ++rejected_this_iter_;
    ++stats_->nodes_rejected;
    pending_rewrite_ = true;
  }
  return Status::OK();
}

Status OnePhaseBatchRunner::Run() {
  Timer timer;
  deadline_ = Deadline(options_.time_limit_seconds);

  IOSCC_RETURN_IF_ERROR(TempDir::Create("ioscc-1pb", &scratch_));
  ScratchKeepGuard keep_guard{scratch_.get(), options_.checkpoint};

  bool updated = true;
  bool resumed = false;
  std::string resume_phase, resume_payload;
  if (options_.checkpoint != nullptr &&
      options_.checkpoint->ResumeState(&resume_phase, &resume_payload) &&
      resume_phase == "1pb") {
    BlobReader reader(resume_payload);
    if (!DecodeState(&reader, &updated)) {
      return Status::Corruption("1PB-SCC resume state does not parse");
    }
    // Replay-only work: the stream re-open is booked to the resume
    // ledger so the run ledger matches the uninterrupted run.
    IoStats before_resume = stats_->io;
    IOSCC_RETURN_IF_ERROR(
        EdgeScanner::Open(current_path_, &stats_->io, &scanner_));
    options_.checkpoint->ChargeResumeIo(stats_->io - before_resume);
    stats_->io = before_resume;
    resumed = true;
  }

  // Baseline for per-iteration I/O deltas; the first iteration also
  // absorbs the setup I/O below so the deltas sum to the run total.
  IoStats io_mark = stats_->io;

  if (!resumed) {
    current_path_ = input_path_;
    IOSCC_RETURN_IF_ERROR(
        EdgeScanner::Open(current_path_, &stats_->io, &scanner_));
    n_ = static_cast<NodeId>(scanner_->node_count());
    live_edges_ = scanner_->edge_count();
    tree_ = std::make_unique<SpanningTree>(n_);
    uf_ = std::make_unique<UnionFind>(n_ + 1);
    removed_.assign(n_, false);
  }
  tau_abs_ = options_.tau_fraction < 0
                 ? 0
                 : std::max<uint64_t>(
                       2, static_cast<uint64_t>(options_.tau_fraction *
                                                static_cast<double>(n_)));
  batch_capacity_ = std::max<size_t>(
      1024, options_.memory_budget_bytes / sizeof(Edge));

  if (options_.batch_kernel == BatchKernel::kParallelFb) {
    uint32_t threads = options_.kernel_threads;
    if (threads == 0) {
      threads = std::max(1u, std::thread::hardware_concurrency());
    }
    // threads == 1 keeps the pool null: TaskGroup then runs every task
    // inline and the kernel is strictly serial.
    if (threads > 1) {
      kernel_pool_ = std::make_unique<ThreadPool>(static_cast<int>(threads));
    }
  }

  const uint64_t max_iterations =
      options_.max_iterations > 0 ? options_.max_iterations
                                  : static_cast<uint64_t>(n_) + 16;

  while (updated) {
    if (stats_->iterations >= max_iterations) {
      return Status::Incomplete("1PB-SCC exceeded iteration cap");
    }
    if (deadline_.Expired()) {
      return Status::Incomplete("1PB-SCC hit the time limit");
    }
    updated = false;
    ++stats_->iterations;
    merged_this_iter_ = 0;
    rejected_this_iter_ = 0;

    TraceSpan pass_span("1pb.pass", &stats_->io);
    const uint64_t edges_before = live_edges_;
    IOSCC_RETURN_IF_ERROR(Iterate(&updated));

    if (options_.reject_interval > 0 &&
        stats_->iterations % options_.reject_interval == 0) {
      IOSCC_RETURN_IF_ERROR(RejectFrozenScan());
    }
    pass_span.Close();
    stats_->nodes_accepted += merged_this_iter_;

    const PassCounters& counters = PassCounters::Get();
    counters.passes->Increment();
    counters.nodes_accepted->Add(merged_this_iter_);
    counters.nodes_rejected->Add(rejected_this_iter_);
    counters.contractions->Add(merged_this_iter_);

    IterationStats iter_stats;
    iter_stats.nodes_reduced = merged_this_iter_ + rejected_this_iter_;
    iter_stats.edges_reduced =
        edges_before > live_edges_ ? edges_before - live_edges_ : 0;
    iter_stats.live_edges = live_edges_;
    iter_stats.live_nodes =
        n_ - stats_->nodes_rejected - stats_->contractions;
    iter_stats.io = stats_->io - io_mark;
    io_mark = stats_->io;
    stats_->per_iteration.push_back(iter_stats);
    TelemetryOnIteration(stats_->iterations, iter_stats.live_nodes,
                         iter_stats.live_edges);
    if (options_.checkpoint != nullptr) {
      options_.checkpoint->AtBoundary(
          "1pb", stats_->iterations, current_path_, [&](BlobWriter* w) {
            EncodeState(w, updated,
                        seconds_base_ + timer.ElapsedSeconds());
          });
    }
    if (options_.progress &&
        !options_.progress(stats_->iterations, iter_stats)) {
      return Status::Incomplete("1PB-SCC cancelled by progress callback");
    }
    LogDebug("1PB iter %llu: merged=%llu rejected=%llu edges=%llu",
             static_cast<unsigned long long>(stats_->iterations),
             static_cast<unsigned long long>(merged_this_iter_),
             static_cast<unsigned long long>(rejected_this_iter_),
             static_cast<unsigned long long>(live_edges_));
  }

  result_->component.resize(n_);
  for (NodeId v = 0; v < n_; ++v) result_->component[v] = uf_->Find(v);
  result_->Normalize();
  stats_->seconds = seconds_base_ + timer.ElapsedSeconds();
  keep_guard.run_ok = true;
  return Status::OK();
}

}  // namespace

Status OnePhaseBatchScc(const std::string& edge_file,
                        const SemiExternalOptions& options, SccResult* result,
                        RunStats* stats) {
  OnePhaseBatchRunner runner(edge_file, options, result, stats);
  return runner.Run();
}

}  // namespace ioscc
