#include "scc/semi_external_dfs.h"

#include <algorithm>

#include "io/edge_file.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "scc/checkpoint_hook.h"
#include "util/logging.h"

namespace ioscc {

std::vector<uint32_t> DfsForest::Preorder() const {
  std::vector<uint32_t> pre(static_cast<size_t>(n) + 1, 0);
  uint32_t counter = 0;
  Traverse([&](NodeId v, bool entering) {
    if (entering) pre[v] = counter++;
  });
  return pre;
}

std::vector<NodeId> DfsForest::DecreasingPostorder() const {
  std::vector<NodeId> order;
  order.reserve(n);
  Traverse([&](NodeId v, bool entering) {
    if (!entering && v != n) order.push_back(v);
  });
  std::reverse(order.begin(), order.end());
  return order;
}

void DfsForest::LabelRootSubtrees(std::vector<NodeId>* component) const {
  component->assign(n, kInvalidNode);
  for (NodeId top : children[n]) {
    std::vector<NodeId> stack = {top};
    while (!stack.empty()) {
      NodeId v = stack.back();
      stack.pop_back();
      (*component)[v] = top;
      for (NodeId c : children[v]) stack.push_back(c);
    }
  }
}

namespace {

// One batch step: runs a genuine DFS over (tree ∪ batch edges) — each
// node's current tree children first, in order, then its batch out-edges
// — and replaces the tree with the resulting DFS tree. If the tree has no
// forward-cross edges w.r.t. the batch, the DFS reproduces it exactly
// (tree children are explored first and every non-tree batch edge then
// leads to an already-visited node), so "no batch changed the tree over a
// full scan" is precisely Algorithm 1's termination condition.
//
// Returns true if the tree changed.
bool RefineWithBatch(const std::vector<Edge>& batch, DfsForest* tree) {
  const NodeId n = tree->n;
  const NodeId total = n + 1;

  // Batch adjacency grouped by source (counting sort preserves stream
  // order within a source).
  std::vector<uint32_t> head(static_cast<size_t>(total) + 1, 0);
  for (const Edge& e : batch) ++head[e.from + 1];
  for (size_t i = 1; i < head.size(); ++i) head[i] += head[i - 1];
  std::vector<NodeId> adj(batch.size());
  {
    std::vector<uint32_t> cursor(head.begin(), head.end() - 1);
    for (const Edge& e : batch) adj[cursor[e.from]++] = e.to;
  }

  DfsForest next(n);
  std::vector<bool> visited(total, false);
  struct Frame {
    NodeId node;
    size_t child_pos;   // over tree->children[node]
    uint32_t edge_pos;  // over adj[head[node]..head[node+1])
  };
  std::vector<Frame> stack;
  visited[n] = true;
  stack.push_back({n, 0, head[n]});
  bool changed = false;
  while (!stack.empty()) {
    Frame& frame = stack.back();
    const NodeId u = frame.node;
    NodeId child = kInvalidNode;
    while (frame.child_pos < tree->children[u].size()) {
      NodeId c = tree->children[u][frame.child_pos++];
      if (!visited[c]) {
        child = c;
        break;
      }
    }
    if (child == kInvalidNode) {
      while (frame.edge_pos < head[u + 1]) {
        NodeId c = adj[frame.edge_pos++];
        if (!visited[c]) {
          child = c;
          break;
        }
      }
    }
    if (child == kInvalidNode) {
      stack.pop_back();
      continue;
    }
    visited[child] = true;
    next.parent[child] = u;
    next.children[u].push_back(child);
    if (tree->parent[child] != u) changed = true;
    stack.push_back({child, 0, head[child]});
  }
  // Children-order changes also matter: they alter preorder.
  if (!changed) {
    for (NodeId v = 0; v <= n; ++v) {
      if (next.children[v] != tree->children[v]) {
        changed = true;
        break;
      }
    }
  }
  *tree = std::move(next);
  return changed;
}

}  // namespace

Status BuildSemiExternalDfsTree(const std::string& path,
                                const std::vector<NodeId>& priority,
                                const SemiExternalOptions& options,
                                const Deadline& deadline, RunStats* stats,
                                std::unique_ptr<DfsForest>* out,
                                const DfsTreeCheckpoint* ckpt) {
  const bool resuming = ckpt != nullptr && ckpt->resume_tree != nullptr;
  std::unique_ptr<EdgeScanner> scanner;
  IoStats before_open = stats->io;
  IOSCC_RETURN_IF_ERROR(EdgeScanner::Open(path, &stats->io, &scanner));
  if (resuming && ckpt->hook != nullptr) {
    // The restored ledger already contains the original open; this one is
    // replay work and goes to the resume ledger.
    ckpt->hook->ChargeResumeIo(stats->io - before_open);
    stats->io = before_open;
  }
  const NodeId n = static_cast<NodeId>(scanner->node_count());
  if (priority.size() != n) {
    return Status::InvalidArgument("priority must cover every node");
  }
  auto tree = std::make_unique<DfsForest>(n);
  if (resuming) {
    *tree = *ckpt->resume_tree;
    if (tree->n != n) {
      return Status::Corruption(
          "DFS resume tree does not match the stream's node count");
    }
  } else {
    for (NodeId v : priority) {
      tree->parent[v] = n;
      tree->children[n].push_back(v);
    }
  }

  const size_t batch_capacity = std::max<size_t>(
      1024, options.memory_budget_bytes / sizeof(Edge));
  const uint64_t max_iterations =
      options.max_iterations > 0 ? options.max_iterations
                                 : static_cast<uint64_t>(n) + 16;
  uint64_t iterations = 0;
  IoStats io_mark = stats->io;
  bool updated = resuming ? ckpt->resume_updated : true;
  while (updated) {
    if (iterations >= max_iterations) {
      return Status::Incomplete("DFS-Tree exceeded iteration cap");
    }
    if (deadline.Expired()) {
      return Status::Incomplete("semi-external DFS hit the time limit");
    }
    updated = false;
    ++iterations;
    ++stats->iterations;
    TraceSpan scan_span("dfs.tree_scan", &stats->io);
    scanner->Reset();
    std::vector<Edge> batch;
    batch.reserve(batch_capacity);
    Edge edge;
    while (scanner->Next(&edge)) {
      if (edge.from != edge.to) batch.push_back(edge);
      if (batch.size() >= batch_capacity) {
        if (RefineWithBatch(batch, tree.get())) {
          updated = true;
          ++stats->pushdowns;  // counted per reshaping batch
        }
        batch.clear();
        if (deadline.Expired()) {
          return Status::Incomplete("semi-external DFS hit the time limit");
        }
      }
    }
    IOSCC_RETURN_IF_ERROR(scanner->status());
    if (!batch.empty() && RefineWithBatch(batch, tree.get())) {
      updated = true;
      ++stats->pushdowns;  // counted per reshaping batch
    }
    // A tree scan never reduces the graph, but the callback still gets
    // real live counts and this scan's I/O delta (the two_phase.cc
    // pattern) — a blind default-constructed record left DFS progress
    // consumers with nothing to display.
    IterationStats iter_stats;
    iter_stats.live_nodes = n;
    iter_stats.live_edges = scanner->edge_count();
    iter_stats.io = stats->io - io_mark;
    io_mark = stats->io;
    stats->per_iteration.push_back(iter_stats);
    TelemetryOnIteration(stats->iterations, iter_stats.live_nodes,
                         iter_stats.live_edges);
    if (ckpt != nullptr && ckpt->at_boundary) {
      ckpt->at_boundary(*tree, updated);
    }
    if (options.progress &&
        !options.progress(stats->iterations, iter_stats)) {
      return Status::Incomplete(
          "semi-external DFS cancelled by progress callback");
    }
    LogDebug("DFS-Tree scan %llu done (updated=%d)",
             static_cast<unsigned long long>(iterations), int(updated));
  }
  *out = std::move(tree);
  return Status::OK();
}

}  // namespace ioscc
