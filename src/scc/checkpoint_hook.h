// The driver-side seam of the checkpoint subsystem.
//
// The five semi-external drivers call AtBoundary() at every safe point —
// the end of a full pass over the edge stream, where the scanner is
// about to be Reset() and the in-memory state (tree / union-find /
// labelling arrays) is consistent — handing over a closure that
// serializes that state. What happens with it (cadence, snapshot files,
// pruning, metrics) is the harness Checkpointer's business
// (harness/checkpoint.h); the drivers only know this interface, which
// keeps the scc layer free of any dependency on harness.
//
// Resume contract: ResumeState() yields the serialized state exactly
// once; the driver decodes it, re-opens its scanner on the recorded
// stream, and reports the I/O of that replay through ChargeResumeIo so
// the run ledger stays byte-identical to an uninterrupted run (the
// resume reads live in a separate ledger entry in the report).
//
// This header also hosts the RunStats/IoStats blob codecs shared by all
// driver payloads.

#ifndef IOSCC_SCC_CHECKPOINT_HOOK_H_
#define IOSCC_SCC_CHECKPOINT_HOOK_H_

#include <functional>
#include <string>

#include "io/io_stats.h"
#include "io/temp_dir.h"
#include "scc/options.h"
#include "util/blob.h"

namespace ioscc {

class CheckpointHook {
 public:
  virtual ~CheckpointHook() = default;

  // Called at a safe boundary; `phase` tags the driver loop ("1p",
  // "2p.search", ...), `iteration` is the boundary counter used for
  // cadence, `stream_path` is the edge stream the driver would re-open on
  // resume (the input, or a rewrite inside the driver's scratch) — it is
  // recorded in the snapshot manifest so resume can detect a vanished
  // stream and fall back instead of failing. `encode` serializes the
  // driver's full state; it is invoked only when this boundary is
  // actually persisted. Must never fail the run: errors degrade to "no
  // checkpoint" inside the implementation.
  virtual void AtBoundary(const char* phase, uint64_t iteration,
                          const std::string& stream_path,
                          const std::function<void(BlobWriter*)>& encode) = 0;

  // True when a validated snapshot is available for this run; fills the
  // phase tag and the serialized driver state. Consumes the state — a
  // second call returns false.
  virtual bool ResumeState(std::string* phase, std::string* payload) = 0;

  // Books block I/O performed only because of the resume (scanner
  // re-open on the recorded stream). The driver subtracts this from its
  // run ledger; the implementation reports it separately.
  virtual void ChargeResumeIo(const IoStats& delta) = 0;

  // True when this run has persisted at least one snapshot. Drivers use
  // it (via ScratchKeepGuard) to decide whether their scratch files may
  // be referenced by a snapshot that will outlive the run.
  virtual bool SnapshotOnDisk() const { return false; }
};

// Keeps a driver's scratch directory on disk when the run exits without
// success while snapshots exist: those snapshots can reference stream
// rewrites inside the scratch, and deleting them would make the retained
// snapshots unresumable. Declare after creating the scratch; set run_ok
// before the successful return. The abandoned directory is reclaimed by
// SweepStaleScratch once the owning process is gone.
struct ScratchKeepGuard {
  TempDir* scratch = nullptr;
  const CheckpointHook* hook = nullptr;
  bool run_ok = false;

  ~ScratchKeepGuard() {
    if (!run_ok && scratch != nullptr && hook != nullptr &&
        hook->SnapshotOnDisk()) {
      scratch->KeepOnExit();
    }
  }
};

// ---- Shared payload codecs ---------------------------------------------

inline void PutIoStats(BlobWriter* w, const IoStats& io) {
  w->PutU64(io.blocks_read);
  w->PutU64(io.blocks_written);
  w->PutU64(io.bytes_read);
  w->PutU64(io.bytes_written);
  w->PutU64(io.read_retries);
  w->PutU64(io.write_retries);
  w->PutU64(io.physical_blocks_read);
  w->PutU64(io.cache_hits);
  w->PutU64(io.prefetch_hits);
  w->PutU64(io.prefetched_blocks);
  w->PutU64(io.read_stall_micros);
  w->PutU64(io.prefetch_depth_used);
}

inline void GetIoStats(BlobReader* r, IoStats* io) {
  io->blocks_read = r->GetU64();
  io->blocks_written = r->GetU64();
  io->bytes_read = r->GetU64();
  io->bytes_written = r->GetU64();
  io->read_retries = r->GetU64();
  io->write_retries = r->GetU64();
  io->physical_blocks_read = r->GetU64();
  io->cache_hits = r->GetU64();
  io->prefetch_hits = r->GetU64();
  io->prefetched_blocks = r->GetU64();
  io->read_stall_micros = r->GetU64();
  io->prefetch_depth_used = r->GetU64();
}

// Full-fidelity RunStats, per_iteration included, so a resumed run's
// report (per-iteration I/O identity and all) matches the uninterrupted
// one. `seconds` carries the wall time accumulated before the snapshot;
// drivers add their post-resume timer on top.
inline void PutRunStats(BlobWriter* w, const RunStats& stats,
                        double seconds_so_far) {
  PutIoStats(w, stats.io);
  w->PutU64(stats.iterations);
  w->PutU64(stats.search_scans);
  w->PutU64(stats.nodes_accepted);
  w->PutU64(stats.nodes_rejected);
  w->PutU64(stats.pushdowns);
  w->PutU64(stats.contractions);
  w->PutU64(stats.kernel_invocations);
  w->PutU64(stats.kernel_micros);
  w->PutDouble(seconds_so_far);
  w->PutU64(stats.per_iteration.size());
  for (const IterationStats& it : stats.per_iteration) {
    w->PutU64(it.nodes_reduced);
    w->PutU64(it.edges_reduced);
    w->PutU64(it.live_nodes);
    w->PutU64(it.live_edges);
    PutIoStats(w, it.io);
  }
}

inline void GetRunStats(BlobReader* r, RunStats* stats,
                        double* seconds_so_far) {
  GetIoStats(r, &stats->io);
  stats->iterations = r->GetU64();
  stats->search_scans = r->GetU64();
  stats->nodes_accepted = r->GetU64();
  stats->nodes_rejected = r->GetU64();
  stats->pushdowns = r->GetU64();
  stats->contractions = r->GetU64();
  stats->kernel_invocations = r->GetU64();
  stats->kernel_micros = r->GetU64();
  *seconds_so_far = r->GetDouble();
  const uint64_t count = r->GetU64();
  stats->per_iteration.clear();
  for (uint64_t i = 0; i < count && r->ok(); ++i) {
    IterationStats it;
    it.nodes_reduced = r->GetU64();
    it.edges_reduced = r->GetU64();
    it.live_nodes = r->GetU64();
    it.live_edges = r->GetU64();
    GetIoStats(r, &it.io);
    stats->per_iteration.push_back(it);
  }
}

}  // namespace ioscc

#endif  // IOSCC_SCC_CHECKPOINT_HOOK_H_
