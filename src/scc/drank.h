// Exact drank / dlink over a BR+-Tree (Section 5 of the paper).
//
//   drank(u, T) = min{ depth(v, T) : v in Rset(u, G, T) }
//   dlink(u, T) = the node attaining that minimum
//
// where Rset(u) is everything u can reach inside the BR+-Tree: following
// tree edges downward (parent -> child, which are real graph edges) and
// stored backward edges (node -> recorded ancestor). We compute the exact
// closure, I/O-free, by condensing the (<= 2|V|)-edge in-memory structure
// with Tarjan and propagating the minimum over the condensation in
// topological order. O(|V|) time and memory per refresh.

#ifndef IOSCC_SCC_DRANK_H_
#define IOSCC_SCC_DRANK_H_

#include <cstdint>
#include <vector>

#include "graph/types.h"
#include "scc/spanning_tree.h"

namespace ioscc {

struct DrankResult {
  // Indexed by node id (0..n-1 real nodes; index n = virtual root).
  std::vector<uint32_t> drank;
  std::vector<NodeId> dlink;
};

// `backedge[v]` is the stored backward-edge target of v (an ancestor of v
// in `tree`) or kInvalidNode. Vector size must be tree.real_node_count().
// Detached (removed) nodes keep drank = depth = stale values; callers must
// not query them.
DrankResult ComputeDrank(const SpanningTree& tree,
                         const std::vector<NodeId>& backedge);

}  // namespace ioscc

#endif  // IOSCC_SCC_DRANK_H_
