// DFS-SCC: the semi-external baseline of Sibeyn, Abello and Meyer
// (SPAA'02), as described in Section 4 of the paper (Algorithms 1 and 2).
//
// Semi-external DFS-tree fixpoint: keep a spanning tree in memory, scan
// the edge stream, and whenever a forward-cross edge (u, v) is found —
// no ancestor/descendant relation and preorder(u) < preorder(v) — move v
// under u. When a full scan finds no forward-cross edge, the tree is a DFS
// tree (the classical characterization: a spanning tree is a DFS tree iff
// no forward-cross edges exist). Preorders are reassigned after every
// scan, which is the global renumbering cost the paper calls Cost-3.
//
// SCCs via Kosaraju-Sharir: run the fixpoint on G with node priority
// 0..n-1, take the decreasing postorder of the resulting tree, reverse the
// graph externally, run the fixpoint again with that priority, and report
// each subtree hanging off the virtual root as one SCC.

#ifndef IOSCC_SCC_DFS_SCC_H_
#define IOSCC_SCC_DFS_SCC_H_

#include <string>

#include "scc/options.h"
#include "scc/scc_result.h"
#include "util/status.h"

namespace ioscc {

Status DfsScc(const std::string& edge_file,
              const SemiExternalOptions& options, SccResult* result,
              RunStats* stats);

}  // namespace ioscc

#endif  // IOSCC_SCC_DFS_SCC_H_
