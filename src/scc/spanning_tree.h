// Rooted spanning-tree structure for the BR-Tree / BR+-Tree algorithms.
//
// The tree covers real nodes 0..n-1 plus a virtual root (id n). It starts
// as the star rooted at the virtual root (the paper's initial spanning
// tree for a possibly disconnected graph) and supports the reshaping
// operations of Sections 5-7:
//
//   * Reparent / pushdown (⇓): cut the subtree at v, paste it under u, and
//     update the depths of exactly the moved subtree — the locality win
//     over DFS-tree reshaping that Fig. 3 illustrates.
//   * Ancestor tests by climbing parent pointers with depth alignment.
//   * Child-list splicing, used when a tree path is contracted into one
//     node or when an early-rejected node is removed.
//
// Invariant maintained throughout: every non-root tree edge (parent(v), v)
// corresponds to a real edge of G (virtual-root edges are the only fake
// ones, and no contraction path can cross the root because no real edge
// enters it). This is what makes "tree path + backward edge = cycle" sound.

#ifndef IOSCC_SCC_SPANNING_TREE_H_
#define IOSCC_SCC_SPANNING_TREE_H_

#include <cstdint>
#include <vector>

#include "graph/types.h"
#include "util/blob.h"

namespace ioscc {

class SpanningTree {
 public:
  // Builds the initial star: nodes 0..n-1 all children of the virtual root.
  explicit SpanningTree(NodeId n);

  NodeId real_node_count() const { return n_; }
  NodeId root() const { return n_; }

  NodeId parent(NodeId v) const { return parent_[v]; }
  uint32_t depth(NodeId v) const { return depth_[v]; }
  NodeId first_child(NodeId v) const { return first_child_[v]; }
  NodeId next_sibling(NodeId v) const { return next_sibling_[v]; }

  // True iff `anc` is an ancestor of `desc` (a node is its own ancestor).
  // Cost: O(depth(desc) - depth(anc)) parent hops.
  bool IsAncestor(NodeId anc, NodeId desc) const;

  // Moves the subtree rooted at v under new parent u and updates the
  // depths of the moved subtree. u must not be inside v's subtree.
  // If `moved_max_depth` is non-null it receives the maximum depth in the
  // moved subtree after the move (early rejection widens its drank_max
  // bound with this; see one_phase.cc).
  void Reparent(NodeId v, NodeId u, uint32_t* moved_max_depth = nullptr);

  // Detaches every child of `from` and re-attaches it (with its subtree)
  // under `to`, updating depths. Used by path contraction: the members of
  // a contracted path donate their children to the surviving node.
  void SpliceChildrenTo(NodeId from, NodeId to);

  // Removes `v` from the tree: its children (with subtrees) are re-attached
  // under parent(v) with updated depths, and v itself is unlinked. Used by
  // early rejection. v must not be the root.
  void Remove(NodeId v);

  // Structural part of contracting the tree path from `desc` up to its
  // ancestor `anc` (exclusive): every node strictly between anc and desc,
  // and desc itself, is detached and its children re-attached under anc
  // (depths updated). The detached path nodes are appended to `merged`;
  // the caller is responsible for merging them into anc in its union-find.
  void ContractPathInto(NodeId desc, NodeId anc,
                        std::vector<NodeId>* merged);

  // Replaces the whole tree structure: `parents[v]` is v's new parent
  // (possibly the root) or kInvalidNode to leave v detached. Child lists
  // and depths are rebuilt from scratch. Used by 1PB-SCC, which re-derives
  // the BR-Tree from longest paths over each batch DAG.
  void RebuildFromParents(const std::vector<NodeId>& parents);

  // Calls fn(node) for every node in the subtree rooted at v (including v).
  template <typename Fn>
  void ForEachInSubtree(NodeId v, Fn fn) const {
    NodeId node = v;
    // Iterative pre-order traversal bounded to v's subtree.
    while (true) {
      fn(node);
      if (first_child_[node] != kInvalidNode) {
        node = first_child_[node];
        continue;
      }
      while (node != v && next_sibling_[node] == kInvalidNode) {
        node = parent_[node];
      }
      if (node == v) return;
      node = next_sibling_[node];
    }
  }

  // Number of nodes in v's subtree (O(subtree size)).
  uint64_t SubtreeSize(NodeId v) const;

  // Recomputes every depth from the parent structure (O(n)); used after
  // bulk restructuring and by the self-check below.
  void RecomputeDepths();

  // Debug self-check: parent/child links are mutually consistent, depths
  // match the parent chain, and every non-root node is reachable from the
  // root. O(n). Returns false (and asserts in debug builds) on violation.
  bool CheckConsistency() const;

  // Checkpoint codec: all five link arrays verbatim. Sibling order is
  // semantically load-bearing (child traversal order feeds contraction
  // order), so the structure is restored bit-for-bit rather than rebuilt
  // from parents.
  void EncodeTo(BlobWriter* w) const {
    w->PutU32(n_);
    w->PutVec(parent_);
    w->PutVec(depth_);
    w->PutVec(first_child_);
    w->PutVec(next_sibling_);
    w->PutVec(prev_sibling_);
  }
  void DecodeFrom(BlobReader* r) {
    n_ = r->GetU32();
    r->GetVec(&parent_);
    r->GetVec(&depth_);
    r->GetVec(&first_child_);
    r->GetVec(&next_sibling_);
    r->GetVec(&prev_sibling_);
  }

 private:
  void Detach(NodeId v);
  void Attach(NodeId v, NodeId parent);
  // Assigns depths in v's subtree starting from base_depth; returns the
  // maximum depth assigned.
  uint32_t SetSubtreeDepths(NodeId v, uint32_t base_depth);

  NodeId n_;
  std::vector<NodeId> parent_;
  std::vector<uint32_t> depth_;
  std::vector<NodeId> first_child_;
  std::vector<NodeId> next_sibling_;
  std::vector<NodeId> prev_sibling_;
};

}  // namespace ioscc

#endif  // IOSCC_SCC_SPANNING_TREE_H_
