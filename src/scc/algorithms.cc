#include "scc/algorithms.h"

#include <algorithm>
#include <memory>
#include <thread>

#include "scc/dfs_scc.h"
#include "scc/em_scc.h"
#include "scc/kosaraju.h"
#include "scc/one_phase.h"
#include "scc/one_phase_batch.h"
#include "scc/parallel_scc.h"
#include "scc/tarjan.h"
#include "scc/two_phase.h"

namespace ioscc {

const char* AlgorithmName(SccAlgorithm algorithm) {
  switch (algorithm) {
    case SccAlgorithm::kOnePhaseBatch:
      return "1PB-SCC";
    case SccAlgorithm::kOnePhase:
      return "1P-SCC";
    case SccAlgorithm::kTwoPhase:
      return "2P-SCC";
    case SccAlgorithm::kDfs:
      return "DFS-SCC";
    case SccAlgorithm::kEm:
      return "EM-SCC";
  }
  return "?";
}

Status ParseAlgorithm(const std::string& name, SccAlgorithm* algorithm) {
  std::string base = name;
  if (base.size() > 4 && base.substr(base.size() - 4) == "-SCC") {
    base = base.substr(0, base.size() - 4);
  }
  if (base == "1PB") {
    *algorithm = SccAlgorithm::kOnePhaseBatch;
  } else if (base == "1P") {
    *algorithm = SccAlgorithm::kOnePhase;
  } else if (base == "2P") {
    *algorithm = SccAlgorithm::kTwoPhase;
  } else if (base == "DFS") {
    *algorithm = SccAlgorithm::kDfs;
  } else if (base == "EM") {
    *algorithm = SccAlgorithm::kEm;
  } else {
    return Status::InvalidArgument("unknown algorithm: " + name);
  }
  return Status::OK();
}

std::vector<SccAlgorithm> AllAlgorithms() {
  return {SccAlgorithm::kOnePhaseBatch, SccAlgorithm::kOnePhase,
          SccAlgorithm::kTwoPhase, SccAlgorithm::kDfs, SccAlgorithm::kEm};
}

Status RunScc(SccAlgorithm algorithm, const std::string& path,
              const SemiExternalOptions& options, SccResult* result,
              RunStats* stats) {
  switch (algorithm) {
    case SccAlgorithm::kOnePhaseBatch:
      return OnePhaseBatchScc(path, options, result, stats);
    case SccAlgorithm::kOnePhase:
      return OnePhaseScc(path, options, result, stats);
    case SccAlgorithm::kTwoPhase:
      return TwoPhaseScc(path, options, result, stats);
    case SccAlgorithm::kDfs:
      return DfsScc(path, options, result, stats);
    case SccAlgorithm::kEm:
      return EmScc(path, options, result, stats);
  }
  return Status::InvalidArgument("bad algorithm enum");
}

const char* BatchKernelName(BatchKernel kernel) {
  switch (kernel) {
    case BatchKernel::kTarjan:
      return "tarjan";
    case BatchKernel::kKosaraju:
      return "kosaraju";
    case BatchKernel::kParallelFb:
      return "parallel_fb";
  }
  return "?";
}

Status ParseBatchKernel(const std::string& name, BatchKernel* kernel) {
  if (name == "tarjan") {
    *kernel = BatchKernel::kTarjan;
  } else if (name == "kosaraju") {
    *kernel = BatchKernel::kKosaraju;
  } else if (name == "parallel_fb") {
    *kernel = BatchKernel::kParallelFb;
  } else {
    return Status::InvalidArgument("unknown kernel: " + name +
                                   " (want tarjan|kosaraju|parallel_fb)");
  }
  return Status::OK();
}

std::vector<BatchKernel> AllBatchKernels() {
  return {BatchKernel::kTarjan, BatchKernel::kKosaraju,
          BatchKernel::kParallelFb};
}

SccResult RunInMemoryKernel(BatchKernel kernel, const Digraph& graph,
                            uint32_t threads, uint32_t granularity) {
  switch (kernel) {
    case BatchKernel::kTarjan:
      return TarjanScc(graph);
    case BatchKernel::kKosaraju:
      return KosarajuScc(graph);
    case BatchKernel::kParallelFb: {
      if (threads == 0) {
        threads = std::max(1u, std::thread::hardware_concurrency());
      }
      std::unique_ptr<ThreadPool> pool;
      if (threads > 1) {
        pool = std::make_unique<ThreadPool>(static_cast<int>(threads));
      }
      ParallelSccOptions options;
      options.pool = pool.get();
      options.granularity = granularity;
      return ParallelFbScc(graph, options);
    }
  }
  return SccResult{};
}

}  // namespace ioscc
