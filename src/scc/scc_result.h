// SCC partition representation and comparison helpers.

#ifndef IOSCC_SCC_SCC_RESULT_H_
#define IOSCC_SCC_SCC_RESULT_H_

#include <cstdint>
#include <vector>

#include "graph/types.h"

namespace ioscc {

// The SCC partition of a graph with n nodes: component[v] identifies v's
// SCC. After Normalize(), component[v] is the smallest node id in v's SCC,
// which makes partitions from different algorithms directly comparable.
struct SccResult {
  std::vector<NodeId> component;

  NodeId node_count() const {
    return static_cast<NodeId>(component.size());
  }

  // Rewrites labels to the canonical form (min member id per component).
  void Normalize();

  // Number of distinct components. Requires normalized labels.
  uint64_t ComponentCount() const;

  // Size of each component, indexed by canonical label; zero elsewhere.
  // Requires normalized labels.
  std::vector<uint32_t> ComponentSizes() const;

  // Size of the largest component (0 for the empty graph).
  uint32_t LargestComponentSize() const;

  // Number of nodes that belong to a non-trivial SCC (size >= 2).
  uint64_t NodesInNontrivialSccs() const;

  // Order-insensitive content equality of two partitions (both normalized).
  friend bool operator==(const SccResult& a, const SccResult& b) {
    return a.component == b.component;
  }
};

}  // namespace ioscc

#endif  // IOSCC_SCC_SCC_RESULT_H_
