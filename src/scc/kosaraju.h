// Kosaraju-Sharir in-memory SCC algorithm (iterative, two DFS passes).
//
// The algorithm DFS-SCC semi-externalizes; kept as a second independent
// oracle so the test suite can cross-check Tarjan, and as the reference
// whose "total order is too strong" observation motivates the paper.

#ifndef IOSCC_SCC_KOSARAJU_H_
#define IOSCC_SCC_KOSARAJU_H_

#include "graph/digraph.h"
#include "scc/scc_result.h"

namespace ioscc {

// Computes the SCC partition of `graph`. Labels are normalized.
SccResult KosarajuScc(const Digraph& graph);

// Condensation via Kosaraju: same contract as CondensationOf (tarjan.h) —
// normalized labels in `scc`, component representatives in `order` in
// *reverse* topological order (successors before predecessors), returned
// DAG edges named by representatives. Kosaraju's second pass discovers
// components in topological order (decreasing first-pass finish time), so
// `order` is that discovery order reversed.
std::vector<Edge> CondensationOfKosaraju(const Digraph& graph,
                                         SccResult* scc,
                                         std::vector<NodeId>* order);

}  // namespace ioscc

#endif  // IOSCC_SCC_KOSARAJU_H_
