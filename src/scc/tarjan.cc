#include "scc/tarjan.h"

#include <algorithm>
#include <vector>

namespace ioscc {
namespace {

constexpr uint32_t kUnvisited = static_cast<uint32_t>(-1);

// Iterative Tarjan. Emits, via `on_component`, each SCC as it completes
// (reverse topological order of the condensation).
template <typename OnComponent>
void RunTarjan(const Digraph& graph, std::vector<NodeId>* component,
               OnComponent on_component) {
  const NodeId n = graph.node_count();
  component->assign(n, kInvalidNode);
  std::vector<uint32_t> index(n, kUnvisited);
  std::vector<uint32_t> lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<NodeId> stack;          // Tarjan's component stack
  uint32_t next_index = 0;

  struct Frame {
    NodeId node;
    size_t edge_pos;  // next out-neighbor to explore
  };
  std::vector<Frame> dfs;

  for (NodeId root = 0; root < n; ++root) {
    if (index[root] != kUnvisited) continue;
    dfs.push_back({root, 0});
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;

    while (!dfs.empty()) {
      Frame& frame = dfs.back();
      NodeId u = frame.node;
      auto neighbors = graph.OutNeighbors(u);
      if (frame.edge_pos < neighbors.size()) {
        NodeId v = neighbors[frame.edge_pos++];
        if (index[v] == kUnvisited) {
          index[v] = lowlink[v] = next_index++;
          stack.push_back(v);
          on_stack[v] = true;
          dfs.push_back({v, 0});
        } else if (on_stack[v]) {
          lowlink[u] = std::min(lowlink[u], index[v]);
        }
        continue;
      }
      // u finished: pop a component if u is its root.
      dfs.pop_back();
      if (!dfs.empty()) {
        NodeId parent = dfs.back().node;
        lowlink[parent] = std::min(lowlink[parent], lowlink[u]);
      }
      if (lowlink[u] == index[u]) {
        // Pop u's component off the stack; use the smallest member id as
        // the label so results come out normalized without a second pass.
        size_t first = stack.size();
        do {
          --first;
          on_stack[stack[first]] = false;
        } while (stack[first] != u);
        NodeId label = *std::min_element(stack.begin() + first, stack.end());
        for (size_t i = first; i < stack.size(); ++i) {
          (*component)[stack[i]] = label;
        }
        on_component(label,
                     std::span<const NodeId>(stack.data() + first,
                                             stack.size() - first));
        stack.resize(first);
      }
    }
  }
}

}  // namespace

SccResult TarjanScc(const Digraph& graph) {
  SccResult result;
  RunTarjan(graph, &result.component,
            [](NodeId, std::span<const NodeId>) {});
  return result;
}

std::vector<Edge> CondensationOf(const Digraph& graph, SccResult* scc,
                                 std::vector<NodeId>* order) {
  order->clear();
  RunTarjan(graph, &scc->component,
            [&](NodeId label, std::span<const NodeId>) {
              order->push_back(label);
            });
  std::vector<Edge> dag_edges;
  for (NodeId u = 0; u < graph.node_count(); ++u) {
    NodeId cu = scc->component[u];
    for (NodeId v : graph.OutNeighbors(u)) {
      NodeId cv = scc->component[v];
      if (cu != cv) dag_edges.push_back(Edge{cu, cv});
    }
  }
  return dag_edges;
}

}  // namespace ioscc
