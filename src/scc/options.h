// Options and run statistics shared by every semi-external SCC algorithm.

#ifndef IOSCC_SCC_OPTIONS_H_
#define IOSCC_SCC_OPTIONS_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "io/io_stats.h"

namespace ioscc {

class CheckpointHook;  // scc/checkpoint_hook.h

// Per-iteration reduction record (feeds the paper's Table 1).
struct IterationStats {
  uint64_t nodes_reduced = 0;   // contracted away + rejected this iteration
  uint64_t edges_reduced = 0;   // edges dropped from the stream
  uint64_t live_nodes = 0;      // remaining after the iteration
  uint64_t live_edges = 0;
  // Block I/O performed by this iteration. The first iteration also
  // carries the setup I/O (opening the stream, reading the header), so
  // summing `io` over per_iteration reproduces RunStats.io exactly —
  // tests/run_report_test.cc asserts this identity.
  IoStats io;
};

// In-memory SCC kernel used by 1PB-SCC on each batch graph. The paper
// names Kosaraju-Sharir (it reuses the pass-1 finish order as the
// topological sort); Tarjan produces the identical condensation in one
// pass and is the default. kParallelFb is the forward-backward
// divide-and-conquer kernel (scc/parallel_scc.h): same partition and
// condensation contract, parallel across kernel_threads workers. Every
// kernel is RAM-only, so the logical I/O ledger is byte-identical
// whichever one runs.
enum class BatchKernel { kTarjan, kKosaraju, kParallelFb };

struct SemiExternalOptions {
  // Bytes of main memory available to edge batches (1PB-SCC) and in-memory
  // partitions (EM-SCC) *on top of* the O(|V|) node arrays the semi-
  // external model always grants. The paper's default memory is
  // 4 * 3|V| bytes + one block; RunHarness mirrors that.
  uint64_t memory_budget_bytes = 64ull << 20;

  // Early-acceptance threshold tau as a fraction of |V| (paper: 0.5%).
  // A graph rewrite is triggered once some contracted SCC reaches this
  // size. Set to 0 to rewrite on every iteration; < 0 disables.
  double tau_fraction = 0.005;

  // Early rejection runs every this many iterations (paper: 5).
  // 0 disables early rejection.
  uint32_t reject_interval = 5;

  // Use an extra frozen classification scan for early rejection instead of
  // accumulating the drank_min/max bounds during the mutating scan. Costs
  // one additional scan per rejection round but makes the bounds exact.
  bool strict_rejection = false;

  // Abort with Status::Incomplete after this many edge-scan iterations
  // (0 = derive a generous bound from the graph size). This is the
  // safeguard for EM-SCC's documented non-termination cases.
  uint64_t max_iterations = 0;

  // Wall-clock cap in seconds (0 = none); the paper uses 5 hours and
  // reports INF for runs that exceed it.
  double time_limit_seconds = 0;

  // Block size for scratch files written by the algorithms (reduced graph
  // rewrites, reversed graphs, sort runs). Input files carry their own.
  size_t scratch_block_size = kDefaultBlockSize;

  // Directory for scratch files; empty = fresh system temp dir.
  std::string scratch_dir;

  // In-memory kernel for 1PB-SCC batch graphs.
  BatchKernel batch_kernel = BatchKernel::kTarjan;

  // Worker threads for kParallelFb: 0 picks one per hardware thread,
  // 1 runs inline (no pool), N > 1 builds a pool of N workers. The
  // kernel pool is private to the run — never the process-wide I/O pool.
  // Ignored by the serial kernels.
  uint32_t kernel_threads = 0;

  // Vertical granularity for kParallelFb: simultaneous BFS sources per
  // task (0 = kDefaultKernelGranularity in scc/parallel_scc.h).
  uint32_t kernel_granularity = 0;

  // Invoked after every full pass over the edge stream with the 1-based
  // pass number and that pass's reduction record (zeroed for algorithms
  // that do not reduce the graph). Return false to cancel: the algorithm
  // stops at the next pass boundary with Status::Incomplete. Long runs
  // use this for progress reporting and cooperative cancellation.
  std::function<bool(uint64_t iteration, const IterationStats& stats)>
      progress;

  // When set, the driver offers its state at every safe boundary and asks
  // it for resume state on startup (scc/checkpoint_hook.h). Not owned;
  // null (the default) leaves the run byte-identical to a build without
  // the checkpoint subsystem.
  CheckpointHook* checkpoint = nullptr;
};

struct RunStats {
  IoStats io;
  uint64_t iterations = 0;       // full passes over the edge stream
  uint64_t search_scans = 0;     // tree-search passes (2P-SCC)
  uint64_t nodes_accepted = 0;   // removed via early acceptance rewrites
  uint64_t nodes_rejected = 0;   // removed via early rejection
  uint64_t pushdowns = 0;
  uint64_t contractions = 0;
  // In-memory batch-kernel accounting (1PB-SCC): number of batch graphs
  // solved and the wall time spent inside the kernel. Deterministic
  // (invocations) and timing (micros) respectively.
  uint64_t kernel_invocations = 0;
  uint64_t kernel_micros = 0;
  double seconds = 0;
  std::vector<IterationStats> per_iteration;
};

}  // namespace ioscc

#endif  // IOSCC_SCC_OPTIONS_H_
