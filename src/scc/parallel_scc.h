// Parallel forward-backward (FB) divide-and-conquer SCC kernel.
//
// In-memory companion to Tarjan/Kosaraju for 1PB-SCC batch graphs and the
// oracle suite, built on util/thread_pool. The algorithm (per *Parallel
// Strong Connectivity Based on Faster Reachability*, PAPERS.md):
//
//   1. Trim: iteratively peel nodes with zero in- or out-degree (ignoring
//      self-loops) — each is a size-1 SCC. Web-scale batch graphs shed the
//      bulk of their periphery here, so the peel cascade is itself
//      level-parallel on the pool, like the BFS below.
//   2. Pivot: pick the remaining node maximizing
//      (out-degree+1) * (in-degree+1), smallest id on ties — a
//      deterministic stand-in for the classic "likely in the giant SCC"
//      heuristic.
//   3. Reach: run forward and backward BFS from the pivot concurrently.
//      Both directions share one TaskGroup per level; each level's
//      frontier is split into chunks of `granularity` sources expanded in
//      parallel, claiming nodes via atomic stamp exchange.
//   4. Split: F∩B is one SCC; recurse on F\B, B\F and the untouched rest.
//      Subproblems live in an explicit deque drained by the calling
//      thread (pool workers never Wait, so the FIFO pool cannot
//      deadlock); small subproblems are batched and solved by parallel
//      restricted-Tarjan tasks over disjoint node sets.
//
// Output is deterministic at every thread count: the SCC partition of a
// graph is unique, labels are canonical (smallest member id), and the
// derived condensation below is computed by data order, never completion
// order. The kernel performs no block I/O — the logical ledger of a
// 1PB-SCC run is byte-identical whichever kernel is selected
// (tests assert this).

#ifndef IOSCC_SCC_PARALLEL_SCC_H_
#define IOSCC_SCC_PARALLEL_SCC_H_

#include <cstdint>
#include <functional>

#include "graph/digraph.h"
#include "scc/scc_result.h"
#include "util/thread_pool.h"

namespace ioscc {

// Default vertical granularity: frontier sources expanded per task. Small
// enough to split a few-thousand-node frontier across a handful of
// workers, large enough that a task amortizes its queue round trip.
inline constexpr uint32_t kDefaultKernelGranularity = 512;

struct ParallelSccOptions {
  // Worker pool; null runs every task inline on the calling thread (the
  // serial path needs no separate code). The pool is borrowed, never
  // owned — callers that want N threads build ThreadPool(N) themselves.
  // Must NOT be the process-wide I/O pool: kernel tasks would otherwise
  // interleave with prefetch tasks and starve the I/O pipeline.
  ThreadPool* pool = nullptr;

  // Vertical granularity: number of simultaneous BFS sources (frontier
  // chunk size) per task, and the unit used to size the small-subproblem
  // cutoff. 0 selects kDefaultKernelGranularity.
  uint32_t granularity = 0;

  // Liveness tick, invoked from the orchestrating thread after every trim
  // level, BFS level, and drained subproblem. Purely observational — the
  // 1PB-SCC driver wires it to the telemetry stall watchdog so one big
  // batch can outlast the stall window without a false alarm. Must be
  // cheap and must not touch kernel state; null disables it.
  std::function<void()> heartbeat;
};

// Computes the SCC partition of `graph`. Labels are normalized (smallest
// member id), identical to TarjanScc(graph) for every input and every
// pool size.
SccResult ParallelFbScc(const Digraph& graph,
                        const ParallelSccOptions& options = {});

// Condensation with the same contract as CondensationOf (tarjan.h):
// normalized partition in `scc`, reverse-topological component order in
// `order`, returns condensation edges named by canonical representatives
// (self-loops removed, duplicates possible). Edge order and `order` are
// deterministic functions of the graph alone.
std::vector<Edge> CondensationOfParallelFb(const Digraph& graph,
                                           const ParallelSccOptions& options,
                                           SccResult* scc,
                                           std::vector<NodeId>* order);

}  // namespace ioscc

#endif  // IOSCC_SCC_PARALLEL_SCC_H_
