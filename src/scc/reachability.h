// GRAIL-style reachability over general directed graphs — the paper's
// flagship motivating application (Section 1): "the GRAIL index needs to
// be built on DAG ... it must compute all SCCs before constructing an
// index for a general directed graph".
//
// GrailIndex implements the interval-labeling scheme of Yildirim, Chaoji
// and Zaki (GRAIL, PVLDB'10) over a DAG: k independent post-order interval
// labelings with randomized child orders; query u -> v is rejected
// whenever some labeling's interval of v is not contained in u's
// (exception-free variant: accepted pairs fall back to a pruned DFS).
//
// ReachabilityOracle composes the full pipeline over a general graph:
// SCC partition (same-component queries are trivially reachable) +
// condensation + GrailIndex.

#ifndef IOSCC_SCC_REACHABILITY_H_
#define IOSCC_SCC_REACHABILITY_H_

#include <cstdint>
#include <vector>

#include "graph/digraph.h"
#include "scc/scc_result.h"

namespace ioscc {

class GrailIndex {
 public:
  // Builds `num_labelings` randomized interval labelings of `dag`
  // (which must be acyclic; cycles make the labels meaningless).
  explicit GrailIndex(const Digraph& dag, int num_labelings = 2,
                      uint64_t seed = 1);

  int num_labelings() const { return static_cast<int>(labelings_.size()); }

  // False means u definitely cannot reach v. True means "maybe".
  bool MayReach(NodeId u, NodeId v) const;

  // Exact reachability in `dag` (must be the graph the index was built
  // on): interval filter first, then DFS with per-node filter pruning.
  bool Reaches(const Digraph& dag, NodeId u, NodeId v) const;

 private:
  struct Labeling {
    std::vector<uint32_t> low;   // min post-order in v's reachable set
    std::vector<uint32_t> post;  // v's post-order number
  };

  std::vector<Labeling> labelings_;
};

// End-to-end reachability over a general directed graph: contracts SCCs,
// indexes the condensation, and answers queries on original node ids.
class ReachabilityOracle {
 public:
  // `scc` must be the normalized partition of `graph`.
  ReachabilityOracle(const Digraph& graph, const SccResult& scc,
                     int num_labelings = 2, uint64_t seed = 1);

  bool Reaches(NodeId u, NodeId v) const;

  // Fraction of the id space that is a component representative; exposed
  // for diagnostics.
  const Digraph& dag() const { return dag_; }

 private:
  std::vector<NodeId> component_;
  Digraph dag_;
  GrailIndex index_;
};

}  // namespace ioscc

#endif  // IOSCC_SCC_REACHABILITY_H_
