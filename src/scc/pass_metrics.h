// Shared per-pass reduction counters for the semi-external drivers.
//
// Every driver bumps the same registry counters at each pass boundary, so
// a run report's metrics snapshot shows the aggregate reduction work
// (nodes accepted / rejected / contracted) regardless of which algorithm
// produced it. Handles are cached once per process; bumping is a relaxed
// atomic add.

#ifndef IOSCC_SCC_PASS_METRICS_H_
#define IOSCC_SCC_PASS_METRICS_H_

#include "obs/metrics.h"

namespace ioscc {

struct PassCounters {
  Counter* passes;
  Counter* nodes_accepted;
  Counter* nodes_rejected;
  Counter* contractions;

  static const PassCounters& Get() {
    static PassCounters counters{
        MetricsRegistry::Global().GetCounter("scc.passes"),
        MetricsRegistry::Global().GetCounter("scc.nodes_accepted"),
        MetricsRegistry::Global().GetCounter("scc.nodes_rejected"),
        MetricsRegistry::Global().GetCounter("scc.contractions")};
    return counters;
  }
};

}  // namespace ioscc

#endif  // IOSCC_SCC_PASS_METRICS_H_
