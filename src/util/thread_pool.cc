#include "util/thread_pool.h"

#include <algorithm>
#include <utility>

namespace ioscc {

ThreadPool::ThreadPool(int num_threads) {
  const int n = std::max(1, num_threads);
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

bool ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return false;
    queue_.push_back(std::move(task));
    ++tasks_submitted_;
  }
  cv_.notify_one();
  return true;
}

size_t ThreadPool::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

uint64_t ThreadPool::tasks_submitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tasks_submitted_;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      // Drain the queue even during shutdown: a queued task may be the
      // one a TaskGroup::Wait is blocked on.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

struct TaskGroup::State {
  std::mutex mu;
  std::condition_variable cv;
  int outstanding = 0;
};

TaskGroup::TaskGroup(ThreadPool* pool)
    : pool_(pool), state_(std::make_shared<State>()) {}

void TaskGroup::Run(std::function<void()> task) {
  if (pool_ == nullptr) {
    task();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    ++state_->outstanding;
  }
  pool_->Submit([state = state_, task = std::move(task)] {
    task();
    {
      std::lock_guard<std::mutex> lock(state->mu);
      --state->outstanding;
    }
    state->cv.notify_all();
  });
}

void TaskGroup::Wait() {
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->cv.wait(lock, [this] { return state_->outstanding == 0; });
}

}  // namespace ioscc
