#include "util/logging.h"

namespace ioscc {
namespace {
LogLevel g_level = LogLevel::kQuiet;
}  // namespace

LogLevel GetLogLevel() { return g_level; }
void SetLogLevel(LogLevel level) { g_level = level; }

namespace internal_logging {
void LogPrefix(const char* tag) { std::fprintf(stderr, "[%s] ", tag); }
}  // namespace internal_logging

}  // namespace ioscc
