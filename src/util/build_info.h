// Build provenance baked in at configure time (CMake), so every binary's
// --version output and every BENCH environment block names the exact
// build that produced a telemetry artifact: git SHA, compiler, flags,
// build type. The values are constants captured when CMake last ran;
// an incremental rebuild without re-configuring can lag the working tree
// by design (CMake re-runs on CMakeLists changes, which covers CI).

#ifndef IOSCC_UTIL_BUILD_INFO_H_
#define IOSCC_UTIL_BUILD_INFO_H_

#include <string>

namespace ioscc {

// Short git SHA of HEAD at configure time ("unknown" outside a repo),
// with a "-dirty" suffix when the tree had uncommitted changes.
const char* BuildGitSha();

// "GNU 13.2.0" style compiler id + version.
const char* BuildCompiler();

// The CXX flags in effect (base + build-type flags).
const char* BuildCxxFlags();

// "RelWithDebInfo", "Debug", ...
const char* BuildType();

// One-line version banner: "<binary> (ioscc <sha>, <compiler>, <type>)".
std::string BuildVersionLine(const std::string& binary_name);

}  // namespace ioscc

#endif  // IOSCC_UTIL_BUILD_INFO_H_
