// A small fixed-size worker pool for overlapping I/O with compute.
//
// The pool is deliberately minimal: Submit() enqueues a task, workers
// drain the queue FIFO, the destructor finishes every queued task before
// joining. There is no work stealing, no priorities, no futures — the
// two users (the BlockFile async prefetcher and the pipelined external
// sort) only need "run this soon on another thread" plus a way to wait
// for a batch (TaskGroup).
//
// Threading discipline for the I/O layer is built on top of this pool,
// not inside it: tasks must never touch an IoStats ledger or the audit
// log (those stay consumer-thread-only so logical accounting is
// deterministic; docs/PERFORMANCE.md spells out the contract).
//
// Like the other opt-in seams (SetBlockAccessLog, SetBlockCache,
// SetFaultInjector), a process-wide pool is installed with
// SetIoThreadPool() before opening files and captured once at
// BlockFile::Open; with none installed everything runs synchronously and
// the hot paths are unchanged.

#ifndef IOSCC_UTIL_THREAD_POOL_H_
#define IOSCC_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace ioscc {

class ThreadPool {
 public:
  // Spawns `num_threads` workers (clamped to at least 1).
  explicit ThreadPool(int num_threads);

  // Runs every task already queued, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues `task` for execution on some worker and returns true.
  // Returns false (task dropped) only once the destructor has begun —
  // callers own the shutdown ordering, exactly like the other seams.
  bool Submit(std::function<void()> task);

  int num_threads() const { return static_cast<int>(workers_.size()); }

  // Instantaneous queue depth (tasks waiting, not running). Exposed so
  // the io layer can publish pool.* metrics without util depending on
  // obs.
  size_t queue_depth() const;

  uint64_t tasks_submitted() const;

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool shutdown_ = false;
  uint64_t tasks_submitted_ = 0;
  std::vector<std::thread> workers_;
};

// Tracks a batch of tasks submitted to a pool; Wait() blocks until every
// one of them has finished running. Reusable after Wait(). The
// destructor waits too, so a TaskGroup going out of scope can never
// leave a task running against freed state.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool* pool);
  ~TaskGroup() { Wait(); }

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  // Submits `task` to the pool and counts it as outstanding. With a null
  // pool the task runs inline on the calling thread (callers then need
  // no separate serial code path).
  void Run(std::function<void()> task);

  void Wait();

 private:
  // Shared with the completion callback of every in-flight task, so a
  // task finishing after the group is gone touches live state.
  struct State;
  ThreadPool* pool_;
  std::shared_ptr<State> state_;
};

namespace internal_util {
inline std::atomic<ThreadPool*> g_io_thread_pool{nullptr};
}  // namespace internal_util

// Installs `pool` as the process-wide I/O worker pool (nullptr disables
// threading). Not synchronized against open BlockFiles: install before
// opening them, uninstall (and only then destroy the pool) after closing
// them — the same contract as SetBlockCache.
inline void SetIoThreadPool(ThreadPool* pool) {
  internal_util::g_io_thread_pool.store(pool, std::memory_order_release);
}

inline ThreadPool* GetIoThreadPool() {
  return internal_util::g_io_thread_pool.load(std::memory_order_relaxed);
}

}  // namespace ioscc

#endif  // IOSCC_UTIL_THREAD_POOL_H_
