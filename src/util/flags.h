// Minimal command-line flag parsing for the bench and example binaries.
//
// Flags have the form --name=value or --name (boolean true). Unknown flags
// are reported so that typos in sweep scripts fail loudly.

#ifndef IOSCC_UTIL_FLAGS_H_
#define IOSCC_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/status.h"

namespace ioscc {

class Flags {
 public:
  // Parses argv; positional (non --) arguments are collected in order.
  static Flags Parse(int argc, char** argv);

  bool Has(const std::string& name) const {
    return values_.count(name) != 0;
  }

  std::string GetString(const std::string& name,
                        const std::string& default_value) const;
  // Numeric getters exit(2) with a clear message on an empty value
  // (--cache-blocks=) or trailing garbage (--scale=0.0x): silently
  // running at the default would publish numbers for a configuration
  // nobody asked for.
  int64_t GetInt(const std::string& name, int64_t default_value) const;
  double GetDouble(const std::string& name, double default_value) const;
  bool GetBool(const std::string& name, bool default_value) const;

  const std::vector<std::string>& positional() const { return positional_; }

  // Names that were parsed but never read via a Get*; used by binaries to
  // reject typos: call after all Get* calls.
  std::vector<std::string> UnusedFlags() const;

 private:
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> used_;
  std::vector<std::string> positional_;
};

}  // namespace ioscc

#endif  // IOSCC_UTIL_FLAGS_H_
