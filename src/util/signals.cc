#include "util/signals.h"

#include <atomic>
#include <csignal>

namespace ioscc {
namespace {

std::atomic<int> g_signal_requested{0};

void RecordSignal(int sig) {
  g_signal_requested.store(sig, std::memory_order_relaxed);
}

}  // namespace

void InstallGracefulSignalHandlers() {
  std::signal(SIGINT, RecordSignal);
  std::signal(SIGTERM, RecordSignal);
}

int SignalRequested() {
  return g_signal_requested.load(std::memory_order_relaxed);
}

int GracefulExitCode() {
  const int sig = SignalRequested();
  return sig == 0 ? 0 : 128 + sig;
}

void SetSignalRequestedForTest(int sig) { RecordSignal(sig); }

}  // namespace ioscc
