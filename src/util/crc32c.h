// CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78):
// the checksum guarding edge-file v2 blocks (io/edge_file.h).
//
// Software slice-by-8 implementation — no SSE4.2 dependency, identical
// results on every platform, ~1 byte/cycle which is far faster than the
// disk it protects. The value is stored masked (the LevelDB/RocksDB
// trick) so that checksumming a buffer that itself contains an embedded
// CRC does not degenerate.

#ifndef IOSCC_UTIL_CRC32C_H_
#define IOSCC_UTIL_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace ioscc {
namespace crc32c {

// CRC32C of data[0, n); `init` chains partial computations
// (Extend(Extend(0, a), b) == Value(a+b)).
uint32_t Extend(uint32_t init, const void* data, size_t n);

inline uint32_t Value(const void* data, size_t n) {
  return Extend(0, data, n);
}

// Masking constant for stored CRCs (rotate + offset, LevelDB-style).
inline constexpr uint32_t kMaskDelta = 0xa282ead8u;

// The masked form is what goes on disk; Unmask(Mask(c)) == c.
inline uint32_t Mask(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + kMaskDelta;
}

inline uint32_t Unmask(uint32_t masked) {
  uint32_t rot = masked - kMaskDelta;
  return (rot >> 17) | (rot << 15);
}

}  // namespace crc32c
}  // namespace ioscc

#endif  // IOSCC_UTIL_CRC32C_H_
