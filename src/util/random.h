// Deterministic, seedable pseudo-random generators used by the synthetic
// graph generators and the property tests.
//
// We implement SplitMix64 (for seeding / hashing) and xoshiro256** (the
// workhorse generator). Both are tiny, fast, and reproducible across
// platforms, which matters because test expectations and benchmark datasets
// are derived from fixed seeds.

#ifndef IOSCC_UTIL_RANDOM_H_
#define IOSCC_UTIL_RANDOM_H_

#include <cstdint>

namespace ioscc {

// One step of the SplitMix64 sequence starting at `state`; advances `state`.
inline uint64_t SplitMix64Next(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// xoshiro256** by Blackman & Vigna. Seeded via SplitMix64 so that any
// 64-bit seed (including 0) yields a well-mixed state.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5ccc0de5ULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    for (auto& word : s_) word = SplitMix64Next(seed);
  }

  uint64_t Next64() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound == 0 returns 0. Uses Lemire's multiply-
  // shift reduction with rejection to avoid modulo bias.
  uint64_t Uniform(uint64_t bound) {
    if (bound == 0) return 0;
    // Rejection sampling on the top bits.
    uint64_t x = Next64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    uint64_t low = static_cast<uint64_t>(m);
    if (low < bound) {
      uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        x = Next64();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  // Uniform in [lo, hi] inclusive. Requires lo <= hi.
  uint64_t UniformRange(uint64_t lo, uint64_t hi) {
    return lo + Uniform(hi - lo + 1);
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next64() >> 11) * 0x1.0p-53;
  }

  // Bernoulli trial with probability p.
  bool OneIn(double p) { return NextDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t s_[4];
};

}  // namespace ioscc

#endif  // IOSCC_UTIL_RANDOM_H_
