#include "util/flags.h"

#include <cstdlib>

namespace ioscc {

Flags Flags::Parse(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      flags.positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    auto eq = arg.find('=');
    if (eq == std::string::npos) {
      flags.values_[arg] = "true";
    } else {
      flags.values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    }
  }
  return flags;
}

std::string Flags::GetString(const std::string& name,
                             const std::string& default_value) const {
  used_[name] = true;
  auto it = values_.find(name);
  return it == values_.end() ? default_value : it->second;
}

int64_t Flags::GetInt(const std::string& name, int64_t default_value) const {
  used_[name] = true;
  auto it = values_.find(name);
  return it == values_.end() ? default_value
                             : std::strtoll(it->second.c_str(), nullptr, 10);
}

double Flags::GetDouble(const std::string& name, double default_value) const {
  used_[name] = true;
  auto it = values_.find(name);
  return it == values_.end() ? default_value
                             : std::strtod(it->second.c_str(), nullptr);
}

bool Flags::GetBool(const std::string& name, bool default_value) const {
  used_[name] = true;
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  return it->second != "false" && it->second != "0";
}

std::vector<std::string> Flags::UnusedFlags() const {
  std::vector<std::string> unused;
  for (const auto& [name, value] : values_) {
    (void)value;
    if (!used_.count(name)) unused.push_back(name);
  }
  return unused;
}

}  // namespace ioscc
