#include "util/flags.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace ioscc {
namespace {

// Malformed numeric values are hard errors: a sweep script that passes
// --cache-blocks= or --scale=0.0x must fail loudly, not silently run at
// the default and publish numbers for a configuration nobody asked for.
[[noreturn]] void DieBadFlagValue(const std::string& name,
                                  const std::string& value,
                                  const char* expected) {
  std::fprintf(stderr, "error: invalid value for --%s: '%s' (expected %s)\n",
               name.c_str(), value.c_str(), expected);
  std::exit(2);
}

}  // namespace

Flags Flags::Parse(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      flags.positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    auto eq = arg.find('=');
    if (eq == std::string::npos) {
      flags.values_[arg] = "true";
    } else {
      flags.values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    }
  }
  return flags;
}

std::string Flags::GetString(const std::string& name,
                             const std::string& default_value) const {
  used_[name] = true;
  auto it = values_.find(name);
  return it == values_.end() ? default_value : it->second;
}

int64_t Flags::GetInt(const std::string& name, int64_t default_value) const {
  used_[name] = true;
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  const std::string& value = it->second;
  if (value.empty()) DieBadFlagValue(name, value, "an integer");
  errno = 0;
  char* end = nullptr;
  const int64_t parsed = std::strtoll(value.c_str(), &end, 10);
  if (errno != 0 || end != value.c_str() + value.size()) {
    DieBadFlagValue(name, value, "an integer");
  }
  return parsed;
}

double Flags::GetDouble(const std::string& name, double default_value) const {
  used_[name] = true;
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  const std::string& value = it->second;
  if (value.empty()) DieBadFlagValue(name, value, "a number");
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(value.c_str(), &end);
  if (errno != 0 || end != value.c_str() + value.size()) {
    DieBadFlagValue(name, value, "a number");
  }
  return parsed;
}

bool Flags::GetBool(const std::string& name, bool default_value) const {
  used_[name] = true;
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  return it->second != "false" && it->second != "0";
}

std::vector<std::string> Flags::UnusedFlags() const {
  std::vector<std::string> unused;
  for (const auto& [name, value] : values_) {
    (void)value;
    if (!used_.count(name)) unused.push_back(name);
  }
  return unused;
}

}  // namespace ioscc
