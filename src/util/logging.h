// Tiny leveled logging to stderr, enabled per-binary.
//
// The library itself stays quiet by default; benches flip the level to see
// per-iteration progress (iterations, prune counts) the way the paper's
// Table 1 reports them.

#ifndef IOSCC_UTIL_LOGGING_H_
#define IOSCC_UTIL_LOGGING_H_

#include <cstdio>
#include <utility>

namespace ioscc {

enum class LogLevel : int { kQuiet = 0, kInfo = 1, kDebug = 2 };

LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal_logging {
void LogPrefix(const char* tag);
}  // namespace internal_logging

template <typename... Args>
void LogInfo(const char* fmt, Args&&... args) {
  if (GetLogLevel() < LogLevel::kInfo) return;
  internal_logging::LogPrefix("INFO");
  std::fprintf(stderr, fmt, std::forward<Args>(args)...);
  std::fputc('\n', stderr);
}

template <typename... Args>
void LogDebug(const char* fmt, Args&&... args) {
  if (GetLogLevel() < LogLevel::kDebug) return;
  internal_logging::LogPrefix("DEBG");
  std::fprintf(stderr, fmt, std::forward<Args>(args)...);
  std::fputc('\n', stderr);
}

}  // namespace ioscc

#endif  // IOSCC_UTIL_LOGGING_H_
