// Flat little-endian binary serialization for checkpoint payloads.
//
// BlobWriter appends fixed-width scalars, strings and vectors to a byte
// string; BlobReader walks them back in the same order. There is no
// per-field tagging — the checkpoint format (io/snapshot_file.h) wraps
// every blob in a version + whole-payload CRC32C, so a reader only ever
// sees bytes written by the matching writer version, and the only
// defense a reader needs is bounds checking: any out-of-range read
// latches ok() to false and yields zero values from then on, so decoders
// can run to completion and check ok() once at the end.
//
// We only target little-endian hosts (see graph/types.h), so scalars are
// memcpy'd raw.

#ifndef IOSCC_UTIL_BLOB_H_
#define IOSCC_UTIL_BLOB_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace ioscc {

class BlobWriter {
 public:
  void PutU32(uint32_t v) { PutRaw(&v, sizeof(v)); }
  void PutU64(uint64_t v) { PutRaw(&v, sizeof(v)); }
  void PutDouble(double v) { PutRaw(&v, sizeof(v)); }
  void PutBool(bool v) { PutU32(v ? 1 : 0); }

  void PutString(const std::string& s) {
    PutU64(s.size());
    PutRaw(s.data(), s.size());
  }

  template <typename T>
  void PutVec(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable<T>::value,
                  "PutVec needs a flat element type");
    PutU64(v.size());
    if (!v.empty()) PutRaw(v.data(), v.size() * sizeof(T));
  }

  // vector<bool> has no contiguous storage; one byte per element keeps
  // the codec trivial (checkpoints are block-padded anyway).
  void PutBoolVec(const std::vector<bool>& v) {
    PutU64(v.size());
    for (bool b : v) {
      char byte = b ? 1 : 0;
      PutRaw(&byte, 1);
    }
  }

  const std::string& data() const { return buf_; }
  std::string Take() { return std::move(buf_); }

 private:
  void PutRaw(const void* p, size_t n) {
    buf_.append(static_cast<const char*>(p), n);
  }

  std::string buf_;
};

class BlobReader {
 public:
  BlobReader(const void* data, size_t size)
      : p_(static_cast<const char*>(data)), end_(p_ + size) {}
  explicit BlobReader(const std::string& data)
      : BlobReader(data.data(), data.size()) {}

  uint32_t GetU32() {
    uint32_t v = 0;
    GetRaw(&v, sizeof(v));
    return v;
  }
  uint64_t GetU64() {
    uint64_t v = 0;
    GetRaw(&v, sizeof(v));
    return v;
  }
  double GetDouble() {
    double v = 0;
    GetRaw(&v, sizeof(v));
    return v;
  }
  bool GetBool() { return GetU32() != 0; }

  std::string GetString() {
    uint64_t n = GetU64();
    if (!CheckAvail(n)) return std::string();
    std::string s(p_, static_cast<size_t>(n));
    p_ += n;
    return s;
  }

  template <typename T>
  void GetVec(std::vector<T>* out) {
    static_assert(std::is_trivially_copyable<T>::value,
                  "GetVec needs a flat element type");
    uint64_t n = GetU64();
    if (!CheckAvail(n * sizeof(T))) {
      out->clear();
      return;
    }
    out->resize(static_cast<size_t>(n));
    if (n > 0) {
      std::memcpy(out->data(), p_, static_cast<size_t>(n) * sizeof(T));
      p_ += n * sizeof(T);
    }
  }

  void GetBoolVec(std::vector<bool>* out) {
    uint64_t n = GetU64();
    if (!CheckAvail(n)) {
      out->clear();
      return;
    }
    out->assign(static_cast<size_t>(n), false);
    for (uint64_t i = 0; i < n; ++i) (*out)[i] = *p_++ != 0;
  }

  // False once any read ran past the end; all reads after that return
  // zero values.
  bool ok() const { return ok_; }
  // All bytes consumed and nothing overran.
  bool Done() const { return ok_ && p_ == end_; }

 private:
  bool CheckAvail(uint64_t n) {
    if (!ok_ || n > static_cast<uint64_t>(end_ - p_)) {
      ok_ = false;
      return false;
    }
    return true;
  }

  void GetRaw(void* out, size_t n) {
    if (!CheckAvail(n)) return;
    std::memcpy(out, p_, n);
    p_ += n;
  }

  const char* p_;
  const char* end_;
  bool ok_ = true;
};

}  // namespace ioscc

#endif  // IOSCC_UTIL_BLOB_H_
