#include "util/crc32c.h"

namespace ioscc {
namespace crc32c {
namespace {

// 8 tables of 256 entries, generated once at startup from the reflected
// Castagnoli polynomial. Table [0] is the classic byte-at-a-time table;
// tables [1..7] fold 8 input bytes per iteration (slice-by-8).
struct Tables {
  uint32_t t[8][256];

  Tables() {
    constexpr uint32_t kPoly = 0x82F63B78u;
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      for (int k = 1; k < 8; ++k) {
        t[k][i] = (t[k - 1][i] >> 8) ^ t[0][t[k - 1][i] & 0xFF];
      }
    }
  }
};

const Tables& GetTables() {
  static const Tables tables;
  return tables;
}

inline uint32_t LoadLe32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 |
         static_cast<uint32_t>(p[3]) << 24;
}

}  // namespace

uint32_t Extend(uint32_t init, const void* data, size_t n) {
  const Tables& tb = GetTables();
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t crc = ~init;
  while (n >= 8) {
    const uint32_t lo = LoadLe32(p) ^ crc;
    const uint32_t hi = LoadLe32(p + 4);
    crc = tb.t[7][lo & 0xFF] ^ tb.t[6][(lo >> 8) & 0xFF] ^
          tb.t[5][(lo >> 16) & 0xFF] ^ tb.t[4][lo >> 24] ^
          tb.t[3][hi & 0xFF] ^ tb.t[2][(hi >> 8) & 0xFF] ^
          tb.t[1][(hi >> 16) & 0xFF] ^ tb.t[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    crc = (crc >> 8) ^ tb.t[0][(crc ^ *p++) & 0xFF];
  }
  return ~crc;
}

}  // namespace crc32c
}  // namespace ioscc
