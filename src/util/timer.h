// Wall-clock timing for the benchmark harness.

#ifndef IOSCC_UTIL_TIMER_H_
#define IOSCC_UTIL_TIMER_H_

#include <chrono>

namespace ioscc {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// A soft deadline: algorithms poll Expired() between iterations and return
// Status::Incomplete when the budget is gone (the paper's 5-hour cap,
// reported as INF).
class Deadline {
 public:
  // seconds <= 0 means "no deadline".
  explicit Deadline(double seconds = 0) : seconds_(seconds) {}

  bool Expired() const {
    return seconds_ > 0 && timer_.ElapsedSeconds() >= seconds_;
  }

  double limit_seconds() const { return seconds_; }

 private:
  double seconds_;
  Timer timer_;
};

}  // namespace ioscc

#endif  // IOSCC_UTIL_TIMER_H_
