#include "util/status.h"

namespace ioscc {
namespace {

const char* CodeName(Status::Code code) {
  switch (code) {
    case Status::Code::kOk:
      return "OK";
    case Status::Code::kInvalidArgument:
      return "InvalidArgument";
    case Status::Code::kNotFound:
      return "NotFound";
    case Status::Code::kCorruption:
      return "Corruption";
    case Status::Code::kIoError:
      return "IoError";
    case Status::Code::kOutOfMemoryBudget:
      return "OutOfMemoryBudget";
    case Status::Code::kIncomplete:
      return "Incomplete";
    case Status::Code::kInternal:
      return "Internal";
  }
  return "Unknown";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  if (!msg_.empty()) {
    out += ": ";
    out += msg_;
  }
  return out;
}

}  // namespace ioscc
