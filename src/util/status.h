// Status: lightweight error propagation without exceptions.
//
// Follows the RocksDB/LevelDB idiom: every fallible operation returns a
// Status (or a StatusOr<T>); callers must check ok() before using results.
// The library never throws.

#ifndef IOSCC_UTIL_STATUS_H_
#define IOSCC_UTIL_STATUS_H_

#include <string>
#include <utility>

namespace ioscc {

class Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kCorruption,
    kIoError,
    kOutOfMemoryBudget,
    kIncomplete,   // algorithm hit an iteration/time cap before finishing
    kInternal,
  };

  // Default-constructed Status is OK.
  Status() : code_(Code::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(Code::kCorruption, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(Code::kIoError, std::move(msg));
  }
  static Status OutOfMemoryBudget(std::string msg) {
    return Status(Code::kOutOfMemoryBudget, std::move(msg));
  }
  static Status Incomplete(std::string msg) {
    return Status(Code::kIncomplete, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(Code::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsIoError() const { return code_ == Code::kIoError; }
  bool IsOutOfMemoryBudget() const {
    return code_ == Code::kOutOfMemoryBudget;
  }
  bool IsIncomplete() const { return code_ == Code::kIncomplete; }
  bool IsInternal() const { return code_ == Code::kInternal; }

  Code code() const { return code_; }
  const std::string& message() const { return msg_; }

  // "OK" or "<code>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  Status(Code code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  Code code_;
  std::string msg_;
};

// Propagate a non-OK status to the caller.
#define IOSCC_RETURN_IF_ERROR(expr)                 \
  do {                                              \
    ::ioscc::Status _st = (expr);                   \
    if (!_st.ok()) return _st;                      \
  } while (0)

}  // namespace ioscc

#endif  // IOSCC_UTIL_STATUS_H_
