// Graceful SIGINT/SIGTERM handling for long-running binaries.
//
// The handler only records the signal; the work of stopping is
// cooperative. harness/runner.cc checks SignalRequested() in the
// progress callback it wraps around every driver loop, so a Ctrl-C stops
// the run at the next pass boundary (after the Checkpointer's forced
// final snapshot, when checkpointing is enabled) instead of mid-write.
// Binaries then flush their report sink / telemetry ring and exit with
// GracefulExitCode() — the conventional 128 + signal, distinct from both
// success and ordinary failure.

#ifndef IOSCC_UTIL_SIGNALS_H_
#define IOSCC_UTIL_SIGNALS_H_

namespace ioscc {

// Installs the SIGINT/SIGTERM recorder. Idempotent; call once at startup.
void InstallGracefulSignalHandlers();

// The last graceful-stop signal received, or 0. Async-signal-safe to set,
// cheap to poll from driver loops.
int SignalRequested();

// 128 + signal when a graceful stop was requested, else 0.
int GracefulExitCode();

// Test hook: pretend `sig` was (or was not, with 0) received.
void SetSignalRequestedForTest(int sig);

}  // namespace ioscc

#endif  // IOSCC_UTIL_SIGNALS_H_
