// Streaming graph statistics: degree profiles and structural summaries
// computed in O(|V|) memory from one sequential scan. Used by scc_tool's
// `stats` command and handy when sizing memory budgets for a dataset.

#ifndef IOSCC_GRAPH_GRAPH_STATS_H_
#define IOSCC_GRAPH_GRAPH_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "io/io_stats.h"
#include "util/status.h"

namespace ioscc {

struct GraphStats {
  uint64_t node_count = 0;
  uint64_t edge_count = 0;
  uint64_t self_loops = 0;
  uint64_t max_out_degree = 0;
  uint64_t max_in_degree = 0;
  uint64_t sources = 0;     // in-degree 0 (excluding isolated)
  uint64_t sinks = 0;       // out-degree 0 (excluding isolated)
  uint64_t isolated = 0;    // no edges at all
  double avg_degree = 0;    // m / n

  // out_degree_histogram[0] = # nodes with out-degree 0; bucket b >= 1
  // holds out-degrees in [2^(b-1), 2^b).
  std::vector<uint64_t> out_degree_histogram;
};

// One sequential scan of the edge file at `path`.
Status ComputeGraphStats(const std::string& path, GraphStats* stats,
                         IoStats* io);

}  // namespace ioscc

#endif  // IOSCC_GRAPH_GRAPH_STATS_H_
