#include "graph/graph_io.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "io/edge_file.h"

namespace ioscc {

Status LoadDigraph(const std::string& path, Digraph* graph, IoStats* stats) {
  std::vector<Edge> edges;
  uint64_t node_count = 0;
  IOSCC_RETURN_IF_ERROR(ReadAllEdges(path, &edges, &node_count, stats));
  *graph = Digraph(static_cast<NodeId>(node_count), edges);
  return Status::OK();
}

Status SaveDigraph(const Digraph& graph, const std::string& path,
                   size_t block_size, IoStats* stats) {
  std::unique_ptr<EdgeWriter> writer;
  IOSCC_RETURN_IF_ERROR(EdgeWriter::Create(path, graph.node_count(),
                                           block_size, stats, &writer));
  for (NodeId u = 0; u < graph.node_count(); ++u) {
    for (NodeId v : graph.OutNeighbors(u)) {
      IOSCC_RETURN_IF_ERROR(writer->Add(Edge{u, v}));
    }
  }
  return writer->Finish();
}

Status InduceSubgraphByNodePrefix(const std::string& input, double fraction,
                                  const std::string& output, IoStats* stats) {
  if (fraction <= 0.0 || fraction > 1.0) {
    return Status::InvalidArgument("fraction must be in (0, 1]");
  }
  std::unique_ptr<EdgeScanner> scanner;
  IOSCC_RETURN_IF_ERROR(EdgeScanner::Open(input, stats, &scanner));
  const uint64_t keep =
      std::max<uint64_t>(1, static_cast<uint64_t>(
                                std::ceil(fraction * scanner->node_count())));
  std::unique_ptr<EdgeWriter> writer;
  IOSCC_RETURN_IF_ERROR(EdgeWriter::Create(
      output, keep, scanner->info().block_size, stats, &writer));
  Edge edge;
  while (scanner->Next(&edge)) {
    if (edge.from < keep && edge.to < keep) {
      IOSCC_RETURN_IF_ERROR(writer->Add(edge));
    }
  }
  IOSCC_RETURN_IF_ERROR(scanner->status());
  return writer->Finish();
}

}  // namespace ioscc
