// In-memory directed graph in compressed sparse row (CSR) form.
//
// Used by the in-memory SCC oracles (Tarjan / Kosaraju), by 1PB-SCC's
// per-batch graphs, by EM-SCC's partitions, and by the examples. The
// semi-external algorithms themselves never materialize a Digraph of the
// full input — they stream edges from disk.

#ifndef IOSCC_GRAPH_DIGRAPH_H_
#define IOSCC_GRAPH_DIGRAPH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/types.h"

namespace ioscc {

class Digraph {
 public:
  Digraph() = default;

  // Builds the CSR from an edge list over nodes [0, node_count). Edges with
  // endpoints >= node_count are undefined behaviour (checked in debug).
  Digraph(NodeId node_count, const std::vector<Edge>& edges);

  NodeId node_count() const { return node_count_; }
  uint64_t edge_count() const { return targets_.size(); }

  std::span<const NodeId> OutNeighbors(NodeId u) const {
    return {targets_.data() + offsets_[u],
            targets_.data() + offsets_[u + 1]};
  }

  uint32_t OutDegree(NodeId u) const {
    return static_cast<uint32_t>(offsets_[u + 1] - offsets_[u]);
  }

  // The same graph with every edge reversed.
  Digraph Reversed() const;

  // All edges in CSR order (from ascending).
  std::vector<Edge> ToEdgeList() const;

 private:
  NodeId node_count_ = 0;
  std::vector<uint64_t> offsets_;  // size node_count_ + 1
  std::vector<NodeId> targets_;    // size edge_count
};

}  // namespace ioscc

#endif  // IOSCC_GRAPH_DIGRAPH_H_
