// Fundamental graph value types shared by the on-disk and in-memory layers.

#ifndef IOSCC_GRAPH_TYPES_H_
#define IOSCC_GRAPH_TYPES_H_

#include <cstdint>
#include <functional>

namespace ioscc {

// Node identifier. 32 bits supports graphs up to ~4.29G nodes, matching the
// paper's setup (4 bytes per node id; WEBSPAM-UK2007 has 105.9M nodes).
using NodeId = uint32_t;

// Sentinel for "no node" (e.g. the parent of the virtual root).
inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

// A directed edge u -> v. Exactly 8 bytes; edge files store raw arrays of
// these, little-endian (we only target little-endian hosts).
struct Edge {
  NodeId from = 0;
  NodeId to = 0;

  friend bool operator==(const Edge& a, const Edge& b) {
    return a.from == b.from && a.to == b.to;
  }
  friend bool operator<(const Edge& a, const Edge& b) {
    return a.from != b.from ? a.from < b.from : a.to < b.to;
  }
};

static_assert(sizeof(Edge) == 8, "Edge must pack to 8 bytes");

// Orders edges by target then source; used when building reverse graphs.
struct OrderEdgeByTarget {
  bool operator()(const Edge& a, const Edge& b) const {
    return a.to != b.to ? a.to < b.to : a.from < b.from;
  }
};

}  // namespace ioscc

#endif  // IOSCC_GRAPH_TYPES_H_
