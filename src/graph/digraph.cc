#include "graph/digraph.h"

#include <cassert>

namespace ioscc {

Digraph::Digraph(NodeId node_count, const std::vector<Edge>& edges)
    : node_count_(node_count) {
  offsets_.assign(static_cast<size_t>(node_count) + 1, 0);
  for (const Edge& edge : edges) {
    assert(edge.from < node_count && edge.to < node_count);
    ++offsets_[edge.from + 1];
  }
  for (size_t i = 1; i < offsets_.size(); ++i) offsets_[i] += offsets_[i - 1];
  targets_.resize(edges.size());
  std::vector<uint64_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (const Edge& edge : edges) {
    targets_[cursor[edge.from]++] = edge.to;
  }
}

Digraph Digraph::Reversed() const {
  std::vector<Edge> reversed;
  reversed.reserve(targets_.size());
  for (NodeId u = 0; u < node_count_; ++u) {
    for (NodeId v : OutNeighbors(u)) reversed.push_back(Edge{v, u});
  }
  return Digraph(node_count_, reversed);
}

std::vector<Edge> Digraph::ToEdgeList() const {
  std::vector<Edge> edges;
  edges.reserve(targets_.size());
  for (NodeId u = 0; u < node_count_; ++u) {
    for (NodeId v : OutNeighbors(u)) edges.push_back(Edge{u, v});
  }
  return edges;
}

}  // namespace ioscc
