#include "graph/graph_stats.h"

#include <algorithm>
#include <memory>

#include "graph/types.h"
#include "io/edge_file.h"

namespace ioscc {

Status ComputeGraphStats(const std::string& path, GraphStats* stats,
                         IoStats* io) {
  std::unique_ptr<EdgeScanner> scanner;
  IOSCC_RETURN_IF_ERROR(EdgeScanner::Open(path, io, &scanner));
  const uint64_t n = scanner->node_count();

  GraphStats local;
  local.node_count = n;
  std::vector<uint32_t> out_degree(n, 0);
  std::vector<uint32_t> in_degree(n, 0);
  Edge edge;
  while (scanner->Next(&edge)) {
    ++local.edge_count;
    if (edge.from == edge.to) ++local.self_loops;
    ++out_degree[edge.from];
    ++in_degree[edge.to];
  }
  IOSCC_RETURN_IF_ERROR(scanner->status());

  local.out_degree_histogram.assign(34, 0);
  for (uint64_t v = 0; v < n; ++v) {
    local.max_out_degree =
        std::max<uint64_t>(local.max_out_degree, out_degree[v]);
    local.max_in_degree =
        std::max<uint64_t>(local.max_in_degree, in_degree[v]);
    if (out_degree[v] == 0 && in_degree[v] == 0) {
      ++local.isolated;
    } else if (in_degree[v] == 0) {
      ++local.sources;
    } else if (out_degree[v] == 0) {
      ++local.sinks;
    }
    int bucket = 0;
    if (out_degree[v] > 0) {
      bucket = 1;
      while ((1u << bucket) <= out_degree[v]) ++bucket;
    }
    ++local.out_degree_histogram[std::min<size_t>(
        bucket, local.out_degree_histogram.size() - 1)];
  }
  local.avg_degree =
      n == 0 ? 0.0
             : static_cast<double>(local.edge_count) / static_cast<double>(n);
  *stats = local;
  return Status::OK();
}

}  // namespace ioscc
