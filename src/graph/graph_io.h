// Bridges between on-disk edge files and in-memory graphs, plus the
// induced-subgraph extraction used by the WEBSPAM scaling experiment
// (Fig. 12 varies the fraction of nodes kept).

#ifndef IOSCC_GRAPH_GRAPH_IO_H_
#define IOSCC_GRAPH_GRAPH_IO_H_

#include <string>
#include <vector>

#include "graph/digraph.h"
#include "graph/types.h"
#include "io/io_stats.h"
#include "util/status.h"

namespace ioscc {

// Loads a whole edge file into a CSR graph (small graphs / oracles only).
Status LoadDigraph(const std::string& path, Digraph* graph, IoStats* stats);

// Writes a CSR graph to an edge file.
Status SaveDigraph(const Digraph& graph, const std::string& path,
                   size_t block_size, IoStats* stats);

// Streams `input` and writes the subgraph induced by the first
// ceil(fraction * n) node ids (relabeled densely 0..n'-1) to `output`.
// This mirrors the paper's Exp-2 protocol of extracting induced subgraphs
// over a subset of nodes.
Status InduceSubgraphByNodePrefix(const std::string& input, double fraction,
                                  const std::string& output, IoStats* stats);

}  // namespace ioscc

#endif  // IOSCC_GRAPH_GRAPH_IO_H_
