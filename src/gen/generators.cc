#include "gen/generators.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "io/edge_file.h"
#include "util/random.h"

namespace ioscc {
namespace {

// Fisher-Yates shuffle with our deterministic RNG.
template <typename T>
void Shuffle(std::vector<T>* v, Rng* rng) {
  for (size_t i = v->size(); i > 1; --i) {
    std::swap((*v)[i - 1], (*v)[rng->Uniform(i)]);
  }
}

}  // namespace

uint64_t PlantedSccSpec::PlantedNodes() const {
  uint64_t total = 0;
  for (const PlantedComponent& c : components) total += c.size * c.count;
  return total;
}

uint64_t PlantedSccSpec::TargetEdges() const {
  // Structural minimum: a cycle per planted component.
  uint64_t structural = 0;
  for (const PlantedComponent& c : components) {
    structural += c.size * c.count;
  }
  uint64_t target = static_cast<uint64_t>(
      static_cast<double>(node_count) * avg_degree);
  return std::max(target, structural);
}

Status GeneratePlantedSccEdges(const PlantedSccSpec& spec,
                               std::vector<Edge>* edges) {
  if (spec.node_count == 0) {
    return Status::InvalidArgument("node_count must be positive");
  }
  for (const PlantedComponent& c : spec.components) {
    if (c.size < 2 && c.count > 0) {
      return Status::InvalidArgument("planted SCCs need size >= 2");
    }
  }
  if (spec.PlantedNodes() > spec.node_count) {
    return Status::InvalidArgument(
        "planted components exceed node_count (" +
        std::to_string(spec.PlantedNodes()) + " > " +
        std::to_string(spec.node_count) + ")");
  }

  const NodeId n = static_cast<NodeId>(spec.node_count);
  Rng rng(spec.seed);

  // Scatter component members across the id space: permute all node ids and
  // carve component member sets from the front ("randomly selecting all
  // nodes in SCCs first").
  std::vector<NodeId> perm(n);
  std::iota(perm.begin(), perm.end(), NodeId{0});
  Shuffle(&perm, &rng);

  // comp_of[v]: planted component index of v, or kNone for singletons.
  constexpr uint32_t kNone = static_cast<uint32_t>(-1);
  std::vector<uint32_t> comp_of(n, kNone);
  std::vector<std::vector<NodeId>> members;
  size_t cursor = 0;
  for (const PlantedComponent& c : spec.components) {
    for (uint64_t k = 0; k < c.count; ++k) {
      std::vector<NodeId> nodes(perm.begin() + cursor,
                                perm.begin() + cursor + c.size);
      cursor += c.size;
      uint32_t id = static_cast<uint32_t>(members.size());
      for (NodeId v : nodes) comp_of[v] = id;
      members.push_back(std::move(nodes));
    }
  }

  // Hidden topological rank over the condensation: every node gets a rank;
  // members of one component share theirs. Filler edges always point from
  // lower to higher rank, so no new cycle (and hence no new SCC) can form.
  std::vector<uint32_t> rank(n);
  {
    std::vector<NodeId> order(perm);  // reuse the scatter permutation basis
    Shuffle(&order, &rng);
    uint32_t next_rank = 0;
    std::vector<uint32_t> comp_rank(members.size(), kNone);
    for (NodeId v : order) {
      uint32_t c = comp_of[v];
      if (c == kNone) {
        rank[v] = next_rank++;
      } else if (comp_rank[c] == kNone) {
        comp_rank[c] = next_rank++;
        rank[v] = comp_rank[c];
      } else {
        rank[v] = comp_rank[c];
      }
    }
  }

  edges->clear();
  const uint64_t target_edges = spec.TargetEdges();
  edges->reserve(target_edges);

  // 1) Make each planted component strongly connected: a random Hamiltonian
  //    cycle, plus |C| random internal chords for robustness (the paper
  //    "adds edges among the nodes in an SCC until all nodes form an SCC").
  for (std::vector<NodeId>& nodes : members) {
    Shuffle(&nodes, &rng);
    const size_t k = nodes.size();
    for (size_t i = 0; i < k; ++i) {
      edges->push_back(Edge{nodes[i], nodes[(i + 1) % k]});
    }
    for (size_t i = 0; i < k && edges->size() < target_edges; ++i) {
      NodeId a = nodes[rng.Uniform(k)];
      NodeId b = nodes[rng.Uniform(k)];
      if (a != b) edges->push_back(Edge{a, b});
    }
  }

  // 2) Fill the remaining budget with condensation-order-respecting edges.
  while (edges->size() < target_edges) {
    NodeId a = static_cast<NodeId>(rng.Uniform(n));
    NodeId b = static_cast<NodeId>(rng.Uniform(n));
    if (a == b) continue;
    if (rank[a] == rank[b]) {
      // Same planted component: internal edge, any direction is safe.
      edges->push_back(Edge{a, b});
    } else if (rank[a] < rank[b]) {
      edges->push_back(Edge{a, b});
    } else {
      edges->push_back(Edge{b, a});
    }
  }

  // Shuffle so the on-disk order carries no structure; semi-external
  // algorithms must not benefit from accidentally sorted input.
  Shuffle(edges, &rng);
  return Status::OK();
}

Status GeneratePlantedSccFile(const PlantedSccSpec& spec,
                              const std::string& path, size_t block_size,
                              IoStats* stats) {
  std::vector<Edge> edges;
  IOSCC_RETURN_IF_ERROR(GeneratePlantedSccEdges(spec, &edges));
  return WriteEdgeFile(path, spec.node_count, edges, block_size, stats);
}

Status GenerateUniformEdges(uint64_t node_count, uint64_t edge_count,
                            uint64_t seed, std::vector<Edge>* edges) {
  if (node_count < 2 && edge_count > 0) {
    return Status::InvalidArgument("need >= 2 nodes to place edges");
  }
  Rng rng(seed);
  edges->clear();
  edges->reserve(edge_count);
  while (edges->size() < edge_count) {
    NodeId a = static_cast<NodeId>(rng.Uniform(node_count));
    NodeId b = static_cast<NodeId>(rng.Uniform(node_count));
    if (a != b) edges->push_back(Edge{a, b});
  }
  return Status::OK();
}

Status GeneratePowerLawEdges(uint64_t node_count, uint64_t edge_count,
                             double exponent, uint64_t seed,
                             std::vector<Edge>* edges) {
  if (node_count < 2 && edge_count > 0) {
    return Status::InvalidArgument("need >= 2 nodes to place edges");
  }
  if (exponent <= 1.0) {
    return Status::InvalidArgument("power-law exponent must exceed 1");
  }
  Rng rng(seed);
  // Cumulative weights w_i = (i+1)^(-1/(exponent-1)), sampled by binary
  // search over the prefix sums (node 0 is the heaviest hub).
  std::vector<double> cumulative(node_count);
  const double alpha = -1.0 / (exponent - 1.0);
  double total = 0;
  for (uint64_t i = 0; i < node_count; ++i) {
    total += std::pow(static_cast<double>(i + 1), alpha);
    cumulative[i] = total;
  }
  auto sample = [&]() {
    double x = rng.NextDouble() * total;
    return static_cast<NodeId>(
        std::lower_bound(cumulative.begin(), cumulative.end(), x) -
        cumulative.begin());
  };
  edges->clear();
  edges->reserve(edge_count);
  while (edges->size() < edge_count) {
    NodeId a = sample();
    NodeId b = sample();
    if (a != b) edges->push_back(Edge{a, b});
  }
  return Status::OK();
}

Status GenerateCitationEdges(const CitationSpec& spec,
                             std::vector<Edge>* edges) {
  if (spec.node_count < 2) {
    return Status::InvalidArgument("citation graph needs >= 2 nodes");
  }
  Rng rng(spec.seed);
  const NodeId n = static_cast<NodeId>(spec.node_count);
  edges->clear();
  const uint64_t dag_edges = static_cast<uint64_t>(
      static_cast<double>(spec.node_count) * spec.avg_degree);
  edges->reserve(dag_edges + static_cast<uint64_t>(
                                 spec.noise_fraction * dag_edges) +
                 1);

  // Temporal DAG: node i cites uniform random earlier nodes. The expected
  // out-degree is avg_degree, drawn as a small geometric-ish spread so
  // degree is not constant.
  for (uint64_t e = 0; e < dag_edges; ++e) {
    // Pick the citing node biased away from node 0 (which has no one to
    // cite) by sampling from [1, n).
    NodeId from = static_cast<NodeId>(1 + rng.Uniform(n - 1));
    NodeId to = static_cast<NodeId>(rng.Uniform(from));
    edges->push_back(Edge{from, to});
  }

  // Extra uniform random edges (the paper's +10% protocol); these are the
  // only source of cycles.
  const uint64_t noise =
      static_cast<uint64_t>(spec.noise_fraction * dag_edges);
  for (uint64_t e = 0; e < noise;) {
    NodeId a = static_cast<NodeId>(rng.Uniform(n));
    NodeId b = static_cast<NodeId>(rng.Uniform(n));
    if (a == b) continue;
    edges->push_back(Edge{a, b});
    ++e;
  }

  Shuffle(edges, &rng);
  return Status::OK();
}

Status GenerateCitationFile(const CitationSpec& spec, const std::string& path,
                            size_t block_size, IoStats* stats) {
  std::vector<Edge> edges;
  IOSCC_RETURN_IF_ERROR(GenerateCitationEdges(spec, &edges));
  return WriteEdgeFile(path, spec.node_count, edges, block_size, stats);
}

PlantedSccSpec MassiveSccSpec(uint64_t node_count, double degree,
                              uint64_t scc_size, uint64_t seed) {
  PlantedSccSpec spec;
  spec.node_count = node_count;
  spec.avg_degree = degree;
  spec.components = {{scc_size, 1}};
  spec.seed = seed;
  return spec;
}

PlantedSccSpec LargeSccSpec(uint64_t node_count, double degree,
                            uint64_t scc_size, uint64_t scc_count,
                            uint64_t seed) {
  PlantedSccSpec spec;
  spec.node_count = node_count;
  spec.avg_degree = degree;
  spec.components = {{scc_size, scc_count}};
  spec.seed = seed;
  return spec;
}

PlantedSccSpec SmallSccSpec(uint64_t node_count, double degree,
                            uint64_t scc_size, uint64_t scc_count,
                            uint64_t seed) {
  PlantedSccSpec spec;
  spec.node_count = node_count;
  spec.avg_degree = degree;
  spec.components = {{scc_size, scc_count}};
  spec.seed = seed;
  return spec;
}

PlantedSccSpec WebspamSpec(uint64_t node_count, double degree,
                           uint64_t seed) {
  PlantedSccSpec spec;
  spec.node_count = node_count;
  spec.avg_degree = degree;
  spec.seed = seed;

  // Composition measured on the real WEBSPAM-UK2007 (§7.4): the largest SCC
  // holds 64.8% of all nodes, the runner-up 0.22%, and small SCCs bring the
  // total SCC coverage to ~80% of nodes.
  const uint64_t giant = static_cast<uint64_t>(0.648 * node_count);
  const uint64_t second = std::max<uint64_t>(2, node_count / 450);
  uint64_t covered = giant + second;
  const uint64_t coverage_target = static_cast<uint64_t>(0.80 * node_count);
  spec.components.push_back({giant, 1});
  spec.components.push_back({second, 1});
  // Tail: mixture of mid (100), small (10) and tiny (2) SCCs, biased to the
  // small end like the real distribution (smallest SCC in the data has 2
  // nodes).
  const uint64_t tail = coverage_target > covered
                            ? coverage_target - covered
                            : 0;
  const uint64_t mid_nodes = tail / 4;
  const uint64_t small_nodes = tail / 2;
  const uint64_t tiny_nodes = tail - mid_nodes - small_nodes;
  if (mid_nodes >= 100) spec.components.push_back({100, mid_nodes / 100});
  if (small_nodes >= 10) spec.components.push_back({10, small_nodes / 10});
  if (tiny_nodes >= 2) spec.components.push_back({2, tiny_nodes / 2});
  return spec;
}

}  // namespace ioscc
