// Synthetic graph generators.
//
// Two families:
//
//  * Planted-SCC graphs (the paper's synthetic data, Table 2): choose the
//    SCC node sets first, make each strongly connected (random cycle plus
//    random internal edges), then fill the rest of the edge budget with
//    edges that respect a hidden topological order over the condensation —
//    so the planted components are *exactly* the SCCs of the output. This
//    property is what lets the Massive-/Large-/Small-SCC experiment
//    classes control SCC size precisely, and what our property tests
//    verify against.
//
//  * Citation-style graphs (stand-ins for cit-patents / go-uniprot /
//    citeseerx): a temporal DAG (each node cites uniformly random earlier
//    nodes) with a fraction of extra uniformly random edges added on top —
//    the paper's own protocol of adding 10% random edges to the real
//    citation datasets to create SCCs.
//
// All generators are deterministic functions of their seed.

#ifndef IOSCC_GEN_GENERATORS_H_
#define IOSCC_GEN_GENERATORS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/types.h"
#include "io/io_stats.h"
#include "util/status.h"

namespace ioscc {

// One tier of planted components: `count` SCCs of `size` nodes each.
struct PlantedComponent {
  uint64_t size = 0;
  uint64_t count = 0;
};

struct PlantedSccSpec {
  uint64_t node_count = 0;
  double avg_degree = 5.0;
  std::vector<PlantedComponent> components;
  uint64_t seed = 1;

  // Nodes covered by planted components. Must be <= node_count.
  uint64_t PlantedNodes() const;
  // Total edges the generator will emit (node_count * avg_degree, floored,
  // but at least the structural minimum needed to wire the components).
  uint64_t TargetEdges() const;
};

// Generates the planted-SCC graph as an in-memory edge list.
Status GeneratePlantedSccEdges(const PlantedSccSpec& spec,
                               std::vector<Edge>* edges);

// Same, written straight to an edge file at `path`.
Status GeneratePlantedSccFile(const PlantedSccSpec& spec,
                              const std::string& path, size_t block_size,
                              IoStats* stats);

// Uniform random digraph: m edges, endpoints uniform, no self-loops.
Status GenerateUniformEdges(uint64_t node_count, uint64_t edge_count,
                            uint64_t seed, std::vector<Edge>* edges);

// Heavy-tailed digraph (Chung-Lu style): endpoints drawn with probability
// proportional to per-node weights w_i ~ i^(-1/(exponent-1)), giving an
// expected power-law degree distribution with the given exponent
// (web-graph-like for exponent ~2.1). No self-loops; duplicates possible,
// as in crawled data.
Status GeneratePowerLawEdges(uint64_t node_count, uint64_t edge_count,
                             double exponent, uint64_t seed,
                             std::vector<Edge>* edges);

// Citation-style graph: node i has ~avg_degree edges to uniform earlier
// nodes (a DAG); then `noise_fraction` * m_dag extra uniform random edges
// are added (these create the SCCs). noise_fraction = 0.10 reproduces the
// paper's protocol for the real citation datasets.
struct CitationSpec {
  uint64_t node_count = 0;
  double avg_degree = 4.0;
  double noise_fraction = 0.10;
  uint64_t seed = 1;
};

Status GenerateCitationEdges(const CitationSpec& spec,
                             std::vector<Edge>* edges);
Status GenerateCitationFile(const CitationSpec& spec, const std::string& path,
                            size_t block_size, IoStats* stats);

// --- Paper experiment families (Table 2 defaults, scaled by `scale`) -------
//
// Paper defaults at scale = 1.0: |V| = 30M, degree 5, Massive-SCC 400K,
// Large-SCC 8K x 50, Small-SCC 40 x 10K. Benches default to scale = 0.01.

PlantedSccSpec MassiveSccSpec(uint64_t node_count, double degree,
                              uint64_t scc_size, uint64_t seed);
PlantedSccSpec LargeSccSpec(uint64_t node_count, double degree,
                            uint64_t scc_size, uint64_t scc_count,
                            uint64_t seed);
PlantedSccSpec SmallSccSpec(uint64_t node_count, double degree,
                            uint64_t scc_size, uint64_t scc_count,
                            uint64_t seed);

// WEBSPAM-UK2007 stand-in: one giant SCC (~64.8% of nodes), one mid-size
// SCC (~0.22%), and a tail of small SCCs so that ~80% of all nodes lie in
// some SCC (the measured composition of the real graph, §7.4).
PlantedSccSpec WebspamSpec(uint64_t node_count, double degree, uint64_t seed);

}  // namespace ioscc

#endif  // IOSCC_GEN_GENERATORS_H_
