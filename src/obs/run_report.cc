#include "obs/run_report.h"

#include "obs/json.h"

namespace ioscc {
namespace {

void WriteIoStats(JsonWriter* json, const IoStats& io) {
  json->BeginObject();
  json->Key("blocks_read").UInt(io.blocks_read);
  json->Key("blocks_written").UInt(io.blocks_written);
  json->Key("bytes_read").UInt(io.bytes_read);
  json->Key("bytes_written").UInt(io.bytes_written);
  json->Key("block_ios").UInt(io.TotalBlockIos());
  json->Key("read_retries").UInt(io.read_retries);
  json->Key("write_retries").UInt(io.write_retries);
  // Physical side of the logical/physical split (io/block_cache.h):
  // explicit zeros on cache-less runs, like the retry counters.
  json->Key("physical_blocks_read").UInt(io.physical_blocks_read);
  json->Key("physical_block_ios").UInt(io.TotalPhysicalBlockIos());
  json->Key("cache_hits").UInt(io.cache_hits);
  json->Key("prefetch_hits").UInt(io.prefetch_hits);
  json->Key("prefetched_blocks").UInt(io.prefetched_blocks);
  // Timing, not I/O counts: how long the consumer was blocked on disk
  // and the prefetch window that was in effect (io/io_stats.h).
  json->Key("read_stall_micros").UInt(io.read_stall_micros);
  json->Key("prefetch_depth_used").UInt(io.prefetch_depth_used);
  json->EndObject();
}

void WritePhaseProfile(JsonWriter* json, const PhaseProfile& phase) {
  json->BeginObject();
  json->Key("name").String(phase.name);
  json->Key("spans").UInt(phase.spans);
  json->Key("wall_micros").UInt(phase.wall_micros);
  json->Key("cpu_user_micros").UInt(phase.cpu_user_micros);
  json->Key("cpu_sys_micros").UInt(phase.cpu_sys_micros);
  json->Key("max_rss_kb").UInt(phase.max_rss_kb);
  if (phase.has_io) {
    json->Key("io");
    WriteIoStats(json, phase.io);
  }
  json->EndObject();
}

}  // namespace

std::string RunReportEntryToJson(const RunReportEntry& entry) {
  JsonWriter json;
  json.BeginObject();
  json.Key("type").String("run");
  json.Key("experiment").String(entry.experiment);
  json.Key("algorithm").String(entry.algorithm);
  json.Key("dataset").String(entry.dataset);
  json.Key("status").String(entry.status);
  json.Key("finished").Bool(entry.finished);
  json.Key("timed_out").Bool(entry.timed_out);
  json.Key("seconds").Double(entry.stats.seconds);
  json.Key("io");
  WriteIoStats(&json, entry.stats.io);
  json.Key("iterations").UInt(entry.stats.iterations);
  json.Key("search_scans").UInt(entry.stats.search_scans);
  json.Key("nodes_accepted").UInt(entry.stats.nodes_accepted);
  json.Key("nodes_rejected").UInt(entry.stats.nodes_rejected);
  json.Key("pushdowns").UInt(entry.stats.pushdowns);
  json.Key("contractions").UInt(entry.stats.contractions);
  if (entry.has_io_budget) {
    json.Key("io_budget").BeginObject();
    json.Key("model").String(entry.io_budget_model);
    json.Key("bound_ios").UInt(entry.io_budget_bound_ios);
    json.Key("measured_ios").UInt(entry.io_budget_measured_ios);
    json.Key("ratio").Double(entry.io_budget_ratio);
    json.Key("pass").Bool(entry.io_budget_pass);
    json.EndObject();
  }
  if (entry.cache_blocks > 0 || entry.prefetch_depth > 0 ||
      entry.io_threads > 0 || !entry.cache_policy.empty() ||
      !entry.io_backend.empty()) {
    json.Key("cache").BeginObject();
    json.Key("budget_blocks").UInt(entry.cache_blocks);
    json.Key("memory_bytes").UInt(entry.cache_memory_bytes);
    json.Key("prefetch_depth").UInt(entry.prefetch_depth);
    json.Key("io_threads").UInt(entry.io_threads);
    if (!entry.cache_policy.empty()) {
      json.Key("policy").String(entry.cache_policy);
    }
    if (!entry.io_backend.empty()) {
      json.Key("io_backend").String(entry.io_backend);
    }
    json.EndObject();
  }
  if (!entry.kernel_name.empty()) {
    json.Key("kernel").BeginObject();
    json.Key("name").String(entry.kernel_name);
    json.Key("threads").UInt(entry.kernel_threads);
    json.Key("granularity").UInt(entry.kernel_granularity);
    json.Key("invocations").UInt(entry.stats.kernel_invocations);
    json.Key("micros").UInt(entry.stats.kernel_micros);
    json.EndObject();
  }
  if (entry.finished) {
    json.Key("result").BeginObject();
    json.Key("component_count").UInt(entry.component_count);
    json.Key("largest_component").UInt(entry.largest_component);
    json.Key("nodes_in_nontrivial_sccs")
        .UInt(entry.nodes_in_nontrivial_sccs);
    json.EndObject();
  }
  if (!entry.phases.empty()) {
    json.Key("phases").BeginArray();
    for (const PhaseProfile& phase : entry.phases) {
      WritePhaseProfile(&json, phase);
    }
    json.EndArray();
  }
  if (entry.watchdog_fires > 0) {
    json.Key("watchdog").BeginObject();
    json.Key("fires").UInt(entry.watchdog_fires);
    json.EndObject();
  }
  if (entry.has_checkpoint) {
    json.Key("checkpoint").BeginObject();
    json.Key("written").UInt(entry.checkpoints_written);
    json.Key("write_failures").UInt(entry.checkpoint_write_failures);
    json.Key("degraded").Bool(entry.checkpoint_degraded);
    json.Key("io");
    WriteIoStats(&json, entry.checkpoint_io);
    // The resume side is its own ledger entry: replayed-state reads,
    // reported apart from the run ledger so the latter stays equal to an
    // uninterrupted run's.
    json.Key("resume").BeginObject();
    json.Key("resumed").Bool(entry.resumed);
    json.Key("seq").UInt(entry.resume_seq);
    json.Key("iteration").UInt(entry.resume_iteration);
    json.Key("fallbacks").UInt(entry.resume_fallbacks);
    json.Key("io");
    WriteIoStats(&json, entry.resume_io);
    json.EndObject();
    json.EndObject();
  }
  // Stride-based downsampling: emit every stride-th record (always
  // including the last) so a million-iteration run stays bounded at
  // kMaxPerIterationEntries. stride == 1 — the exact array — whenever the
  // run is short or the caller opted into --full-iterations. Consumers
  // see the stride and the true length, so nothing is silently lossy.
  const std::vector<IterationStats>& iters = entry.stats.per_iteration;
  size_t stride = 1;
  if (!entry.full_iterations && iters.size() > kMaxPerIterationEntries) {
    stride = (iters.size() + kMaxPerIterationEntries - 1) /
             kMaxPerIterationEntries;
  }
  json.Key("per_iteration_total").UInt(iters.size());
  json.Key("per_iteration_stride").UInt(stride);
  json.Key("per_iteration").BeginArray();
  for (size_t i = 0; i < iters.size(); ++i) {
    if (stride > 1 && i % stride != 0 && i + 1 != iters.size()) continue;
    const IterationStats& iter = iters[i];
    json.BeginObject();
    if (stride > 1) json.Key("iteration").UInt(i + 1);
    json.Key("nodes_reduced").UInt(iter.nodes_reduced);
    json.Key("edges_reduced").UInt(iter.edges_reduced);
    json.Key("live_nodes").UInt(iter.live_nodes);
    json.Key("live_edges").UInt(iter.live_edges);
    json.Key("io");
    WriteIoStats(&json, iter.io);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  return json.Take();
}

std::string PhaseProfilesToJson(const std::vector<PhaseProfile>& profiles) {
  JsonWriter json;
  json.BeginObject();
  json.Key("type").String("phases");
  json.Key("profiles").BeginArray();
  for (const PhaseProfile& phase : profiles) {
    WritePhaseProfile(&json, phase);
  }
  json.EndArray();
  json.EndObject();
  return json.Take();
}

std::string MetricsSnapshotToJson(const MetricsSnapshot& snapshot) {
  JsonWriter json;
  json.BeginObject();
  json.Key("type").String("metrics");
  json.Key("counters").BeginObject();
  for (const auto& [name, value] : snapshot.counters) {
    json.Key(name).UInt(value);
  }
  json.EndObject();
  json.Key("histograms").BeginObject();
  for (const auto& [name, h] : snapshot.histograms) {
    json.Key(name).BeginObject();
    json.Key("count").UInt(h.count);
    json.Key("sum").UInt(h.sum);
    json.Key("min").UInt(h.min);
    json.Key("max").UInt(h.max);
    // First-class latency percentiles (pow2-bucket interpolation, error
    // bound documented in obs/metrics.h); the buckets follow for
    // consumers that want a different quantile.
    json.Key("mean").Double(h.Mean());
    json.Key("p50").Double(h.Percentile(50));
    json.Key("p90").Double(h.Percentile(90));
    json.Key("p99").Double(h.Percentile(99));
    json.Key("buckets").BeginArray();
    for (const auto& [lower_bound, count] : h.buckets) {
      json.BeginArray().UInt(lower_bound).UInt(count).EndArray();
    }
    json.EndArray();
    json.EndObject();
  }
  json.EndObject();
  json.EndObject();
  return json.Take();
}

Status RunReportWriter::Open(const std::string& path,
                             std::unique_ptr<RunReportWriter>* out) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return Status::IoError("cannot open report file " + path);
  }
  out->reset(new RunReportWriter(path, file));
  return Status::OK();
}

RunReportWriter::~RunReportWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

Status RunReportWriter::WriteLine(const std::string& json) {
  if (std::fwrite(json.data(), 1, json.size(), file_) != json.size() ||
      std::fputc('\n', file_) == EOF) {
    return Status::IoError("short write to report file " + path_);
  }
  return Status::OK();
}

Status RunReportWriter::Append(const RunReportEntry& entry) {
  return WriteLine(RunReportEntryToJson(entry));
}

Status RunReportWriter::AppendMetricsSnapshot() {
  return WriteLine(
      MetricsSnapshotToJson(MetricsRegistry::Global().Snapshot()));
}

Status RunReportWriter::AppendPhaseProfiles(
    const std::vector<PhaseProfile>& profiles) {
  return WriteLine(PhaseProfilesToJson(profiles));
}

Status RunReportWriter::AppendRecordJson(const std::string& json) {
  if (json.empty()) return Status::OK();
  return WriteLine(json);
}

Status RunReportWriter::Flush() {
  if (std::fflush(file_) != 0) {
    return Status::IoError("flush report file " + path_);
  }
  return Status::OK();
}

}  // namespace ioscc
