#include "obs/trace.h"

#include <cstdio>

#include "obs/json.h"

namespace ioscc {

namespace internal_trace {
thread_local uint32_t tls_depth = 0;
}  // namespace internal_trace

void Tracer::Record(TraceEvent event) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(event));
}

size_t Tracer::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::vector<TraceEvent> Tracer::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::string Tracer::ToChromeTraceJson() const {
  std::vector<TraceEvent> snapshot = events();
  JsonWriter json;
  json.BeginObject().Key("traceEvents").BeginArray();
  for (const TraceEvent& event : snapshot) {
    json.BeginObject();
    json.Key("name").String(event.name);
    json.Key("ph").String("X");
    json.Key("pid").Int(1);
    json.Key("tid").Int(1);
    json.Key("ts").UInt(event.start_us);
    json.Key("dur").UInt(event.dur_us);
    json.Key("args").BeginObject();
    json.Key("depth").UInt(event.depth);
    if (event.has_io) {
      json.Key("blocks_read").UInt(event.io_delta.blocks_read);
      json.Key("blocks_written").UInt(event.io_delta.blocks_written);
      json.Key("bytes_read").UInt(event.io_delta.bytes_read);
      json.Key("bytes_written").UInt(event.io_delta.bytes_written);
      json.Key("block_ios").UInt(event.io_delta.TotalBlockIos());
      // Physical/cache attribution: which span's re-reads the block
      // cache absorbed. Zero (physical == logical) on cache-less runs.
      json.Key("physical_blocks_read")
          .UInt(event.io_delta.physical_blocks_read);
      json.Key("cache_hits").UInt(event.io_delta.cache_hits);
      json.Key("prefetch_hits").UInt(event.io_delta.prefetch_hits);
      json.Key("prefetched_blocks").UInt(event.io_delta.prefetched_blocks);
      // How much of this span's duration the consumer spent blocked on
      // the disk — dur minus this is compute that overlapped I/O.
      json.Key("read_stall_micros")
          .UInt(event.io_delta.read_stall_micros);
      json.Key("prefetch_depth_used")
          .UInt(event.io_delta.prefetch_depth_used);
    }
    if (event.has_resources) {
      // Sampled via getrusage while a PhaseProfiler was installed: CPU
      // consumed during the span and the process peak RSS at its exit.
      json.Key("cpu_user_micros").UInt(event.cpu_user_micros);
      json.Key("cpu_sys_micros").UInt(event.cpu_sys_micros);
      json.Key("max_rss_kb").UInt(event.max_rss_kb);
    }
    json.EndObject();  // args
    json.EndObject();  // event
  }
  json.EndArray();
  json.Key("displayTimeUnit").String("ms");
  json.EndObject();
  return json.Take();
}

Status Tracer::WriteChromeTrace(const std::string& path) const {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return Status::IoError("cannot open trace file " + path);
  }
  const std::string json = ToChromeTraceJson();
  const bool ok = std::fwrite(json.data(), 1, json.size(), file) ==
                  json.size();
  std::fclose(file);
  if (!ok) return Status::IoError("short write to trace file " + path);
  return Status::OK();
}

void TraceSpan::Enter(const char* name, const IoStats* io) {
  active_ = true;
  name_ = name;
  io_ = io;
  if (io != nullptr) enter_io_ = *io;
  if (profiler_ != nullptr) enter_res_ = SampleResourceUsage();
  start_us_ =
      tracer_ != nullptr ? tracer_->NowMicros() : ProcessMonotonicMicros();
  depth_ = internal_trace::tls_depth++;
}

void TraceSpan::Finish() {
  const uint64_t end_us =
      tracer_ != nullptr ? tracer_->NowMicros() : ProcessMonotonicMicros();
  const uint64_t dur_us = end_us > start_us_ ? end_us - start_us_ : 0;
  const bool has_io = io_ != nullptr;
  IoStats io_delta;
  if (has_io) io_delta = *io_ - enter_io_;
  ResourceSample exit_res;
  auto sub = [](uint64_t a, uint64_t b) { return a > b ? a - b : 0; };
  if (profiler_ != nullptr) exit_res = SampleResourceUsage();
  --internal_trace::tls_depth;
  if (profiler_ != nullptr) {
    profiler_->RecordSpan(
        name_, dur_us, sub(exit_res.cpu_user_micros, enter_res_.cpu_user_micros),
        sub(exit_res.cpu_sys_micros, enter_res_.cpu_sys_micros),
        exit_res.max_rss_kb, has_io, io_delta);
  }
  if (tracer_ != nullptr) {
    TraceEvent event;
    event.name = name_;
    event.start_us = start_us_;
    event.dur_us = dur_us;
    event.depth = depth_;
    event.has_io = has_io;
    event.io_delta = io_delta;
    if (profiler_ != nullptr) {
      event.has_resources = true;
      event.cpu_user_micros =
          sub(exit_res.cpu_user_micros, enter_res_.cpu_user_micros);
      event.cpu_sys_micros =
          sub(exit_res.cpu_sys_micros, enter_res_.cpu_sys_micros);
      event.max_rss_kb = exit_res.max_rss_kb;
    }
    tracer_->Record(std::move(event));
  }
  active_ = false;
}

}  // namespace ioscc
