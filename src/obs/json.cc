#include "obs/json.h"

#include <cmath>
#include <cstdio>

namespace ioscc {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::MaybeComma() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (has_value_.back()) out_ += ',';
  has_value_.back() = true;
}

JsonWriter& JsonWriter::BeginObject() {
  MaybeComma();
  out_ += '{';
  has_value_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  has_value_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  MaybeComma();
  out_ += '[';
  has_value_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  has_value_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view name) {
  MaybeComma();
  out_ += '"';
  out_ += JsonEscape(name);
  out_ += "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(std::string_view value) {
  MaybeComma();
  out_ += '"';
  out_ += JsonEscape(value);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t value) {
  MaybeComma();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::UInt(uint64_t value) {
  MaybeComma();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Double(double value) {
  MaybeComma();
  if (!std::isfinite(value)) {
    out_ += "null";  // JSON has no Inf/NaN
    return *this;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  MaybeComma();
  out_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  MaybeComma();
  out_ += "null";
  return *this;
}

std::string JsonWriter::Take() {
  std::string result = std::move(out_);
  out_.clear();
  has_value_.assign(1, false);
  after_key_ = false;
  return result;
}

}  // namespace ioscc
