// Machine-readable run reports (JSONL).
//
// One line per record, each a self-contained JSON object with a "type"
// tag:
//   {"type":"run", ...}      — one algorithm execution: outcome, RunStats,
//                              per-iteration reduction + I/O deltas, and
//                              (with a PhaseProfiler installed) the run's
//                              per-phase wall/CPU/RSS/I/O profile
//   {"type":"metrics", ...}  — snapshot of the global metrics registry
//                              (histograms carry mean + p50/p90/p99)
//   {"type":"phases", ...}   — whole-process per-phase profile, appended
//                              once at shutdown like the metrics snapshot
//   {"type":"timeseries",...} — live-telemetry ring buffer (obs/telemetry.h)
//   {"type":"watchdog", ...}  — one-shot stall-watchdog diagnostic
//
// The schema is documented in docs/OBSERVABILITY.md. The entry struct is
// deliberately plain data (names and numbers) so this layer depends on
// nothing above the header-only stats types; harness/runner provides the
// RunOutcome -> RunReportEntry conversion.

#ifndef IOSCC_OBS_RUN_REPORT_H_
#define IOSCC_OBS_RUN_REPORT_H_

#include <cstdio>
#include <memory>
#include <string>

#include <vector>

#include "obs/metrics.h"
#include "obs/phase_profiler.h"
#include "scc/options.h"
#include "util/status.h"

namespace ioscc {

struct RunReportEntry {
  std::string experiment;  // bench/tool name, free-form
  std::string algorithm;   // "1PB-SCC", ...
  std::string dataset;     // edge-file path or label
  std::string status;      // Status::ToString()
  bool finished = false;
  bool timed_out = false;

  RunStats stats;

  // I/O budget conformance (harness/io_budget.h), flattened to plain
  // data; emitted as an "io_budget" object when has_io_budget is set.
  bool has_io_budget = false;
  std::string io_budget_model;
  uint64_t io_budget_bound_ios = 0;
  uint64_t io_budget_measured_ios = 0;
  double io_budget_ratio = 0;
  bool io_budget_pass = false;

  // Block-cache configuration (io/block_cache.h), set by the caller that
  // installed the cache; emitted as a "cache" object when cache_blocks
  // is nonzero. cache_memory_bytes is the semi-external memory charge
  // (harness/theory.h TheoryCacheMemoryBytes).
  uint64_t cache_blocks = 0;
  uint64_t cache_memory_bytes = 0;
  // Threaded I/O pipeline configuration (docs/PERFORMANCE.md): the
  // prefetch window and worker-pool size in effect. Ride along in the
  // "cache" object, which is emitted whenever any of the three is set.
  uint64_t prefetch_depth = 0;
  uint64_t io_threads = 0;
  // Buffer-manager eviction policy ("lru"/"clock") and BlockFile page
  // provider ("pread"/"direct") in effect; emitted inside the "cache"
  // object when non-empty. Left empty by callers predating the buffer
  // manager, so old report consumers see unchanged lines.
  std::string cache_policy;
  std::string io_backend;

  // In-memory batch-kernel selection (scc/parallel_scc.h), set by the
  // caller that picked a kernel; emitted as a "kernel" object (name,
  // threads, granularity, invocations, micros) when kernel_name is
  // non-empty. invocations/micros come from RunStats. Left empty by
  // callers predating the kernel option, so old report lines are
  // byte-unchanged.
  std::string kernel_name;
  uint64_t kernel_threads = 0;
  uint64_t kernel_granularity = 0;

  // Result summary; meaningful only when finished.
  uint64_t component_count = 0;
  uint64_t largest_component = 0;
  uint64_t nodes_in_nontrivial_sccs = 0;

  // Per-phase wall/CPU/RSS/I/O profile for this run (obs/phase_profiler.h
  // delta captured by the harness); emitted as a "phases" array when
  // non-empty.
  std::vector<PhaseProfile> phases;

  // Emit the exact per_iteration array no matter how long it is. The
  // default caps it at kMaxPerIterationEntries via stride-based
  // downsampling (the JSON records the stride and the true total), so a
  // million-iteration DFS run cannot produce a multi-GB report line.
  // Binaries expose this as --full-iterations.
  bool full_iterations = false;

  // Stall-watchdog outcome for this run (obs/telemetry.h): how many times
  // it fired; emitted as a "watchdog" object when nonzero.
  uint64_t watchdog_fires = 0;

  // Checkpoint/resume outcome (harness/checkpoint.h AttachCheckpointInfo);
  // emitted as a "checkpoint" object when has_checkpoint is set. The two
  // IoStats are the side ledgers the checkpoint subsystem keeps apart from
  // the run ledger: snapshot writes, and resume replay reads.
  bool has_checkpoint = false;
  uint64_t checkpoints_written = 0;
  uint64_t checkpoint_write_failures = 0;
  bool checkpoint_degraded = false;
  IoStats checkpoint_io;
  bool resumed = false;
  uint64_t resume_seq = 0;
  uint64_t resume_iteration = 0;
  uint64_t resume_fallbacks = 0;
  IoStats resume_io;
};

// Downsampling cap for the per_iteration array (see full_iterations).
inline constexpr size_t kMaxPerIterationEntries = 512;

// JSON (single line, no trailing newline) for one record.
std::string RunReportEntryToJson(const RunReportEntry& entry);
std::string MetricsSnapshotToJson(const MetricsSnapshot& snapshot);
std::string PhaseProfilesToJson(const std::vector<PhaseProfile>& profiles);

// Appends JSONL records to a file. Create once per binary invocation.
class RunReportWriter {
 public:
  static Status Open(const std::string& path,
                     std::unique_ptr<RunReportWriter>* out);

  ~RunReportWriter();

  RunReportWriter(const RunReportWriter&) = delete;
  RunReportWriter& operator=(const RunReportWriter&) = delete;

  Status Append(const RunReportEntry& entry);
  // Writes a {"type":"metrics"} record with the current global registry
  // contents; typically called once, right before closing.
  Status AppendMetricsSnapshot();
  // Writes a {"type":"phases"} record with a whole-process per-phase
  // profile (PhaseProfiler::Snapshot()); rides next to the metrics
  // snapshot at shutdown.
  Status AppendPhaseProfiles(const std::vector<PhaseProfile>& profiles);
  // Appends one pre-serialized record (a single-line JSON object with a
  // "type" tag) verbatim: the telemetry timeseries and watchdog records
  // come through here. Empty input is a no-op so callers can pass
  // Telemetry::WatchdogReportJson() unconditionally.
  Status AppendRecordJson(const std::string& json);

  Status Flush();
  const std::string& path() const { return path_; }

 private:
  RunReportWriter(std::string path, std::FILE* file)
      : path_(std::move(path)), file_(file) {}

  Status WriteLine(const std::string& json);

  std::string path_;
  std::FILE* file_;
};

}  // namespace ioscc

#endif  // IOSCC_OBS_RUN_REPORT_H_
