// Process-wide metrics: named monotonic counters and log-scale histograms.
//
// Hot paths cache the Counter*/Histogram* returned by the registry (the
// pointers are stable for the process lifetime — Reset() zeroes values in
// place, it never invalidates a handle) and update it with a relaxed
// atomic. Expensive-to-sample metrics (block I/O latency needs two clock
// reads per block) additionally gate on MetricsEnabled(), which is flipped
// on by the bench harness when a --trace/--report sink is installed and
// stays off otherwise.
//
// Histograms use power-of-two buckets: bucket 0 holds the value 0 and
// bucket i (i >= 1) holds [2^(i-1), 2^i). That is exact enough for the
// quantities we care about (latencies in microseconds, sort run lengths,
// merge fan-ins) and makes recording a single bit-scan.
//
// Percentiles (p50/p90/p99 in the snapshot records) are extracted by
// linear interpolation inside the target bucket, with the bucket range
// tightened by the recorded min/max. Error bound: the estimate and the
// true percentile lie in the same [2^(i-1), 2^i) bucket, so the estimate
// is within a factor of 2 of the true value (relative error < 100%), and
// always inside [min, max]; a histogram whose samples all share one
// value reports that value exactly. tests/obs_test.cc holds this bound
// on randomized inputs.

#ifndef IOSCC_OBS_METRICS_H_
#define IOSCC_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace ioscc {

class Counter {
 public:
  void Add(uint64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

class Histogram {
 public:
  static constexpr int kBucketCount = 65;  // value 0 + one per bit of u64

  // 0 -> 0; v >= 1 -> floor(log2(v)) + 1.
  static int BucketIndex(uint64_t value);
  // Smallest value that lands in bucket `index` (0 for bucket 0).
  static uint64_t BucketLowerBound(int index);

  void Record(uint64_t value);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  bool empty() const { return count() == 0; }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  // Min/max over recorded values; min() == UINT64_MAX when empty. Prefer
  // empty() over probing for that sentinel.
  uint64_t min() const { return min_.load(std::memory_order_relaxed); }
  uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  uint64_t bucket(int index) const {
    return buckets_[static_cast<size_t>(index)].load(
        std::memory_order_relaxed);
  }

  double Mean() const;
  // Estimated value at percentile p (0..100); 0 when empty. See the
  // header comment for the interpolation error bound.
  double Percentile(double p) const;

  // Point-in-time copy for reports. Handles the empty case explicitly:
  // an empty histogram snapshots with count == 0 and min == 0 (never the
  // UINT64_MAX sentinel).
  struct HistogramSnapshot TakeSnapshot() const;

  // "count=4 mean=27.5 min=0 p50=5 p90=100 p99=100 max=100", or "empty".
  std::string Format() const;

  void Reset();

 private:
  std::array<std::atomic<uint64_t>, kBucketCount> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{UINT64_MAX};
  std::atomic<uint64_t> max_{0};
};

// Point-in-time copy of one histogram, for reports.
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = 0;  // 0 when empty
  uint64_t max = 0;
  // (bucket lower bound, count) for every non-empty bucket, ascending.
  std::vector<std::pair<uint64_t, uint64_t>> buckets;

  bool empty() const { return count == 0; }
  double Mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
  // Estimated value at percentile p (0..100); 0 when empty. Same
  // interpolation and factor-of-2 error bound as Histogram::Percentile —
  // this is the shared implementation, so the bench_report aggregator
  // extracts identical percentiles from parsed snapshot records.
  double Percentile(double p) const;
  // Human-readable one-liner; "empty" for an empty snapshot.
  std::string Format() const;
};

struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, HistogramSnapshot> histograms;
};

class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  // Returns the named metric, creating it on first use. The pointer stays
  // valid for the registry's lifetime; cache it in hot paths.
  Counter* GetCounter(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  // Zeroes every registered metric in place (handles stay valid).
  void Reset();

  // Copies current values; includes only metrics with a non-zero count so
  // reports stay small.
  MetricsSnapshot Snapshot() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

namespace internal_metrics {
inline std::atomic<bool> g_enabled{false};
}  // namespace internal_metrics

// Gate for metrics whose *sampling* is costly (e.g. clock reads around
// every block transfer). Cheap counter bumps need not check this.
inline bool MetricsEnabled() {
  return internal_metrics::g_enabled.load(std::memory_order_relaxed);
}

inline void SetMetricsEnabled(bool enabled) {
  internal_metrics::g_enabled.store(enabled, std::memory_order_relaxed);
}

}  // namespace ioscc

#endif  // IOSCC_OBS_METRICS_H_
