// Per-phase resource profiling on top of the trace-span spine.
//
// A PhaseProfiler aggregates, keyed by span name, what every TraceSpan
// cost while it was open: wall time, user/sys CPU time and peak RSS
// (sampled via getrusage at span entry/exit), plus the span's logical
// I/O delta. Install with SetPhaseProfiler(); from then on every
// TraceSpan — with or without a Tracer also installed — feeds the
// profiler on exit, so a run decomposes into the per-phase
// wall/CPU/RSS/I/O profile the perf-trajectory reports are built from
// (docs/PERFORMANCE.md, "Perf trajectory").
//
// Same zero-cost contract as the tracer: with no profiler installed a
// TraceSpan pays one extra relaxed atomic load; the getrusage syscalls
// happen only while a profiler is watching, and spans fire per
// pass/scan, not per block, so the sampling cost is negligible.
//
// Note on peak RSS: getrusage reports the *process* high-water mark, so
// a phase's max_rss_kb is the process peak observed at that phase's
// exit — monotone over the run, attributing a peak to the first phase
// that reached it.

#ifndef IOSCC_OBS_PHASE_PROFILER_H_
#define IOSCC_OBS_PHASE_PROFILER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "io/io_stats.h"

namespace ioscc {

// Point-in-time process resource usage (getrusage(RUSAGE_SELF)).
// All-zero on platforms without getrusage.
struct ResourceSample {
  uint64_t cpu_user_micros = 0;
  uint64_t cpu_sys_micros = 0;
  uint64_t max_rss_kb = 0;  // process peak resident set, kilobytes
};

ResourceSample SampleResourceUsage();

// Monotonic clock for profiler-only spans (no Tracer epoch available).
uint64_t ProcessMonotonicMicros();

// Aggregated cost of every span that carried one phase name.
struct PhaseProfile {
  std::string name;
  uint64_t spans = 0;             // spans recorded under this name
  uint64_t wall_micros = 0;       // summed span durations
  uint64_t cpu_user_micros = 0;   // summed user-CPU deltas
  uint64_t cpu_sys_micros = 0;    // summed system-CPU deltas
  uint64_t max_rss_kb = 0;        // process peak RSS at last span exit
  bool has_io = false;            // io is meaningful
  IoStats io;                     // summed per-span I/O deltas
};

// Thread-safe per-phase aggregator. Install with SetPhaseProfiler(); the
// profiler must outlive every span opened while installed.
class PhaseProfiler {
 public:
  void RecordSpan(const char* name, uint64_t wall_micros,
                  uint64_t cpu_user_micros, uint64_t cpu_sys_micros,
                  uint64_t max_rss_kb, bool has_io, const IoStats& io_delta);

  // Copy of the per-phase aggregates, sorted by phase name.
  std::vector<PhaseProfile> Snapshot() const;

  // What happened between two Snapshot() calls: counters and sums are
  // subtracted per phase; max_rss_kb keeps `after`'s value (the process
  // high-water mark is monotone). Phases with no new spans are dropped.
  static std::vector<PhaseProfile> Delta(
      const std::vector<PhaseProfile>& before,
      const std::vector<PhaseProfile>& after);

 private:
  mutable std::mutex mu_;
  std::map<std::string, PhaseProfile> phases_;
};

namespace internal_profiler {
inline std::atomic<PhaseProfiler*> g_profiler{nullptr};
}  // namespace internal_profiler

// Installs `profiler` as the process-wide sink (nullptr disables). Not
// synchronized against open spans: install before starting work.
inline void SetPhaseProfiler(PhaseProfiler* profiler) {
  internal_profiler::g_profiler.store(profiler, std::memory_order_release);
}

inline PhaseProfiler* GetPhaseProfiler() {
  return internal_profiler::g_profiler.load(std::memory_order_relaxed);
}

}  // namespace ioscc

#endif  // IOSCC_OBS_PHASE_PROFILER_H_
