#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cstdio>

namespace ioscc {

int Histogram::BucketIndex(uint64_t value) {
  if (value == 0) return 0;
  return 64 - std::countl_zero(value);
}

uint64_t Histogram::BucketLowerBound(int index) {
  if (index <= 0) return 0;
  return 1ull << (index - 1);
}

void Histogram::Record(uint64_t value) {
  buckets_[static_cast<size_t>(BucketIndex(value))].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  // Racy CAS-free min/max would lose updates under contention; a CAS loop
  // keeps them exact and the histograms are far from contended.
  uint64_t observed = min_.load(std::memory_order_relaxed);
  while (value < observed &&
         !min_.compare_exchange_weak(observed, value,
                                     std::memory_order_relaxed)) {
  }
  observed = max_.load(std::memory_order_relaxed);
  while (value > observed &&
         !max_.compare_exchange_weak(observed, value,
                                     std::memory_order_relaxed)) {
  }
}

double Histogram::Mean() const {
  const uint64_t n = count();
  return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
}

double Histogram::Percentile(double p) const {
  return TakeSnapshot().Percentile(p);
}

HistogramSnapshot Histogram::TakeSnapshot() const {
  HistogramSnapshot snapshot;
  snapshot.count = count();
  if (snapshot.count == 0) return snapshot;  // min stays 0, not the sentinel
  snapshot.sum = sum();
  snapshot.min = min();
  snapshot.max = max();
  for (int i = 0; i < kBucketCount; ++i) {
    const uint64_t n = bucket(i);
    if (n != 0) snapshot.buckets.emplace_back(BucketLowerBound(i), n);
  }
  return snapshot;
}

std::string Histogram::Format() const { return TakeSnapshot().Format(); }

double HistogramSnapshot::Percentile(double p) const {
  if (count == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  // Rank of the percentile sample, 1-based: the smallest value with at
  // least ceil(p% * count) samples at or below it.
  const double target = std::max(1.0, (p / 100.0) * static_cast<double>(count));
  uint64_t cumulative = 0;
  for (const auto& [lower, n] : buckets) {
    if (static_cast<double>(cumulative + n) >= target) {
      // Bucket 0 holds only the value 0: exact, no interpolation.
      if (lower == 0) return 0.0;
      // Bucket range [lo, hi), tightened by the recorded min/max so
      // single-valued histograms and the outermost buckets stay exact.
      const double bucket_lo = static_cast<double>(lower);
      const double bucket_hi =
          lower == 0 ? 1.0 : 2.0 * static_cast<double>(lower);
      const double lo = std::max(bucket_lo, static_cast<double>(min));
      const double hi =
          std::min(bucket_hi, static_cast<double>(max) + 1.0);
      const double fraction =
          (target - static_cast<double>(cumulative)) / static_cast<double>(n);
      const double value = lo + fraction * (hi - lo);
      return std::clamp(value, static_cast<double>(min),
                        static_cast<double>(max));
    }
    cumulative += n;
  }
  return static_cast<double>(max);
}

std::string HistogramSnapshot::Format() const {
  if (count == 0) return "empty";
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "count=%llu mean=%.1f min=%llu p50=%.0f p90=%.0f p99=%.0f "
                "max=%llu",
                static_cast<unsigned long long>(count), Mean(),
                static_cast<unsigned long long>(min), Percentile(50),
                Percentile(90), Percentile(99),
                static_cast<unsigned long long>(max));
  return buf;
}

void Histogram::Reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(UINT64_MAX, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never freed
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snapshot;
  for (const auto& [name, counter] : counters_) {
    if (counter->value() != 0) snapshot.counters[name] = counter->value();
  }
  for (const auto& [name, histogram] : histograms_) {
    // Empty histograms leave the snapshot entirely; TakeSnapshot would
    // also report them cleanly (count 0, min 0) but reports stay small.
    if (histogram->empty()) continue;
    snapshot.histograms[name] = histogram->TakeSnapshot();
  }
  return snapshot;
}

}  // namespace ioscc
